#!/usr/bin/env bash
# Header self-containment check: every public header under src/ must
# compile standalone (all of its includes stated, nothing leaning on what
# a particular .cpp happened to include first). CI runs this as a matrix
# over layer groups; locally, run with no arguments to check everything:
#
#   tools/check_headers.sh                # all of src/
#   tools/check_headers.sh congest engine # only those subdirectories
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cxx="${CXX:-g++}"
filters=("$@")

fail=0
checked=0
while IFS= read -r hdr; do
  rel="${hdr#"$root"/src/}"
  if ((${#filters[@]} > 0)); then
    keep=0
    for f in "${filters[@]}"; do
      [[ "$rel" == "$f"/* ]] && keep=1
    done
    ((keep)) || continue
  fi
  if ! "$cxx" -std=c++20 -Wall -Wextra -fsyntax-only -I"$root/src" \
      -x c++-header "$hdr" 2>/tmp/check-headers-err.$$; then
    echo "NOT SELF-CONTAINED: src/$rel"
    cat /tmp/check-headers-err.$$
    fail=1
  fi
  checked=$((checked + 1))
done < <(find "$root/src" -name '*.hpp' | sort)
rm -f /tmp/check-headers-err.$$

echo "check_headers: $checked headers checked$([[ $fail == 0 ]] && echo ', all self-contained')"
exit $fail
