// amixd — the amix query daemon.
//
//   amixd --graph <name>=<instance-file> [--graph <name>=<file> ...]
//         [--port P] [--port-file F] [--workers N] [--queue-capacity Q]
//         [--tenant-inflight M] [--cache-capacity K] [--io-timeout-ms T]
//         [--seed S]
//
// Serves the named graph instances over the amix/1 line protocol on
// 127.0.0.1 (see src/server/protocol.hpp for the wire grammar and
// src/server/server.hpp for the concurrency model). Port 0 (the
// default) binds an ephemeral port; the bound port is printed on stdout
// and, with --port-file, written to a file for scripts to pick up.
//
// --seed seeds the hierarchy parameters. A client replaying responses
// (`amixctl client --verify`) must build with the same seed.
//
// SIGTERM/SIGINT drain cleanly: stop accepting, answer queued
// connections with `shutting-down`, finish in-flight requests, exit 0.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <charconv>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "graph/io.hpp"
#include "server/server.hpp"
#include "util/check.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // Self-pipe: the only async-signal-safe way to hand the event to the
  // poll loop below.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int usage() {
  std::cerr << "usage: amixd --graph <name>=<instance-file> [--graph ...]\n"
               "             [--port P] [--port-file F] [--workers N]\n"
               "             [--queue-capacity Q] [--tenant-inflight M]\n"
               "             [--max-tenants T] [--cache-capacity K]\n"
               "             [--io-timeout-ms T] [--request-timeout-ms T]\n"
               "             [--seed S]\n";
  return 2;
}

/// Whole-string decimal parse; the type of *out bounds the range (so
/// --port rejects 70000 and negatives without extra checks). A bad
/// value is a usage error, not an uncaught std::stoul abort.
template <typename T>
bool parse_num(const std::string& text, T* out) {
  const char* const end = text.data() + text.size();
  const auto [p, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc() && p == end;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amix;

  server::ServerOptions opt;
  std::vector<std::pair<std::string, std::string>> graphs;  // name -> file
  std::string port_file;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    auto next = [&]() -> std::string {
      AMIX_CHECK_MSG(i + 1 < argc, "missing value for flag");
      return argv[++i];
    };
    auto num = [&](auto* out) -> bool {
      const std::string v = next();
      if (parse_num(v, out)) return true;
      std::cerr << "amixd: bad value '" << v << "' for " << s << "\n";
      return false;
    };
    if (s == "--graph") {
      const std::string spec = next();
      const auto eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::cerr << "amixd: --graph needs <name>=<instance-file>\n";
        return 2;
      }
      graphs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (s == "--port") {
      if (!num(&opt.port)) return usage();
    } else if (s == "--port-file") {
      port_file = next();
    } else if (s == "--workers") {
      if (!num(&opt.workers)) return usage();
    } else if (s == "--queue-capacity") {
      if (!num(&opt.queue_capacity)) return usage();
    } else if (s == "--tenant-inflight") {
      if (!num(&opt.tenant_inflight)) return usage();
    } else if (s == "--max-tenants") {
      if (!num(&opt.max_tenants)) return usage();
    } else if (s == "--cache-capacity") {
      if (!num(&opt.cache_capacity)) return usage();
    } else if (s == "--io-timeout-ms") {
      if (!num(&opt.io_timeout_ms) || opt.io_timeout_ms <= 0) {
        std::cerr << "amixd: --io-timeout-ms must be positive\n";
        return usage();
      }
    } else if (s == "--request-timeout-ms") {
      if (!num(&opt.request_timeout_ms) || opt.request_timeout_ms < 0) {
        std::cerr << "amixd: --request-timeout-ms must be >= 0\n";
        return usage();
      }
    } else if (s == "--seed") {
      if (!num(&seed)) return usage();
    } else {
      return usage();
    }
  }
  if (graphs.empty()) return usage();
  opt.hierarchy.seed = seed;

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "amixd: pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  server::Server daemon(opt);
  for (const auto& [name, file] : graphs) {
    const GraphFile f = load_graph(file);
    std::cout << "amixd: graph " << name << ": n=" << f.graph.num_nodes()
              << " m=" << f.graph.num_edges()
              << " weighted=" << (f.weights ? "yes" : "no") << "\n";
    daemon.register_graph(name, f.graph, f.weights);
  }

  std::string err;
  if (!daemon.start(&err)) {
    std::cerr << "amixd: " << err << "\n";
    return 1;
  }
  std::cout << "amixd: listening on 127.0.0.1:" << daemon.port()
            << " (workers=" << (opt.workers > 0 ? opt.workers : 1)
            << " queue=" << opt.queue_capacity
            << " tenant-inflight=" << opt.tenant_inflight
            << " cache-capacity=" << opt.cache_capacity << ")" << std::endl;
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    AMIX_CHECK_MSG(pf.good(), "cannot open --port-file");
    pf << daemon.port() << "\n";
  }

  // Block until SIGTERM/SIGINT.
  pollfd p{g_signal_pipe[0], POLLIN, 0};
  for (;;) {
    const int pr = ::poll(&p, 1, -1);
    if (pr > 0 || (pr < 0 && errno != EINTR)) break;
  }

  std::cout << "amixd: draining" << std::endl;
  daemon.shutdown();
  const server::Server::Stats s = daemon.stats();
  std::cout << "amixd: served " << s.requests << " request(s), accepted "
            << s.accepted << " connection(s), shed " << s.shed_overloaded
            << " overloaded + " << s.shed_tenant << " tenant, "
            << s.bad_requests << " bad, " << s.timeouts << " timeout(s)"
            << std::endl;
  return 0;
}
