// amixctl — command-line front end for the amix library.
//
//   amixctl generate <family> <n> [param] -o <file> [--seed S]
//       families: regular (param=degree), gnp (param=avg degree),
//                 hypercube, torus, ring, ws (param=k), ba (param=attach)
//   amixctl info <file>
//   amixctl ops
//       lists every registered query op (the engine's op table): wire
//       syntax, argument bounds, and a sample mix line per op.
//   amixctl route <file> [--demand] [--seed S]
//   amixctl mst <file> [--engine hier|flood|kernel|piped] [--seed S]
//   amixctl mincut <file> [--trees T] [--seed S]
//   amixctl estimate-tau <file> [--seed S]
//   amixctl trace <file> [--scenario mst|route|clique] [--seed S]
//           [--trace-out f.json] [--metrics-out f.json|f.csv]
//           [--tree f.txt] [--wall]
//       runs the scenario under a TraceRecorder, writes the Chrome-trace
//       and metrics artifacts, prints the span tree + bound-check report;
//       exits nonzero if any paper-bound envelope is violated.
//   amixctl workload <file> <mixfile> [--seed S] [--threads T]
//           [--repeat R] [--json out.json]
//       replays a query-mix file through the QueryEngine as one
//       round-multiplexed batch per repeat. Mix lines (one query each,
//       '#' comments):
//           mst
//           route perm|demand|a2a [phases]
//           clique
//           walks <count> <steps>
//           matching [phases]
//           mincut [trees]
//           sssp [source] [hops]
//       (authoritative list: `amixctl ops`)
//       prints the per-query table + amortization summary; --json writes
//       the final BatchReport. Exits nonzero if any query failed.
//   amixctl client <mixfile> --port P [--graph NAME] [--tenant NAME]
//           [--seed S] [--threads T] [--repeat R] [--json out.json]
//           [--verify <instance-file>]
//       ships the mix file to a running amixd (see tools/amixd.cpp) as
//       one query request per repeat over T concurrent connections,
//       asserts every response's replayable tail is byte-identical
//       across all threads x repeats, and prints the last response's
//       JSON body. --verify additionally replays the request serially
//       in-process against the instance file (which must be the same
//       instance amixd serves, built with the same --seed) and compares
//       the wire bytes against the local replay. Exits nonzero on any
//       typed server error, determinism mismatch, or failed query.
//
// Instances are the text format of graph/io.hpp; `generate` always writes
// distinct random weights so every instance is MST-ready.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "amix/amix.hpp"
#include "engine/execute.hpp"
#include "graph/io.hpp"
#include "server/client.hpp"
#include "server/mix.hpp"

namespace {

using namespace amix;

struct Args {
  std::vector<std::string> positional;
  std::uint64_t seed = 1;
  std::string out;
  std::string engine = "hier";
  std::uint32_t trees = 0;
  bool demand = false;
  std::string scenario = "mst";
  std::string trace_out = "amix-trace.json";
  std::string metrics_out = "amix-metrics.json";
  std::string tree_out;
  bool wall = false;
  std::uint32_t threads = 1;
  std::uint32_t repeat = 1;
  std::string json_out;
  std::uint16_t port = 0;
  std::string graph_name = "g0";
  std::string tenant = "default";
  std::string verify_file;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    auto next = [&]() -> std::string {
      AMIX_CHECK_MSG(i + 1 < argc, "missing value for flag");
      return argv[++i];
    };
    if (s == "--seed") {
      a.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (s == "-o" || s == "--out") {
      a.out = next();
    } else if (s == "--engine") {
      a.engine = next();
    } else if (s == "--trees") {
      a.trees = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (s == "--demand") {
      a.demand = true;
    } else if (s == "--scenario") {
      a.scenario = next();
    } else if (s == "--trace-out") {
      a.trace_out = next();
    } else if (s == "--metrics-out") {
      a.metrics_out = next();
    } else if (s == "--tree") {
      a.tree_out = next();
    } else if (s == "--wall") {
      a.wall = true;
    } else if (s == "--threads") {
      a.threads = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (s == "--repeat") {
      a.repeat = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (s == "--json") {
      a.json_out = next();
    } else if (s == "--port") {
      a.port = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (s == "--graph") {
      a.graph_name = next();
    } else if (s == "--tenant") {
      a.tenant = next();
    } else if (s == "--verify") {
      a.verify_file = next();
    } else {
      a.positional.push_back(s);
    }
  }
  return a;
}

int usage() {
  std::cerr << "usage: amixctl {generate|info|ops|route|mst|mincut|"
               "estimate-tau|trace|workload|client} "
               "... (see the header of tools/amixctl.cpp)\n";
  return 2;
}

// Enumerate the op-registration table: every query kind a mix file (and
// the amixd wire) accepts, straight from the registry — this listing can
// never lag behind what the engine actually serves.
int cmd_ops() {
  Table table({"op", "syntax", "bounds", "sample"});
  for (const engine::OpRow& row : engine::op_table()) {
    table.row().add(row.name).add(row.wire_syntax).add(row.bounds).add(
        row.sample_line);
  }
  table.print_report(std::cout, "registered query ops");
  return 0;
}

Graph make(const std::string& family, NodeId n, std::uint32_t param,
           Rng& rng) {
  if (family == "regular") return gen::random_regular(n, param ? param : 8, rng);
  if (family == "gnp") {
    const double p = static_cast<double>(param ? param : 8) / n;
    return gen::connected_gnp(n, p, rng);
  }
  if (family == "hypercube") {
    std::uint32_t dim = 0;
    while ((NodeId{1} << (dim + 1)) <= n) ++dim;
    return gen::hypercube(dim);
  }
  if (family == "torus") {
    NodeId side = 2;
    while ((side + 1) * (side + 1) <= n) ++side;
    return gen::torus2d(side);
  }
  if (family == "ring") return gen::ring(n);
  if (family == "ws") return gen::watts_strogatz(n, param ? param : 3, 0.2, rng);
  if (family == "ba") return gen::barabasi_albert(n, param ? param : 3, rng);
  AMIX_CHECK_MSG(false, "unknown family");
  return {};
}

int cmd_generate(const Args& a) {
  AMIX_CHECK_MSG(a.positional.size() >= 3, "generate needs <family> <n>");
  AMIX_CHECK_MSG(!a.out.empty(), "generate needs -o <file>");
  Rng rng(a.seed);
  const auto n = static_cast<NodeId>(std::stoul(a.positional[2]));
  const std::uint32_t param =
      a.positional.size() > 3
          ? static_cast<std::uint32_t>(std::stoul(a.positional[3]))
          : 0;
  const Graph g = make(a.positional[1], n, param, rng);
  const Weights w = distinct_random_weights(g, rng);
  save_graph(a.out, g, &w);
  std::cout << "wrote " << a.out << ": n=" << g.num_nodes()
            << " m=" << g.num_edges() << "\n";
  return 0;
}

int cmd_info(const Args& a) {
  AMIX_CHECK_MSG(a.positional.size() >= 2, "info needs <file>");
  const GraphFile f = load_graph(a.positional[1]);
  const Graph& g = f.graph;
  Rng rng(a.seed);
  std::cout << "n=" << g.num_nodes() << " m=" << g.num_edges()
            << " max_degree=" << g.max_degree()
            << " connected=" << (is_connected(g) ? "yes" : "no")
            << " weighted=" << (f.weights ? "yes" : "no") << "\n";
  if (!is_connected(g)) return 0;
  std::cout << "diameter>=" << diameter_double_sweep(g)
            << " tau_mix~=" << mixing_time_sampled(g, WalkKind::kLazy, 4,
                                                   rng, 1u << 24)
            << " h(G)<=" << edge_expansion_sweep(g) << "\n";
  return 0;
}

int cmd_route(const Args& a) {
  AMIX_CHECK_MSG(a.positional.size() >= 2, "route needs <file>");
  const GraphFile f = load_graph(a.positional[1]);
  Rng rng(a.seed);
  SessionOptions so;
  so.seed = a.seed;
  so.hierarchy.seed = a.seed;
  auto session = Session::open(f.graph, so);
  const auto reqs = a.demand ? degree_demand_instance(f.graph, rng)
                             : permutation_instance(f.graph, rng);
  const QueryReport rep = session.route(reqs, 0);
  const Hierarchy& h =
      session.engine().cache().find(f.graph, so.hierarchy)->hierarchy();
  std::cout << "hierarchy: beta=" << h.beta() << " depth=" << h.depth()
            << " tau_mix=" << h.stats().tau_mix << " build_rounds="
            << session.ledger().phase_total("hierarchy-build") << "\n";
  std::cout << "routed " << rep.route->delivered << "/" << reqs.size()
            << " in " << rep.rounds << " rounds (" << rep.route->phases
            << " phase(s))\n";
  if (!a.json_out.empty()) {
    std::ofstream os(a.json_out);
    AMIX_CHECK_MSG(os.good(), "cannot open --json file");
    rep.to_json(os, a.wall);
    os << "\n";
  }
  return rep.ok ? 0 : 1;
}

int cmd_mst(const Args& a) {
  AMIX_CHECK_MSG(a.positional.size() >= 2, "mst needs <file>");
  const GraphFile f = load_graph(a.positional[1]);
  AMIX_CHECK_MSG(f.weights.has_value(), "instance has no weights");
  const Graph& g = f.graph;
  const Weights& w = *f.weights;
  RoundLedger ledger;
  std::vector<EdgeId> edges;
  if (a.engine == "hier") {
    SessionOptions so;
    so.seed = a.seed;
    so.hierarchy.seed = a.seed;
    auto session = Session::open(g, so);
    const QueryReport rep = session.mst(w);
    edges = rep.mst->edges;
    ledger.charge(session.ledger().total());
    if (!a.json_out.empty()) {
      std::ofstream os(a.json_out);
      AMIX_CHECK_MSG(os.good(), "cannot open --json file");
      rep.to_json(os, a.wall);
      os << "\n";
    }
  } else if (a.engine == "flood") {
    edges = flood_boruvka(g, w, ledger).edges;
  } else if (a.engine == "kernel") {
    edges = kernel_boruvka(g, w, ledger, a.seed).edges;
  } else if (a.engine == "piped") {
    edges = pipelined_boruvka(g, w, ledger).edges;
  } else {
    return usage();
  }
  const bool ok = is_exact_mst(g, w, edges);
  std::cout << "engine=" << a.engine << " rounds=" << ledger.total()
            << " mst_weight=" << w.total(edges)
            << " exact=" << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}

int cmd_mincut(const Args& a) {
  AMIX_CHECK_MSG(a.positional.size() >= 2, "mincut needs <file>");
  const GraphFile f = load_graph(a.positional[1]);
  Rng rng(a.seed);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = a.seed;
  const Hierarchy h = Hierarchy::build(f.graph, hp, ledger);
  const auto stats =
      distributed_mincut_tree_packing(h, rng, ledger, a.trees);
  std::cout << "approx_mincut=" << stats.cut_value
            << " trees=" << stats.trees << " rounds=" << stats.rounds;
  if (f.graph.num_nodes() <= 600) {
    std::cout << " exact=" << stoer_wagner_mincut(f.graph);
  }
  std::cout << "\n";
  return 0;
}

int cmd_estimate_tau(const Args& a) {
  AMIX_CHECK_MSG(a.positional.size() >= 2, "estimate-tau needs <file>");
  const GraphFile f = load_graph(a.positional[1]);
  Rng rng(a.seed);
  RoundLedger ledger;
  TauEstimatorParams params;
  const auto est = estimate_tau_distributed(f.graph, params, rng, ledger);
  std::cout << "estimated_tau=" << est.tau << " probes=" << est.probes
            << " protocol_rounds=" << est.rounds << "\n";
  return 0;
}

int cmd_trace(const Args& a) {
  AMIX_CHECK_MSG(a.positional.size() >= 2, "trace needs <file>");
  const GraphFile f = load_graph(a.positional[1]);
  const Graph& g = f.graph;
  Rng rng(a.seed);

  obs::TraceRecorder rec;
  obs::ObsInstrument ins(rec);
  RoundLedger ledger;
  {
    const obs::ScopedRecorder rscope(&rec);
    const congest::ScopedInstrument iscope(&ins);

    HierarchyParams hp;
    hp.seed = a.seed;
    const Hierarchy h = Hierarchy::build(g, hp, ledger);

    if (a.scenario == "mst") {
      Weights w = f.weights ? *f.weights : distinct_random_weights(g, rng);
      const MstStats ms = HierarchicalBoruvka(h, w).run(ledger);
      AMIX_CHECK_MSG(is_exact_mst(g, w, ms.edges),
                     "traced MST run is not exact");
    } else if (a.scenario == "route") {
      const auto reqs = a.demand ? degree_demand_instance(g, rng)
                                 : permutation_instance(g, rng);
      HierarchicalRouter router(h);
      const RouteStats rs = router.route_in_phases(reqs, 0, ledger, rng);
      AMIX_CHECK_MSG(rs.delivered == reqs.size(),
                     "traced route run dropped packets");
    } else if (a.scenario == "clique") {
      CliqueEmulator emu(h);
      emu.emulate_round(ledger, rng);
    } else {
      return usage();
    }
  }

  const obs::ExportOptions eo{.include_wall_time = a.wall};
  {
    std::ofstream os(a.trace_out);
    AMIX_CHECK_MSG(os.good(), "cannot open --trace-out file");
    rec.write_chrome_trace(os, eo);
  }
  {
    std::ofstream os(a.metrics_out);
    AMIX_CHECK_MSG(os.good(), "cannot open --metrics-out file");
    const bool csv = a.metrics_out.size() >= 4 &&
                     a.metrics_out.substr(a.metrics_out.size() - 4) == ".csv";
    if (csv) {
      rec.metrics().write_csv(os);
    } else {
      rec.metrics().write_json(os);
    }
  }
  if (!a.tree_out.empty()) {
    std::ofstream os(a.tree_out);
    AMIX_CHECK_MSG(os.good(), "cannot open --tree file");
    rec.write_text_tree(os, eo);
  }

  std::cout << "scenario=" << a.scenario << " rounds=" << ledger.total()
            << " spans=" << rec.spans().size()
            << " token_moves=" << rec.token_moves() << "\n"
            << "wrote " << a.trace_out << " and " << a.metrics_out << "\n";
  const obs::BoundReport report = obs::BoundChecker().check(rec.metrics());
  std::cout << report.summary();
  return report.ok() ? 0 : 1;
}

int cmd_workload(const Args& a) {
  AMIX_CHECK_MSG(a.positional.size() >= 3, "workload needs <file> <mixfile>");
  const GraphFile f = load_graph(a.positional[1]);
  const Graph& g = f.graph;
  std::ifstream mix(a.positional[2]);
  AMIX_CHECK_MSG(mix.good(), "cannot open mix file");

  // One QuerySpec per mix-file line through the shared grammar
  // (server/mix.hpp — amixd parses request bodies with the same
  // function). The 1-based line number keys the spec's seed and its
  // instance randomness, so a workload is reproducible from
  // (graph, mixfile, --seed) alone.
  std::vector<QuerySpec> specs;
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(mix, line)) {
    ++lineno;
    QuerySpec spec;
    std::string perr;
    const server::MixParse mp = server::parse_mix_line(
        g, f.weights ? &*f.weights : nullptr, line, lineno,
        keyed_u64(a.seed, 0x776f726b6c6f6164ULL, lineno), &spec, &perr);
    AMIX_CHECK_MSG(mp != server::MixParse::kError &&
                       mp != server::MixParse::kUnsupportedOp,
                   ("mix line " + std::to_string(lineno) + ": " + perr)
                       .c_str());
    if (mp == server::MixParse::kQuery) specs.push_back(std::move(spec));
  }
  AMIX_CHECK_MSG(!specs.empty(), "mix file has no queries");

  EngineOptions eo;
  eo.hierarchy.seed = a.seed;
  eo.exec = ExecPolicy{a.threads};
  QueryEngine eng(g, std::move(eo));

  BatchReport b;
  for (std::uint32_t r = 0; r < std::max(a.repeat, 1u); ++r) {
    for (const QuerySpec& s : specs) eng.submit(s);
    b = eng.run();  // repeats after the first hit the hierarchy cache
  }

  Table table({"query", "kind", "ok", "rounds", "transport", "tokens",
               "digest"});
  for (const QueryReport& q : b.queries) {
    table.row()
        .add(q.label)
        .add(query_kind_name(q.kind))
        .add(q.ok ? "yes" : "NO")
        .add(q.rounds)
        .add(q.transport_rounds)
        .add(q.token_moves)
        .add(std::to_string(q.output_digest % 100000000));
  }
  table.print_report(std::cout, "workload: " + a.positional[2]);

  std::cout << "engine_rounds=" << b.engine_rounds
            << " (build=" << b.hierarchy_build_rounds
            << " transport=" << b.multiplexed_transport_rounds
            << " serialized=" << b.serialized_rounds << ")\n"
            << "standalone_total=" << b.standalone_total_rounds
            << " saved=" << b.standalone_total_rounds - b.engine_rounds
            << " shared_groups=" << b.merged_shared_groups << "/"
            << b.merged_groups << " cache=" << b.cache_hits << "h/"
            << b.cache_misses << "m\n";

  if (!a.json_out.empty()) {
    std::ofstream os(a.json_out);
    AMIX_CHECK_MSG(os.good(), "cannot open --json file");
    b.to_json(os, a.wall);
    os << "\n";
    std::cout << "wrote " << a.json_out << "\n";
  }
  return b.all_ok() ? 0 : 1;
}

// The replayable tail of an amixd query-response body: everything from
// "batch_rounds" on is a pure function of (graph content, hierarchy
// params, seed, base, body lines) — see Server::run_query.
std::string response_tail(const std::string& body) {
  const auto pos = body.find("\"batch_rounds\"");
  AMIX_CHECK_MSG(pos != std::string::npos,
                 "response body has no batch_rounds field");
  return body.substr(pos);
}

int cmd_client(const Args& a) {
  AMIX_CHECK_MSG(a.positional.size() >= 2, "client needs <mixfile>");
  AMIX_CHECK_MSG(a.port != 0, "client needs --port");
  std::ifstream mix(a.positional[1]);
  AMIX_CHECK_MSG(mix.good(), "cannot open mix file");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(mix, line)) lines.push_back(line);
  AMIX_CHECK_MSG(!lines.empty(), "mix file is empty");

  server::RequestHeader hdr;
  hdr.verb = server::Verb::kQuery;
  hdr.graph = a.graph_name;
  hdr.tenant = a.tenant;
  hdr.seed = a.seed;
  hdr.base = 0;  // body line i is session call i

  // --threads concurrent connections, each sending the mix --repeat
  // times. Identical (seed, base) means every response must carry the
  // same replayable tail — asserted below.
  const std::uint32_t threads = std::max(a.threads, 1u);
  const std::uint32_t repeat = std::max(a.repeat, 1u);
  std::mutex mu;
  std::vector<std::string> bodies;
  std::vector<std::string> errors;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      server::Client c;
      std::string err;
      if (!c.connect_to(a.port, &err)) {
        const std::lock_guard lock(mu);
        errors.push_back(err);
        return;
      }
      for (std::uint32_t r = 0; r < repeat; ++r) {
        server::ResponseHeader resp;
        std::string body;
        if (!c.request(hdr, lines, &resp, &body, &err)) {
          const std::lock_guard lock(mu);
          errors.push_back(err);
          return;
        }
        if (!resp.ok) {
          const std::lock_guard lock(mu);
          errors.push_back(std::string(server::error_code_name(resp.code)) +
                           ": " + resp.error_msg);
          return;
        }
        const std::lock_guard lock(mu);
        bodies.push_back(std::move(body));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (!errors.empty()) {
    std::cerr << "client: " << errors.front() << "\n";
    return 1;
  }

  const std::string tail = response_tail(bodies.front());
  for (const std::string& b : bodies) {
    if (response_tail(b) != tail) {
      std::cerr << "client: determinism violation — responses differ "
                   "across threads/repeats\n";
      return 1;
    }
  }
  std::cout << bodies.back() << "\n";
  if (!a.json_out.empty()) {
    std::ofstream os(a.json_out);
    AMIX_CHECK_MSG(os.good(), "cannot open --json file");
    os << bodies.back() << "\n";
    std::cerr << "wrote " << a.json_out << "\n";
  }

  if (!a.verify_file.empty()) {
    // Serial in-process replay: same grammar, same per-line call seeds,
    // same execute_query/fold_batch the server workers use. The formatted
    // tail must match the wire bytes exactly.
    const GraphFile f = load_graph(a.verify_file);
    HierarchyParams hp;
    hp.seed = a.seed;
    RoundLedger build_ledger;
    const Hierarchy h = Hierarchy::build(f.graph, hp, build_ledger);
    std::vector<engine::QueryExecution> execs;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      QuerySpec spec;
      std::string perr;
      const server::MixParse mp = server::parse_mix_line(
          f.graph, f.weights ? &*f.weights : nullptr, lines[i], i,
          Session::call_seed(a.seed, i), &spec, &perr);
      AMIX_CHECK_MSG(mp != server::MixParse::kError &&
                         mp != server::MixParse::kUnsupportedOp,
                     perr.c_str());
      if (mp != server::MixParse::kQuery) continue;
      execs.push_back(engine::execute_query(
          f.graph, h, spec, static_cast<std::uint32_t>(i), nullptr));
    }
    BatchReport b;
    engine::fold_batch(std::move(execs), b);
    std::ostringstream os;
    os << "\"batch_rounds\":"
       << b.multiplexed_transport_rounds + b.serialized_rounds
       << ",\"multiplexed_transport_rounds\":"
       << b.multiplexed_transport_rounds
       << ",\"serialized_rounds\":" << b.serialized_rounds
       << ",\"standalone_query_rounds\":" << b.standalone_query_rounds
       << ",\"queries\":[";
    for (std::size_t i = 0; i < b.queries.size(); ++i) {
      if (i != 0) os << ',';
      b.queries[i].to_json(os);
    }
    os << "]}";
    if (os.str() != tail) {
      std::cerr << "client: VERIFY FAILED — wire response differs from "
                   "serial replay\n  wire:   "
                << tail.substr(0, 200) << "...\n  replay: "
                << os.str().substr(0, 200) << "...\n";
      return 1;
    }
    std::cout << "verify: OK — " << bodies.size()
              << " response(s) byte-identical to serial replay ("
              << tail.size() << " bytes)\n";
  }
  return tail.find("\"ok\":false") == std::string::npos ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const Args a = parse(argc, argv);
  const std::string cmd = a.positional.empty() ? "" : a.positional[0];
  if (cmd == "generate") return cmd_generate(a);
  if (cmd == "info") return cmd_info(a);
  if (cmd == "ops") return cmd_ops();
  if (cmd == "route") return cmd_route(a);
  if (cmd == "mst") return cmd_mst(a);
  if (cmd == "mincut") return cmd_mincut(a);
  if (cmd == "estimate-tau") return cmd_estimate_tau(a);
  if (cmd == "trace") return cmd_trace(a);
  if (cmd == "workload") return cmd_workload(a);
  if (cmd == "client") return cmd_client(a);
  return usage();
}
