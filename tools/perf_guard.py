#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Used by CI's perf jobs:

  * the observability zero-overhead guard — the token-transport hot path
    must not regress when no TraceRecorder is installed (the obs seam is
    one thread-local load + branch, shared with the pre-existing
    instrument seam, so the expected delta is zero), and
  * the substrate hot-path guard — the devirtualized CSR sweep
    (BM_WalkEngineSteps), the sharded transport commit
    (BM_TokenTransportCommit), and the SoA sync-network round
    (BM_SyncNetworkRound) are the round-for-round cost model of the whole
    simulator; a regression there taxes every experiment.

    perf_guard.py --baseline BENCH_simulator.json \
                  --current bench-guard.json \
                  --benchmark BM_TokenTransportCommit \
                  --benchmark BM_WalkEngineSteps \
                  --tolerance 0.03 --report perf-guard-report.txt

Rows are matched by benchmark name (prefix-filtered by the --benchmark
flags; repeat the flag to gate several benchmark families in one run).
When the current file holds repetition aggregates, the `_median` rows are
used and the suffix is stripped for matching — medians are what make a
tight tolerance meaningful on shared runners. Exits 1 when any matched
row's gated time (--metric: cpu_time by default, real_time for IO-bound
rows like BM_ServerQueryLoad) exceeds baseline * (1 + tolerance);
missing rows are an error (a silently renamed benchmark must not
disable the guard).
--report additionally writes the comparison table to a file so CI can
archive it as an artifact next to the raw JSON.

Stdlib only; no pip dependencies.
"""

import argparse
import json
import sys


def load_rows(path, prefixes, metric):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    has_aggregates = any(
        b["name"].endswith("_median") for b in doc.get("benchmarks", [])
    )
    for b in doc.get("benchmarks", []):
        name = b["name"]
        if has_aggregates:
            if not name.endswith("_median"):
                continue
            name = name[: -len("_median")]
        if not any(name.startswith(p) for p in prefixes):
            continue
        rows[name] = float(b[metric])
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument(
        "--benchmark",
        action="append",
        default=None,
        help="benchmark name prefix (repeatable; default: all rows)",
    )
    ap.add_argument("--tolerance", type=float, default=0.03)
    ap.add_argument(
        "--metric",
        choices=["cpu_time", "real_time"],
        default="cpu_time",
        help="which benchmark time to gate (real_time for IO-bound rows "
        "like the amixd server load bench, where the product is "
        "wall-clock request latency, not CPU burn)",
    )
    ap.add_argument(
        "--report", default=None, help="also write the comparison table here"
    )
    args = ap.parse_args()
    prefixes = args.benchmark if args.benchmark else [""]

    base = load_rows(args.baseline, prefixes, args.metric)
    cur = load_rows(args.current, prefixes, args.metric)
    if not base:
        print(f"perf_guard: no baseline rows match {prefixes}")
        return 1
    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"perf_guard: rows missing from current run: {missing}")
        return 1

    failed = False
    lines = [f"{'benchmark':<44} {'baseline':>12} {'current':>12} {'delta':>8}"]
    for name in sorted(base):
        b, c = base[name], cur[name]
        delta = (c - b) / b
        verdict = "ok" if delta <= args.tolerance else "REGRESSION"
        failed |= delta > args.tolerance
        lines.append(
            f"{name:<44} {b:>12.4g} {c:>12.4g} {delta:>+7.1%} {verdict}"
        )
    if failed:
        lines.append(
            f"perf_guard: regression beyond {args.tolerance:.0%} tolerance"
        )
    else:
        lines.append(
            f"perf_guard: all rows within {args.tolerance:.0%} of baseline"
        )
    report = "\n".join(lines)
    print(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report + "\n")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
