#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Used by CI's perf-smoke job as the observability zero-overhead guard: the
token-transport hot path must not regress when no TraceRecorder is
installed (the obs seam is one thread-local load + branch, shared with the
pre-existing instrument seam, so the expected delta is zero).

    perf_guard.py --baseline BENCH_simulator.json \
                  --current bench-transport-guard.json \
                  --benchmark BM_TokenTransportCommit --tolerance 0.03

Rows are matched by benchmark name (prefix-filtered by --benchmark). When
the current file holds repetition aggregates, the `_median` rows are used
and the suffix is stripped for matching — medians are what make a 3%
tolerance meaningful on shared runners. Exits 1 when any matched row's
cpu_time exceeds baseline * (1 + tolerance); missing rows are an error
(a silently renamed benchmark must not disable the guard).

Stdlib only; no pip dependencies.
"""

import argparse
import json
import sys


def load_rows(path, prefix):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    has_aggregates = any(
        b["name"].endswith("_median") for b in doc.get("benchmarks", [])
    )
    for b in doc.get("benchmarks", []):
        name = b["name"]
        if has_aggregates:
            if not name.endswith("_median"):
                continue
            name = name[: -len("_median")]
        if not name.startswith(prefix):
            continue
        rows[name] = float(b["cpu_time"])
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--benchmark", default="", help="benchmark name prefix")
    ap.add_argument("--tolerance", type=float, default=0.03)
    args = ap.parse_args()

    base = load_rows(args.baseline, args.benchmark)
    cur = load_rows(args.current, args.benchmark)
    if not base:
        print(f"perf_guard: no baseline rows match '{args.benchmark}'")
        return 1
    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"perf_guard: rows missing from current run: {missing}")
        return 1

    failed = False
    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(base):
        b, c = base[name], cur[name]
        delta = (c - b) / b
        verdict = "ok" if delta <= args.tolerance else "REGRESSION"
        failed |= delta > args.tolerance
        print(f"{name:<44} {b:>10.0f}ns {c:>10.0f}ns {delta:>+7.1%} {verdict}")
    if failed:
        print(f"perf_guard: regression beyond {args.tolerance:.0%} tolerance")
        return 1
    print(f"perf_guard: all rows within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
