// mst/kernel_boruvka: the fully message-passing GHS-style baseline.
// Ground truth for the analytic flood baseline's round charges.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mst/baseline_mst.hpp"
#include "mst/kernel_boruvka.hpp"
#include "mst/verify.hpp"

namespace amix {
namespace {

struct KernelCase {
  const char* name;
  Graph (*make)(Rng&);
};

Graph kc_ring(Rng&) { return gen::ring(64); }
Graph kc_path(Rng&) { return gen::path(50); }
Graph kc_reg(Rng& rng) { return gen::random_regular(80, 4, rng); }
Graph kc_gnp(Rng& rng) { return gen::connected_gnp(80, 0.1, rng); }
Graph kc_star(Rng&) { return gen::star(40); }
Graph kc_hyper(Rng&) { return gen::hypercube(6); }
Graph kc_barbell(Rng&) { return gen::barbell(30); }

class KernelBoruvkaFamilies : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelBoruvkaFamilies, MatchesKruskal) {
  Rng rng(61);
  const Graph g = GetParam().make(rng);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger ledger;
  const auto stats = kernel_boruvka(g, w, ledger);
  EXPECT_TRUE(is_exact_mst(g, w, stats.edges)) << GetParam().name;
  EXPECT_EQ(stats.rounds, ledger.total());
  EXPECT_GE(stats.iterations, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Families, KernelBoruvkaFamilies,
    ::testing::Values(KernelCase{"ring", kc_ring}, KernelCase{"path", kc_path},
                      KernelCase{"regular", kc_reg}, KernelCase{"gnp", kc_gnp},
                      KernelCase{"star", kc_star},
                      KernelCase{"hypercube", kc_hyper},
                      KernelCase{"barbell", kc_barbell}),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return info.param.name;
    });

TEST(KernelBoruvka, SeedSweepAllCorrect) {
  Rng graph_rng(62);
  const Graph g = gen::connected_gnp(60, 0.12, graph_rng);
  const Weights w = distinct_random_weights(g, graph_rng);
  const auto oracle = kruskal_mst(g, w);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RoundLedger ledger;
    const auto stats = kernel_boruvka(g, w, ledger, seed);
    EXPECT_EQ(stats.edges, oracle) << "seed=" << seed;
  }
}

TEST(KernelBoruvka, RoundsTrackTheAnalyticFloodCharge) {
  // The kernel run and the analytic flood baseline model the same regime:
  // per iteration, ~constant many sweeps over fragment trees. Their round
  // counts must agree within a small constant factor (they use different
  // merge rules — coins vs all-merge — so iteration counts differ a bit).
  Rng rng(63);
  const Graph g = gen::connected_gnp(100, 0.08, rng);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger kl, fl;
  const auto ks = kernel_boruvka(g, w, kl);
  const auto fs = flood_boruvka(g, w, fl);
  EXPECT_TRUE(is_exact_mst(g, w, ks.edges));
  EXPECT_TRUE(is_exact_mst(g, w, fs.edges));
  const double per_iter_kernel =
      static_cast<double>(ks.rounds) / ks.iterations;
  const double per_iter_flood = static_cast<double>(fs.rounds) / fs.iterations;
  EXPECT_LT(per_iter_kernel, 12 * per_iter_flood);
  EXPECT_GT(per_iter_kernel, per_iter_flood / 12);
}

TEST(KernelBoruvka, TinyGraphs) {
  {
    const Graph g = gen::path(2);
    const Weights w(g, {5});
    RoundLedger ledger;
    const auto stats = kernel_boruvka(g, w, ledger);
    EXPECT_EQ(stats.edges, std::vector<EdgeId>{0});
  }
  {
    const Graph g = gen::ring(3);
    const Weights w(g, {30, 10, 20});
    RoundLedger ledger;
    const auto stats = kernel_boruvka(g, w, ledger);
    EXPECT_EQ(stats.edges, (std::vector<EdgeId>{1, 2}));
  }
}

TEST(KernelBoruvka, LongPathPaysLinearRounds) {
  // The GHS-regime signature: fragment diameters grow to Theta(n), so a
  // path costs Omega(n) rounds in total.
  Rng rng(64);
  const Graph g = gen::path(200);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger ledger;
  const auto stats = kernel_boruvka(g, w, ledger);
  EXPECT_TRUE(is_exact_mst(g, w, stats.edges));
  EXPECT_GE(stats.rounds, g.num_nodes());
}

}  // namespace
}  // namespace amix
