// engine/: the multi-query engine — standalone-identical per-query
// attribution under round multiplexing, thread-count invariance of the
// ordered merge, engine-owned fault plans, the hierarchy cache, and
// integration with the sim harness and the obs tracer.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "amix/amix.hpp"

namespace amix {
namespace {

std::vector<std::uint32_t> all_nodes(const Graph& g) {
  std::vector<std::uint32_t> starts(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) starts[v] = v;
  return starts;
}

/// A mixed batch over one graph: MST + two routing instances + walks,
/// plus a clique round on the smaller graphs.
std::vector<QuerySpec> mixed_batch(const Graph& g, Rng& rng,
                                   bool with_clique) {
  std::vector<QuerySpec> specs;
  {
    QuerySpec s;
    s.op = MstQuery{distinct_random_weights(g, rng), MstParams{}};
    s.seed = 11;
    specs.push_back(std::move(s));
  }
  {
    QuerySpec s;
    s.op = RouteQuery{permutation_instance(g, rng), 1};
    s.seed = 22;
    specs.push_back(std::move(s));
  }
  {
    QuerySpec s;
    s.op = WalkQuery{all_nodes(g), WalkKind::kLazy, 6};
    s.seed = 33;
    specs.push_back(std::move(s));
  }
  {
    QuerySpec s;
    s.op = RouteQuery{permutation_instance(g, rng), 1};
    s.seed = 44;
    specs.push_back(std::move(s));
  }
  if (with_clique) {
    QuerySpec s;
    s.op = CliqueQuery{};
    s.seed = 55;
    specs.push_back(std::move(s));
  }
  {
    QuerySpec s;
    s.op = MatchingQuery{};
    s.seed = 66;
    specs.push_back(std::move(s));
  }
  {
    QuerySpec s;
    s.op = SsspQuery{distinct_random_weights(g, rng), 0, 0};
    s.seed = 77;
    specs.push_back(std::move(s));
  }
  if (with_clique) {  // the expensive kind rides the small-graph gate too
    QuerySpec s;
    s.op = MinCutQuery{2, true};
    s.seed = 88;
    specs.push_back(std::move(s));
  }
  return specs;
}

struct StandaloneRun {
  std::uint64_t rounds = 0;
  std::uint64_t digest = 0;
  std::vector<std::pair<std::string, std::uint64_t>> phases;
};

/// Replays one spec on the documented low-level layer: prebuilt
/// hierarchy, fresh ledger, the spec's query_seed. This is exactly what
/// QueryReport promises to match.
StandaloneRun run_standalone(const Graph& g, const Hierarchy& h,
                             const QuerySpec& spec) {
  StandaloneRun out;
  RoundLedger ledger;
  sim::Digest digest;
  const std::uint64_t qseed = query_seed(spec);
  if (const auto* q = std::get_if<MstQuery>(&spec.op)) {
    MstParams params = q->params;
    params.seed = qseed;
    const MstStats s = HierarchicalBoruvka(h, q->weights).run(ledger, params);
    std::vector<EdgeId> edges = s.edges;
    std::sort(edges.begin(), edges.end());
    digest.fold_range(edges);
  } else if (const auto* q = std::get_if<RouteQuery>(&spec.op)) {
    Rng rng(qseed);
    const RouteStats s = HierarchicalRouter(h).route_in_phases(
        q->requests, q->phases, ledger, rng);
    digest.fold(s.packets);
    digest.fold(s.delivered);
    digest.fold(s.max_vid_load);
  } else if (const auto* q = std::get_if<CliqueQuery>(&spec.op)) {
    Rng rng(qseed);
    const CliqueEmulationStats s =
        CliqueEmulator(h).emulate_round(ledger, rng, q->edge_expansion);
    digest.fold(s.messages);
    digest.fold(s.phases);
  } else if (const auto* q = std::get_if<WalkQuery>(&spec.op)) {
    BaseComm base(g);
    ParallelWalkEngine walker(base, Rng(qseed));
    WalkStats s;
    const auto ends = walker.run(q->starts, q->kind, q->steps, ledger, &s);
    digest.fold_range(ends);
  } else if (const auto* q = std::get_if<MatchingQuery>(&spec.op)) {
    const MatchingStats s =
        distributed_greedy_matching(g, qseed, ledger, q->max_phases);
    digest.fold_range(s.edges);
    digest.fold(s.phases);
  } else if (const auto* q = std::get_if<MinCutQuery>(&spec.op)) {
    Rng rng(qseed);
    const MincutStats s = distributed_mincut_tree_packing(
        h, rng, ledger, q->trees, q->two_respecting);
    digest.fold(s.cut_value);
    digest.fold(s.trees);
  } else if (const auto* q = std::get_if<SsspQuery>(&spec.op)) {
    const SsspStats s =
        distributed_sssp(g, q->weights, q->source, ledger, q->max_hops);
    digest.fold_range(s.dist);
  }
  out.rounds = ledger.total();
  out.digest = digest.value();
  out.phases = ledger.phases();
  return out;
}

std::string report_json(const BatchReport& b) {
  std::ostringstream os;
  b.to_json(os);
  return os.str();
}

// ---- Per-query attribution ---------------------------------------------

TEST(QueryEngine, AttributionMatchesStandaloneAcrossCorpus) {
  for (const sim::Scenario& sc : sim::seeded_corpus(71)) {
    Rng rng(sc.seed);
    const std::vector<QuerySpec> specs =
        mixed_batch(sc.graph, rng, sc.graph.num_nodes() <= 40);

    QueryEngine eng(sc.graph);
    for (const QuerySpec& s : specs) eng.submit(s);
    const BatchReport b = eng.run();
    ASSERT_EQ(b.queries.size(), specs.size()) << sc.name;
    EXPECT_TRUE(b.all_ok()) << sc.name;

    // The engine's hierarchy is content-determined: rebuilding from the
    // same params on the same topology replays it exactly.
    RoundLedger build_ledger;
    const Hierarchy h =
        Hierarchy::build(sc.graph, HierarchyParams{}, build_ledger);
    EXPECT_EQ(b.hierarchy_build_rounds, build_ledger.total()) << sc.name;

    for (std::size_t i = 0; i < specs.size(); ++i) {
      const StandaloneRun alone = run_standalone(sc.graph, h, specs[i]);
      const QueryReport& rep = b.queries[i];
      EXPECT_EQ(rep.rounds, alone.rounds) << sc.name << " query " << i;
      EXPECT_EQ(rep.output_digest, alone.digest)
          << sc.name << " query " << i;
      EXPECT_EQ(rep.phases, alone.phases) << sc.name << " query " << i;
    }
  }
}

// ---- Multiplexing accounting -------------------------------------------

TEST(QueryEngine, BatchedRunCostsLessThanStandaloneSum) {
  for (const sim::Scenario& sc : sim::seeded_corpus(72)) {
    Rng rng(sc.seed);
    QueryEngine eng(sc.graph);
    for (QuerySpec& s : mixed_batch(sc.graph, rng, false)) {
      eng.submit(std::move(s));
    }
    const BatchReport b = eng.run();

    EXPECT_EQ(b.engine_rounds, b.hierarchy_build_rounds +
                                   b.multiplexed_transport_rounds +
                                   b.serialized_rounds)
        << sc.name;
    EXPECT_LE(b.multiplexed_transport_rounds, b.standalone_transport_rounds)
        << sc.name;
    EXPECT_LT(b.engine_rounds, b.standalone_total_rounds) << sc.name;
    EXPECT_GT(b.merged_shared_groups, 0u) << sc.name;
  }
}

TEST(QueryEngine, SecondRunHitsHierarchyCache) {
  const Graph g = sim::seeded_corpus(73)[0].graph;
  Rng rng(5);
  QueryEngine eng(g);

  QuerySpec s;
  s.op = RouteQuery{permutation_instance(g, rng), 1};
  s.seed = 9;
  eng.submit(s);
  const BatchReport first = eng.run();
  EXPECT_EQ(first.cache_misses, 1u);
  EXPECT_GT(first.hierarchy_build_rounds, 0u);

  eng.submit(s);
  const BatchReport second = eng.run();
  EXPECT_EQ(second.cache_hits, 1u);
  EXPECT_EQ(second.hierarchy_build_rounds, 0u);
  // Identical spec, warm cache: only the build charge differs.
  EXPECT_EQ(second.engine_rounds + first.hierarchy_build_rounds,
            first.engine_rounds);
  EXPECT_EQ(second.queries[0].output_digest, first.queries[0].output_digest);
}

// ---- Determinism under threading ---------------------------------------

TEST(QueryEngine, ThreadInvarianceReportsByteIdentical) {
  const auto corpus = sim::seeded_corpus(74);
  for (std::size_t which : {std::size_t{0}, std::size_t{3}}) {
    const sim::Scenario& sc = corpus[which];
    std::vector<std::string> jsons;
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      Rng rng(sc.seed);
      EngineOptions opt;
      opt.exec = ExecPolicy{threads};
      QueryEngine eng(sc.graph, std::move(opt));
      for (QuerySpec& s : mixed_batch(sc.graph, rng, false)) {
        eng.submit(std::move(s));
      }
      jsons.push_back(report_json(eng.run()));
    }
    EXPECT_EQ(jsons[0], jsons[1]) << sc.name << ": 1 vs 2 threads";
    EXPECT_EQ(jsons[0], jsons[2]) << sc.name << ": 1 vs 8 threads";
  }
}

// ---- Engine-owned fault plans ------------------------------------------

TEST(QueryEngine, FaultedQueriesKeepStandaloneAttribution) {
  const auto corpus = sim::seeded_corpus(75);
  for (std::size_t which : {std::size_t{0}, std::size_t{4}}) {
    const sim::Scenario& sc = corpus[which];
    Rng rng(sc.seed);
    const std::vector<QuerySpec> specs = mixed_batch(sc.graph, rng, false);

    EngineOptions faulty;
    faulty.fault_factory = [] {
      return std::make_unique<sim::MessageDropPlan>(0.05);
    };

    EngineOptions faulty_again = faulty;
    QueryEngine batched(sc.graph, std::move(faulty));
    for (const QuerySpec& s : specs) batched.submit(s);
    const BatchReport b = batched.run();
    EXPECT_TRUE(b.all_ok()) << sc.name;

    // Each query's plan instance is private and seeded from the spec, so
    // the same spec alone — in a different engine — charges identically.
    QueryEngine solo(sc.graph, std::move(faulty_again));
    for (std::size_t i = 0; i < specs.size(); ++i) {
      solo.submit(specs[i]);
      const BatchReport one = solo.run();
      ASSERT_EQ(one.queries.size(), 1u);
      const QueryReport& a = b.queries[i];
      const QueryReport& c = one.queries[0];
      EXPECT_EQ(a.rounds, c.rounds) << sc.name << " query " << i;
      EXPECT_EQ(a.token_moves, c.token_moves) << sc.name << " query " << i;
      EXPECT_EQ(a.output_digest, c.output_digest)
          << sc.name << " query " << i;
      EXPECT_EQ(a.phases, c.phases) << sc.name << " query " << i;
    }

    // Faults cost extra transport; the multiplexer must still never
    // charge more than the faulted standalone sum.
    EXPECT_LE(b.multiplexed_transport_rounds, b.standalone_transport_rounds)
        << sc.name;
  }
}

// ---- Hierarchy cache ----------------------------------------------------

TEST(HierarchyCache, KeysOnContentAndParams) {
  const auto corpus = sim::seeded_corpus(76);
  const Graph& g = corpus[0].graph;
  engine::HierarchyCache cache;

  const auto first = cache.get_or_build(g, HierarchyParams{});
  EXPECT_TRUE(first.built);
  EXPECT_EQ(cache.misses(), 1u);

  // A structurally identical copy hits: the key is content, not identity.
  const Graph copy = g;
  const auto again = cache.get_or_build(copy, HierarchyParams{});
  EXPECT_FALSE(again.built);
  EXPECT_EQ(again.entry, first.entry);
  EXPECT_EQ(cache.hits(), 1u);

  // Different params rebuild.
  HierarchyParams other;
  other.seed ^= 1;
  EXPECT_TRUE(cache.get_or_build(g, other).built);
  EXPECT_EQ(cache.size(), 2u);

  // A churned topology misses.
  Rng rng(3);
  const Graph churned = gen::degree_preserving_rewire(g, 4, rng);
  EXPECT_TRUE(cache.get_or_build(churned, HierarchyParams{}).built);
  EXPECT_EQ(cache.size(), 3u);

  // invalidate drops every entry of that topology, any params.
  EXPECT_EQ(cache.invalidate(g), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(g, HierarchyParams{}), nullptr);
  EXPECT_NE(cache.find(churned, HierarchyParams{}), nullptr);
}

TEST(HierarchyCache, EntriesOutliveTheCallersGraph) {
  engine::HierarchyCache cache;
  const engine::CacheEntry* entry = nullptr;
  {
    const Graph g = sim::seeded_corpus(77)[4].graph;
    entry = cache.get_or_build(g, HierarchyParams{}).entry;
  }  // caller's graph destroyed; the entry owns its copy
  ASSERT_NE(entry, nullptr);
  Rng rng(1);
  RoundLedger ledger;
  const auto reqs = permutation_instance(entry->graph(), rng);
  const RouteStats s =
      HierarchicalRouter(entry->hierarchy()).route(reqs, ledger, rng);
  EXPECT_EQ(s.delivered, reqs.size());
}

// ---- Engine churn workflow ---------------------------------------------

TEST(QueryEngine, RebindAfterChurnRebuildsAndOldGraphInvalidates) {
  const Graph g0 = sim::seeded_corpus(78)[0].graph;
  Rng rng(9);
  const Graph g1 = gen::degree_preserving_rewire(g0, 8, rng);

  QueryEngine eng(g0);
  QuerySpec s;
  s.op = WalkQuery{all_nodes(g0), WalkKind::kLazy, 4};
  s.seed = 2;
  eng.submit(s);
  EXPECT_EQ(eng.run().cache_misses, 1u);

  eng.rebind(g1);
  eng.submit(s);
  EXPECT_EQ(eng.run().cache_misses, 1u);
  EXPECT_EQ(eng.cache().size(), 2u);
  EXPECT_EQ(eng.cache().invalidate(g0), 1u);
  EXPECT_EQ(eng.cache().size(), 1u);
}

// ---- Harness + obs integration -----------------------------------------

TEST(QueryEngine, HarnessCertifiesEngineRunsUnderFaultsAndAudit) {
  const sim::Scenario sc = sim::seeded_corpus(79)[1];
  sim::MessageDropPlan drops(0.03);
  sim::HarnessOptions opt;
  opt.seed = sc.seed;
  opt.faults = &drops;
  opt.replays = 2;
  const sim::HarnessResult res =
      sim::SimHarness(opt).run([&sc](sim::SimRun& run) {
        // Fresh engine per play: the cache must not leak state across
        // replays, or the build charge would vanish from replay ledgers.
        QueryEngine eng(sc.graph);
        Rng rng(run.rng().split());
        for (QuerySpec& s : mixed_batch(sc.graph, rng, false)) {
          eng.submit(std::move(s));
        }
        const BatchReport b = eng.run();
        run.ledger().charge("engine", b.engine_rounds);
        for (const QueryReport& q : b.queries) run.fold(q.output_digest);
        run.fold(b.engine_rounds);
      });
  EXPECT_TRUE(res.certified())
      << res.mismatch_report << res.record.audit.first_violation;
}

TEST(QueryEngine, EmitsEpochAndPerQuerySpans) {
  const sim::Scenario sc = sim::seeded_corpus(80)[4];
  obs::TraceRecorder rec;
  {
    obs::ScopedRecorder scope(&rec);
    Rng rng(sc.seed);
    QueryEngine eng(sc.graph);
    for (QuerySpec& s : mixed_batch(sc.graph, rng, false)) {
      eng.submit(std::move(s));
    }
    EXPECT_TRUE(eng.run().all_ok());
  }
  EXPECT_TRUE(rec.all_closed());
  std::size_t epoch_spans = 0, query_spans = 0;
  for (const obs::SpanRecord& span : rec.spans()) {
    if (span.name == "engine/epoch-0") ++epoch_spans;
    if (span.name.rfind("engine/query-", 0) == 0) ++query_spans;
  }
  EXPECT_EQ(epoch_spans, 1u);
  EXPECT_EQ(query_spans, 6u);  // mst + route + walks + route + matching + sssp
}

// ---- Report serialization ----------------------------------------------

TEST(QueryReportJson, DeterministicAndFloatFree) {
  const sim::Scenario sc = sim::seeded_corpus(81)[4];
  const auto render = [&sc] {
    Rng rng(sc.seed);
    QueryEngine eng(sc.graph);
    for (QuerySpec& s : mixed_batch(sc.graph, rng, true)) {
      eng.submit(std::move(s));
    }
    return report_json(eng.run());
  };
  const std::string a = render();
  EXPECT_EQ(a, render());
  EXPECT_EQ(a.find("wall_ns"), std::string::npos);
  EXPECT_EQ(a.find('.'), std::string::npos) << "floats leaked into JSON";
  for (const char* key :
       {"\"queries\":[", "\"kind\":\"mst\"", "\"kind\":\"route\"",
        "\"kind\":\"walks\"", "\"kind\":\"clique\"", "\"kind\":\"matching\"",
        "\"kind\":\"mincut\"", "\"kind\":\"sssp\"", "\"engine_rounds\":",
        "\"multiplexed_transport_rounds\":", "\"standalone_total_rounds\":",
        "\"merged_shared_groups\":", "\"phases\":{"}) {
    EXPECT_NE(a.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace amix
