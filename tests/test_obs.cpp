// obs/: OrderedMap, TraceRecorder spans, MetricsRegistry exports, the
// Chrome-trace schema (validated with a real JSON parse), BoundChecker
// envelopes on the seed corpus, thread-count invariance of the exported
// artifacts, and span integrity under fault injection.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "amix/amix.hpp"

namespace amix {
namespace {

using obs::BoundChecker;
using obs::BoundReport;
using obs::MetricsRegistry;
using obs::ObsInstrument;
using obs::ScopedRecorder;
using obs::Span;
using obs::TraceRecorder;
using sim::HarnessOptions;
using sim::HarnessResult;
using sim::Scenario;
using sim::SimHarness;
using sim::SimRun;

// ---------------------------------------------------------------------------
// OrderedMap
// ---------------------------------------------------------------------------

TEST(OrderedMap, InsertionOrderIsIterationOrder) {
  OrderedMap<std::uint64_t> m;
  m.at_or_insert("zebra") = 1;
  m.at_or_insert("alpha") = 2;
  m.at_or_insert("mid") = 3;
  m.at_or_insert("zebra") += 10;  // update must not move the key
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].first, "zebra");
  EXPECT_EQ(m[0].second, 11u);
  EXPECT_EQ(m[1].first, "alpha");
  EXPECT_EQ(m[2].first, "mid");
  EXPECT_EQ(*m.find("mid"), 3u);
  EXPECT_EQ(m.find("absent"), nullptr);
  EXPECT_TRUE(m.contains("alpha"));
}

TEST(OrderedMap, EqualityIsOrderSensitive) {
  OrderedMap<std::uint64_t> a, b;
  a.at_or_insert("x") = 1;
  a.at_or_insert("y") = 2;
  b.at_or_insert("y") = 2;
  b.at_or_insert("x") = 1;
  EXPECT_FALSE(a == b);  // same content, different first-insertion order
  OrderedMap<std::uint64_t> c;
  c.at_or_insert("x") = 1;
  c.at_or_insert("y") = 2;
  EXPECT_TRUE(a == c);
}

TEST(OrderedMap, SurvivesIndexRehashing) {
  // The index stores string_views into the item vector; growth must not
  // leave them dangling (items are std::string — stable heap storage).
  OrderedMap<std::uint64_t> m;
  for (int i = 0; i < 500; ++i) {
    m.at_or_insert("key-" + std::to_string(i)) = i;
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_NE(m.find("key-" + std::to_string(i)), nullptr) << i;
    EXPECT_EQ(*m.find("key-" + std::to_string(i)),
              static_cast<std::uint64_t>(i));
  }
}

TEST(RoundLedgerOrderedMap, PhaseChargeOrderAndTotals) {
  RoundLedger ledger;
  ledger.charge("b", 2);
  ledger.charge("a", 3);
  ledger.charge("b", 5);
  EXPECT_EQ(ledger.total(), 10u);
  EXPECT_EQ(ledger.phase_total("b"), 7u);
  ASSERT_EQ(ledger.phases().size(), 2u);
  EXPECT_EQ(ledger.phases()[0].first, "b");  // first-charge order
  EXPECT_EQ(ledger.phases()[1].first, "a");
  EXPECT_EQ(ledger.phase_map().size(), 2u);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST(TraceRecorder, SpanIsANoopWithoutARecorder) {
  ASSERT_EQ(obs::recorder(), nullptr);
  RoundLedger ledger;
  {
    const Span s(ledger, "never-recorded");
    ledger.charge(5);
  }
  // Nothing to assert beyond "didn't crash": there is no recorder to
  // inspect, which is exactly the point.
  EXPECT_EQ(obs::recorder(), nullptr);
}

TEST(TraceRecorder, NestedSpansAttributeRoundsAndParents) {
  TraceRecorder rec;
  RoundLedger ledger;
  {
    const ScopedRecorder scope(&rec);
    const Span outer(ledger, "outer");
    ledger.charge(5);
    {
      const Span inner(ledger, "inner");
      ledger.charge(3);
    }
    ledger.charge(2);
  }
  ASSERT_TRUE(rec.all_closed());
  ASSERT_EQ(rec.spans().size(), 2u);
  const auto& outer = rec.spans()[0];
  const auto& inner = rec.spans()[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(outer.rounds(), 10u);
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.parent, 0);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(inner.rounds(), 3u);
}

TEST(TraceRecorder, ScopedRecorderRestoresThePreviousRecorder) {
  TraceRecorder a, b;
  {
    const ScopedRecorder sa(&a);
    EXPECT_EQ(obs::recorder(), &a);
    {
      const ScopedRecorder sb(&b);
      EXPECT_EQ(obs::recorder(), &b);
    }
    EXPECT_EQ(obs::recorder(), &a);
  }
  EXPECT_EQ(obs::recorder(), nullptr);
}

TEST(TraceRecorder, TextTreeIndentsByDepth) {
  TraceRecorder rec;
  RoundLedger ledger;
  {
    const ScopedRecorder scope(&rec);
    const Span outer(ledger, "build");
    ledger.charge(1);
    const Span inner(ledger, "phase");
    ledger.charge(1);
  }
  std::ostringstream os;
  rec.write_text_tree(os);
  EXPECT_EQ(os.str(), "build  rounds=2 tokens=0 steps=0\n"
                      "  phase  rounds=1 tokens=0 steps=0\n");
}

TEST(TraceRecorder, NumberedLabelsOnlyMaterializeWhenRecording) {
  EXPECT_EQ(obs::numbered("p-", 3), "");  // no recorder installed
  TraceRecorder rec;
  const ScopedRecorder scope(&rec);
  EXPECT_EQ(obs::numbered("p-", 3), "p-3");
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(Metrics, CountersGaugesAndHistograms) {
  MetricsRegistry m;
  m.counter_add("moves", 5);
  m.counter_add("moves", 7);
  m.gauge_max("peak", 4);
  m.gauge_max("peak", 9);
  m.gauge_max("peak", 2);  // must not lower the max
  m.gauge_set("depth", 3);
  m.gauge_set("depth", 2);  // last write wins
  m.hist_record("load", 1);
  m.hist_record("load", 5);
  m.hist_record("load", 1000);
  EXPECT_EQ(m.value_or("moves", 0), 12u);
  EXPECT_EQ(m.value_or("peak", 0), 9u);
  EXPECT_EQ(m.value_or("depth", 0), 2u);
  EXPECT_EQ(m.value_or("absent", 77), 77u);
  const obs::Histogram* h = m.histograms().find("load");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_EQ(h->sum, 1006u);
  EXPECT_EQ(h->min, 1u);
  EXPECT_EQ(h->max, 1000u);
  ASSERT_EQ(h->buckets.size(), 10u);  // floor(log2(1000)) == 9
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[2], 1u);
  EXPECT_EQ(h->buckets[9], 1u);
}

TEST(Metrics, JsonExportIsInsertionOrderedAndFloatFree) {
  MetricsRegistry m;
  m.counter_add("z", 1);
  m.counter_add("a", 2);
  m.gauge_set("g", 3);
  m.hist_record("h", 4);
  std::ostringstream os;
  m.write_json(os);
  EXPECT_EQ(os.str(),
            "{\"counters\":{\"z\":1,\"a\":2},\"gauges\":{\"g\":3},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":4,\"min\":4,"
            "\"max\":4,\"buckets\":[0,0,1]}}}");
}

TEST(Metrics, CsvExportListsEveryKind) {
  MetricsRegistry m;
  m.counter_add("c", 1);
  m.gauge_set("g", 2);
  m.hist_record("h", 3);
  std::ostringstream os;
  m.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,c,1\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,2\n"), std::string::npos);
  EXPECT_NE(csv.find("hist_count,h,1\n"), std::string::npos);
  EXPECT_NE(csv.find("hist_bucket_p1,h,1\n"), std::string::npos);
}

TEST(Metrics, RatioX1000RoundsToNearest) {
  EXPECT_EQ(obs::ratio_x1000(1, 2), 500u);
  EXPECT_EQ(obs::ratio_x1000(2, 3), 667u);
  EXPECT_EQ(obs::ratio_x1000(7, 7), 1000u);
  EXPECT_EQ(obs::ratio_x1000(0, 5), 0u);
  EXPECT_EQ(obs::ratio_x1000(0, 0), 0u);
  EXPECT_EQ(obs::ratio_x1000(1, 0), ~std::uint64_t{0});
}

// ---------------------------------------------------------------------------
// A small JSON parser for schema validation (tests only — the library
// itself never parses JSON, and pulling a dependency for this would break
// the no-new-deps rule).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  /// Parses the full document; sets ok=false on any syntax error or
  /// trailing garbage.
  JsonValue parse(bool& ok) {
    ok = true;
    const JsonValue v = value(ok);
    skip_ws();
    if (p_ != end_) ok = false;
    return v;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\n' || *p_ == '\t' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }
  JsonValue value(bool& ok) {
    skip_ws();
    JsonValue v;
    if (p_ == end_) {
      ok = false;
      return v;
    }
    if (*p_ == '{') return object(ok);
    if (*p_ == '[') return array(ok);
    if (*p_ == '"') {
      v.kind = JsonValue::Kind::kStr;
      v.str = string(ok);
      return v;
    }
    if (literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (literal("null")) return v;
    char* num_end = nullptr;
    v.num = std::strtod(p_, &num_end);
    if (num_end == p_ || num_end > end_) {
      ok = false;
      return v;
    }
    v.kind = JsonValue::Kind::kNum;
    p_ = num_end;
    return v;
  }
  bool literal(const char* lit) {
    const char* q = p_;
    for (const char* l = lit; *l; ++l, ++q) {
      if (q == end_ || *q != *l) return false;
    }
    p_ = q;
    return true;
  }
  std::string string(bool& ok) {
    std::string out;
    ++p_;  // opening quote
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) break;
        switch (*p_) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':
            // Only \u00XX escapes are emitted by the exporter.
            if (end_ - p_ >= 5) {
              out += static_cast<char>(
                  std::strtol(std::string(p_ + 1, p_ + 5).c_str(), nullptr,
                              16));
              p_ += 4;
            }
            break;
          default: out += *p_;
        }
      } else {
        out += *p_;
      }
      ++p_;
    }
    if (p_ == end_) {
      ok = false;
      return out;
    }
    ++p_;  // closing quote
    return out;
  }
  JsonValue object(bool& ok) {
    JsonValue v;
    v.kind = JsonValue::Kind::kObj;
    ++p_;  // '{'
    skip_ws();
    if (consume('}')) return v;
    do {
      skip_ws();
      if (p_ == end_ || *p_ != '"') {
        ok = false;
        return v;
      }
      std::string key = string(ok);
      if (!consume(':')) {
        ok = false;
        return v;
      }
      v.obj.emplace_back(std::move(key), value(ok));
      if (!ok) return v;
    } while (consume(','));
    if (!consume('}')) ok = false;
    return v;
  }
  JsonValue array(bool& ok) {
    JsonValue v;
    v.kind = JsonValue::Kind::kArr;
    ++p_;  // '['
    skip_ws();
    if (consume(']')) return v;
    do {
      v.arr.push_back(value(ok));
      if (!ok) return v;
    } while (consume(','));
    if (!consume(']')) ok = false;
    return v;
  }

  const char* p_;
  const char* end_;
};

std::string chrome_export(const TraceRecorder& rec) {
  std::ostringstream os;
  rec.write_chrome_trace(os);
  return os.str();
}

std::string metrics_export(const TraceRecorder& rec) {
  std::ostringstream os;
  rec.metrics().write_json(os);
  return os.str();
}

/// Schema check for one exported Chrome trace: structure of every event,
/// and proper nesting of the "X" complete events on each (pid, tid) track
/// (Perfetto's import requirement).
void expect_valid_chrome_trace(const std::string& text,
                               std::vector<std::string>* names_out) {
  bool ok = true;
  const JsonValue doc = JsonParser(text).parse(ok);
  ASSERT_TRUE(ok) << "trace is not valid JSON";
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObj);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArr);

  struct Open {
    double ts, dur;
  };
  std::vector<Open> stack;
  double prev_ts = -1;
  for (const JsonValue& e : events->arr) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObj);
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") continue;  // metadata record
    ASSERT_EQ(ph->str, "X");
    for (const char* key : {"name", "cat", "ts", "dur", "pid", "tid"}) {
      ASSERT_NE(e.find(key), nullptr) << "missing " << key;
    }
    const JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    for (const char* key : {"rounds", "token_moves", "steps"}) {
      const JsonValue* a = args->find(key);
      ASSERT_NE(a, nullptr) << "missing args." << key;
      ASSERT_EQ(a->kind, JsonValue::Kind::kNum);
    }
    const double ts = e.find("ts")->num;
    const double dur = e.find("dur")->num;
    EXPECT_GE(dur, 1.0);  // zero-width events vanish in viewers
    // Events are emitted in span-open order, so ts must be monotone and
    // each event must nest inside whatever is still open.
    EXPECT_GE(ts, prev_ts);
    prev_ts = ts;
    while (!stack.empty() && stack.back().ts + stack.back().dur <= ts) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      EXPECT_LE(ts + dur, stack.back().ts + stack.back().dur)
          << "event " << e.find("name")->str << " escapes its parent";
    }
    stack.push_back({ts, dur});
    if (names_out != nullptr) names_out->push_back(e.find("name")->str);
  }
}

TEST(ChromeTrace, EmptyRecorderExportsValidJson) {
  TraceRecorder rec;
  std::vector<std::string> names;
  expect_valid_chrome_trace(chrome_export(rec), &names);
  EXPECT_TRUE(names.empty());
}

TEST(ChromeTrace, MstScenarioHasEveryLevelAndPhaseSpan) {
  Rng rng(11);
  const Graph g = gen::random_regular(96, 6, rng);
  const Weights w = distinct_random_weights(g, rng);

  TraceRecorder rec;
  ObsInstrument ins(rec);
  RoundLedger ledger;
  MstStats stats;
  std::uint32_t depth = 0;
  {
    const ScopedRecorder rscope(&rec);
    const congest::ScopedInstrument iscope(&ins);
    HierarchyParams hp;
    hp.seed = 11;
    const Hierarchy h = Hierarchy::build(g, hp, ledger);
    depth = h.depth();
    stats = HierarchicalBoruvka(h, w).run(ledger);
  }
  ASSERT_TRUE(is_exact_mst(g, w, stats.edges));
  ASSERT_TRUE(rec.all_closed());

  std::vector<std::string> names;
  expect_valid_chrome_trace(chrome_export(rec), &names);
  const auto has = [&](const std::string& n) {
    for (const std::string& s : names) {
      if (s == n) return true;
    }
    return false;
  };
  // The acceptance criterion: a span for every hierarchy level and every
  // Boruvka phase, plus the umbrella spans.
  EXPECT_TRUE(has("hierarchy/build"));
  EXPECT_TRUE(has("hierarchy/g0-embed"));
  EXPECT_TRUE(has("hierarchy/portals"));
  ASSERT_GE(depth, 1u);
  for (std::uint32_t l = 1; l <= depth; ++l) {
    EXPECT_TRUE(has("hierarchy/level-" + std::to_string(l))) << l;
  }
  EXPECT_TRUE(has("mst/boruvka"));
  ASSERT_GE(stats.iterations, 1u);
  for (std::uint32_t i = 1; i <= stats.iterations; ++i) {
    EXPECT_TRUE(has("boruvka/phase-" + std::to_string(i))) << i;
  }
  EXPECT_TRUE(has("route/run"));
  EXPECT_TRUE(has("walks/run"));

  // And the registry carried the dashboard gauges the BoundChecker reads.
  EXPECT_TRUE(rec.metrics().has("lemma24/load_over_envelope_x1000"));
  EXPECT_TRUE(rec.metrics().has("lemma3x/emul_over_log2sq_x1000"));
  EXPECT_TRUE(rec.metrics().has("portal/table_entries"));
  EXPECT_GT(rec.token_moves(), 0u);
}

// ---------------------------------------------------------------------------
// BoundChecker
// ---------------------------------------------------------------------------

TEST(BoundChecker, NoApplicableGaugesMeansNoEntries) {
  MetricsRegistry m;
  m.gauge_set("unrelated", 123456);
  const BoundReport r = BoundChecker().check(m);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.entries.empty());
  EXPECT_NE(r.summary().find("no checks applicable"), std::string::npos);
}

TEST(BoundChecker, FlagsARatioAboveTheConstant) {
  MetricsRegistry m;
  m.gauge_max("lemma24/load_over_envelope_x1000", 99999);
  m.gauge_max("lemma3x/emul_over_log2sq_x1000", 100);
  const BoundReport r = BoundChecker().check(m);
  ASSERT_EQ(r.entries.size(), 2u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.violations(), 1u);
  EXPECT_FALSE(r.entries[0].ok);
  EXPECT_EQ(r.entries[0].lemma, "Lemma 2.4");
  EXPECT_TRUE(r.entries[1].ok);
  EXPECT_NE(r.summary().find("VIOLATION"), std::string::npos);
}

TEST(BoundChecker, ZeroViolationsAcrossTheSeedCorpus) {
  for (const Scenario& sc : sim::seeded_corpus(23)) {
    Rng rng(sc.seed);
    const Weights w = distinct_random_weights(sc.graph, rng);
    TraceRecorder rec;
    ObsInstrument ins(rec);
    RoundLedger ledger;
    {
      const ScopedRecorder rscope(&rec);
      const congest::ScopedInstrument iscope(&ins);
      HierarchyParams hp;
      hp.seed = sc.seed;
      const Hierarchy h = Hierarchy::build(sc.graph, hp, ledger);
      const MstStats stats = HierarchicalBoruvka(h, w).run(ledger);
      ASSERT_TRUE(is_exact_mst(sc.graph, w, stats.edges)) << sc.name;
    }
    const BoundReport r = BoundChecker().check(rec.metrics());
    EXPECT_GE(r.entries.size(), 2u) << sc.name;
    EXPECT_TRUE(r.ok()) << sc.name << "\n" << r.summary();
  }
}

// ---------------------------------------------------------------------------
// Thread-count invariance of the exported artifacts
// ---------------------------------------------------------------------------

/// The same walk+kernel pipeline test_parallel_exec certifies, here run
/// with a recorder attached through HarnessOptions::trace.
void traced_pipeline(SimRun& run, const Graph& g) {
  RoundLedger& ledger = run.ledger();
  BaseComm base(g);
  std::vector<std::uint32_t> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t i = 0; i < g.degree(v); ++i) starts.push_back(v);
  }
  const Span span(ledger, "pipeline");
  ParallelWalkEngine engine(base, run.rng().split(), run.exec());
  WalkStats stats;
  const auto ends = engine.run(starts, WalkKind::kLazy, 10, ledger, &stats);
  run.fold_range(ends);

  congest::SyncNetwork net(g, ledger, run.exec());
  net.run_rounds(
      [&](NodeId v, const congest::Inbox& in, congest::Outbox& out) {
        (void)in;
        out.send(static_cast<std::uint32_t>(v % g.degree(v)),
                 congest::Message{v, 0});
      },
      4);
}

TEST(ThreadInvariance, TraceAndMetricsExportsAreByteIdentical) {
  for (const Scenario& sc : sim::seeded_corpus(73)) {
    std::vector<std::string> traces, metrics;
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      TraceRecorder rec;
      SimHarness harness(HarnessOptions{.seed = sc.seed,
                                        .replays = 1,
                                        .exec = ExecPolicy{threads},
                                        .trace = &rec});
      const HarnessResult res = harness.run(
          [&sc](SimRun& run) { traced_pipeline(run, sc.graph); });
      ASSERT_TRUE(res.certified()) << sc.name << " threads=" << threads
                                   << res.mismatch_report;
      ASSERT_TRUE(rec.all_closed()) << sc.name;
      ASSERT_FALSE(rec.spans().empty()) << sc.name;
      traces.push_back(chrome_export(rec));
      metrics.push_back(metrics_export(rec));
    }
    // The acceptance criterion: byte-identical JSON artifacts at thread
    // counts 1, 2, and 8 under one seed.
    EXPECT_EQ(traces[0], traces[1]) << sc.name;
    EXPECT_EQ(traces[0], traces[2]) << sc.name;
    EXPECT_EQ(metrics[0], metrics[1]) << sc.name;
    EXPECT_EQ(metrics[0], metrics[2]) << sc.name;
    expect_valid_chrome_trace(traces[0], nullptr);
  }
}

TEST(ThreadInvariance, ReplaysStayUntracedAndUnperturbed) {
  // Tracing the primary play must not desync it from untraced replays
  // (the recorder is observation-only), and the replays must not append
  // to the recorder.
  const Scenario sc = sim::seeded_corpus(41)[0];
  TraceRecorder rec;
  SimHarness harness(HarnessOptions{.seed = sc.seed,
                                    .replays = 3,
                                    .trace = &rec});
  const HarnessResult res =
      harness.run([&sc](SimRun& run) { traced_pipeline(run, sc.graph); });
  ASSERT_TRUE(res.certified()) << res.mismatch_report;
  ASSERT_TRUE(rec.all_closed());
  // Exactly one pipeline span: replays did not record.
  std::uint32_t pipeline_spans = 0;
  for (const auto& s : rec.spans()) pipeline_spans += s.name == "pipeline";
  EXPECT_EQ(pipeline_spans, 1u);
}

// ---------------------------------------------------------------------------
// Fault injection: spans still nest and close
// ---------------------------------------------------------------------------

TEST(FaultedRun, SpansNestAndCloseUnderDropsAndDuplication) {
  const Scenario sc = sim::seeded_corpus(57)[0];
  sim::MessageDropPlan drop(0.08);
  sim::DuplicationPlan dup(0.10);
  for (sim::FaultPlan* plan : {static_cast<sim::FaultPlan*>(&drop),
                               static_cast<sim::FaultPlan*>(&dup)}) {
    TraceRecorder rec;
    SimHarness harness(HarnessOptions{.seed = 4242,
                                      .faults = plan,
                                      .replays = 1,
                                      .trace = &rec});
    const HarnessResult res =
        harness.run([&sc](SimRun& run) { traced_pipeline(run, sc.graph); });
    ASSERT_TRUE(res.certified()) << plan->name() << res.mismatch_report;

    // The regression this guards: a faulted run must leave the span tree
    // fully closed and structurally sound (parents precede children,
    // depth increments by one), and the export must still validate.
    EXPECT_TRUE(rec.all_closed()) << plan->name();
    EXPECT_EQ(rec.open_depth(), 0u);
    ASSERT_FALSE(rec.spans().empty());
    for (std::size_t i = 0; i < rec.spans().size(); ++i) {
      const auto& s = rec.spans()[i];
      EXPECT_TRUE(s.closed) << plan->name() << " span " << s.name;
      EXPECT_GE(s.close_rounds, s.open_rounds);
      if (s.parent >= 0) {
        ASSERT_LT(static_cast<std::size_t>(s.parent), i);
        EXPECT_EQ(s.depth,
                  rec.spans()[static_cast<std::size_t>(s.parent)].depth + 1);
      } else {
        EXPECT_EQ(s.depth, 0u);
      }
    }
    expect_valid_chrome_trace(chrome_export(rec), nullptr);
  }
}

}  // namespace
}  // namespace amix
