// The scale-substrate generator contracts: skip sampling (the O(nnz)
// mode) agrees with per-pair Bernoulli sampling (the O(n^2) reference) in
// distribution, replays deterministically, and the streaming CSR build
// path is element-wise identical to the validated from_edges path.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "amix/amix.hpp"

namespace amix {
namespace {

double mean_edges(NodeId n, double p, gen::SampleMode mode, int trials,
                  std::uint64_t seed0) {
  double sum = 0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(seed0 + t);
    sum += gen::gnp(n, p, rng, mode).num_edges();
  }
  return sum / trials;
}

double mean_degree_sq(NodeId n, double p, gen::SampleMode mode, int trials,
                      std::uint64_t seed0) {
  double sum = 0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(seed0 + t);
    const Graph g = gen::gnp(n, p, rng, mode);
    for (NodeId v = 0; v < n; ++v) {
      sum += static_cast<double>(g.degree(v)) * g.degree(v);
    }
  }
  return sum / trials;
}

// Skip sampling is distribution-exact, not approximate: per-seed graphs
// differ between modes (different draw structure), but edge-count and
// degree-moment means over seeds must agree within sampling noise.
TEST(GnpSampling, SkipMatchesExactInDistribution) {
  const NodeId n = 64;
  const double p = 0.1;
  const int trials = 300;
  const double expected = p * (static_cast<double>(n) * (n - 1) / 2);

  const double skip = mean_edges(n, p, gen::SampleMode::kSkip, trials, 1000);
  const double exact = mean_edges(n, p, gen::SampleMode::kExact, trials, 5000);
  EXPECT_NEAR(skip, expected, 0.05 * expected);
  EXPECT_NEAR(exact, expected, 0.05 * expected);
  EXPECT_NEAR(skip, exact, 0.05 * expected);

  // Second degree moment: E[d^2] = Var + E[d]^2 per node, summed. Holding
  // the two modes within 7% of each other catches a decode bias (wrong
  // triangular decode piles edges onto low rows, inflating the moment).
  const double m2_skip =
      mean_degree_sq(n, p, gen::SampleMode::kSkip, trials, 1000);
  const double m2_exact =
      mean_degree_sq(n, p, gen::SampleMode::kExact, trials, 5000);
  EXPECT_NEAR(m2_skip, m2_exact, 0.07 * m2_exact);
}

TEST(GnpSampling, ReplayIsDeterministic) {
  for (const std::uint64_t seed : {3uL, 17uL, 99uL}) {
    Rng a(seed);
    Rng b(seed);
    const Graph ga = gen::gnp(200, 0.03, a);
    const Graph gb = gen::gnp(200, 0.03, b);
    EXPECT_EQ(ga.edges(), gb.edges());
  }
}

TEST(GnpSampling, EdgeCasesMatchAcrossModes) {
  Rng rng(5);
  EXPECT_EQ(gen::gnp(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gen::gnp(10, 0.0, rng, gen::SampleMode::kExact).num_edges(), 0u);
  // p = 1 must be the complete graph in both modes, identically ordered.
  const Graph c1 = gen::gnp(12, 1.0, rng);
  const Graph c2 = gen::gnp(12, 1.0, rng, gen::SampleMode::kExact);
  EXPECT_EQ(c1.edges(), gen::complete(12).edges());
  EXPECT_EQ(c2.edges(), gen::complete(12).edges());
}

TEST(SbmGenerator, BlockStartsPartitionNodes) {
  const auto starts = gen::sbm_block_starts(103, 7);
  ASSERT_EQ(starts.size(), 8u);
  EXPECT_EQ(starts.front(), 0u);
  EXPECT_EQ(starts.back(), 103u);
  for (std::size_t b = 0; b + 1 < starts.size(); ++b) {
    const NodeId size = starts[b + 1] - starts[b];
    EXPECT_TRUE(size == 103 / 7 || size == 103 / 7 + 1);
  }
}

TEST(SbmGenerator, BlockDensityStructure) {
  Rng rng(7);
  const NodeId n = 400;
  const std::uint32_t k = 4;
  const Graph g = gen::sbm(n, k, 0.2, 0.005, rng);
  const auto starts = gen::sbm_block_starts(n, k);
  auto block_of = [&](NodeId v) {
    std::uint32_t b = 0;
    while (starts[b + 1] <= v) ++b;
    return b;
  };
  std::uint64_t within = 0;
  std::uint64_t across = 0;
  for (const auto& [u, v] : g.edges()) {
    (block_of(u) == block_of(v) ? within : across) += 1;
  }
  // Expected within ≈ 0.2 * 4 * C(100,2) = 3960, across ≈ 0.005 * 6 *
  // 100 * 100 = 300; a 4x separation test has enormous margin.
  EXPECT_GT(within, 4 * across);
  EXPECT_GT(across, 0u);
}

TEST(SbmGenerator, SkipMatchesExactInDistribution) {
  const NodeId n = 96;
  const std::uint32_t k = 4;
  const double p_in = 0.15;
  const double p_out = 0.02;
  const int trials = 200;
  const auto starts = gen::sbm_block_starts(n, k);
  double e_expected = 0;
  for (std::uint32_t a = 0; a < k; ++a) {
    const double sa = starts[a + 1] - starts[a];
    e_expected += p_in * sa * (sa - 1) / 2;
    for (std::uint32_t b = a + 1; b < k; ++b) {
      e_expected += p_out * sa * (starts[b + 1] - starts[b]);
    }
  }
  auto mean_m = [&](gen::SampleMode mode, std::uint64_t seed0) {
    double sum = 0;
    for (int t = 0; t < trials; ++t) {
      Rng rng(seed0 + t);
      sum += gen::sbm(n, k, p_in, p_out, rng, mode).num_edges();
    }
    return sum / trials;
  };
  const double skip = mean_m(gen::SampleMode::kSkip, 2000);
  const double exact = mean_m(gen::SampleMode::kExact, 6000);
  EXPECT_NEAR(skip, e_expected, 0.05 * e_expected);
  EXPECT_NEAR(exact, e_expected, 0.05 * e_expected);
}

TEST(SbmGenerator, ReplayIsDeterministic) {
  Rng a(13);
  Rng b(13);
  EXPECT_EQ(gen::sbm(300, 5, 0.1, 0.01, a).edges(),
            gen::sbm(300, 5, 0.1, 0.01, b).edges());
}

// The streaming constructor must reproduce from_edges bit for bit on the
// same list: same CSR offsets, same arc order (= same port numbering),
// same edge endpoints and port inverses. Pinned over a corpus spanning
// the generator families.
TEST(FromEdgeStream, ElementWiseIdenticalToFromEdges) {
  Rng rng(23);
  std::vector<Graph> corpus;
  corpus.push_back(gen::random_regular(128, 6, rng));
  corpus.push_back(gen::torus2d(12));
  corpus.push_back(gen::connected_gnp(200, 0.05, rng));
  corpus.push_back(gen::sbm(150, 3, 0.15, 0.02, rng));
  corpus.push_back(gen::barbell(40));

  for (const Graph& ref : corpus) {
    auto edges = ref.edges();  // copy: stream ctor consumes its input
    const Graph streamed =
        Graph::from_edge_stream(ref.num_nodes(), std::move(edges));
    ASSERT_EQ(streamed.num_nodes(), ref.num_nodes());
    ASSERT_EQ(streamed.num_edges(), ref.num_edges());
    EXPECT_EQ(streamed.edges(), ref.edges());
    EXPECT_EQ(streamed.max_degree(), ref.max_degree());
    for (NodeId v = 0; v < ref.num_nodes(); ++v) {
      ASSERT_EQ(streamed.degree(v), ref.degree(v));
      const auto sa = streamed.arcs(v);
      const auto ra = ref.arcs(v);
      for (std::uint32_t p = 0; p < ref.degree(v); ++p) {
        EXPECT_EQ(sa[p].to, ra[p].to);
        EXPECT_EQ(sa[p].edge, ra[p].edge);
      }
    }
    for (EdgeId e = 0; e < ref.num_edges(); ++e) {
      EXPECT_EQ(streamed.port_of(streamed.edge_u(e), e),
                ref.port_of(ref.edge_u(e), e));
      EXPECT_EQ(streamed.port_of(streamed.edge_v(e), e),
                ref.port_of(ref.edge_v(e), e));
    }
  }
}

TEST(FromEdgeStream, NormalizesReversedEndpoints) {
  std::vector<std::pair<NodeId, NodeId>> edges{{2, 0}, {1, 2}, {0, 1}};
  const Graph g = Graph::from_edge_stream(3, std::move(edges));
  EXPECT_EQ(g.num_edges(), 3u);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_LT(g.edge_u(e), g.edge_v(e));
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(ConnectedGnp, ProducesConnectedGraphDeterministically) {
  Rng a(31);
  Rng b(31);
  const Graph ga = gen::connected_gnp(150, 0.05, a);
  const Graph gb = gen::connected_gnp(150, 0.05, b);
  EXPECT_TRUE(is_connected(ga));
  EXPECT_EQ(ga.edges(), gb.edges());
}

TEST(GraphMemory, MemoryBytesCoversTheCsrArrays) {
  Rng rng(3);
  const Graph g = gen::random_regular(256, 8, rng);
  // Lower bound: offsets + adj + endpoints + ports at exact size.
  const std::uint64_t floor_bytes =
      (g.num_nodes() + 1) * sizeof(std::uint32_t) +
      g.num_arcs() * sizeof(Arc) +
      g.num_edges() * (sizeof(std::pair<NodeId, NodeId>) +
                       sizeof(std::pair<std::uint32_t, std::uint32_t>));
  EXPECT_GE(g.memory_bytes(), floor_bytes);
  EXPECT_LT(g.memory_bytes(), 4 * floor_bytes);
}

}  // namespace
}  // namespace amix
