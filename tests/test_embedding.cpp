// hierarchy/g0_builder + hierarchy/level_builder in isolation: the two
// embedding stages, their Las Vegas guarantees, and their cost accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/generators.hpp"
#include "hierarchy/g0_builder.hpp"
#include "hierarchy/level_builder.hpp"
#include "util/stats.hpp"

namespace amix {
namespace {

class G0Fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = Rng(3);
    g_ = gen::random_regular(128, 6, rng_);
    vs_ = std::make_unique<VirtualNodeSpace>(*g_);
  }
  Rng rng_{0};
  std::optional<Graph> g_;
  std::unique_ptr<VirtualNodeSpace> vs_;
};

TEST_F(G0Fixture, BuildsWithRequestedOutDegree) {
  G0Params p;
  p.out_degree = 6;
  RoundLedger ledger;
  const G0Result res = build_g0(*vs_, p, rng_, ledger);
  EXPECT_EQ(res.out_degree, 6u);
  EXPECT_EQ(res.overlay.num_nodes(), vs_->num_virtual());
  // Directed picks + incoming edges: degree in [out/2, ~4*out] w.h.p.
  Summary deg;
  for (Vid v = 0; v < res.overlay.num_nodes(); ++v) {
    deg.add(res.overlay.degree(v));
  }
  EXPECT_GE(deg.min(), 3.0);
  EXPECT_NEAR(deg.mean(), 12.0, 1.5);  // ~2 * out_degree
}

TEST_F(G0Fixture, ChargesThreeTraversals) {
  G0Params p;
  p.out_degree = 5;
  p.tau_mix = 30;
  RoundLedger ledger;
  const G0Result res = build_g0(*vs_, p, rng_, ledger);
  // forward + reverse + forward = 3x the forward batch.
  EXPECT_EQ(ledger.total(), 3 * res.forward_stats.base_rounds);
  EXPECT_EQ(res.tau_mix, 30u);
  EXPECT_EQ(res.forward_stats.steps, 30u);
}

TEST_F(G0Fixture, MeasuresTauWhenNotGiven) {
  G0Params p;
  RoundLedger ledger;
  const G0Result res = build_g0(*vs_, p, rng_, ledger);
  const auto direct =
      mixing_time_sampled(*g_, WalkKind::kLazy, 4, rng_, 100000);
  // Both are sampled maxima of the same quantity; same order.
  EXPECT_GT(res.tau_mix, direct / 4);
  EXPECT_LT(res.tau_mix, direct * 4 + 8);
}

TEST_F(G0Fixture, EndpointsAreSpreadAcrossTheGraph) {
  // The embedding's purpose: each vid's G0 neighbors are ~uniform over all
  // vids. Check the coarse signature: neighbors hit many distinct owners.
  G0Params p;
  p.out_degree = 8;
  RoundLedger ledger;
  const G0Result res = build_g0(*vs_, p, rng_, ledger);
  Summary distinct_owner_frac;
  for (Vid v = 0; v < res.overlay.num_nodes(); v += 17) {
    std::set<NodeId> owners;
    for (const Vid w : res.overlay.neighbors(v)) {
      owners.insert(vs_->owner(w));
    }
    distinct_owner_frac.add(static_cast<double>(owners.size()) /
                            res.overlay.degree(v));
  }
  EXPECT_GT(distinct_owner_frac.mean(), 0.8);  // few owner collisions
}

TEST_F(G0Fixture, OverlayRoundCostIsPlausible) {
  G0Params p;
  p.out_degree = 5;
  RoundLedger ledger;
  const G0Result res = build_g0(*vs_, p, rng_, ledger);
  // One G0 round >= 2 * tau_mix (forward + reverse of mixing-length walks)
  // and <= the full construction cost.
  EXPECT_GE(res.overlay.round_cost(), 2ULL * res.tau_mix);
  EXPECT_LE(res.overlay.round_cost(), ledger.total());
}

class LevelFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = Rng(11);
    g_ = gen::random_regular(128, 6, rng_);
    vs_ = std::make_unique<VirtualNodeSpace>(*g_);
    G0Params gp;
    gp.out_degree = 6;
    RoundLedger scratch;
    g0_ = build_g0(*vs_, gp, rng_, scratch).overlay;
    KWiseHash hash(16, rng_);
    part_ = std::make_unique<HierarchicalPartition>(*vs_, std::move(hash),
                                                    /*beta=*/4, /*depth=*/2);
  }
  Rng rng_{0};
  std::optional<Graph> g_;
  std::unique_ptr<VirtualNodeSpace> vs_;
  OverlayComm g0_;
  std::unique_ptr<HierarchicalPartition> part_;
};

TEST_F(LevelFixture, Level1EdgesStayWithinParts) {
  LevelParams lp;
  lp.target_degree = 5;
  RoundLedger ledger;
  const LevelResult res = build_level(g0_, *part_, 1, lp, rng_, ledger);
  EXPECT_TRUE(res.parts_connected);
  for (Vid v = 0; v < res.overlay.num_nodes(); ++v) {
    for (const Vid w : res.overlay.neighbors(v)) {
      EXPECT_EQ(part_->part_of(v, 1), part_->part_of(w, 1));
      EXPECT_NE(v, w);
    }
  }
}

TEST_F(LevelFixture, DegreesMeetTheCappedTarget) {
  LevelParams lp;
  lp.target_degree = 5;
  RoundLedger ledger;
  const LevelResult res = build_level(g0_, *part_, 1, lp, rng_, ledger);
  for (Vid v = 0; v < res.overlay.num_nodes(); ++v) {
    const auto sz = part_->part_size(1, part_->part_of(v, 1));
    const std::uint32_t cap =
        sz <= 1 ? 0 : std::max<std::uint32_t>(1, 2 * (sz - 1) / 3);
    EXPECT_GE(res.overlay.degree(v), std::min(5u, cap));
  }
}

TEST_F(LevelFixture, NoDuplicateEdges) {
  LevelParams lp;
  lp.target_degree = 4;
  RoundLedger ledger;
  const LevelResult res = build_level(g0_, *part_, 1, lp, rng_, ledger);
  for (Vid v = 0; v < res.overlay.num_nodes(); ++v) {
    std::set<Vid> nbrs;
    for (const Vid w : res.overlay.neighbors(v)) {
      EXPECT_TRUE(nbrs.insert(w).second) << "duplicate neighbor at " << v;
    }
  }
}

TEST_F(LevelFixture, ChargesGrowWithWavesAndEmulationIsMeasured) {
  LevelParams lp;
  lp.target_degree = 5;
  RoundLedger ledger;
  const LevelResult res = build_level(g0_, *part_, 1, lp, rng_, ledger);
  EXPECT_GT(ledger.total(), 0u);
  EXPECT_GE(res.waves, 1u);
  EXPECT_GT(res.walks_issued, 0u);
  EXPECT_GT(res.emul_parent_rounds, 0u);
  // round_cost compounds: child cost = emul * parent cost.
  EXPECT_EQ(res.overlay.round_cost(),
            res.emul_parent_rounds * g0_.round_cost());
}

TEST_F(LevelFixture, Level2BuildsOnLevel1) {
  LevelParams lp;
  lp.target_degree = 4;
  RoundLedger ledger;
  const LevelResult l1 = build_level(g0_, *part_, 1, lp, rng_, ledger);
  const LevelResult l2 = build_level(l1.overlay, *part_, 2, lp, rng_, ledger);
  EXPECT_TRUE(l2.parts_connected);
  for (Vid v = 0; v < l2.overlay.num_nodes(); ++v) {
    for (const Vid w : l2.overlay.neighbors(v)) {
      EXPECT_EQ(part_->part_of(v, 2), part_->part_of(w, 2));
    }
  }
  EXPECT_GT(l2.overlay.round_cost(), l1.overlay.round_cost());
}

}  // namespace
}  // namespace amix
