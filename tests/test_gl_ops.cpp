// The Ghaffari–Li transformation ops (matching, min cut, SSSP) and the
// op-registration table that serves them: algorithm correctness against
// sequential oracles, registry completeness (every registered kind
// parses, executes, serializes, and replays thread-invariantly — the
// test enumerates the table, so an unregistered kind cannot pass), and
// zero BoundChecker violations across the seed corpus.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "amix/amix.hpp"
#include "server/mix.hpp"

namespace amix {
namespace {

using sim::Scenario;

// ---- matching -----------------------------------------------------------

TEST(Matching, MaximalConsistentAndVerifiedAcrossCorpus) {
  for (const Scenario& sc : sim::seeded_corpus(81)) {
    RoundLedger ledger;
    const MatchingStats s =
        distributed_greedy_matching(sc.graph, sc.seed, ledger);
    EXPECT_TRUE(s.consistent) << sc.name;
    EXPECT_TRUE(s.maximal) << sc.name;
    EXPECT_GT(s.edges.size(), 0u) << sc.name;
    EXPECT_EQ(s.rounds, ledger.total()) << sc.name;

    // Independent re-verification: the edge list is a valid matching ...
    std::set<NodeId> touched;
    for (const EdgeId e : s.edges) {
      ASSERT_LT(e, sc.graph.num_edges()) << sc.name;
      EXPECT_TRUE(touched.insert(sc.graph.edge_u(e)).second) << sc.name;
      EXPECT_TRUE(touched.insert(sc.graph.edge_v(e)).second) << sc.name;
    }
    // ... and a maximal one: no edge has both endpoints free.
    for (EdgeId e = 0; e < sc.graph.num_edges(); ++e) {
      EXPECT_TRUE(touched.count(sc.graph.edge_u(e)) ||
                  touched.count(sc.graph.edge_v(e)))
          << sc.name << " edge " << e;
    }
    // A maximal matching is a 1/2-approximation: 2|M| >= |M*| >= any
    // matching, so |M| >= n_matched/2 is implied; check the cheap lower
    // bound that at least one endpoint of every edge is covered instead
    // (done above) plus determinism:
    RoundLedger ledger2;
    const MatchingStats again =
        distributed_greedy_matching(sc.graph, sc.seed, ledger2);
    EXPECT_EQ(again.edges, s.edges) << sc.name;
    EXPECT_EQ(ledger2.total(), ledger.total()) << sc.name;
  }
}

TEST(Matching, PhaseCapTripsLoudlyNotSilently) {
  Rng rng(5);
  const Graph g = gen::random_regular(128, 6, rng);
  RoundLedger ledger;
  // One phase is (usually) not enough for maximality on a 128-node
  // 6-regular graph; the run must then FAIL verification, not return a
  // partial matching labeled maximal.
  const MatchingStats s = distributed_greedy_matching(g, 7, ledger, 1);
  EXPECT_TRUE(s.consistent);
  EXPECT_FALSE(s.maximal);
  EXPECT_LE(s.phases, 1u);
}

// ---- sssp ---------------------------------------------------------------

TEST(Sssp, UnboundedRunMatchesDijkstraAcrossCorpus) {
  for (const Scenario& sc : sim::seeded_corpus(82)) {
    Rng rng(sc.seed);
    const Weights w = distinct_random_weights(sc.graph, rng);
    RoundLedger ledger;
    const SsspStats s = distributed_sssp(sc.graph, w, 0, ledger);
    EXPECT_TRUE(s.sound) << sc.name;
    EXPECT_TRUE(s.relaxed) << sc.name;
    EXPECT_EQ(s.reached, sc.graph.num_nodes()) << sc.name;
    EXPECT_EQ(s.dist, dijkstra_distances(sc.graph, w, 0)) << sc.name;
    EXPECT_EQ(s.rounds, ledger.total()) << sc.name;
  }
}

TEST(Sssp, HopBoundedRunIsSoundAndExactWithinTheHorizon) {
  for (const Scenario& sc : sim::seeded_corpus(83)) {
    Rng rng(sc.seed);
    const Weights w = distinct_random_weights(sc.graph, rng);
    const std::vector<std::uint64_t> oracle =
        dijkstra_distances(sc.graph, w, 0);
    const std::vector<std::uint32_t> hops = bfs_distances(sc.graph, 0);
    RoundLedger ledger;
    const std::uint32_t H = 3;
    const SsspStats s = distributed_sssp(sc.graph, w, 0, ledger, H);
    EXPECT_TRUE(s.sound) << sc.name;
    for (NodeId v = 0; v < sc.graph.num_nodes(); ++v) {
      // Never below the true distance (soundness) ...
      if (s.dist[v] != kUnreachedDist) {
        EXPECT_GE(s.dist[v], oracle[v]) << sc.name << " node " << v;
      }
      // ... and exact for nodes whose every shortest path fits in H hops
      // (a node at hop distance <= H certainly has one).
      if (hops[v] <= H) {
        // Bellman-Ford after H iterations is exact on paths of <= H
        // edges; the true shortest path may use more edges than the hop
        // path, so we only assert the hop-path upper bound holds:
        ASSERT_NE(s.dist[v], kUnreachedDist) << sc.name << " node " << v;
      }
    }
  }
}

// ---- mincut -------------------------------------------------------------

TEST(Mincut, DistributedPackingIsWithinKargerGuaranteeOfExact) {
  for (const Scenario& sc : sim::seeded_corpus(84)) {
    const std::uint64_t exact = stoer_wagner_mincut(sc.graph);
    Rng rng(sc.seed);
    RoundLedger build_ledger;
    HierarchyParams hp;
    hp.seed = sc.seed;
    const Hierarchy h = Hierarchy::build(sc.graph, hp, build_ledger);
    RoundLedger ledger;
    const MincutStats s = distributed_mincut_tree_packing(h, rng, ledger);
    // Any reported cut is a real cut, so never below the optimum; the
    // 1+2-respecting scan over a packed tree gives the 2x guarantee.
    EXPECT_GE(s.cut_value, exact) << sc.name;
    EXPECT_LE(s.cut_value, 2 * exact) << sc.name;
    EXPECT_LE(s.cut_value, s.min_degree) << sc.name;
    EXPECT_GT(s.trees, 0u) << sc.name;
    // The cost split adds up and the packing dominates.
    EXPECT_EQ(s.rounds, ledger.total()) << sc.name;
    EXPECT_EQ(s.rounds, s.pack_rounds + s.eval_rounds) << sc.name;
    EXPECT_GE(s.pack_rounds, s.max_tree_rounds) << sc.name;
    EXPECT_EQ(s.cut_value,
              std::min(s.best_one_respecting, s.best_two_respecting))
        << sc.name;
  }
}

// ---- the op registry ----------------------------------------------------

// Every registered kind — enumerated from the table itself, NOT a
// hand-written list — parses from its own sample mix line, executes
// through a Session, serializes with its registry name as the kind tag,
// and replays byte-identically at 1/2/8 threads.
TEST(OpTable, EveryRegisteredKindRoundTripsThreadInvariantly) {
  Rng rng(4242);
  const Graph g = gen::random_regular(96, 6, rng);
  ASSERT_EQ(engine::op_table().size(), kNumQueryKinds);

  for (const engine::OpRow& row : engine::op_table()) {
    // The runtime row agrees with the compile-time columns.
    EXPECT_STREQ(row.name, query_kind_name(row.kind));
    EXPECT_EQ(row.seed_stream, seed_stream(row.kind));

    QuerySpec spec;
    std::string err;
    const server::MixParse mp = server::parse_mix_line(
        g, nullptr, row.sample_line, 1, 977, &spec, &err);
    ASSERT_EQ(mp, server::MixParse::kQuery) << row.name << ": " << err;
    EXPECT_EQ(query_kind(spec), row.kind) << row.name;

    std::vector<std::string> jsons;
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      SessionOptions so;
      so.exec = ExecPolicy{threads};
      Session session = Session::open(g, so);
      const BatchReport b = session.batch({spec});
      ASSERT_EQ(b.queries.size(), 1u) << row.name;
      EXPECT_TRUE(b.queries[0].ok) << row.name;
      std::ostringstream os;
      b.queries[0].to_json(os);
      jsons.push_back(os.str());
      EXPECT_NE(jsons.back().find("\"kind\":\"" + std::string(row.name) +
                                  "\""),
                std::string::npos)
          << jsons.back();
    }
    EXPECT_EQ(jsons[0], jsons[1]) << row.name;
    EXPECT_EQ(jsons[0], jsons[2]) << row.name;
  }
}

TEST(OpTable, UnknownWordIsTypedUnsupportedOp) {
  Rng rng(1);
  const Graph g = gen::random_regular(32, 4, rng);
  QuerySpec spec;
  std::string err;
  EXPECT_EQ(server::parse_mix_line(g, nullptr, "frobnicate 3", 1, 9, &spec,
                                   &err),
            server::MixParse::kUnsupportedOp);
  EXPECT_NE(err.find("frobnicate"), std::string::npos);
  EXPECT_EQ(engine::find_op("frobnicate"), nullptr);
  for (const engine::OpRow& row : engine::op_table()) {
    EXPECT_EQ(engine::find_op(row.name), &row);
  }
}

// ---- paper-bound envelopes ----------------------------------------------

TEST(GlOps, ZeroBoundViolationsAcrossTheSeedCorpus) {
  for (const Scenario& sc : sim::seeded_corpus(85)) {
    obs::TraceRecorder rec;
    obs::ObsInstrument ins(rec);
    RoundLedger ledger;
    {
      const obs::ScopedRecorder rscope(&rec);
      const congest::ScopedInstrument iscope(&ins);
      Rng rng(sc.seed);
      const Weights w = distinct_random_weights(sc.graph, rng);
      const MatchingStats m =
          distributed_greedy_matching(sc.graph, sc.seed, ledger);
      ASSERT_TRUE(m.maximal && m.consistent) << sc.name;
      const SsspStats d = distributed_sssp(sc.graph, w, 0, ledger);
      ASSERT_TRUE(d.sound && d.relaxed) << sc.name;
      HierarchyParams hp;
      hp.seed = sc.seed;
      const Hierarchy h = Hierarchy::build(sc.graph, hp, ledger);
      Rng cut_rng(sc.seed);
      const MincutStats c =
          distributed_mincut_tree_packing(h, cut_rng, ledger, 4);
      ASSERT_GT(c.cut_value, 0u) << sc.name;
    }
    const obs::BoundReport r = obs::BoundChecker().check(rec.metrics());
    // All three Ghaffari-Li envelopes were published and none violated.
    for (const char* lemma :
         {"Ghaffari-Li matching", "Ghaffari-Li min cut", "Ghaffari-Li SSSP"}) {
      const bool present =
          std::any_of(r.entries.begin(), r.entries.end(),
                      [&](const obs::BoundEntry& e) { return e.lemma == lemma; });
      EXPECT_TRUE(present) << sc.name << " missing " << lemma;
    }
    EXPECT_TRUE(r.ok()) << sc.name << "\n" << r.summary();
  }
}

}  // namespace
}  // namespace amix
