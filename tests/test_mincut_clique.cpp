// mincut/ tree packing and routing/ clique emulation.

#include <gtest/gtest.h>

#include "amix/amix.hpp"

namespace amix {
namespace {

TEST(OneRespectingCut, ExactOnPathTree) {
  // Path graph: the tree IS the graph; every 1-respecting cut = 1.
  const Graph g = gen::path(10);
  std::vector<EdgeId> tree(9);
  for (EdgeId e = 0; e < 9; ++e) tree[e] = e;
  const auto [cut, edge] = min_one_respecting_cut(g, tree);
  EXPECT_EQ(cut, 1u);
  EXPECT_NE(edge, kInvalidEdge);
}

TEST(OneRespectingCut, FindsTheBarbellBridge) {
  Rng rng(3);
  const Graph g = gen::barbell(16);
  const Weights w = distinct_random_weights(g, rng);
  const auto tree = kruskal_mst(g, w);
  const auto [cut, edge] = min_one_respecting_cut(g, tree);
  EXPECT_EQ(cut, 1u);  // the bridge 1-respects every spanning tree
}

TEST(OneRespectingCut, MatchesBruteForceOnSmallGraphs) {
  Rng rng(5);
  for (int rep = 0; rep < 6; ++rep) {
    const Graph g = gen::connected_gnp(12, 0.3, rng);
    const Weights w = distinct_random_weights(g, rng);
    const auto tree = kruskal_mst(g, w);
    const auto [got, witness] = min_one_respecting_cut(g, tree);
    (void)witness;
    // Brute force: for every tree edge, remove it and measure the cut
    // between the two components of the remaining tree.
    std::uint64_t want = UINT64_MAX;
    for (const EdgeId skip : tree) {
      UnionFind uf(g.num_nodes());
      for (const EdgeId e : tree) {
        if (e != skip) uf.unite(g.edge_u(e), g.edge_v(e));
      }
      std::vector<bool> side(g.num_nodes());
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        side[v] = uf.find(v) == uf.find(g.edge_u(skip));
      }
      want = std::min(want, cut_value(g, side));
    }
    EXPECT_EQ(got, want);
  }
}

TEST(TwoRespectingCut, MatchesBruteForceOnSmallGraphs) {
  Rng rng(13);
  for (int rep = 0; rep < 5; ++rep) {
    const Graph g = gen::connected_gnp(11, 0.35, rng);
    const Weights w = distinct_random_weights(g, rng);
    const auto tree = kruskal_mst(g, w);
    const auto got = min_two_respecting_cut(g, tree);
    // Brute force: remove every pair of tree edges, the remaining forest
    // has 3 components; evaluate both nontrivial bipartitions that cross
    // exactly those two tree edges.
    std::uint64_t want = UINT64_MAX;
    for (std::size_t i = 0; i < tree.size(); ++i) {
      for (std::size_t j = i + 1; j < tree.size(); ++j) {
        UnionFind uf(g.num_nodes());
        for (std::size_t k = 0; k < tree.size(); ++k) {
          if (k != i && k != j) uf.unite(g.edge_u(tree[k]), g.edge_v(tree[k]));
        }
        // The valid 2-respecting side is the component adjacent to BOTH
        // removed edges; it contains an endpoint of each, so it is among
        // these four candidates.
        for (const NodeId mid :
             {uf.find(g.edge_u(tree[i])), uf.find(g.edge_v(tree[i])),
              uf.find(g.edge_u(tree[j])), uf.find(g.edge_v(tree[j]))}) {
          std::vector<bool> side(g.num_nodes());
          bool proper = false, nonempty = false;
          for (NodeId v = 0; v < g.num_nodes(); ++v) {
            side[v] = uf.find(v) == mid;
            (side[v] ? nonempty : proper) = true;
          }
          if (!proper || !nonempty) continue;
          // Count only sides that cross BOTH removed tree edges.
          const bool crosses_i =
              side[g.edge_u(tree[i])] != side[g.edge_v(tree[i])];
          const bool crosses_j =
              side[g.edge_u(tree[j])] != side[g.edge_v(tree[j])];
          if (crosses_i && crosses_j) {
            want = std::min(want, cut_value(g, side));
          }
        }
      }
    }
    if (want != UINT64_MAX) {
      EXPECT_EQ(got, want) << "rep=" << rep;
    }
  }
}

TEST(TwoRespectingCut, FindsPairOnlyCuts) {
  // A 4-cycle with one chord: the min cut (2) 2-respects the path tree.
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const std::vector<EdgeId> tree{0, 1, 2};  // path 0-1-2-3
  const auto cut2 = min_two_respecting_cut(g, tree);
  EXPECT_EQ(cut2, 2u);
}

TEST(ApproxMincut, WithinFactorTwoOfStoerWagner) {
  Rng rng(7);
  struct Case {
    Graph g;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({gen::barbell(20), "barbell"});
  cases.push_back({gen::ring(24), "ring"});
  cases.push_back({gen::hypercube(4), "hypercube"});
  cases.push_back({gen::connected_gnp(40, 0.2, rng), "gnp"});
  cases.push_back({gen::random_regular(40, 4, rng), "regular"});
  for (auto& [g, name] : cases) {
    RoundLedger ledger;
    const auto stats = approx_mincut_tree_packing(g, rng, ledger, 100);
    const auto exact = stoer_wagner_mincut(g);
    EXPECT_GE(stats.cut_value, exact) << name;       // never below optimum
    EXPECT_LE(stats.cut_value, 2 * exact) << name;   // 1-respecting bound
    EXPECT_GT(stats.rounds, 0u);
    EXPECT_GE(stats.trees, 4u);
  }
}

TEST(ApproxMincut, ExactOnPlantedBottlenecks) {
  // Two expanders joined by k random edges: the planted cut is found.
  Rng rng(9);
  const Graph a = gen::random_regular(32, 4, rng);
  const Graph b = gen::random_regular(32, 4, rng);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    edges.emplace_back(a.edge_u(e), a.edge_v(e));
  }
  for (EdgeId e = 0; e < b.num_edges(); ++e) {
    edges.emplace_back(b.edge_u(e) + 32, b.edge_v(e) + 32);
  }
  for (int i = 0; i < 2; ++i) {
    edges.emplace_back(static_cast<NodeId>(rng.next_below(32)),
                       static_cast<NodeId>(32 + rng.next_below(32)));
  }
  const Graph g = Graph::from_edges(64, edges);
  RoundLedger ledger;
  const auto stats = approx_mincut_tree_packing(g, rng, ledger, 0);
  EXPECT_EQ(stats.cut_value, stoer_wagner_mincut(g));  // = 2 (planted)
}

TEST(CliqueEmulation, DeliversAllToAllOnSmallGraph) {
  Rng rng(11);
  const Graph g = gen::random_regular(48, 6, rng);
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 13;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  const CliqueEmulator emu(h);
  RoundLedger ledger;
  const auto stats = emu.emulate_round(ledger, rng, 2.0);
  EXPECT_EQ(stats.messages, 48u * 47);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.lower_bound, 0.0);
  // K ~ (n-1)/d phases.
  EXPECT_GE(stats.phases, 47u / 6);
  EXPECT_LE(stats.phases, 3 * (47u / 6 + 1));
}

}  // namespace
}  // namespace amix
