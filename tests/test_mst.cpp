// mst/: the hierarchical Boruvka (Theorem 1.1) and the baselines, across
// families and weight distributions, all verified against Kruskal.

#include <gtest/gtest.h>

#include <cmath>

#include "amix/amix.hpp"

namespace amix {
namespace {

struct MstCase {
  const char* name;
  Graph (*make)(Rng&);
};

Graph mc_reg(Rng& rng) { return gen::random_regular(128, 6, rng); }
Graph mc_gnp(Rng& rng) { return gen::connected_gnp(120, 0.1, rng); }
Graph mc_hyper(Rng&) { return gen::hypercube(7); }
Graph mc_torus(Rng&) { return gen::torus2d(10); }
Graph mc_ba(Rng& rng) { return gen::barabasi_albert(120, 3, rng); }
Graph mc_ws(Rng& rng) { return gen::watts_strogatz(120, 3, 0.3, rng); }

class MstFamilies : public ::testing::TestWithParam<MstCase> {};

TEST_P(MstFamilies, HierarchicalBoruvkaIsExact) {
  Rng rng(31);
  const Graph g = GetParam().make(rng);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 37;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  HierarchicalBoruvka engine(h, w);
  const MstStats stats = engine.run(ledger);
  EXPECT_TRUE(is_exact_mst(g, w, stats.edges)) << GetParam().name;
  EXPECT_GT(stats.rounds, 0u);
}

TEST_P(MstFamilies, BaselinesAreExact) {
  Rng rng(33);
  const Graph g = GetParam().make(rng);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger l1, l2;
  EXPECT_TRUE(is_exact_mst(g, w, flood_boruvka(g, w, l1).edges));
  EXPECT_TRUE(is_exact_mst(g, w, pipelined_boruvka(g, w, l2).edges));
}

INSTANTIATE_TEST_SUITE_P(
    Families, MstFamilies,
    ::testing::Values(MstCase{"regular", mc_reg}, MstCase{"gnp", mc_gnp},
                      MstCase{"hypercube", mc_hyper},
                      MstCase{"torus", mc_torus},
                      MstCase{"barabasialbert", mc_ba},
                      MstCase{"wattsstrogatz", mc_ws}),
    [](const ::testing::TestParamInfo<MstCase>& info) {
      return info.param.name;
    });

TEST(Mst, ClusteredWeightsAreHandled) {
  Rng rng(35);
  const Graph g = gen::random_regular(96, 6, rng);
  const Weights w = clustered_weights(g, rng, 5);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 41;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  const MstStats stats = HierarchicalBoruvka(h, w).run(ledger);
  EXPECT_TRUE(is_exact_mst(g, w, stats.edges));
}

TEST(Mst, Lemma41PropertiesHoldDuringRun) {
  Rng rng(37);
  const Graph g = gen::random_regular(192, 6, rng);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 43;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  const MstStats stats = HierarchicalBoruvka(h, w).run(ledger);
  const double logn = std::log2(static_cast<double>(g.num_nodes()));
  EXPECT_LE(stats.max_tree_depth, 4 * logn * logn);       // property (1)
  EXPECT_LE(stats.max_indegree_over_degree, 2 * logn + 2);  // property (2)
  EXPECT_LE(stats.iterations, 6 * logn);
}

TEST(Mst, ExactChargingAgreesWithAmortizedWithinFactor) {
  Rng rng(39);
  const Graph g = gen::random_regular(96, 6, rng);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger lb;
  HierarchyParams hp;
  hp.seed = 47;
  const Hierarchy h = Hierarchy::build(g, hp, lb);

  MstParams amortized;
  amortized.seed = 1;
  MstParams exact;
  exact.seed = 1;
  exact.exact_charging = true;
  RoundLedger l1, l2;
  const auto a = HierarchicalBoruvka(h, w).run(l1, amortized);
  const auto b = HierarchicalBoruvka(h, w).run(l2, exact);
  EXPECT_EQ(a.edges, b.edges);  // same seed -> same algorithm trajectory
  EXPECT_GT(a.rounds, 0u);
  EXPECT_GT(b.rounds, 0u);
  const double ratio = static_cast<double>(a.rounds) /
                       static_cast<double>(b.rounds);
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

TEST(Mst, SingleNodeAndSingleEdgeGraphs) {
  const Graph g2 = gen::path(2);
  const Weights w2(g2, {5});
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 53;
  const Hierarchy h2 = Hierarchy::build(g2, hp, ledger);
  const MstStats s2 = HierarchicalBoruvka(h2, w2).run(ledger);
  EXPECT_EQ(s2.edges, std::vector<EdgeId>{0});
}

TEST(Mst, BaselineRoundShapesMatchTheory) {
  // flood-Boruvka pays fragment diameters (can reach Theta(n) on a ring);
  // pipelined caps phase-1 fragments and pays D + #fragments afterwards.
  Rng rng(41);
  const Graph ring = gen::ring(400);
  const Weights w = distinct_random_weights(ring, rng);
  RoundLedger l1, l2;
  const auto flood = flood_boruvka(ring, w, l1);
  const auto piped = pipelined_boruvka(ring, w, l2);
  EXPECT_TRUE(is_exact_mst(ring, w, flood.edges));
  EXPECT_TRUE(is_exact_mst(ring, w, piped.edges));
  // On the ring, flood pays ~n per late iteration; the cap helps little
  // (D = n/2), but phase structure must be recorded.
  EXPECT_GT(piped.phase1_iterations, 0u);
  EXPECT_GT(piped.phase2_iterations, 0u);
  EXPECT_GE(flood.max_fragment_diameter + 1, piped.max_fragment_diameter);
}

TEST(Mst, PipelinedBeatsFloodOnLowerBoundSkeleton) {
  // The E3 story: D = O(log n) but fragments grow long — flooding pays
  // fragment diameters, pipelining pays D + #fragments.
  Rng rng(43);
  const Graph g = gen::lowerbound_skeleton(12, 24);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger l1, l2;
  const auto flood = flood_boruvka(g, w, l1);
  const auto piped = pipelined_boruvka(g, w, l2);
  EXPECT_TRUE(is_exact_mst(g, w, flood.edges));
  EXPECT_TRUE(is_exact_mst(g, w, piped.edges));
}

TEST(Mst, RoutingInstancesAreCounted) {
  Rng rng(45);
  const Graph g = gen::random_regular(96, 4, rng);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 59;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  const MstStats stats = HierarchicalBoruvka(h, w).run(ledger);
  EXPECT_GT(stats.routing_instances, 0u);
  EXPECT_GT(stats.routed_packets, 0u);
}

}  // namespace
}  // namespace amix
