// mst/virtual_tree: the Lemma 4.1 forest — star merges, token balancing,
// and the three maintained properties.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "graph/generators.hpp"
#include "mst/virtual_tree.hpp"
#include "util/rng.hpp"

namespace amix {
namespace {

TEST(VirtualTree, StartsAsSingletons) {
  const Graph g = gen::ring(10);
  VirtualTreeForest f(g);
  EXPECT_EQ(f.num_components(), 10u);
  EXPECT_EQ(f.max_depth(), 0u);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_TRUE(f.is_root(v));
    EXPECT_EQ(f.comp(v), v);
    EXPECT_EQ(f.indegree(v), 0u);
  }
}

TEST(VirtualTree, SingleStarMerge) {
  const Graph g = gen::complete(6);
  VirtualTreeForest f(g);
  // Tails 1,2,3 attach to head 0 (attachment endpoints all = 0).
  std::vector<VirtualTreeForest::Attachment> atts{
      {1, 0}, {2, 0}, {3, 0}};
  f.merge_star(0, atts);
  f.refresh();
  EXPECT_EQ(f.num_components(), 3u);
  EXPECT_EQ(f.comp(1), 0u);
  EXPECT_EQ(f.comp(2), 0u);
  EXPECT_EQ(f.comp(3), 0u);
  EXPECT_EQ(f.comp(4), 4u);
  EXPECT_EQ(f.max_depth(), 1u);
  EXPECT_EQ(f.indegree(0), 3u);
}

TEST(VirtualTree, ChainOfMergesKeepsDepthLogarithmicish) {
  // Repeatedly merge pairs of components; the balancing process must keep
  // the depth far below the Theta(n) a naive chain would give.
  const NodeId n = 256;
  const Graph g = gen::complete(n);
  VirtualTreeForest f(g);
  Rng rng(7);
  std::uint32_t iterations = 0;
  while (f.num_components() > 1) {
    ++iterations;
    // Pair up current roots: odd-indexed roots attach to even ones through
    // a random member of the head component.
    std::vector<NodeId> roots;
    for (NodeId v = 0; v < n; ++v) {
      if (f.is_root(v)) roots.push_back(v);
    }
    shuffle(roots, rng);
    std::unordered_map<NodeId, std::vector<VirtualTreeForest::Attachment>>
        merges;
    // Collect head members for sampling attachment endpoints.
    std::unordered_map<NodeId, std::vector<NodeId>> members;
    for (NodeId v = 0; v < n; ++v) members[f.comp(v)].push_back(v);
    for (std::size_t i = 0; i + 1 < roots.size(); i += 2) {
      const NodeId head = roots[i];
      const NodeId tail = roots[i + 1];
      const auto& mem = members[head];
      const NodeId endpoint =
          mem[rng.next_below(mem.size())];
      merges[head].push_back({tail, endpoint});
    }
    for (const auto& [head, atts] : merges) f.merge_star(head, atts);
    f.refresh();
  }
  const double logn = std::log2(static_cast<double>(n));
  EXPECT_LE(iterations, 2 * logn + 2);
  // Lemma 4.1 property (1): depth O(log^2 n) — generous constant.
  EXPECT_LE(f.max_depth(), 4 * logn * logn);
}

TEST(VirtualTree, StressManyRandomStarMergesMaintainInvariants) {
  Rng rng(11);
  const NodeId n = 300;
  const Graph g = gen::random_regular(n, 6, rng);
  VirtualTreeForest f(g);
  std::uint32_t iterations = 0;
  while (f.num_components() > 1 && iterations < 100) {
    ++iterations;
    // Random head/tail coins; every tail attaches to a random neighboring-
    // component head if one exists (mimics Boruvka's merge pattern).
    std::unordered_map<NodeId, bool> head;
    std::unordered_map<NodeId, std::vector<NodeId>> members;
    for (NodeId v = 0; v < n; ++v) members[f.comp(v)].push_back(v);
    for (const auto& [root, mem] : members) head[root] = rng.next_bool();
    std::unordered_map<NodeId, std::vector<VirtualTreeForest::Attachment>>
        merges;
    for (const auto& [root, mem] : members) {
      if (head[root]) continue;
      // Find any head component adjacent in g.
      VirtualTreeForest::Attachment att{root, kInvalidNode};
      for (const NodeId v : mem) {
        for (const Arc& a : g.arcs(v)) {
          const NodeId oc = f.comp(a.to);
          if (oc != root && head[oc]) {
            att.head_endpoint = a.to;
            break;
          }
        }
        if (att.head_endpoint != kInvalidNode) break;
      }
      if (att.head_endpoint != kInvalidNode) {
        merges[f.comp(att.head_endpoint)].push_back(att);
      }
    }
    for (const auto& [head_root, atts] : merges) f.merge_star(head_root, atts);
    f.refresh();

    // Invariants after every iteration.
    const double logn = std::log2(static_cast<double>(n));
    EXPECT_LE(f.max_depth(), 6 * logn * logn);
    for (NodeId v = 0; v < n; ++v) {
      // Lemma 4.1 property (2): in-degree <= d(v) * O(log n).
      EXPECT_LE(f.indegree(v), g.degree(v) * (2.0 * logn + 2));
      // Parent pointers form a forest consistent with comp labels.
      if (!f.is_root(v)) {
        EXPECT_EQ(f.comp(v), f.comp(f.parent(v)));
      }
    }
  }
  EXPECT_EQ(f.num_components(), 1u);
}

TEST(VirtualTree, BalanceStepsAreReported) {
  const Graph g = gen::complete(40);
  VirtualTreeForest f(g);
  // First build a small head tree (attach 1..9 to 0), then merge many more
  // tails at scattered endpoints — tokens must climb and merge.
  std::vector<VirtualTreeForest::Attachment> first;
  for (NodeId v = 1; v < 10; ++v) first.push_back({v, 0});
  f.merge_star(0, first);
  f.refresh();
  std::vector<VirtualTreeForest::Attachment> second;
  for (NodeId v = 10; v < 20; ++v) {
    second.push_back({v, static_cast<NodeId>(v - 10)});
  }
  const auto steps = f.merge_star(0, second);
  f.refresh();
  EXPECT_GE(steps, 1u);
  EXPECT_EQ(f.num_components(), 40u - 19);
}

TEST(VirtualTreeDeath, RejectsAttachingToForeignHead) {
  const Graph g = gen::ring(6);
  VirtualTreeForest f(g);
  std::vector<VirtualTreeForest::Attachment> atts{{1, 2}};  // endpoint 2 not in head 0
  EXPECT_DEATH(f.merge_star(0, atts), "");
}

}  // namespace
}  // namespace amix
