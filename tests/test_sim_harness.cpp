// sim/: the deterministic simulation harness — seeded replayability of the
// full pipeline, mismatch detection, output digests, and the seeded
// scenario corpus.

#include <gtest/gtest.h>

#include "amix/amix.hpp"

namespace amix {
namespace {

using sim::Digest;
using sim::HarnessOptions;
using sim::HarnessResult;
using sim::RunRecord;
using sim::Scenario;
using sim::SimHarness;
using sim::SimRun;

/// The standard scenario body: hierarchy + routing + MST + parallel walks
/// on one graph, every output folded into the run digest.
void full_pipeline(SimRun& run, const Graph& g) {
  RoundLedger& ledger = run.ledger();
  HierarchyParams hp;
  hp.seed = run.rng()();
  const Hierarchy h = Hierarchy::build(g, hp, ledger);

  HierarchicalRouter router(h);
  const auto reqs = permutation_instance(g, run.rng());
  const RouteStats rs = router.route(reqs, ledger, run.rng());
  ASSERT_EQ(rs.delivered, reqs.size());
  run.fold(rs.delivered);
  run.fold(rs.total_rounds);

  const Weights w = distinct_random_weights(g, run.rng());
  MstParams mp;
  mp.seed = run.rng()();
  const MstStats ms = HierarchicalBoruvka(h, w).run(ledger, mp);
  ASSERT_TRUE(is_exact_mst(g, w, ms.edges));
  run.fold_range(ms.edges);

  std::vector<std::uint32_t> starts(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) starts[v] = v;
  BaseComm base(g);
  ParallelWalkEngine engine(base, run.rng().split());
  WalkStats wstats;
  const auto ends =
      engine.run(starts, WalkKind::kLazy, 8, ledger, &wstats);
  run.fold_range(ends);
  run.fold(wstats.graph_rounds);
}

TEST(SimHarness, CertifiesFullPipelineAcrossCorpus) {
  for (const Scenario& sc : sim::seeded_corpus(33)) {
    SimHarness harness(HarnessOptions{.seed = sc.seed, .replays = 1});
    const HarnessResult res = harness.run(
        [&sc](SimRun& run) { full_pipeline(run, sc.graph); });
    EXPECT_TRUE(res.certified()) << sc.name << ": " << res.mismatch_report
                                 << res.record.audit.first_violation;
    EXPECT_GT(res.record.ledger_total, 0u) << sc.name;
    // Fault-free conformance is exact: the ledger's token-layer charges
    // equal the independently recomputed per-arc max loads.
    EXPECT_EQ(res.record.audit.charged_graph_rounds,
              res.record.audit.recomputed_graph_rounds)
        << sc.name;
    EXPECT_EQ(res.record.audit.fault_slots, 0u) << sc.name;
    EXPECT_GT(res.record.audit.steps, 0u) << sc.name;
  }
}

TEST(SimHarness, SameSeedSameRecordAcrossHarnessInstances) {
  const Graph g = sim::seeded_corpus(5)[0].graph;
  const auto once = [&g] {
    SimHarness harness(HarnessOptions{.seed = 99, .replays = 0});
    return harness.run([&g](SimRun& run) { full_pipeline(run, g); }).record;
  };
  const RunRecord a = once();
  const RunRecord b = once();
  EXPECT_EQ(a.ledger_total, b.ledger_total);
  EXPECT_EQ(a.output_digest, b.output_digest);
  EXPECT_EQ(a.phase_totals, b.phase_totals);
  EXPECT_TRUE(sim::diff_records(a, b).empty());
}

TEST(SimHarness, DifferentSeedsChangeTheSchedule) {
  const Graph g = sim::seeded_corpus(5)[0].graph;
  const auto record_for = [&g](std::uint64_t seed) {
    SimHarness harness(HarnessOptions{.seed = seed, .replays = 0});
    return harness.run([&g](SimRun& run) { full_pipeline(run, g); }).record;
  };
  const RunRecord a = record_for(1);
  const RunRecord b = record_for(2);
  EXPECT_NE(a.output_digest, b.output_digest);
  EXPECT_FALSE(sim::diff_records(a, b).empty());
}

TEST(SimHarness, ReplayCatchesOutputNondeterminism) {
  // A body that leaks state across plays — the exact bug class (hidden
  // static/global, std::rand, address-keyed containers) the replay is for.
  std::uint64_t leak = 0;
  SimHarness harness(HarnessOptions{.seed = 7, .replays = 1});
  const HarnessResult res =
      harness.run([&leak](SimRun& run) { run.fold(++leak); });
  EXPECT_FALSE(res.deterministic);
  EXPECT_FALSE(res.certified());
  EXPECT_NE(res.mismatch_report.find("output digest"), std::string::npos)
      << res.mismatch_report;
}

TEST(SimHarness, ReplayCatchesLedgerNondeterminism) {
  std::uint64_t leak = 1;
  SimHarness harness(HarnessOptions{.seed = 7, .replays = 1});
  const HarnessResult res = harness.run(
      [&leak](SimRun& run) { run.ledger().charge("leak", leak *= 2); });
  EXPECT_FALSE(res.deterministic);
  EXPECT_NE(res.mismatch_report.find("ledger total"), std::string::npos)
      << res.mismatch_report;
  EXPECT_NE(res.mismatch_report.find("phase breakdown"), std::string::npos)
      << res.mismatch_report;
}

TEST(SimHarness, EpochDriverRunsEveryEpochInOrder) {
  const Graph g = gen::ring(12);
  std::vector<std::uint32_t> epochs_seen;
  SimHarness harness(HarnessOptions{.seed = 3, .replays = 1});
  const HarnessResult res = harness.run_epochs(
      g, 3, [&epochs_seen](SimRun& run, const Graph& cur) {
        if (run.epoch() == 0) epochs_seen.clear();  // fresh per play
        epochs_seen.push_back(run.epoch());
        run.fold(cur.num_edges());
      });
  EXPECT_TRUE(res.certified());
  EXPECT_EQ(epochs_seen, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Digest, OrderSensitiveAndRangeConsistent) {
  Digest ab, ba, range;
  ab.fold(1), ab.fold(2);
  ba.fold(2), ba.fold(1);
  EXPECT_NE(ab.value(), ba.value());
  range.fold_range(std::vector<std::uint64_t>{1, 2});
  EXPECT_EQ(ab.value(), range.value());
  Digest empty, zero;
  zero.fold(0);
  EXPECT_NE(empty.value(), zero.value());  // folding 0 is not a no-op
}

TEST(Corpus, DeterministicGivenSeedAndConnected) {
  const auto a = sim::seeded_corpus(7);
  const auto b = sim::seeded_corpus(7);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GE(a.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(sim::graph_digest(a[i].graph), sim::graph_digest(b[i].graph));
    EXPECT_TRUE(is_connected(a[i].graph)) << a[i].name;
  }
  // A different corpus seed actually reshuffles the random families.
  const auto c = sim::seeded_corpus(8);
  bool any_differ = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_differ |= sim::graph_digest(a[i].graph) !=
                  sim::graph_digest(c[i].graph);
  }
  EXPECT_TRUE(any_differ);
}

}  // namespace
}  // namespace amix
