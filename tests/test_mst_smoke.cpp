// End-to-end MST smoke tests: the paper's algorithm and both baselines
// must all reproduce the unique Kruskal MST.

#include <gtest/gtest.h>

#include "amix/amix.hpp"

namespace amix {
namespace {

TEST(MstSmoke, HierarchicalBoruvkaMatchesKruskal) {
  Rng rng(123);
  const Graph g = gen::random_regular(128, 6, rng);
  const Weights w = distinct_random_weights(g, rng);

  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 3;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);

  HierarchicalBoruvka engine(h, w);
  const MstStats stats = engine.run(ledger);
  EXPECT_TRUE(is_exact_mst(g, w, stats.edges));
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GE(stats.iterations, 1u);
}

TEST(MstSmoke, BaselinesMatchKruskal) {
  Rng rng(321);
  const Graph g = gen::connected_gnp(150, 0.08, rng);
  const Weights w = distinct_random_weights(g, rng);

  RoundLedger l1, l2;
  const auto flood = flood_boruvka(g, w, l1);
  EXPECT_TRUE(is_exact_mst(g, w, flood.edges));
  const auto piped = pipelined_boruvka(g, w, l2);
  EXPECT_TRUE(is_exact_mst(g, w, piped.edges));
  EXPECT_GT(flood.rounds, 0u);
  EXPECT_GT(piped.rounds, 0u);
}

}  // namespace
}  // namespace amix
