// engine/: the Session facade — golden equivalence against the explicit
// low-level API (same charges, same outputs, via the documented
// call_seed/query_seed derivation), batch amortization, and the README
// quickstart shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "amix/amix.hpp"

namespace amix {
namespace {

TEST(Session, ChargesExactlyWhatTheExplicitApiCharges) {
  const sim::Scenario sc = sim::seeded_corpus(91)[0];
  const Graph& g = sc.graph;
  Rng rng(sc.seed);
  const Weights w = distinct_random_weights(g, rng);
  const auto reqs = permutation_instance(g, rng);

  SessionOptions so;
  so.seed = 42;
  auto session = Session::open(g, so);
  const QueryReport routed = session.route(reqs);
  const QueryReport mst = session.mst(w);
  EXPECT_TRUE(routed.ok);
  EXPECT_TRUE(mst.ok);

  // Explicit layer, replaying the documented seed derivation: call 0 is
  // the route, call 1 the MST.
  RoundLedger build_ledger;
  const Hierarchy h = Hierarchy::build(g, HierarchyParams{}, build_ledger);

  QuerySpec route_spec;
  route_spec.op = RouteQuery{reqs, 1};
  route_spec.seed = Session::call_seed(42, 0);
  RoundLedger route_ledger;
  Rng route_rng(query_seed(route_spec));
  const RouteStats rs = HierarchicalRouter(h).route_in_phases(
      reqs, 1, route_ledger, route_rng);
  EXPECT_EQ(rs.delivered, reqs.size());
  EXPECT_EQ(routed.rounds, route_ledger.total());
  ASSERT_TRUE(routed.route.has_value());
  EXPECT_EQ(routed.route->max_vid_load, rs.max_vid_load);
  EXPECT_EQ(routed.route->hop_rounds, rs.hop_rounds);

  QuerySpec mst_spec;
  mst_spec.op = MstQuery{w, MstParams{}};
  mst_spec.seed = Session::call_seed(42, 1);
  MstParams mp;
  mp.seed = query_seed(mst_spec);
  RoundLedger mst_ledger;
  const MstStats ms = HierarchicalBoruvka(h, w).run(mst_ledger, mp);
  EXPECT_TRUE(is_exact_mst(g, w, ms.edges));
  EXPECT_EQ(mst.rounds, mst_ledger.total());
  ASSERT_TRUE(mst.mst.has_value());
  EXPECT_EQ(mst.mst->edges, ms.edges);

  // Golden total: one hierarchy build plus exactly the two explicit runs.
  EXPECT_EQ(session.ledger().total(),
            build_ledger.total() + route_ledger.total() + mst_ledger.total());
  EXPECT_EQ(session.ledger().phase_total("hierarchy-build"),
            build_ledger.total());
  EXPECT_EQ(session.calls(), 2u);
}

TEST(Session, SecondCallReusesTheCachedHierarchy) {
  const sim::Scenario sc = sim::seeded_corpus(92)[4];
  Rng rng(sc.seed);
  const auto reqs = permutation_instance(sc.graph, rng);

  auto session = Session::open(sc.graph);
  const std::uint64_t after_first = [&] {
    session.route(reqs);
    return session.ledger().total();
  }();
  const QueryReport again = session.route(reqs);
  // The second call adds only its own query rounds — no rebuild.
  EXPECT_EQ(session.ledger().total(), after_first + again.rounds);
  EXPECT_EQ(session.ledger().phase_total("hierarchy-build"),
            session.engine().cache().find(sc.graph, HierarchyParams{})
                ->build_rounds());
}

TEST(Session, BatchMultiplexesBelowSerialCallCost) {
  const sim::Scenario sc = sim::seeded_corpus(93)[0];
  Rng rng(sc.seed);

  std::vector<QuerySpec> specs;
  for (std::uint64_t seed : {7u, 8u, 9u, 10u}) {
    QuerySpec s;
    s.op = RouteQuery{permutation_instance(sc.graph, rng), 1};
    s.seed = seed;
    specs.push_back(std::move(s));
  }

  auto session = Session::open(sc.graph);
  const BatchReport b = session.batch(std::move(specs));
  EXPECT_TRUE(b.all_ok());
  EXPECT_LT(b.engine_rounds, b.standalone_total_rounds);
  EXPECT_GT(b.merged_shared_groups, 0u);
  EXPECT_EQ(session.ledger().total(), b.engine_rounds);
}

TEST(Session, QuickstartShapeFromReadme) {
  Rng rng(1);
  const Graph g = gen::random_regular(64, 6, rng);
  auto session = Session::open(g);

  const QueryReport routed = session.route(permutation_instance(g, rng));
  const QueryReport mst = session.mst(distinct_random_weights(g, rng));
  const QueryReport clique = session.clique_round();

  EXPECT_TRUE(routed.ok);
  EXPECT_TRUE(mst.ok);
  EXPECT_TRUE(clique.ok);
  EXPECT_GT(session.ledger().total(), 0u);
  EXPECT_EQ(session.calls(), 3u);
}

}  // namespace
}  // namespace amix
