// randwalk/: the parallel walk engine (Lemmas 2.4/2.5) and CommGraph
// mixing measurement.

#include <gtest/gtest.h>

#include <cmath>

#include "congest/comm_graph.hpp"
#include "graph/generators.hpp"
#include "randwalk/mixing.hpp"
#include "randwalk/walk_engine.hpp"
#include "util/stats.hpp"

namespace amix {
namespace {

TEST(WalkEngine, WalksStayOnTheGraph) {
  Rng rng(3);
  const Graph g = gen::connected_gnp(50, 0.12, rng);
  BaseComm base(g);
  ParallelWalkEngine engine(base, rng.split());
  std::vector<std::uint32_t> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) starts.push_back(v);
  RoundLedger ledger;
  const auto ends = engine.run(starts, WalkKind::kLazy, 20, ledger, nullptr);
  ASSERT_EQ(ends.size(), starts.size());
  for (const auto e : ends) EXPECT_LT(e, g.num_nodes());
}

TEST(WalkEngine, ZeroStepsIsFree) {
  Rng rng(5);
  const Graph g = gen::ring(10);
  BaseComm base(g);
  ParallelWalkEngine engine(base, rng.split());
  std::vector<std::uint32_t> starts{1, 2, 3};
  RoundLedger ledger;
  WalkStats stats;
  const auto ends = engine.run(starts, WalkKind::kLazy, 0, ledger, &stats);
  EXPECT_EQ(ends, starts);
  EXPECT_EQ(ledger.total(), 0u);
  EXPECT_EQ(stats.base_rounds, 0u);
}

TEST(WalkEngine, ChargesAtMostStepsTimesMaxLoadAndAtLeastSteps) {
  Rng rng(7);
  const Graph g = gen::random_regular(64, 4, rng);
  BaseComm base(g);
  ParallelWalkEngine engine(base, rng.split());
  std::vector<std::uint32_t> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (int i = 0; i < 4; ++i) starts.push_back(v);  // k=1 per arc slot
  }
  RoundLedger ledger;
  WalkStats stats;
  const std::uint32_t T = 30;
  engine.run(starts, WalkKind::kLazy, T, ledger, &stats);
  EXPECT_EQ(stats.steps, T);
  EXPECT_EQ(stats.base_rounds, ledger.total());
  EXPECT_GE(stats.base_rounds, T / 2);  // most steps move something
  EXPECT_LE(stats.base_rounds,
            static_cast<std::uint64_t>(T) * stats.max_node_load);
}

TEST(WalkEngine, Lemma24NodeLoadBound) {
  // k*d(v) walks per node => per-step load O(k d(v) + log n), w.h.p.
  Rng rng(9);
  const Graph g = gen::random_regular(128, 4, rng);
  BaseComm base(g);
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    ParallelWalkEngine engine(base, rng.split());
    std::vector<std::uint32_t> starts;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (std::uint32_t i = 0; i < k * g.degree(v); ++i) starts.push_back(v);
    }
    RoundLedger ledger;
    WalkStats stats;
    engine.run(starts, WalkKind::kLazy, 40, ledger, &stats);
    const double logn = std::log2(static_cast<double>(g.num_nodes()));
    EXPECT_LE(stats.max_node_load, 4.0 * (k * g.max_degree() + logn))
        << "k=" << k;
    EXPECT_GE(stats.max_node_load, k * g.max_degree());  // at least the start load
  }
}

TEST(WalkEngine, Lemma25ScheduleBound) {
  // T steps of k*d(v) walks per node: O((k + log n) * T) rounds.
  Rng rng(11);
  const Graph g = gen::random_regular(128, 4, rng);
  BaseComm base(g);
  const std::uint32_t k = 3, T = 25;
  ParallelWalkEngine engine(base, rng.split());
  std::vector<std::uint32_t> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t i = 0; i < k * g.degree(v); ++i) starts.push_back(v);
  }
  RoundLedger ledger;
  WalkStats stats;
  engine.run(starts, WalkKind::kLazy, T, ledger, &stats);
  const double logn = std::log2(static_cast<double>(g.num_nodes()));
  EXPECT_LE(stats.base_rounds,
            4.0 * (k + logn) * T);  // Lemma 2.5 with a generous constant
  EXPECT_GE(stats.base_rounds, static_cast<std::uint64_t>(k) * T / 4);
}

TEST(WalkEngine, LazyEndpointsApproachDegreeProportional) {
  Rng rng(13);
  const Graph g = gen::star(16);  // extreme degree skew
  BaseComm base(g);
  ParallelWalkEngine engine(base, rng.split());
  constexpr int kWalks = 30000;
  std::vector<std::uint32_t> starts(kWalks, 5);
  RoundLedger ledger;
  const auto tau = mixing_time_exact(g, WalkKind::kLazy, 100000);
  const auto ends = engine.run(starts, WalkKind::kLazy, tau, ledger, nullptr);
  int hub = 0;
  for (const auto e : ends) hub += (e == 0);
  // Stationary hub mass = 15/30 = 1/2.
  EXPECT_NEAR(hub, kWalks / 2, 6 * std::sqrt(kWalks / 2.0));
}

TEST(WalkEngine, RegularEndpointsApproachUniform) {
  Rng rng(15);
  const Graph g = gen::star(16);
  BaseComm base(g);
  ParallelWalkEngine engine(base, rng.split());
  constexpr int kWalks = 32000;
  std::vector<std::uint32_t> starts(kWalks, 0);
  RoundLedger ledger;
  const auto tau = mixing_time_exact(g, WalkKind::kRegular2Delta, 1u << 20);
  const auto ends =
      engine.run(starts, WalkKind::kRegular2Delta, tau, ledger, nullptr);
  std::vector<int> counts(g.num_nodes(), 0);
  for (const auto e : ends) ++counts[e];
  const double expect = static_cast<double>(kWalks) / g.num_nodes();
  for (const int c : counts) EXPECT_NEAR(c, expect, 6 * std::sqrt(expect));
}

TEST(WalkEngine, ChargeRerunDuplicatesCost) {
  Rng rng(17);
  const Graph g = gen::ring(20);
  BaseComm base(g);
  ParallelWalkEngine engine(base, rng.split());
  std::vector<std::uint32_t> starts(40, 3);
  RoundLedger ledger;
  WalkStats stats;
  engine.run(starts, WalkKind::kLazy, 10, ledger, &stats);
  const auto forward = ledger.total();
  ParallelWalkEngine::charge_rerun(stats, ledger);
  EXPECT_EQ(ledger.total(), 2 * forward);
}

TEST(WalkEngine, RunsOnOverlaysWithRoundCost) {
  // Walks on an overlay charge overlay rounds * round_cost.
  OverlayComm overlay({{1, 2}, {0, 2}, {0, 1}}, /*round_cost=*/10);
  Rng rng(19);
  ParallelWalkEngine engine(overlay, rng.split());
  std::vector<std::uint32_t> starts{0, 1, 2};
  RoundLedger ledger;
  WalkStats stats;
  engine.run(starts, WalkKind::kLazy, 6, ledger, &stats);
  EXPECT_EQ(stats.base_rounds, stats.graph_rounds * 10);
  EXPECT_EQ(ledger.total(), stats.base_rounds);
}

TEST(CommMixing, MatchesGraphMixingOnBaseGraph) {
  Rng rng(21);
  const Graph g = gen::connected_gnp(40, 0.15, rng);
  BaseComm base(g);
  const auto direct = mixing_time_from_start(g, WalkKind::kLazy, 7, 100000);
  const auto via_comm =
      comm_mixing_time_from_start(base, WalkKind::kLazy, 7, 100000);
  EXPECT_EQ(direct, via_comm);
}

TEST(CommMixing, DisconnectedOverlayMixesPerComponent) {
  // Two disjoint triangles: mixing is measured within the component.
  OverlayComm overlay({{1, 2}, {0, 2}, {0, 1}, {4, 5}, {3, 5}, {3, 4}}, 1);
  const auto t =
      comm_mixing_time_from_start(overlay, WalkKind::kLazy, 0, 10000);
  EXPECT_LE(t, 40u);  // would be "never" against a global stationary
  const auto t2 =
      comm_mixing_time_from_start(overlay, WalkKind::kRegular2Delta, 4, 10000);
  EXPECT_LE(t2, 60u);
}

TEST(CommMixing, SampledIsMaxOverStarts) {
  Rng rng(23);
  const Graph g = gen::connected_gnp(30, 0.25, rng);
  BaseComm base(g);
  const auto s = comm_mixing_time_sampled(base, WalkKind::kLazy, 6, rng, 10000);
  std::uint32_t direct_max = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    direct_max = std::max(
        direct_max, comm_mixing_time_from_start(base, WalkKind::kLazy, v, 10000));
  }
  EXPECT_LE(s, direct_max);
}

}  // namespace
}  // namespace amix
