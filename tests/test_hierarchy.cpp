// hierarchy/: virtual node space, pseudo-random partition (P1/P2), G0
// embedding, level overlays, portals, and the assembled Hierarchy.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "hierarchy/hierarchy.hpp"

namespace amix {
namespace {

TEST(VirtualSpace, BijectionBetweenVidsAndNodePorts) {
  Rng rng(3);
  const Graph g = gen::connected_gnp(40, 0.15, rng);
  const VirtualNodeSpace vs(g);
  EXPECT_EQ(vs.num_virtual(), g.num_arcs());
  std::set<Vid> seen;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      const Vid vid = vs.vid_of(v, p);
      EXPECT_TRUE(seen.insert(vid).second);
      EXPECT_EQ(vs.owner(vid), v);
      EXPECT_EQ(vs.port(vid), p);
      EXPECT_EQ(vs.key(vid), VirtualNodeSpace::key_of(v, p));
    }
  }
  EXPECT_EQ(seen.size(), g.num_arcs());
}

class PartitionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = Rng(7);
    g_ = gen::random_regular(256, 6, rng_);
    vs_ = std::make_unique<VirtualNodeSpace>(*g_);
    KWiseHash hash(16, rng_);
    part_ = std::make_unique<HierarchicalPartition>(*vs_, std::move(hash),
                                                    /*beta=*/4, /*depth=*/3);
  }

  Rng rng_{0};
  std::optional<Graph> g_;
  std::unique_ptr<VirtualNodeSpace> vs_;
  std::unique_ptr<HierarchicalPartition> part_;
};

TEST_F(PartitionTest, PartCountsArePowersOfBeta) {
  EXPECT_EQ(part_->num_parts(0), 1u);
  EXPECT_EQ(part_->num_parts(1), 4u);
  EXPECT_EQ(part_->num_parts(2), 16u);
  EXPECT_EQ(part_->num_leaves(), 64u);
}

TEST_F(PartitionTest, PrefixesAreConsistentAcrossLevels) {
  for (Vid vid = 0; vid < vs_->num_virtual(); vid += 7) {
    EXPECT_EQ(part_->part_of(vid, 0), 0u);
    PartId prev = 0;
    for (std::uint32_t level = 1; level <= part_->depth(); ++level) {
      const PartId p = part_->part_of(vid, level);
      EXPECT_EQ(part_->parent_part(p), prev);
      EXPECT_EQ(p % 4, part_->digit(vid, level));
      prev = p;
    }
    EXPECT_EQ(part_->part_of(vid, part_->depth()), part_->leaf(vid));
  }
}

TEST_F(PartitionTest, PropertyP2KeyOnlyLookupMatches) {
  // Any node can compute any virtual node's labels from its key alone.
  for (Vid vid = 0; vid < vs_->num_virtual(); vid += 5) {
    const std::uint64_t key = vs_->key(vid);
    EXPECT_EQ(part_->leaf_of_key(key), part_->leaf(vid));
    for (std::uint32_t level = 0; level <= part_->depth(); ++level) {
      EXPECT_EQ(part_->part_of_key(key, level), part_->part_of(vid, level));
    }
  }
}

TEST_F(PartitionTest, RangesTileTheOrderArray) {
  for (std::uint32_t level = 0; level <= part_->depth(); ++level) {
    std::uint32_t covered = 0;
    for (PartId p = 0; p < part_->num_parts(level); ++p) {
      const auto [lo, hi] = part_->range(level, p);
      EXPECT_EQ(lo, covered);
      covered = hi;
      for (std::uint32_t i = lo; i < hi; ++i) {
        EXPECT_EQ(part_->part_of(part_->order()[i], level), p);
      }
    }
    EXPECT_EQ(covered, vs_->num_virtual());
  }
}

TEST_F(PartitionTest, PropertyP1NearUniformLeaves) {
  // 256*6 = 1536 vids over 64 leaves: average 24 per leaf.
  EXPECT_TRUE(part_->balanced(6.0));
  EXPECT_GT(part_->min_leaf_size(), 0u);
}

TEST(DefaultBeta, GrowsSlowlyAndStaysClamped) {
  EXPECT_GE(default_beta(64), 4u);
  EXPECT_LE(default_beta(1u << 20), 64u);
  EXPECT_LE(default_beta(256), default_beta(1u << 16));
}

// Shared hierarchy fixture (built once; several structural tests reuse it).
class HierarchyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(11);
    g_ = new Graph(gen::random_regular(192, 6, rng));
    ledger_ = new RoundLedger();
    HierarchyParams hp;
    hp.seed = 99;
    h_ = new Hierarchy(Hierarchy::build(*g_, hp, *ledger_));
  }
  static void TearDownTestSuite() {
    delete h_;
    delete ledger_;
    delete g_;
    h_ = nullptr;
    ledger_ = nullptr;
    g_ = nullptr;
  }

  static Graph* g_;
  static RoundLedger* ledger_;
  static Hierarchy* h_;
};

Graph* HierarchyTest::g_ = nullptr;
RoundLedger* HierarchyTest::ledger_ = nullptr;
Hierarchy* HierarchyTest::h_ = nullptr;

TEST_F(HierarchyTest, BuildChargesEveryPhase) {
  EXPECT_GT(ledger_->phase_total("leader+seed"), 0u);
  EXPECT_GT(ledger_->phase_total("g0-embed"), 0u);
  EXPECT_GT(ledger_->phase_total("levels"), 0u);
  EXPECT_GT(ledger_->phase_total("portals"), 0u);
  EXPECT_EQ(h_->stats().build_rounds, ledger_->total());
}

TEST_F(HierarchyTest, G0HasHealthyDegrees) {
  const OverlayComm& g0 = h_->overlay(0);
  EXPECT_EQ(g0.num_nodes(), g_->num_arcs());
  const auto out_deg = h_->stats().beta;  // not the right constant; check floor
  (void)out_deg;
  std::uint32_t min_deg = UINT32_MAX;
  for (Vid v = 0; v < g0.num_nodes(); ++v) {
    min_deg = std::min(min_deg, g0.degree(v));
  }
  // Every vid picked >= out_degree/2 out-neighbors and keeps its in-edges.
  EXPECT_GE(min_deg, 2u);
  EXPECT_GE(g0.round_cost(), 2u);  // at least forward+reverse of one step
}

TEST_F(HierarchyTest, G0EdgesAreSymmetric) {
  const OverlayComm& g0 = h_->overlay(0);
  // Count directed occurrences; every edge was inserted in both lists.
  std::unordered_map<std::uint64_t, int> dir;
  for (Vid v = 0; v < g0.num_nodes(); ++v) {
    for (const Vid w : g0.neighbors(v)) {
      ++dir[(static_cast<std::uint64_t>(v) << 32) | w];
    }
  }
  for (const auto& [key, cnt] : dir) {
    const std::uint64_t rev = (key << 32) | (key >> 32);
    EXPECT_EQ(cnt, dir[rev]);
  }
}

TEST_F(HierarchyTest, LevelsRefineAndStayWithinParts) {
  const auto& part = h_->partition();
  for (std::uint32_t level = 1; level <= h_->depth(); ++level) {
    const OverlayComm& ov = h_->overlay(level);
    for (Vid v = 0; v < ov.num_nodes(); ++v) {
      for (const Vid w : ov.neighbors(v)) {
        EXPECT_EQ(part.part_of(v, level), part.part_of(w, level));
      }
    }
  }
}

TEST_F(HierarchyTest, EmulationCostsGrowDownTheHierarchy) {
  std::uint64_t prev = 1;
  for (std::uint32_t level = 0; level <= h_->depth(); ++level) {
    const std::uint64_t cost = h_->overlay(level).round_cost();
    EXPECT_GE(cost, prev);
    prev = cost;
  }
  EXPECT_EQ(h_->stats().deepest_round_cost,
            h_->overlay(h_->depth()).round_cost());
}

TEST_F(HierarchyTest, PortalsExistForAllSiblingPairs) {
  EXPECT_TRUE(h_->portals().complete());
  EXPECT_GE(h_->portals().min_candidates(), 1u);
}

TEST_F(HierarchyTest, PortalsQualifyAndHopArcsLandInTargetPart) {
  const auto& part = h_->partition();
  const auto& portals = h_->portals();
  Rng rng(13);
  for (int rep = 0; rep < 200; ++rep) {
    const Vid u = static_cast<Vid>(rng.next_below(g_->num_arcs()));
    for (std::uint32_t level = 1; level <= h_->depth(); ++level) {
      const PartId a = part.part_of(u, level);
      const PartId parent = part.parent_part(a);
      const std::uint32_t own_child = part.child_index(a);
      for (std::uint32_t c = 0; c < part.beta(); ++c) {
        if (c == own_child) continue;
        const PartId b = parent * part.beta() + c;
        if (part.part_size(level, b) == 0) continue;
        const Vid portal = portals.portal_for(u, level, c);
        // Portal is in u's part.
        EXPECT_EQ(part.part_of(portal, level), a);
        // Hop arc crosses into the target sibling.
        const auto [nbr, port] = portals.hop_arc(portal, level, c);
        EXPECT_EQ(part.part_of(nbr, level), b);
        EXPECT_EQ(h_->overlay(level - 1).neighbor(portal, port), nbr);
        // Deterministic.
        EXPECT_EQ(portals.portal_for(u, level, c), portal);
      }
    }
  }
}

TEST_F(HierarchyTest, StatsAreInternallyConsistent) {
  const auto& s = h_->stats();
  EXPECT_EQ(s.depth, h_->depth());
  EXPECT_EQ(s.beta, h_->beta());
  EXPECT_GT(s.tau_mix, 0u);
  EXPECT_EQ(s.emul_parent_rounds.size(), h_->depth());
  EXPECT_EQ(s.g0_round_cost, h_->overlay(0).round_cost());
}

TEST(HierarchyBuild, WorksOnIrregularGraphs) {
  Rng rng(17);
  const Graph g = gen::barabasi_albert(150, 3, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 5;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  EXPECT_GE(h.depth(), 1u);
  EXPECT_GT(ledger.total(), 0u);
}

TEST(HierarchyBuild, RespectsExplicitBetaAndTau) {
  Rng rng(19);
  const Graph g = gen::random_regular(128, 4, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.beta = 8;
  hp.tau_mix = 40;
  hp.seed = 21;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  EXPECT_EQ(h.beta(), 8u);
  EXPECT_EQ(h.stats().tau_mix, 40u);
}

TEST(HierarchyBuild, DeterministicGivenSeeds) {
  Rng r1(23), r2(23);
  const Graph g1 = gen::random_regular(96, 4, r1);
  const Graph g2 = gen::random_regular(96, 4, r2);
  RoundLedger l1, l2;
  HierarchyParams hp;
  hp.seed = 31;
  const Hierarchy h1 = Hierarchy::build(g1, hp, l1);
  const Hierarchy h2 = Hierarchy::build(g2, hp, l2);
  EXPECT_EQ(l1.total(), l2.total());
  EXPECT_EQ(h1.stats().tau_mix, h2.stats().tau_mix);
  EXPECT_EQ(h1.overlay(0).num_arcs(), h2.overlay(0).num_arcs());
}

TEST(LevelBuilder, PartsSinglyConnectedBasics) {
  // Grouped input, one rep per part: connected.
  const std::vector<PartId> parts{0, 0, 0, 1, 1, 2};
  const std::vector<Vid> one_rep{7, 7, 7, 3, 3, 9};
  EXPECT_TRUE(parts_singly_connected(parts, one_rep));
  // Part 1 holds two representatives: disconnected.
  const std::vector<Vid> two_reps{7, 7, 7, 3, 4, 9};
  EXPECT_FALSE(parts_singly_connected(parts, two_reps));
  // Degenerate sizes.
  EXPECT_TRUE(parts_singly_connected({}, {}));
  EXPECT_TRUE(parts_singly_connected(std::vector<PartId>{5},
                                     std::vector<Vid>{1}));
}

TEST(LevelBuilder, PartsSinglyConnectedSurvives2e22Aliasing) {
  // Regression for the old packed-key check, `(part << 22) ^ find(v)`:
  // once vids cross 2^22 the rep bleeds into the part bits and distinct
  // (part, rep) pairs can collapse onto one key. Concretely, with
  // rep X = 2^22 + 5 in part 0 and reps {5, X} in part 1:
  //   (0 << 22) ^ X = X,   (1 << 22) ^ 5 = X,   (1 << 22) ^ X = 5
  // — two distinct packed keys for two parts, so the old count concluded
  // "connected" even though part 1 has TWO components. The exact-pair
  // scan must flag it.
  const Vid x = (1u << 22) + 5;
  const std::vector<PartId> parts{0, 0, 1, 1};
  const std::vector<Vid> reps{x, x, 5, x};
  {
    // The old formula really does alias on this input (the bug being
    // pinned): distinct packed keys == distinct parts.
    std::unordered_set<std::uint64_t> old_keys;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      old_keys.insert((parts[i] << 22) ^ reps[i]);
    }
    ASSERT_EQ(old_keys.size(), 2u);
  }
  EXPECT_FALSE(parts_singly_connected(parts, reps));

  // The mirror case: distinct reps of ONE part straddling the boundary
  // must still be counted as distinct.
  const std::vector<PartId> parts2{0, 0};
  const std::vector<Vid> reps2{5, x};
  EXPECT_FALSE(parts_singly_connected(parts2, reps2));
  const std::vector<Vid> reps3{x, x};
  EXPECT_TRUE(parts_singly_connected(parts2, reps3));
}

}  // namespace
}  // namespace amix
