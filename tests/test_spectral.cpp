// graph/spectral: mixing times (Definitions 2.1/2.2), Cheeger-style
// bounds (Lemma 2.3), edge expansion estimators.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.hpp"
#include "graph/spectral.hpp"

namespace amix {
namespace {

TEST(Spectral, StationaryDistributionsSumToOne) {
  Rng rng(1);
  const Graph g = gen::connected_gnp(60, 0.1, rng);
  for (const WalkKind kind : {WalkKind::kLazy, WalkKind::kRegular2Delta}) {
    const auto pi = stationary(g, kind);
    const double sum = std::accumulate(pi.begin(), pi.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Spectral, LazyStationaryIsDegreeProportional) {
  const Graph g = gen::star(10);
  const auto pi = stationary(g, WalkKind::kLazy);
  EXPECT_NEAR(pi[0], 9.0 / 18.0, 1e-12);   // hub: d=9, 2m=18
  EXPECT_NEAR(pi[1], 1.0 / 18.0, 1e-12);
}

TEST(Spectral, RegularStationaryIsUniform) {
  const Graph g = gen::star(10);
  const auto pi = stationary(g, WalkKind::kRegular2Delta);
  for (const double x : pi) EXPECT_NEAR(x, 0.1, 1e-12);
}

TEST(Spectral, StepPreservesProbabilityMass) {
  Rng rng(3);
  const Graph g = gen::connected_gnp(40, 0.15, rng);
  for (const WalkKind kind : {WalkKind::kLazy, WalkKind::kRegular2Delta}) {
    std::vector<double> p(g.num_nodes(), 0.0), q;
    p[7] = 1.0;
    for (int t = 0; t < 5; ++t) {
      step_distribution(g, kind, p, q);
      p.swap(q);
      EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
    }
  }
}

TEST(Spectral, StationaryIsAFixedPoint) {
  Rng rng(5);
  const Graph g = gen::connected_gnp(40, 0.15, rng);
  for (const WalkKind kind : {WalkKind::kLazy, WalkKind::kRegular2Delta}) {
    const auto pi = stationary(g, kind);
    std::vector<double> out;
    step_distribution(g, kind, pi, out);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(out[v], pi[v], 1e-12);
    }
  }
}

TEST(Spectral, MixingFastOnCompleteSlowOnRing) {
  const Graph k = gen::complete(32);
  const Graph r = gen::ring(32);
  const auto tk = mixing_time_exact(k, WalkKind::kLazy, 10000);
  const auto tr = mixing_time_exact(r, WalkKind::kLazy, 100000);
  EXPECT_LE(tk, 30u);
  EXPECT_GE(tr, 10 * tk);
}

TEST(Spectral, MixingScalesQuadraticallyOnRings) {
  const auto t16 = mixing_time_exact(gen::ring(16), WalkKind::kLazy, 1u << 20);
  const auto t32 = mixing_time_exact(gen::ring(32), WalkKind::kLazy, 1u << 20);
  // Theta(n^2): doubling n should roughly 4x the mixing time.
  EXPECT_GE(t32, 3 * t16);
  EXPECT_LE(t32, 6 * t16);
}

TEST(Spectral, SampledMixingLowerBoundsExact) {
  Rng rng(7);
  const Graph g = gen::connected_gnp(48, 0.12, rng);
  const auto exact = mixing_time_exact(g, WalkKind::kLazy, 100000);
  const auto sampled = mixing_time_sampled(g, WalkKind::kLazy, 8, rng, 100000);
  EXPECT_LE(sampled, exact);
  EXPECT_GE(sampled, exact / 3);  // close in practice
}

TEST(Spectral, MixingIsZeroOrSmallFromStationaryStart) {
  // A vertex-transitive graph mixes identically from all starts.
  const Graph g = gen::torus2d(4);
  const auto a = mixing_time_from_start(g, WalkKind::kLazy, 0, 100000);
  const auto b = mixing_time_from_start(g, WalkKind::kLazy, 9, 100000);
  EXPECT_EQ(a, b);
}

TEST(Spectral, SecondEigenvalueOfCompleteGraph) {
  // Lazy walk on K_n: lambda_2 = 1/2 - 1/(2(n-1)).
  const Graph g = gen::complete(20);
  const double want = 0.5 - 0.5 / 19.0;
  EXPECT_NEAR(second_eigenvalue(g, WalkKind::kLazy, 2000), want, 0.01);
}

TEST(Spectral, SpectralBoundDominatesMeasuredMixing) {
  Rng rng(9);
  for (int rep = 0; rep < 3; ++rep) {
    const Graph g = gen::random_regular(48, 4, rng);
    const auto measured = mixing_time_exact(g, WalkKind::kLazy, 100000);
    const auto bound = mixing_time_spectral_bound(g, WalkKind::kLazy);
    EXPECT_GE(bound, measured);
  }
}

TEST(Spectral, EdgeExpansionBruteforceKnownValues) {
  // Complete K_6: min over |S|<=3 of e(S, V-S)/|S| = 3*3/3 = 3.
  EXPECT_DOUBLE_EQ(edge_expansion_bruteforce(gen::complete(6)), 3.0);
  // Ring: best cut is an arc, 2 edges / (n/2).
  EXPECT_DOUBLE_EQ(edge_expansion_bruteforce(gen::ring(8)), 0.5);
  // Path: cut the middle edge.
  EXPECT_DOUBLE_EQ(edge_expansion_bruteforce(gen::path(8)), 0.25);
}

TEST(Spectral, SweepUpperBoundsAndOftenMatchesBruteforce) {
  Rng rng(11);
  for (int rep = 0; rep < 4; ++rep) {
    const Graph g = gen::connected_gnp(14, 0.35, rng);
    const double exact = edge_expansion_bruteforce(g);
    const double sweep = edge_expansion_sweep(g);
    EXPECT_GE(sweep + 1e-9, exact);       // valid upper bound
    EXPECT_LE(sweep, exact * 3.0 + 1.0);  // not wildly loose
  }
}

TEST(Spectral, SweepFindsTheBarbellBottleneck) {
  const Graph g = gen::barbell(16);
  // The bridge cut: 1 edge / 8 nodes.
  EXPECT_NEAR(edge_expansion_sweep(g), 1.0 / 8.0, 1e-9);
  EXPECT_NEAR(conductance_sweep(g), 1.0 / (8.0 * 7.0 + 1.0), 0.01);
}

TEST(Spectral, Lemma23BoundHolds) {
  // tau_mix_bar <= 8 (Delta/h)^2 ln n — checked on several families
  // against the exact 2Delta-regular mixing time (E5's core claim).
  Rng rng(13);
  struct Case {
    Graph g;
    const char* name;
  };
  std::vector<Case> cases;
  cases.push_back({gen::complete(16), "complete"});
  cases.push_back({gen::ring(16), "ring"});
  cases.push_back({gen::random_regular(20, 4, rng), "regular"});
  cases.push_back({gen::barbell(12), "barbell"});
  for (const auto& [g, name] : cases) {
    const double h = edge_expansion_bruteforce(g);
    const double bound = lemma23_bound(g, h);
    const auto measured =
        mixing_time_exact(g, WalkKind::kRegular2Delta, 1u << 22);
    EXPECT_LE(measured, bound) << name;
  }
}

TEST(Spectral, RegularWalkMixesUniformlyOnIrregularGraph) {
  // Definition 2.2's purpose: uniform stationary distribution even when
  // degrees vary.
  const Graph g = gen::star(12);
  const auto t = mixing_time_exact(g, WalkKind::kRegular2Delta, 1u << 20);
  std::vector<double> p(g.num_nodes(), 0.0), q;
  p[3] = 1.0;
  for (std::uint32_t i = 0; i < t; ++i) {
    step_distribution(g, WalkKind::kRegular2Delta, p, q);
    p.swap(q);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(p[v], 1.0 / 12.0, 1.0 / (12.0 * 12.0) + 1e-12);
  }
}

}  // namespace
}  // namespace amix
