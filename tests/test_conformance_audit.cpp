// sim/: the CONGEST conformance auditor — independent recomputation of
// per-arc max loads, under/over-charge detection, and the Lemma 2.4
// residency statistic and bound.

#include <gtest/gtest.h>

#include <cmath>

#include "amix/amix.hpp"

namespace amix {
namespace {

using sim::ConformanceAuditor;
using sim::DuplicationPlan;
using sim::HarnessOptions;
using sim::HarnessResult;
using sim::MessageDropPlan;
using sim::SimHarness;
using sim::SimRun;

// ---- The auditor itself, driven synthetically. ----

TEST(ConformanceAudit, AcceptsExactCharges) {
  OverlayComm g({{1, 2}, {0}, {0}}, 1);
  ConformanceAuditor auditor;
  auditor.record_move(g, 0, 1);
  auditor.record_move(g, 0, 1);
  auditor.record_move(g, 1, 1);
  auditor.record_commit(g, 2);  // max raw load is 2 — exact
  EXPECT_TRUE(auditor.report().ok());
  EXPECT_EQ(auditor.report().steps, 1u);
  EXPECT_EQ(auditor.report().moves, 3u);
  EXPECT_EQ(auditor.report().recomputed_graph_rounds, 2u);
  EXPECT_EQ(auditor.report().charged_graph_rounds, 2u);
}

TEST(ConformanceAudit, FlagsUnderCharge) {
  OverlayComm g({{1}, {0}}, 1);
  ConformanceAuditor auditor;
  for (int i = 0; i < 3; ++i) auditor.record_move(g, 0, 1);
  auditor.record_commit(g, 2);  // 3 crossings need >= 3 rounds
  EXPECT_FALSE(auditor.report().ok());
  EXPECT_EQ(auditor.report().under_charges, 1u);
  EXPECT_NE(auditor.report().first_violation.find("UNDER-charge"),
            std::string::npos)
      << auditor.report().first_violation;
}

TEST(ConformanceAudit, FlagsOverChargeBeyondFaultSlack) {
  OverlayComm g({{1}, {0}}, 1);
  ConformanceAuditor auditor;
  // A duplicated crossing (2 slots) legitimizes a charge of 2...
  auditor.record_move(g, 0, 2);
  auditor.record_commit(g, 2);
  EXPECT_TRUE(auditor.report().ok());
  EXPECT_EQ(auditor.report().fault_slots, 1u);
  // ...but a charge beyond the slotted load is waste.
  auditor.record_move(g, 0, 2);
  auditor.record_commit(g, 3);
  EXPECT_FALSE(auditor.report().ok());
  EXPECT_EQ(auditor.report().over_charges, 1u);
  EXPECT_NE(auditor.report().first_violation.find("OVER-charge"),
            std::string::npos);
}

TEST(ConformanceAudit, PerStepTalliesResetBetweenCommits) {
  OverlayComm g({{1}, {0}}, 1);
  ConformanceAuditor auditor;
  for (int i = 0; i < 4; ++i) auditor.record_move(g, 0, 1);
  auditor.record_commit(g, 4);
  auditor.record_move(g, 0, 1);
  auditor.record_commit(g, 1);  // would under-charge if tallies leaked
  EXPECT_TRUE(auditor.report().ok());
  EXPECT_EQ(auditor.report().recomputed_graph_rounds, 5u);
}

TEST(ConformanceAudit, TracksMultipleGraphsIndependently) {
  OverlayComm a({{1}, {0}}, 1);
  OverlayComm b({{1}, {0}}, 7);
  ConformanceAuditor auditor;
  auditor.record_move(a, 0, 1);
  auditor.record_move(b, 0, 1);
  auditor.record_move(b, 0, 1);
  auditor.record_commit(b, 2);
  auditor.record_commit(a, 1);
  EXPECT_TRUE(auditor.report().ok());
  EXPECT_EQ(auditor.report().steps, 2u);
}

// ---- The auditor against the real transport, across the corpus. ----

TEST(ConformanceAudit, RealRunsAreExactlyConformantFaultFree) {
  for (const auto& sc : sim::seeded_corpus(41)) {
    SimHarness harness(HarnessOptions{.seed = sc.seed, .replays = 0});
    const HarnessResult res = harness.run([&sc](SimRun& run) {
      RoundLedger& ledger = run.ledger();
      HierarchyParams hp;
      hp.seed = run.rng()();
      const Hierarchy h = Hierarchy::build(sc.graph, hp, ledger);
      HierarchicalRouter router(h);
      const auto reqs = permutation_instance(sc.graph, run.rng());
      router.route(reqs, ledger, run.rng());
      const Weights w = distinct_random_weights(sc.graph, run.rng());
      HierarchicalBoruvka(h, w).run(ledger);
    });
    const sim::AuditReport& audit = res.record.audit;
    EXPECT_EQ(audit.under_charges, 0u) << sc.name << ": "
                                       << audit.first_violation;
    EXPECT_EQ(audit.over_charges, 0u) << sc.name << ": "
                                      << audit.first_violation;
    // Fault-free, the optimal schedule is charged to the round: the
    // transport's totals equal the independent recomputation exactly.
    EXPECT_EQ(audit.charged_graph_rounds, audit.recomputed_graph_rounds)
        << sc.name;
    EXPECT_GT(audit.moves, 0u) << sc.name;
  }
}

TEST(ConformanceAudit, FaultedRunsNeverUnderCharge) {
  Rng grng(43);
  const Graph g = gen::random_regular(64, 6, grng);
  MessageDropPlan drop(0.3);
  DuplicationPlan dup(0.25);
  sim::CompositeFaultPlan plan({&drop, &dup});
  SimHarness harness(
      HarnessOptions{.seed = 15, .faults = &plan, .replays = 1});
  const HarnessResult res = harness.run([&g](SimRun& run) {
    std::vector<std::uint32_t> starts(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) starts[v] = v;
    BaseComm base(g);
    ParallelWalkEngine engine(base, run.rng().split());
    const auto ends =
        engine.run(starts, WalkKind::kLazy, 20, run.ledger(), nullptr);
    run.fold_range(ends);
  });
  const sim::AuditReport& audit = res.record.audit;
  EXPECT_TRUE(res.certified()) << audit.first_violation;
  EXPECT_GT(audit.fault_slots, 0u);
  // Faults only ever push the charge up from the fault-free lower bound.
  EXPECT_GT(audit.charged_graph_rounds, audit.recomputed_graph_rounds);
}

// ---- Lemma 2.4: the per-node residency statistic and its bound. ----

TEST(Lemma24, TransportResidencyWithinKDegPlusLogBound) {
  Rng grng(47);
  const std::uint32_t k = 4;  // walks started per node
  const Graph g = gen::random_regular(64, 6, grng);
  std::vector<std::uint32_t> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t i = 0; i < k; ++i) starts.push_back(v);
  }
  BaseComm base(g);
  RoundLedger ledger;
  ParallelWalkEngine engine(base, Rng(123));
  WalkStats stats;
  engine.run(starts, WalkKind::kLazy, 32, ledger, &stats);
  EXPECT_GT(stats.max_transport_residency, 0u);
  // Lemma 2.4: O(k d(v) + log n) tokens at a node, here with the scaled
  // constants pinned to 1x and 2x respectively.
  const std::uint32_t bound =
      k * g.max_degree() +
      2 * static_cast<std::uint32_t>(std::log2(g.num_nodes()));
  EXPECT_LE(stats.max_transport_residency, bound);
  // Arrivals are a subset of residents: the engine's own statistic
  // (which also counts walks that stayed put) dominates.
  EXPECT_LE(stats.max_transport_residency, stats.max_node_load + k);
}

TEST(Lemma24, ResidencyStatSurvivesFaultInjection) {
  // Retransmissions inflate arc slots but not residency: each token
  // arrives exactly once no matter how many copies the arc carried.
  Rng grng(49);
  const Graph g = gen::random_regular(48, 6, grng);
  std::vector<std::uint32_t> starts(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) starts[v] = v;
  const auto residency_with = [&](sim::FaultPlan* plan) {
    SimHarness harness(
        HarnessOptions{.seed = 8, .faults = plan, .replays = 0});
    std::uint32_t residency = 0;
    harness.run([&](SimRun& run) {
      BaseComm base(g);
      ParallelWalkEngine engine(base, run.rng().split());
      WalkStats stats;
      engine.run(starts, WalkKind::kLazy, 16, run.ledger(), &stats);
      residency = stats.max_transport_residency;
    });
    return residency;
  };
  MessageDropPlan drop(0.4);
  EXPECT_EQ(residency_with(nullptr), residency_with(&drop));
}

}  // namespace
}  // namespace amix
