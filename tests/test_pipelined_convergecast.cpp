// congest/pipelined_convergecast: the kernel pipeline vs the h+k formula,
// and the distributed tree-packing min cut that builds on the full stack.

#include <gtest/gtest.h>

#include <map>

#include "amix/amix.hpp"

namespace amix {
namespace {

using Items = std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>;

TEST(PipelinedConvergecast, CombinesByMinAcrossTheTree) {
  Rng rng(3);
  const Graph g = gen::connected_gnp(60, 0.1, rng);
  const BfsTree tree = bfs_tree(g, 0);
  Items items(g.num_nodes());
  std::map<std::uint64_t, std::uint64_t> want;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Every node holds two keyed values.
    for (const std::uint64_t key : {v % 7ull, (v * 3) % 7ull}) {
      const std::uint64_t value = 1000 + (v * 37 + key * 11) % 500;
      items[v].push_back({key, value});
      const auto it = want.find(key);
      if (it == want.end() || value < it->second) want[key] = value;
    }
  }
  RoundLedger ledger;
  const auto got = congest::pipelined_convergecast(g, tree, items, ledger);
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> want_vec(
      want.begin(), want.end());
  EXPECT_EQ(got, want_vec);
  EXPECT_GT(ledger.total(), 0u);
}

TEST(PipelinedConvergecast, RoundsTrackHeightPlusKeys) {
  // Many distinct keys on a path: the pipeline should take ~h + k rounds,
  // NOT h * k (which a non-pipelined repetition would cost).
  const NodeId n = 64;
  const Graph g = gen::path(n);
  const BfsTree tree = bfs_tree(g, 0);
  constexpr std::uint64_t kKeys = 32;
  Items items(n);
  for (NodeId v = 0; v < n; ++v) {
    items[v].push_back({v % kKeys, 100 + v});
  }
  RoundLedger ledger;
  const auto got = congest::pipelined_convergecast(g, tree, items, ledger);
  EXPECT_EQ(got.size(), kKeys);
  const std::uint64_t h = tree.height;
  EXPECT_LE(ledger.total(), 3 * (h + kKeys) + 8);   // pipelined
  EXPECT_GE(ledger.total(), h);                     // at least the height
  EXPECT_LT(ledger.total(), h * kKeys / 2);         // far from h*k
}

TEST(PipelinedConvergecast, SingleKeyMatchesPlainConvergecast) {
  Rng rng(5);
  const Graph g = gen::connected_gnp(50, 0.12, rng);
  const BfsTree tree = bfs_tree(g, 0);
  Items items(g.num_nodes());
  std::vector<std::uint64_t> values(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    values[v] = 10000 - v * 3;
    items[v].push_back({0, values[v]});
  }
  RoundLedger l1, l2;
  const auto piped = congest::pipelined_convergecast(g, tree, items, l1);
  const auto plain = congest::convergecast_min(g, tree, values, l2);
  ASSERT_EQ(piped.size(), 1u);
  EXPECT_EQ(piped[0].second, plain);
}

TEST(PipelinedConvergecast, EmptyItemsAreFine) {
  const Graph g = gen::ring(10);
  const BfsTree tree = bfs_tree(g, 0);
  Items items(g.num_nodes());
  RoundLedger ledger;
  const auto got = congest::pipelined_convergecast(g, tree, items, ledger);
  EXPECT_TRUE(got.empty());
}

TEST(DistributedMincut, EndToEndMatchesStoerWagner) {
  Rng rng(7);
  // Two 5-regular expanders joined by 3 random bridges: planted cut = 3.
  const Graph a = gen::random_regular(24, 5, rng);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    edges.emplace_back(a.edge_u(e), a.edge_v(e));
    edges.emplace_back(a.edge_u(e) + 24, a.edge_v(e) + 24);
  }
  edges.emplace_back(1, 25);
  edges.emplace_back(7, 30);
  edges.emplace_back(15, 41);
  const Graph g = Graph::from_edges(48, edges);

  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 11;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  const auto stats = distributed_mincut_tree_packing(h, rng, ledger, 8);
  EXPECT_EQ(stats.cut_value, stoer_wagner_mincut(g));
  EXPECT_EQ(stats.cut_value, 3u);
  EXPECT_EQ(stats.trees, 8u);
  EXPECT_GT(stats.rounds, 0u);
}

TEST(DistributedMincut, RegularGraphCutIsDegree) {
  Rng rng(9);
  const Graph g = gen::random_regular(40, 5, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 13;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  const auto stats = distributed_mincut_tree_packing(h, rng, ledger, 6);
  EXPECT_EQ(stats.cut_value, stoer_wagner_mincut(g));
}

}  // namespace
}  // namespace amix
