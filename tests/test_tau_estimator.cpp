// randwalk/anonymous + randwalk/tau_estimator: anonymous counting walks
// and the in-band mixing-time estimation protocol.

#include <gtest/gtest.h>

#include <cmath>

#include "congest/comm_graph.hpp"
#include "graph/generators.hpp"
#include "graph/spectral.hpp"
#include "randwalk/anonymous.hpp"
#include "randwalk/tau_estimator.hpp"
#include "util/stats.hpp"

namespace amix {
namespace {

TEST(BinomialSample, MatchesMomentsSmallAndLarge) {
  Rng rng(3);
  for (const std::uint64_t n : {10ull, 50ull, 5000ull}) {
    for (const double p : {0.1, 0.5, 0.9}) {
      Summary s;
      for (int i = 0; i < 3000; ++i) {
        s.add(static_cast<double>(binomial_sample(n, p, rng)));
      }
      const double mean = static_cast<double>(n) * p;
      const double sd = std::sqrt(mean * (1 - p));
      EXPECT_NEAR(s.mean(), mean, 5 * sd / std::sqrt(3000.0) + 0.5)
          << "n=" << n << " p=" << p;
      EXPECT_NEAR(s.stddev(), sd, 0.25 * sd + 0.5);
      EXPECT_GE(s.min(), 0.0);
      EXPECT_LE(s.max(), static_cast<double>(n));
    }
  }
}

TEST(BinomialSample, EdgeCases) {
  Rng rng(5);
  EXPECT_EQ(binomial_sample(0, 0.5, rng), 0u);
  EXPECT_EQ(binomial_sample(100, 0.0, rng), 0u);
  EXPECT_EQ(binomial_sample(100, 1.0, rng), 100u);
}

TEST(AnonymousWalks, ConservesTokens) {
  Rng rng(7);
  const Graph g = gen::connected_gnp(60, 0.1, rng);
  BaseComm base(g);
  std::vector<std::uint64_t> counts(g.num_nodes(), 10);
  AnonymousWalks walks(base, counts);
  RoundLedger ledger;
  walks.run(WalkKind::kLazy, 25, rng, ledger);
  std::uint64_t total = 0;
  for (const auto c : walks.counts()) total += c;
  EXPECT_EQ(total, walks.total_tokens());
  EXPECT_EQ(total, 60ull * 10);
}

TEST(AnonymousWalks, OneRoundPerStepRegardlessOfLoad) {
  Rng rng(9);
  const Graph g = gen::ring(20);
  BaseComm base(g);
  // A million tokens: still one round per step (counts aggregate).
  std::vector<std::uint64_t> counts(g.num_nodes(), 1u << 20);
  AnonymousWalks walks(base, counts);
  RoundLedger ledger;
  walks.run(WalkKind::kLazy, 12, rng, ledger);
  EXPECT_EQ(ledger.total(), 12u);
}

TEST(AnonymousWalks, ConvergesToDegreeProportionalCounts) {
  Rng rng(11);
  const Graph g = gen::star(16);
  BaseComm base(g);
  std::vector<std::uint64_t> counts(g.num_nodes(), 0);
  counts[3] = 300000;  // everything starts at one leaf
  AnonymousWalks walks(base, counts);
  RoundLedger ledger;
  const auto tau = mixing_time_exact(g, WalkKind::kLazy, 100000);
  walks.run(WalkKind::kLazy, 2 * tau, rng, ledger);
  // Stationary: hub holds half the mass (d=15 of 2m=30).
  const double hub = static_cast<double>(walks.counts()[0]);
  EXPECT_NEAR(hub, 150000.0, 6 * std::sqrt(150000.0) + 400);
}

TEST(TauEstimator, TracksTrueMixingAcrossFamilies) {
  struct Case {
    const char* name;
    Graph g;
  };
  Rng rng(13);
  std::vector<Case> cases;
  cases.push_back({"regular6", gen::random_regular(96, 6, rng)});
  cases.push_back({"hypercube", gen::hypercube(6)});
  cases.push_back({"torus", gen::torus2d(8)});
  for (auto& [name, g] : cases) {
    RoundLedger ledger;
    TauEstimatorParams params;
    const auto est = estimate_tau_distributed(g, params, rng, ledger);
    const auto truth = mixing_time_sampled(g, WalkKind::kLazy, 4, rng,
                                           1u << 22);
    // Doubling probes a geometric grid; accept within [truth/8, 8*truth].
    EXPECT_GE(est.tau * 8, truth) << name;
    EXPECT_LE(est.tau, 8 * truth + 16) << name;
    EXPECT_GT(est.rounds, est.tau);  // walks + coordination were charged
    EXPECT_GE(est.probes, 1u);
  }
}

TEST(TauEstimator, SlowGraphNeedsMoreProbes) {
  Rng rng(15);
  const Graph fast = gen::random_regular(64, 6, rng);
  const Graph slow = gen::ring(64);
  RoundLedger l1, l2;
  TauEstimatorParams params;
  const auto ef = estimate_tau_distributed(fast, params, rng, l1);
  const auto es = estimate_tau_distributed(slow, params, rng, l2);
  EXPECT_GT(es.tau, 4 * ef.tau);
  EXPECT_GT(es.probes, ef.probes);
}

}  // namespace
}  // namespace amix
