// Edge-case coverage batch: corners of the API that the main suites only
// brush — conductance estimates, eigenvalue sanity for the regular walk,
// router phase handling, MST parameter overrides, overlay behaviors.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "amix/amix.hpp"
#include "graph/io.hpp"

namespace amix {
namespace {

TEST(SpectralEdge, ConductanceSweepKnownValues) {
  // Complete graph: phi = ceil-ish 1/2 * n/(n-1); ring: 2/(n) volume form.
  const Graph k = gen::complete(16);
  EXPECT_NEAR(conductance_sweep(k), 8.0 / 15.0, 0.05);
  const Graph r = gen::ring(32);
  EXPECT_NEAR(conductance_sweep(r), 2.0 / 32.0, 0.01);
}

TEST(SpectralEdge, SecondEigenvalueOfRegularWalkIsBelowOne) {
  Rng rng(3);
  for (const auto& g :
       {gen::star(12), gen::ring(16), gen::random_regular(32, 4, rng)}) {
    const double l = second_eigenvalue(g, WalkKind::kRegular2Delta, 800);
    EXPECT_GT(l, 0.0);
    EXPECT_LT(l, 1.0);
  }
}

TEST(SpectralEdge, MixingFromStartReturnsCapPlusOneWhenUnmixed) {
  const Graph g = gen::ring(64);
  EXPECT_EQ(mixing_time_from_start(g, WalkKind::kLazy, 0, 5), 6u);
}

TEST(GraphEdge, HasEdgeChecksBothDirectionsAndBounds) {
  const Graph g = Graph::from_edges(3, {{0, 1}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(5, 0));  // out of range is just "no"
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(GraphEdge, EmptyAndEdgelessGraphs) {
  const Graph empty = Graph::from_edges(0, {});
  EXPECT_EQ(empty.num_nodes(), 0u);
  EXPECT_TRUE(is_connected(empty));
  const Graph lonely = Graph::from_edges(1, {});
  EXPECT_EQ(lonely.degree(0), 0u);
  EXPECT_TRUE(is_connected(lonely));
}

TEST(OverlayEdge, EmptyOverlayBehaves) {
  OverlayComm ov({{}, {}}, 7);
  EXPECT_EQ(ov.num_nodes(), 2u);
  EXPECT_EQ(ov.num_arcs(), 0u);
  EXPECT_EQ(ov.degree(0), 0u);
  EXPECT_EQ(ov.max_degree(), 0u);
  EXPECT_EQ(ov.round_cost(), 7u);
}

TEST(WalkEdge, RegularWalkOnOverlayConservesPositions) {
  OverlayComm ov({{1}, {0, 2}, {1}}, 3);
  Rng rng(5);
  ParallelWalkEngine engine(ov, rng.split());
  std::vector<std::uint32_t> starts{0, 1, 2, 1};
  RoundLedger ledger;
  const auto ends =
      engine.run(starts, WalkKind::kRegular2Delta, 50, ledger, nullptr);
  for (const auto e : ends) EXPECT_LT(e, 3u);
}

TEST(RouterEdge, PhasedRoutingWithExplicitOnePhase) {
  Rng rng(7);
  const Graph g = gen::random_regular(64, 6, rng);
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 5;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  const auto reqs = permutation_instance(g, rng);
  RoundLedger ledger;
  const auto stats = router.route_in_phases(reqs, 1, ledger, rng);
  EXPECT_EQ(stats.phases, 1u);
  EXPECT_EQ(stats.delivered, reqs.size());
}

TEST(RouterEdge, ManyExplicitPhasesStillDeliver) {
  Rng rng(9);
  const Graph g = gen::random_regular(64, 6, rng);
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 7;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  const auto reqs = permutation_instance(g, rng);
  RoundLedger ledger;
  // More phases than needed: some buckets may be empty; all must deliver.
  const auto stats = router.route_in_phases(reqs, 16, ledger, rng);
  EXPECT_EQ(stats.phases, 16u);
  EXPECT_EQ(stats.delivered, reqs.size());
}

TEST(MstEdge, MaxIterationOverrideAborts) {
  Rng rng(11);
  const Graph g = gen::random_regular(64, 6, rng);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 9;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  MstParams mp;
  mp.max_iterations = 1;  // cannot possibly finish
  EXPECT_DEATH(HierarchicalBoruvka(h, w).run(ledger, mp), "converge");
}

TEST(MstEdge, PipelinedBoruvkaCustomSizeCap) {
  Rng rng(13);
  const Graph g = gen::connected_gnp(80, 0.1, rng);
  const Weights w = distinct_random_weights(g, rng);
  for (const std::uint32_t cap : {2u, 8u, 80u}) {
    RoundLedger ledger;
    const auto stats = pipelined_boruvka(g, w, ledger, cap);
    EXPECT_TRUE(is_exact_mst(g, w, stats.edges)) << "cap=" << cap;
  }
}

TEST(IoEdge, LargeWeightsSurviveRoundTrip) {
  const Graph g = gen::path(3);
  const Weights w(g, {(1ULL << 52) + 3, (1ULL << 40) + 1});
  std::stringstream ss;
  write_graph(ss, g, &w);
  const auto back = read_graph(ss);
  ASSERT_TRUE(back.weights.has_value());
  EXPECT_EQ((*back.weights)[0], (1ULL << 52) + 3);
}

TEST(KWiseHashEdge, RangeOneAlwaysZero) {
  Rng rng(15);
  const KWiseHash h(4, rng);
  for (std::uint64_t key = 0; key < 50; ++key) {
    EXPECT_EQ(h.bounded(key, 1), 0u);
  }
}

TEST(LedgerEdge, ManyPhasesAccumulateIndependently) {
  RoundLedger ledger;
  for (int i = 0; i < 20; ++i) {
    ledger.charge("phase" + std::to_string(i % 5), i);
  }
  std::uint64_t total = 0;
  for (const auto& [name, sum] : ledger.phases()) total += sum;
  EXPECT_EQ(total, ledger.total());
  EXPECT_EQ(ledger.phases().size(), 5u);
}

TEST(TransportEdge, CommitWithNoMovesIsFree) {
  const Graph g = gen::ring(5);
  BaseComm base(g);
  TokenTransport tt(base);
  RoundLedger ledger;
  EXPECT_EQ(tt.commit_step(ledger), 0u);
  EXPECT_EQ(ledger.total(), 0u);
}

TEST(InstanceEdge, BitReversalRequiresPowerOfTwo) {
  Rng rng(17);
  const Graph g = gen::ring(12);
  EXPECT_DEATH(bit_reversal_instance(g, rng), "power of two");
}

TEST(InstanceEdge, TransposeOnNonSquareFallsBackToSelf) {
  Rng rng(19);
  const Graph g = gen::ring(10);  // s = 3, nodes 9 transpose, node 9 self
  const auto reqs = transpose_instance(g, rng);
  EXPECT_EQ(reqs[9].dst.id, 9u);
  EXPECT_EQ(reqs[1].dst.id, 3u);  // (0,1) -> (1,0)
}

}  // namespace
}  // namespace amix
