// Churn soak: a long interleaved stream of topology mutations and query
// batches through one Session, driven by the sim-layer ChurnPlan. The
// soak pins three contracts at once:
//   * determinism — the same seeded call stream produces byte-identical
//     ledger phases and output digests at any thread count;
//   * liveness — every query after every repair still delivers/solves;
//   * bounds — a fully recorded replay trips zero BoundChecker envelopes.
// Depth is measured in simulated CONGEST rounds: one soak run charges
// well over 10k rounds of interleaved repair + query work.

#include <gtest/gtest.h>

#include "amix/amix.hpp"

namespace amix {
namespace {

constexpr std::uint64_t kSoakSeed = 0x736f616bULL;
constexpr std::uint32_t kEpochs = 18;

struct SoakOutcome {
  std::vector<std::pair<std::string, std::uint64_t>> ledger_phases;
  std::vector<std::uint64_t> digests;  // per query, in call order
  std::uint64_t total_rounds = 0;
  std::uint64_t bound_violations = 0;
  std::size_t patched = 0;
  std::size_t dropped = 0;
  std::size_t oracle_checks = 0;
  std::uint64_t mutations = 0;
};

/// One full soak run. Everything downstream of (threads, record) is a
/// pure function of kSoakSeed, so two runs are comparable element-wise.
SoakOutcome run_soak(std::uint32_t threads, bool record) {
  obs::TraceRecorder rec;
  std::optional<obs::ScopedRecorder> scope;
  if (record) scope.emplace(&rec);

  Rng rng(kSoakSeed);
  Graph g0 = gen::random_regular(96, 6, rng);
  SessionOptions opt;
  opt.seed = kSoakSeed;
  opt.hierarchy.seed = kSoakSeed + 7;
  opt.hierarchy.max_retries = 10;
  opt.exec = ExecPolicy{threads};
  auto session = Session::open(g0, opt);
  session.engine().cache().set_verify_every(512);

  const sim::ChurnPlan plan(0.02);
  SoakOutcome out;

  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    // Query batch against the current topology. Specs carry explicit
    // epoch-keyed seeds, so the stream replays bit-identically.
    Rng erng(keyed_u64(kSoakSeed, 0x65706f6368ULL, epoch));
    std::vector<QuerySpec> specs;
    QuerySpec mst;
    mst.op = MstQuery{distinct_random_weights(session.graph(), erng), {}};
    mst.seed = keyed_u64(kSoakSeed, 0x6d7374ULL, epoch);
    specs.push_back(std::move(mst));
    QuerySpec route;
    route.op = RouteQuery{permutation_instance(session.graph(), erng), 1};
    route.seed = keyed_u64(kSoakSeed, 0x726f757465ULL, epoch);
    specs.push_back(std::move(route));
    const BatchReport b = session.batch(std::move(specs));
    for (const QueryReport& q : b.queries) {
      EXPECT_TRUE(q.ok) << "epoch " << epoch << " " << q.label;
      out.digests.push_back(q.output_digest);
    }

    // Epoch churn, sized by the sim-layer plan (0 on the first epoch).
    const std::uint32_t swaps = plan.churn_swaps(epoch, session.graph());
    if (swaps == 0) continue;
    Rng crng(keyed_u64(kSoakSeed, 0x636875726eULL, epoch));
    const Graph next =
        gen::degree_preserving_rewire(session.graph(), swaps, crng);
    const auto rep = session.mutate(delta_between(session.graph(), next));
    ++out.mutations;
    out.patched += rep.entries_patched;
    out.dropped += rep.entries_dropped;
    out.oracle_checks += rep.oracle_checks;
  }

  out.ledger_phases = session.ledger().phases();
  out.total_rounds = session.ledger().total();
  if (record) {
    out.bound_violations =
        obs::BoundChecker().check(rec.metrics()).violations();
  }
  return out;
}

TEST(ChurnSoak, SerialReplayIsByteIdenticalAndDeepEnough) {
  const SoakOutcome serial = run_soak(1, /*record=*/false);
  const SoakOutcome replay = run_soak(1, /*record=*/false);
  EXPECT_EQ(serial.ledger_phases, replay.ledger_phases);
  EXPECT_EQ(serial.digests, replay.digests);
  EXPECT_EQ(serial.total_rounds, replay.total_rounds);

  // The soak actually soaks: ≥10k simulated rounds of interleaved
  // repair + query work, with churn applied on (almost) every epoch.
  EXPECT_GE(serial.total_rounds, 10000u);
  EXPECT_EQ(serial.mutations, kEpochs - 1);
  EXPECT_EQ(serial.digests.size(), 2u * kEpochs);
  // Repair-in-place must carry most of the churn (fallbacks are legal
  // but the corpus is tuned to keep them the exception).
  EXPECT_EQ(serial.patched + serial.dropped, serial.mutations);
  EXPECT_GE(serial.patched, serial.mutations / 2);
}

TEST(ChurnSoak, ParallelRunMatchesSerialReplayByteForByte) {
  const SoakOutcome serial = run_soak(1, /*record=*/false);
  const SoakOutcome parallel = run_soak(8, /*record=*/false);
  // Byte-identical ledgers: same phase names, same order, same charges.
  ASSERT_EQ(parallel.ledger_phases.size(), serial.ledger_phases.size());
  for (std::size_t i = 0; i < serial.ledger_phases.size(); ++i) {
    EXPECT_EQ(parallel.ledger_phases[i].first, serial.ledger_phases[i].first);
    EXPECT_EQ(parallel.ledger_phases[i].second,
              serial.ledger_phases[i].second);
  }
  EXPECT_EQ(parallel.digests, serial.digests);
  EXPECT_EQ(parallel.total_rounds, serial.total_rounds);
  EXPECT_EQ(parallel.patched, serial.patched);
  EXPECT_EQ(parallel.dropped, serial.dropped);
}

TEST(ChurnSoak, RecordedReplayTripsNoBoundsAndMatchesLedger) {
  const SoakOutcome serial = run_soak(1, /*record=*/false);
  const SoakOutcome recorded = run_soak(1, /*record=*/true);
  // Observability is read-only: recording must not change one charge.
  EXPECT_EQ(recorded.ledger_phases, serial.ledger_phases);
  EXPECT_EQ(recorded.digests, serial.digests);
  EXPECT_EQ(recorded.bound_violations, 0u);
}

}  // namespace
}  // namespace amix
