// End-to-end smoke tests: hierarchy build + hierarchical routing on small
// expanders. Deeper per-module suites live in the other test files.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "hierarchy/hierarchy.hpp"
#include "routing/hierarchical_router.hpp"

namespace amix {
namespace {

TEST(RoutingSmoke, PermutationOnSmallExpander) {
  Rng rng(42);
  const Graph g = gen::random_regular(128, 6, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 7;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  EXPECT_GT(ledger.total(), 0u);

  HierarchicalRouter router(h);
  const auto reqs = permutation_instance(g, rng);
  RoundLedger route_ledger;
  const RouteStats stats = router.route(reqs, route_ledger, rng);
  EXPECT_EQ(stats.delivered, reqs.size());
  EXPECT_EQ(stats.total_rounds, route_ledger.total());
  EXPECT_GT(stats.total_rounds, 0u);
}

TEST(RoutingSmoke, DegreeDemandOnGnp) {
  Rng rng(43);
  const Graph g = gen::connected_gnp(96, 0.12, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 11;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);

  HierarchicalRouter router(h);
  const auto reqs = degree_demand_instance(g, rng);
  RoundLedger route_ledger;
  const RouteStats stats = router.route(reqs, route_ledger, rng);
  EXPECT_EQ(stats.delivered, reqs.size());
}

}  // namespace
}  // namespace amix
