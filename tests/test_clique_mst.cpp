// mst/clique_mst: MST via clique emulation (the Theorem 1.3 application).

#include <gtest/gtest.h>

#include <cmath>

#include "amix/amix.hpp"

namespace amix {
namespace {

TEST(CliqueMst, MatchesKruskalOnExpanders) {
  Rng rng(41);
  const Graph g = gen::random_regular(48, 6, rng);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 9;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  const auto stats = clique_mst(h, w, ledger);
  EXPECT_TRUE(is_exact_mst(g, w, stats.edges));
  EXPECT_GT(stats.rounds, 0u);
}

TEST(CliqueMst, LogManyCliqueRounds) {
  Rng rng(43);
  const Graph g = gen::connected_gnp(64, 0.15, rng);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 11;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  const auto stats = clique_mst(h, w, ledger);
  EXPECT_TRUE(is_exact_mst(g, w, stats.edges));
  // Full Boruvka halves components every round: <= ~log2 n + slack.
  EXPECT_LE(stats.clique_rounds,
            static_cast<std::uint32_t>(std::log2(64.0)) + 2);
}

TEST(CliqueMst, AgreesWithTheOtherEngines) {
  Rng rng(45);
  const Graph g = gen::hypercube(6);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 13;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  const auto via_clique = clique_mst(h, w, ledger);
  const auto via_hier = HierarchicalBoruvka(h, w).run(ledger);
  RoundLedger kl;
  const auto via_kernel = kernel_boruvka(g, w, kl);
  EXPECT_EQ(via_clique.edges, via_hier.edges);
  EXPECT_EQ(via_clique.edges, via_kernel.edges);
}

}  // namespace
}  // namespace amix
