// Randomized fuzz sweeps: random connected graphs (random spanning tree +
// random extra edges) across many seeds, through the whole pipeline, plus
// the adversarial routing patterns.

#include <gtest/gtest.h>

#include "amix/amix.hpp"

namespace amix {
namespace {

/// Random connected graph: a random spanning tree plus `extra` random
/// non-duplicate edges — hits irregular shapes the named families miss.
Graph random_connected(NodeId n, std::uint32_t extra, Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  shuffle(order, rng);
  for (NodeId i = 1; i < n; ++i) {
    edges.emplace_back(order[i], order[rng.next_below(i)]);
  }
  std::set<std::uint64_t> seen;
  for (const auto& [a, b] : edges) {
    seen.insert((static_cast<std::uint64_t>(std::min(a, b)) << 32) |
                std::max(a, b));
  }
  std::uint32_t added = 0;
  for (std::uint32_t tries = 0; added < extra && tries < 50 * extra + 100;
       ++tries) {
    const auto a = static_cast<NodeId>(rng.next_below(n));
    const auto b = static_cast<NodeId>(rng.next_below(n));
    if (a == b) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
    if (seen.insert(key).second) {
      edges.emplace_back(a, b);
      ++added;
    }
  }
  return Graph::from_edges(n, edges);
}

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipeline, RandomShapesSurviveTheWholeStack) {
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  const NodeId n = 40 + static_cast<NodeId>(rng.next_below(40));
  const auto extra = static_cast<std::uint32_t>(rng.next_below(3 * n)) + n / 4;
  const Graph g = random_connected(n, extra, rng);
  ASSERT_TRUE(is_connected(g));

  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = GetParam() + 77;
  hp.max_retries = 10;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);

  HierarchicalRouter router(h);
  const auto reqs = degree_demand_instance(g, rng);
  const RouteStats rs = router.route(reqs, ledger, rng);
  EXPECT_EQ(rs.delivered, reqs.size());

  const Weights w = distinct_random_weights(g, rng);
  const MstStats ms = HierarchicalBoruvka(h, w).run(ledger);
  EXPECT_TRUE(is_exact_mst(g, w, ms.edges));

  RoundLedger kl;
  EXPECT_TRUE(is_exact_mst(g, w, kernel_boruvka(g, w, kl).edges));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline, ::testing::Range(std::uint64_t{1}, std::uint64_t{13}));

TEST(AdversarialPatterns, BitReversalRoutes) {
  Rng rng(31);
  const Graph g = gen::hypercube(7);  // 128 nodes, the classic target
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 3;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  const auto reqs = bit_reversal_instance(g, rng);
  // Bit reversal is a permutation: every node sends and receives once.
  std::vector<int> in(g.num_nodes(), 0);
  for (const auto& r : reqs) ++in[r.dst.id];
  for (const int c : in) EXPECT_EQ(c, 1);
  RoundLedger ledger;
  const auto rs = router.route(reqs, ledger, rng);
  EXPECT_EQ(rs.delivered, reqs.size());
}

TEST(AdversarialPatterns, TransposeRoutes) {
  Rng rng(33);
  const Graph g = gen::torus2d(12);  // 144 = 12^2 nodes
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 5;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  const auto reqs = transpose_instance(g, rng);
  std::vector<int> in(g.num_nodes(), 0);
  for (const auto& r : reqs) ++in[r.dst.id];
  for (const int c : in) EXPECT_EQ(c, 1);  // transpose is an involution
  RoundLedger ledger;
  const auto rs = router.route(reqs, ledger, rng);
  EXPECT_EQ(rs.delivered, reqs.size());
}

TEST(AdversarialPatterns, AdversarialCostsMatchRandomPermutationCosts) {
  // The router's cost is oblivious to the pattern (walk scatter first):
  // adversarial permutations cost about the same as random ones — the
  // whole point of the Valiant-style preparation step.
  Rng rng(35);
  const Graph g = gen::hypercube(7);
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 7;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  RoundLedger l1, l2;
  const auto rev = router.route(bit_reversal_instance(g, rng), l1, rng);
  const auto rnd = router.route(permutation_instance(g, rng), l2, rng);
  const double ratio = static_cast<double>(rev.total_rounds) /
                       static_cast<double>(rnd.total_rounds);
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
}

}  // namespace
}  // namespace amix
