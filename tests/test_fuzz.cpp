// Randomized fuzz sweeps: random connected graphs (random spanning tree +
// random extra edges) across many seeds, through the whole pipeline, plus
// the adversarial routing patterns.

#include <gtest/gtest.h>

#include "amix/amix.hpp"

namespace amix {
namespace {

/// Random connected graph: a random spanning tree plus `extra` random
/// non-duplicate edges — hits irregular shapes the named families miss.
Graph random_connected(NodeId n, std::uint32_t extra, Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  shuffle(order, rng);
  for (NodeId i = 1; i < n; ++i) {
    edges.emplace_back(order[i], order[rng.next_below(i)]);
  }
  std::set<std::uint64_t> seen;
  for (const auto& [a, b] : edges) {
    seen.insert((static_cast<std::uint64_t>(std::min(a, b)) << 32) |
                std::max(a, b));
  }
  std::uint32_t added = 0;
  for (std::uint32_t tries = 0; added < extra && tries < 50 * extra + 100;
       ++tries) {
    const auto a = static_cast<NodeId>(rng.next_below(n));
    const auto b = static_cast<NodeId>(rng.next_below(n));
    if (a == b) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
    if (seen.insert(key).second) {
      edges.emplace_back(a, b);
      ++added;
    }
  }
  return Graph::from_edges(n, edges);
}

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipeline, RandomShapesSurviveTheWholeStack) {
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  const NodeId n = 40 + static_cast<NodeId>(rng.next_below(40));
  const auto extra = static_cast<std::uint32_t>(rng.next_below(3 * n)) + n / 4;
  const Graph g = random_connected(n, extra, rng);
  ASSERT_TRUE(is_connected(g));

  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = GetParam() + 77;
  hp.max_retries = 10;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);

  HierarchicalRouter router(h);
  const auto reqs = degree_demand_instance(g, rng);
  const RouteStats rs = router.route(reqs, ledger, rng);
  EXPECT_EQ(rs.delivered, reqs.size());

  const Weights w = distinct_random_weights(g, rng);
  const MstStats ms = HierarchicalBoruvka(h, w).run(ledger);
  EXPECT_TRUE(is_exact_mst(g, w, ms.edges));

  RoundLedger kl;
  EXPECT_TRUE(is_exact_mst(g, w, kernel_boruvka(g, w, kl).edges));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline, ::testing::Range(std::uint64_t{1}, std::uint64_t{13}));

TEST(AdversarialPatterns, BitReversalRoutes) {
  Rng rng(31);
  const Graph g = gen::hypercube(7);  // 128 nodes, the classic target
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 3;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  const auto reqs = bit_reversal_instance(g, rng);
  // Bit reversal is a permutation: every node sends and receives once.
  std::vector<int> in(g.num_nodes(), 0);
  for (const auto& r : reqs) ++in[r.dst.id];
  for (const int c : in) EXPECT_EQ(c, 1);
  RoundLedger ledger;
  const auto rs = router.route(reqs, ledger, rng);
  EXPECT_EQ(rs.delivered, reqs.size());
}

TEST(AdversarialPatterns, TransposeRoutes) {
  Rng rng(33);
  const Graph g = gen::torus2d(12);  // 144 = 12^2 nodes
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 5;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  const auto reqs = transpose_instance(g, rng);
  std::vector<int> in(g.num_nodes(), 0);
  for (const auto& r : reqs) ++in[r.dst.id];
  for (const int c : in) EXPECT_EQ(c, 1);  // transpose is an involution
  RoundLedger ledger;
  const auto rs = router.route(reqs, ledger, rng);
  EXPECT_EQ(rs.delivered, reqs.size());
}

TEST(AdversarialPatterns, AdversarialCostsMatchRandomPermutationCosts) {
  // The router's cost is oblivious to the pattern (walk scatter first):
  // adversarial permutations cost about the same as random ones — the
  // whole point of the Valiant-style preparation step.
  Rng rng(35);
  const Graph g = gen::hypercube(7);
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 7;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  RoundLedger l1, l2;
  const auto rev = router.route(bit_reversal_instance(g, rng), l1, rng);
  const auto rnd = router.route(permutation_instance(g, rng), l2, rng);
  const double ratio = static_cast<double>(rev.total_rounds) /
                       static_cast<double>(rnd.total_rounds);
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
}

// --- Delta-application fuzz ----------------------------------------------

/// Append insert-edges to `delta` until `g.apply_delta(delta)` is
/// connected: link a representative of every non-root component to node
/// 0's component. Keeps fuzzed batches legal for the query layer (a
/// hierarchy cannot build on a disconnected graph).
void reconnect_in_batch(const Graph& g, GraphDelta& delta) {
  for (int guard = 0; guard < 16; ++guard) {
    const Graph cand = g.apply_delta(delta);
    if (is_connected(cand)) return;
    // Label components with a BFS from every unvisited node.
    std::vector<std::uint32_t> comp(cand.num_nodes(),
                                    ~std::uint32_t{0});
    std::uint32_t ncomp = 0;
    std::vector<NodeId> queue;
    for (NodeId s = 0; s < cand.num_nodes(); ++s) {
      if (comp[s] != ~std::uint32_t{0}) continue;
      comp[s] = ncomp;
      queue.assign(1, s);
      while (!queue.empty()) {
        const NodeId v = queue.back();
        queue.pop_back();
        for (std::uint32_t p = 0; p < cand.degree(v); ++p) {
          const NodeId w = cand.neighbor(v, p);
          if (comp[w] == ~std::uint32_t{0}) {
            comp[w] = ncomp;
            queue.push_back(w);
          }
        }
      }
      ++ncomp;
    }
    for (NodeId v = 1; v < cand.num_nodes(); ++v) {
      if (comp[v] != comp[0]) {
        delta.push_back({0, v, true});
        comp[v] = comp[0];  // one bridge per component is enough
      }
    }
  }
}

class DeltaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaFuzz, RandomDeltaStreamsNeverCrashAndOracleHolds) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 5);
  const Graph g0 = random_connected(48, 30 + rng.next_below(30), rng);
  ASSERT_TRUE(is_connected(g0));

  SessionOptions opt;
  opt.seed = seed + 11;
  opt.hierarchy.seed = seed + 13;
  opt.hierarchy.max_retries = 10;
  auto session = Session::open(g0, opt);
  // Every successful in-place repair is oracle-checked against a fresh
  // rebuild (AMIX_CHECK aborts the test on a mismatch).
  session.engine().cache().set_verify_every(1);
  // Prime the cache: entries exist only after the first query, and a
  // mutate against an empty cache has nothing to patch.
  EXPECT_TRUE(session.mst(distinct_random_weights(g0, rng)).ok);

  for (std::uint32_t step = 0; step < 5; ++step) {
    const Graph& cur = session.graph();
    const NodeId n = cur.num_nodes();
    GraphDelta delta;
    const std::uint32_t ops = 1 + rng.next_below(6);
    for (std::uint32_t k = 0; k < ops; ++k) {
      const auto roll = rng.next_below(8);
      if (roll == 0 && !delta.empty()) {
        delta.push_back(delta.back());  // duplicate op
      } else if (roll == 1) {
        const auto v = static_cast<NodeId>(rng.next_below(n));
        delta.push_back({v, v, rng.next_below(2) == 0});  // self-loop no-op
      } else if (roll == 2) {
        delta.push_back({static_cast<NodeId>(rng.next_below(n)),
                         static_cast<NodeId>(n + 5), true});  // out of range
      } else if (roll == 3 && cur.num_edges() > n) {
        // Disconnect-then-reconnect inside one batch: cut a node's whole
        // neighborhood, then restore part of it.
        const auto v = static_cast<NodeId>(rng.next_below(n));
        for (std::uint32_t p = 0; p < cur.degree(v); ++p) {
          delta.push_back({v, cur.neighbor(v, p), false});
        }
        if (cur.degree(v) > 0) {
          delta.push_back({v, cur.neighbor(v, 0), true});
        }
      } else {
        const auto a = static_cast<NodeId>(rng.next_below(n));
        const auto b = static_cast<NodeId>(rng.next_below(n));
        delta.push_back({a, b, rng.next_below(3) != 0});
      }
    }
    reconnect_in_batch(cur, delta);
    ASSERT_TRUE(is_connected(cur.apply_delta(delta)));

    // A batch whose effective ops cancel leaves the fingerprint alone and
    // must patch nothing; anything else patches or drops the one entry.
    const bool changes =
        engine::graph_fingerprint(cur.apply_delta(delta)) !=
        engine::graph_fingerprint(cur);
    const auto rep = session.mutate(delta);
    EXPECT_EQ(rep.entries_patched + rep.entries_dropped, changes ? 1u : 0u)
        << "seed " << seed << " step " << step;

    // The mutated topology still answers exactly (cache hit on a patched
    // entry, or a lazy rebuild after a fallback — both must agree with
    // the sequential oracle).
    const Weights w = distinct_random_weights(session.graph(), rng);
    const QueryReport mst = session.mst(w);
    EXPECT_TRUE(mst.ok);
    ASSERT_TRUE(mst.mst.has_value());
    EXPECT_TRUE(is_exact_mst(session.graph(), w, mst.mst->edges))
        << "seed " << seed << " step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaFuzz,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{7}));

}  // namespace
}  // namespace amix
