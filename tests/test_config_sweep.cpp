// Property sweep over the hierarchy configuration space: the Las Vegas
// construction and the router/MST must be correct for every sensible
// combination of beta / leaf_target / level_degree / walk_slack — not just
// the defaults.

#include <gtest/gtest.h>

#include "amix/amix.hpp"

namespace amix {
namespace {

struct Config {
  std::uint32_t beta;
  std::uint32_t leaf_target;
  std::uint32_t level_degree;
  double walk_slack;
};

class ConfigSweep : public ::testing::TestWithParam<Config> {};

TEST_P(ConfigSweep, PipelineCorrectUnderConfig) {
  const Config c = GetParam();
  Rng rng(71);
  const Graph g = gen::random_regular(128, 6, rng);

  RoundLedger ledger;
  HierarchyParams hp;
  hp.beta = c.beta;
  hp.leaf_target = c.leaf_target;
  hp.level_degree = c.level_degree;
  hp.walk_slack = c.walk_slack;
  hp.seed = 1 + c.beta * 100 + c.leaf_target;
  hp.max_retries = 10;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  EXPECT_EQ(h.beta(), c.beta);

  HierarchicalRouter router(h);
  const auto reqs = permutation_instance(g, rng);
  const RouteStats rs = router.route(reqs, ledger, rng);
  EXPECT_EQ(rs.delivered, reqs.size());

  const Weights w = distinct_random_weights(g, rng);
  const MstStats ms = HierarchicalBoruvka(h, w).run(ledger);
  EXPECT_TRUE(is_exact_mst(g, w, ms.edges));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigSweep,
    ::testing::Values(Config{4, 12, 5, 1.5},    // deep hierarchy
                      Config{8, 10, 5, 1.5},    // default-ish
                      Config{8, 20, 4, 1.5},    // big leaves
                      Config{16, 10, 6, 1.5},   // wide
                      Config{16, 16, 8, 2.5},   // wide + thick + slack
                      Config{32, 12, 6, 1.5},   // widest (depth 1)
                      Config{8, 10, 3, 1.2}),   // thin overlays (more retries)
    [](const ::testing::TestParamInfo<Config>& info) {
      const Config& c = info.param;
      return "b" + std::to_string(c.beta) + "_l" +
             std::to_string(c.leaf_target) + "_d" +
             std::to_string(c.level_degree) + "_s" +
             std::to_string(static_cast<int>(c.walk_slack * 10));
    });

TEST(RouterDiagnostics, PerLevelBreakdownIsConsistent) {
  Rng rng(73);
  const Graph g = gen::random_regular(160, 6, rng);
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 17;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  const auto reqs = permutation_instance(g, rng);
  RoundLedger ledger;
  const RouteStats rs = router.route(reqs, ledger, rng);

  // Per-level hop rounds sum to the total hop charge.
  std::uint64_t level_sum = 0;
  for (const auto x : rs.hop_rounds_by_level) level_sum += x;
  EXPECT_EQ(level_sum, rs.hop_rounds);
  // Some packets cross at the top level w.h.p. (random dests).
  ASSERT_FALSE(rs.cross_packets_by_level.empty());
  EXPECT_GT(rs.cross_packets_by_level[0], 0u);
  // Cross packets never exceed total packets per level... per call they
  // can repeat across phases, but stay bounded by packets * 2^depth.
  for (const auto c : rs.cross_packets_by_level) {
    EXPECT_LE(c, static_cast<std::uint64_t>(rs.packets) << h.depth());
  }
}

TEST(RouterDiagnostics, HopChargesUseTheRightOverlayCosts) {
  // Level-l hops cross the level-l overlay: each hop step costs a multiple
  // of that overlay's round cost.
  Rng rng(79);
  const Graph g = gen::random_regular(96, 6, rng);
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 23;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  const auto reqs = permutation_instance(g, rng);
  RoundLedger ledger;
  const RouteStats rs = router.route(reqs, ledger, rng);
  for (std::size_t level = 0; level < rs.hop_rounds_by_level.size();
       ++level) {
    const std::uint64_t hops = rs.hop_rounds_by_level[level];
    if (hops == 0) continue;
    EXPECT_EQ(hops % h.overlay(level).round_cost(), 0u)
        << "level " << level;
  }
}

}  // namespace
}  // namespace amix
