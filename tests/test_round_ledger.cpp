// congest/round_ledger.hpp: the RoundLedger and PhaseScope unit contract.

#include <gtest/gtest.h>

#include "congest/round_ledger.hpp"

namespace amix {
namespace {

TEST(RoundLedger, UntaggedChargesCountOnlyTowardTotal) {
  RoundLedger ledger;
  ledger.charge(5);
  ledger.charge(3);
  EXPECT_EQ(ledger.total(), 8u);
  EXPECT_TRUE(ledger.phases().empty());
}

TEST(RoundLedger, PhaseTotalOnUnknownPhaseIsZero) {
  RoundLedger ledger;
  ledger.charge("build", 11);
  EXPECT_EQ(ledger.phase_total("build"), 11u);
  EXPECT_EQ(ledger.phase_total("route"), 0u);
  EXPECT_EQ(ledger.phase_total(""), 0u);
}

TEST(RoundLedger, ResetClearsTotalAndPhaseBreakdown) {
  RoundLedger ledger;
  ledger.charge("a", 4);
  ledger.charge(2);
  ASSERT_EQ(ledger.total(), 6u);
  ASSERT_FALSE(ledger.phases().empty());
  ledger.reset();
  EXPECT_EQ(ledger.total(), 0u);
  EXPECT_TRUE(ledger.phases().empty());
  EXPECT_EQ(ledger.phase_total("a"), 0u);
}

TEST(RoundLedger, PhaseOrderIsFirstChargeOrder) {
  RoundLedger ledger;
  ledger.charge("z", 1);
  ledger.charge("a", 2);
  ledger.charge("z", 3);
  ASSERT_EQ(ledger.phases().size(), 2u);
  EXPECT_EQ(ledger.phases()[0].first, "z");
  EXPECT_EQ(ledger.phases()[0].second, 4u);
  EXPECT_EQ(ledger.phases()[1].first, "a");
}

TEST(PhaseScope, NestedScopesFoldIntoParentUnderTheRightLabel) {
  RoundLedger root;
  {
    PhaseScope outer(root, "outer");
    outer.ledger().charge(1);
    {
      PhaseScope inner(outer.ledger(), "inner");
      inner.ledger().charge(10);
      inner.ledger().charge("deep", 5);
    }
    // The inner scope's 15 rounds landed in the outer sub-ledger under
    // "inner"; nothing has reached the root yet.
    EXPECT_EQ(outer.ledger().total(), 16u);
    EXPECT_EQ(outer.ledger().phase_total("inner"), 15u);
    EXPECT_EQ(root.total(), 0u);
  }
  EXPECT_EQ(root.total(), 16u);
  EXPECT_EQ(root.phase_total("outer"), 16u);
  EXPECT_EQ(root.phase_total("inner"), 0u);  // folded away, not leaked
}

TEST(PhaseScope, EmptyScopeStillRegistersItsPhase) {
  RoundLedger root;
  { PhaseScope scope(root, "idle"); }
  EXPECT_EQ(root.total(), 0u);
  ASSERT_EQ(root.phases().size(), 1u);
  EXPECT_EQ(root.phases()[0].first, "idle");
  EXPECT_EQ(root.phase_total("idle"), 0u);
}

TEST(PhaseScope, SiblingScopesAccumulateUnderOneLabel) {
  RoundLedger root;
  for (int i = 1; i <= 3; ++i) {
    PhaseScope scope(root, "pass");
    scope.ledger().charge(static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(root.total(), 6u);
  EXPECT_EQ(root.phase_total("pass"), 6u);
  EXPECT_EQ(root.phases().size(), 1u);
}

}  // namespace
}  // namespace amix
