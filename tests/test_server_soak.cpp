// amixd soak: concurrent query traffic interleaved with fault-injected
// mutate traffic against one live daemon. This is the test the TSan CI
// job runs against the server subsystem — it exists to put the shared
// cache's lock-free read path, the pin-then-revalidate handshake, and
// the mutate unpublish/patch/drop discipline under real contention, with
// transport faults active so retransmission state is churning too.
//
// Assertions are about invariants, not exact interleavings: every
// round trip either succeeds or fails with a TYPED error, responses for
// the same (seed, base, body, graph_fp) agree byte-for-byte, and the
// daemon drains cleanly with every request accounted for.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "sim/fault_plan.hpp"
#include "util/rng.hpp"

namespace amix::server {
namespace {

std::string tail_of(const std::string& body) {
  const auto pos = body.find("\"batch_rounds\"");
  return pos == std::string::npos ? body : body.substr(pos);
}

std::uint64_t graph_fp_of(const std::string& body) {
  const auto pos = body.find("\"graph_fp\":");
  if (pos == std::string::npos) return 0;
  return std::strtoull(body.c_str() + pos + 11, nullptr, 10);
}

TEST(ServerSoak, ConcurrentQueriesAndFaultyMutatesStayCoherent) {
  ServerOptions opt;
  opt.workers = 4;
  opt.tenant_inflight = 0;  // soak contention, not admission control
  opt.hierarchy.seed = 3;
  // Transport faults on every query: drops + retransmissions churn the
  // per-query fault state while the cache churns underneath.
  opt.fault_factory = [] {
    return std::make_unique<sim::MessageDropPlan>(0.05);
  };
  opt.fault_seed = 99;

  Rng rng(21);
  Server srv(opt);
  srv.register_graph("g0", gen::random_regular(48, 4, rng));
  std::string err;
  ASSERT_TRUE(srv.start(&err)) << err;

  constexpr int kQueryThreads = 6;
  constexpr int kQueriesPerThread = 12;
  constexpr int kMutates = 24;
  const std::vector<std::string> mix = {"mst", "route perm", "walks 6 4"};

  std::atomic<bool> failed{false};
  std::mutex mu;
  std::vector<std::string> problems;
  // Responses keyed by the topology they were computed against: same
  // graph_fp must mean same replayable tail, mutate storm or not.
  std::map<std::uint64_t, std::string> tails_by_fp;
  std::atomic<std::uint64_t> ok_queries{0};

  auto complain = [&](std::string what) {
    failed = true;
    const std::lock_guard lock(mu);
    problems.push_back(std::move(what));
  };

  std::vector<std::thread> pool;
  pool.reserve(kQueryThreads + 1);
  for (int t = 0; t < kQueryThreads; ++t) {
    pool.emplace_back([&, t] {
      Client c;
      std::string cerr;
      if (!c.connect_to(srv.port(), &cerr)) {
        complain("connect: " + cerr);
        return;
      }
      RequestHeader h;
      h.verb = Verb::kQuery;
      h.graph = "g0";
      h.tenant = "t" + std::to_string(t % 3);  // 3 tenants share the cache
      h.seed = 3;
      h.base = 0;
      for (int q = 0; q < kQueriesPerThread && !failed; ++q) {
        ResponseHeader resp;
        std::string body;
        if (!c.request(h, mix, &resp, &body, &cerr)) {
          complain("query transport: " + cerr);
          return;
        }
        if (!resp.ok) {
          // Typed errors are allowed under churn; silent nonsense is not.
          continue;
        }
        ++ok_queries;
        const std::uint64_t fp = graph_fp_of(body);
        const std::string tail = tail_of(body);
        const std::lock_guard lock(mu);
        const auto [it, inserted] = tails_by_fp.emplace(fp, tail);
        if (!inserted && it->second != tail) {
          complain("determinism violation at fp " + std::to_string(fp));
          return;
        }
      }
    });
  }

  pool.emplace_back([&] {
    Client c;
    std::string cerr;
    if (!c.connect_to(srv.port(), &cerr)) {
      complain("mutator connect: " + cerr);
      return;
    }
    RequestHeader h;
    h.verb = Verb::kMutate;
    h.graph = "g0";
    h.tenant = "mutator";
    Rng mrng(77);
    for (int m = 0; m < kMutates && !failed; ++m) {
      // Toggle a pseudo-random edge: half the deltas are inapplicable
      // no-ops, the rest force patch / busy-drop / rebuild races.
      const auto u = static_cast<std::uint32_t>(mrng.next_below(48));
      const auto v = static_cast<std::uint32_t>(mrng.next_below(48));
      if (u == v) continue;
      std::ostringstream line;
      line << (m % 2 == 0 ? "insert " : "delete ") << u << ' ' << v;
      ResponseHeader resp;
      std::string body;
      if (!c.request(h, {line.str()}, &resp, &body, &cerr)) {
        complain("mutate transport: " + cerr);
        return;
      }
      if (!resp.ok) {
        complain("mutate error: " + resp.error_msg);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (std::thread& t : pool) t.join();
  ASSERT_TRUE(problems.empty()) << problems.front();
  // The fault plans dropped messages but every query still completed:
  // retransmission is part of the simulated transport, not an error.
  EXPECT_EQ(ok_queries.load(), kQueryThreads * kQueriesPerThread);

  // The cache actually churned: queries hit, mutates reconciled. Which
  // reconcile path each mutate took is timing-dependent; their SUM is
  // every topology-changing mutate.
  const SharedHierarchyCache::Stats cs = srv.cache().stats();
  EXPECT_GT(cs.hits, 0u);
  EXPECT_GT(cs.misses, 0u);
  EXPECT_GT(cs.patched + cs.busy_drops + cs.fallback_drops, 0u);

  srv.shutdown();
  const Server::Stats ss = srv.stats();
  EXPECT_GE(ss.requests,
            static_cast<std::uint64_t>(kQueryThreads * kQueriesPerThread));
  EXPECT_EQ(ss.shed_overloaded, 0u);  // queue never filled at this load
}

TEST(ServerSoak, StatsRequestsInterleaveWithTraffic) {
  ServerOptions opt;
  opt.workers = 3;
  opt.hierarchy.seed = 5;
  Rng rng(22);
  Server srv(opt);
  srv.register_graph("g0", gen::random_regular(40, 4, rng));
  std::string err;
  ASSERT_TRUE(srv.start(&err)) << err;

  std::atomic<bool> stop{false};
  std::vector<std::string> problems;
  std::mutex mu;
  std::thread querier([&] {
    Client c;
    std::string cerr;
    if (!c.connect_to(srv.port(), &cerr)) return;
    RequestHeader h;
    h.verb = Verb::kQuery;
    h.graph = "g0";
    h.seed = 5;
    for (int q = 0; q < 10; ++q) {
      ResponseHeader resp;
      std::string body;
      if (!c.request(h, {"mst", "walks 4 4"}, &resp, &body, &cerr) ||
          !resp.ok) {
        const std::lock_guard lock(mu);
        problems.push_back("query: " + (resp.ok ? cerr : resp.error_msg));
        return;
      }
    }
    stop = true;
  });
  std::thread statser([&] {
    Client c;
    std::string cerr;
    if (!c.connect_to(srv.port(), &cerr)) return;
    RequestHeader h;
    h.verb = Verb::kStats;
    while (!stop) {
      ResponseHeader resp;
      std::string body;
      if (!c.request(h, {}, &resp, &body, &cerr) || !resp.ok) {
        const std::lock_guard lock(mu);
        problems.push_back("stats: " + (resp.ok ? cerr : resp.error_msg));
        return;
      }
      if (body.find("\"tenants\":[") == std::string::npos) {
        const std::lock_guard lock(mu);
        problems.push_back("stats body malformed: " + body);
        return;
      }
    }
  });
  querier.join();
  stop = true;
  statser.join();
  ASSERT_TRUE(problems.empty()) << problems.front();
}

}  // namespace
}  // namespace amix::server
