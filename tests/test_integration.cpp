// End-to-end integration and property sweeps: the full pipeline across
// random seeds (Las Vegas correctness must hold for every seed), plus
// cross-engine agreement and determinism guarantees.

#include <gtest/gtest.h>

#include "amix/amix.hpp"

namespace amix {
namespace {

// ---- Seed sweep: the entire pipeline is correct for every seed. ----

class PipelineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeedSweep, RouteAndMstCorrectForEverySeed) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const Graph g = gen::random_regular(96, 6, rng);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = seed * 2654435761u + 1;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);

  HierarchicalRouter router(h);
  const auto reqs = permutation_instance(g, rng);
  const RouteStats rs = router.route(reqs, ledger, rng);
  EXPECT_EQ(rs.delivered, reqs.size());

  const Weights w = distinct_random_weights(g, rng);
  const MstStats ms = HierarchicalBoruvka(h, w).run(ledger);
  EXPECT_TRUE(is_exact_mst(g, w, ms.edges)) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- Weight-distribution sweep: MST engines agree under skew. ----

class WeightSweep : public ::testing::TestWithParam<int> {};

TEST_P(WeightSweep, AllEnginesAgreeOnSkewedWeights) {
  Rng rng(97 + GetParam());
  const Graph g = gen::connected_gnp(80, 0.1, rng);
  const Weights w = GetParam() % 2 == 0
                        ? distinct_random_weights(g, rng)
                        : clustered_weights(g, rng, 1 + GetParam());
  RoundLedger hb, l1, l2;
  HierarchyParams hp;
  hp.seed = 1000 + GetParam();
  const Hierarchy h = Hierarchy::build(g, hp, hb);
  const auto hier = HierarchicalBoruvka(h, w).run(hb);
  const auto flood = flood_boruvka(g, w, l1);
  const auto piped = pipelined_boruvka(g, w, l2);
  const auto oracle = kruskal_mst(g, w);
  EXPECT_EQ(hier.edges, oracle);
  EXPECT_EQ(flood.edges, oracle);
  EXPECT_EQ(piped.edges, oracle);
}

INSTANTIATE_TEST_SUITE_P(Dists, WeightSweep, ::testing::Range(0, 6));

// ---- Determinism: identical seeds -> identical round counts. ----

TEST(Determinism, FullPipelineIsReproducible) {
  auto run_once = [] {
    Rng rng(4242);
    const Graph g = gen::random_regular(96, 6, rng);
    RoundLedger ledger;
    HierarchyParams hp;
    hp.seed = 77;
    const Hierarchy h = Hierarchy::build(g, hp, ledger);
    HierarchicalRouter router(h);
    const auto reqs = permutation_instance(g, rng);
    router.route(reqs, ledger, rng);
    const Weights w = distinct_random_weights(g, rng);
    HierarchicalBoruvka(h, w).run(ledger);
    return ledger.total();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, CrossAlgorithmSeedRegression) {
  // Run MST + routing twice from one seed and compare EVERYTHING — total,
  // per-phase breakdown, MST edge list, and routing statistics. This is
  // the regression net for hidden std::rand / unordered-container /
  // address-dependent nondeterminism anywhere in the pipeline: a bare
  // total can collide by luck, the full tuple cannot.
  struct Observation {
    std::uint64_t total;
    std::vector<std::pair<std::string, std::uint64_t>> phases;
    std::vector<EdgeId> mst_edges;
    std::uint64_t route_rounds, prep_rounds, hop_rounds, leaf_rounds;
    std::uint32_t delivered, max_vid_load;
    std::uint64_t mst_rounds;
    std::uint32_t mst_iterations;
  };
  const auto observe = [] {
    Rng rng(31337);
    const Graph g = gen::random_regular(96, 6, rng);
    RoundLedger ledger;
    HierarchyParams hp;
    hp.seed = 271828;
    const Hierarchy h = Hierarchy::build(g, hp, ledger);
    HierarchicalRouter router(h);
    const auto reqs = permutation_instance(g, rng);
    const RouteStats rs = router.route(reqs, ledger, rng);
    const Weights w = distinct_random_weights(g, rng);
    const MstStats ms = HierarchicalBoruvka(h, w).run(ledger);
    return Observation{ledger.total(),   ledger.phases(), ms.edges,
                       rs.total_rounds,  rs.prep_rounds,  rs.hop_rounds,
                       rs.leaf_rounds,   rs.delivered,    rs.max_vid_load,
                       ms.rounds,        ms.iterations};
  };
  const Observation a = observe();
  const Observation b = observe();
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.phases, b.phases);
  EXPECT_EQ(a.mst_edges, b.mst_edges);
  EXPECT_EQ(a.route_rounds, b.route_rounds);
  EXPECT_EQ(a.prep_rounds, b.prep_rounds);
  EXPECT_EQ(a.hop_rounds, b.hop_rounds);
  EXPECT_EQ(a.leaf_rounds, b.leaf_rounds);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.max_vid_load, b.max_vid_load);
  EXPECT_EQ(a.mst_rounds, b.mst_rounds);
  EXPECT_EQ(a.mst_iterations, b.mst_iterations);
}

TEST(Determinism, DifferentSeedsChangeScheduleNotCorrectness) {
  Rng rng(5);
  const Graph g = gen::random_regular(96, 6, rng);
  const Weights w = distinct_random_weights(g, rng);
  std::uint64_t prev_rounds = 0;
  bool any_differ = false;
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    RoundLedger ledger;
    HierarchyParams hp;
    hp.seed = seed;
    const Hierarchy h = Hierarchy::build(g, hp, ledger);
    const auto ms = HierarchicalBoruvka(h, w).run(ledger);
    EXPECT_TRUE(is_exact_mst(g, w, ms.edges));
    if (prev_rounds != 0 && ledger.total() != prev_rounds) any_differ = true;
    prev_rounds = ledger.total();
  }
  EXPECT_TRUE(any_differ);  // randomness actually flows through
}

// ---- Cross-checks between independently implemented components. ----

TEST(CrossCheck, MincutAgreesWithMstWitnessOnBridgeGraphs) {
  // On a barbell, the min cut (the bridge) must also be the heaviest
  // possible bottleneck any spanning tree crosses exactly once.
  Rng rng(7);
  const Graph g = gen::barbell(24);
  RoundLedger ledger;
  const auto mc = approx_mincut_tree_packing(g, rng, ledger, 10);
  EXPECT_EQ(mc.cut_value, 1u);
  EXPECT_EQ(mc.cut_value, stoer_wagner_mincut(g));
}

TEST(CrossCheck, CliqueEmulationMatchesDirectAllToAllRouting) {
  Rng rng(9);
  const Graph g = gen::random_regular(32, 6, rng);
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 3;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  // Route the all-to-all instance manually with the K-phase router.
  HierarchicalRouter router(h);
  const auto reqs = all_to_all_instance(g);
  RoundLedger l1;
  const auto direct = router.route_in_phases(reqs, 0, l1, rng);
  EXPECT_EQ(direct.delivered, reqs.size());
  // The CliqueEmulator reports the same flavor of cost.
  const CliqueEmulator emu(h);
  RoundLedger l2;
  const auto stats = emu.emulate_round(l2, rng, 0.0);
  EXPECT_EQ(stats.messages, reqs.size());
  EXPECT_EQ(stats.phases, direct.phases);
}

TEST(CrossCheck, RouterWorksAfterManyReuses) {
  // The hierarchy is a long-lived structure: many routing batches reuse it
  // without state leaking between calls.
  Rng rng(11);
  const Graph g = gen::random_regular(64, 6, rng);
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 31;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  std::uint64_t first_cost = 0;
  for (int batch = 0; batch < 5; ++batch) {
    const auto reqs = permutation_instance(g, rng);
    RoundLedger ledger;
    const auto rs = router.route(reqs, ledger, rng);
    EXPECT_EQ(rs.delivered, reqs.size());
    if (batch == 0) first_cost = rs.total_rounds;
    // Costs stay in the same ballpark (no monotone drift).
    EXPECT_LT(rs.total_rounds, 20 * first_cost);
    EXPECT_GT(rs.total_rounds, first_cost / 20);
  }
}

TEST(EdgeCases, TwoNodeGraphFullPipeline) {
  const Graph g = gen::path(2);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 1;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  Rng rng(1);
  HierarchicalRouter router(h);
  std::vector<RouteRequest> reqs{RouteRequest{0, addr_of(g, 1), 7},
                                 RouteRequest{1, addr_of(g, 0), 8}};
  const auto rs = router.route(reqs, ledger, rng);
  EXPECT_EQ(rs.delivered, 2u);
  const Weights w(g, {42});
  const auto ms = HierarchicalBoruvka(h, w).run(ledger);
  EXPECT_EQ(ms.edges, std::vector<EdgeId>{0});
}

TEST(EdgeCases, TriangleGraph) {
  const Graph g = gen::ring(3);
  RoundLedger ledger;
  HierarchyParams hp;
  hp.seed = 2;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  Rng rng(2);
  const Weights w(g, {3, 1, 2});
  const auto ms = HierarchicalBoruvka(h, w).run(ledger);
  EXPECT_EQ(ms.edges, (std::vector<EdgeId>{1, 2}));
}

}  // namespace
}  // namespace amix
