// The cost-aware LRU eviction policy (engine/eviction.hpp) and its use
// by HierarchyCache::set_capacity. The policy unit is shared with the
// server's SharedHierarchyCache (tested in test_server.cpp), so these
// tests pin its semantics once: victim = lowest rebuild-cost per idle
// tick, exact 128-bit cross-multiplication, deterministic tie-breaks.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "engine/eviction.hpp"
#include "engine/hierarchy_cache.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace amix::engine {
namespace {

EvictionCandidate cand(std::uint64_t graph_fp, std::uint64_t cost,
                       std::uint64_t last_use) {
  return EvictionCandidate{graph_fp, /*params_fp=*/1, cost, last_use};
}

TEST(EvictionPolicy, EmptyAndSingleton) {
  EXPECT_FALSE(pick_victim({}, 10).has_value());
  const std::vector<EvictionCandidate> one{cand(1, 100, 5)};
  ASSERT_TRUE(pick_victim(one, 10).has_value());
  EXPECT_EQ(*pick_victim(one, 10), 0u);
}

TEST(EvictionPolicy, CheaperEntryEvictsFirstAtEqualAge) {
  const std::vector<EvictionCandidate> c{cand(1, 1000, 50), cand(2, 10, 50)};
  EXPECT_EQ(*pick_victim(c, 100), 1u);  // same idle age: cheap one goes
}

TEST(EvictionPolicy, StalerEntryEvictsFirstAtEqualCost) {
  const std::vector<EvictionCandidate> c{cand(1, 500, 90), cand(2, 500, 10)};
  EXPECT_EQ(*pick_victim(c, 100), 1u);  // same cost: stale one goes
}

TEST(EvictionPolicy, CostPerIdleTickTradesCostAgainstRecency) {
  // A: expensive but idle 92 ticks — score (1000+1)/92 ≈ 10.9.  B: cheap
  // but used THIS tick — score (10+1)/1 = 11.  A's score is smaller, so
  // the EXPENSIVE entry is the victim: cost only protects an entry while
  // it keeps getting hit.
  const std::vector<EvictionCandidate> c{cand(1, 1000, 9), cand(2, 10, 100)};
  EXPECT_EQ(*pick_victim(c, 100), 0u);
  // One tick of idleness later B's age doubles and its score halves;
  // now A survives — recency decays protection smoothly, not in cliffs.
  const std::vector<EvictionCandidate> c2{cand(1, 1000, 9), cand(2, 10, 99)};
  EXPECT_EQ(*pick_victim(c2, 100), 1u);
}

TEST(EvictionPolicy, AgeSaturatesSoFreshEntriesCompareByCost) {
  // now == last_use (age clamps to 1 rather than dividing by zero);
  // both fresh, the cheap one goes first.
  const std::vector<EvictionCandidate> c{cand(1, 70, 100), cand(2, 30, 100)};
  EXPECT_EQ(*pick_victim(c, 100), 1u);
  // A stamp from a racing reader may even exceed `now`; still saturated.
  const std::vector<EvictionCandidate> f{cand(1, 70, 150), cand(2, 30, 150)};
  EXPECT_EQ(*pick_victim(f, 100), 1u);
}

TEST(EvictionPolicy, ExactCompareSurvivesHugeValues) {
  // (cost_a+1) * age_b would overflow u64; the __int128 cross product
  // must still rank correctly: a's score ~2^63/1 vs b's ~1/2^62.
  const std::vector<EvictionCandidate> c{
      cand(1, 1ULL << 63, 1ULL << 62),  // expensive, fresh-ish
      cand(2, 0, 1),                    // free to rebuild, ancient
  };
  EXPECT_EQ(*pick_victim(c, (1ULL << 62) + 2), 1u);
}

TEST(EvictionPolicy, TieBreaksAreTotalAndDeterministic) {
  // Identical (cost, last_use): smaller graph_fp wins the victim slot.
  const std::vector<EvictionCandidate> c{cand(7, 50, 10), cand(3, 50, 10),
                                         cand(9, 50, 10)};
  EXPECT_EQ(c[*pick_victim(c, 20)].graph_fp, 3u);
}

TEST(EvictionPolicy, VictimIsByValueNotByPosition) {
  std::vector<EvictionCandidate> c{cand(1, 1000, 90), cand(2, 5, 10),
                                   cand(3, 400, 50)};
  const std::uint64_t victim_fp = c[*pick_victim(c, 100)].graph_fp;
  std::reverse(c.begin(), c.end());
  EXPECT_EQ(c[*pick_victim(c, 100)].graph_fp, victim_fp);
}

// ---- HierarchyCache capacity wiring -------------------------------------

TEST(HierarchyCacheEviction, CapacityBoundsEntriesAndKeepsCostHistory) {
  Rng rng(11);
  const Graph g1 = gen::random_regular(32, 4, rng);
  const Graph g2 = gen::random_regular(40, 4, rng);
  const Graph g3 = gen::random_regular(48, 4, rng);
  const HierarchyParams hp;

  HierarchyCache cache;
  cache.set_capacity(2);
  cache.get_or_build(g1, hp);
  cache.get_or_build(g2, hp);
  cache.get_or_build(g3, hp);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);

  // g1 was the stalest at the overflow: it is the one gone.
  EXPECT_EQ(cache.find(g1, hp), nullptr);
  EXPECT_NE(cache.find(g3, hp), nullptr);

  // The evicted key's build cost survives in the history.
  const auto recorded =
      cache.recorded_build_rounds(graph_fingerprint(g1), params_fingerprint(hp));
  ASSERT_TRUE(recorded.has_value());
  EXPECT_GT(*recorded, 0u);

  // Rebuilding the evicted key is a fresh miss, then a hit.
  EXPECT_TRUE(cache.get_or_build(g1, hp).built);
  EXPECT_FALSE(cache.get_or_build(g1, hp).built);
}

TEST(HierarchyCacheEviction, JustBuiltEntryIsNeverItsOwnVictim) {
  Rng rng(12);
  const Graph g1 = gen::random_regular(32, 4, rng);
  const Graph g2 = gen::random_regular(40, 4, rng);
  const HierarchyParams hp;

  HierarchyCache cache;
  cache.set_capacity(1);
  cache.get_or_build(g1, hp);
  cache.get_or_build(g2, hp);  // overflow: must evict g1, not itself
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(g1, hp), nullptr);
  EXPECT_NE(cache.find(g2, hp), nullptr);
}

TEST(HierarchyCacheEviction, RecentlyHitEntrySurvivesOverflow) {
  Rng rng(13);
  const Graph g1 = gen::random_regular(32, 4, rng);
  const Graph g2 = gen::random_regular(40, 4, rng);
  const Graph g3 = gen::random_regular(48, 4, rng);
  const HierarchyParams hp;

  HierarchyCache cache;
  cache.set_capacity(2);
  cache.get_or_build(g1, hp);
  cache.get_or_build(g2, hp);
  // Keep g1 hot: its idle age at the overflow is smaller than g2's.
  cache.get_or_build(g1, hp);
  cache.get_or_build(g1, hp);
  cache.get_or_build(g3, hp);
  EXPECT_NE(cache.find(g1, hp), nullptr);
  EXPECT_EQ(cache.find(g2, hp), nullptr);
}

TEST(HierarchyCacheEviction, ShrinkingCapacityEvictsImmediately) {
  Rng rng(14);
  const Graph g1 = gen::random_regular(32, 4, rng);
  const Graph g2 = gen::random_regular(40, 4, rng);
  const HierarchyParams hp;

  HierarchyCache cache;  // unbounded by default
  cache.get_or_build(g1, hp);
  cache.get_or_build(g2, hp);
  EXPECT_EQ(cache.size(), 2u);
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
}

}  // namespace
}  // namespace amix::engine
