// amixd server core: wire protocol robustness, admission shedding, the
// shared cross-tenant cache's mutate discipline, and the determinism
// contract — every query response's replayable tail byte-identical to a
// serial in-process replay of the same (session_seed, call index) stream.
//
// All tests run a real Server on an ephemeral loopback port and talk to
// it over real sockets via server::Client; nothing is mocked.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/execute.hpp"
#include "engine/session.hpp"
#include "graph/generators.hpp"
#include "hierarchy/hierarchy.hpp"
#include "server/client.hpp"
#include "server/mix.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "util/rng.hpp"

namespace amix::server {
namespace {

Graph test_graph(std::uint32_t n = 48, std::uint32_t d = 4,
                 std::uint64_t seed = 5) {
  Rng rng(seed);
  return gen::random_regular(n, d, rng);
}

/// A started server on an ephemeral port, serving `g0` = test_graph().
struct TestDaemon {
  explicit TestDaemon(ServerOptions opt = {}, Graph g = test_graph())
      : graph(std::move(g)), srv(std::move(opt)) {
    srv.register_graph("g0", graph);
    std::string err;
    EXPECT_TRUE(srv.start(&err)) << err;
  }
  ~TestDaemon() { srv.shutdown(); }

  Client connect() {
    Client c;
    std::string err;
    EXPECT_TRUE(c.connect_to(srv.port(), &err)) << err;
    return c;
  }

  Graph graph;
  Server srv;
};

RequestHeader query_header(std::uint64_t seed = 7, std::uint64_t base = 0,
                           const std::string& tenant = "default") {
  RequestHeader h;
  h.verb = Verb::kQuery;
  h.graph = "g0";
  h.tenant = tenant;
  h.seed = seed;
  h.base = base;
  return h;
}

/// The replayable suffix of a query-response body (see Server::run_query):
/// everything from "batch_rounds" on.
std::string tail_of(const std::string& body) {
  const auto pos = body.find("\"batch_rounds\"");
  EXPECT_NE(pos, std::string::npos) << body;
  return pos == std::string::npos ? body : body.substr(pos);
}

/// Serial in-process replay of a query request: the same grammar, call
/// seeds, execute_query and fold_batch the server workers use, formatted
/// exactly as Server::run_query formats the tail.
std::string replay_tail(const Graph& g, const HierarchyParams& hp,
                        std::uint64_t seed, std::uint64_t base,
                        const std::vector<std::string>& lines) {
  RoundLedger build_ledger;
  const Hierarchy h = Hierarchy::build(g, hp, build_ledger);
  std::vector<engine::QueryExecution> execs;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    QuerySpec spec;
    std::string perr;
    const MixParse mp = parse_mix_line(
        g, nullptr, lines[i], base + i,
        Session::call_seed(seed, base + i), &spec, &perr);
    EXPECT_NE(mp, MixParse::kError) << perr;
    if (mp != MixParse::kQuery) continue;
    execs.push_back(engine::execute_query(g, h, spec,
                                          static_cast<std::uint32_t>(i),
                                          nullptr));
  }
  BatchReport b;
  engine::fold_batch(std::move(execs), b);
  std::ostringstream os;
  os << "\"batch_rounds\":"
     << b.multiplexed_transport_rounds + b.serialized_rounds
     << ",\"multiplexed_transport_rounds\":" << b.multiplexed_transport_rounds
     << ",\"serialized_rounds\":" << b.serialized_rounds
     << ",\"standalone_query_rounds\":" << b.standalone_query_rounds
     << ",\"queries\":[";
  for (std::size_t i = 0; i < b.queries.size(); ++i) {
    if (i != 0) os << ',';
    b.queries[i].to_json(os);
  }
  os << "]}";
  return os.str();
}

/// Like replay_tail, but reproducing a PATCHED entry's history: build on
/// `old_g`, repair in place to `new_g` (exactly what CacheEntry::repair_to
/// does on the server), then execute. A repaired hierarchy is
/// rebuild-EQUIVALENT (same outputs/digests), not round-identical to a
/// fresh build, so replaying a patched cache means replaying the patch.
std::string replay_tail_patched(const Graph& old_g, const Graph& new_g,
                                const HierarchyParams& hp, std::uint64_t seed,
                                std::uint64_t base,
                                const std::vector<std::string>& lines) {
  RoundLedger ledger;
  Hierarchy h = Hierarchy::build(old_g, hp, ledger);
  const RepairOutcome ro = h.apply_delta(new_g, ledger);
  EXPECT_TRUE(ro.applied) << ro.reason;
  std::vector<engine::QueryExecution> execs;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    QuerySpec spec;
    std::string perr;
    const MixParse mp = parse_mix_line(
        new_g, nullptr, lines[i], base + i, Session::call_seed(seed, base + i),
        &spec, &perr);
    EXPECT_NE(mp, MixParse::kError) << perr;
    if (mp != MixParse::kQuery) continue;
    execs.push_back(engine::execute_query(new_g, h, spec,
                                          static_cast<std::uint32_t>(i),
                                          nullptr));
  }
  BatchReport b;
  engine::fold_batch(std::move(execs), b);
  std::ostringstream os;
  os << "\"batch_rounds\":"
     << b.multiplexed_transport_rounds + b.serialized_rounds
     << ",\"multiplexed_transport_rounds\":" << b.multiplexed_transport_rounds
     << ",\"serialized_rounds\":" << b.serialized_rounds
     << ",\"standalone_query_rounds\":" << b.standalone_query_rounds
     << ",\"queries\":[";
  for (std::size_t i = 0; i < b.queries.size(); ++i) {
    if (i != 0) os << ',';
    b.queries[i].to_json(os);
  }
  os << "]}";
  return os.str();
}

/// An edge of `g` at node 0 and a non-edge at node 0, as mutate lines.
std::string delete_line(const Graph& g) {
  std::ostringstream os;
  os << "delete 0 " << g.neighbor(0, 0);
  return os.str();
}

const std::vector<std::string> kMix = {"mst",      "route perm", "walks 8 4",
                                       "matching", "mincut 2",   "sssp 0 0"};

TEST(Server, PingAndStatsRoundTrip) {
  TestDaemon d;
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;
  RequestHeader ping;
  ping.verb = Verb::kPing;
  ASSERT_TRUE(c.request(ping, {}, &resp, &body, &err)) << err;
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(body, "{}");

  RequestHeader stats;
  stats.verb = Verb::kStats;
  ASSERT_TRUE(c.request(stats, {}, &resp, &body, &err)) << err;
  EXPECT_TRUE(resp.ok);
  EXPECT_NE(body.find("\"requests\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"tenants\":["), std::string::npos) << body;
}

TEST(Server, ResponseMatchesSerialReplayByteForByte) {
  ServerOptions opt;
  opt.hierarchy.seed = 7;
  TestDaemon d(opt);

  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;
  ASSERT_TRUE(c.request(query_header(7), kMix, &resp, &body, &err)) << err;
  ASSERT_TRUE(resp.ok) << resp.error_msg;
  EXPECT_EQ(body.size(), resp.body_bytes);
  EXPECT_NE(body.find("\"cache_hit\":0"), std::string::npos) << body;

  // The wire tail equals the serial in-process replay, byte for byte.
  EXPECT_EQ(tail_of(body), replay_tail(d.graph, opt.hierarchy, 7, 0, kMix));

  // A second request on a NEW connection hits the cache; the tail is
  // unchanged (cache_hit/build_rounds legitimately differ and sit in
  // front of it).
  Client c2 = d.connect();
  std::string body2;
  ASSERT_TRUE(c2.request(query_header(7), kMix, &resp, &body2, &err)) << err;
  ASSERT_TRUE(resp.ok);
  EXPECT_NE(body2.find("\"cache_hit\":1"), std::string::npos) << body2;
  EXPECT_EQ(tail_of(body2), tail_of(body));
}

TEST(Server, BaseOffsetShiftsCallSeeds) {
  ServerOptions opt;
  opt.hierarchy.seed = 7;
  TestDaemon d(opt);
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;
  ASSERT_TRUE(c.request(query_header(7, /*base=*/12), kMix, &resp, &body,
                        &err))
      << err;
  ASSERT_TRUE(resp.ok) << resp.error_msg;
  EXPECT_EQ(tail_of(body), replay_tail(d.graph, opt.hierarchy, 7, 12, kMix));
  // A different base is a different call-index stream: tails differ.
  std::string body0;
  ASSERT_TRUE(c.request(query_header(7, 0), kMix, &resp, &body0, &err)) << err;
  ASSERT_TRUE(resp.ok);
  EXPECT_NE(tail_of(body0), tail_of(body));
}

TEST(Server, EightConcurrentClientsAgreeWithSerialReplay) {
  ServerOptions opt;
  opt.workers = 4;
  opt.hierarchy.seed = 9;
  TestDaemon d(opt);

  constexpr int kClients = 8;
  constexpr int kRepeats = 3;
  std::mutex mu;
  std::vector<std::string> tails;
  std::vector<std::string> errors;
  std::vector<std::thread> pool;
  pool.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    pool.emplace_back([&] {
      Client c;
      std::string err;
      if (!c.connect_to(d.srv.port(), &err)) {
        const std::lock_guard lock(mu);
        errors.push_back(err);
        return;
      }
      for (int r = 0; r < kRepeats; ++r) {
        ResponseHeader resp;
        std::string body;
        if (!c.request(query_header(9), kMix, &resp, &body, &err) ||
            !resp.ok) {
          const std::lock_guard lock(mu);
          errors.push_back(resp.ok ? err : resp.error_msg);
          return;
        }
        const std::lock_guard lock(mu);
        tails.push_back(tail_of(body));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  ASSERT_TRUE(errors.empty()) << errors.front();
  ASSERT_EQ(tails.size(), kClients * kRepeats);
  const std::string expect = replay_tail(d.graph, opt.hierarchy, 9, 0, kMix);
  for (const std::string& t : tails) EXPECT_EQ(t, expect);

  // Exactly one build: every other request shared the cached hierarchy.
  const SharedHierarchyCache::Stats cs = d.srv.cache().stats();
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.hits, kClients * kRepeats - 1u);
}

// ---- typed errors that keep the connection open --------------------------

TEST(Server, UnknownGraphKeepsConnectionUsable) {
  TestDaemon d;
  Client c = d.connect();
  RequestHeader h = query_header();
  h.graph = "nope";
  ResponseHeader resp;
  std::string body, err;
  ASSERT_TRUE(c.request(h, {"mst"}, &resp, &body, &err)) << err;
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kUnknownGraph);

  // Framing survived (the body was consumed before the error): the same
  // connection serves the corrected request.
  ASSERT_TRUE(c.request(query_header(), {"mst"}, &resp, &body, &err)) << err;
  EXPECT_TRUE(resp.ok) << resp.error_msg;
}

TEST(Server, BadMixLineIsTypedAndKeepsConnectionUsable) {
  TestDaemon d;
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;
  // Registered op, malformed argument: bad-request.
  ASSERT_TRUE(c.request(query_header(), {"mst", "walks zzz"}, &resp, &body,
                        &err))
      << err;
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kBadRequest);
  EXPECT_NE(resp.error_msg.find("line 1"), std::string::npos)
      << resp.error_msg;

  ASSERT_TRUE(c.request(query_header(), {"mst"}, &resp, &body, &err)) << err;
  EXPECT_TRUE(resp.ok) << resp.error_msg;
}

TEST(Server, UnknownOpWordIsUnsupportedOpAndKeepsConnectionUsable) {
  TestDaemon d;
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;
  // An op word outside the registry is the DISTINCT typed error — a newer
  // client against an older daemon can tell "this daemon lacks the op"
  // apart from "my request is malformed" and degrade per-op.
  ASSERT_TRUE(c.request(query_header(), {"mst", "frobnicate 3"}, &resp, &body,
                        &err))
      << err;
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kUnsupportedOp);
  EXPECT_NE(resp.error_msg.find("frobnicate"), std::string::npos)
      << resp.error_msg;

  ASSERT_TRUE(c.request(query_header(), {"mst"}, &resp, &body, &err)) << err;
  EXPECT_TRUE(resp.ok) << resp.error_msg;
}

TEST(Server, BlankOnlyQueryIsBadRequest) {
  TestDaemon d;
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;
  ASSERT_TRUE(c.request(query_header(), {"# nothing", ""}, &resp, &body,
                        &err))
      << err;
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kBadRequest);
}

// ---- malformed framing closes the connection -----------------------------

TEST(Server, MalformedHeaderIsRejectedAndClosed) {
  TestDaemon d;
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;
  ASSERT_TRUE(c.send_raw("amix/9 query graph=g0 lines=0\n", &err)) << err;
  ASSERT_TRUE(c.read_response(&resp, &body, &err)) << err;
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kBadRequest);
  // Framing is untrusted after a bad header: the server closed on us.
  EXPECT_FALSE(c.read_response(&resp, &body, &err));
}

TEST(Server, UnknownHeaderKeyIsRejected) {
  TestDaemon d;
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;
  ASSERT_TRUE(
      c.send_raw("amix/1 query graph=g0 sede=7 lines=1\nmst\n", &err))
      << err;
  ASSERT_TRUE(c.read_response(&resp, &body, &err)) << err;
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kBadRequest);
}

TEST(Server, OversizedHeaderLineIsTooLarge) {
  ServerOptions opt;
  opt.limits.max_line_bytes = 128;
  TestDaemon d(opt);
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;
  const std::string huge(256, 'x');
  ASSERT_TRUE(c.send_raw("amix/1 query graph=g0 tenant=" + huge + "\n", &err))
      << err;
  ASSERT_TRUE(c.read_response(&resp, &body, &err)) << err;
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kTooLarge);
  EXPECT_FALSE(c.read_response(&resp, &body, &err));  // closed
}

TEST(Server, TooManyBodyLinesIsTooLarge) {
  ServerOptions opt;
  opt.limits.max_lines = 4;
  TestDaemon d(opt);
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;
  ASSERT_TRUE(c.send_raw("amix/1 query graph=g0 seed=1 base=0 lines=5\n",
                         &err))
      << err;
  ASSERT_TRUE(c.read_response(&resp, &body, &err)) << err;
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kTooLarge);
}

// ---- wire-controlled sizes are bounded at parse time ---------------------

TEST(Server, OversizedMixParamsAreTypedErrorsNotAllocations) {
  TestDaemon d;  // g0 has 48 nodes
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;

  // Each of these, pre-fix, bought an allocation or CPU proportional to
  // a wire-supplied u32 (up to 2^32-1) and could kill the daemon with
  // std::bad_alloc. All must be typed bad-requests now.
  const std::vector<std::string> oversized = {
      "walks 4294967295 8",       // starts(count): ~16 GiB
      "walks 8 4294967295",       // unbounded CPU per walk
      "route perm 4294967295",    // buckets(phases): ~100 GiB
  };
  for (const std::string& line : oversized) {
    ASSERT_TRUE(c.request(query_header(), {line}, &resp, &body, &err))
        << line << ": " << err;
    EXPECT_FALSE(resp.ok) << line;
    EXPECT_EQ(resp.code, ErrorCode::kBadRequest) << line;
  }

  // Non-numeric params are rejected, not silently zeroed.
  ASSERT_TRUE(c.request(query_header(), {"walks eight 4"}, &resp, &body,
                        &err))
      << err;
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kBadRequest);

  // Defaults still work: bare `walks` is one walk per node.
  ASSERT_TRUE(c.request(query_header(), {"walks"}, &resp, &body, &err))
      << err;
  EXPECT_TRUE(resp.ok) << resp.error_msg;

  // The daemon survived all of it on the same connection.
  ASSERT_TRUE(c.request(query_header(), {"mst"}, &resp, &body, &err)) << err;
  EXPECT_TRUE(resp.ok) << resp.error_msg;
  EXPECT_EQ(d.srv.stats().internal_errors, 0u);
}

// ---- stalled peers time out and free their worker ------------------------

TEST(Server, TruncatedBodyTimesOutAndFreesTheWorker) {
  ServerOptions opt;
  opt.workers = 1;  // the stalled request must release the ONLY worker
  opt.io_timeout_ms = 200;
  TestDaemon d(opt);

  Client staller = d.connect();
  std::string err;
  // Header promises 2 body lines; send one and stall.
  ASSERT_TRUE(staller.send_raw(
      "amix/1 query graph=g0 seed=1 base=0 lines=2\nmst\n", &err))
      << err;
  ResponseHeader resp;
  std::string body;
  ASSERT_TRUE(staller.read_response(&resp, &body, &err)) << err;
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kTimeout);

  // The worker is free again: a well-formed request completes.
  Client c = d.connect();
  ASSERT_TRUE(c.request(query_header(), {"mst"}, &resp, &body, &err)) << err;
  EXPECT_TRUE(resp.ok) << resp.error_msg;
  EXPECT_GE(d.srv.stats().timeouts, 1u);
}

TEST(Server, TrickledRequestIsCutOffByCumulativeBudget) {
  ServerOptions opt;
  opt.workers = 1;             // the trickler must not pin the only worker
  opt.io_timeout_ms = 2000;    // progress deadline alone would allow ~90 s
  opt.request_timeout_ms = 300;  // the cumulative budget ends it fast
  TestDaemon d(opt);

  // Trickle a header one byte every 50 ms: every byte is "progress", so
  // only the cumulative per-request budget can cut this off.
  Client trickler = d.connect();
  std::string err;
  const std::string header =
      "amix/1 query graph=g0 seed=1 base=0 lines=1\n";
  std::size_t sent = 0;
  for (; sent < header.size(); ++sent) {
    if (!trickler.send_raw(std::string(1, header[sent]), &err)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // The server closed on us long before the header completed (the send
  // loop alone would take ~2.2 s against a 300 ms budget).
  EXPECT_LT(sent, header.size());
  ResponseHeader resp;
  std::string body;
  EXPECT_FALSE(trickler.read_response(&resp, &body, &err));

  // The worker is free again: a well-formed request completes.
  Client c = d.connect();
  ASSERT_TRUE(c.request(query_header(), {"mst"}, &resp, &body, &err)) << err;
  EXPECT_TRUE(resp.ok) << resp.error_msg;
  EXPECT_GE(d.srv.stats().timeouts, 1u);
}

// ---- admission control ---------------------------------------------------

TEST(Server, TenantInflightBoundShedsWithTypedError) {
  ServerOptions opt;
  opt.workers = 2;  // both requests get a worker; the TENANT bound sheds
  opt.tenant_inflight = 1;
  TestDaemon d(opt);

  // Request 1 admits tenant `acme` and then stalls mid-body: its
  // admission slot stays held while the server waits for the body.
  Client staller = d.connect();
  std::string err;
  ASSERT_TRUE(staller.send_raw(
      "amix/1 query graph=g0 tenant=acme seed=1 base=0 lines=1\n", &err))
      << err;
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Request 2 for the same tenant is shed at header-parse time.
  Client c2 = d.connect();
  ResponseHeader resp;
  std::string body;
  ASSERT_TRUE(c2.request(query_header(1, 0, "acme"), {"mst"}, &resp, &body,
                         &err))
      << err;
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kTenantOverloaded);

  // A DIFFERENT tenant is admitted: the bound is per tenant, not global.
  Client c3 = d.connect();
  ASSERT_TRUE(c3.request(query_header(1, 0, "other"), {"mst"}, &resp, &body,
                         &err))
      << err;
  EXPECT_TRUE(resp.ok) << resp.error_msg;

  // The stalled request completes once its body arrives — the slot was
  // held, not leaked.
  ASSERT_TRUE(staller.send_raw("mst\n", &err)) << err;
  ASSERT_TRUE(staller.read_response(&resp, &body, &err)) << err;
  EXPECT_TRUE(resp.ok) << resp.error_msg;

  EXPECT_EQ(d.srv.stats().shed_tenant, 1u);
  EXPECT_EQ(d.srv.tenant_stats()["acme"].shed, 1u);
}

TEST(Server, FullQueueShedsConnectionsWithOverloaded) {
  ServerOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 1;
  TestDaemon d(opt);

  // Occupy the only worker with a stalled request...
  Client staller = d.connect();
  std::string err;
  ASSERT_TRUE(staller.send_raw(
      "amix/1 query graph=g0 seed=1 base=0 lines=1\n", &err))
      << err;
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // ...fill the accept queue...
  Client queued = d.connect();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...and the next connection is shed by the ACCEPT loop, which never
  // blocks behind the slow worker.
  Client shed = d.connect();
  ResponseHeader resp;
  std::string body;
  ASSERT_TRUE(shed.read_response(&resp, &body, &err)) << err;
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kOverloaded);
  EXPECT_GE(d.srv.stats().shed_overloaded, 1u);

  // Unblock the worker; the queued connection is then served normally.
  ASSERT_TRUE(staller.send_raw("mst\n", &err)) << err;
  ASSERT_TRUE(staller.read_response(&resp, &body, &err)) << err;
  EXPECT_TRUE(resp.ok) << resp.error_msg;
  ASSERT_TRUE(queued.request(query_header(), {"mst"}, &resp, &body, &err))
      << err;
  EXPECT_TRUE(resp.ok) << resp.error_msg;
}

TEST(Server, TenantTableIsBoundedUnderChurnedNames) {
  ServerOptions opt;
  opt.max_tenants = 4;
  TestDaemon d(opt);

  // 12 distinct wire-supplied tenant names, sequential so each entry is
  // idle when the next arrives: idle entries recycle, nobody is shed.
  for (int i = 0; i < 12; ++i) {
    Client c = d.connect();
    ResponseHeader resp;
    std::string body, err;
    ASSERT_TRUE(c.request(query_header(1, 0, "t" + std::to_string(i)),
                          {"mst"}, &resp, &body, &err))
        << err;
    EXPECT_TRUE(resp.ok) << resp.error_msg;
  }
  // The table (and therefore the stats body) stayed bounded.
  EXPECT_LE(d.srv.tenant_stats().size(), 4u);
}

// ---- mutate + shared-cache discipline ------------------------------------

TEST(Server, MutatePatchesCachedHierarchyAndTailTracksNewTopology) {
  ServerOptions opt;
  opt.hierarchy.seed = 7;
  TestDaemon d(opt);
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;

  // Warm the cache.
  ASSERT_TRUE(c.request(query_header(7), kMix, &resp, &body, &err)) << err;
  ASSERT_TRUE(resp.ok);
  const std::string before = tail_of(body);

  // Mutate a real edge: with no readers in flight the entry is patched
  // in place.
  RequestHeader mut;
  mut.verb = Verb::kMutate;
  mut.graph = "g0";
  ASSERT_TRUE(c.request(mut, {delete_line(d.graph)}, &resp, &body, &err))
      << err;
  ASSERT_TRUE(resp.ok) << resp.error_msg;
  EXPECT_NE(body.find("\"patched\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"noop\":0"), std::string::npos) << body;

  // The same query stream now answers against the mutated topology: the
  // tail changes, and it matches a serial replay of the same HISTORY —
  // build on the old graph, repair to the new one. (A fresh build on
  // the new graph is rebuild-equivalent but not round-identical.)
  ASSERT_TRUE(c.request(query_header(7), kMix, &resp, &body, &err)) << err;
  ASSERT_TRUE(resp.ok) << resp.error_msg;
  EXPECT_NE(tail_of(body), before);
  const std::shared_ptr<const GraphState> gs = d.srv.cache().graph("g0");
  ASSERT_NE(gs, nullptr);
  EXPECT_EQ(tail_of(body), replay_tail_patched(d.graph, gs->graph,
                                               opt.hierarchy, 7, 0, kMix));
  EXPECT_EQ(d.srv.cache().stats().patched, 1u);
}

TEST(Server, MutateWithPinnedReaderBusyDropsInsteadOfPatching) {
  ServerOptions opt;
  opt.hierarchy.seed = 7;
  TestDaemon d(opt);
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;
  ASSERT_TRUE(c.request(query_header(7), {"mst"}, &resp, &body, &err)) << err;
  ASSERT_TRUE(resp.ok);

  RequestHeader mut;
  mut.verb = Verb::kMutate;
  mut.graph = "g0";
  const std::string del = delete_line(d.graph);
  {
    // Pin the entry the way an in-flight reader does: the writer must
    // not patch under it, so the mutate is a busy-drop.
    const std::shared_ptr<const GraphState> gs = d.srv.cache().graph("g0");
    ASSERT_NE(gs, nullptr);
    const SharedHierarchyCache::Lookup pin = d.srv.cache().get_or_build(*gs);
    ASSERT_NE(pin.entry, nullptr);

    ASSERT_TRUE(c.request(mut, {del}, &resp, &body, &err)) << err;
    ASSERT_TRUE(resp.ok) << resp.error_msg;
    EXPECT_NE(body.find("\"dropped_busy\":1"), std::string::npos) << body;
    EXPECT_NE(body.find("\"patched\":0"), std::string::npos) << body;

    // The pinned handle stays fully usable after the drop: it still
    // describes the PRE-mutate topology it was resolved against.
    EXPECT_EQ(pin.entry->graph().num_edges(), d.graph.num_edges());
  }
  EXPECT_EQ(d.srv.cache().stats().busy_drops, 1u);

  // The dropped entry rebuilds lazily against the mutated topology — a
  // FRESH build, so the wire tail equals a fresh-build serial replay.
  ASSERT_TRUE(c.request(query_header(7), {"mst"}, &resp, &body, &err)) << err;
  ASSERT_TRUE(resp.ok) << resp.error_msg;
  EXPECT_NE(body.find("\"cache_hit\":0"), std::string::npos) << body;
  const std::shared_ptr<const GraphState> mutated = d.srv.cache().graph("g0");
  ASSERT_NE(mutated, nullptr);
  EXPECT_EQ(tail_of(body),
            replay_tail(mutated->graph, opt.hierarchy, 7, 0, {"mst"}));

  // With the pin gone the next mutate patches in place again.
  const std::string ins = "insert" + del.substr(6);  // re-insert same edge
  ASSERT_TRUE(c.request(mut, {ins}, &resp, &body, &err)) << err;
  ASSERT_TRUE(resp.ok) << resp.error_msg;
  EXPECT_NE(body.find("\"patched\":1"), std::string::npos) << body;
}

TEST(Server, MutateNoopWhenDeltaDoesNotChangeTopology) {
  TestDaemon d;
  Client c = d.connect();
  ResponseHeader resp;
  std::string body, err;
  RequestHeader mut;
  mut.verb = Verb::kMutate;
  mut.graph = "g0";
  // Inserting an edge that already exists changes nothing.
  const NodeId u = d.graph.neighbor(0, 0);
  std::ostringstream line;
  line << "insert 0 " << u;
  ASSERT_TRUE(c.request(mut, {line.str()}, &resp, &body, &err)) << err;
  ASSERT_TRUE(resp.ok) << resp.error_msg;
  EXPECT_NE(body.find("\"noop\":1"), std::string::npos) << body;
}

// ---- shutdown ------------------------------------------------------------

TEST(Server, ShutdownDrainsPromptlyWithIdleConnections) {
  auto opt = ServerOptions{};
  auto d = std::make_unique<TestDaemon>(opt);
  Client idle = d->connect();  // connected, never sends a request
  ResponseHeader resp;
  std::string body, err;
  Client busy = d->connect();
  ASSERT_TRUE(busy.request(query_header(), {"mst"}, &resp, &body, &err))
      << err;
  ASSERT_TRUE(resp.ok);

  const auto t0 = std::chrono::steady_clock::now();
  d->srv.shutdown();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Drain must not wait out the full io timeout on the idle connection.
  EXPECT_LT(elapsed, std::chrono::seconds(3));
  EXPECT_FALSE(d->srv.running());

  // The drained server refuses new connections.
  Client late;
  EXPECT_FALSE(late.connect_to(d->srv.port(), &err));
}

}  // namespace
}  // namespace amix::server
