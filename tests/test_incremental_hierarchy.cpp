// Incremental hierarchy repair: Graph::apply_delta / delta_between,
// Hierarchy::apply_delta against the full-rebuild equivalence oracle
// across a churn corpus, fallback gates, cache patching + cost history,
// and Session::mutate thread invariance.

#include <gtest/gtest.h>

#include <deque>
#include <set>

#include "amix/amix.hpp"

namespace amix {
namespace {

std::set<std::uint64_t> edge_set(const Graph& g) {
  std::set<std::uint64_t> s;
  for (const auto& [u, v] : g.edges()) {
    s.insert((static_cast<std::uint64_t>(std::min(u, v)) << 32) |
             std::max(u, v));
  }
  return s;
}

// --- Graph-layer delta semantics -----------------------------------------

TEST(IncrementalHierarchy, GraphApplyDeltaInsertsAndDeletes) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const Graph h = g.apply_delta({{0, 3, true}, {1, 2, false}});
  EXPECT_EQ(h.num_nodes(), 4u);
  EXPECT_EQ(h.num_edges(), 3u);
  EXPECT_TRUE(h.has_edge(0, 3));
  EXPECT_FALSE(h.has_edge(1, 2));
  EXPECT_TRUE(h.has_edge(0, 1));
  EXPECT_TRUE(h.has_edge(2, 3));
  // The source graph is untouched (apply_delta is const).
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(IncrementalHierarchy, GraphApplyDeltaSkipsInapplicableOps) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const Graph h = g.apply_delta({
      {1, 1, true},    // self-loop
      {0, 9, true},    // out of range
      {0, 1, true},    // already present
      {0, 2, false},   // absent
      {2, 2, false},   // self-loop delete
      {1, 0, true},    // already present (reversed endpoints)
  });
  EXPECT_EQ(edge_set(h), edge_set(g));
}

TEST(IncrementalHierarchy, GraphApplyDeltaIsOrderedLeftToRight) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  // insert-then-delete is a net no-op; delete-then-insert keeps the edge.
  const Graph a = g.apply_delta({{0, 2, true}, {0, 2, false}});
  EXPECT_FALSE(a.has_edge(0, 2));
  const Graph b = g.apply_delta({{0, 1, false}, {0, 1, true}});
  EXPECT_TRUE(b.has_edge(0, 1));
  EXPECT_EQ(b.num_edges(), g.num_edges());
}

TEST(IncrementalHierarchy, GraphApplyDeltaKeepsSurvivingPortsStable) {
  // Ports of surviving edges keep their relative order, so (owner, port)
  // keys away from the mutation are unchanged — the locality property the
  // whole repair path leans on.
  Rng rng(41);
  const Graph g = gen::random_regular(32, 4, rng);
  const auto [du, dv] = g.edges()[5];
  const Graph h = g.apply_delta({{du, dv, false}});
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == du || v == dv) continue;
    ASSERT_EQ(h.degree(v), g.degree(v));
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      EXPECT_EQ(h.neighbor(v, p), g.neighbor(v, p)) << "v=" << v;
    }
  }
}

TEST(IncrementalHierarchy, DeltaBetweenRoundTrips) {
  Rng rng(43);
  const Graph from = gen::connected_gnp(48, 0.2, rng);
  const Graph to = gen::degree_preserving_rewire(from, 12, rng);
  const GraphDelta d = delta_between(from, to);
  const Graph replayed = from.apply_delta(d);
  EXPECT_EQ(edge_set(replayed), edge_set(to));
  // And the reverse direction.
  const Graph back = to.apply_delta(delta_between(to, from));
  EXPECT_EQ(edge_set(back), edge_set(from));
  // Identical graphs produce an empty delta.
  EXPECT_TRUE(delta_between(from, from).empty());
}

// --- Fingerprints ---------------------------------------------------------

TEST(IncrementalHierarchy, FingerprintAfterDeltaMatchesOnAppends) {
  Rng rng(47);
  const Graph g = gen::connected_gnp(40, 0.15, rng);
  const GraphDelta d = {{0, 20, true}, {3, 31, true}, {0, 20, true}};
  const Graph h = g.apply_delta(d);
  const auto hint =
      engine::fingerprint_after_delta(engine::graph_fingerprint(g), g, d);
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, engine::graph_fingerprint(h));
}

TEST(IncrementalHierarchy, FingerprintAfterDeltaBailsOnDeletes) {
  Rng rng(53);
  const Graph g = gen::connected_gnp(40, 0.15, rng);
  const auto [u, v] = g.edges()[0];
  const auto hint = engine::fingerprint_after_delta(
      engine::graph_fingerprint(g), g, {{u, v, false}});
  EXPECT_FALSE(hint.has_value());
  // An ineffective delete is skipped, so the hint survives.
  const auto noop = engine::fingerprint_after_delta(
      engine::graph_fingerprint(g), g, {{0, 0, false}, {1, 1, true}});
  ASSERT_TRUE(noop.has_value());
  EXPECT_EQ(*noop, engine::graph_fingerprint(g));
}

// --- Hierarchy repair vs the equivalence oracle ---------------------------

class IncrementalHierarchyChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalHierarchyChurn, RepairedAnswersMatchFreshRebuild) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 3);
  HierarchyParams hp;
  hp.seed = seed + 101;
  hp.max_retries = 10;

  // The hierarchy only points at the CURRENT graph, but keeping every
  // epoch alive in a deque makes the fallback path (hierarchy still bound
  // to the previous epoch) safe by construction.
  std::deque<Graph> epochs;
  epochs.push_back(gen::random_regular(96, 6, rng));
  RoundLedger ledger;
  Hierarchy h = Hierarchy::build(epochs.back(), hp, ledger);

  std::uint32_t applied = 0;
  for (std::uint32_t step = 0; step < 4; ++step) {
    const Graph& cur = h.graph();
    Graph next = gen::degree_preserving_rewire(
        cur, 1 + static_cast<std::uint32_t>(rng.next_below(2)), rng);
    const GraphDelta delta = delta_between(cur, next);
    epochs.push_back(std::move(next));
    const RepairOutcome out = h.apply_delta(epochs.back(), ledger);
    if (!out.applied) continue;  // fallback gates are legal under churn
    ++applied;
    EXPECT_GT(out.repair_rounds, 0u);
    EXPECT_EQ(out.delta.edges_added, out.delta.edges_removed);
    EXPECT_EQ(&h.graph(), &epochs.back());
    const engine::EquivalenceReport eq = engine::check_full_rebuild_equivalence(
        h, hp, keyed_u64(seed, 0x636875726e2d6571ULL, step));
    EXPECT_TRUE(eq.ok) << "step " << step << ": " << eq.detail;
    EXPECT_EQ(eq.mst_weight_repaired, eq.mst_weight_rebuilt);
    EXPECT_EQ(eq.bound_violations, 0u);
  }
  EXPECT_EQ(h.stats().repairs, applied);
  // The corpus is tuned so local repair actually exercises: at least one
  // swap per seed must patch in place rather than fall back.
  EXPECT_GE(applied, 1u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalHierarchyChurn,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{5}));

TEST(IncrementalHierarchy, IrregularGraphSingleInsertRepairs) {
  // Inserting a brand-new edge changes degrees (new slots on both
  // endpoints) — the repair must top up G0 and every overlay level.
  Rng rng(59);
  HierarchyParams hp;
  hp.seed = 61;
  hp.max_retries = 10;
  const Graph g = gen::connected_gnp(80, 0.12, rng);
  RoundLedger ledger;
  Hierarchy h = Hierarchy::build(g, hp, ledger);

  NodeId a = 0, b = 0;
  for (NodeId u = 0; u < g.num_nodes() && a == b; ++u) {
    for (NodeId v = u + 2; v < g.num_nodes(); v += 7) {
      if (!g.has_edge(u, v)) { a = u; b = v; break; }
    }
  }
  ASSERT_NE(a, b);
  const Graph g2 = g.apply_delta({{a, b, true}});
  const RepairOutcome out = h.apply_delta(g2, ledger);
  if (out.applied) {
    EXPECT_EQ(out.delta.edges_added, 1u);
    EXPECT_EQ(out.delta.slots_added, 2u);
    const engine::EquivalenceReport eq =
        engine::check_full_rebuild_equivalence(h, hp, 0xace5);
    EXPECT_TRUE(eq.ok) << eq.detail;
  } else {
    // A shape flip (nv crossed a beta boundary) is the only legal excuse
    // for one inserted edge on this corpus.
    EXPECT_STREQ(out.reason, "shape-changed");
  }
}

TEST(IncrementalHierarchy, DisconnectingDeltaFallsBackAndHierarchySurvives) {
  Rng rng(67);
  const Graph g = gen::random_regular(64, 4, rng);
  HierarchyParams hp;
  hp.seed = 71;
  hp.max_retries = 10;
  RoundLedger ledger;
  Hierarchy h = Hierarchy::build(g, hp, ledger);

  // Cut every edge at node 0: the graph disconnects, the gate fires.
  GraphDelta cut;
  for (const auto& [u, v] : g.edges()) {
    if (u == 0 || v == 0) cut.push_back({u, v, false});
  }
  ASSERT_EQ(cut.size(), 4u);
  const Graph g2 = g.apply_delta(cut);
  ASSERT_FALSE(is_connected(g2));
  const RepairOutcome out = h.apply_delta(g2, ledger);
  EXPECT_FALSE(out.applied);
  EXPECT_STREQ(out.reason, "disconnected");
  EXPECT_EQ(h.stats().repairs, 0u);

  // The untouched hierarchy still answers queries on the OLD graph.
  EXPECT_EQ(&h.graph(), &g);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger ql;
  const MstStats ms = HierarchicalBoruvka(h, w).run(ql);
  EXPECT_TRUE(is_exact_mst(g, w, ms.edges));
}

TEST(IncrementalHierarchy, WideDamageFallsBack) {
  Rng rng(73);
  const Graph g = gen::random_regular(96, 6, rng);
  HierarchyParams hp;
  hp.seed = 79;
  hp.max_retries = 10;
  RoundLedger ledger;
  Hierarchy h = Hierarchy::build(g, hp, ledger);
  // Rewiring half the edges swamps the locality budget: the repair must
  // refuse (whichever gate fires first) rather than limp through.
  const Graph g2 =
      gen::degree_preserving_rewire(g, g.num_edges() / 2, rng);
  const RepairOutcome out = h.apply_delta(g2, ledger);
  EXPECT_FALSE(out.applied);
  EXPECT_STRNE(out.reason, "");
  EXPECT_EQ(&h.graph(), &g);
}

// --- Cache patching + cost history ---------------------------------------

TEST(IncrementalHierarchy, CacheCostHistorySurvivesInvalidate) {
  Rng rng(83);
  const Graph g = gen::random_regular(64, 4, rng);
  HierarchyParams hp;
  hp.seed = 89;
  hp.max_retries = 10;

  engine::HierarchyCache cache;
  const auto lk = cache.get_or_build(g, hp);
  ASSERT_TRUE(lk.built);
  const std::uint64_t built = lk.entry->build_rounds();
  ASSERT_GT(built, 0u);
  const std::uint64_t gfp = lk.entry->graph_fp();
  const std::uint64_t pfp = lk.entry->params_fp();

  ASSERT_EQ(cache.invalidate(g), 1u);
  EXPECT_EQ(cache.size(), 0u);
  // The regression this pins: dropping the entry must NOT forget what it
  // cost to build (cost-aware LRU feeds on this history).
  const auto recorded = cache.recorded_build_rounds(gfp, pfp);
  ASSERT_TRUE(recorded.has_value());
  EXPECT_EQ(*recorded, built);
  ASSERT_EQ(cache.cost_history().size(), 1u);
  EXPECT_EQ(cache.cost_history()[0].build_rounds, built);

  // Rebuilding the same key updates the record in place, not a duplicate.
  (void)cache.get_or_build(g, hp);
  EXPECT_EQ(cache.cost_history().size(), 1u);

  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.recorded_build_rounds(gfp, pfp).has_value());
}

TEST(IncrementalHierarchy, CachePatchRekeysEntriesInPlace) {
  Rng rng(97);
  const Graph g = gen::random_regular(96, 6, rng);
  HierarchyParams hp;
  hp.seed = 101;
  hp.max_retries = 10;

  engine::HierarchyCache cache;
  cache.set_verify_every(1);  // oracle on every repair
  (void)cache.get_or_build(g, hp);

  const Graph g2 = gen::degree_preserving_rewire(g, 1, rng);
  const GraphDelta delta = delta_between(g, g2);
  const auto hint = engine::fingerprint_after_delta(
      engine::graph_fingerprint(g), g, delta);
  const auto res = cache.apply_delta(g, g2, hint);
  ASSERT_EQ(res.patched + res.dropped, 1u);
  if (res.patched == 1) {
    EXPECT_GT(res.repair_rounds, 0u);
    EXPECT_EQ(res.oracle_checks, 1u);
    // The patched entry now answers lookups for the NEW topology without
    // a rebuild...
    const auto lk = cache.get_or_build(g2, hp);
    EXPECT_FALSE(lk.built);
    EXPECT_EQ(lk.entry->repairs(), 1u);
    EXPECT_EQ(lk.entry->graph_fp(), engine::graph_fingerprint(g2));
    // ...and the old topology misses.
    EXPECT_EQ(cache.find(g, hp), nullptr);
  } else {
    EXPECT_STRNE(res.last_fallback, "");
    EXPECT_EQ(cache.size(), 0u);
    // Even the failed patch kept the cost record.
    EXPECT_TRUE(cache
                    .recorded_build_rounds(engine::graph_fingerprint(g),
                                           engine::params_fingerprint(hp))
                    .has_value());
  }
}

TEST(IncrementalHierarchy, CacheNoOpDeltaIsFree) {
  Rng rng(103);
  const Graph g = gen::random_regular(64, 4, rng);
  HierarchyParams hp;
  hp.seed = 107;
  engine::HierarchyCache cache;
  (void)cache.get_or_build(g, hp);
  const Graph same = g;  // structurally identical copy
  const auto res = cache.apply_delta(g, same);
  EXPECT_EQ(res.patched, 0u);
  EXPECT_EQ(res.dropped, 0u);
  EXPECT_EQ(res.repair_rounds, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

// --- Session: churn interleaved with queries ------------------------------

TEST(IncrementalHierarchy, SessionMutateInterleavesWithQueries) {
  Rng rng(109);
  Graph g0 = gen::random_regular(96, 6, rng);
  SessionOptions opt;
  opt.seed = 113;
  opt.hierarchy.seed = 113;
  opt.hierarchy.max_retries = 10;
  auto session = Session::open(g0);

  const QueryReport m0 = session.mst(distinct_random_weights(g0, rng));
  EXPECT_TRUE(m0.ok);

  const Graph g1 = gen::degree_preserving_rewire(session.graph(), 1, rng);
  const auto rep = session.mutate(delta_between(session.graph(), g1));
  EXPECT_EQ(rep.entries_patched + rep.entries_dropped, 1u);
  EXPECT_EQ(edge_set(session.graph()), edge_set(g1));

  // Queries after the mutation run against the mutated topology, and the
  // answers are exact.
  const Weights w1 = distinct_random_weights(session.graph(), rng);
  const QueryReport m1 = session.mst(w1);
  EXPECT_TRUE(m1.ok);
  ASSERT_TRUE(m1.mst.has_value());
  EXPECT_TRUE(is_exact_mst(session.graph(), w1, m1.mst->edges));

  const QueryReport r1 = session.route(
      permutation_instance(session.graph(), rng));
  EXPECT_TRUE(r1.ok);

  if (rep.entries_patched == 1) {
    EXPECT_GT(rep.repair_rounds, 0u);
    bool charged = false;
    for (const auto& [phase, rounds] : session.ledger().phases()) {
      if (phase == "hierarchy-repair") charged = rounds > 0;
    }
    EXPECT_TRUE(charged);
  }
}

TEST(IncrementalHierarchy, SessionThreadInvarianceUnderChurn) {
  // The same seeded call stream — batches interleaved with mutations —
  // must produce bit-identical digests and charges at any thread count.
  std::vector<std::vector<std::uint64_t>> digests;
  std::vector<std::uint64_t> totals;
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    Rng rng(127);
    Graph g0 = gen::random_regular(96, 6, rng);
    SessionOptions opt;
    opt.seed = 131;
    opt.hierarchy.seed = 131;
    opt.hierarchy.max_retries = 10;
    opt.exec = ExecPolicy{threads};
    auto session = Session::open(g0, opt);
    std::vector<std::uint64_t> ds;

    for (std::uint32_t epoch = 0; epoch < 3; ++epoch) {
      std::vector<QuerySpec> specs;
      QuerySpec mst;
      mst.op = MstQuery{distinct_random_weights(session.graph(), rng), {}};
      mst.seed = 1000 + epoch;
      specs.push_back(std::move(mst));
      QuerySpec route;
      route.op = RouteQuery{permutation_instance(session.graph(), rng), 1};
      route.seed = 2000 + epoch;
      specs.push_back(std::move(route));
      const BatchReport b = session.batch(std::move(specs));
      for (const QueryReport& q : b.queries) {
        EXPECT_TRUE(q.ok);
        ds.push_back(q.output_digest);
      }
      const Graph next =
          gen::degree_preserving_rewire(session.graph(), 1, rng);
      (void)session.mutate(delta_between(session.graph(), next));
    }
    ds.push_back(session.ledger().total());
    digests.push_back(std::move(ds));
    totals.push_back(session.ledger().total());
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[0], totals[2]);
}

// --- Repair is cheaper than rebuild (round-charged) -----------------------

TEST(RepairCost, SingleEdgeDeleteChargesFewerRoundsThanRebuild) {
  // The economic point of the whole subsystem, pinned at a size where the
  // asymptotics already bite (the bench records the n=1024 version).
  Rng rng(137);
  const Graph g = gen::random_regular(256, 8, rng);
  HierarchyParams hp;
  hp.seed = 139;
  hp.max_retries = 10;
  RoundLedger build_ledger;
  Hierarchy h = Hierarchy::build(g, hp, build_ledger);
  const std::uint64_t build_rounds = build_ledger.total();

  // Delete one edge that keeps the graph connected.
  Graph g2 = g;
  bool found = false;
  for (const auto& [u, v] : g.edges()) {
    Graph cand = g.apply_delta({{u, v, false}});
    if (is_connected(cand)) {
      g2 = std::move(cand);
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);

  RoundLedger repair_ledger;
  const RepairOutcome out = h.apply_delta(g2, repair_ledger);
  ASSERT_TRUE(out.applied) << out.reason;
  EXPECT_EQ(out.delta.edges_removed, 1u);
  EXPECT_EQ(out.delta.slots_removed, 2u);

  RoundLedger rebuild_ledger;
  const Hierarchy fresh = Hierarchy::build(g2, hp, rebuild_ledger);
  EXPECT_LT(out.repair_rounds, rebuild_ledger.total());
  EXPECT_LT(out.repair_rounds, build_rounds);

  const engine::EquivalenceReport eq =
      engine::check_full_rebuild_equivalence(h, hp, 0xbead);
  EXPECT_TRUE(eq.ok) << eq.detail;
}

}  // namespace
}  // namespace amix
