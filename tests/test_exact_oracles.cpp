// graph/exact_mst + graph/exact_mincut: the centralized verification
// oracles, cross-checked against each other and brute force.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/exact_mincut.hpp"
#include "graph/exact_mst.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "graph/weighted_graph.hpp"

namespace amix {
namespace {

TEST(UnionFind, BasicSemantics) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(3));
  EXPECT_EQ(uf.size_of(1), 3u);
  EXPECT_EQ(uf.size_of(4), 1u);
}

TEST(ExactMst, KnownToyInstance) {
  //   0 -1- 1
  //   |     |
  //   4     2
  //   |     |
  //   3 -8- 2   plus diagonal 0-2 weight 16
  const Graph g =
      Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const Weights w(g, {1, 2, 8, 4, 16});
  const auto mst = kruskal_mst(g, w);
  EXPECT_EQ(mst, (std::vector<EdgeId>{0, 1, 3}));
}

TEST(ExactMst, KruskalEqualsPrimOnRandomGraphs) {
  Rng rng(42);
  for (int rep = 0; rep < 8; ++rep) {
    const Graph g = gen::connected_gnp(60, 0.12, rng);
    const Weights w = distinct_random_weights(g, rng);
    EXPECT_EQ(kruskal_mst(g, w), prim_mst(g, w));
  }
}

TEST(ExactMst, MsfOnDisconnectedGraph) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}});
  const Weights w(g, {5, 3, 9});
  const auto msf = kruskal_msf(g, w);
  EXPECT_EQ(msf.size(), 3u);  // all edges (no cycles exist)
}

TEST(ExactMst, TreeInputReturnsAllEdges) {
  Rng rng(43);
  const Graph g = gen::path(30);
  const Weights w = distinct_random_weights(g, rng);
  EXPECT_EQ(kruskal_mst(g, w).size(), 29u);
}

TEST(ExactMst, MstIsMinimumAgainstRandomSpanningTrees) {
  // Property check: no random spanning tree beats Kruskal's total weight.
  Rng rng(44);
  const Graph g = gen::connected_gnp(40, 0.2, rng);
  const Weights w = distinct_random_weights(g, rng);
  const auto mst = kruskal_mst(g, w);
  const std::uint64_t best = w.total(mst);
  for (int rep = 0; rep < 20; ++rep) {
    // Random spanning tree via randomized Kruskal on shuffled edges.
    std::vector<EdgeId> order(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
    shuffle(order, rng);
    UnionFind uf(g.num_nodes());
    std::vector<EdgeId> tree;
    for (const EdgeId e : order) {
      if (uf.unite(g.edge_u(e), g.edge_v(e))) tree.push_back(e);
    }
    EXPECT_GE(w.total(tree), best);
  }
}

TEST(ExactMincut, KnownValues) {
  EXPECT_EQ(stoer_wagner_mincut(gen::barbell(12)), 1u);
  EXPECT_EQ(stoer_wagner_mincut(gen::ring(10)), 2u);
  EXPECT_EQ(stoer_wagner_mincut(gen::complete(7)), 6u);
  EXPECT_EQ(stoer_wagner_mincut(gen::path(5)), 1u);
  EXPECT_EQ(stoer_wagner_mincut(gen::hypercube(3)), 3u);
}

TEST(ExactMincut, MatchesBruteForceOnSmallRandomGraphs) {
  Rng rng(45);
  for (int rep = 0; rep < 6; ++rep) {
    const Graph g = gen::connected_gnp(10, 0.4, rng);
    // Brute force over all bipartitions.
    std::uint64_t best = UINT64_MAX;
    for (std::uint32_t mask = 1; mask + 1 < (1u << g.num_nodes()); ++mask) {
      std::vector<bool> in_s(g.num_nodes());
      for (NodeId v = 0; v < g.num_nodes(); ++v) in_s[v] = (mask >> v) & 1u;
      best = std::min(best, cut_value(g, in_s));
    }
    EXPECT_EQ(stoer_wagner_mincut(g), best);
  }
}

TEST(ExactMincut, WeightedVariantRespectsCapacities) {
  // Triangle with one heavy edge: min cut separates the light corner.
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  const std::uint64_t cut =
      stoer_wagner_mincut(g, std::vector<std::uint64_t>{10, 1, 1});
  EXPECT_EQ(cut, 2u);
}

TEST(ExactMincut, CutValueCountsCrossingEdges) {
  const Graph g = gen::ring(6);
  std::vector<bool> in_s{true, true, true, false, false, false};
  EXPECT_EQ(cut_value(g, in_s), 2u);
}

TEST(Weights, DistinctByConstruction) {
  Rng rng(46);
  const Graph g = gen::connected_gnp(50, 0.15, rng);
  const Weights w = distinct_random_weights(g, rng);
  std::vector<Weight> all;
  for (EdgeId e = 0; e < g.num_edges(); ++e) all.push_back(w[e]);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(Weights, ClusteredWeightsAreDistinctAndFavorIntraCluster) {
  Rng rng(47);
  const Graph g = gen::connected_gnp(60, 0.2, rng);
  const Weights w = clustered_weights(g, rng, 4);
  std::vector<Weight> all;
  for (EdgeId e = 0; e < g.num_edges(); ++e) all.push_back(w[e]);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  // Bimodal: max weight should be ~1000x min weight.
  EXPECT_GT(all.back() / all.front(), 100u);
}

TEST(Weights, LessIsATotalOrder) {
  const Graph g = gen::ring(5);
  const Weights w(g, {7, 7, 7, 1, 9});  // ties broken by edge id
  EXPECT_TRUE(w.less(0, 1));
  EXPECT_FALSE(w.less(1, 0));
  EXPECT_TRUE(w.less(3, 0));
  EXPECT_TRUE(w.less(0, 4));
}

}  // namespace
}  // namespace amix
