// graph/io: text serialization round-trips.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/rng.hpp"

namespace amix {
namespace {

TEST(GraphIo, RoundTripPreservesStructure) {
  Rng rng(3);
  const Graph g = gen::connected_gnp(60, 0.12, rng);
  std::stringstream ss;
  write_graph(ss, g);
  const GraphFile back = read_graph(ss);
  ASSERT_EQ(back.graph.num_nodes(), g.num_nodes());
  ASSERT_EQ(back.graph.num_edges(), g.num_edges());
  EXPECT_FALSE(back.weights.has_value());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(back.graph.edge_u(e), g.edge_u(e));
    EXPECT_EQ(back.graph.edge_v(e), g.edge_v(e));
  }
}

TEST(GraphIo, RoundTripPreservesWeights) {
  Rng rng(5);
  const Graph g = gen::ring(20);
  const Weights w = distinct_random_weights(g, rng);
  std::stringstream ss;
  write_graph(ss, g, &w);
  const GraphFile back = read_graph(ss);
  ASSERT_TRUE(back.weights.has_value());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ((*back.weights)[e], w[e]);
  }
}

TEST(GraphIo, IgnoresCommentsAndBlankLines) {
  std::stringstream ss("# header comment\n\ngraph 3 2\n# mid comment\ne 0 1\n\ne 1 2\n");
  const GraphFile f = read_graph(ss);
  EXPECT_EQ(f.graph.num_nodes(), 3u);
  EXPECT_EQ(f.graph.num_edges(), 2u);
}

TEST(GraphIoDeath, RejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    read_graph(ss);
  };
  EXPECT_DEATH(parse("e 0 1\n"), "edge before graph header");
  EXPECT_DEATH(parse("graph 3 1\n"), "edge count mismatch");
  EXPECT_DEATH(parse("graph 2 1\nx 0 1\n"), "unknown line tag");
  EXPECT_DEATH(parse("graph 3 2\ne 0 1 5\ne 1 2\n"), "all-or-none");
}

TEST(GraphIo, FileRoundTrip) {
  Rng rng(7);
  const Graph g = gen::hypercube(4);
  const Weights w = distinct_random_weights(g, rng);
  const std::string path = "/tmp/amix_io_test.graph";
  save_graph(path, g, &w);
  const GraphFile back = load_graph(path);
  EXPECT_EQ(back.graph.num_edges(), g.num_edges());
  ASSERT_TRUE(back.weights.has_value());
  EXPECT_EQ((*back.weights)[3], w[3]);
}

}  // namespace
}  // namespace amix
