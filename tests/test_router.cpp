// routing/: instance generators, the hierarchical router (Theorem 1.2),
// baselines, and the K-phase extension, across graph families.

#include <gtest/gtest.h>

#include <unordered_map>

#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "hierarchy/hierarchy.hpp"
#include "routing/baseline_routers.hpp"
#include "routing/hierarchical_router.hpp"

namespace amix {
namespace {

TEST(Instances, PermutationIsOneToOne) {
  Rng rng(3);
  const Graph g = gen::ring(50);
  const auto reqs = permutation_instance(g, rng);
  EXPECT_EQ(reqs.size(), 50u);
  std::vector<int> as_src(50, 0), as_dst(50, 0);
  for (const auto& r : reqs) {
    ++as_src[r.src];
    ++as_dst[r.dst.id];
    EXPECT_EQ(r.dst.degree, g.degree(r.dst.id));
  }
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(as_src[v], 1);
    EXPECT_EQ(as_dst[v], 1);
  }
}

TEST(Instances, DegreeDemandMatchesDegrees) {
  Rng rng(5);
  const Graph g = gen::barabasi_albert(60, 2, rng);
  const auto reqs = degree_demand_instance(g, rng);
  EXPECT_EQ(reqs.size(), g.num_arcs());
  std::vector<std::uint32_t> as_src(60, 0), as_dst(60, 0);
  for (const auto& r : reqs) {
    ++as_src[r.src];
    ++as_dst[r.dst.id];
  }
  for (NodeId v = 0; v < 60; ++v) {
    EXPECT_EQ(as_src[v], g.degree(v));
    EXPECT_EQ(as_dst[v], g.degree(v));
  }
}

TEST(Instances, HotspotTargetsHotNodes) {
  Rng rng(7);
  const Graph g = gen::random_regular(64, 4, rng);
  const auto reqs = hotspot_instance(g, rng, 3, 5);
  EXPECT_EQ(reqs.size(), 3u * 5 * 4);
  std::unordered_map<NodeId, int> dsts;
  for (const auto& r : reqs) ++dsts[r.dst.id];
  EXPECT_EQ(dsts.size(), 3u);
  for (const auto& [node, cnt] : dsts) EXPECT_EQ(cnt, 20);
}

TEST(Instances, AllToAllIsComplete) {
  const Graph g = gen::ring(12);
  const auto reqs = all_to_all_instance(g);
  EXPECT_EQ(reqs.size(), 12u * 11);
}

// Router correctness across families (parameterized).
struct RouterCase {
  const char* name;
  Graph (*make)(Rng&);
};

Graph rc_reg(Rng& rng) { return gen::random_regular(128, 6, rng); }
Graph rc_gnp(Rng& rng) { return gen::connected_gnp(128, 0.08, rng); }
Graph rc_hyper(Rng&) { return gen::hypercube(7); }
Graph rc_torus(Rng&) { return gen::torus2d(11); }
Graph rc_ws(Rng& rng) { return gen::watts_strogatz(128, 3, 0.3, rng); }
Graph rc_expander(Rng& rng) { return gen::matching_expander(128, 6, rng); }

class RouterFamilies : public ::testing::TestWithParam<RouterCase> {};

TEST_P(RouterFamilies, PermutationDeliversEverywhere) {
  Rng rng(11);
  const Graph g = GetParam().make(rng);
  RoundLedger build_ledger;
  HierarchyParams hp;
  hp.seed = 17;
  const Hierarchy h = Hierarchy::build(g, hp, build_ledger);
  HierarchicalRouter router(h);

  const auto reqs = permutation_instance(g, rng);
  RoundLedger ledger;
  const RouteStats stats = router.route(reqs, ledger, rng);
  EXPECT_EQ(stats.delivered, reqs.size());
  EXPECT_GT(stats.total_rounds, 0u);
  EXPECT_GT(stats.prep_rounds, 0u);
  EXPECT_EQ(stats.total_rounds, ledger.total());
  EXPECT_GE(stats.total_rounds,
            stats.prep_rounds + stats.hop_rounds + stats.leaf_rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Families, RouterFamilies,
    ::testing::Values(RouterCase{"regular", rc_reg}, RouterCase{"gnp", rc_gnp},
                      RouterCase{"hypercube", rc_hyper},
                      RouterCase{"torus", rc_torus},
                      RouterCase{"wattsstrogatz", rc_ws},
                      RouterCase{"matching", rc_expander}),
    [](const ::testing::TestParamInfo<RouterCase>& info) {
      return info.param.name;
    });

class RouterFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(13);
    g_ = new Graph(gen::random_regular(160, 6, rng));
    RoundLedger ledger;
    HierarchyParams hp;
    hp.seed = 23;
    h_ = new Hierarchy(Hierarchy::build(*g_, hp, ledger));
  }
  static void TearDownTestSuite() {
    delete h_;
    delete g_;
    h_ = nullptr;
    g_ = nullptr;
  }
  static Graph* g_;
  static Hierarchy* h_;
};
Graph* RouterFixture::g_ = nullptr;
Hierarchy* RouterFixture::h_ = nullptr;

TEST_F(RouterFixture, EmptyInstanceIsFree) {
  HierarchicalRouter router(*h_);
  Rng rng(1);
  RoundLedger ledger;
  const auto stats = router.route({}, ledger, rng);
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(ledger.total(), 0u);
}

TEST_F(RouterFixture, SelfDestinationsWork) {
  HierarchicalRouter router(*h_);
  Rng rng(2);
  std::vector<RouteRequest> reqs;
  for (NodeId v = 0; v < 20; ++v) {
    reqs.push_back(RouteRequest{v, addr_of(*g_, v), rng()});
  }
  RoundLedger ledger;
  const auto stats = router.route(reqs, ledger, rng);
  EXPECT_EQ(stats.delivered, reqs.size());
}

TEST_F(RouterFixture, RepeatedPairsAndDuplicateRequests) {
  HierarchicalRouter router(*h_);
  Rng rng(3);
  std::vector<RouteRequest> reqs;
  for (int i = 0; i < 30; ++i) {
    reqs.push_back(RouteRequest{5, addr_of(*g_, 99), static_cast<std::uint64_t>(i)});
  }
  RoundLedger ledger;
  // 30 packets into one degree-6 node: needs the K-phase extension.
  const auto stats = router.route_in_phases(reqs, 0, ledger, rng);
  EXPECT_EQ(stats.delivered, reqs.size());
  EXPECT_GE(stats.phases, 30u / 6);
}

TEST_F(RouterFixture, AutoPhaseCountMatchesDemand) {
  HierarchicalRouter router(*h_);
  Rng rng(4);
  const auto perm = permutation_instance(*g_, rng);
  EXPECT_EQ(router.auto_phase_count(perm), 1u);
  const auto hot = hotspot_instance(*g_, rng, 2, 7);
  EXPECT_GE(router.auto_phase_count(hot), 7u);
}

TEST_F(RouterFixture, PhasedRoutingDeliversHotspots) {
  HierarchicalRouter router(*h_);
  Rng rng(5);
  const auto hot = hotspot_instance(*g_, rng, 2, 4);
  RoundLedger ledger;
  const auto stats = router.route_in_phases(hot, 0, ledger, rng);
  EXPECT_EQ(stats.delivered, hot.size());
  EXPECT_GT(stats.phases, 1u);
}

TEST_F(RouterFixture, MaxVidLoadStaysNearLemma34Promise) {
  HierarchicalRouter router(*h_);
  Rng rng(6);
  const auto reqs = degree_demand_instance(*g_, rng);
  RoundLedger ledger;
  const auto stats = router.route(reqs, ledger, rng);
  EXPECT_EQ(stats.delivered, reqs.size());
  // Packets per virtual node after the scatter: O(log n) w.h.p.
  EXPECT_LE(stats.max_vid_load, 24u);
}

TEST_F(RouterFixture, DegreeMismatchIsRejected) {
  HierarchicalRouter router(*h_);
  Rng rng(7);
  std::vector<RouteRequest> reqs{
      RouteRequest{0, RoutingAddr{1, g_->degree(1) + 1}, 0}};
  RoundLedger ledger;
  EXPECT_DEATH(router.route(reqs, ledger, rng), "degree mismatch");
}

TEST(BaselineRouters, ShortestPathDeliversPermutation) {
  Rng rng(15);
  const Graph g = gen::connected_gnp(100, 0.08, rng);
  const ShortestPathRouter router(g);
  const auto reqs = permutation_instance(g, rng);
  RoundLedger ledger;
  const auto stats = router.route(reqs, ledger);
  EXPECT_EQ(stats.delivered, reqs.size());
  EXPECT_EQ(stats.rounds, ledger.total());
  // At least the max BFS distance, at most dilation+|packets|.
  EXPECT_GE(stats.rounds, 2u);
  EXPECT_LE(stats.rounds, static_cast<std::uint64_t>(diameter_exact(g)) +
                              reqs.size());
}

TEST(BaselineRouters, ShortestPathHandlesSrcEqualsDst) {
  const Graph g = gen::ring(10);
  const ShortestPathRouter router(g);
  std::vector<RouteRequest> reqs{RouteRequest{3, addr_of(g, 3), 0}};
  RoundLedger ledger;
  const auto stats = router.route(reqs, ledger);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.rounds, 0u);
}

TEST(BaselineRouters, RandomWalkEventuallyDeliversOnSmallGraph) {
  Rng rng(17);
  const Graph g = gen::complete(12);
  const RandomWalkRouter router(g);
  const auto reqs = permutation_instance(g, rng);
  RoundLedger ledger;
  const auto stats = router.route(reqs, ledger, rng, /*max_steps=*/100000);
  EXPECT_EQ(stats.delivered, reqs.size());
  EXPECT_EQ(stats.undelivered, 0u);
}

TEST(BaselineRouters, RandomWalkReportsUndeliveredAtCap) {
  Rng rng(19);
  const Graph g = gen::ring(64);  // terrible for walk-until-hit
  const RandomWalkRouter router(g);
  const auto reqs = permutation_instance(g, rng);
  RoundLedger ledger;
  const auto stats = router.route(reqs, ledger, rng, /*max_steps=*/16);
  EXPECT_GT(stats.undelivered, 0u);
  EXPECT_EQ(stats.delivered + stats.undelivered, reqs.size());
}

TEST(BaselineRouters, RandomWalksOfMixingLengthMissTheirDestinations) {
  // The introduction's motivating claim: a random walk of ~tau_mix steps
  // ends at a *random* node, so it is unlikely to hit its one intended
  // destination — while the hierarchical router delivers everything.
  Rng rng(21);
  const Graph g = gen::random_regular(256, 6, rng);
  RoundLedger build_ledger;
  HierarchyParams hp;
  hp.seed = 29;
  const Hierarchy h = Hierarchy::build(g, hp, build_ledger);
  HierarchicalRouter hr(h);
  const RandomWalkRouter wr(g);
  const auto reqs = permutation_instance(g, rng);
  RoundLedger l1, l2;
  const auto hs = hr.route(reqs, l1, rng);
  EXPECT_EQ(hs.delivered, reqs.size());
  const auto ws = wr.route(reqs, l2, rng, 4ULL * h.stats().tau_mix);
  // A tau_mix-length walk visits ~tau_mix of 256 nodes: most packets miss.
  EXPECT_GT(ws.undelivered, reqs.size() / 2);
}

}  // namespace
}  // namespace amix
