// graph/: representation, generators, traversal.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/traversal.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace amix {
namespace {

TEST(Graph, FromEdgesBasicAccessors) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.num_arcs(), 10u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, PortsAndEdgeIdsAreConsistent) {
  Rng rng(3);
  const Graph g = gen::gnp(60, 0.15, rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      const EdgeId e = g.edge_at(v, p);
      const NodeId w = g.neighbor(v, p);
      EXPECT_EQ(g.other_endpoint(e, v), w);
      EXPECT_EQ(g.port_of(v, e), p);
      EXPECT_TRUE((g.edge_u(e) == v && g.edge_v(e) == w) ||
                  (g.edge_u(e) == w && g.edge_v(e) == v));
      EXPECT_LT(g.edge_u(e), g.edge_v(e));
    }
  }
}

TEST(Graph, DegreeSumEqualsTwiceEdges) {
  Rng rng(5);
  const Graph g = gen::gnp(100, 0.1, rng);
  std::uint64_t sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) sum += g.degree(v);
  EXPECT_EQ(sum, 2ULL * g.num_edges());
}

TEST(GraphDeath, RejectsSelfLoopsAndParallelEdges) {
  EXPECT_DEATH(Graph::from_edges(3, {{0, 0}}), "self-loops");
  EXPECT_DEATH(Graph::from_edges(3, {{0, 1}, {1, 0}}), "parallel");
  EXPECT_DEATH(Graph::from_edges(2, {{0, 5}}), "out of range");
}

TEST(Generators, RingShape) {
  const Graph g = gen::ring(10);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 10u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(diameter_exact(g), 5u);
}

TEST(Generators, PathShape) {
  const Graph g = gen::path(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(diameter_exact(g), 6u);
}

TEST(Generators, CompleteShape) {
  const Graph g = gen::complete(8);
  EXPECT_EQ(g.num_edges(), 28u);
  EXPECT_EQ(diameter_exact(g), 1u);
  EXPECT_EQ(g.max_degree(), 7u);
}

TEST(Generators, StarShape) {
  const Graph g = gen::star(9);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.degree(0), 8u);
  EXPECT_EQ(diameter_exact(g), 2u);
}

TEST(Generators, Torus2dIsFourRegular) {
  const Graph g = gen::torus2d(5);
  EXPECT_EQ(g.num_nodes(), 25u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Grid2dShape) {
  const Graph g = gen::grid2d(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 4u * 2);  // horizontal + vertical
  EXPECT_EQ(diameter_exact(g), 5u);
}

TEST(Generators, HypercubeShape) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(diameter_exact(g), 4u);
}

TEST(Generators, BarbellHasBridge) {
  const Graph g = gen::barbell(12);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_edges(), 2u * (6 * 5 / 2) + 1);
  EXPECT_EQ(diameter_exact(g), 3u);
}

TEST(Generators, RandomRegularIsRegularAndConnected) {
  Rng rng(7);
  for (const std::uint32_t d : {3u, 4u, 6u}) {
    const Graph g = gen::random_regular(64, d, rng);
    for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), d);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, MatchingExpanderIsRegularAndConnected) {
  Rng rng(9);
  const Graph g = gen::matching_expander(64, 5, rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 5u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, GnpEdgeCountNearExpectation) {
  Rng rng(11);
  const NodeId n = 300;
  const double p = 0.05;
  Summary edges;
  for (int rep = 0; rep < 10; ++rep) {
    edges.add(static_cast<double>(gen::gnp(n, p, rng).num_edges()));
  }
  const double expect = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(edges.mean(), expect, 0.08 * expect);
}

TEST(Generators, GnpExtremes) {
  Rng rng(13);
  EXPECT_EQ(gen::gnp(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gen::gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(Generators, ConnectedGnpIsConnected) {
  Rng rng(15);
  const Graph g = gen::connected_gnp(80, 0.08, rng);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, WattsStrogatzShape) {
  Rng rng(17);
  const Graph g = gen::watts_strogatz(100, 3, 0.1, rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_GE(g.num_edges(), 280u);  // ~ n*k minus rewiring collisions
  EXPECT_LE(g.num_edges(), 300u);
}

TEST(Generators, BarabasiAlbertShape) {
  Rng rng(19);
  const Graph g = gen::barabasi_albert(200, 3, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  EXPECT_TRUE(is_connected(g));
  // Preferential attachment: the max degree is well above the minimum.
  EXPECT_GE(g.max_degree(), 12u);
}

TEST(Generators, LowerboundSkeletonShape) {
  const Graph g = gen::lowerbound_skeleton(8, 16);
  EXPECT_EQ(g.num_nodes(), 8u * 16 + (2 * 16 - 1));
  EXPECT_TRUE(is_connected(g));
  // Shallow: tree height + leaf hop.
  EXPECT_LE(diameter_exact(g), 14u);
}

TEST(Generators, DeterministicGivenSeed) {
  Rng r1(21), r2(21);
  const Graph a = gen::gnp(50, 0.2, r1);
  const Graph b = gen::gnp(50, 0.2, r2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e));
    EXPECT_EQ(a.edge_v(e), b.edge_v(e));
  }
}

TEST(Traversal, BfsDistancesOnRing) {
  const Graph g = gen::ring(8);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[7], 1u);
}

TEST(Traversal, ComponentsOfDisjointUnion) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  NodeId count = 0;
  const auto comp = component_ids(g, &count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Traversal, DoubleSweepIsExactOnTreesAndLowerBoundElsewhere) {
  const Graph tree = gen::path(20);
  EXPECT_EQ(diameter_double_sweep(tree, 7), 19u);
  Rng rng(23);
  const Graph g = gen::connected_gnp(60, 0.12, rng);
  EXPECT_LE(diameter_double_sweep(g), diameter_exact(g));
}

TEST(Traversal, BfsTreeProperties) {
  Rng rng(25);
  const Graph g = gen::connected_gnp(70, 0.1, rng);
  const BfsTree t = bfs_tree(g, 5);
  EXPECT_EQ(t.root, 5u);
  EXPECT_EQ(t.parent[5], kInvalidNode);
  const auto dist = bfs_distances(g, 5);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(t.depth[v], dist[v]);
    if (v != 5) {
      EXPECT_EQ(t.depth[t.parent[v]] + 1, t.depth[v]);
      EXPECT_EQ(g.other_endpoint(t.parent_edge[v], v), t.parent[v]);
    }
  }
  EXPECT_EQ(t.height, eccentricity(g, 5));
}

// Parameterized structural sweep across generator families.
struct FamilyCase {
  const char* name;
  Graph (*make)(Rng&);
};

Graph make_reg(Rng& rng) { return gen::random_regular(96, 4, rng); }
Graph make_gnp(Rng& rng) { return gen::connected_gnp(96, 0.08, rng); }
Graph make_hyper(Rng&) { return gen::hypercube(6); }
Graph make_torus(Rng&) { return gen::torus2d(8); }
Graph make_ws(Rng& rng) { return gen::watts_strogatz(96, 3, 0.2, rng); }
Graph make_ba(Rng& rng) { return gen::barabasi_albert(96, 2, rng); }

class FamilyStructure : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(FamilyStructure, WellFormedConnectedAndConsistent) {
  Rng rng(29);
  const Graph g = GetParam().make(rng);
  EXPECT_TRUE(is_connected(g));
  std::uint64_t degsum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    degsum += g.degree(v);
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      EXPECT_NE(g.neighbor(v, p), v);
      EXPECT_EQ(g.port_of(v, g.edge_at(v, p)), p);
    }
  }
  EXPECT_EQ(degsum, g.num_arcs());
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilyStructure,
    ::testing::Values(FamilyCase{"regular", make_reg},
                      FamilyCase{"gnp", make_gnp},
                      FamilyCase{"hypercube", make_hyper},
                      FamilyCase{"torus", make_torus},
                      FamilyCase{"wattsstrogatz", make_ws},
                      FamilyCase{"barabasialbert", make_ba}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace amix
