// sim/: fault injection — token drops with retransmission, duplication,
// adversarial kernel schedules, kernel message loss, and topology churn.
// The certification standard: under every fault mode an algorithm is
// either exactly correct (Las Vegas: faults only cost rounds) or its
// failure is loudly observable — never silently wrong.

#include <gtest/gtest.h>

#include "amix/amix.hpp"

namespace amix {
namespace {

using congest::Inbox;
using congest::Message;
using congest::Outbox;
using congest::SyncNetwork;
using sim::AdversarialOrderPlan;
using sim::ChurnPlan;
using sim::CompositeFaultPlan;
using sim::DuplicationPlan;
using sim::HarnessOptions;
using sim::HarnessResult;
using sim::MessageDropPlan;
using sim::SimHarness;
using sim::SimRun;

/// Route a permutation instance; fold trajectory-observable outputs.
void route_body(SimRun& run, const Graph& g) {
  RoundLedger& ledger = run.ledger();
  HierarchyParams hp;
  hp.seed = run.rng()();
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  HierarchicalRouter router(h);
  const auto reqs = permutation_instance(g, run.rng());
  const RouteStats rs = router.route(reqs, ledger, run.rng());
  ASSERT_EQ(rs.delivered, reqs.size());
  run.fold(rs.delivered);
  run.fold(rs.max_vid_load);
}

TEST(FaultInjection, RoutingDeliversUnderTokenDrops) {
  const auto corpus = sim::seeded_corpus(11);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& sc = corpus[i];
    const HarnessResult clean =
        SimHarness(HarnessOptions{.seed = sc.seed, .replays = 1})
            .run([&](SimRun& run) { route_body(run, sc.graph); });
    MessageDropPlan drop(0.2);
    const HarnessResult faulted =
        SimHarness(
            HarnessOptions{.seed = sc.seed, .faults = &drop, .replays = 1})
            .run([&](SimRun& run) { route_body(run, sc.graph); });
    ASSERT_TRUE(clean.certified()) << sc.name;
    ASSERT_TRUE(faulted.certified())
        << sc.name << ": " << faulted.mismatch_report
        << faulted.record.audit.first_violation;
    // Faults draw from their own stream: trajectories (and therefore
    // outputs) are bit-identical, only the schedule gets more expensive.
    EXPECT_EQ(clean.record.output_digest, faulted.record.output_digest)
        << sc.name;
    EXPECT_GE(faulted.record.ledger_total, clean.record.ledger_total)
        << sc.name;
    EXPECT_GT(faulted.record.audit.fault_slots, 0u) << sc.name;
    EXPECT_GT(drop.tokens_retransmitted(), 0u) << sc.name;
  }
}

class MstFaultModes
    : public ::testing::TestWithParam<const char*> {};

TEST_P(MstFaultModes, MstExactlyCorrectUnderFaults) {
  const std::string mode = GetParam();
  MessageDropPlan drop(0.25);
  DuplicationPlan dup(0.3);
  CompositeFaultPlan both({&drop, &dup});
  sim::FaultPlan* plan = nullptr;
  if (mode == "drop") plan = &drop;
  if (mode == "duplicate") plan = &dup;
  if (mode == "composite") plan = &both;

  const auto corpus = sim::seeded_corpus(13);
  const sim::Scenario& sc = corpus[0];
  const Weights w = [&] {
    Rng wrng(sc.seed);
    return distinct_random_weights(sc.graph, wrng);
  }();
  const auto oracle = kruskal_mst(sc.graph, w);

  SimHarness harness(
      HarnessOptions{.seed = sc.seed, .faults = plan, .replays = 1});
  const HarnessResult res = harness.run([&](SimRun& run) {
    RoundLedger& ledger = run.ledger();
    HierarchyParams hp;
    hp.seed = run.rng()();
    const Hierarchy h = Hierarchy::build(sc.graph, hp, ledger);
    const MstStats ms = HierarchicalBoruvka(h, w).run(ledger);
    EXPECT_EQ(ms.edges, oracle) << "fault mode " << mode;
    run.fold_range(ms.edges);
  });
  EXPECT_TRUE(res.certified())
      << mode << ": " << res.mismatch_report
      << res.record.audit.first_violation;
}

INSTANTIATE_TEST_SUITE_P(Modes, MstFaultModes,
                         ::testing::Values("none", "drop", "duplicate",
                                           "composite"));

TEST(FaultInjection, WalksPayForDuplicatesButLandIdentically) {
  Rng grng(21);
  const Graph g = gen::random_regular(64, 6, grng);
  const auto walk_body = [&g](SimRun& run) {
    std::vector<std::uint32_t> starts(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) starts[v] = v;
    BaseComm base(g);
    ParallelWalkEngine engine(base, run.rng().split());
    WalkStats stats;
    const auto ends =
        engine.run(starts, WalkKind::kLazy, 24, run.ledger(), &stats);
    run.fold_range(ends);
  };
  const HarnessResult clean =
      SimHarness(HarnessOptions{.seed = 5, .replays = 1}).run(walk_body);
  DuplicationPlan dup(0.3);
  const HarnessResult faulted =
      SimHarness(HarnessOptions{.seed = 5, .faults = &dup, .replays = 1})
          .run(walk_body);
  ASSERT_TRUE(clean.certified());
  ASSERT_TRUE(faulted.certified()) << faulted.record.audit.first_violation;
  EXPECT_EQ(clean.record.output_digest, faulted.record.output_digest);
  EXPECT_GT(faulted.record.ledger_total, clean.record.ledger_total);
  EXPECT_GT(dup.duplicates(), 0u);
  // The charge never dips below the independently recomputed lower bound.
  EXPECT_GE(faulted.record.audit.charged_graph_rounds,
            faulted.record.audit.recomputed_graph_rounds);
}

// ---- Kernel layer: message loss must be tolerated or loudly visible. ----

namespace {
/// Repeated-flooding broadcast: every informed node re-sends the value on
/// every port, every round. One successful delivery per edge suffices, so
/// the protocol tolerates independent message loss.
std::vector<bool> flood_with_repeats(const Graph& g, std::uint32_t rounds,
                                     RoundLedger& ledger) {
  std::vector<bool> knows(g.num_nodes(), false);
  knows[0] = true;
  SyncNetwork net(g, ledger);
  net.run_rounds(
      [&](NodeId v, const Inbox& in, Outbox& out) {
        for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
          if (in.at(p).has_value()) knows[v] = true;
        }
        if (knows[v]) {
          for (std::uint32_t p = 0; p < out.num_ports(); ++p) {
            out.send(p, Message{1, 0});
          }
        }
      },
      rounds);
  return knows;
}
}  // namespace

TEST(FaultInjection, DropTolerantFloodingSurvivesKernelLoss) {
  Rng grng(23);
  const Graph g = gen::connected_gnp(40, 0.15, grng);
  MessageDropPlan drop(0.3, /*seed=*/77, /*drop_tokens=*/false,
                       /*drop_kernel=*/true);
  SimHarness harness(
      HarnessOptions{.seed = 9, .faults = &drop, .replays = 1});
  const HarnessResult res = harness.run([&g](SimRun& run) {
    const auto knows = flood_with_repeats(g, 30, run.ledger());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_TRUE(knows[v]) << "node " << v << " never informed";
      run.fold(knows[v]);
    }
  });
  EXPECT_TRUE(res.certified()) << res.mismatch_report;
  EXPECT_GT(drop.kernel_dropped(), 0u);
}

TEST(FaultInjection, TotalKernelLossFailsLoudlyNotSilently) {
  // With p = 1 nothing is ever delivered: the failure is observable as
  // non-delivery (and would trip any delivery assertion), not as a wrong
  // answer passed off as a right one.
  Rng grng(25);
  const Graph g = gen::connected_gnp(30, 0.2, grng);
  MessageDropPlan drop(1.0, /*seed=*/78, /*drop_tokens=*/false,
                       /*drop_kernel=*/true);
  SimHarness harness(
      HarnessOptions{.seed = 9, .faults = &drop, .replays = 0});
  const HarnessResult res = harness.run([&g](SimRun& run) {
    const auto knows = flood_with_repeats(g, 20, run.ledger());
    std::uint32_t informed = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) informed += knows[v];
    EXPECT_EQ(informed, 1u);  // only the source itself
  });
  EXPECT_TRUE(res.record.audit.ok());
}

// ---- Kernel layer: adversarial handler order must be unobservable. ----

TEST(FaultInjection, AdversarialOrderIsInvisibleToKernelAlgorithms) {
  Rng grng(27);
  const Graph g = gen::connected_gnp(48, 0.12, grng);
  const Weights w = distinct_random_weights(g, grng);

  const auto run_mst = [&](sim::FaultPlan* plan) {
    SimHarness harness(
        HarnessOptions{.seed = 4, .faults = plan, .replays = 1});
    return harness.run([&](SimRun& run) {
      const KernelMstStats ms = kernel_boruvka(g, w, run.ledger(), 17);
      run.fold_range(ms.edges);
      const BfsTree t = congest::distributed_bfs_tree(g, 0, run.ledger());
      run.fold_range(t.depth);
    });
  };
  const HarnessResult natural = run_mst(nullptr);
  AdversarialOrderPlan adversary(0xfeedface);
  const HarnessResult permuted = run_mst(&adversary);
  ASSERT_TRUE(natural.certified());
  ASSERT_TRUE(permuted.certified());
  // Any divergence would convict the handlers of cross-node state
  // sharing within a round.
  EXPECT_EQ(natural.record.output_digest, permuted.record.output_digest);
  EXPECT_EQ(natural.record.ledger_total, permuted.record.ledger_total);
}

// ---- Scenario layer: topology churn between epochs. ----

TEST(FaultInjection, PipelineStaysCorrectAcrossChurnEpochs) {
  Rng grng(29);
  const Graph g0 = gen::random_regular(64, 6, grng);
  ChurnPlan churn(0.125);
  std::vector<std::uint64_t> epoch_digests;
  SimHarness harness(
      HarnessOptions{.seed = 6, .faults = &churn, .replays = 1});
  const HarnessResult res = harness.run_epochs(
      g0, 3, [&epoch_digests](SimRun& run, const Graph& g) {
        if (run.epoch() == 0) epoch_digests.clear();  // fresh per play
        epoch_digests.push_back(sim::graph_digest(g));
        run.fold(sim::graph_digest(g));
        ASSERT_TRUE(is_connected(g));

        RoundLedger& ledger = run.ledger();
        HierarchyParams hp;
        hp.seed = run.rng()();
        const Hierarchy h = Hierarchy::build(g, hp, ledger);
        HierarchicalRouter router(h);
        const auto reqs = permutation_instance(g, run.rng());
        const RouteStats rs = router.route(reqs, ledger, run.rng());
        EXPECT_EQ(rs.delivered, reqs.size());

        const Weights w = distinct_random_weights(g, run.rng());
        const MstStats ms = HierarchicalBoruvka(h, w).run(ledger);
        EXPECT_TRUE(is_exact_mst(g, w, ms.edges));
        run.fold_range(ms.edges);
      });
  EXPECT_TRUE(res.certified())
      << res.mismatch_report << res.record.audit.first_violation;
  ASSERT_EQ(epoch_digests.size(), 3u);
  // The churn actually rewired the topology between epochs.
  EXPECT_NE(epoch_digests[0], epoch_digests[1]);
  EXPECT_NE(epoch_digests[1], epoch_digests[2]);
}

}  // namespace
}  // namespace amix
