// util/: RNG, k-wise hashing, statistics, table rendering.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "util/kwise_hash.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace amix {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng a(7);
  Rng c = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == c());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  const double expect = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expect, 5 * std::sqrt(expect));
  }
}

TEST(Rng, NextInCoversRangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_in(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  shuffle(w, rng);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleDistinctProducesDistinctInRange) {
  Rng rng(29);
  for (std::uint32_t n : {5u, 32u, 1000u}) {
    for (std::uint32_t k : {0u, 1u, n / 2, n}) {
      const auto s = sample_distinct(n, k, rng);
      EXPECT_EQ(s.size(), k);
      std::set<std::uint32_t> distinct(s.begin(), s.end());
      EXPECT_EQ(distinct.size(), k);
      for (const auto x : s) EXPECT_LT(x, n);
    }
  }
}

TEST(Rng, SampleDistinctIsRoughlyUniform) {
  Rng rng(31);
  std::vector<int> hits(20, 0);
  for (int rep = 0; rep < 4000; ++rep) {
    for (const auto x : sample_distinct(20, 3, rng)) ++hits[x];
  }
  for (const int h : hits) EXPECT_NEAR(h, 600, 150);
}

TEST(KWiseHash, DeterministicAndInRange) {
  Rng rng(5);
  const KWiseHash h(8, rng);
  for (std::uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(h(key), h(key));
    EXPECT_LT(h(key), KWiseHash::kPrime);
  }
}

TEST(KWiseHash, DifferentSeedsGiveDifferentFunctions) {
  Rng r1(5), r2(6);
  const KWiseHash h1(8, r1), h2(8, r2);
  int same = 0;
  for (std::uint64_t key = 0; key < 128; ++key) same += (h1(key) == h2(key));
  EXPECT_LT(same, 3);
}

TEST(KWiseHash, BoundedIsRoughlyUniform) {
  Rng rng(7);
  const KWiseHash h(16, rng);
  constexpr std::uint64_t kRange = 16;
  std::vector<int> counts(kRange, 0);
  constexpr int kKeys = 64000;
  for (std::uint64_t key = 0; key < kKeys; ++key) ++counts[h.bounded(key, kRange)];
  const double expect = static_cast<double>(kKeys) / kRange;
  for (const int c : counts) EXPECT_NEAR(c, expect, 6 * std::sqrt(expect));
}

TEST(KWiseHash, PairwiseCollisionRateMatchesUniform) {
  // 2-wise independence: over the random choice of the hash function, a
  // fixed pair of keys collides with probability ~ 1/range. (Within ONE
  // function, collisions of equal-difference pairs are fully correlated —
  // so the average must be over functions, not pairs.)
  Rng rng(9);
  constexpr std::uint64_t kRange = 16;
  constexpr int kFunctions = 4000;
  int collisions = 0;
  for (int i = 0; i < kFunctions; ++i) {
    const KWiseHash h(2, rng);
    collisions += h.bounded(12345, kRange) == h.bounded(98765, kRange);
  }
  const double expect = static_cast<double>(kFunctions) / kRange;
  EXPECT_NEAR(collisions, expect, 5 * std::sqrt(expect));
}

TEST(KWiseHash, SeedBitsMatchIndependence) {
  Rng rng(11);
  const KWiseHash h(12, rng);
  EXPECT_EQ(h.independence(), 12u);
  EXPECT_EQ(h.seed_bits(), 12u * 61);
}

TEST(KWiseHash, MulmodM61Correct) {
  // Cross-check against __int128 arithmetic.
  Rng rng(13);
  constexpr std::uint64_t p = KWiseHash::kPrime;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng.next_below(p);
    const std::uint64_t b = rng.next_below(p);
    const auto want = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(a) * b) % p);
    EXPECT_EQ(mulmod_m61(a, b), want);
  }
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, EmptyIsSafe) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Quantile, InterpolatesCorrectly) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(LogLogSlope, RecoversPowerLaws) {
  std::vector<double> x, y2, y1;
  for (double v : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    x.push_back(v);
    y2.push_back(v * v * 3.0);
    y1.push_back(v * 7.0);
  }
  EXPECT_NEAR(loglog_slope(x, y2), 2.0, 1e-9);
  EXPECT_NEAR(loglog_slope(x, y1), 1.0, 1e-9);
}

TEST(Table, RendersRowsAndCsv) {
  Table t({"name", "value"});
  t.row().add("alpha").add(std::uint64_t{42});
  t.row().add("beta").add(3.14159, 2);
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream pretty, csv;
  t.print(pretty);
  t.print_csv(csv);
  EXPECT_NE(pretty.str().find("alpha"), std::string::npos);
  EXPECT_NE(pretty.str().find("42"), std::string::npos);
  EXPECT_EQ(csv.str(), "name,value\nalpha,42\nbeta,3.14\n");
}

TEST(Table, ReportContainsTitle) {
  Table t({"a"});
  t.row().add(1);
  std::ostringstream os;
  t.print_report(os, "demo-table");
  EXPECT_NE(os.str().find("demo-table"), std::string::npos);
}

}  // namespace
}  // namespace amix
