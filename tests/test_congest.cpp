// congest/: the synchronous kernel, its primitives, and token transport.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "congest/comm_graph.hpp"
#include "congest/instrument.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "congest/token_transport.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace amix {
namespace {

using congest::Inbox;
using congest::Message;
using congest::Outbox;
using congest::SyncNetwork;

TEST(SyncNetwork, DeliversMessagesToTheRightPort) {
  const Graph g = gen::path(3);  // 0 - 1 - 2
  RoundLedger ledger;
  SyncNetwork net(g, ledger);
  std::vector<std::uint64_t> got(3, 0);
  net.run_rounds(
      [&](NodeId v, const Inbox& in, Outbox& out) {
        for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
          if (in.at(p).has_value()) got[v] += in.at(p)->a;
        }
        if (net.rounds_executed() == 0 && v == 0) {
          out.send(0, Message{41, 0});  // to node 1
        }
      },
      2);
  EXPECT_EQ(got[1], 41u);
  EXPECT_EQ(got[0], 0u);
  EXPECT_EQ(got[2], 0u);
  EXPECT_EQ(ledger.total(), 2u);
}

TEST(SyncNetwork, ChargesOneRoundPerStep) {
  const Graph g = gen::ring(5);
  RoundLedger ledger;
  SyncNetwork net(g, ledger);
  net.run_rounds([](NodeId, const Inbox&, Outbox&) {}, 7);
  EXPECT_EQ(ledger.total(), 7u);
  EXPECT_EQ(net.rounds_executed(), 7u);
}

TEST(SyncNetworkDeath, RejectsTwoMessagesOnOneArc) {
  const Graph g = gen::path(2);
  RoundLedger ledger;
  SyncNetwork net(g, ledger);
  EXPECT_DEATH(net.run_rounds(
                   [](NodeId v, const Inbox&, Outbox& out) {
                     if (v == 0) {
                       out.send(0, Message{1, 0});
                       out.send(0, Message{2, 0});
                     }
                   },
                   1),
               "CONGEST violation");
}

TEST(SyncNetworkDeath, RejectsSendOnBadPort) {
  const Graph g = gen::path(2);  // node 0 has exactly one port
  RoundLedger ledger;
  SyncNetwork net(g, ledger);
  EXPECT_DEATH(net.run_rounds(
                   [](NodeId v, const Inbox&, Outbox& out) {
                     if (v == 0) out.send(1, Message{1, 0});
                   },
                   1),
               "bad port");
}

TEST(SyncNetworkDeath, RunUntilQuietAbortsAtMaxRounds) {
  const Graph g = gen::ring(4);
  RoundLedger ledger;
  SyncNetwork net(g, ledger);
  // A babbler never quiesces: the guard must fire rather than spin.
  EXPECT_DEATH(net.run_until_quiet(
                   [](NodeId, const Inbox&, Outbox& out) {
                     out.send(0, Message{1, 0});
                   },
                   10),
               "did not quiesce");
}

TEST(SyncNetwork, RunUntilQuietStopsAndCharges) {
  const Graph g = gen::path(4);
  RoundLedger ledger;
  SyncNetwork net(g, ledger);
  // One message travels 0 -> 1 -> 2 -> 3; then quiet.
  std::vector<bool> forwarded(4, false);
  const auto rounds = net.run_until_quiet(
      [&](NodeId v, const Inbox& in, Outbox& out) {
        if (v == 0 && !forwarded[0]) {
          forwarded[0] = true;
          out.send(0, Message{7, 0});
          return;
        }
        for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
          if (in.at(p).has_value() && !forwarded[v] && v + 1 < 4) {
            forwarded[v] = true;
            out.send(g.port_of(v, g.edge_at(v, 1 - p)), *in.at(p));
          }
        }
      },
      100);
  EXPECT_EQ(rounds, 4u);  // 3 forwarding rounds + 1 quiet round
}

TEST(Primitives, DistributedBfsTreeMatchesCentralDistances) {
  Rng rng(5);
  const Graph g = gen::connected_gnp(60, 0.1, rng);
  RoundLedger ledger;
  const BfsTree t = congest::distributed_bfs_tree(g, 3, ledger);
  const auto dist = bfs_distances(g, 3);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(t.depth[v], dist[v]);
  }
  // Flooding takes eccentricity+O(1) rounds.
  EXPECT_GE(ledger.total(), eccentricity(g, 3));
  EXPECT_LE(ledger.total(), eccentricity(g, 3) + 3);
}

TEST(Primitives, LeaderElectionFindsMaxId) {
  Rng rng(7);
  const Graph g = gen::connected_gnp(40, 0.15, rng);
  RoundLedger ledger;
  EXPECT_EQ(congest::elect_leader_max_id(g, ledger), g.num_nodes() - 1);
  EXPECT_GE(ledger.total(), diameter_double_sweep(g) / 2);
}

TEST(Primitives, ConvergecastMinComputesGlobalMin) {
  Rng rng(9);
  const Graph g = gen::connected_gnp(50, 0.12, rng);
  RoundLedger ledger;
  const BfsTree t = bfs_tree(g, 0);
  std::vector<std::uint64_t> values(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) values[v] = 1000 + v * 7;
  values[37] = 3;
  EXPECT_EQ(congest::convergecast_min(g, t, values, ledger), 3u);
  EXPECT_LE(ledger.total(), 2u * t.height + 4);
}

TEST(Primitives, BroadcastBitsChargesPipelineFormula) {
  BfsTree t;
  t.height = 10;
  RoundLedger ledger;
  congest::broadcast_bits(t, 1280, 128, ledger);  // 10 packets
  EXPECT_EQ(ledger.total(), 10u + 9 + 1);
  RoundLedger l2;
  congest::broadcast_bits(t, 1, 128, l2);  // 1 packet
  EXPECT_EQ(l2.total(), 11u);
}

TEST(TokenTransport, ChargesMaxArcLoad) {
  const Graph g = gen::star(5);  // hub 0
  BaseComm base(g);
  TokenTransport tt(base);
  RoundLedger ledger;
  // 3 tokens over hub->leaf port 0, 1 token over port 1.
  tt.move(0, 0);
  tt.move(0, 0);
  tt.move(0, 0);
  tt.move(0, 1);
  EXPECT_EQ(tt.step_max_load(), 3u);
  EXPECT_EQ(tt.step_moves(), 4u);
  EXPECT_EQ(tt.commit_step(ledger), 3u);
  EXPECT_EQ(ledger.total(), 3u);
  // State resets between steps.
  tt.move(0, 1);
  EXPECT_EQ(tt.commit_step(ledger), 1u);
  EXPECT_EQ(ledger.total(), 4u);
  EXPECT_EQ(tt.total_graph_rounds(), 4u);
}

TEST(TokenTransport, MultipliesByRoundCost) {
  OverlayComm overlay({{1}, {0}}, /*round_cost=*/17);
  TokenTransport tt(overlay);
  RoundLedger ledger;
  tt.move(0, 0);
  tt.move(0, 0);
  tt.commit_step(ledger);
  EXPECT_EQ(ledger.total(), 2u * 17);
  EXPECT_EQ(tt.total_graph_rounds(), 2u);
}

TEST(TokenTransport, OppositeDirectionsDoNotCollide) {
  const Graph g = gen::path(2);
  BaseComm base(g);
  TokenTransport tt(base);
  RoundLedger ledger;
  tt.move(0, 0);  // 0 -> 1
  tt.move(1, 0);  // 1 -> 0
  EXPECT_EQ(tt.commit_step(ledger), 1u);  // full duplex: one round
}

TEST(TokenTransport, TracksPerNodeResidency) {
  const Graph g = gen::star(5);  // hub 0, leaves 1..4
  BaseComm base(g);
  TokenTransport tt(base);
  RoundLedger ledger;
  // Step 1: every leaf sends one token to the hub; hub sends one out.
  for (std::uint32_t leaf = 1; leaf <= 4; ++leaf) tt.move(leaf, 0);
  tt.move(0, 0);
  EXPECT_EQ(tt.step_residency(), 4u);  // 4 tokens arrive at the hub
  tt.commit_step(ledger);
  EXPECT_EQ(tt.step_residency(), 0u);  // reset-and-report at commit
  EXPECT_EQ(tt.max_node_residency(), 4u);
  // Step 2: a single quiet move must not disturb the running max.
  tt.move(1, 0);
  EXPECT_EQ(tt.step_residency(), 1u);
  tt.commit_step(ledger);
  EXPECT_EQ(tt.max_node_residency(), 4u);
}

TEST(TokenTransport, ResidencyCountsArrivalsNotArcCopies) {
  // Two tokens over the same arc: arc load 2 (two rounds) but both come
  // to rest at the same head node, so residency is also 2 — while a
  // fan-in over distinct arcs yields residency 2 with arc load 1.
  const Graph g = gen::path(3);  // 0 - 1 - 2
  BaseComm base(g);
  TokenTransport tt(base);
  RoundLedger ledger;
  tt.move(0, 0);  // 0 -> 1
  tt.move(2, 0);  // 2 -> 1
  EXPECT_EQ(tt.step_max_load(), 1u);
  EXPECT_EQ(tt.step_residency(), 2u);
  tt.commit_step(ledger);
  EXPECT_EQ(ledger.total(), 1u);
  EXPECT_EQ(tt.max_node_residency(), 2u);
}

TEST(CommGraph, BaseCommMirrorsGraph) {
  Rng rng(11);
  const Graph g = gen::connected_gnp(30, 0.2, rng);
  const BaseComm base(g);
  EXPECT_EQ(base.num_nodes(), g.num_nodes());
  EXPECT_EQ(base.num_arcs(), g.num_arcs());
  EXPECT_EQ(base.round_cost(), 1u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(base.degree(v), g.degree(v));
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      EXPECT_EQ(base.neighbor(v, p), g.neighbor(v, p));
    }
  }
  EXPECT_EQ(base.max_degree(), g.max_degree());
}

TEST(CommGraph, OverlayCommArcIndexingIsDense) {
  OverlayComm overlay({{1, 2}, {0}, {0}}, 5);
  EXPECT_EQ(overlay.num_nodes(), 3u);
  EXPECT_EQ(overlay.num_arcs(), 4u);
  std::set<std::uint64_t> seen;
  for (std::uint32_t v = 0; v < 3; ++v) {
    for (std::uint32_t p = 0; p < overlay.degree(v); ++p) {
      seen.insert(overlay.arc_index(v, p));
    }
  }
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.rbegin(), 3u);
}

TEST(RoundLedger, PhaseTaggingAccumulates) {
  RoundLedger ledger;
  ledger.charge("a", 5);
  ledger.charge("b", 7);
  ledger.charge("a", 2);
  ledger.charge(1);
  EXPECT_EQ(ledger.total(), 15u);
  EXPECT_EQ(ledger.phase_total("a"), 7u);
  EXPECT_EQ(ledger.phase_total("b"), 7u);
  EXPECT_EQ(ledger.phase_total("missing"), 0u);
  ledger.reset();
  EXPECT_EQ(ledger.total(), 0u);
}

TEST(SyncNetwork, InboxEmptyFlagSetsAndClearsAcrossRounds) {
  // The empty() fast path reads a per-node arrived flag that must be SET
  // the round after any message lands and CLEARED again once a silent
  // round passes — on the plain serial path, on the instrumented serial
  // path (any installed instrument reroutes delivery), and on the
  // threaded path.
  const Graph g = gen::ring(8);
  const NodeId n = g.num_nodes();
  const NodeId w = g.arcs(0)[0].to;  // receiver of node 0's port 0
  constexpr std::uint32_t kRounds = 4;

  // flags[r * n + v] = in.empty() seen by v in round r (uint8_t: written
  // concurrently per node under the threaded executor, so no vector<bool>).
  const auto observe = [&](std::uint32_t threads, bool instrumented) {
    RoundLedger ledger;
    SyncNetwork net(g, ledger, ExecPolicy{threads});
    std::vector<std::uint8_t> flags(std::size_t{kRounds} * n, 0);
    congest::CongestInstrument passthrough;
    std::optional<congest::ScopedInstrument> scope;
    if (instrumented) scope.emplace(&passthrough);
    net.run_rounds(
        [&](NodeId v, const Inbox& in, Outbox& out) {
          flags[net.rounds_executed() * n + v] = in.empty() ? 1 : 0;
          // Node 0 speaks in rounds 0 and 2, is silent in rounds 1 and 3.
          if (v == 0 && net.rounds_executed() % 2 == 0) {
            out.send(0, Message{7, 0});
          }
        },
        kRounds);
    return flags;
  };

  const auto expect_pattern = [&](const std::vector<std::uint8_t>& flags) {
    for (std::uint32_t r = 0; r < kRounds; ++r) {
      for (NodeId v = 0; v < n; ++v) {
        // Only w hears anything, and only in the rounds right after node 0
        // spoke (set in round 1, cleared in round 2, set again in round 3).
        const bool expect_empty = !(v == w && (r == 1 || r == 3));
        EXPECT_EQ(flags[r * n + v] == 1, expect_empty)
            << "round " << r << " node " << v;
      }
    }
  };

  const auto serial = observe(1, /*instrumented=*/false);
  expect_pattern(serial);
  EXPECT_EQ(observe(1, /*instrumented=*/true), serial);
  EXPECT_EQ(observe(4, /*instrumented=*/false), serial);
  EXPECT_EQ(observe(4, /*instrumented=*/true), serial);
}

TEST(RoundLedger, PhaseScopeFoldsIntoParent) {
  RoundLedger parent;
  {
    PhaseScope scope(parent, "stage");
    scope.ledger().charge(9);
    scope.ledger().charge("inner", 4);
  }
  EXPECT_EQ(parent.total(), 13u);
  EXPECT_EQ(parent.phase_total("stage"), 13u);
}

}  // namespace
}  // namespace amix
