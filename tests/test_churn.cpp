// gen::degree_preserving_rewire and churn-resilience of the pipeline.

#include <gtest/gtest.h>

#include "amix/amix.hpp"

namespace amix {
namespace {

TEST(Churn, RewirePreservesDegreesAndConnectivity) {
  Rng rng(17);
  const Graph g = gen::random_regular(96, 6, rng);
  const Graph h = gen::degree_preserving_rewire(g, 60, rng);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(h.degree(v), g.degree(v));
  }
  EXPECT_TRUE(is_connected(h));
}

TEST(Churn, RewireActuallyChangesTheTopology) {
  Rng rng(19);
  const Graph g = gen::random_regular(96, 6, rng);
  const Graph h = gen::degree_preserving_rewire(g, 60, rng);
  std::uint32_t changed = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!h.has_edge(g.edge_u(e), g.edge_v(e))) ++changed;
  }
  EXPECT_GE(changed, 30u);  // ~60 swaps touch ~120 edge slots
}

TEST(Churn, ZeroSwapsIsIdentityUpToEdgeOrder) {
  Rng rng(21);
  const Graph g = gen::connected_gnp(50, 0.15, rng);
  const Graph h = gen::degree_preserving_rewire(g, 0, rng);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_TRUE(h.has_edge(g.edge_u(e), g.edge_v(e)));
  }
}

TEST(Churn, PipelineSurvivesRepeatedChurn) {
  Rng rng(23);
  Graph g = gen::random_regular(96, 6, rng);
  for (int epoch = 0; epoch < 3; ++epoch) {
    RoundLedger ledger;
    HierarchyParams hp;
    hp.seed = 31 + epoch;
    const Hierarchy h = Hierarchy::build(g, hp, ledger);
    HierarchicalRouter router(h);
    const auto reqs = permutation_instance(g, rng);
    const RouteStats rs = router.route(reqs, ledger, rng);
    EXPECT_EQ(rs.delivered, reqs.size()) << "epoch " << epoch;
    g = gen::degree_preserving_rewire(g, g.num_edges() / 8, rng);
  }
}

TEST(Churn, ExpansionStaysHealthyUnderChurn) {
  // Degree-preserving churn on a random regular graph keeps it an
  // expander: the mixing time stays within a constant band.
  Rng rng(25);
  Graph g = gen::random_regular(128, 6, rng);
  const auto tau0 =
      mixing_time_sampled(g, WalkKind::kLazy, 4, rng, 1u << 20);
  for (int epoch = 0; epoch < 4; ++epoch) {
    g = gen::degree_preserving_rewire(g, g.num_edges() / 4, rng);
  }
  const auto tau4 =
      mixing_time_sampled(g, WalkKind::kLazy, 4, rng, 1u << 20);
  EXPECT_LT(tau4, 4 * tau0 + 16);
  EXPECT_GT(4 * tau4 + 16, tau0);
}

}  // namespace
}  // namespace amix
