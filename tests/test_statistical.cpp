// Statistical cross-checks: estimator-vs-bruteforce sweeps on small
// graphs, partition balance over many hash draws, and walk-endpoint
// distribution checks — the "are the randomized pieces actually producing
// the distributions the proofs assume" suite.

#include <gtest/gtest.h>

#include <cmath>

#include "amix/amix.hpp"

namespace amix {
namespace {

TEST(StatSweeps, SweepExpansionUpperBoundsBruteForceEverywhere) {
  Rng rng(51);
  for (int rep = 0; rep < 10; ++rep) {
    const Graph g = gen::connected_gnp(12, 0.3, rng);
    EXPECT_GE(edge_expansion_sweep(g) + 1e-9, edge_expansion_bruteforce(g))
        << "rep " << rep;
  }
}

TEST(StatSweeps, SpectralBoundDominatesExactMixingAcrossFamilies) {
  Rng rng(53);
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"ring", gen::ring(24)});
  cases.push_back({"complete", gen::complete(16)});
  cases.push_back({"torus", gen::torus2d(5)});
  cases.push_back({"gnp", gen::connected_gnp(24, 0.3, rng)});
  cases.push_back({"star", gen::star(16)});
  for (auto& [name, g] : cases) {
    for (const WalkKind kind : {WalkKind::kLazy, WalkKind::kRegular2Delta}) {
      const auto exact = mixing_time_exact(g, kind, 1u << 22);
      const auto bound = mixing_time_spectral_bound(g, kind);
      EXPECT_GE(bound, exact) << name;
    }
  }
}

TEST(StatSweeps, PartitionBalanceHoldsAcrossManyHashDraws) {
  // P1 must hold for almost every draw of the Theta(log n)-wise hash, not
  // just a lucky seed: over 30 draws, at most a couple may fail the
  // (generous) balance test.
  Rng rng(55);
  const Graph g = gen::random_regular(256, 6, rng);
  const VirtualNodeSpace vs(g);
  int failures = 0;
  for (int draw = 0; draw < 30; ++draw) {
    KWiseHash hash(16, rng);
    const HierarchicalPartition part(vs, std::move(hash), 4, 2);
    if (!part.balanced(6.0)) ++failures;
  }
  EXPECT_LE(failures, 2);
}

TEST(StatSweeps, PartitionDigitsAreUniformish) {
  Rng rng(57);
  const Graph g = gen::random_regular(256, 6, rng);
  const VirtualNodeSpace vs(g);
  KWiseHash hash(16, rng);
  const HierarchicalPartition part(vs, std::move(hash), 8, 2);
  // Level-1 digit histogram over all vids: each of the 8 digits ~ nv/8.
  std::vector<int> hist(8, 0);
  for (Vid v = 0; v < vs.num_virtual(); ++v) ++hist[part.digit(v, 1)];
  const double expect = vs.num_virtual() / 8.0;
  for (const int h : hist) {
    EXPECT_NEAR(h, expect, 6 * std::sqrt(expect));
  }
}

TEST(StatSweeps, G0NeighborsAreNearUniformOverVids) {
  // The embedding's key distributional promise: out-neighbors of the G0
  // overlay are ~uniform over all virtual nodes (chi-square-ish check on
  // owner-node histogram).
  Rng rng(59);
  const Graph g = gen::random_regular(128, 6, rng);
  const VirtualNodeSpace vs(g);
  G0Params p;
  p.out_degree = 8;
  RoundLedger ledger;
  const G0Result res = build_g0(vs, p, rng, ledger);
  std::vector<double> owner_hits(g.num_nodes(), 0);
  double total = 0;
  for (Vid v = 0; v < res.overlay.num_nodes(); ++v) {
    for (const Vid w : res.overlay.neighbors(v)) {
      ++owner_hits[vs.owner(w)];
      ++total;
    }
  }
  const double expect = total / g.num_nodes();
  int outliers = 0;
  for (const double h : owner_hits) {
    if (std::abs(h - expect) > 5 * std::sqrt(expect)) ++outliers;
  }
  EXPECT_LE(outliers, 2);
}

TEST(StatSweeps, CoinFlipsAreFairAcrossComponents) {
  // The Boruvka head/tail coins must be ~fair and component-independent
  // (they come from shared-randomness hashing in kernel_boruvka; here we
  // check the Rng-based variant through merge progress): over many
  // iterations on a cycle, the component count must shrink geometrically.
  Rng rng(61);
  const Graph g = gen::ring(128);
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger ledger;
  const auto stats = kernel_boruvka(g, w, ledger);
  EXPECT_TRUE(is_exact_mst(g, w, stats.edges));
  // Fair coins: ~1/4 of components merge per iteration; log2(128)=7, so
  // the run should need >= 7 and <= ~50 iterations w.h.p.
  EXPECT_GE(stats.iterations, 7u);
  EXPECT_LE(stats.iterations, 60u);
}

TEST(StatSweeps, RouterVidLoadsConcentrate) {
  // Lemma 3.4's precondition across several seeds: after the scatter, the
  // max packets per virtual node stays O(log n) — never linear.
  Rng rng(63);
  const Graph g = gen::random_regular(128, 6, rng);
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 9;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  for (int rep = 0; rep < 5; ++rep) {
    const auto reqs = degree_demand_instance(g, rng);
    RoundLedger ledger;
    const auto rs = router.route(reqs, ledger, rng);
    EXPECT_EQ(rs.delivered, reqs.size());
    EXPECT_LE(rs.max_vid_load, 20u);
  }
}

}  // namespace
}  // namespace amix
