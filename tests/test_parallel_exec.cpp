// Deterministic multi-threaded execution: the ThreadPool/ExecPolicy
// substrate, the counter-keyed RNG, the sharded TokenTransport merge, and
// the end-to-end guarantee that thread counts {1, 2, 8} produce
// bit-identical SimHarness certifications — fault-free and fault-injected.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "amix/amix.hpp"

namespace amix {
namespace {

using congest::Inbox;
using congest::Message;
using congest::Outbox;
using congest::SyncNetwork;
using sim::HarnessOptions;
using sim::HarnessResult;
using sim::RunRecord;
using sim::Scenario;
using sim::SimHarness;
using sim::SimRun;

// ---------------------------------------------------------------------------
// ThreadPool / parallel_for_shards
// ---------------------------------------------------------------------------

TEST(ThreadPool, ShardRangesPartitionTheIndexSpace) {
  for (const std::size_t n : {0uL, 1uL, 7uL, 64uL, 1000uL}) {
    for (const std::uint32_t s : {1u, 2u, 3u, 8u, 16u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::uint32_t i = 0; i < s; ++i) {
        const auto [begin, end] = shard_range(n, s, i);
        EXPECT_EQ(begin, prev_end);
        EXPECT_LE(begin, end);
        covered += end - begin;
        prev_end = end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<std::uint32_t>> hits(kN);
    parallel_for_shards(ExecPolicy{threads}, kN,
                        [&](std::uint32_t, std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) {
                            hits[i].fetch_add(1, std::memory_order_relaxed);
                          }
                        });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, RunShardsIsAFullBarrier) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(64);
  pool.run_shards(64, [&](std::uint32_t s) {
    counts[s].store(1, std::memory_order_release);
  });
  for (auto& c : counts) EXPECT_EQ(c.load(std::memory_order_acquire), 1);
  // Reusable across dispatches (persistent workers, fresh job each time).
  std::atomic<int> total{0};
  pool.run_shards(16, [&](std::uint32_t) { ++total; });
  EXPECT_EQ(total.load(), 16);
}

// ---------------------------------------------------------------------------
// Counter-keyed RNG
// ---------------------------------------------------------------------------

TEST(KeyedRng, PureFunctionOfKey) {
  EXPECT_EQ(keyed_u64(1, 2, 3), keyed_u64(1, 2, 3));
  EXPECT_NE(keyed_u64(1, 2, 3), keyed_u64(1, 2, 4));
  EXPECT_NE(keyed_u64(1, 2, 3), keyed_u64(1, 3, 3));
  EXPECT_NE(keyed_u64(1, 2, 3), keyed_u64(2, 2, 3));
  EXPECT_EQ(keyed_below(9, 8, 7, 100), keyed_below(9, 8, 7, 100));
}

TEST(KeyedRng, OrderOfEvaluationCannotMatter) {
  // The defining property vs. a sequential stream: any iteration order
  // over (stream, counter) pairs yields the same draws.
  std::vector<std::uint64_t> forward, backward;
  for (std::uint64_t i = 0; i < 64; ++i) {
    for (std::uint64_t t = 0; t < 16; ++t) {
      forward.push_back(keyed_below(42, i, t, 1000));
    }
  }
  for (std::uint64_t i = 64; i-- > 0;) {
    for (std::uint64_t t = 16; t-- > 0;) {
      backward.push_back(keyed_below(42, i, t, 1000));
    }
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST(KeyedRng, BelowStaysInRangeAndIsRoughlyUniform) {
  constexpr std::uint64_t kBound = 13;
  constexpr std::uint64_t kDraws = 130000;
  std::vector<std::uint64_t> counts(kBound, 0);
  for (std::uint64_t c = 0; c < kDraws; ++c) {
    const std::uint64_t r = keyed_below(7, 1, c, kBound);
    ASSERT_LT(r, kBound);
    ++counts[r];
  }
  const double expect = static_cast<double>(kDraws) / kBound;
  for (const std::uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expect, 6 * std::sqrt(expect));
  }
  EXPECT_EQ(keyed_below(1, 2, 3, 0), 0u);
  EXPECT_EQ(keyed_below(1, 2, 3, 1), 0u);
}

// ---------------------------------------------------------------------------
// Sharded TokenTransport merge
// ---------------------------------------------------------------------------

TEST(TokenTransportShards, MergeMatchesSerialAccountingExactly) {
  Rng rng(29);
  const Graph g = gen::random_regular(64, 6, rng);
  BaseComm base(g);
  // A fixed move set, charged once serially and once through shards.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> moves;
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.next_below(g.num_nodes()));
    const auto p = static_cast<std::uint32_t>(rng.next_below(g.degree(v)));
    moves.emplace_back(v, p);
  }
  for (const std::uint32_t num_shards : {1u, 2u, 8u}) {
    TokenTransport serial(base);
    RoundLedger serial_ledger;
    for (const auto& [v, p] : moves) serial.move(v, p);
    const std::uint32_t serial_cost = serial.commit_step(serial_ledger);

    TokenTransport sharded(base);
    RoundLedger sharded_ledger;
    auto shards = sharded.make_shards(num_shards);
    for (auto& s : shards) s.begin_step(/*log_moves=*/false);
    for (std::size_t i = 0; i < moves.size(); ++i) {
      shards[i % num_shards].move(moves[i].first, moves[i].second);
    }
    const std::uint32_t sharded_cost =
        sharded.commit_step_shards(shards, sharded_ledger);

    EXPECT_EQ(sharded_cost, serial_cost) << num_shards;
    EXPECT_EQ(sharded_ledger.total(), serial_ledger.total()) << num_shards;
    EXPECT_EQ(sharded.max_node_residency(), serial.max_node_residency())
        << num_shards;
    EXPECT_EQ(sharded.total_graph_rounds(), serial.total_graph_rounds())
        << num_shards;
  }
}

// ---------------------------------------------------------------------------
// Walk engine: bit-identical trajectories at any thread count
// ---------------------------------------------------------------------------

TEST(ThreadInvariance, WalkEngineTrajectoriesAndStats) {
  Rng rng(31);
  const Graph g = gen::random_regular(256, 8, rng);
  BaseComm base(g);
  std::vector<std::uint32_t> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (int i = 0; i < 4; ++i) starts.push_back(v);
  }
  const auto run_with = [&](std::uint32_t threads) {
    ParallelWalkEngine engine(base, Rng(777), ExecPolicy{threads});
    RoundLedger ledger;
    WalkStats stats;
    const auto ends =
        engine.run(starts, WalkKind::kLazy, 24, ledger, &stats);
    return std::tuple{ends, ledger.total(), stats.max_node_load,
                      stats.max_transport_residency, stats.total_moves,
                      stats.graph_rounds};
  };
  const auto serial = run_with(1);
  EXPECT_EQ(run_with(2), serial);
  EXPECT_EQ(run_with(8), serial);

  const auto run_regular = [&](std::uint32_t threads) {
    ParallelWalkEngine engine(base, Rng(778), ExecPolicy{threads});
    RoundLedger ledger;
    WalkStats stats;
    const auto ends =
        engine.run(starts, WalkKind::kRegular2Delta, 24, ledger, &stats);
    return std::tuple{ends, ledger.total(), stats.total_moves};
  };
  EXPECT_EQ(run_regular(8), run_regular(1));
}

// The blocked SoA sweep + persistent engine scratch, on a degree-skewed
// SBM instance (block boundaries fall mid-shard, exercising partial
// blocks): trajectories, charges, and stats must be bit-identical at 1,
// 2, and 8 shards, AND across back-to-back run() calls on one engine —
// scratch reuse (transport tallies, occupancy epochs) must leak nothing
// from the previous run.
TEST(ThreadInvariance, SbmSweepAndEngineReuse) {
  Rng rng(41);
  const Graph g = gen::sbm(600, 5, 0.05, 0.004, rng);
  BaseComm base(g);
  std::vector<std::uint32_t> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    starts.push_back(v);
    if (v % 3 == 0) starts.push_back(v);  // uneven load
  }
  const auto run_twice = [&](std::uint32_t threads, WalkKind kind) {
    ParallelWalkEngine engine(base, Rng(4242), ExecPolicy{threads});
    RoundLedger ledger;
    WalkStats s1;
    WalkStats s2;
    const auto e1 = engine.run(starts, kind, 17, ledger, &s1);
    const auto e2 = engine.run(e1, kind, 17, ledger, &s2);
    return std::tuple{e1,
                      e2,
                      ledger.total(),
                      s1.total_moves,
                      s2.total_moves,
                      s1.max_node_load,
                      s2.max_node_load,
                      s1.graph_rounds,
                      s2.graph_rounds,
                      s1.max_transport_residency,
                      s2.max_transport_residency};
  };
  for (const WalkKind kind : {WalkKind::kLazy, WalkKind::kRegular2Delta}) {
    const auto serial = run_twice(1, kind);
    EXPECT_EQ(run_twice(2, kind), serial);
    EXPECT_EQ(run_twice(8, kind), serial);
  }
}

// ---------------------------------------------------------------------------
// Parallel kernel rounds
// ---------------------------------------------------------------------------

/// Race-free flood handler state: plain uint32 per node (no vector<bool>).
struct FloodState {
  std::vector<std::uint32_t> dist;
  std::vector<std::uint32_t> announced;
  explicit FloodState(NodeId n)
      : dist(n, UINT32_MAX), announced(n, 0) {}
};

TEST(ThreadInvariance, KernelFloodMatchesSerial) {
  for (const Scenario& sc : sim::seeded_corpus(17)) {
    const Graph& g = sc.graph;
    const auto flood = [&](std::uint32_t threads) {
      RoundLedger ledger;
      SyncNetwork net(g, ledger, ExecPolicy{threads});
      FloodState st(g.num_nodes());
      st.dist[0] = 0;
      const std::uint32_t quiet_at = net.run_until_quiet(
          [&](NodeId v, const Inbox& in, Outbox& out) {
            if (!in.empty()) {
              for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
                if (in.at(p).has_value()) {
                  st.dist[v] = std::min(
                      st.dist[v],
                      static_cast<std::uint32_t>(in.at(p)->a) + 1);
                }
              }
            }
            if (st.dist[v] != UINT32_MAX && !st.announced[v]) {
              st.announced[v] = 1;
              for (std::uint32_t p = 0; p < out.num_ports(); ++p) {
                out.send(p, Message{st.dist[v], 0});
              }
            }
          },
          4 * g.num_nodes() + 8);
      return std::pair{st.dist, std::pair{quiet_at, ledger.total()}};
    };
    const auto serial = flood(1);
    EXPECT_EQ(flood(2), serial) << sc.name;
    EXPECT_EQ(flood(8), serial) << sc.name;
    // Sanity: the flood actually computed BFS distances.
    const BfsTree ref = bfs_tree(g, 0);
    EXPECT_EQ(serial.first, ref.depth) << sc.name;
  }
}

TEST(ParallelExec, InboxEmptyFlagAgreesWithPortScan) {
  Rng rng(37);
  const Graph g = gen::connected_gnp(40, 0.15, rng);
  for (const std::uint32_t threads : {1u, 8u}) {
    RoundLedger ledger;
    SyncNetwork net(g, ledger, ExecPolicy{threads});
    std::atomic<std::uint64_t> checked{0};
    net.run_rounds(
        [&](NodeId v, const Inbox& in, Outbox& out) {
          bool any = false;
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            any |= in.at(p).has_value();
          }
          if (in.empty() == !any) checked.fetch_add(1);
          // Odd nodes chatter on port 0 so later rounds have arrivals.
          if (v % 2 == 1) out.send(0, Message{v, 0});
        },
        6);
    EXPECT_EQ(checked.load(), 6ull * g.num_nodes()) << threads;
  }
}

// ---------------------------------------------------------------------------
// Harness certification across thread counts (the acceptance criterion)
// ---------------------------------------------------------------------------

/// Walk + kernel + transport body, all randomness from run.rng(), all
/// substrate parallelism from run.exec().
void substrate_pipeline(SimRun& run, const Graph& g) {
  RoundLedger& ledger = run.ledger();
  BaseComm base(g);

  std::vector<std::uint32_t> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t i = 0; i < g.degree(v); ++i) starts.push_back(v);
  }
  ParallelWalkEngine engine(base, run.rng().split(), run.exec());
  WalkStats stats;
  const auto ends = engine.run(starts, WalkKind::kLazy, 12, ledger, &stats);
  run.fold_range(ends);
  run.fold(stats.graph_rounds);
  run.fold(stats.max_node_load);
  run.fold(stats.max_transport_residency);
  run.fold(stats.total_moves);

  SyncNetwork net(g, ledger, run.exec());
  std::vector<std::uint32_t> hops(g.num_nodes(), 0);
  net.run_rounds(
      [&](NodeId v, const Inbox& in, Outbox& out) {
        if (!in.empty()) {
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            if (in.at(p).has_value()) ++hops[v];
          }
        }
        out.send(static_cast<std::uint32_t>(v % g.degree(v)),
                 Message{v, hops[v]});
      },
      6);
  run.fold_range(hops);
}

TEST(ThreadInvariance, HarnessCertificationDigestsAcrossCorpus) {
  for (const Scenario& sc : sim::seeded_corpus(91)) {
    std::vector<RunRecord> records;
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      SimHarness harness(HarnessOptions{.seed = sc.seed,
                                        .replays = 1,
                                        .exec = ExecPolicy{threads}});
      const HarnessResult res = harness.run(
          [&sc](SimRun& run) { substrate_pipeline(run, sc.graph); });
      ASSERT_TRUE(res.certified())
          << sc.name << " threads=" << threads << ": " << res.mismatch_report
          << res.record.audit.first_violation;
      EXPECT_EQ(res.record.audit.under_charges, 0u);
      EXPECT_EQ(res.record.audit.over_charges, 0u);
      records.push_back(res.record);
    }
    // The acceptance criterion: thread counts 1, 2, 8 — identical ledger
    // totals, phase breakdowns, and output digests.
    EXPECT_TRUE(sim::diff_records(records[0], records[1]).empty())
        << sc.name << "\n" << sim::diff_records(records[0], records[1]);
    EXPECT_TRUE(sim::diff_records(records[0], records[2]).empty())
        << sc.name << "\n" << sim::diff_records(records[0], records[2]);
  }
}

TEST(ThreadInvariance, FaultInjectionUnderParallelExecutor) {
  const Graph g = sim::seeded_corpus(57)[0].graph;
  const auto faulted_record = [&](std::uint32_t threads,
                                  sim::FaultPlan& plan) {
    SimHarness harness(HarnessOptions{.seed = 4242,
                                      .faults = &plan,
                                      .replays = 1,
                                      .exec = ExecPolicy{threads}});
    const HarnessResult res = harness.run(
        [&g](SimRun& run) { substrate_pipeline(run, g); });
    EXPECT_TRUE(res.certified()) << res.mismatch_report
                                 << res.record.audit.first_violation;
    EXPECT_GT(res.record.audit.fault_slots, 0u);
    return res.record;
  };
  sim::MessageDropPlan drop(0.08);
  sim::DuplicationPlan dup(0.10);
  for (sim::FaultPlan* plan : {static_cast<sim::FaultPlan*>(&drop),
                               static_cast<sim::FaultPlan*>(&dup)}) {
    const RunRecord serial = faulted_record(1, *plan);
    const RunRecord threaded = faulted_record(8, *plan);
    // Stateful fault plans consume their own sequential stream; the
    // log-and-replay merge must keep that stream order-identical.
    EXPECT_TRUE(sim::diff_records(serial, threaded).empty())
        << plan->name() << "\n" << sim::diff_records(serial, threaded);
  }
}

// ---------------------------------------------------------------------------
// Hierarchy construction
// ---------------------------------------------------------------------------

/// Everything a hierarchy build produces, flattened for bit-exact
/// comparison: stats, every overlay's CSR arrays element-wise, the portal
/// table, and the charged ledger (total + per-phase).
struct HierarchyFingerprint {
  std::uint32_t retries, tau_mix, depth, beta;
  std::uint64_t build_rounds;
  std::vector<std::uint64_t> emul_parent_rounds;
  std::uint32_t g0_out_degree, level_degree;
  std::vector<std::uint32_t> level_taus;
  std::vector<std::vector<std::uint64_t>> overlay_offsets;
  std::vector<std::vector<std::uint32_t>> overlay_nbrs;
  std::vector<std::uint64_t> overlay_round_costs;
  std::uint64_t portal_digest;
  std::size_t portal_entries, portal_total;
  std::uint32_t portal_min;
  std::uint64_t ledger_total;
  std::vector<std::pair<std::string, std::uint64_t>> ledger_phases;

  bool operator==(const HierarchyFingerprint&) const = default;
};

HierarchyFingerprint build_fingerprint(const Graph& g,
                                       std::uint32_t threads) {
  HierarchyParams hp;
  hp.seed = 0x68696572617263ULL;
  hp.exec = ExecPolicy{threads};
  RoundLedger ledger;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  HierarchyFingerprint fp;
  const HierarchyStats& st = h.stats();
  fp.retries = st.retries;
  fp.tau_mix = st.tau_mix;
  fp.depth = st.depth;
  fp.beta = st.beta;
  fp.build_rounds = st.build_rounds;
  fp.emul_parent_rounds = st.emul_parent_rounds;
  fp.g0_out_degree = st.g0_out_degree;
  fp.level_degree = st.level_degree;
  fp.level_taus = st.level_taus;
  for (std::uint32_t l = 0; l <= h.depth(); ++l) {
    const CommView v = h.overlay(l).view();
    fp.overlay_offsets.emplace_back(v.offsets, v.offsets + v.num_nodes + 1);
    fp.overlay_nbrs.emplace_back(v.nbrs, v.nbrs + v.num_arcs);
    fp.overlay_round_costs.push_back(v.round_cost);
  }
  fp.portal_digest = h.portals().digest();
  fp.portal_entries = h.portals().table_entries();
  fp.portal_total = h.portals().total_candidates();
  fp.portal_min = h.portals().min_candidates();
  fp.ledger_total = ledger.total();
  fp.ledger_phases = ledger.phases();
  return fp;
}

TEST(ThreadInvariance, HierarchyBuild) {
  for (const Scenario& sc : sim::seeded_corpus(23)) {
    const HierarchyFingerprint serial = build_fingerprint(sc.graph, 1);
    EXPECT_EQ(build_fingerprint(sc.graph, 2), serial) << sc.name;
    EXPECT_EQ(build_fingerprint(sc.graph, 8), serial) << sc.name;
  }
}

TEST(ThreadInvariance, HierarchyBuildEngineReuse) {
  // Back-to-back builds through one engine (cache dropped in between so
  // the second build really rebuilds): the persistent thread pool and
  // walk-engine scratch must not leak state across builds.
  const Graph g = sim::seeded_corpus(23)[0].graph;
  const HierarchyFingerprint serial = build_fingerprint(g, 1);
  HierarchyParams hp;
  hp.seed = 0x68696572617263ULL;
  hp.exec = ExecPolicy{8};
  QueryEngine eng(g, EngineOptions{.hierarchy = hp, .exec = ExecPolicy{8}});
  for (int round = 0; round < 2; ++round) {
    eng.cache().invalidate_all();
    const auto lookup = eng.cache().get_or_build(g, hp);
    ASSERT_TRUE(lookup.built);
    const Hierarchy& h = lookup.entry->hierarchy();
    EXPECT_EQ(h.portals().digest(), serial.portal_digest) << round;
    EXPECT_EQ(h.stats().build_rounds, serial.build_rounds) << round;
    EXPECT_EQ(lookup.entry->build_rounds(), serial.ledger_total) << round;
  }
}

}  // namespace
}  // namespace amix
