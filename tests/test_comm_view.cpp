// CommView equivalence pins: the flat CSR view a CommGraph hands to the
// hot loops must be a pure re-description of the virtual interface —
// same degrees, same port->neighbor mapping, same arc indices, same
// cached scalars — on every graph shape the simulator runs, including
// the hierarchy's built overlays. A drift here would silently change
// ledger charges and walk trajectories, so these tests compare the two
// interfaces element by element instead of sampling.
//
// Also pinned: CsrBuilder (the arc-stream CSR construction the hierarchy
// builders use) must produce the exact per-node port numbering that the
// legacy vector-of-vectors OverlayComm constructor produced for the same
// arc arrival order, since arc indices feed the CONGEST capacity
// accounting.

#include <gtest/gtest.h>

#include "amix/amix.hpp"

namespace amix {
namespace {

void ExpectViewMatchesVirtual(const CommGraph& g) {
  const CommView v = g.view();
  ASSERT_EQ(v.num_nodes, g.num_nodes());
  ASSERT_EQ(v.num_arcs, g.num_arcs());
  EXPECT_EQ(v.max_degree, g.max_degree());
  EXPECT_EQ(v.round_cost, g.round_cost());
  ASSERT_NE(v.offsets, nullptr);
  EXPECT_EQ(v.offsets[0], 0u);
  EXPECT_EQ(v.offsets[v.num_nodes], v.num_arcs);
  for (std::uint32_t node = 0; node < v.num_nodes; ++node) {
    ASSERT_EQ(v.degree(node), g.degree(node)) << "node " << node;
    for (std::uint32_t port = 0; port < v.degree(node); ++port) {
      ASSERT_EQ(v.neighbor(node, port), g.neighbor(node, port))
          << "node " << node << " port " << port;
      ASSERT_EQ(v.arc_index(node, port), g.arc_index(node, port))
          << "node " << node << " port " << port;
    }
    const std::span<const std::uint32_t> row = v.neighbors(node);
    ASSERT_EQ(row.size(), v.degree(node));
  }
}

TEST(CommView, MatchesVirtualOnBaseCorpus) {
  Rng rng(11);
  const Graph graphs[] = {
      gen::random_regular(64, 6, rng),  gen::connected_gnp(48, 0.12, rng),
      gen::matching_expander(64, 8, rng), gen::ring(17),
      gen::star(9),                     gen::torus2d(6),
      gen::complete(12),
  };
  for (const Graph& g : graphs) {
    BaseComm base(g);
    ExpectViewMatchesVirtual(base);
  }
}

TEST(CommView, MatchesVirtualOnAdjacencyOverlay) {
  // Hand-built overlay with irregular degrees, a zero-degree node, and a
  // non-unit round cost.
  const std::vector<std::vector<std::uint32_t>> adj = {
      {1, 2, 3}, {0, 0, 2}, {1, 0}, {0}, {} /* isolated */, {4},
  };
  const OverlayComm overlay(adj, /*round_cost=*/7);
  ExpectViewMatchesVirtual(overlay);
  EXPECT_EQ(overlay.view().round_cost, 7u);
  EXPECT_EQ(overlay.view().degree(4), 0u);
}

TEST(CommView, MatchesVirtualOnHierarchyOverlays) {
  Rng rng(23);
  const Graph g = gen::random_regular(96, 8, rng);
  HierarchyParams hp;
  hp.seed = 99;
  RoundLedger ledger;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  for (std::uint32_t level = 0; level <= h.depth(); ++level) {
    SCOPED_TRACE("level " + std::to_string(level));
    ExpectViewMatchesVirtual(h.overlay(level));
    EXPECT_GE(h.overlay(level).view().round_cost, 1u);
  }
}

TEST(CommView, CsrBuilderReproducesLegacyPortNumbering) {
  // Same arc stream through both constructions: nested push_back lists
  // (the legacy representation) and CsrBuilder's counting sort. Port
  // numbering must match exactly, not just as sets.
  Rng rng(5);
  const std::uint32_t n = 57;
  std::vector<std::vector<std::uint32_t>> adj(n);
  CsrBuilder builder(n);
  for (int i = 0; i < 600; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    if (rng.next_below(2) == 0) {
      adj[a].push_back(b);
      builder.add_arc(a, b);
    } else {
      adj[a].push_back(b);
      adj[b].push_back(a);
      builder.add_edge(a, b);
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    ASSERT_EQ(builder.degree(v), adj[v].size());
  }
  const OverlayComm legacy(adj, /*round_cost=*/3);
  const OverlayComm flat = std::move(builder).finish(/*round_cost=*/3);
  ASSERT_EQ(flat.num_nodes(), legacy.num_nodes());
  ASSERT_EQ(flat.num_arcs(), legacy.num_arcs());
  EXPECT_EQ(flat.max_degree(), legacy.max_degree());
  for (std::uint32_t v = 0; v < n; ++v) {
    ASSERT_EQ(flat.degree(v), legacy.degree(v)) << "node " << v;
    for (std::uint32_t p = 0; p < flat.degree(v); ++p) {
      ASSERT_EQ(flat.neighbor(v, p), legacy.neighbor(v, p))
          << "node " << v << " port " << p;
      ASSERT_EQ(flat.arc_index(v, p), legacy.arc_index(v, p))
          << "node " << v << " port " << p;
    }
  }
  ExpectViewMatchesVirtual(flat);
}

TEST(CommView, WalksAgreeAcrossConstructionPaths) {
  // End-to-end pin: the same walk run against the two overlay
  // constructions produces identical trajectories and identical ledger
  // charges (arc indices feed the congestion accounting).
  Rng rng(31);
  const Graph g = gen::random_regular(64, 6, rng);
  std::vector<std::vector<std::uint32_t>> adj(g.num_nodes());
  CsrBuilder builder(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Arc& a : g.arcs(v)) {
      adj[v].push_back(a.to);
      builder.add_arc(v, a.to);
    }
  }
  const OverlayComm legacy(adj, /*round_cost=*/2);
  const OverlayComm flat = std::move(builder).finish(/*round_cost=*/2);

  std::vector<std::uint32_t> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    starts.push_back(v);
    starts.push_back(v);
  }
  RoundLedger ledger_legacy;
  RoundLedger ledger_flat;
  WalkStats stats_legacy{};
  WalkStats stats_flat{};
  ParallelWalkEngine eng_legacy(legacy, Rng(77), ExecPolicy{});
  ParallelWalkEngine eng_flat(flat, Rng(77), ExecPolicy{});
  const auto end_legacy = eng_legacy.run(starts, WalkKind::kLazy, 24,
                                         ledger_legacy, &stats_legacy);
  const auto end_flat =
      eng_flat.run(starts, WalkKind::kLazy, 24, ledger_flat, &stats_flat);
  EXPECT_EQ(end_legacy, end_flat);
  EXPECT_EQ(ledger_legacy.total(), ledger_flat.total());
  EXPECT_EQ(stats_legacy.total_moves, stats_flat.total_moves);
  EXPECT_EQ(stats_legacy.max_node_load, stats_flat.max_node_load);
  EXPECT_EQ(stats_legacy.max_transport_residency,
            stats_flat.max_transport_residency);
}

}  // namespace
}  // namespace amix
