// Scenario: congested-clique emulation on a datacenter-style random graph.
//
// Theorem 1.3's corollary: a G(n,p) network above the connectivity
// threshold can emulate one round of the congested clique — every node
// sends a distinct O(log n)-bit message to every other node, the all-to-all
// personalized exchange at the heart of shuffle/allreduce steps — in
// ~O(1/p + log n) phases of routing. This example sweeps p on a fixed
// cluster and reports phases and rounds against the Omega(n/h(G)) cut bound.
//
// Run:  ./example_cluster_allreduce [n]

#include <cstdlib>
#include <iostream>

#include "amix/amix.hpp"

int main(int argc, char** argv) {
  using namespace amix;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 96;

  Rng rng(777);
  Table t({"p", "avg_degree", "h(G)~", "phases", "phases*p", "rounds",
           "n/h lower bnd"});

  for (const double p : {0.12, 0.2, 0.35, 0.6}) {
    const Graph g = gen::connected_gnp(n, p, rng);
    const double h_est = edge_expansion_sweep(g);

    RoundLedger build;
    HierarchyParams hp;
    hp.seed = 1000 + static_cast<std::uint64_t>(p * 100);
    const Hierarchy h = Hierarchy::build(g, hp, build);

    const CliqueEmulator emu(h);
    RoundLedger ledger;
    const auto stats = emu.emulate_round(ledger, rng, h_est);

    double avg_deg = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) avg_deg += g.degree(v);
    avg_deg /= g.num_nodes();

    t.row()
        .add(p, 2)
        .add(avg_deg, 1)
        .add(h_est, 2)
        .add(std::uint64_t{stats.phases})
        .add(stats.phases * p, 2)
        .add(stats.rounds)
        .add(stats.lower_bound, 1);
  }
  t.print_report(std::cout, "clique emulation on G(n,p), n=" +
                                std::to_string(n));
  std::cout << "phases*p staying ~constant is the O(1/p) corollary; denser\n"
               "clusters emulate the clique in proportionally fewer "
               "phases.\n";

  // The payoff: run a congested-clique ALGORITHM through the emulation —
  // full Boruvka needs only O(log n) clique rounds.
  {
    const Graph g = gen::connected_gnp(n, 0.2, rng);
    const Weights w = distinct_random_weights(g, rng);
    RoundLedger ledger;
    HierarchyParams hp;
    hp.seed = 4242;
    const Hierarchy h = Hierarchy::build(g, hp, ledger);
    const auto stats = clique_mst(h, w, ledger);
    std::cout << "\nclique-algorithm demo: MST via clique emulation in "
              << stats.clique_rounds << " clique rounds ("
              << stats.rounds << " emulated CONGEST rounds); exact="
              << (is_exact_mst(g, w, stats.edges) ? "yes" : "NO") << "\n";
  }
  return 0;
}
