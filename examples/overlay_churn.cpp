// Scenario: overlay churn.
//
// The paper's motivating P2P systems (Chord, DEX, self-healing expanders)
// keep a bounded-degree expander under continuous membership churn. This
// example drifts the topology through degree-preserving rewires epoch
// after epoch, rebuilds the routing structure per epoch, and shows that
// the structure cost and routing cost stay stable: expansion (and hence
// tau_mix) is a property of the construction, not of one lucky topology.
//
// Run:  ./example_overlay_churn [peers] [epochs]

#include <cstdlib>
#include <iostream>

#include "amix/amix.hpp"

int main(int argc, char** argv) {
  using namespace amix;
  const NodeId peers =
      argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 256;
  const std::uint32_t epochs = argc > 2 ? std::atoi(argv[2]) : 5;

  Rng rng(20260705);
  Graph overlay = gen::random_regular(peers, 8, rng);

  Table t({"epoch", "tau_mix", "build_rounds", "route_rounds", "delivered"});
  for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
    RoundLedger ledger;
    HierarchyParams hp;
    hp.seed = 100 + epoch;
    const Hierarchy h = Hierarchy::build(overlay, hp, ledger);
    const std::uint64_t build = ledger.total();

    HierarchicalRouter router(h);
    const auto reqs = permutation_instance(overlay, rng);
    const RouteStats rs = router.route(reqs, ledger, rng);

    t.row()
        .add(std::uint64_t{epoch})
        .add(std::uint64_t{h.stats().tau_mix})
        .add(build)
        .add(rs.total_rounds)
        .add(std::to_string(rs.delivered) + "/" + std::to_string(rs.packets));

    // Churn: ~10% of the links are rewired before the next epoch.
    overlay = gen::degree_preserving_rewire(
        overlay, overlay.num_edges() / 10, rng);
  }
  t.print_report(std::cout, "overlay churn (" + std::to_string(peers) +
                                " peers, 8-regular)");
  std::cout << "tau_mix and costs stay flat across epochs: expansion is\n"
               "maintained by the degree-preserving churn, so the paper's\n"
               "parameterization keeps paying off after every rebuild.\n";
  return 0;
}
