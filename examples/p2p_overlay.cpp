// Scenario: point-to-point messaging in a peer-to-peer overlay.
//
// The paper's introduction motivates the mixing-time parameterization with
// P2P/overlay networks (Chord, DEX, self-healing expanders ...): bounded-
// degree graphs maintained to have good expansion, where no node knows the
// global topology. This example builds such an overlay (union of random
// matchings, the classic construction), simulates a "DHT lookup storm" —
// every peer messages a random other peer — and compares:
//   * the paper's hierarchical router (after a one-time structure build),
//   * naive store-and-forward over BFS paths (needs global routing tables!),
//   * random-walk forwarding (needs nothing, delivers almost nothing).
//
// Run:  ./example_p2p_overlay [peers] [degree]

#include <cstdlib>
#include <iostream>

#include "amix/amix.hpp"

int main(int argc, char** argv) {
  using namespace amix;
  const NodeId peers =
      argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 512;
  const std::uint32_t degree = argc > 2 ? std::atoi(argv[2]) : 8;

  Rng rng(4242);
  const Graph overlay = gen::matching_expander(peers, degree, rng);
  std::cout << "p2p overlay: " << peers << " peers, degree " << degree
            << ", diameter~" << diameter_double_sweep(overlay) << "\n";

  RoundLedger build;
  HierarchyParams hp;
  const Hierarchy h = Hierarchy::build(overlay, hp, build);
  std::cout << "one-time structure build: " << build.total()
            << " rounds (tau_mix=" << h.stats().tau_mix << ")\n\n";

  // The lookup storm: a random permutation of peer-to-peer requests.
  const auto storm = permutation_instance(overlay, rng);

  Table t({"router", "delivered", "undelivered", "rounds", "notes"});

  {
    HierarchicalRouter router(h);
    RoundLedger ledger;
    const auto rs = router.route(storm, ledger, rng);
    t.row()
        .add("hierarchical (this paper)")
        .add(std::uint64_t{rs.delivered})
        .add(std::uint64_t{rs.packets - rs.delivered})
        .add(rs.total_rounds)
        .add("local knowledge only");
  }
  {
    const ShortestPathRouter router(overlay);
    RoundLedger ledger;
    const auto rs = router.route(storm, ledger);
    t.row()
        .add("store-and-forward BFS")
        .add(std::uint64_t{rs.delivered})
        .add(std::uint64_t{rs.undelivered})
        .add(rs.rounds)
        .add("needs global routing tables");
  }
  {
    const RandomWalkRouter router(overlay);
    RoundLedger ledger;
    const auto rs =
        router.route(storm, ledger, rng, 4ULL * h.stats().tau_mix);
    t.row()
        .add("random-walk forwarding")
        .add(std::uint64_t{rs.delivered})
        .add(std::uint64_t{rs.undelivered})
        .add(rs.rounds)
        .add("walk budget 4 x tau_mix");
  }
  t.print_report(std::cout, "p2p lookup storm");

  std::cout << "takeaway: walks of mixing length land on *random* peers —\n"
               "the hierarchy is what turns mixing into addressable "
               "routing.\n";
  return 0;
}
