// Quickstart: the full pipeline on one expander, in ~40 lines of API use.
//
//   build graph -> build hierarchy -> route a permutation -> compute MST.
//
// Run:  ./example_quickstart [n] [degree]

#include <cstdlib>
#include <iostream>

#include "amix/amix.hpp"

int main(int argc, char** argv) {
  using namespace amix;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 512;
  const std::uint32_t d = argc > 2 ? std::atoi(argv[2]) : 8;

  Rng rng(2017);
  const Graph g = gen::random_regular(n, d, rng);
  std::cout << "graph: random " << d << "-regular, n=" << n
            << ", m=" << g.num_edges() << "\n";

  // 1. Build the hierarchical routing structure (Section 3.1).
  RoundLedger ledger;
  HierarchyParams hp;
  const Hierarchy h = Hierarchy::build(g, hp, ledger);
  std::cout << "hierarchy: beta=" << h.beta() << " depth=" << h.depth()
            << " tau_mix=" << h.stats().tau_mix
            << " build_rounds=" << ledger.total() << "\n";
  for (const auto& [phase, rounds] : ledger.phases()) {
    std::cout << "  " << phase << ": " << rounds << " rounds\n";
  }

  // 2. Permutation routing (Theorem 1.2).
  const auto reqs = permutation_instance(g, rng);
  HierarchicalRouter router(h);
  RoundLedger route_ledger;
  const RouteStats rs = router.route(reqs, route_ledger, rng);
  std::cout << "routing: " << rs.delivered << "/" << rs.packets
            << " packets delivered in " << rs.total_rounds
            << " rounds (= " << rs.total_rounds / h.stats().tau_mix
            << " x tau_mix)\n";

  // 3. Minimum spanning tree (Theorem 1.1), verified against Kruskal.
  const Weights w = distinct_random_weights(g, rng);
  RoundLedger mst_ledger;
  const MstStats ms = HierarchicalBoruvka(h, w).run(mst_ledger);
  std::cout << "mst: " << ms.edges.size() << " edges in " << ms.iterations
            << " Boruvka iterations, " << ms.rounds << " rounds; exact="
            << (is_exact_mst(g, w, ms.edges) ? "yes" : "NO") << "\n";
  return 0;
}
