// Quickstart: the full pipeline on one expander, through the Session
// facade — open a session, ask for routing / MST / a clique round, read
// the unified reports. The first call builds the hierarchy (Section 3.1);
// the rest hit the session's cache. The explicit low-level layer
// (Hierarchy::build + HierarchicalRouter / HierarchicalBoruvka) is shown
// in README.md for when you need control over construction or charging.
//
// Run:  ./example_quickstart [n] [degree]

#include <cstdlib>
#include <iostream>

#include "amix/amix.hpp"

int main(int argc, char** argv) {
  using namespace amix;
  const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 512;
  const std::uint32_t d = argc > 2 ? std::atoi(argv[2]) : 8;

  Rng rng(2017);
  const Graph g = gen::random_regular(n, d, rng);
  std::cout << "graph: random " << d << "-regular, n=" << n
            << ", m=" << g.num_edges() << "\n";

  auto session = Session::open(g);

  // 1. Permutation routing (Theorem 1.2). The call builds the hierarchy.
  const QueryReport routed = session.route(permutation_instance(g, rng));
  const Hierarchy& h =
      session.engine().cache().find(g, HierarchyParams{})->hierarchy();
  std::cout << "hierarchy: beta=" << h.beta() << " depth=" << h.depth()
            << " tau_mix=" << h.stats().tau_mix << " build_rounds="
            << session.ledger().phase_total("hierarchy-build") << "\n";
  std::cout << "routing: " << routed.route->delivered << "/"
            << routed.route->packets << " packets delivered in "
            << routed.rounds << " rounds (= "
            << routed.rounds / h.stats().tau_mix << " x tau_mix)\n";

  // 2. Minimum spanning tree (Theorem 1.1) — cache hit, verified exact.
  const Weights w = distinct_random_weights(g, rng);
  const QueryReport mst = session.mst(w);
  std::cout << "mst: " << mst.mst->edges.size() << " edges in "
            << mst.mst->iterations << " Boruvka iterations, " << mst.rounds
            << " rounds; exact="
            << (is_exact_mst(g, w, mst.mst->edges) ? "yes" : "NO") << "\n";

  // 3. One emulated clique round (Theorem 1.3), for good measure.
  const QueryReport clique = session.clique_round();
  std::cout << "clique: " << clique.clique->messages << " messages in "
            << clique.rounds << " rounds (" << clique.clique->phases
            << " phases)\n";

  std::cout << "session total: " << session.ledger().total()
            << " rounds across " << session.calls() << " calls\n";
  return (routed.ok && mst.ok && clique.ok) ? 0 : 1;
}
