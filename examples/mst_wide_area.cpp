// Scenario: spanning-tree construction for a wide-area overlay.
//
// A service picks a minimum-latency spanning tree over its overlay links
// (weights = measured RTTs, clustered by region). We run all three MST
// engines on two topologies from opposite ends of the mixing spectrum —
// a well-connected overlay (expander) and a chain-of-regions topology
// (ring of cliques) — and verify every result against Kruskal.
//
// Run:  ./example_mst_wide_area [nodes_per_region] [regions]

#include <cstdlib>
#include <iostream>

#include "amix/amix.hpp"

namespace {

// Ring of cliques: `regions` cliques of `k` nodes, consecutive regions
// joined by a few links — a realistic "chain of datacenters".
amix::Graph ring_of_cliques(amix::NodeId k, amix::NodeId regions,
                            amix::Rng& rng) {
  using namespace amix;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId r = 0; r < regions; ++r) {
    const NodeId base = r * k;
    for (NodeId a = 0; a < k; ++a) {
      for (NodeId b = a + 1; b < k; ++b) {
        edges.emplace_back(base + a, base + b);
      }
    }
    const NodeId next = ((r + 1) % regions) * k;
    for (int link = 0; link < 2; ++link) {
      edges.emplace_back(base + rng.next_below(k),
                         next + rng.next_below(k));
    }
  }
  // Deduplicate the random inter-region links.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Graph::from_edges(k * regions, edges);
}

void run_instance(const std::string& name, const amix::Graph& g,
                  amix::Rng& rng) {
  using namespace amix;
  const Weights w = clustered_weights(g, rng, 8);  // RTT-like, region-biased

  Table t({"engine", "rounds", "iterations", "exact"});

  RoundLedger hl;
  HierarchyParams hp;
  hp.seed = 99 + g.num_nodes();
  const Hierarchy h = Hierarchy::build(g, hp, hl);
  const MstStats hs = HierarchicalBoruvka(h, w).run(hl);
  t.row()
      .add("hierarchical (paper)")
      .add(hs.rounds)
      .add(std::uint64_t{hs.iterations})
      .add(is_exact_mst(g, w, hs.edges) ? "yes" : "NO");

  RoundLedger fl;
  const auto fs = flood_boruvka(g, w, fl);
  t.row()
      .add("flood/GHS baseline")
      .add(fs.rounds)
      .add(std::uint64_t{fs.iterations})
      .add(is_exact_mst(g, w, fs.edges) ? "yes" : "NO");

  RoundLedger pl;
  const auto ps = pipelined_boruvka(g, w, pl);
  t.row()
      .add("pipelined/GKP baseline")
      .add(ps.rounds)
      .add(std::uint64_t{ps.iterations})
      .add(is_exact_mst(g, w, ps.edges) ? "yes" : "NO");

  t.print_report(std::cout, name + " (n=" + std::to_string(g.num_nodes()) +
                                ", tau_mix=" +
                                std::to_string(h.stats().tau_mix) + ")");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amix;
  const NodeId k = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 16;
  const NodeId regions = argc > 2 ? static_cast<NodeId>(std::atoi(argv[2])) : 12;

  Rng rng(31337);
  run_instance("well-connected overlay (8-regular expander)",
               gen::random_regular(k * regions, 8, rng), rng);
  run_instance("chain of regions (ring of cliques)",
               ring_of_cliques(k, regions, rng), rng);
  std::cout << "note how the expander keeps tau_mix small while the chain\n"
               "topology inflates it — exactly the regime split of the "
               "paper.\n";
  return 0;
}
