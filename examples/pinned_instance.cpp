// Scenario: pinned, shareable experiment instances.
//
// Reproducibility workflow: generate a weighted instance once, save it to
// a text file, reload it later (or on another machine) and verify that the
// whole pipeline produces identical results — the library is deterministic
// given (instance, seeds).
//
// Run:  ./example_pinned_instance [path]

#include <cstdlib>
#include <iostream>

#include "amix/amix.hpp"
#include "graph/io.hpp"

int main(int argc, char** argv) {
  using namespace amix;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/amix_pinned_instance.graph";

  // Produce and pin an instance.
  Rng rng(20170725);  // the PODC'17 conference date
  const Graph g = gen::random_regular(256, 8, rng);
  const Weights w = distinct_random_weights(g, rng);
  save_graph(path, g, &w);
  std::cout << "pinned instance written to " << path << " (n="
            << g.num_nodes() << ", m=" << g.num_edges() << ")\n";

  // A "different machine": reload and run everything from the file.
  const GraphFile loaded = load_graph(path);
  AMIX_CHECK(loaded.weights.has_value());

  auto run = [](const Graph& graph, const Weights& weights) {
    RoundLedger ledger;
    HierarchyParams hp;
    hp.seed = 1;
    const Hierarchy h = Hierarchy::build(graph, hp, ledger);
    Rng r(2);
    HierarchicalRouter router(h);
    const auto reqs = permutation_instance(graph, r);
    router.route(reqs, ledger, r);
    const auto ms = HierarchicalBoruvka(h, weights).run(ledger);
    AMIX_CHECK(is_exact_mst(graph, weights, ms.edges));
    return std::pair{ledger.total(), ms.edges};
  };

  const auto [rounds_a, mst_a] = run(g, w);
  const auto [rounds_b, mst_b] = run(loaded.graph, *loaded.weights);

  std::cout << "original run:  " << rounds_a << " total rounds, MST weight "
            << w.total(mst_a) << "\n";
  std::cout << "reloaded run:  " << rounds_b << " total rounds, MST weight "
            << loaded.weights->total(mst_b) << "\n";
  std::cout << (rounds_a == rounds_b && mst_a == mst_b
                    ? "bit-for-bit reproducible: yes\n"
                    : "bit-for-bit reproducible: NO (bug!)\n");
  return rounds_a == rounds_b && mst_a == mst_b ? 0 : 1;
}
