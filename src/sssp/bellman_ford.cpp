#include "sssp/bellman_ford.hpp"

#include <algorithm>
#include <queue>

#include "congest/network.hpp"
#include "graph/traversal.hpp"
#include "obs/trace.hpp"

namespace amix {

SsspStats distributed_sssp(const Graph& g, const Weights& w, NodeId source,
                           RoundLedger& ledger, std::uint32_t max_hops) {
  AMIX_CHECK(g.num_nodes() >= 1);
  AMIX_CHECK_MSG(source < g.num_nodes(), "sssp: source out of range");
  const NodeId n = g.num_nodes();
  const std::uint64_t rounds_at_entry = ledger.total();

  SsspStats out;
  out.source = source;
  out.max_hops = max_hops;
  out.dist.assign(n, kUnreachedDist);
  out.dist[source] = 0;

  // fresh[v]: v improved (or is the source, initially) and must announce
  // its distance next round. Handler for node v touches only index v.
  std::vector<std::uint8_t> fresh(n, 0);
  fresh[source] = 1;
  std::uint64_t relaxations = 0;

  const congest::SyncNetwork::Handler handler =
      [&](NodeId v, const congest::Inbox& in, congest::Outbox& outbox) {
        if (!in.empty()) {
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            const auto slot = in.at(p);
            if (!slot.has_value()) continue;
            const std::uint64_t wt = w[g.edge_at(v, p)];
            // Saturating add: an unreachable announcement cannot occur
            // (only finite dists are sent), but guard overflow anyway.
            const std::uint64_t cand =
                slot->a > kUnreachedDist - wt ? kUnreachedDist : slot->a + wt;
            if (cand < out.dist[v]) {
              out.dist[v] = cand;
              fresh[v] = 1;
              ++relaxations;
            }
          }
        }
        if (fresh[v]) {
          fresh[v] = 0;
          for (std::uint32_t p = 0; p < outbox.num_ports(); ++p) {
            outbox.send(p, {out.dist[v], 0});
          }
        }
      };

  {
    PhaseScope scope(ledger, "sssp");
    congest::SyncNetwork net(g, scope.ledger());
    if (max_hops != 0) {
      // H relaxation iterations: the source's round-0 announcement plus
      // H forwarding rounds reach every <=H-edge shortest path.
      net.run_rounds(handler,
                     std::min<std::uint32_t>(max_hops + 1, n + 1));
    } else {
      net.run_until_quiet(handler, n + 2);
    }
    out.kernel_rounds = net.rounds_executed();
  }

  out.relaxations = relaxations;
  for (NodeId v = 0; v < n; ++v) {
    if (out.dist[v] == kUnreachedDist) continue;
    ++out.reached;
    out.max_dist = std::max(out.max_dist, out.dist[v]);
    out.dist_sum += out.dist[v];
  }

  // Central certificates. Soundness: every dist is a true upper bound
  // (checked against the sequential oracle — a hop-bounded run may hold a
  // stale-but-real path length no single edge witnesses). Relaxedness: no
  // edge could still improve an endpoint, i.e. the distances are exact.
  const std::vector<std::uint64_t> oracle = dijkstra_distances(g, w, source);
  out.sound = out.dist[source] == 0;
  for (NodeId v = 0; v < n && out.sound; ++v) {
    if (out.dist[v] < oracle[v]) out.sound = false;
  }
  out.relaxed = true;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId u = g.edge_u(e), v = g.edge_v(e);
    const std::uint64_t du = out.dist[u], dv = out.dist[v];
    if (du != kUnreachedDist && dv > du + w[e]) out.relaxed = false;
    if (dv != kUnreachedDist && du > dv + w[e]) out.relaxed = false;
  }

  out.rounds = ledger.total() - rounds_at_entry;

  // Ghaffari–Li SSSP envelope: kernel rounds vs the source's hop
  // eccentricity (the unweighted lower bound; weighted shortest paths may
  // take more hops, which is exactly the measured constant).
  if (obs::recorder() != nullptr && out.reached == n) {
    const std::vector<std::uint32_t> hops = bfs_distances(g, source);
    std::uint32_t ecc = 0;
    for (const std::uint32_t h : hops) ecc = std::max(ecc, h);
    obs::metric_gauge_max(
        "glsssp/rounds_over_hopecc_x1000",
        obs::ratio_x1000(out.kernel_rounds, std::uint64_t{ecc} + 2));
    obs::metric_gauge_max("sssp/kernel_rounds", out.kernel_rounds);
  }
  return out;
}

std::vector<std::uint64_t> dijkstra_distances(const Graph& g,
                                              const Weights& w,
                                              NodeId source) {
  AMIX_CHECK(source < g.num_nodes());
  std::vector<std::uint64_t> dist(g.num_nodes(), kUnreachedDist);
  dist[source] = 0;
  using Item = std::pair<std::uint64_t, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, source});
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    for (const Arc a : g.arcs(v)) {
      const std::uint64_t cand = d + w[a.edge];
      if (cand < dist[a.to]) {
        dist[a.to] = cand;
        pq.push({cand, a.to});
      }
    }
  }
  return dist;
}

}  // namespace amix
