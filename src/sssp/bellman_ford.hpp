#pragma once

// Single-source shortest paths by distributed Bellman–Ford on the
// CONGEST kernel, with an optional hop bound.
//
// The Ghaffari–Li catalogue (arXiv 1805.04764) reaches SSSP by
// transforming parallel hopset/relaxation algorithms; the relaxation
// step itself is edge-local, so it ports to one CONGEST round per
// parallel iteration. Unbounded, the run continues to a quiet round —
// the network-detectable certificate that no edge can relax further,
// i.e. the distances are exact. With `max_hops = H` the run is cut off
// after H relaxation iterations, yielding the classic hop-bounded
// approximation (exact on all shortest paths of at most H edges): the
// regime the transformation framework accelerates, since few iterations
// of the parallel algorithm dominate the cost.
//
// Distances only ever enter the system as 0 at the source or as a
// received distance plus a real incident-edge weight, so every finite
// dist is the length of a real path — an upper bound on the true
// distance — regardless of faults. Central verification then checks
// soundness (every finite dist is witnessed by an in-edge) and, for the
// unbounded run, exactness (`relaxed`); kernel message drops surface as
// a failed certificate, never as a silently wrong distance.

#include <cstdint>
#include <vector>

#include "congest/round_ledger.hpp"
#include "graph/weighted_graph.hpp"

namespace amix {

/// Distance of an unreached node.
inline constexpr std::uint64_t kUnreachedDist = ~0ULL;

struct SsspStats {
  NodeId source = 0;
  std::uint32_t max_hops = 0;       // 0 = ran to the quiet certificate
  std::uint64_t reached = 0;        // nodes with a finite distance
  std::uint64_t max_dist = 0;       // over reached nodes
  std::uint64_t dist_sum = 0;       // over reached nodes
  std::uint64_t relaxations = 0;    // distance improvements applied
  std::uint64_t kernel_rounds = 0;
  std::uint64_t rounds = 0;         // total charged
  bool sound = false;               // every finite dist witnessed by an edge
  bool relaxed = false;             // no improving edge remained (exact)
  std::vector<std::uint64_t> dist;  // per node; kUnreachedDist if unreached
};

/// Run Bellman–Ford from `source` under `w`. `max_hops = 0` runs to the
/// quiet round (exact distances, certified); `max_hops = H` stops after H
/// relaxation iterations. Deterministic — the algorithm has no
/// randomness. Charges land on `ledger` under "sssp".
SsspStats distributed_sssp(const Graph& g, const Weights& w, NodeId source,
                           RoundLedger& ledger, std::uint32_t max_hops = 0);

/// Sequential Dijkstra oracle (tests and envelope accounting): exact
/// distances, same kUnreachedDist convention.
std::vector<std::uint64_t> dijkstra_distances(const Graph& g,
                                              const Weights& w,
                                              NodeId source);

}  // namespace amix
