#pragma once

// Umbrella header: the public API of the amix library.
//
// amix reproduces "Distributed MST and Routing in Almost Mixing Time"
// (Ghaffari, Kuhn, Su — PODC 2017) as a single-machine CONGEST-round
// simulation. The Session facade is the one-object entry point:
//
//   amix::Rng rng(1);
//   amix::Graph g = amix::gen::random_regular(1024, 8, rng);
//   auto session = amix::Session::open(g);
//
//   auto routed = session.route(amix::permutation_instance(g, rng));
//   auto mst = session.mst(amix::distinct_random_weights(g, rng));
//   // routed.rounds, mst.rounds, session.ledger().total(), ...
//
// The explicit layer underneath (Hierarchy::build + HierarchicalRouter /
// HierarchicalBoruvka / CliqueEmulator, each charging a RoundLedger) is
// the documented low-level API when you need control over hierarchy
// construction or round accounting. See README.md for the architecture
// overview and DESIGN.md for the paper-to-module map.
//
// Includes are grouped bottom-up by layer.

// Utilities: deterministic randomness, thread pool, stats, tables.
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

// Graphs: topology, generators, weights, sequential oracles.
#include "graph/exact_mincut.hpp"
#include "graph/exact_mst.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/spectral.hpp"
#include "graph/traversal.hpp"
#include "graph/weighted_graph.hpp"

// CONGEST substrate: communication graphs, transports, round accounting.
#include "congest/comm_graph.hpp"
#include "congest/instrument.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "congest/round_ledger.hpp"
#include "congest/token_transport.hpp"

// Random walks: parallel walk engine, mixing, estimators.
#include "randwalk/anonymous.hpp"
#include "randwalk/mixing.hpp"
#include "randwalk/tau_estimator.hpp"
#include "randwalk/walk_engine.hpp"

// The hierarchy of Lemmas 3.1-3.3: the shared routing substrate.
#include "hierarchy/hierarchy.hpp"

// Theorems on top of the hierarchy: routing, MST, mincut, clique — plus
// the Ghaffari–Li transformation ops (matching, SSSP).
#include "matching/parallel_matching.hpp"
#include "mincut/tree_packing.hpp"
#include "mst/baseline_mst.hpp"
#include "mst/clique_mst.hpp"
#include "mst/hierarchical_boruvka.hpp"
#include "mst/kernel_boruvka.hpp"
#include "mst/verify.hpp"
#include "routing/baseline_routers.hpp"
#include "routing/clique_emulation.hpp"
#include "routing/hierarchical_router.hpp"
#include "routing/request.hpp"
#include "sssp/bellman_ford.hpp"

// Observability: tracing, metrics, paper-bound checking.
#include "obs/bound_checker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Simulation harness: determinism certification, faults, scenarios.
#include "sim/conformance.hpp"
#include "sim/fault_plan.hpp"
#include "sim/harness.hpp"
#include "sim/scenario.hpp"

// Engine: cached hierarchies, multiplexed batches, the Session facade.
#include "engine/equivalence_oracle.hpp"
#include "engine/hierarchy_cache.hpp"
#include "engine/ops.hpp"
#include "engine/query.hpp"
#include "engine/query_engine.hpp"
#include "engine/report.hpp"
#include "engine/schedule.hpp"
#include "engine/session.hpp"
