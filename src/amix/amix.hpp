#pragma once

// Umbrella header: the public API of the amix library.
//
// amix reproduces "Distributed MST and Routing in Almost Mixing Time"
// (Ghaffari, Kuhn, Su — PODC 2017) as a single-machine CONGEST-round
// simulation. Typical usage:
//
//   amix::Rng rng(1);
//   amix::Graph g = amix::gen::random_regular(1024, 8, rng);
//   amix::RoundLedger ledger;
//   amix::Hierarchy h = amix::Hierarchy::build(g, {}, ledger);
//
//   amix::HierarchicalRouter router(h);
//   auto reqs = amix::permutation_instance(g, rng);
//   auto stats = router.route(reqs, ledger, rng);       // Theorem 1.2
//
//   amix::Weights w = amix::distinct_random_weights(g, rng);
//   amix::HierarchicalBoruvka mst(h, w);
//   auto mst_stats = mst.run(ledger);                   // Theorem 1.1
//
// See README.md for the architecture overview and DESIGN.md for the
// paper-to-module map.

#include "congest/comm_graph.hpp"
#include "congest/instrument.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "congest/round_ledger.hpp"
#include "congest/token_transport.hpp"
#include "graph/exact_mincut.hpp"
#include "graph/exact_mst.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/spectral.hpp"
#include "graph/traversal.hpp"
#include "graph/weighted_graph.hpp"
#include "hierarchy/hierarchy.hpp"
#include "mincut/tree_packing.hpp"
#include "mst/baseline_mst.hpp"
#include "mst/clique_mst.hpp"
#include "mst/hierarchical_boruvka.hpp"
#include "mst/kernel_boruvka.hpp"
#include "mst/verify.hpp"
#include "obs/bound_checker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "randwalk/anonymous.hpp"
#include "randwalk/mixing.hpp"
#include "randwalk/tau_estimator.hpp"
#include "randwalk/walk_engine.hpp"
#include "routing/baseline_routers.hpp"
#include "routing/clique_emulation.hpp"
#include "routing/hierarchical_router.hpp"
#include "routing/request.hpp"
#include "sim/conformance.hpp"
#include "sim/fault_plan.hpp"
#include "sim/harness.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
