#pragma once

// Blocking amixd client: one TCP connection, request/response in lock
// step. Used by `amixctl client`, the protocol tests, the soak test and
// the server load bench — anything that talks to a live daemon.

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.hpp"

namespace amix::server {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to 127.0.0.1:port (amixd is loopback-only). False => *err.
  bool connect_to(std::uint16_t port, std::string* err);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// One request/response round trip. Returns false ONLY on transport
  /// failure (connect/send/recv/parse); a typed server error is a
  /// successful round trip with resp->ok == false. On ok, *body holds
  /// exactly resp->body_bytes bytes of JSON.
  bool request(const RequestHeader& hdr,
               const std::vector<std::string>& body_lines,
               ResponseHeader* resp, std::string* body, std::string* err);

  /// Raw-wire escape hatch for protocol-robustness tests: send exactly
  /// `bytes` (malformed, truncated, oversized — whatever the test
  /// needs), no framing added.
  bool send_raw(const std::string& bytes, std::string* err);
  /// Read one response line + body (if ok) after send_raw.
  bool read_response(ResponseHeader* resp, std::string* body,
                     std::string* err);

 private:
  bool read_line(std::string* line, std::string* err);
  bool read_exact(std::size_t n, std::string* out, std::string* err);

  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace amix::server
