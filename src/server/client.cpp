#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace amix::server {

namespace {

bool fail(std::string* err, std::string msg) {
  if (err != nullptr) *err = std::move(msg);
  return false;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), inbuf_(std::move(other.inbuf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    inbuf_ = std::move(other.inbuf_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

bool Client::connect_to(std::uint16_t port, std::string* err) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return fail(err, std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const std::string msg = std::string("connect: ") + std::strerror(errno);
    close();
    return fail(err, msg);
  }
  return true;
}

bool Client::send_raw(const std::string& bytes, std::string* err) {
  if (fd_ < 0) return fail(err, "not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(err, std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::read_line(std::string* line, std::string* err) {
  for (;;) {
    if (const auto pos = inbuf_.find('\n'); pos != std::string::npos) {
      line->assign(inbuf_, 0, pos);
      inbuf_.erase(0, pos + 1);
      return true;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) return fail(err, "connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(err, std::string("recv: ") + std::strerror(errno));
    }
    inbuf_.append(buf, static_cast<std::size_t>(n));
  }
}

bool Client::read_exact(std::size_t n, std::string* out, std::string* err) {
  while (inbuf_.size() < n) {
    char buf[4096];
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r == 0) return fail(err, "connection closed mid-body");
    if (r < 0) {
      if (errno == EINTR) continue;
      return fail(err, std::string("recv: ") + std::strerror(errno));
    }
    inbuf_.append(buf, static_cast<std::size_t>(r));
  }
  out->assign(inbuf_, 0, n);
  inbuf_.erase(0, n);
  return true;
}

bool Client::read_response(ResponseHeader* resp, std::string* body,
                           std::string* err) {
  if (fd_ < 0) return fail(err, "not connected");
  std::string line;
  if (!read_line(&line, err)) return false;
  std::string perr;
  if (!parse_response_header(line, resp, &perr)) return fail(err, perr);
  if (!resp->ok) return true;  // typed error: no body follows
  if (!read_exact(resp->body_bytes, body, err)) return false;
  std::string nl;
  if (!read_exact(1, &nl, err)) return false;
  if (nl != "\n") return fail(err, "missing body terminator");
  return true;
}

bool Client::request(const RequestHeader& hdr,
                     const std::vector<std::string>& body_lines,
                     ResponseHeader* resp, std::string* body,
                     std::string* err) {
  RequestHeader h = hdr;
  h.lines = static_cast<std::uint32_t>(body_lines.size());
  std::string wire = format_request_header(h) + "\n";
  for (const std::string& line : body_lines) wire += line + "\n";
  if (!send_raw(wire, err)) return false;
  return read_response(resp, body, err);
}

}  // namespace amix::server
