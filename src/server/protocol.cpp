#include "server/protocol.hpp"

#include <array>
#include <charconv>
#include <sstream>
#include <vector>

namespace amix::server {
namespace {

struct CodeName {
  ErrorCode code;
  std::string_view name;
};

constexpr std::array<CodeName, 9> kCodeNames{{
    {ErrorCode::kBadRequest, "bad-request"},
    {ErrorCode::kTooLarge, "too-large"},
    {ErrorCode::kUnknownGraph, "unknown-graph"},
    {ErrorCode::kOverloaded, "overloaded"},
    {ErrorCode::kTenantOverloaded, "tenant-overloaded"},
    {ErrorCode::kTimeout, "timeout"},
    {ErrorCode::kShuttingDown, "shutting-down"},
    {ErrorCode::kInternal, "internal"},
    {ErrorCode::kUnsupportedOp, "unsupported-op"},
}};

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) tokens.push_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

bool parse_u64(std::string_view text, std::uint64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool valid_name(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

bool fail(std::string* err, std::string msg) {
  if (err != nullptr) *err = std::move(msg);
  return false;
}

/// Quote `msg` for the wire: one line, '"'-delimited, with '\\', '"'
/// and control bytes escaped so the error line stays parseable.
std::string quote(std::string_view msg) {
  std::string out = "\"";
  for (const char c : msg) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += '?';
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

bool unquote(std::string_view text, std::string* out) {
  if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
    return false;
  }
  text = text.substr(1, text.size() - 2);
  out->clear();
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      *out += text[i];
      continue;
    }
    if (++i == text.size()) return false;
    switch (text[i]) {
      case '"': *out += '"'; break;
      case '\\': *out += '\\'; break;
      case 'n': *out += '\n'; break;
      case 'r': *out += '\r'; break;
      case 't': *out += '\t'; break;
      default: return false;
    }
  }
  return true;
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  for (const CodeName& cn : kCodeNames) {
    if (cn.code == code) return cn.name.data();
  }
  return "internal";
}

bool parse_error_code(std::string_view name, ErrorCode* out) {
  for (const CodeName& cn : kCodeNames) {
    if (cn.name == name) {
      *out = cn.code;
      return true;
    }
  }
  return false;
}

bool parse_request_header(std::string_view line, RequestHeader* out,
                          std::string* err) {
  const auto tokens = split_ws(line);
  if (tokens.size() < 2) return fail(err, "header needs 'amix/1 <verb>'");
  if (tokens[0] != kProtoTag) {
    return fail(err, "unknown protocol tag '" + std::string(tokens[0]) + "'");
  }
  RequestHeader h;
  if (tokens[1] == "query") {
    h.verb = Verb::kQuery;
  } else if (tokens[1] == "mutate") {
    h.verb = Verb::kMutate;
  } else if (tokens[1] == "ping") {
    h.verb = Verb::kPing;
  } else if (tokens[1] == "stats") {
    h.verb = Verb::kStats;
  } else {
    return fail(err, "unknown verb '" + std::string(tokens[1]) + "'");
  }

  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::string_view tok = tokens[i];
    const auto eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return fail(err, "expected key=value, got '" + std::string(tok) + "'");
    }
    const std::string_view key = tok.substr(0, eq);
    const std::string_view val = tok.substr(eq + 1);
    if (key == "graph" || key == "tenant") {
      if (!valid_name(val)) {
        return fail(err, std::string(key) + " must be [A-Za-z0-9_.-]{1,64}");
      }
      (key == "graph" ? h.graph : h.tenant) = std::string(val);
      continue;
    }
    std::uint64_t num = 0;
    if (!parse_u64(val, &num)) {
      return fail(err, "bad integer for " + std::string(key));
    }
    if (key == "seed") {
      h.seed = num;
    } else if (key == "base") {
      h.base = num;
    } else if (key == "lines") {
      if (num > 0xffffffffULL) return fail(err, "lines out of range");
      h.lines = static_cast<std::uint32_t>(num);
    } else if (key == "threads") {
      // Advisory (the server schedules per-connection, not per-request);
      // accepted so clients can pass their --threads flag through.
    } else {
      return fail(err, "unknown header key '" + std::string(key) + "'");
    }
  }

  if ((h.verb == Verb::kQuery || h.verb == Verb::kMutate) && h.graph.empty()) {
    return fail(err, std::string(tokens[1]) + " requires graph=<name>");
  }
  *out = std::move(h);
  return true;
}

std::string format_request_header(const RequestHeader& h) {
  std::ostringstream os;
  os << kProtoTag << ' ';
  switch (h.verb) {
    case Verb::kQuery: os << "query"; break;
    case Verb::kMutate: os << "mutate"; break;
    case Verb::kPing: os << "ping"; break;
    case Verb::kStats: os << "stats"; break;
  }
  if (!h.graph.empty()) os << " graph=" << h.graph;
  if (h.tenant != "default") os << " tenant=" << h.tenant;
  if (h.verb == Verb::kQuery) os << " seed=" << h.seed << " base=" << h.base;
  if (h.verb == Verb::kQuery || h.verb == Verb::kMutate) {
    os << " lines=" << h.lines;
  }
  return os.str();
}

std::string format_ok_header(std::size_t body_bytes) {
  std::ostringstream os;
  os << kProtoTag << " ok bytes=" << body_bytes;
  return os.str();
}

std::string format_error(ErrorCode code, std::string_view msg) {
  std::ostringstream os;
  os << kProtoTag << " err code=" << error_code_name(code)
     << " msg=" << quote(msg);
  return os.str();
}

bool parse_response_header(std::string_view line, ResponseHeader* out,
                           std::string* err) {
  ResponseHeader h;
  const auto tokens = split_ws(line);
  if (tokens.size() < 2 || tokens[0] != kProtoTag) {
    return fail(err, "not an amix/1 response: '" + std::string(line) + "'");
  }
  if (tokens[1] == "ok") {
    h.ok = true;
    if (tokens.size() != 3 || tokens[2].substr(0, 6) != "bytes=") {
      return fail(err, "ok header needs bytes=<n>");
    }
    std::uint64_t n = 0;
    if (!parse_u64(tokens[2].substr(6), &n)) {
      return fail(err, "bad bytes count");
    }
    h.body_bytes = static_cast<std::size_t>(n);
    *out = std::move(h);
    return true;
  }
  if (tokens[1] != "err") {
    return fail(err, "response verb must be ok|err");
  }
  if (tokens.size() < 3 || tokens[2].substr(0, 5) != "code=" ||
      !parse_error_code(tokens[2].substr(5), &h.code)) {
    return fail(err, "err header needs code=<known-code>");
  }
  // msg="..." may contain spaces: take everything after ' msg=' verbatim.
  if (const auto pos = line.find(" msg="); pos != std::string_view::npos) {
    if (!unquote(line.substr(pos + 5), &h.error_msg)) {
      return fail(err, "unparseable err msg");
    }
  }
  *out = std::move(h);
  return true;
}

}  // namespace amix::server
