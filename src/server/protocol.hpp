#pragma once

// The amixd wire protocol: line-oriented, plain TCP, version-tagged.
//
// A request is one header line followed by `lines` body lines; a
// response is one header line followed (on success) by a JSON body of
// exactly `bytes` bytes plus a trailing newline:
//
//   -> amix/1 query graph=g0 tenant=acme seed=7 base=12 lines=3\n
//      mst\n
//      route perm\n
//      walks 64 8\n
//   <- amix/1 ok bytes=412\n
//      {...412 bytes of JSON...}\n
//
//   -> amix/1 mutate graph=g0 tenant=acme lines=2\n
//      insert 3 9\n
//      delete 0 1\n
//   <- amix/1 ok bytes=96\n
//      {...}\n
//
//   -> amix/1 ping\n            <- amix/1 ok bytes=2\n{}\n
//   -> amix/1 stats\n           <- amix/1 ok bytes=...\n{...}\n
//
// Errors are TYPED, single-line, and never followed by a body:
//
//   <- amix/1 err code=tenant-overloaded msg="tenant 'acme' at ..."\n
//
// Query bodies reuse the amixctl mix-file grammar verbatim (server/mix.hpp);
// mutate bodies are `insert <u> <v>` / `delete <u> <v>` lines.
//
// Determinism contract (DESIGN.md §14): query line i of a request runs
// with spec seed Session::call_seed(seed, base + i) — the SAME derivation
// an in-process Session uses for its call stream — so every per-request
// QueryReport is byte-identical to a serial replay of the same
// (session_seed, call index) against the same graph content. The
// response echoes graph_fp so a replayer can prove it held the same
// topology.
//
// Header values: graph/tenant names are [A-Za-z0-9_.-]{1,64}; integers
// are decimal u64. Unknown keys are an error (fail loud, not silently
// ignore a typo'd limit).

#include <cstdint>
#include <string>
#include <string_view>

namespace amix::server {

inline constexpr std::string_view kProtoTag = "amix/1";

enum class Verb : std::uint8_t { kQuery, kMutate, kPing, kStats };

enum class ErrorCode : std::uint8_t {
  kBadRequest,        // malformed header / body line / unknown key
  kTooLarge,          // over Limits (line length, line count, body bytes)
  kUnknownGraph,      // graph= names nothing the server serves
  kOverloaded,        // global admission queue full: request was shed
  kTenantOverloaded,  // per-tenant in-flight bound hit: request was shed
  kTimeout,           // peer stopped making progress (read or write side)
  kShuttingDown,      // server is draining
  kInternal,          // anything else; the daemon logs details
  kUnsupportedOp,     // query line's op word is not in this server's op
                      // table — a newer client against an older daemon
                      // (or a typo); distinct from bad-request so clients
                      // can degrade per-op instead of treating the whole
                      // grammar as broken
};

const char* error_code_name(ErrorCode code);  // kebab-case wire token
bool parse_error_code(std::string_view name, ErrorCode* out);

struct RequestHeader {
  Verb verb = Verb::kPing;
  std::string graph;              // query/mutate: required
  std::string tenant = "default";
  std::uint64_t seed = 1;         // query: session seed root
  std::uint64_t base = 0;         // query: call index of body line 0
  std::uint32_t lines = 0;        // body line count
};

/// Hard ceilings a connection may not exceed; crossing one is a typed
/// `too-large` error (and usually a close — framing can no longer be
/// trusted).
struct Limits {
  std::size_t max_line_bytes = 4096;    // header or body line, incl. '\n'
  std::uint32_t max_lines = 4096;       // body lines per request
};

/// Parse one request header line (no trailing newline). False => *err.
bool parse_request_header(std::string_view line, RequestHeader* out,
                          std::string* err);
std::string format_request_header(const RequestHeader& h);

/// Response headers.
std::string format_ok_header(std::size_t body_bytes);
std::string format_error(ErrorCode code, std::string_view msg);

struct ResponseHeader {
  bool ok = false;
  std::size_t body_bytes = 0;   // when ok
  ErrorCode code = ErrorCode::kInternal;
  std::string error_msg;        // when !ok
};

/// Parse one response header line (no trailing newline). False only on a
/// line that is not a well-formed amix/1 response at all.
bool parse_response_header(std::string_view line, ResponseHeader* out,
                           std::string* err);

}  // namespace amix::server
