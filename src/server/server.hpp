#pragma once

// amixd's server core: accept loop, worker pool, admission control.
//
// Threading model (DESIGN.md §14):
//
//  * One accept thread owns the listening socket. Accepted connections
//    go into a bounded queue; when the queue is full the connection is
//    SHED — a best-effort `overloaded` error and an immediate close —
//    so the accept loop never blocks behind slow workers.
//
//  * N workers each own one connection at a time and run its requests
//    serially; concurrency comes from connections, not from splitting a
//    request (a request's specs execute in submit order, which is what
//    makes its response replayable byte-for-byte). All IO is
//    poll-with-deadline, twice over: a progress deadline (io_timeout_ms
//    without a byte) catches a peer that stalls mid-request or stops
//    reading its response, and a cumulative per-request IO budget
//    (request_timeout_ms) catches a peer that trickles one byte per
//    slice to keep resetting the first. Either way a misbehaving client
//    can never wedge a worker for good or leak its queue slot.
//
//  * Admission is per tenant and happens at header-parse time, before
//    the body is read: `tenant_inflight` concurrent requests per tenant,
//    over that the request is shed with `tenant-overloaded`. Sheds are
//    typed wire errors, never silent drops, never blocking.
//
//  * shutdown() drains: the accept thread stops, queued-but-unserved
//    connections get `shutting-down`, workers finish the request they
//    are on (in-flight work completes; the connection closes after it)
//    and exit. Safe to call from a signal-watching thread; idempotent.
//
// Execution reuses engine::execute_query / fold_batch — the exact
// functions QueryEngine::run uses — against entries of the shared
// cross-tenant SharedHierarchyCache. Query line i of a request runs with
// spec seed Session::call_seed(header.seed, header.base + i); see
// protocol.hpp for the wire grammar.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.hpp"
#include "server/shared_cache.hpp"
#include "sim/fault_plan.hpp"

namespace amix::server {

struct ServerOptions {
  std::uint16_t port = 0;        // 0: pick an ephemeral port (see port())
  std::size_t workers = 4;
  std::size_t queue_capacity = 64;   // accepted, not-yet-served connections
  std::uint32_t tenant_inflight = 8;  // concurrent requests/tenant; 0 = off
  std::size_t max_tenants = 64;  // distinct tenant-table entries; 0 = off
  Limits limits;
  int io_timeout_ms = 5000;  // per read/write progress deadline
  /// Cumulative IO-wait budget per request (header + body reads plus the
  /// response write; compute is free). The progress deadline alone is
  /// defeated by a peer trickling one byte per slice — this is the
  /// backstop that cuts such a peer off. 0 = unlimited.
  int request_timeout_ms = 30000;
  HierarchyParams hierarchy;
  std::size_t cache_capacity = 0;  // shared cache entries; 0 = unbounded

  /// Optional per-query fault injection (soak tests): same semantics as
  /// EngineOptions::fault_factory — each query gets a private plan reset
  /// from (fault_seed, spec.seed).
  std::function<std::unique_ptr<sim::FaultPlan>()> fault_factory;
  std::uint64_t fault_seed = 0;
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register a named graph to serve (before or after start()).
  void register_graph(const std::string& name, Graph g,
                      std::optional<Weights> w = std::nullopt);

  /// Bind 127.0.0.1:<port>, spawn the accept thread and workers.
  bool start(std::string* err);
  std::uint16_t port() const { return port_; }
  bool running() const { return running_; }

  /// Drain and stop (see file comment). Idempotent, join-safe.
  void shutdown();

  SharedHierarchyCache& cache() { return cache_; }

  struct Stats {
    std::uint64_t accepted = 0;         // connections handed to workers
    std::uint64_t requests = 0;         // responses written (ok or err)
    std::uint64_t shed_overloaded = 0;  // connections shed at the queue
    std::uint64_t shed_tenant = 0;      // requests shed by tenant bound
    std::uint64_t bad_requests = 0;
    std::uint64_t timeouts = 0;         // stalled peers closed
    std::uint64_t internal_errors = 0;  // exceptions answered `internal`
  };
  Stats stats() const;

  struct TenantStats {
    std::uint64_t requests = 0;  // admitted
    std::uint64_t queries = 0;   // specs executed
    std::uint64_t rounds = 0;    // build + batch rounds charged
    std::uint64_t shed = 0;
  };
  std::map<std::string, TenantStats> tenant_stats() const;

 private:
  struct Tenant {
    std::uint32_t inflight = 0;
    std::uint64_t last_admit = 0;  // admission sequence, for idle recycling
    TenantStats stats;
  };

  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);

  /// One request: reads body, dispatches, writes the response. Returns
  /// false when the connection must close (IO error, framing lost).
  bool serve_request(class Conn& conn, const RequestHeader& hdr);

  bool tenant_acquire(const std::string& tenant);
  void tenant_release(const std::string& tenant, std::uint64_t queries,
                      std::uint64_t rounds);

  std::string run_query(const RequestHeader& hdr, const GraphState& gs,
                        const std::vector<std::string>& body,
                        std::uint64_t* queries, std::uint64_t* rounds,
                        ErrorCode* code, std::string* err);
  std::string run_mutate(const RequestHeader& hdr,
                         const std::vector<std::string>& body,
                         std::uint64_t* rounds, ErrorCode* code,
                         std::string* err);
  std::string run_stats();

  const ServerOptions opt_;
  SharedHierarchyCache cache_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;

  mutable std::mutex tenants_mu_;
  std::map<std::string, Tenant> tenants_;
  std::uint64_t tenant_seq_ = 0;  // guarded by tenants_mu_

  std::mutex shutdown_mu_;  // serializes shutdown() callers

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> shed_overloaded_{0};
  std::atomic<std::uint64_t> shed_tenant_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> internal_errors_{0};
};

}  // namespace amix::server
