#include "server/shared_cache.hpp"

#include <utility>

#include "util/check.hpp"

namespace amix::server {

GraphState::GraphState(Graph g, std::optional<Weights> w)
    : graph(std::move(g)),
      weights(std::move(w)),
      fp(engine::graph_fingerprint(graph)) {}

SharedHierarchyCache::SharedHierarchyCache(HierarchyParams params,
                                           std::size_t capacity)
    : params_(params),
      params_fp_(engine::params_fingerprint(params)),
      capacity_(capacity) {
  snapshot_.store(std::make_shared<const Snapshot>());
  graphs_.store(std::make_shared<const GraphMap>());
}

void SharedHierarchyCache::register_graph(const std::string& name, Graph g,
                                          std::optional<Weights> w) {
  auto state = std::make_shared<const GraphState>(std::move(g), std::move(w));
  std::lock_guard lock(write_mu_);
  auto next = std::make_shared<GraphMap>(*graphs_.load());
  (*next)[name] = std::move(state);
  graphs_.store(std::shared_ptr<const GraphMap>(std::move(next)));
}

std::shared_ptr<const GraphState> SharedHierarchyCache::graph(
    const std::string& name) const {
  const auto map = graphs_.load();
  const auto it = map->find(name);
  return it != map->end() ? it->second : nullptr;
}

std::vector<std::string> SharedHierarchyCache::graph_names() const {
  const auto map = graphs_.load();
  std::vector<std::string> names;
  names.reserve(map->size());
  for (const auto& [name, state] : *map) names.push_back(name);
  return names;
}

namespace {

/// A reader handle: keeps the entry alive AND holds one pin; the pin is
/// released (memory_order_release — it pairs with the mutating writer's
/// acquire load of the pin count) when the last handle copy goes away.
SharedHierarchyCache::Lookup make_lookup(
    const std::shared_ptr<engine::CacheEntry>& entry,
    const std::shared_ptr<std::atomic<std::int64_t>>& pins, bool built) {
  std::shared_ptr<const engine::CacheEntry> handle(
      entry.get(),
      [keep = entry, pins](const engine::CacheEntry*) {
        pins->fetch_sub(1, std::memory_order_release);
      });
  return SharedHierarchyCache::Lookup{std::move(handle), built};
}

}  // namespace

SharedHierarchyCache::Lookup SharedHierarchyCache::get_or_build(
    const GraphState& gs) {
  const Key key{gs.fp, params_fp_};
  const std::uint64_t now = tick_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Hot path: wait-free hit. Pin-then-revalidate (hazard-pointer style):
  // a reader that pinned an entry re-checks that the snapshot it found
  // the entry in is still the published one. A mutating writer
  // unpublishes the entry FIRST and only patches when the pin count is
  // zero, so either the reader revalidates successfully (writer will see
  // its pin and busy-drop instead of patching) or the reader retries and
  // can no longer find the entry. Both loads/RMWs are seq_cst so the
  // store-buffering interleaving (reader sees old snapshot AND writer
  // sees zero pins) is impossible.
  for (;;) {
    auto snap = snapshot_.load();
    const auto it = snap->entries.find(key);
    if (it == snap->entries.end()) break;  // cold: take the writer path
    const Slot slot = it->second;
    slot.pins->fetch_add(1);
    if (snapshot_.load() == snap) {
      slot.entry->touch(now);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return make_lookup(slot.entry, slot.pins, false);
    }
    slot.pins->fetch_sub(1, std::memory_order_release);  // raced: retry
  }

  std::lock_guard lock(write_mu_);
  // Double-check: another worker may have built while we waited.
  {
    auto snap = snapshot_.load();
    if (const auto it = snap->entries.find(key); it != snap->entries.end()) {
      const Slot& slot = it->second;
      slot.pins->fetch_add(1);  // holding write_mu_: no unpublish can race
      slot.entry->touch(now);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return make_lookup(slot.entry, slot.pins, false);
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  Slot slot;
  slot.entry = engine::CacheEntry::build(gs.graph, params_, gs.fp, params_fp_);
  slot.pins = std::make_shared<std::atomic<std::int64_t>>(0);
  slot.entry->touch(now);
  record_cost_locked(*slot.entry);
  slot.pins->fetch_add(1);  // the returned handle's pin

  auto next = std::make_shared<Snapshot>(*snapshot_.load());
  next->entries[key] = slot;
  evict_over_capacity_locked(*next, key);
  snapshot_.store(std::shared_ptr<const Snapshot>(std::move(next)));
  return make_lookup(slot.entry, slot.pins, true);
}

SharedHierarchyCache::MutateResult SharedHierarchyCache::mutate(
    const std::string& name, const GraphDelta& delta) {
  MutateResult res;
  std::lock_guard lock(write_mu_);

  const auto gmap = graphs_.load();
  const auto git = gmap->find(name);
  if (git == gmap->end()) {
    res.error = "unknown graph '" + name + "'";
    return res;
  }
  const std::shared_ptr<const GraphState>& old_state = git->second;
  res.ok = true;
  res.old_fp = old_state->fp;

  // Weights are per-edge and do not survive a topology change: mst lines
  // against the mutated graph re-derive seeded weights (still a pure
  // function of the spec seed, so still replayable).
  auto new_state = std::make_shared<const GraphState>(
      old_state->graph.apply_delta(delta), std::nullopt);
  res.new_fp = new_state->fp;
  res.num_edges = new_state->graph.num_edges();
  if (new_state->fp == old_state->fp) {
    res.noop = true;  // delta was all no-ops: nothing to publish
    return res;
  }

  const Key old_key{old_state->fp, params_fp_};
  auto snap = snapshot_.load();
  if (const auto it = snap->entries.find(old_key); it != snap->entries.end()) {
    const Slot slot = it->second;
    // Unpublish FIRST: after this store no reader can newly pin the
    // entry (the pin-then-revalidate handshake in get_or_build).
    auto next = std::make_shared<Snapshot>(*snap);
    next->entries.erase(old_key);
    snapshot_.store(std::shared_ptr<const Snapshot>(std::move(next)));
    snap.reset();

    if (slot.pins->load() == 0) {
      // No reader holds the entry and none can appear: safe to patch the
      // hierarchy in place and re-key it to the mutated topology.
      const engine::CacheEntry::RepairResult rr =
          slot.entry->repair_to(new_state->graph, new_state->fp,
                                verify_every_);
      res.repair_rounds = rr.outcome.repair_rounds;
      res.oracle_checked = rr.oracle_checked;
      record_cost_locked(*slot.entry);
      if (rr.outcome.applied) {
        res.patched = true;
        patched_.fetch_add(1, std::memory_order_relaxed);
        const Key new_key{new_state->fp, params_fp_};
        auto republished = std::make_shared<Snapshot>(*snapshot_.load());
        republished->entries[new_key] = slot;
        evict_over_capacity_locked(*republished, new_key);
        snapshot_.store(
            std::shared_ptr<const Snapshot>(std::move(republished)));
      } else {
        res.dropped_fallback = true;  // rebuild lazily on next lookup
        fallback_drops_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      // Readers in flight: dropping is the only race-free move. The
      // entry stays alive (their handles own it) but is gone from the
      // snapshot; the next lookup on the new topology rebuilds.
      res.dropped_busy = true;
      busy_drops_.fetch_add(1, std::memory_order_relaxed);
      record_cost_locked(*slot.entry);
    }
  }

  auto gnext = std::make_shared<GraphMap>(*gmap);
  (*gnext)[name] = std::move(new_state);
  graphs_.store(std::shared_ptr<const GraphMap>(std::move(gnext)));
  return res;
}

void SharedHierarchyCache::record_cost_locked(const engine::CacheEntry& e) {
  for (engine::CostRecord& r : history_) {
    if (r.graph_fp == e.graph_fp() && r.params_fp == e.params_fp()) {
      r.build_rounds = e.build_rounds();
      r.repairs = e.repairs();
      r.repair_rounds = e.repair_rounds();
      return;
    }
  }
  history_.push_back(engine::CostRecord{e.graph_fp(), e.params_fp(),
                                        e.build_rounds(), e.repairs(),
                                        e.repair_rounds()});
}

void SharedHierarchyCache::evict_over_capacity_locked(Snapshot& next,
                                                      const Key& protect) {
  if (capacity_ == 0) return;
  const std::uint64_t now = tick_.load(std::memory_order_relaxed);
  while (next.entries.size() > capacity_) {
    std::vector<engine::EvictionCandidate> candidates;
    candidates.reserve(next.entries.size());
    for (const auto& [key, slot] : next.entries) {
      if (key == protect) continue;
      candidates.push_back(engine::EvictionCandidate{
          key.first, key.second, slot.entry->cost_rounds(),
          slot.entry->last_use()});
    }
    const auto victim = engine::pick_victim(candidates, now);
    if (!victim) return;
    const Key vkey{candidates[*victim].graph_fp, candidates[*victim].params_fp};
    const auto it = next.entries.find(vkey);
    AMIX_CHECK(it != next.entries.end());
    record_cost_locked(*it->second.entry);
    next.entries.erase(it);  // reader handles, if any, keep it alive
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

SharedHierarchyCache::Stats SharedHierarchyCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.patched = patched_.load(std::memory_order_relaxed);
  s.busy_drops = busy_drops_.load(std::memory_order_relaxed);
  s.fallback_drops = fallback_drops_.load(std::memory_order_relaxed);
  s.entries = snapshot_.load()->entries.size();
  s.capacity = capacity_;
  {
    std::lock_guard lock(write_mu_);
    for (const engine::CostRecord& r : history_) {
      s.build_rounds += r.build_rounds;
      s.repair_rounds += r.repair_rounds;
    }
  }
  return s;
}

}  // namespace amix::server
