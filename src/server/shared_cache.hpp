#pragma once

// SharedHierarchyCache: the amixd daemon's cross-tenant hierarchy cache.
//
// The engine's HierarchyCache is single-owner (one QueryEngine, one
// thread at a time); the server needs MANY worker threads hitting the
// same cache with reads vastly outnumbering writes. Discipline
// (DESIGN.md §14):
//
//  * Readers are lock-free. The entry map lives in an immutable Snapshot
//    published through std::atomic<std::shared_ptr<const Snapshot>>; a
//    hit is one atomic load + map find + relaxed recency stamp
//    (CacheEntry::touch). Readers hold the entry via shared_ptr, so an
//    entry stays alive for as long as any in-flight request uses it even
//    if a writer evicts or re-keys it concurrently.
//
//  * Writers (cache miss, mutate, eviction) serialize on one mutex and
//    publish copy-on-write snapshots. Builds run under the mutex — a
//    hierarchy build is the expensive path by definition, and serializing
//    it also collapses the thundering herd on a cold key (second requester
//    blocks, then hits).
//
//  * Mutation never patches an entry readers can still see. mutate()
//    first publishes a snapshot WITHOUT the affected entry (new readers
//    can no longer find it), then checks use_count(): exactly one owner —
//    the writer — means no in-flight reader and no live old snapshot, so
//    the entry is patched in place (CacheEntry::repair_to) and re-keyed.
//    Otherwise it is a busy-drop: the cost is recorded and the next
//    lookup rebuilds. Both paths are exercised by the soak test.
//
// Policy is SHARED with the engine cache, not reimplemented: entries are
// built by CacheEntry::build, repaired by CacheEntry::repair_to (same
// sampled full-rebuild oracle), keyed by the same content fingerprints,
// and evicted by the same cost-aware LRU (engine/eviction.hpp) over the
// same CostRecord history.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine/hierarchy_cache.hpp"
#include "graph/weighted_graph.hpp"

namespace amix::server {

/// One served graph: an immutable named topology snapshot. Mutations
/// publish a NEW GraphState; requests that already resolved the old one
/// keep computing against it (and its fingerprint says so on the wire).
struct GraphState {
  Graph graph;
  std::optional<Weights> weights;  // mst lines use these when present
  std::uint64_t fp = 0;            // engine::graph_fingerprint(graph)

  GraphState(Graph g, std::optional<Weights> w);
};

class SharedHierarchyCache {
 public:
  /// One HierarchyParams for the whole daemon: entries differ by graph
  /// content only, so the params fingerprint is computed once.
  explicit SharedHierarchyCache(HierarchyParams params,
                                std::size_t capacity = 0);

  SharedHierarchyCache(const SharedHierarchyCache&) = delete;
  SharedHierarchyCache& operator=(const SharedHierarchyCache&) = delete;

  /// Register / replace a named graph (startup path; also safe while
  /// serving). Does not build the hierarchy — first query pays that.
  void register_graph(const std::string& name, Graph g,
                      std::optional<Weights> w = std::nullopt);

  /// Lock-free name resolution; nullptr when unknown.
  std::shared_ptr<const GraphState> graph(const std::string& name) const;
  std::vector<std::string> graph_names() const;

  struct Lookup {
    std::shared_ptr<const engine::CacheEntry> entry;
    bool built = false;  // this call paid for the build
  };
  /// The cached hierarchy for `gs`, building under the writer mutex on
  /// miss. Hot path (hit): one atomic snapshot load, no locks.
  Lookup get_or_build(const GraphState& gs);

  struct MutateResult {
    bool ok = false;
    std::string error;  // when !ok (unknown graph)
    std::uint64_t old_fp = 0;
    std::uint64_t new_fp = 0;
    bool noop = false;         // delta didn't change the topology
    bool patched = false;      // entry repaired in place + re-keyed
    bool dropped_busy = false;      // readers in flight: entry dropped
    bool dropped_fallback = false;  // repair refused: entry dropped
    bool oracle_checked = false;
    std::uint64_t repair_rounds = 0;
    std::uint32_t num_edges = 0;  // of the mutated graph
  };
  /// Apply `delta` to the named graph and reconcile the cache per the
  /// discipline above. Serializes with other writers; readers are never
  /// blocked and never observe a half-patched entry.
  MutateResult mutate(const std::string& name, const GraphDelta& delta);

  void set_verify_every(std::uint32_t n) { verify_every_ = n; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t patched = 0;
    std::uint64_t busy_drops = 0;
    std::uint64_t fallback_drops = 0;
    std::uint64_t build_rounds = 0;   // lifetime, incl. evicted entries
    std::uint64_t repair_rounds = 0;  // lifetime
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };
  Stats stats() const;

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;
  /// One published entry plus its reader pin count. The pin count (not
  /// shared_ptr::use_count, whose reads don't synchronize) is what makes
  /// the pin-then-revalidate handshake TSan-provable: readers fetch_add
  /// before touching the entry and fetch_sub(release) when their handle
  /// dies; the mutating writer acquires-loads it after unpublishing.
  struct Slot {
    std::shared_ptr<engine::CacheEntry> entry;
    std::shared_ptr<std::atomic<std::int64_t>> pins;
  };
  struct Snapshot {
    std::map<Key, Slot> entries;
  };
  using GraphMap = std::map<std::string, std::shared_ptr<const GraphState>>;

  void record_cost_locked(const engine::CacheEntry& e);
  /// Evict from `next` (a snapshot being prepared under write_mu_) until
  /// it fits capacity_; `protect` is never the victim.
  void evict_over_capacity_locked(Snapshot& next, const Key& protect);

  const HierarchyParams params_;
  const std::uint64_t params_fp_;
  const std::size_t capacity_;
#ifdef NDEBUG
  std::uint32_t verify_every_ = 0;
#else
  std::uint32_t verify_every_ = 16;
#endif

  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
  std::atomic<std::shared_ptr<const GraphMap>> graphs_;

  mutable std::mutex write_mu_;  // builders, mutators, eviction, history
  std::vector<engine::CostRecord> history_;

  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> patched_{0};
  std::atomic<std::uint64_t> busy_drops_{0};
  std::atomic<std::uint64_t> fallback_drops_{0};
};

}  // namespace amix::server
