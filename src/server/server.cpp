#include "server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <sstream>
#include <utility>

#include "congest/instrument.hpp"
#include "engine/execute.hpp"
#include "engine/session.hpp"
#include "server/mix.hpp"

namespace amix::server {

namespace {
constexpr int kPollSliceMs = 100;  // stop-flag check granularity
}

/// One worker-owned connection: a non-blocking fd plus a line buffer.
/// Every operation polls under TWO deadlines: a progress deadline (no
/// bytes for io_timeout_ms) and a cumulative per-request IO budget
/// (request_timeout_ms of total wait, which progress does NOT reset).
/// The first catches a peer that stalls outright; the second catches a
/// peer that trickles just often enough to keep resetting the first.
/// Either way a misbehaving peer costs a bounded slice of one worker.
class Conn {
 public:
  enum class Read : std::uint8_t {
    kLine,     // *line filled (newline stripped)
    kEof,      // peer closed cleanly at a line boundary
    kTimeout,  // progress deadline or request budget exhausted
    kTooLong,  // line exceeds Limits::max_line_bytes: framing is lost
    kStopped,  // idle and the server is draining
    kError,    // transport error
  };

  Conn(int fd, const Limits& limits, int timeout_ms, int request_timeout_ms,
       const std::atomic<bool>& stopping)
      : fd_(fd), limits_(limits), timeout_ms_(timeout_ms),
        request_timeout_ms_(request_timeout_ms), stopping_(stopping) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    begin_request();
  }
  ~Conn() { ::close(fd_); }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  /// Reset the cumulative IO budget for the next request. Idle waits
  /// (keep-alive gap before a request's first byte) are never charged,
  /// so long-lived quiet connections don't erode their next request.
  void begin_request() {
    budget_left_ = std::chrono::milliseconds(
        request_timeout_ms_ > 0 ? request_timeout_ms_ : 0);
  }

  /// Read one '\n'-terminated line. With `idle` (waiting for the next
  /// request header with an empty buffer) the wait also watches the
  /// server's stop flag.
  Read read_line(std::string* line, bool idle) {
    Clock::time_point last_progress = Clock::now();
    for (;;) {
      if (const auto pos = inbuf_.find('\n'); pos != std::string::npos) {
        if (pos + 1 > limits_.max_line_bytes) return Read::kTooLong;
        line->assign(inbuf_, 0, pos);
        inbuf_.erase(0, pos + 1);
        return Read::kLine;
      }
      if (inbuf_.size() >= limits_.max_line_bytes) return Read::kTooLong;
      if (idle && inbuf_.empty() &&
          stopping_.load(std::memory_order_relaxed)) {
        return Read::kStopped;
      }
      if (Clock::now() - last_progress >=
          std::chrono::milliseconds(timeout_ms_)) {
        return Read::kTimeout;
      }

      const Clock::time_point wait_start = Clock::now();
      pollfd p{fd_, POLLIN, 0};
      const int pr = ::poll(&p, 1, kPollSliceMs);
      // The budget starts at the request's first byte: a genuinely idle
      // keep-alive wait is free, everything after is charged whether or
      // not the poll produced data.
      if (!(idle && inbuf_.empty()) &&
          !charge(Clock::now() - wait_start)) {
        return Read::kTimeout;
      }
      if (pr < 0) {
        if (errno == EINTR) continue;
        return Read::kError;
      }
      if (pr == 0) continue;
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n == 0) return inbuf_.empty() ? Read::kEof : Read::kError;
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        return Read::kError;
      }
      inbuf_.append(buf, static_cast<std::size_t>(n));
      last_progress = Clock::now();  // progress resets the deadline only
    }
  }

  /// Write everything or fail; timed_out() says whether the failure was
  /// a peer that stopped (or trickled) reading.
  bool write_all(std::string_view data) {
    std::size_t off = 0;
    Clock::time_point last_progress = Clock::now();
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        last_progress = Clock::now();
        continue;
      }
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
          errno != EINTR) {
        return false;
      }
      if (Clock::now() - last_progress >=
          std::chrono::milliseconds(timeout_ms_)) {
        timed_out_ = true;
        return false;
      }
      const Clock::time_point wait_start = Clock::now();
      pollfd p{fd_, POLLOUT, 0};
      if (::poll(&p, 1, kPollSliceMs) < 0 && errno != EINTR) return false;
      if (!charge(Clock::now() - wait_start)) {
        timed_out_ = true;
        return false;
      }
    }
    return true;
  }

  bool timed_out() const { return timed_out_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Deduct waited time from the request budget; false once exhausted.
  bool charge(Clock::duration waited) {
    if (request_timeout_ms_ <= 0) return true;  // unlimited
    budget_left_ -= waited;
    return budget_left_ > Clock::duration::zero();
  }

  int fd_;
  Limits limits_;
  int timeout_ms_;
  int request_timeout_ms_;
  const std::atomic<bool>& stopping_;
  std::string inbuf_;
  Clock::duration budget_left_{};
  bool timed_out_ = false;
};

namespace {

/// Best-effort single-shot error on a socket we are about to close
/// (shed paths — never block the accept loop for a victim).
void shed_notice(int fd, ErrorCode code, std::string_view msg) {
  const std::string line = format_error(code, msg) + "\n";
  (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
}

}  // namespace

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)), cache_(opt_.hierarchy, opt_.cache_capacity) {}

Server::~Server() { shutdown(); }

void Server::register_graph(const std::string& name, Graph g,
                            std::optional<Weights> w) {
  cache_.register_graph(name, std::move(g), std::move(w));
}

bool Server::start(std::string* err) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opt_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd_, 128) < 0) {
    if (err != nullptr) *err = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_ = true;
  accept_thread_ = std::thread(&Server::accept_loop, this);
  const std::size_t n = opt_.workers > 0 ? opt_.workers : 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back(&Server::worker_loop, this);
  }
  return true;
}

void Server::shutdown() {
  std::lock_guard guard(shutdown_mu_);
  if (!running_) return;
  stopping_ = true;
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Workers drain the queue before exiting, but a worker that saw the
  // queue empty may have exited before the accept thread's final push.
  for (const int fd : queue_) {
    shed_notice(fd, ErrorCode::kShuttingDown, "server is draining");
    ::close(fd);
  }
  queue_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_ = false;
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, kPollSliceMs);
    if (pr <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    bool enqueued = false;
    {
      std::lock_guard lock(queue_mu_);
      if (stopping_) {
        shed_notice(fd, ErrorCode::kShuttingDown, "server is draining");
        ::close(fd);
        continue;
      }
      if (queue_.size() >= opt_.queue_capacity) {
        // Shed, never block: the accept loop's only job is to keep the
        // listen backlog drained and answer overload with a typed error.
        shed_overloaded_.fetch_add(1, std::memory_order_relaxed);
        shed_notice(fd, ErrorCode::kOverloaded, "connection queue full");
        ::close(fd);
      } else {
        queue_.push_back(fd);
        accepted_.fetch_add(1, std::memory_order_relaxed);
        enqueued = true;
      }
    }
    if (enqueued) queue_cv_.notify_one();
  }
}

void Server::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping and drained
      fd = queue_.front();
      queue_.pop_front();
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      // Draining: queued-but-unserved connections are answered, not
      // served.
      shed_notice(fd, ErrorCode::kShuttingDown, "server is draining");
      ::close(fd);
      continue;
    }
    try {
      serve_connection(fd);
    } catch (const std::exception&) {
      // Last-resort barrier: an exception that escapes per-request
      // handling (e.g. bad_alloc in a parse path) costs its connection
      // (the Conn destructor closed the fd during unwinding), never the
      // daemon — a one-line request must not be a cross-tenant crash.
      internal_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Server::serve_connection(int fd) {
  Conn conn(fd, opt_.limits, opt_.io_timeout_ms, opt_.request_timeout_ms,
            stopping_);
  for (;;) {
    conn.begin_request();
    std::string line;
    switch (conn.read_line(&line, /*idle=*/true)) {
      case Conn::Read::kLine: break;
      case Conn::Read::kStopped:
        conn.write_all(format_error(ErrorCode::kShuttingDown,
                                    "server is draining") + "\n");
        return;
      case Conn::Read::kTooLong:
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        conn.write_all(format_error(ErrorCode::kTooLarge,
                                    "header line too long") + "\n");
        return;
      case Conn::Read::kTimeout:
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return;  // idle or mid-line stall: quiet close
      case Conn::Read::kEof:
      case Conn::Read::kError:
        return;
    }

    RequestHeader hdr;
    std::string perr;
    if (!parse_request_header(line, &hdr, &perr)) {
      // A malformed header leaves the body length unknown, so framing is
      // lost: answer and close.
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      conn.write_all(format_error(ErrorCode::kBadRequest, perr) + "\n");
      return;
    }
    if (!serve_request(conn, hdr)) return;
    if (stopping_.load(std::memory_order_relaxed)) return;
  }
}

bool Server::serve_request(Conn& conn, const RequestHeader& hdr) {
  if (hdr.lines > opt_.limits.max_lines) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    conn.write_all(format_error(ErrorCode::kTooLarge,
                                "lines exceeds max_lines") + "\n");
    return false;  // refusing to read the body loses framing
  }

  // Admission happens at header time, BEFORE the body is read: a tenant
  // holds its in-flight slot for the whole request (including a stalled
  // body upload, bounded by the IO deadline), and an over-limit tenant
  // is shed immediately with a typed error instead of queueing.
  const bool needs_admission =
      hdr.verb == Verb::kQuery || hdr.verb == Verb::kMutate;
  if (needs_admission && !tenant_acquire(hdr.tenant)) {
    shed_tenant_.fetch_add(1, std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    conn.write_all(format_error(ErrorCode::kTenantOverloaded,
                                "tenant '" + hdr.tenant +
                                    "' over admission limit") + "\n");
    return false;  // the unread body cannot be reframed: close
  }

  std::vector<std::string> body;
  body.reserve(hdr.lines);
  for (std::uint32_t i = 0; i < hdr.lines; ++i) {
    std::string bline;
    switch (conn.read_line(&bline, /*idle=*/false)) {
      case Conn::Read::kLine:
        body.push_back(std::move(bline));
        continue;
      case Conn::Read::kTooLong:
        if (needs_admission) tenant_release(hdr.tenant, 0, 0);
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        conn.write_all(format_error(ErrorCode::kTooLarge,
                                    "body line too long") + "\n");
        return false;
      case Conn::Read::kTimeout:
        if (needs_admission) tenant_release(hdr.tenant, 0, 0);
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        conn.write_all(format_error(ErrorCode::kTimeout,
                                    "request body stalled") + "\n");
        return false;
      default:  // kEof mid-body, kError, kStopped (not idle)
        if (needs_admission) tenant_release(hdr.tenant, 0, 0);
        return false;
    }
  }

  std::string ok_body;
  ErrorCode code = ErrorCode::kInternal;
  std::string emsg;
  std::uint64_t queries = 0;
  std::uint64_t rounds = 0;
  switch (hdr.verb) {
    case Verb::kPing:
      ok_body = "{}";
      break;
    case Verb::kStats:
      ok_body = run_stats();
      break;
    case Verb::kQuery: {
      const std::shared_ptr<const GraphState> gs = cache_.graph(hdr.graph);
      if (gs == nullptr) {
        code = ErrorCode::kUnknownGraph;
        emsg = "no graph named '" + hdr.graph + "'";
      } else {
        // Exception barrier: execution that throws (bad_alloc on an
        // instance the limits under-estimated, a CHECK-turned-throw)
        // answers `internal` and releases the tenant slot — it must
        // never unwind past the worker and kill the daemon.
        try {
          ok_body = run_query(hdr, *gs, body, &queries, &rounds, &code,
                              &emsg);
        } catch (const std::exception& e) {
          ok_body.clear();
          code = ErrorCode::kInternal;
          emsg = std::string("query failed: ") + e.what();
          internal_errors_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      tenant_release(hdr.tenant, queries, rounds);
      break;
    }
    case Verb::kMutate:
      try {
        ok_body = run_mutate(hdr, body, &rounds, &code, &emsg);
      } catch (const std::exception& e) {
        ok_body.clear();
        code = ErrorCode::kInternal;
        emsg = std::string("mutate failed: ") + e.what();
        internal_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      tenant_release(hdr.tenant, 0, rounds);
      break;
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  if (ok_body.empty()) {
    if (code == ErrorCode::kBadRequest || code == ErrorCode::kUnknownGraph) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
    }
    // Body fully consumed: framing is intact, the connection survives a
    // typed error and may send its next request.
    return conn.write_all(format_error(code, emsg) + "\n");
  }
  const std::string resp =
      format_ok_header(ok_body.size()) + "\n" + ok_body + "\n";
  if (!conn.write_all(resp)) {
    if (conn.timed_out()) timeouts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool Server::tenant_acquire(const std::string& tenant) {
  std::lock_guard lock(tenants_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    // Tenant names are wire-supplied, so the table must be bounded or a
    // name-churning client grows it (and the stats body) without limit.
    // At the cap, recycle the longest-idle zero-inflight entry; if every
    // slot is busy the newcomer is shed with a typed error.
    if (opt_.max_tenants != 0 && tenants_.size() >= opt_.max_tenants) {
      auto victim = tenants_.end();
      for (auto i = tenants_.begin(); i != tenants_.end(); ++i) {
        if (i->second.inflight != 0) continue;
        if (victim == tenants_.end() ||
            i->second.last_admit < victim->second.last_admit) {
          victim = i;
        }
      }
      if (victim == tenants_.end()) return false;
      tenants_.erase(victim);
    }
    it = tenants_.try_emplace(tenant).first;
  }
  Tenant& t = it->second;
  if (opt_.tenant_inflight != 0 && t.inflight >= opt_.tenant_inflight) {
    ++t.stats.shed;
    return false;
  }
  t.last_admit = ++tenant_seq_;
  ++t.inflight;
  ++t.stats.requests;
  return true;
}

void Server::tenant_release(const std::string& tenant, std::uint64_t queries,
                            std::uint64_t rounds) {
  std::lock_guard lock(tenants_mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;  // entries with inflight>0 never recycle
  Tenant& t = it->second;
  --t.inflight;
  t.stats.queries += queries;
  t.stats.rounds += rounds;
}

std::string Server::run_query(const RequestHeader& hdr, const GraphState& gs,
                              const std::vector<std::string>& body,
                              std::uint64_t* queries, std::uint64_t* rounds,
                              ErrorCode* code, std::string* err) {
  // Parse every line before building anything: cheap errors come first.
  // Body line i is session call base+i — its seed, its instance
  // randomness, and its label all derive from that index, which is the
  // whole determinism contract (blank lines consume an index and produce
  // no query).
  std::vector<std::pair<std::uint32_t, QuerySpec>> specs;
  for (std::uint32_t i = 0; i < body.size(); ++i) {
    QuerySpec spec;
    std::string perr;
    const Weights* w = gs.weights ? &*gs.weights : nullptr;
    const MixParse mp = parse_mix_line(
        gs.graph, w, body[i], hdr.base + i,
        Session::call_seed(hdr.seed, hdr.base + i), &spec, &perr);
    if (mp == MixParse::kError || mp == MixParse::kUnsupportedOp) {
      *code = mp == MixParse::kUnsupportedOp ? ErrorCode::kUnsupportedOp
                                             : ErrorCode::kBadRequest;
      *err = "body line " + std::to_string(i) + ": " + perr;
      return {};
    }
    if (mp == MixParse::kQuery) specs.emplace_back(i, std::move(spec));
  }
  if (specs.empty()) {
    *code = ErrorCode::kBadRequest;
    *err = "query request has no query lines";
    return {};
  }

  const SharedHierarchyCache::Lookup lk = cache_.get_or_build(gs);
  const engine::QueryFaults faults{&opt_.fault_factory, opt_.fault_seed};
  const engine::QueryFaults* fp = opt_.fault_factory ? &faults : nullptr;
  std::vector<engine::QueryExecution> execs;
  execs.reserve(specs.size());
  for (const auto& [index, spec] : specs) {
    execs.push_back(engine::execute_query(lk.entry->graph(),
                                          lk.entry->hierarchy(), spec, index,
                                          congest::instrument(), fp));
  }
  BatchReport b;
  engine::fold_batch(std::move(execs), b);

  const std::uint64_t build = lk.built ? lk.entry->build_rounds() : 0;
  const std::uint64_t batch_rounds =
      b.multiplexed_transport_rounds + b.serialized_rounds;
  *queries = specs.size();
  *rounds = build + batch_rounds;

  // Everything from "batch_rounds" on is a pure function of
  // (graph content, params, seed, base, body): the replayable tail the
  // client's --verify compares byte-for-byte. cache_hit/build_rounds
  // come first because they legitimately differ between a cold and a
  // warm request.
  std::ostringstream os;
  os << "{\"graph\":\"" << hdr.graph << "\",\"tenant\":\"" << hdr.tenant
     << "\",\"graph_fp\":" << gs.fp << ",\"cache_hit\":" << (lk.built ? 0 : 1)
     << ",\"build_rounds\":" << build << ",\"batch_rounds\":" << batch_rounds
     << ",\"multiplexed_transport_rounds\":" << b.multiplexed_transport_rounds
     << ",\"serialized_rounds\":" << b.serialized_rounds
     << ",\"standalone_query_rounds\":" << b.standalone_query_rounds
     << ",\"queries\":[";
  for (std::size_t i = 0; i < b.queries.size(); ++i) {
    if (i != 0) os << ',';
    b.queries[i].to_json(os);
  }
  os << "]}";
  return os.str();
}

std::string Server::run_mutate(const RequestHeader& hdr,
                               const std::vector<std::string>& body,
                               std::uint64_t* rounds, ErrorCode* code,
                               std::string* err) {
  GraphDelta delta;
  delta.reserve(body.size());
  for (std::uint32_t i = 0; i < body.size(); ++i) {
    std::istringstream ls(body[i]);
    std::string op;
    if (!(ls >> op)) continue;  // blank mutate lines are no-ops
    EdgeDelta d;
    if (op == "insert") {
      d.insert = true;
    } else if (op == "delete") {
      d.insert = false;
    } else {
      *code = ErrorCode::kBadRequest;
      *err = "body line " + std::to_string(i) +
             ": expected insert|delete <u> <v>";
      return {};
    }
    if (!(ls >> d.u >> d.v)) {
      *code = ErrorCode::kBadRequest;
      *err = "body line " + std::to_string(i) + ": bad endpoints";
      return {};
    }
    delta.push_back(d);
  }

  const SharedHierarchyCache::MutateResult res =
      cache_.mutate(hdr.graph, delta);
  if (!res.ok) {
    *code = ErrorCode::kUnknownGraph;
    *err = res.error;
    return {};
  }
  *rounds = res.repair_rounds;
  std::ostringstream os;
  os << "{\"graph\":\"" << hdr.graph << "\",\"old_fp\":" << res.old_fp
     << ",\"new_fp\":" << res.new_fp << ",\"noop\":" << (res.noop ? 1 : 0)
     << ",\"patched\":" << (res.patched ? 1 : 0)
     << ",\"dropped_busy\":" << (res.dropped_busy ? 1 : 0)
     << ",\"dropped_fallback\":" << (res.dropped_fallback ? 1 : 0)
     << ",\"oracle_checked\":" << (res.oracle_checked ? 1 : 0)
     << ",\"repair_rounds\":" << res.repair_rounds
     << ",\"num_edges\":" << res.num_edges << "}";
  return os.str();
}

std::string Server::run_stats() {
  const SharedHierarchyCache::Stats cs = cache_.stats();
  const Stats ss = stats();
  std::ostringstream os;
  os << "{\"graphs\":" << cache_.graph_names().size()
     << ",\"cache_hits\":" << cs.hits << ",\"cache_misses\":" << cs.misses
     << ",\"evictions\":" << cs.evictions << ",\"patched\":" << cs.patched
     << ",\"busy_drops\":" << cs.busy_drops
     << ",\"fallback_drops\":" << cs.fallback_drops
     << ",\"entries\":" << cs.entries << ",\"capacity\":" << cs.capacity
     << ",\"build_rounds\":" << cs.build_rounds
     << ",\"repair_rounds\":" << cs.repair_rounds
     << ",\"accepted\":" << ss.accepted << ",\"requests\":" << ss.requests
     << ",\"shed_overloaded\":" << ss.shed_overloaded
     << ",\"shed_tenant\":" << ss.shed_tenant
     << ",\"bad_requests\":" << ss.bad_requests
     << ",\"timeouts\":" << ss.timeouts
     << ",\"internal_errors\":" << ss.internal_errors << ",\"tenants\":[";
  bool first = true;
  for (const auto& [name, ts] : tenant_stats()) {
    if (!first) os << ',';
    first = false;
    os << "{\"tenant\":\"" << name << "\",\"requests\":" << ts.requests
       << ",\"queries\":" << ts.queries << ",\"rounds\":" << ts.rounds
       << ",\"shed\":" << ts.shed << "}";
  }
  os << "]}";
  return os.str();
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.shed_overloaded = shed_overloaded_.load(std::memory_order_relaxed);
  s.shed_tenant = shed_tenant_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  return s;
}

std::map<std::string, Server::TenantStats> Server::tenant_stats() const {
  std::lock_guard lock(tenants_mu_);
  std::map<std::string, TenantStats> out;
  for (const auto& [name, t] : tenants_) out[name] = t.stats;
  return out;
}

}  // namespace amix::server
