#include "server/mix.hpp"

#include <sstream>
#include <utility>

#include "util/rng.hpp"

namespace amix::server {

MixParse parse_mix_line(const Graph& g, const Weights* w,
                        const std::string& line, std::uint64_t lineno,
                        std::uint64_t spec_seed, QuerySpec* out,
                        std::string* err) {
  std::string body = line;
  if (const auto hash = body.find('#'); hash != std::string::npos) {
    body.erase(hash);
  }
  std::istringstream ls(body);
  std::string kind;
  if (!(ls >> kind)) return MixParse::kBlank;

  const engine::OpRow* row = engine::find_op(kind);
  if (row == nullptr) {
    if (err != nullptr) *err = "unsupported op '" + kind + "'";
    return MixParse::kUnsupportedOp;
  }

  QuerySpec spec;
  spec.seed = spec_seed;
  Rng rng(spec.seed);
  std::string parse_err;
  engine::OpParseContext ctx{g, w, ls, rng, lineno, spec, parse_err};
  if (!row->parse(ctx)) {
    if (err != nullptr) *err = std::move(parse_err);
    return MixParse::kError;
  }
  *out = std::move(spec);
  return MixParse::kQuery;
}

}  // namespace amix::server
