#include "server/mix.hpp"

#include <charconv>
#include <sstream>
#include <utility>

#include "routing/request.hpp"
#include "util/rng.hpp"

namespace amix::server {

namespace {

/// Read the next whitespace-separated token as a decimal u32. An absent
/// token leaves *out at its default and succeeds; a present token that
/// is not a full decimal u32 (junk, sign, overflow) fails — a daemon
/// must reject it, not silently zero it the way stream extraction does.
bool next_u32(std::istringstream& ls, std::uint32_t* out) {
  std::string tok;
  if (!(ls >> tok)) return true;
  const char* const end = tok.data() + tok.size();
  const auto [p, ec] = std::from_chars(tok.data(), end, *out);
  return ec == std::errc() && p == end;
}

}  // namespace

MixParse parse_mix_line(const Graph& g, const Weights* w,
                        const std::string& line, std::uint64_t lineno,
                        std::uint64_t spec_seed, QuerySpec* out,
                        std::string* err) {
  std::string body = line;
  if (const auto hash = body.find('#'); hash != std::string::npos) {
    body.erase(hash);
  }
  std::istringstream ls(body);
  std::string kind;
  if (!(ls >> kind)) return MixParse::kBlank;

  QuerySpec spec;
  spec.seed = spec_seed;
  Rng rng(spec.seed);
  if (kind == "mst") {
    spec.op = MstQuery{w != nullptr ? *w : distinct_random_weights(g, rng),
                       MstParams{}};
    spec.label = "mst@" + std::to_string(lineno);
  } else if (kind == "route") {
    std::string inst = "perm";
    ls >> inst;
    std::uint32_t phases = 1;
    if (!next_u32(ls, &phases)) {
      if (err != nullptr) *err = "route phases must be a decimal u32";
      return MixParse::kError;
    }
    if (phases > kMaxRoutePhases) {
      if (err != nullptr) {
        *err = "route phases " + std::to_string(phases) + " exceeds max " +
               std::to_string(kMaxRoutePhases);
      }
      return MixParse::kError;
    }
    std::vector<RouteRequest> reqs;
    if (inst == "perm") {
      reqs = permutation_instance(g, rng);
    } else if (inst == "demand") {
      reqs = degree_demand_instance(g, rng);
    } else if (inst == "a2a") {
      reqs = all_to_all_instance(g);
    } else {
      if (err != nullptr) *err = "unknown route instance '" + inst + "'";
      return MixParse::kError;
    }
    spec.op = RouteQuery{std::move(reqs), phases};
    spec.label = "route-" + inst + "@" + std::to_string(lineno);
  } else if (kind == "clique") {
    spec.op = CliqueQuery{};
    spec.label = "clique@" + std::to_string(lineno);
  } else if (kind == "walks") {
    std::uint32_t count = g.num_nodes();
    std::uint32_t steps = 8;
    if (!next_u32(ls, &count) || !next_u32(ls, &steps)) {
      if (err != nullptr) *err = "walks count/steps must be decimal u32";
      return MixParse::kError;
    }
    if (count > g.num_nodes()) {
      if (err != nullptr) {
        *err = "walks count " + std::to_string(count) +
               " exceeds graph nodes " + std::to_string(g.num_nodes());
      }
      return MixParse::kError;
    }
    if (steps > kMaxWalkSteps) {
      if (err != nullptr) {
        *err = "walks steps " + std::to_string(steps) + " exceeds max " +
               std::to_string(kMaxWalkSteps);
      }
      return MixParse::kError;
    }
    std::vector<std::uint32_t> starts(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      starts[i] = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    }
    spec.op = WalkQuery{std::move(starts), WalkKind::kLazy, steps};
    spec.label = "walks@" + std::to_string(lineno);
  } else {
    if (err != nullptr) *err = "unknown query kind '" + kind + "'";
    return MixParse::kError;
  }
  *out = std::move(spec);
  return MixParse::kQuery;
}

}  // namespace amix::server
