#include "server/mix.hpp"

#include <sstream>
#include <utility>

#include "routing/request.hpp"
#include "util/rng.hpp"

namespace amix::server {

MixParse parse_mix_line(const Graph& g, const Weights* w,
                        const std::string& line, std::uint64_t lineno,
                        std::uint64_t spec_seed, QuerySpec* out,
                        std::string* err) {
  std::string body = line;
  if (const auto hash = body.find('#'); hash != std::string::npos) {
    body.erase(hash);
  }
  std::istringstream ls(body);
  std::string kind;
  if (!(ls >> kind)) return MixParse::kBlank;

  QuerySpec spec;
  spec.seed = spec_seed;
  Rng rng(spec.seed);
  if (kind == "mst") {
    spec.op = MstQuery{w != nullptr ? *w : distinct_random_weights(g, rng),
                       MstParams{}};
    spec.label = "mst@" + std::to_string(lineno);
  } else if (kind == "route") {
    std::string inst = "perm";
    ls >> inst;
    std::uint32_t phases = 1;
    ls >> phases;
    std::vector<RouteRequest> reqs;
    if (inst == "perm") {
      reqs = permutation_instance(g, rng);
    } else if (inst == "demand") {
      reqs = degree_demand_instance(g, rng);
    } else if (inst == "a2a") {
      reqs = all_to_all_instance(g);
    } else {
      if (err != nullptr) *err = "unknown route instance '" + inst + "'";
      return MixParse::kError;
    }
    spec.op = RouteQuery{std::move(reqs), phases};
    spec.label = "route-" + inst + "@" + std::to_string(lineno);
  } else if (kind == "clique") {
    spec.op = CliqueQuery{};
    spec.label = "clique@" + std::to_string(lineno);
  } else if (kind == "walks") {
    std::uint32_t count = g.num_nodes();
    std::uint32_t steps = 8;
    ls >> count >> steps;
    std::vector<std::uint32_t> starts(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      starts[i] = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    }
    spec.op = WalkQuery{std::move(starts), WalkKind::kLazy, steps};
    spec.label = "walks@" + std::to_string(lineno);
  } else {
    if (err != nullptr) *err = "unknown query kind '" + kind + "'";
    return MixParse::kError;
  }
  *out = std::move(spec);
  return MixParse::kQuery;
}

}  // namespace amix::server
