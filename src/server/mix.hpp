#pragma once

// The workload-mix grammar as a library.
//
// One query per line, '#' starts a comment, blank lines are skipped:
//
//   mst
//   route perm|demand|a2a [phases]
//   clique
//   walks [count] [steps]
//
// This grammar is both amixctl's mix-file format AND the amixd wire
// format (a query request's body is mix lines, see server/protocol.hpp),
// so parsing lives here, shared by the workload subcommand, the daemon,
// and the client's serial-replay verifier — one grammar, one parser.
//
// Seeding stays with the caller: each parsed query runs with the
// `spec_seed` the caller supplies (amixctl workload keys it by line
// number, the server by the tenant's (session_seed, call index) — the
// determinism contract of DESIGN.md §14). ALL of a line's instance
// randomness (MST weights when the graph has none, route endpoints, walk
// starts) derives from that seed alone, so a spec is reproducible from
// (graph, line, seed) regardless of who parsed it.
//
// Unlike the original amixctl-internal parser this one REPORTS errors
// instead of aborting — a daemon must answer a malformed line with a
// typed error, not die.

#include <cstdint>
#include <string>
#include <vector>

#include "engine/query.hpp"
#include "graph/weighted_graph.hpp"

namespace amix::server {

/// Grammar-level hard ceilings on wire-controlled sizes: walk step
/// counts and route phase counts (walk count is bounded by the graph's
/// own node count, so it needs no constant). These are part of the
/// grammar, NOT server configuration — every parser (amixctl workload,
/// the daemon, the client's serial-replay verifier) must agree on what
/// is well-formed, and a daemon must never let a one-line request buy
/// unbounded memory or CPU.
inline constexpr std::uint32_t kMaxWalkSteps = 4096;
inline constexpr std::uint32_t kMaxRoutePhases = 4096;

enum class MixParse : std::uint8_t {
  kQuery,  // *out is a parsed spec
  kBlank,  // comment / blank line, nothing parsed
  kError,  // malformed; *err names the problem
};

/// Parse one mix line against `g` (weights `w` may be null: mst lines
/// then draw distinct random weights from the spec seed). `lineno` only
/// labels the spec ("mst@3"); `spec_seed` is the seed the query will run
/// with.
MixParse parse_mix_line(const Graph& g, const Weights* w,
                        const std::string& line, std::uint64_t lineno,
                        std::uint64_t spec_seed, QuerySpec* out,
                        std::string* err);

}  // namespace amix::server
