#pragma once

// The workload-mix grammar as a library.
//
// One query per line, '#' starts a comment, blank lines are skipped:
//
//   mst
//   route perm|demand|a2a [phases]
//   clique
//   walks [count] [steps]
//   matching [phases]
//   mincut [trees]
//   sssp [source] [hops]
//
// This grammar is both amixctl's mix-file format AND the amixd wire
// format (a query request's body is mix lines, see server/protocol.hpp),
// so parsing lives here, shared by the workload subcommand, the daemon,
// and the client's serial-replay verifier — one grammar, one parser.
// The per-op parse rules themselves live in the op-registration table
// (engine/ops.cpp): this function resolves the op word via find_op and
// runs the row's rule, so a newly registered kind is parseable everywhere
// at once, and an UNREGISTERED word is a distinct, typed result
// (kUnsupportedOp) an amix/1 server can answer with its own error code —
// old clients talking to a newer daemon degrade cleanly, and vice versa.
//
// Seeding stays with the caller: each parsed query runs with the
// `spec_seed` the caller supplies (amixctl workload keys it by line
// number, the server by the tenant's (session_seed, call index) — the
// determinism contract of DESIGN.md §14). ALL of a line's instance
// randomness (MST weights when the graph has none, route endpoints, walk
// starts) derives from that seed alone, so a spec is reproducible from
// (graph, line, seed) regardless of who parsed it.
//
// Unlike the original amixctl-internal parser this one REPORTS errors
// instead of aborting — a daemon must answer a malformed line with a
// typed error, not die.

#include <cstdint>
#include <string>
#include <vector>

#include "engine/ops.hpp"
#include "engine/query.hpp"
#include "graph/weighted_graph.hpp"

namespace amix::server {

// The grammar's hard ceilings on wire-controlled sizes moved into the op
// table header alongside the parse rules they bound; re-exported here for
// existing includers of the grammar.
using engine::kMaxRoutePhases;
using engine::kMaxWalkSteps;

enum class MixParse : std::uint8_t {
  kQuery,          // *out is a parsed spec
  kBlank,          // comment / blank line, nothing parsed
  kError,          // malformed; *err names the problem
  kUnsupportedOp,  // first word is not a registered op; *err names it
};

/// Parse one mix line against `g` (weights `w` may be null: ops that need
/// weights then draw distinct random ones from the spec seed). `lineno`
/// only labels the spec ("mst@3"); `spec_seed` is the seed the query will
/// run with.
MixParse parse_mix_line(const Graph& g, const Weights* w,
                        const std::string& line, std::uint64_t lineno,
                        std::uint64_t spec_seed, QuerySpec* out,
                        std::string* err);

}  // namespace amix::server
