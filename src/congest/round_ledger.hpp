#pragma once

// RoundLedger: the single source of truth for charged CONGEST rounds.
//
// Every algorithm in the library reports its cost by charging this ledger;
// benches compare algorithms by ledger totals. Charges can be tagged with a
// phase name so the benches can break costs down by construction stage
// (e.g. "g0-embed" / "levels" / "portals" / "route").

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/ordered_map.hpp"

namespace amix {

class RoundLedger {
 public:
  void charge(std::uint64_t rounds) { total_ += rounds; }

  void charge(std::string_view phase, std::uint64_t rounds) {
    total_ += rounds;
    phases_.at_or_insert(phase) += rounds;
  }

  std::uint64_t total() const { return total_; }

  std::uint64_t phase_total(std::string_view phase) const {
    const std::uint64_t* sum = phases_.find(phase);
    return sum ? *sum : 0;
  }

  const std::vector<std::pair<std::string, std::uint64_t>>& phases() const {
    return phases_.items();
  }

  /// The phase breakdown as the ordered map itself (lookup + deterministic
  /// iteration); phases() above stays for vector-shaped consumers.
  const OrderedMap<std::uint64_t>& phase_map() const { return phases_; }

  void reset() {
    total_ = 0;
    phases_.clear();
  }

 private:
  std::uint64_t total_ = 0;
  OrderedMap<std::uint64_t> phases_;
};

/// RAII helper: accumulates into a sub-ledger, then folds the result into
/// the parent under one phase label on destruction.
class PhaseScope {
 public:
  PhaseScope(RoundLedger& parent, std::string phase)
      : parent_(parent), phase_(std::move(phase)) {}
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope() { parent_.charge(phase_, sub_.total()); }

  RoundLedger& ledger() { return sub_; }

 private:
  RoundLedger& parent_;
  std::string phase_;
  RoundLedger sub_;
};

}  // namespace amix
