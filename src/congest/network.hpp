#pragma once

// Synchronous message-passing kernel: the literal CONGEST model.
//
// Per round, every node reads the messages that arrived on its ports,
// updates local state, and sends at most ONE message per port. A message is
// two 64-bit words — a constant number of O(log n)-bit fields, which is the
// CONGEST budget. The kernel enforces the per-arc capacity by construction
// and charges exactly one ledger round per synchronous step.
//
// The heavy machinery of the paper does not run on this kernel (it uses the
// congestion-faithful TokenTransport; see DESIGN.md Section 3) — the kernel
// exists for the classic building blocks (BFS trees, leader election,
// broadcast/convergecast, flooding MST baselines) and as ground truth for
// tests.
//
// Execution model: CONGEST rounds are embarrassingly parallel — a handler
// reads only node v's inbox and writes only node v's outbox — so with an
// ExecPolicy of more than one thread the kernel sweeps node shards
// concurrently (static contiguous shards; see util/thread_pool.hpp) and
// delivers receiver-side, one thread per receiver shard, each inbox slot
// written exactly once. Results are bit-identical at every thread count
// PROVIDED the handler honors the synchronous contract (per-node state
// only; no vector<bool> shared across nodes — element access races).
// When a CongestInstrument is installed the kernel always runs the serial
// instrumented path, preserving the adversarial-order and drop-fault
// callback sequence exactly.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "congest/round_ledger.hpp"
#include "graph/graph.hpp"
#include "util/thread_pool.hpp"

namespace amix::congest {

class CongestInstrument;  // congest/instrument.hpp

struct Message {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Messages visible to node v this round, indexed by v's port.
class Inbox {
 public:
  Inbox(std::span<const std::optional<Message>> slots, bool any_arrived)
      : slots_(slots), any_arrived_(any_arrived) {}

  std::uint32_t num_ports() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  const std::optional<Message>& at(std::uint32_t port) const {
    return slots_[port];
  }
  /// O(1): the network tracks a per-node "anything arrived" flag during
  /// delivery, so handlers can early-out without scanning every port.
  bool empty() const { return !any_arrived_; }

 private:
  std::span<const std::optional<Message>> slots_;
  bool any_arrived_;
};

/// Send buffer for node v this round; at most one message per port.
class Outbox {
 public:
  Outbox(std::span<std::optional<Message>> slots, bool* any_sent)
      : slots_(slots), any_sent_(any_sent) {}

  void send(std::uint32_t port, Message msg) {
    AMIX_CHECK_MSG(port < slots_.size(), "send: bad port");
    AMIX_CHECK_MSG(!slots_[port].has_value(),
                   "CONGEST violation: two messages on one arc in one round");
    slots_[port] = msg;
    *any_sent_ = true;
  }

  std::uint32_t num_ports() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

 private:
  std::span<std::optional<Message>> slots_;
  bool* any_sent_;  // per shard under parallel execution
};

class SyncNetwork {
 public:
  /// handler(v, inbox, outbox) runs once per node per round.
  using Handler = std::function<void(NodeId, const Inbox&, Outbox&)>;

  SyncNetwork(const Graph& g, RoundLedger& ledger, ExecPolicy exec = {});

  /// Run exactly `rounds` synchronous rounds.
  void run_rounds(const Handler& h, std::uint32_t rounds);

  /// Run until a round in which no node sends anything (that quiet round is
  /// charged too — the nodes cannot know it was quiet in advance). Aborts
  /// after max_rounds.
  std::uint32_t run_until_quiet(const Handler& h, std::uint32_t max_rounds);

  std::uint64_t rounds_executed() const { return rounds_executed_; }
  const Graph& graph() const { return g_; }
  const ExecPolicy& exec() const { return exec_; }

 private:
  bool step(const Handler& h);  // returns true if any message was sent
  bool step_serial_instrumented(const Handler& h, CongestInstrument& ins);
  void invoke_handler(const Handler& h, NodeId v, bool* any_sent);

  const Graph& g_;
  RoundLedger& ledger_;
  ExecPolicy exec_;
  std::vector<std::uint32_t> offsets_;          // node -> first slot
  std::vector<std::optional<Message>> inbox_;   // per directed arc slot
  std::vector<std::optional<Message>> outbox_;  // per directed arc slot
  std::vector<std::uint32_t> peer_slot_;        // arc slot -> peer arc slot
  std::vector<std::uint8_t> arrived_;           // node -> any inbox message
  std::uint64_t rounds_executed_ = 0;
};

}  // namespace amix::congest
