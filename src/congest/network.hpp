#pragma once

// Synchronous message-passing kernel: the literal CONGEST model.
//
// Per round, every node reads the messages that arrived on its ports,
// updates local state, and sends at most ONE message per port. A message is
// two 64-bit words — a constant number of O(log n)-bit fields, which is the
// CONGEST budget. The kernel enforces the per-arc capacity by construction
// and charges exactly one ledger round per synchronous step.
//
// The heavy machinery of the paper does not run on this kernel (it uses the
// congestion-faithful TokenTransport; see DESIGN.md Section 3) — the kernel
// exists for the classic building blocks (BFS trees, leader election,
// broadcast/convergecast, flooding MST baselines) and as ground truth for
// tests.
//
// Execution model: CONGEST rounds are embarrassingly parallel — a handler
// reads only node v's inbox and writes only node v's outbox — so with an
// ExecPolicy of more than one thread the kernel sweeps node shards
// concurrently (static contiguous shards; see util/thread_pool.hpp) and
// delivers receiver-side, one thread per receiver shard, each inbox slot
// written exactly once. Results are bit-identical at every thread count
// PROVIDED the handler honors the synchronous contract (per-node state
// only; no vector<bool> shared across nodes — element access races).
// When a CongestInstrument is installed the kernel always runs the serial
// instrumented path, preserving the adversarial-order and drop-fault
// callback sequence exactly.
//
// Memory layout: slots are struct-of-arrays — a flat Message array plus a
// per-slot epoch stamp word (slot occupied iff its stamp equals the
// current round's epoch). Compared to vector<optional<Message>> this
// removes the per-slot presence padding from the payload sweep AND the
// per-round outbox-clearing pass entirely: advancing the epoch invalidates
// every stale slot at once. Inbox/Outbox expose optional-shaped accessors
// (has_value / * / ->) over that layout, so handlers are unchanged.

#include <cstdint>
#include <functional>
#include <vector>

#include "congest/round_ledger.hpp"
#include "graph/graph.hpp"
#include "util/thread_pool.hpp"

namespace amix::congest {

class CongestInstrument;  // congest/instrument.hpp

struct Message {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Messages visible to node v this round, indexed by v's port.
class Inbox {
 public:
  /// One inbox slot, optional-shaped: has_value()/operator*/operator->
  /// over the SoA message + stamp arrays. Cheap to copy (one pointer).
  class Slot {
   public:
    explicit Slot(const Message* m) : m_(m) {}
    bool has_value() const { return m_ != nullptr; }
    const Message& operator*() const {
      AMIX_DCHECK(m_ != nullptr);
      return *m_;
    }
    const Message* operator->() const {
      AMIX_DCHECK(m_ != nullptr);
      return m_;
    }
    const Message& value() const {
      AMIX_CHECK(m_ != nullptr);
      return *m_;
    }

   private:
    const Message* m_;
  };

  Inbox(const Message* msgs, const std::uint64_t* stamps, std::uint32_t ports,
        std::uint64_t epoch, bool any_arrived)
      : msgs_(msgs),
        stamps_(stamps),
        ports_(ports),
        epoch_(epoch),
        any_arrived_(any_arrived) {}

  std::uint32_t num_ports() const { return ports_; }
  Slot at(std::uint32_t port) const {
    AMIX_DCHECK(port < ports_);
    return Slot(stamps_[port] == epoch_ ? &msgs_[port] : nullptr);
  }
  /// O(1): the network tracks a per-node "anything arrived" flag during
  /// delivery, so handlers can early-out without scanning every port.
  bool empty() const { return !any_arrived_; }

 private:
  const Message* msgs_;
  const std::uint64_t* stamps_;
  std::uint32_t ports_;
  std::uint64_t epoch_;
  bool any_arrived_;
};

/// Send buffer for node v this round; at most one message per port.
class Outbox {
 public:
  Outbox(Message* msgs, std::uint64_t* stamps, std::uint32_t ports,
         std::uint64_t epoch, bool* any_sent)
      : msgs_(msgs),
        stamps_(stamps),
        ports_(ports),
        epoch_(epoch),
        any_sent_(any_sent) {}

  void send(std::uint32_t port, Message msg) {
    AMIX_CHECK_MSG(port < ports_, "send: bad port");
    AMIX_CHECK_MSG(stamps_[port] != epoch_,
                   "CONGEST violation: two messages on one arc in one round");
    msgs_[port] = msg;
    stamps_[port] = epoch_;
    *any_sent_ = true;
  }

  std::uint32_t num_ports() const { return ports_; }

 private:
  Message* msgs_;
  std::uint64_t* stamps_;
  std::uint32_t ports_;
  std::uint64_t epoch_;
  bool* any_sent_;  // per shard under parallel execution
};

class SyncNetwork {
 public:
  /// handler(v, inbox, outbox) runs once per node per round.
  using Handler = std::function<void(NodeId, const Inbox&, Outbox&)>;

  SyncNetwork(const Graph& g, RoundLedger& ledger, ExecPolicy exec = {});

  /// Run exactly `rounds` synchronous rounds.
  void run_rounds(const Handler& h, std::uint32_t rounds);

  /// Run until a round in which no node sends anything (that quiet round is
  /// charged too — the nodes cannot know it was quiet in advance). Aborts
  /// after max_rounds.
  std::uint32_t run_until_quiet(const Handler& h, std::uint32_t max_rounds);

  std::uint64_t rounds_executed() const { return rounds_executed_; }
  const Graph& graph() const { return g_; }
  const ExecPolicy& exec() const { return exec_; }

 private:
  bool step(const Handler& h);  // returns true if any message was sent
  bool step_serial_instrumented(const Handler& h, CongestInstrument& ins);
  void invoke_handler(const Handler& h, NodeId v, std::uint64_t epoch,
                      bool* any_sent);

  const Graph& g_;
  RoundLedger& ledger_;
  ExecPolicy exec_;
  std::vector<std::uint32_t> offsets_;       // node -> first slot
  // Arc-balanced node-shard cut points (weighted_shard_bounds over
  // offsets_): per-node sweep work is proportional to degree, so equal-arc
  // shards keep threads busy on degree-skewed graphs. Computed once — the
  // exec policy and topology are fixed for the network's lifetime.
  std::vector<std::size_t> shard_bounds_;
  // SoA slot storage: payloads + presence stamps, per directed arc slot.
  // Round r's epoch is r+1; a slot holds a live message iff its stamp
  // equals the epoch it is read under (inbox: r+1 written during round r's
  // delivery, read in round r+1; outbox: r+1 written and read in round
  // r+1's delivery). Stale slots need no clearing — the epoch moved on.
  std::vector<Message> inbox_msg_;
  std::vector<Message> outbox_msg_;
  std::vector<std::uint64_t> inbox_stamp_;
  std::vector<std::uint64_t> outbox_stamp_;
  std::vector<std::uint32_t> peer_slot_;     // arc slot -> peer arc slot
  std::vector<std::uint8_t> arrived_;        // node -> any inbox message
  std::uint64_t rounds_executed_ = 0;
};

}  // namespace amix::congest
