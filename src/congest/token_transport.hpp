#pragma once

// Congestion-faithful bulk token movement (the Lemma 2.5 schedule).
//
// A "parallel step" moves many tokens, each across one chosen arc of a
// CommGraph. Since every arc carries one O(log n)-bit message per round,
// a step whose most-loaded arc carries L tokens needs exactly L rounds of
// that graph (the optimal realization of the paper's fixed-length phases).
// TokenTransport tallies per-arc loads for a step, reports the max, and
// charges `max_load * round_cost()` base rounds to the ledger.
//
// It also tracks the Lemma 2.4 statistic (max tokens resident at a node)
// so tests/benches can check the O(k d(v) + log n) bound.

#include <cstdint>
#include <vector>

#include "congest/comm_graph.hpp"
#include "congest/round_ledger.hpp"

namespace amix {

class TokenTransport {
 public:
  explicit TokenTransport(const CommGraph& g) : g_(g), load_(g.num_arcs(), 0) {}

  /// Record that one token crosses arc (v, port) this step.
  void move(std::uint32_t v, std::uint32_t port) {
    const std::uint64_t idx = g_.arc_index(v, port);
    if (load_[idx] == 0) touched_.push_back(idx);
    ++load_[idx];
    if (load_[idx] > step_max_) step_max_ = load_[idx];
    ++step_moves_;
  }

  /// Max per-arc load of the current step.
  std::uint32_t step_max_load() const { return step_max_; }
  std::uint64_t step_moves() const { return step_moves_; }

  /// Close the step: charge `max_load * round_cost` base rounds (0 if the
  /// step moved nothing) and reset per-step state. Returns the rounds of
  /// *this* graph the step took (i.e. the max load).
  std::uint32_t commit_step(RoundLedger& ledger) {
    const std::uint32_t cost = step_max_;
    ledger.charge(static_cast<std::uint64_t>(cost) * g_.round_cost());
    total_graph_rounds_ += cost;
    for (const std::uint64_t idx : touched_) load_[idx] = 0;
    touched_.clear();
    step_max_ = 0;
    step_moves_ = 0;
    return cost;
  }

  /// Sum over committed steps of their max loads — the total cost in rounds
  /// of this graph (multiply by round_cost() for base rounds).
  std::uint64_t total_graph_rounds() const { return total_graph_rounds_; }

  const CommGraph& graph() const { return g_; }

 private:
  const CommGraph& g_;
  std::vector<std::uint32_t> load_;
  std::vector<std::uint64_t> touched_;
  std::uint32_t step_max_ = 0;
  std::uint64_t step_moves_ = 0;
  std::uint64_t total_graph_rounds_ = 0;
};

}  // namespace amix
