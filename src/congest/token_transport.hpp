#pragma once

// Congestion-faithful bulk token movement (the Lemma 2.5 schedule).
//
// A "parallel step" moves many tokens, each across one chosen arc of a
// CommGraph. Since every arc carries one O(log n)-bit message per round,
// a step whose most-loaded arc carries L tokens needs exactly L rounds of
// that graph (the optimal realization of the paper's fixed-length phases).
// TokenTransport tallies per-arc loads for a step, reports the max, and
// charges `max_load * round_cost()` base rounds to the ledger.
//
// It also tracks the Lemma 2.4 statistic (max tokens resident at a node):
// per step, the peak number of tokens arriving at a single node, folded
// into a running maximum at commit_step so tests/benches can check the
// O(k d(v) + log n) bound across a whole run.
//
// When a congest::CongestInstrument is installed (see instrument.hpp),
// every move is reported to it and may be charged extra arc slots (fault
// injection: retransmits after drops, duplicate copies); every commit is
// reported with the rounds charged, which is what lets the sim harness
// audit the ledger independently.
//
// Sharded accumulation (the parallel path): a caller that advances tokens
// from several threads gives each thread its own TokenTransport::Shard.
// Shards tally per-arc loads and per-node arrivals privately (disjoint
// state, no synchronization), and commit_step_shards merges them in
// increasing shard index order before charging — per-arc loads and
// per-node arrivals are sums, and max-of-sums is independent of both the
// merge order and the shard boundaries, so any shard count charges
// exactly what the serial path charges. When an instrument is installed,
// shards instead LOG their moves (in item order) and the merge replays
// the logs serially through move(), shard 0 first — which reproduces the
// serial path's per-move instrument callback order exactly, keeping
// stateful fault plans and the conformance audit bit-identical too.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "congest/comm_graph.hpp"
#include "congest/instrument.hpp"
#include "congest/round_ledger.hpp"

namespace amix {

class TokenTransport {
 public:
  explicit TokenTransport(const CommGraph& g)
      : g_(g),
        view_(g.view()),
        load_(g.num_arcs(), 0),
        resident_(g.num_nodes(), 0) {}

  /// Record that one token crosses arc (v, port) this step. Runs on the
  /// flat CommView: arc_index/neighbor are two array reads, no dispatch.
  /// The per-step maxima are NOT updated here — commit_step derives them
  /// from the touched lists in the same pass that clears the tallies, so
  /// the per-move path carries no max-tracking dependency chains.
  void move(std::uint32_t v, std::uint32_t port) {
    const std::uint64_t idx = view_.arc_index(v, port);
    std::uint32_t slots = 1;
    if (congest::CongestInstrument* ins = congest::instrument()) {
      slots += ins->on_token_move(g_, idx);
    }
    if (load_[idx] == 0) touched_.push_back(idx);
    load_[idx] += slots;
    ++step_moves_;
    // Lemma 2.4 residency: the token comes to rest at the arc's head.
    const std::uint32_t w = view_.neighbor(v, port);
    if (resident_[w] == 0) touched_nodes_.push_back(w);
    ++resident_[w];
  }

  /// Max per-arc load of the current step (scan of the arcs the step
  /// touched; cheap relative to the moves that produced them).
  std::uint32_t step_max_load() const {
    std::uint32_t mx = step_max_;
    for (const std::uint64_t idx : touched_) mx = std::max(mx, load_[idx]);
    return mx;
  }
  std::uint64_t step_moves() const { return step_moves_; }

  /// Peak tokens arriving at a single node during the current step (the
  /// Lemma 2.4 statistic, before commit folds it into the running max).
  std::uint32_t step_residency() const {
    std::uint32_t res = step_residency_;
    for (const std::uint32_t w : touched_nodes_) {
      res = std::max(res, resident_[w]);
    }
    return res;
  }

  /// Close the step: charge `max_load * round_cost` base rounds (0 if the
  /// step moved nothing), fold the residency peak into the running
  /// maximum, and reset per-step state. Returns the rounds of *this*
  /// graph the step took (i.e. the max load). The max-and-clear sweeps
  /// are fused: one pass over the touched arcs/nodes per step.
  std::uint32_t commit_step(RoundLedger& ledger) {
    std::uint32_t cost = step_max_;  // pre-merged seed (single-shard path)
    for (const std::uint64_t idx : touched_) {
      cost = std::max(cost, load_[idx]);
      load_[idx] = 0;
    }
    touched_.clear();
    std::uint32_t res = step_residency_;
    for (const std::uint32_t w : touched_nodes_) {
      res = std::max(res, resident_[w]);
      resident_[w] = 0;
    }
    touched_nodes_.clear();
    if (congest::CongestInstrument* ins = congest::instrument()) {
      ins->on_step_commit(g_, cost);
    }
    ledger.charge(static_cast<std::uint64_t>(cost) * view_.round_cost);
    total_graph_rounds_ += cost;
    if (res > max_node_residency_) max_node_residency_ = res;
    step_max_ = 0;
    step_moves_ = 0;
    step_residency_ = 0;
    return cost;
  }

  /// Sum over committed steps of their max loads — the total cost in rounds
  /// of this graph (multiply by round_cost() for base rounds).
  std::uint64_t total_graph_rounds() const { return total_graph_rounds_; }

  /// Max over committed steps of the per-step residency peak — the
  /// Lemma 2.4 `O(k d(v) + log n)` quantity for the whole run.
  std::uint32_t max_node_residency() const { return max_node_residency_; }

  /// Zero the cross-step accumulators (total_graph_rounds, residency max)
  /// so one transport — and its O(num_arcs) tally arrays — can be reused
  /// across runs instead of reallocated per run (the walk engine keeps a
  /// persistent transport; at 10^7-node scale the per-run allocation was
  /// the dominant setup cost). Per-step tallies are already zero between
  /// steps (commit clears them), so this is two scalar stores.
  void reset_run_stats() {
    total_graph_rounds_ = 0;
    max_node_residency_ = 0;
  }

  const CommGraph& graph() const { return g_; }

  /// Thread-private move accumulator for one shard of a parallel step.
  /// No internal synchronization: exactly one thread may touch a Shard
  /// during the parallel phase, and only the committing thread afterwards.
  class Shard {
   public:
    /// Arm the shard for one parallel step. `log_moves` selects logging
    /// mode (required whenever an instrument is installed, so the merge
    /// can replay moves in order through the instrument seam).
    void begin_step(bool log_moves) {
      log_ = log_moves;
      AMIX_DCHECK(touched_.empty() && touched_nodes_.empty() &&
                  move_log_.empty() && moves_ == 0);
    }

    /// Record one token crossing arc (v, port); same contract as
    /// TokenTransport::move but on this shard's private tallies. Like the
    /// serial path, runs on the flat CommView — no virtual dispatch.
    ///
    /// Touched-entry tracking is adaptive: below the density thresholds
    /// the shard lists every first-touched arc/node (so sparse steps
    /// commit in O(touched)); once a step has touched a constant fraction
    /// of the array the shard goes dense — it stops listing, and the
    /// commit scans the whole array instead (vectorizable, and the
    /// per-move first-touch branch becomes never-taken). The flip depends
    /// only on the move sequence, never on timing, so results stay
    /// bit-identical.
    void move(std::uint32_t v, std::uint32_t port) {
      ++moves_;
      if (log_) {
        move_log_.push_back(static_cast<std::uint64_t>(v) << 32 | port);
        return;
      }
      const std::uint64_t idx = g_.arc_index(v, port);
      // Flag first: once dense, the (data-dependent, mispredict-prone)
      // zero test short-circuits away and the branch predicts perfectly.
      if (!dense_arcs_ && load_[idx] == 0) {
        touched_.push_back(idx);
        if (touched_.size() >= arc_dense_at_) dense_arcs_ = true;
      }
      ++load_[idx];
      const std::uint32_t w = g_.neighbor(v, port);
      if (!dense_nodes_ && resident_[w] == 0) {
        touched_nodes_.push_back(w);
        if (touched_nodes_.size() >= node_dense_at_) dense_nodes_ = true;
      }
      ++resident_[w];
    }

    /// Moves recorded since begin_step (valid before the commit merge).
    std::uint64_t step_moves() const { return moves_; }

    /// Per-node arrival tallies of the current step (valid before the
    /// commit merge, tally mode only — logging shards defer their tallies
    /// to the replay). Callers that also need per-node totals (e.g. the
    /// walk engine's Lemma 2.4 occupancy) read these instead of
    /// double-counting arrivals. When arrivals_listed() is false the
    /// shard went dense and step_arrival_nodes() is NOT exhaustive — scan
    /// step_arrivals over all nodes instead.
    bool arrivals_listed() const { return !dense_nodes_; }
    std::span<const std::uint32_t> step_arrival_nodes() const {
      return touched_nodes_;
    }
    std::uint32_t step_arrivals(std::uint32_t w) const { return resident_[w]; }

   private:
    friend class TokenTransport;
    CommView g_;                           // flat view of the walked graph
    std::vector<std::uint32_t> load_;      // per-arc crossings, this step
    std::vector<std::uint32_t> resident_;  // per-node arrivals, this step
    std::vector<std::uint64_t> touched_;
    std::vector<std::uint32_t> touched_nodes_;
    std::vector<std::uint64_t> move_log_;  // packed (v << 32 | port)
    std::uint64_t moves_ = 0;
    // Density flip points (set by make_shards): once a step's touched
    // list reaches this size, commit scans the full array instead.
    std::size_t arc_dense_at_ = SIZE_MAX;
    std::size_t node_dense_at_ = SIZE_MAX;
    bool dense_arcs_ = false;
    bool dense_nodes_ = false;
    bool log_ = false;
  };

  /// Shards ready for parallel accumulation against this transport's graph.
  std::vector<Shard> make_shards(std::uint32_t count) const;

  /// Close a sharded step: deterministically merge the shards in
  /// increasing index order into the step tallies, then commit exactly as
  /// commit_step would. Shards are left re-armed for the next step.
  /// Requires: every move of the step went through one of `shards` (the
  /// serial move() API must not be mixed into the same step).
  std::uint32_t commit_step_shards(std::span<Shard> shards,
                                   RoundLedger& ledger);

 private:
  const CommGraph& g_;  // for instrument callbacks; hot loops use view_
  CommView view_;
  std::vector<std::uint32_t> load_;
  std::vector<std::uint64_t> touched_;
  std::vector<std::uint32_t> resident_;       // per-node arrivals this step
  std::vector<std::uint32_t> touched_nodes_;  // nodes with arrivals this step
  std::uint32_t step_max_ = 0;
  std::uint32_t step_residency_ = 0;
  std::uint64_t step_moves_ = 0;
  std::uint64_t total_graph_rounds_ = 0;
  std::uint32_t max_node_residency_ = 0;
};

}  // namespace amix
