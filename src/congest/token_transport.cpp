#include "congest/token_transport.hpp"

namespace amix {

std::vector<TokenTransport::Shard> TokenTransport::make_shards(
    std::uint32_t count) const {
  std::vector<Shard> shards(count);
  for (Shard& s : shards) {
    s.g_ = view_;
    s.load_.assign(view_.num_arcs, 0);
    s.resident_.assign(view_.num_nodes, 0);
    // Density flip points: once a step has first-touched 1/8 of an array,
    // a full vectorized scan at commit is cheaper than keeping (and later
    // chasing) the touched list. The floor keeps tiny graphs listed.
    s.arc_dense_at_ = std::max<std::size_t>(64, view_.num_arcs / 8);
    s.node_dense_at_ = std::max<std::size_t>(64, view_.num_nodes / 8);
  }
  return shards;
}

namespace {

/// Max over a whole tally array, zeroing it behind the scan (the dense
/// commit path; auto-vectorizes).
template <typename T>
std::uint32_t max_and_clear_all(std::vector<T>& a) {
  std::uint32_t mx = 0;
  for (T& x : a) {
    mx = std::max<std::uint32_t>(mx, x);
    x = 0;
  }
  return mx;
}

}  // namespace

std::uint32_t TokenTransport::commit_step_shards(std::span<Shard> shards,
                                                 RoundLedger& ledger) {
  if (shards.size() == 1 && !shards[0].log_) {
    // Single-shard fast path (the serial ExecPolicy): the shard's tallies
    // ARE the step tallies, so take max-and-clear directly over the shard
    // instead of summing it into the transport's arrays and scanning
    // those again — one pass instead of two, and the transport's own
    // load_/resident_ arrays stay cold.
    Shard& s = shards[0];
    std::uint32_t mx = 0;
    if (s.dense_arcs_) {
      mx = max_and_clear_all(s.load_);
    } else {
      for (const std::uint64_t idx : s.touched_) {
        mx = std::max(mx, s.load_[idx]);
        s.load_[idx] = 0;
      }
    }
    s.touched_.clear();
    s.dense_arcs_ = false;
    std::uint32_t res = 0;
    if (s.dense_nodes_) {
      res = max_and_clear_all(s.resident_);
    } else {
      for (const std::uint32_t w : s.touched_nodes_) {
        res = std::max(res, s.resident_[w]);
        s.resident_[w] = 0;
      }
    }
    s.touched_nodes_.clear();
    s.dense_nodes_ = false;
    step_max_ = mx;  // seeds the (empty-touched) commit below
    step_residency_ = res;
    step_moves_ = s.moves_;
    s.moves_ = 0;
    return commit_step(ledger);
  }

  // General merge: sums only — commit_step (or the dense full scans
  // below) derive the step maxima from the merged tallies.
  bool dense_arcs = false;
  bool dense_nodes = false;
  for (Shard& s : shards) {
    if (s.log_) {
      // Logging mode: replay in shard order == item order, through the
      // full serial accounting (instrument callbacks included), so
      // stateful fault plans and auditors see the serial event stream.
      for (const std::uint64_t packed : s.move_log_) {
        move(static_cast<std::uint32_t>(packed >> 32),
             static_cast<std::uint32_t>(packed));
      }
      s.move_log_.clear();
    } else {
      if (s.dense_arcs_) {
        // The shard's touched list is not exhaustive: vector-add the
        // whole array. Entries this leaves in load_ without a touched_
        // record are covered by the dense scan after the loop.
        for (std::uint64_t i = 0; i < view_.num_arcs; ++i) {
          load_[i] += s.load_[i];
          s.load_[i] = 0;
        }
        dense_arcs = true;
      } else {
        for (const std::uint64_t idx : s.touched_) {
          if (load_[idx] == 0) touched_.push_back(idx);
          load_[idx] += s.load_[idx];
          s.load_[idx] = 0;
        }
      }
      s.touched_.clear();
      s.dense_arcs_ = false;
      if (s.dense_nodes_) {
        for (std::uint32_t w = 0; w < view_.num_nodes; ++w) {
          resident_[w] += s.resident_[w];
          s.resident_[w] = 0;
        }
        dense_nodes = true;
      } else {
        for (const std::uint32_t w : s.touched_nodes_) {
          if (resident_[w] == 0) touched_nodes_.push_back(w);
          resident_[w] += s.resident_[w];
          s.resident_[w] = 0;
        }
      }
      s.touched_nodes_.clear();
      s.dense_nodes_ = false;
      step_moves_ += s.moves_;
    }
    s.moves_ = 0;
  }
  if (dense_arcs) {
    // touched_ is incomplete; resolve the whole array now and seed the
    // commit with the result (its own touched_ sweep then sees nothing).
    step_max_ = std::max(step_max_, max_and_clear_all(load_));
    touched_.clear();
  }
  if (dense_nodes) {
    step_residency_ = std::max(step_residency_, max_and_clear_all(resident_));
    touched_nodes_.clear();
  }
  return commit_step(ledger);
}

}  // namespace amix
