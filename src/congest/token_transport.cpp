#include "congest/token_transport.hpp"

namespace amix {

std::vector<TokenTransport::Shard> TokenTransport::make_shards(
    std::uint32_t count) const {
  std::vector<Shard> shards(count);
  for (Shard& s : shards) {
    s.g_ = &g_;
    s.load_.assign(g_.num_arcs(), 0);
    s.resident_.assign(g_.num_nodes(), 0);
  }
  return shards;
}

std::uint32_t TokenTransport::commit_step_shards(std::span<Shard> shards,
                                                 RoundLedger& ledger) {
  for (Shard& s : shards) {
    if (s.log_) {
      // Logging mode: replay in shard order == item order, through the
      // full serial accounting (instrument callbacks included), so
      // stateful fault plans and auditors see the serial event stream.
      for (const std::uint64_t packed : s.move_log_) {
        move(static_cast<std::uint32_t>(packed >> 32),
             static_cast<std::uint32_t>(packed));
      }
      s.move_log_.clear();
    } else {
      for (const std::uint64_t idx : s.touched_) {
        if (load_[idx] == 0) touched_.push_back(idx);
        load_[idx] += s.load_[idx];
        if (load_[idx] > step_max_) step_max_ = load_[idx];
        s.load_[idx] = 0;
      }
      s.touched_.clear();
      for (const std::uint32_t w : s.touched_nodes_) {
        if (resident_[w] == 0) touched_nodes_.push_back(w);
        resident_[w] += s.resident_[w];
        if (resident_[w] > step_residency_) step_residency_ = resident_[w];
        s.resident_[w] = 0;
      }
      s.touched_nodes_.clear();
      step_moves_ += s.moves_;
    }
    s.moves_ = 0;
  }
  return commit_step(ledger);
}

}  // namespace amix
