#include "congest/token_transport.hpp"

// Header-only; anchor translation unit.
