#include "congest/primitives.hpp"

#include <algorithm>
#include <limits>

namespace amix::congest {

BfsTree distributed_bfs_tree(const Graph& g, NodeId root,
                             RoundLedger& ledger) {
  AMIX_CHECK(root < g.num_nodes());
  SyncNetwork net(g, ledger);

  BfsTree t;
  t.root = root;
  t.parent.assign(g.num_nodes(), kInvalidNode);
  t.parent_edge.assign(g.num_nodes(), kInvalidEdge);
  t.depth.assign(g.num_nodes(), kUnreachable);
  t.depth[root] = 0;

  // State machine: a node that joined the tree in round r announces itself
  // on all ports in round r+1; a node adopting a parent picks the lowest
  // port that announced. (uint8_t, not vector<bool>: per-node flags must
  // be element-addressable so parallel kernel sweeps stay race-free.)
  std::vector<std::uint8_t> announced(g.num_nodes(), 0);

  net.run_until_quiet(
      [&](NodeId v, const Inbox& in, Outbox& out) {
        if (t.depth[v] == kUnreachable && !in.empty()) {
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            if (in.at(p).has_value()) {
              t.parent[v] = g.neighbor(v, p);
              t.parent_edge[v] = g.edge_at(v, p);
              t.depth[v] = static_cast<std::uint32_t>(in.at(p)->a) + 1;
              t.height = std::max(t.height, t.depth[v]);
              break;
            }
          }
        }
        if (t.depth[v] != kUnreachable && !announced[v]) {
          announced[v] = 1;
          for (std::uint32_t p = 0; p < out.num_ports(); ++p) {
            out.send(p, Message{t.depth[v], 0});
          }
        }
      },
      2 * g.num_nodes() + 4);

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    AMIX_CHECK_MSG(t.depth[v] != kUnreachable,
                   "distributed_bfs_tree: graph not connected");
  }
  return t;
}

NodeId elect_leader_max_id(const Graph& g, RoundLedger& ledger) {
  SyncNetwork net(g, ledger);
  std::vector<std::uint64_t> best(g.num_nodes());
  std::vector<std::uint8_t> dirty(g.num_nodes(), 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) best[v] = v;

  net.run_until_quiet(
      [&](NodeId v, const Inbox& in, Outbox& out) {
        if (!in.empty()) {
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            if (in.at(p).has_value() && in.at(p)->a > best[v]) {
              best[v] = in.at(p)->a;
              dirty[v] = 1;
            }
          }
        }
        if (dirty[v]) {
          dirty[v] = 0;
          for (std::uint32_t p = 0; p < out.num_ports(); ++p) {
            out.send(p, Message{best[v], 0});
          }
        }
      },
      2 * g.num_nodes() + 4);

  const std::uint64_t leader = best[0];
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    AMIX_CHECK(best[v] == leader);
  }
  return static_cast<NodeId>(leader);
}

void broadcast_bits(const BfsTree& tree, std::uint64_t nbits,
                    std::uint64_t bits_per_message, RoundLedger& ledger) {
  AMIX_CHECK(bits_per_message >= 1);
  const std::uint64_t packets =
      (nbits + bits_per_message - 1) / bits_per_message;
  // Pipelined broadcast down the tree: first packet arrives at depth d
  // after d rounds; subsequent packets stream one per round.
  ledger.charge(tree.height + (packets > 0 ? packets - 1 : 0) + 1);
}

std::uint64_t convergecast_min(const Graph& g, const BfsTree& tree,
                               const std::vector<std::uint64_t>& values,
                               RoundLedger& ledger) {
  AMIX_CHECK(values.size() == g.num_nodes());
  SyncNetwork net(g, ledger);

  // Each node waits for all tree children, then forwards the min upward.
  std::vector<std::uint32_t> pending(g.num_nodes(), 0);
  std::vector<std::uint64_t> acc = values;
  std::vector<std::uint8_t> sent(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (tree.parent[v] != kInvalidNode) ++pending[tree.parent[v]];
  }

  net.run_until_quiet(
      [&](NodeId v, const Inbox& in, Outbox& out) {
        if (!in.empty()) {
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            if (in.at(p).has_value()) {
              acc[v] = std::min(acc[v], in.at(p)->a);
              AMIX_CHECK(pending[v] > 0);
              --pending[v];
            }
          }
        }
        if (!sent[v] && pending[v] == 0 && tree.parent[v] != kInvalidNode) {
          sent[v] = 1;
          out.send(g.port_of(v, tree.parent_edge[v]), Message{acc[v], 0});
        }
      },
      2 * tree.height + 4);

  return acc[tree.root];
}

namespace {

/// Sorted flat key->value buffer for the convergecast pipeline. A
/// std::map here caused one node allocation per arriving item on the hot
/// path; the flat vector keeps the same ascending-key contract with a
/// single contiguous allocation. Consumed entries advance `head_` and the
/// prefix is reclaimed lazily, so pop_front is O(1) amortized; inserts
/// shift at most the live suffix (arrivals come child-floor-ordered, so
/// they land near the end in practice).
class FlatKvBuffer {
 public:
  bool empty() const { return head_ == kv_.size(); }
  std::size_t size() const { return kv_.size() - head_; }
  const std::pair<std::uint64_t, std::uint64_t>& front() const {
    return kv_[head_];
  }

  void pop_front() {
    ++head_;
    if (head_ >= 64 && head_ * 2 >= kv_.size()) {
      kv_.erase(kv_.begin(), kv_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  /// Insert (key, value), combining equal keys by min.
  void merge_min(std::uint64_t key, std::uint64_t value) {
    const auto it = std::lower_bound(
        kv_.begin() + static_cast<std::ptrdiff_t>(head_), kv_.end(), key,
        [](const std::pair<std::uint64_t, std::uint64_t>& kv,
           std::uint64_t k) { return kv.first < k; });
    if (it != kv_.end() && it->first == key) {
      if (value < it->second) it->second = value;
    } else {
      kv_.insert(it, {key, value});
    }
  }

  std::vector<std::pair<std::uint64_t, std::uint64_t>> take() const {
    return {kv_.begin() + static_cast<std::ptrdiff_t>(head_), kv_.end()};
  }

 private:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> kv_;
  std::size_t head_ = 0;  // consumed prefix
};

}  // namespace

std::vector<std::pair<std::uint64_t, std::uint64_t>> pipelined_convergecast(
    const Graph& g, const BfsTree& tree,
    const std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>&
        items,
    RoundLedger& ledger) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK(items.size() == n);
  SyncNetwork net(g, ledger);

  constexpr std::uint64_t kDone = std::numeric_limits<std::uint64_t>::max();

  // Per-node sorted buffers and child bookkeeping. Children send their
  // items in increasing key order; a node may forward key k only once
  // every child's "floor" (last key received) has reached k, so equal keys
  // are guaranteed to have merged before they move up — the classic
  // pipeline, h + #distinct-keys rounds.
  struct State {
    FlatKvBuffer buffer;
    std::vector<std::uint32_t> child_ports;
    std::vector<std::int64_t> floor;  // -1 = nothing yet; per child index
    std::vector<std::uint8_t> child_done;
    bool done_sent = false;
  };
  std::vector<State> st(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const auto& [key, value] : items[v]) {
      AMIX_CHECK_MSG(key != kDone, "key collides with the DONE sentinel");
      st[v].buffer.merge_min(key, value);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (tree.parent[v] == kInvalidNode) continue;
    const NodeId p = tree.parent[v];
    st[p].child_ports.push_back(g.port_of(p, tree.parent_edge[v]));
  }
  for (NodeId v = 0; v < n; ++v) {
    st[v].floor.assign(st[v].child_ports.size(), -1);
    st[v].child_done.assign(st[v].child_ports.size(), 0);
  }

  net.run_until_quiet(
      [&](NodeId v, const Inbox& in, Outbox& out) {
        State& s = st[v];
        // Absorb arrivals.
        if (!in.empty()) {
          for (std::size_t c = 0; c < s.child_ports.size(); ++c) {
            const auto& slot = in.at(s.child_ports[c]);
            if (!slot.has_value()) continue;
            if (slot->a == kDone) {
              s.child_done[c] = 1;
              continue;
            }
            s.floor[c] = static_cast<std::int64_t>(slot->a);
            s.buffer.merge_min(slot->a, slot->b);
          }
        }
        if (tree.parent[v] == kInvalidNode) return;  // root only collects
        // May we forward our smallest key?
        if (!s.buffer.empty()) {
          const std::uint64_t k = s.buffer.front().first;
          bool ready = true;
          for (std::size_t c = 0; c < s.child_ports.size(); ++c) {
            if (!s.child_done[c] &&
                s.floor[c] < static_cast<std::int64_t>(k)) {
              ready = false;
              break;
            }
          }
          if (ready) {
            out.send(g.port_of(v, tree.parent_edge[v]),
                     Message{k, s.buffer.front().second});
            s.buffer.pop_front();
            return;
          }
        }
        // Finished: everything forwarded and all children done.
        if (!s.done_sent && s.buffer.empty()) {
          bool all_done = true;
          for (std::size_t c = 0; c < s.child_ports.size(); ++c) {
            all_done = all_done && s.child_done[c];
          }
          if (all_done) {
            s.done_sent = true;
            out.send(g.port_of(v, tree.parent_edge[v]), Message{kDone, 0});
          }
        }
      },
      8 * n + 8 * static_cast<std::uint32_t>(items.size()) + 64);

  return st[tree.root].buffer.take();
}

}  // namespace amix::congest
