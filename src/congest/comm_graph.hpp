#pragma once

// CommGraph: the communication substrate abstraction.
//
// The paper's construction is recursive: random walks and packet hops run
// first on the base network G, then on the embedded overlay G_0, then on
// the per-part overlays G_1, G_2, ... (Section 3.1). Every one of those is
// "a graph whose single communication round costs some number of base-G
// rounds" (Lemmas 3.1/3.2). CommGraph captures exactly that: adjacency plus
// a measured `round_cost()` multiplier. Algorithms written against
// CommGraph (the walk engine, the token transport, the router) therefore
// work unchanged at every level of the hierarchy, and all their charges
// land in base-G rounds.
//
// Hot loops do not call the virtual interface. Every CommGraph exposes a
// CommView — a non-owning POD over one contiguous CSR block (prefix-sum
// offsets + flat neighbor array) with the scalar invariants cached — and
// the per-token inner loops (walk engine, token transport, router) run
// against the view, so degree/neighbor/arc_index are two array reads with
// zero dispatch. The view is a pure re-description of the same adjacency:
// port numbering, arc indices, and hence every ledger charge are identical
// to the virtual interface (tests/test_comm_view.cpp pins this).

#include <cstdint>
#include <span>
#include <utility>

#include "graph/graph.hpp"

namespace amix {

/// Non-owning flat view of a CommGraph's adjacency. Plain arrays + cached
/// scalars; valid only while the owning CommGraph is alive and unmodified.
struct CommView {
  const std::uint64_t* offsets = nullptr;  // num_nodes + 1 prefix sums
  const std::uint32_t* nbrs = nullptr;     // flat neighbors, size num_arcs
  std::uint32_t num_nodes = 0;
  std::uint32_t max_degree = 0;
  std::uint64_t num_arcs = 0;
  std::uint64_t round_cost = 1;

  std::uint32_t degree(std::uint32_t v) const {
    // Offsets are 64-bit (num_arcs can exceed 4B) but a single node's
    // degree must fit the 32-bit port space; catch truncation in debug
    // builds without taxing the release hot path.
    AMIX_DCHECK(offsets[v + 1] - offsets[v] <= UINT32_MAX);
    return static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]);
  }
  std::uint32_t neighbor(std::uint32_t v, std::uint32_t port) const {
    return nbrs[offsets[v] + port];
  }
  /// Directed-arc index of (v, port): same numbering as the owning
  /// CommGraph (offsets[v] + port), the unit of the CONGEST capacity
  /// constraint.
  std::uint64_t arc_index(std::uint32_t v, std::uint32_t port) const {
    return offsets[v] + port;
  }
  std::span<const std::uint32_t> neighbors(std::uint32_t v) const {
    return {nbrs + offsets[v], nbrs + offsets[v + 1]};
  }
};

class CommGraph {
 public:
  virtual ~CommGraph() = default;

  virtual std::uint32_t num_nodes() const = 0;
  virtual std::uint32_t degree(std::uint32_t v) const = 0;
  virtual std::uint32_t neighbor(std::uint32_t v, std::uint32_t port) const = 0;

  /// Directed-arc index of (v, port), in [0, num_arcs()): the unit of the
  /// CONGEST capacity constraint (one message per arc per round).
  virtual std::uint64_t arc_index(std::uint32_t v,
                                  std::uint32_t port) const = 0;
  virtual std::uint64_t num_arcs() const = 0;

  /// Base-G rounds needed to emulate one communication round of this graph
  /// (1 for the base graph; measured at construction for overlays).
  virtual std::uint64_t round_cost() const = 0;

  /// Flat CSR view for hot loops; see CommView. O(1) — concrete graphs
  /// keep their adjacency in CSR form already.
  virtual CommView view() const = 0;

  /// Max degree over all nodes. Concrete graphs cache this at
  /// construction; the default is a scan fallback for ad-hoc test doubles.
  virtual std::uint32_t max_degree() const {
    std::uint32_t d = 0;
    for (std::uint32_t v = 0; v < num_nodes(); ++v) {
      d = std::max(d, degree(v));
    }
    return d;
  }
};

/// The base network G as a CommGraph (round_cost == 1).
class BaseComm final : public CommGraph {
 public:
  explicit BaseComm(const Graph& g) : g_(g) {
    offsets_.resize(g.num_nodes() + 1, 0);
    nbrs_.reserve(g.num_arcs());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      offsets_[v + 1] = offsets_[v] + g.degree(v);
      for (const Arc& a : g.arcs(v)) nbrs_.push_back(a.to);
    }
  }

  std::uint32_t num_nodes() const override { return g_.num_nodes(); }
  std::uint32_t degree(std::uint32_t v) const override { return g_.degree(v); }
  std::uint32_t neighbor(std::uint32_t v, std::uint32_t port) const override {
    return g_.neighbor(v, port);
  }
  std::uint64_t arc_index(std::uint32_t v, std::uint32_t port) const override {
    return offsets_[v] + port;
  }
  std::uint64_t num_arcs() const override { return g_.num_arcs(); }
  std::uint64_t round_cost() const override { return 1; }
  std::uint32_t max_degree() const override { return g_.max_degree(); }

  CommView view() const override {
    return CommView{.offsets = offsets_.data(),
                    .nbrs = nbrs_.data(),
                    .num_nodes = g_.num_nodes(),
                    .max_degree = g_.max_degree(),
                    .num_arcs = g_.num_arcs(),
                    .round_cost = 1};
  }

  const Graph& graph() const { return g_; }

 private:
  const Graph& g_;
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint32_t> nbrs_;  // flat ports-in-order neighbor copy
};

/// A materialized overlay in flat CSR form (offsets + neighbor array +
/// measured emulation cost): used for G_0 and every G_i[part] of the
/// hierarchy. Port p of node v is nbrs_[offsets_[v] + p].
class OverlayComm final : public CommGraph {
 public:
  OverlayComm() = default;

  /// From per-node adjacency lists; port numbering is the list order.
  /// Test-only reference path: the nested-vector intermediate costs one
  /// allocation per node, which the scale builds cannot afford — all
  /// production construction goes through CsrBuilder (or the flat-CSR
  /// constructor below). Kept so conformance tests can pin the CSR paths
  /// against the naive construction.
  OverlayComm(const std::vector<std::vector<std::uint32_t>>& adj,
              std::uint64_t round_cost)
      : round_cost_(round_cost) {
    offsets_.resize(adj.size() + 1, 0);
    std::size_t total = 0;
    for (const auto& row : adj) total += row.size();
    nbrs_.reserve(total);
    for (std::size_t v = 0; v < adj.size(); ++v) {
      offsets_[v + 1] = offsets_[v] + adj[v].size();
      nbrs_.insert(nbrs_.end(), adj[v].begin(), adj[v].end());
      max_degree_ =
          std::max(max_degree_, static_cast<std::uint32_t>(adj[v].size()));
    }
  }

  /// From prebuilt CSR arrays (see CsrBuilder). `offsets` has
  /// num_nodes + 1 entries; `nbrs` has offsets.back() entries.
  OverlayComm(std::vector<std::uint64_t> offsets,
              std::vector<std::uint32_t> nbrs, std::uint64_t round_cost)
      : offsets_(std::move(offsets)),
        nbrs_(std::move(nbrs)),
        round_cost_(round_cost) {
    AMIX_CHECK(!offsets_.empty() && offsets_.back() == nbrs_.size());
    for (std::size_t v = 0; v + 1 < offsets_.size(); ++v) {
      max_degree_ = std::max(
          max_degree_, static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]));
    }
  }

  std::uint32_t num_nodes() const override {
    return static_cast<std::uint32_t>(offsets_.empty() ? 0
                                                       : offsets_.size() - 1);
  }
  std::uint32_t degree(std::uint32_t v) const override {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }
  std::uint32_t neighbor(std::uint32_t v, std::uint32_t port) const override {
    return nbrs_[offsets_[v] + port];
  }
  std::uint64_t arc_index(std::uint32_t v, std::uint32_t port) const override {
    return offsets_[v] + port;
  }
  std::uint64_t num_arcs() const override {
    return offsets_.empty() ? 0 : offsets_.back();
  }
  std::uint64_t round_cost() const override { return round_cost_; }
  std::uint32_t max_degree() const override { return max_degree_; }

  CommView view() const override {
    return CommView{.offsets = offsets_.data(),
                    .nbrs = nbrs_.data(),
                    .num_nodes = num_nodes(),
                    .max_degree = max_degree_,
                    .num_arcs = num_arcs(),
                    .round_cost = round_cost_};
  }

  void set_round_cost(std::uint64_t c) { round_cost_ = c; }

  std::span<const std::uint32_t> neighbors(std::uint32_t v) const {
    return {nbrs_.data() + offsets_[v], nbrs_.data() + offsets_[v + 1]};
  }

 private:
  std::vector<std::uint64_t> offsets_;  // num_nodes + 1
  std::vector<std::uint32_t> nbrs_;     // flat, size offsets_.back()
  std::uint32_t max_degree_ = 0;
  std::uint64_t round_cost_ = 1;
};

/// Accumulates arcs in arrival order and emits a CSR OverlayComm whose
/// per-node port numbering is the per-node arrival order — exactly what
/// incremental vector<vector>::push_back construction produced, so arc
/// indices (and every ledger charge derived from them) are unchanged.
/// The hierarchy builders construct their overlays through this instead
/// of materializing nested vectors.
class CsrBuilder {
 public:
  explicit CsrBuilder(std::uint32_t num_nodes) : degree_(num_nodes, 0) {}

  void add_arc(std::uint32_t src, std::uint32_t dst) {
    AMIX_DCHECK(src < degree_.size() && dst < degree_.size());
    arcs_.emplace_back(src, dst);
    ++degree_[src];
  }
  /// Undirected edge: one arc each way, in (a->b, b->a) arrival order.
  void add_edge(std::uint32_t a, std::uint32_t b) {
    add_arc(a, b);
    add_arc(b, a);
  }

  std::uint32_t degree(std::uint32_t v) const { return degree_[v]; }
  std::uint64_t num_arcs() const { return arcs_.size(); }

  /// Counting-sort the arc stream into CSR (stable per source node).
  /// Consumes the builder.
  OverlayComm finish(std::uint64_t round_cost) && {
    const std::size_t n = degree_.size();
    std::vector<std::uint64_t> offsets(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      offsets[v + 1] = offsets[v] + degree_[v];
    }
    std::vector<std::uint32_t> nbrs(arcs_.size());
    std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& [src, dst] : arcs_) nbrs[cursor[src]++] = dst;
    arcs_.clear();
    return OverlayComm(std::move(offsets), std::move(nbrs), round_cost);
  }

 private:
  std::vector<std::uint32_t> degree_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> arcs_;
};

}  // namespace amix
