#pragma once

// CommGraph: the communication substrate abstraction.
//
// The paper's construction is recursive: random walks and packet hops run
// first on the base network G, then on the embedded overlay G_0, then on
// the per-part overlays G_1, G_2, ... (Section 3.1). Every one of those is
// "a graph whose single communication round costs some number of base-G
// rounds" (Lemmas 3.1/3.2). CommGraph captures exactly that: adjacency plus
// a measured `round_cost()` multiplier. Algorithms written against
// CommGraph (the walk engine, the token transport, the router) therefore
// work unchanged at every level of the hierarchy, and all their charges
// land in base-G rounds.

#include <cstdint>
#include <span>

#include "graph/graph.hpp"

namespace amix {

class CommGraph {
 public:
  virtual ~CommGraph() = default;

  virtual std::uint32_t num_nodes() const = 0;
  virtual std::uint32_t degree(std::uint32_t v) const = 0;
  virtual std::uint32_t neighbor(std::uint32_t v, std::uint32_t port) const = 0;

  /// Directed-arc index of (v, port), in [0, num_arcs()): the unit of the
  /// CONGEST capacity constraint (one message per arc per round).
  virtual std::uint64_t arc_index(std::uint32_t v,
                                  std::uint32_t port) const = 0;
  virtual std::uint64_t num_arcs() const = 0;

  /// Base-G rounds needed to emulate one communication round of this graph
  /// (1 for the base graph; measured at construction for overlays).
  virtual std::uint64_t round_cost() const = 0;

  std::uint32_t max_degree() const {
    std::uint32_t d = 0;
    for (std::uint32_t v = 0; v < num_nodes(); ++v) {
      d = std::max(d, degree(v));
    }
    return d;
  }
};

/// The base network G as a CommGraph (round_cost == 1).
class BaseComm final : public CommGraph {
 public:
  explicit BaseComm(const Graph& g) : g_(g) {
    offsets_.resize(g.num_nodes() + 1, 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      offsets_[v + 1] = offsets_[v] + g.degree(v);
    }
  }

  std::uint32_t num_nodes() const override { return g_.num_nodes(); }
  std::uint32_t degree(std::uint32_t v) const override { return g_.degree(v); }
  std::uint32_t neighbor(std::uint32_t v, std::uint32_t port) const override {
    return g_.neighbor(v, port);
  }
  std::uint64_t arc_index(std::uint32_t v, std::uint32_t port) const override {
    return offsets_[v] + port;
  }
  std::uint64_t num_arcs() const override { return g_.num_arcs(); }
  std::uint64_t round_cost() const override { return 1; }

  const Graph& graph() const { return g_; }

 private:
  const Graph& g_;
  std::vector<std::uint64_t> offsets_;
};

/// A materialized overlay (adjacency lists + measured emulation cost):
/// used for G_0 and every G_i[part] of the hierarchy.
class OverlayComm final : public CommGraph {
 public:
  OverlayComm() = default;
  OverlayComm(std::vector<std::vector<std::uint32_t>> adj,
              std::uint64_t round_cost)
      : adj_(std::move(adj)), round_cost_(round_cost) {
    offsets_.resize(adj_.size() + 1, 0);
    for (std::size_t v = 0; v < adj_.size(); ++v) {
      offsets_[v + 1] = offsets_[v] + adj_[v].size();
    }
  }

  std::uint32_t num_nodes() const override {
    return static_cast<std::uint32_t>(adj_.size());
  }
  std::uint32_t degree(std::uint32_t v) const override {
    return static_cast<std::uint32_t>(adj_[v].size());
  }
  std::uint32_t neighbor(std::uint32_t v, std::uint32_t port) const override {
    return adj_[v][port];
  }
  std::uint64_t arc_index(std::uint32_t v, std::uint32_t port) const override {
    return offsets_[v] + port;
  }
  std::uint64_t num_arcs() const override { return offsets_.back(); }
  std::uint64_t round_cost() const override { return round_cost_; }

  void set_round_cost(std::uint64_t c) { round_cost_ = c; }

  std::span<const std::uint32_t> neighbors(std::uint32_t v) const {
    return adj_[v];
  }

 private:
  std::vector<std::vector<std::uint32_t>> adj_;
  std::vector<std::uint64_t> offsets_;
  std::uint64_t round_cost_ = 1;
};

}  // namespace amix
