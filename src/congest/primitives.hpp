#pragma once

// Classic CONGEST building blocks, implemented on the literal
// message-passing kernel (SyncNetwork) so their round counts are ground
// truth rather than formulas. Used by the MST baselines, by the shared-
// randomness dissemination of Section 3.1.2, and heavily in tests.

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/traversal.hpp"

namespace amix::congest {

/// Distributed BFS-tree construction by flooding from `root`.
/// Charges the actual rounds (eccentricity(root) + 1) on the ledger.
BfsTree distributed_bfs_tree(const Graph& g, NodeId root, RoundLedger& ledger);

/// Leader election by max-ID flooding; every node learns the max ID.
/// Returns the leader id; charges ~diameter rounds.
NodeId elect_leader_max_id(const Graph& g, RoundLedger& ledger);

/// Pipelined broadcast of `nbits` bits from the tree root to every node
/// (e.g. the Theta(log^2 n) shared random bits for the k-wise hash).
/// Cost: height + ceil(nbits / bits_per_message) rounds, charged on the
/// ledger. The payload itself is handled centrally (the simulator's state
/// is global); only the schedule is simulated.
void broadcast_bits(const BfsTree& tree, std::uint64_t nbits,
                    std::uint64_t bits_per_message, RoundLedger& ledger);

/// Convergecast of one aggregate (e.g. a global min) up a BFS tree,
/// executed on the kernel: charges height(tree)+1 rounds. Returns the
/// aggregate of `values` under min.
std::uint64_t convergecast_min(const Graph& g, const BfsTree& tree,
                               const std::vector<std::uint64_t>& values,
                               RoundLedger& ledger);

/// Charge for a pipelined convergecast of `num_keys` independent aggregates
/// over a tree of height `height` (the standard h + k pipeline bound used
/// by the Garay-Kutten-Peleg style baseline).
inline void charge_pipelined_convergecast(std::uint32_t height,
                                          std::uint64_t num_keys,
                                          RoundLedger& ledger) {
  ledger.charge(height + num_keys);
}

/// The real thing, on the kernel: every node holds key->value items
/// (e.g. per-fragment min-edge candidates); items with equal keys combine
/// by min as they meet; each tree edge forwards one item per round,
/// smallest-key-first (the classic upcast pipeline). Returns the combined
/// map at the root. Tests validate the h + k charge formula against this.
std::vector<std::pair<std::uint64_t, std::uint64_t>> pipelined_convergecast(
    const Graph& g, const BfsTree& tree,
    const std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>&
        items,
    RoundLedger& ledger);

}  // namespace amix::congest
