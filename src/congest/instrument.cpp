#include "congest/instrument.hpp"

namespace amix::congest {

namespace {
thread_local CongestInstrument* g_instrument = nullptr;
}  // namespace

CongestInstrument* instrument() { return g_instrument; }

ScopedInstrument::ScopedInstrument(CongestInstrument* ins)
    : prev_(g_instrument) {
  g_instrument = ins;
}

ScopedInstrument::~ScopedInstrument() { g_instrument = prev_; }

}  // namespace amix::congest
