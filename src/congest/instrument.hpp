#pragma once

// Instrumentation seam for the CONGEST substrates.
//
// The simulation harness (src/sim/) needs two capabilities the substrates
// cannot offer through their public APIs alone:
//
//   * observation — independently recompute what TokenTransport charges
//     (the conformance audit), without trusting its internal tallies;
//   * interposition — inject faults (retransmitted/duplicated token
//     crossings, dropped kernel messages, adversarial handler order)
//     underneath unmodified algorithm code.
//
// Both are served by one interface, CongestInstrument, installed through a
// thread-local pointer. TokenTransport and SyncNetwork consult it on their
// hot paths with a single pointer test, so uninstrumented runs pay one
// predictable branch and instrumented runs see every event. Instruments
// nest lexically (ScopedInstrument restores the previous one), and the
// registration is thread-local because substrates themselves are
// single-threaded per instance.

#include <cstdint>
#include <span>

#include "graph/graph.hpp"

namespace amix {

class CommGraph;  // congest/comm_graph.hpp; kept forward to avoid a cycle

namespace congest {

class CongestInstrument {
 public:
  virtual ~CongestInstrument() = default;

  // ---- Token layer (TokenTransport) ----

  /// One token is about to cross arc `arc` of `g`. Returns the number of
  /// EXTRA slots the crossing consumes on that arc beyond the token itself
  /// (0 = clean delivery; k > 0 models k retransmissions after drops, or k
  /// duplicate copies the receiver will discard). The token always
  /// arrives: the transport layer is reliable, faults only cost rounds.
  virtual std::uint32_t on_token_move(const CommGraph& /*g*/,
                                      std::uint64_t /*arc*/) {
    return 0;
  }

  /// A parallel step of `g` committed, charging `charged` rounds of that
  /// graph (the transport's max per-arc slot count for the step).
  virtual void on_step_commit(const CommGraph& /*g*/,
                              std::uint32_t /*charged*/) {}

  // ---- Kernel layer (SyncNetwork) ----

  /// A kernel message from `from` to `to` is being delivered in round
  /// `round`. Return false to drop it (the round is still charged — the
  /// sender used its slot; the bits just never arrive).
  virtual bool on_kernel_deliver(NodeId /*from*/, NodeId /*to*/,
                                 std::uint64_t /*round*/) {
    return true;
  }

  /// Handler invocation order for kernel round `round`. `order` arrives as
  /// the identity permutation of the nodes; permute it in place to force
  /// an adversarial schedule. Correct synchronous algorithms read only
  /// their own inbox and write only their own outbox, so any permutation
  /// must leave behaviour bit-identical — the harness uses this to detect
  /// hidden cross-node state sharing.
  virtual void on_kernel_round_order(std::uint64_t /*round*/,
                                     std::span<NodeId> /*order*/) {}
};

namespace detail {
/// Storage for the per-thread instrument pointer. Inline so the accessor
/// below compiles down to a TLS load at every call site — the substrate
/// hot paths (one check per token move / kernel round) must not pay an
/// out-of-line call just to discover that no instrument is installed.
inline thread_local CongestInstrument* t_instrument = nullptr;
}  // namespace detail

/// Currently installed instrument for this thread (nullptr when none).
inline CongestInstrument* instrument() { return detail::t_instrument; }

/// RAII installation; restores the previously installed instrument on
/// destruction, so instrumented scopes nest.
class ScopedInstrument {
 public:
  explicit ScopedInstrument(CongestInstrument* ins)
      : prev_(detail::t_instrument) {
    detail::t_instrument = ins;
  }
  ~ScopedInstrument() { detail::t_instrument = prev_; }
  ScopedInstrument(const ScopedInstrument&) = delete;
  ScopedInstrument& operator=(const ScopedInstrument&) = delete;

 private:
  CongestInstrument* prev_;
};

}  // namespace congest
}  // namespace amix
