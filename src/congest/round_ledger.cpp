#include "congest/round_ledger.hpp"

// Header-only today; this translation unit anchors the target and keeps the
// door open for out-of-line additions without touching the build.
