#include "congest/network.hpp"

#include <numeric>

#include "congest/instrument.hpp"

namespace amix::congest {

namespace {
/// Cache-line padded per-shard "sent anything" flag (no false sharing).
struct alignas(64) SentFlag {
  bool v = false;
};
}  // namespace

SyncNetwork::SyncNetwork(const Graph& g, RoundLedger& ledger, ExecPolicy exec)
    : g_(g), ledger_(ledger), exec_(exec) {
  offsets_.resize(g.num_nodes() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    offsets_[v + 1] = offsets_[v] + g.degree(v);
  }
  // Stamps start at 0 and the first round's epoch is 1, so every slot is
  // born absent without an initial clearing pass.
  inbox_msg_.resize(g.num_arcs());
  outbox_msg_.resize(g.num_arcs());
  inbox_stamp_.assign(g.num_arcs(), 0);
  outbox_stamp_.assign(g.num_arcs(), 0);
  arrived_.assign(g.num_nodes(), 0);
  // Receiver-side delivery map: the message arriving on w's port q was
  // sent from the peer slot of the same edge at the other endpoint.
  peer_slot_.resize(g.num_arcs());
  for (NodeId w = 0; w < g.num_nodes(); ++w) {
    const auto arcs = g.arcs(w);
    for (std::uint32_t q = 0; q < arcs.size(); ++q) {
      const NodeId v = arcs[q].to;
      peer_slot_[offsets_[w] + q] = offsets_[v] + g.port_of(v, arcs[q].edge);
    }
  }
  shard_bounds_ =
      weighted_shard_bounds(offsets_.data(), g.num_nodes(), exec_.shards());
}

void SyncNetwork::invoke_handler(const Handler& h, NodeId v,
                                 std::uint64_t epoch, bool* any_sent) {
  const std::uint32_t base = offsets_[v];
  const std::uint32_t deg = g_.degree(v);
  const Inbox in(inbox_msg_.data() + base, inbox_stamp_.data() + base, deg,
                 epoch, arrived_[v] != 0);
  Outbox out(outbox_msg_.data() + base, outbox_stamp_.data() + base, deg,
             epoch, any_sent);
  h(v, in, out);
}

bool SyncNetwork::step(const Handler& h) {
  if (CongestInstrument* const ins = instrument()) {
    // Instrumented rounds stay serial: the adversarial-order and drop
    // hooks define a per-event callback sequence that must replay
    // identically, and permuted invocation order is the point.
    return step_serial_instrumented(h, *ins);
  }

  // This round's epoch: inbox slots delivered at the end of the previous
  // round carry it, outbox slots written this round are stamped with it,
  // and delivery below stamps the next round's inbox with cur + 1.
  const std::uint64_t cur = rounds_executed_ + 1;

  const std::uint32_t num_shards = exec_.shards();
  std::vector<SentFlag> sent(num_shards);

  // Phase 1: handler sweep. Outboxes are disjoint per node, inboxes are
  // read-only — node shards are race-free by construction. Shard cuts are
  // arc-balanced (per-node work tracks degree); the sent-flag OR-merge is
  // boundary-independent, so results match the equal-count cuts exactly.
  parallel_for_bounds(exec_, shard_bounds_,
                      [&](std::uint32_t s, std::size_t lo, std::size_t hi) {
                        for (std::size_t v = lo; v < hi; ++v) {
                          invoke_handler(h, static_cast<NodeId>(v), cur,
                                         &sent[s].v);
                        }
                      });
  bool any_sent = false;
  for (const SentFlag& f : sent) any_sent |= f.v;

  // Phase 2: receiver-side delivery. Each inbox slot is written exactly
  // once (by its receiver's shard), so this is race-free too; the
  // per-node arrived flag is what makes Inbox::empty() O(1). The sweep is
  // branchless on purpose: presence is data (whether a sender stamped its
  // slot this round), so a conditional copy would mispredict on every
  // traffic pattern that interleaves present and absent slots. Copying
  // the message unconditionally and selecting the stamp with arithmetic
  // keeps the pipeline full; an absent slot gets stamp 0 (never a live
  // epoch — they start at 1), and its garbage message bytes are
  // unreachable through the Inbox API. The round's outboxes expire
  // wholesale when the epoch advances — no clearing pass.
  parallel_for_bounds(
      exec_, shard_bounds_,
      [&](std::uint32_t, std::size_t lo, std::size_t hi) {
        for (std::size_t w = lo; w < hi; ++w) {
          const std::uint32_t base = offsets_[w];
          const std::uint32_t deg = g_.degree(static_cast<NodeId>(w));
          std::uint64_t any = 0;
          for (std::uint32_t q = 0; q < deg; ++q) {
            const std::uint32_t peer = peer_slot_[base + q];
            const std::uint64_t present =
                outbox_stamp_[peer] == cur ? 1 : 0;
            inbox_msg_[base + q] = outbox_msg_[peer];
            inbox_stamp_[base + q] = present * (cur + 1);
            any |= present;
          }
          arrived_[w] = any != 0 ? 1 : 0;
        }
      });

  ++rounds_executed_;
  ledger_.charge(1);
  return any_sent;
}

bool SyncNetwork::step_serial_instrumented(const Handler& h,
                                           CongestInstrument& ins) {
  const std::uint64_t cur = rounds_executed_ + 1;
  bool any_sent = false;
  // An instrument may permute the handler invocation order (adversarial
  // schedule); a well-formed synchronous handler cannot observe this.
  std::vector<NodeId> order(g_.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  ins.on_kernel_round_order(rounds_executed_, order);
  for (const NodeId v : order) invoke_handler(h, v, cur, &any_sent);
  // Deliver: the message v sent on port p arrives at w = neighbor(v,p) on
  // w's port for the same edge. Dropped or unsent slots simply keep a
  // stale stamp.
  std::fill(arrived_.begin(), arrived_.end(), 0);
  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    const auto arcs = g_.arcs(v);
    for (std::uint32_t p = 0; p < arcs.size(); ++p) {
      const std::uint32_t slot = offsets_[v] + p;
      if (outbox_stamp_[slot] != cur) continue;
      const NodeId w = arcs[p].to;
      if (ins.on_kernel_deliver(v, w, rounds_executed_)) {
        const std::uint32_t q = g_.port_of(w, arcs[p].edge);
        inbox_msg_[offsets_[w] + q] = outbox_msg_[slot];
        inbox_stamp_[offsets_[w] + q] = cur + 1;
        arrived_[w] = 1;
      }
    }
  }
  ++rounds_executed_;
  ledger_.charge(1);
  return any_sent;
}

void SyncNetwork::run_rounds(const Handler& h, std::uint32_t rounds) {
  for (std::uint32_t r = 0; r < rounds; ++r) step(h);
}

std::uint32_t SyncNetwork::run_until_quiet(const Handler& h,
                                           std::uint32_t max_rounds) {
  for (std::uint32_t r = 1; r <= max_rounds; ++r) {
    if (!step(h)) return r;
  }
  AMIX_CHECK_MSG(false, "run_until_quiet: did not quiesce");
  return max_rounds;
}

}  // namespace amix::congest
