#include "congest/network.hpp"

#include <numeric>

#include "congest/instrument.hpp"

namespace amix::congest {

SyncNetwork::SyncNetwork(const Graph& g, RoundLedger& ledger)
    : g_(g), ledger_(ledger) {
  offsets_.resize(g.num_nodes() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    offsets_[v + 1] = offsets_[v] + g.degree(v);
  }
  inbox_.assign(g.num_arcs(), std::nullopt);
  outbox_.assign(g.num_arcs(), std::nullopt);
}

bool SyncNetwork::step(const Handler& h) {
  CongestInstrument* const ins = instrument();
  bool any_sent = false;
  const auto invoke = [&](NodeId v) {
    const Inbox in(std::span<const std::optional<Message>>(
        inbox_.data() + offsets_[v], g_.degree(v)));
    Outbox out(std::span<std::optional<Message>>(outbox_.data() + offsets_[v],
                                                 g_.degree(v)),
               &any_sent);
    h(v, in, out);
  };
  if (ins == nullptr) {
    for (NodeId v = 0; v < g_.num_nodes(); ++v) invoke(v);
  } else {
    // An instrument may permute the handler invocation order (adversarial
    // schedule); a well-formed synchronous handler cannot observe this.
    std::vector<NodeId> order(g_.num_nodes());
    std::iota(order.begin(), order.end(), NodeId{0});
    ins->on_kernel_round_order(rounds_executed_, order);
    for (const NodeId v : order) invoke(v);
  }
  // Deliver: the message v sent on port p arrives at w = neighbor(v,p) on
  // w's port for the same edge.
  std::fill(inbox_.begin(), inbox_.end(), std::nullopt);
  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    const auto arcs = g_.arcs(v);
    for (std::uint32_t p = 0; p < arcs.size(); ++p) {
      auto& slot = outbox_[offsets_[v] + p];
      if (!slot.has_value()) continue;
      const NodeId w = arcs[p].to;
      if (ins == nullptr || ins->on_kernel_deliver(v, w, rounds_executed_)) {
        const std::uint32_t q = g_.port_of(w, arcs[p].edge);
        inbox_[offsets_[w] + q] = *slot;
      }
      slot.reset();
    }
  }
  ++rounds_executed_;
  ledger_.charge(1);
  return any_sent;
}

void SyncNetwork::run_rounds(const Handler& h, std::uint32_t rounds) {
  for (std::uint32_t r = 0; r < rounds; ++r) step(h);
}

std::uint32_t SyncNetwork::run_until_quiet(const Handler& h,
                                           std::uint32_t max_rounds) {
  for (std::uint32_t r = 1; r <= max_rounds; ++r) {
    if (!step(h)) return r;
  }
  AMIX_CHECK_MSG(false, "run_until_quiet: did not quiesce");
  return max_rounds;
}

}  // namespace amix::congest
