#pragma once

// Distributed MST baselines the paper positions itself against:
//
//  * flood_boruvka — the classic GHS/Boruvka regime: each fragment finds
//    its minimum outgoing edge by convergecast + broadcast over its own
//    fragment tree (physical F-edges). Per-iteration cost is the measured
//    fragment diameter — Theta(n) on the worst graphs, the O(n log n)-ish
//    pre-1990s state of the art.
//
//  * pipelined_boruvka — the Garay-Kutten-Peleg O~(D + sqrt(n)) regime:
//    phase 1 grows fragments with convergecasts while they are small
//    (size < sqrt(n)); phase 2 switches to aggregating the (at most
//    sqrt(n)-ish) fragment candidates over a global BFS tree with
//    pipelining, charged height + #fragments per cast.
//
// Both verify against Kruskal and charge every round to the ledger.

#include <cstdint>
#include <vector>

#include "congest/round_ledger.hpp"
#include "graph/weighted_graph.hpp"

namespace amix {

struct BaselineMstStats {
  std::vector<EdgeId> edges;
  std::uint64_t rounds = 0;
  std::uint32_t iterations = 0;
  std::uint32_t phase1_iterations = 0;  // pipelined only
  std::uint32_t phase2_iterations = 0;  // pipelined only
  std::uint32_t max_fragment_diameter = 0;
};

BaselineMstStats flood_boruvka(const Graph& g, const Weights& w,
                               RoundLedger& ledger);

BaselineMstStats pipelined_boruvka(const Graph& g, const Weights& w,
                                   RoundLedger& ledger,
                                   std::uint32_t size_cap = 0 /* sqrt(n) */);

}  // namespace amix
