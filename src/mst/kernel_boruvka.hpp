#pragma once

// A fully message-passing Boruvka MST on the literal CONGEST kernel.
//
// Unlike flood_boruvka (which computes centrally and charges the analytic
// convergecast cost), every step here is real synchronous message passing
// on SyncNetwork — fragment-id exchange, candidate convergecast up the
// fragment trees, decision broadcast, tree re-rooting, and fragment
// relabeling — so its round count is ground truth for the GHS-style
// regime, and tests cross-validate the analytic baseline against it.
//
// Merging uses the paper's head/tail coins (derived from the fragment id
// and iteration number via shared randomness, so no extra communication):
// a tail fragment whose minimum outgoing edge points into a head fragment
// re-roots at that edge's endpoint and joins the head, a star merge.

#include <cstdint>
#include <vector>

#include "congest/round_ledger.hpp"
#include "graph/weighted_graph.hpp"

namespace amix {

struct KernelMstStats {
  std::vector<EdgeId> edges;
  std::uint64_t rounds = 0;
  std::uint32_t iterations = 0;
};

KernelMstStats kernel_boruvka(const Graph& g, const Weights& w,
                              RoundLedger& ledger, std::uint64_t seed = 1);

}  // namespace amix
