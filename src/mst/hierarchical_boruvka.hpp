#pragma once

// The paper's MST algorithm (Section 4): Boruvka with per-component
// head/tail coins, minimum-outgoing-edge computation by level-synchronous
// upcast/downcast on the virtual trees, every tree message delivered by
// the hierarchical permutation router, and virtual-tree maintenance per
// Lemma 4.1.
//
// Round accounting per iteration:
//   * 2 kernel rounds: neighbors exchange (component id, coin) and the
//     chosen cross edge is announced to its other endpoint;
//   * depth(T) routing instances for the upcast and depth(T) for the
//     downcast (candidates up, decision + new component id down);
//   * one routing instance per balancing step of Lemma 4.1.
// The upcast request multiset (child -> parent over all virtual trees) is
// identical across the steps of one iteration, so by default one instance
// is measured and charged depth-many times ("amortized"); exact mode
// measures every instance (tests verify both agree closely).

#include <cstdint>
#include <vector>

#include "congest/round_ledger.hpp"
#include "graph/weighted_graph.hpp"
#include "routing/hierarchical_router.hpp"

namespace amix {

struct MstParams {
  bool exact_charging = false;  // measure every routing instance
  std::uint32_t max_iterations = 0;  // 0 = 40 * ceil(log2 n)
  std::uint64_t seed = 0x9d2c5680eb1afe01ULL;
};

struct MstStats {
  std::vector<EdgeId> edges;
  std::uint64_t rounds = 0;           // total charged by the run
  std::uint32_t iterations = 0;
  std::uint32_t routing_instances = 0;  // instances actually measured
  std::uint64_t routed_packets = 0;
  std::uint32_t max_tree_depth = 0;     // Lemma 4.1 property (1)
  std::uint32_t max_tree_indegree = 0;  // Lemma 4.1 property (2) numerator
  double max_indegree_over_degree = 0.0;
};

class HierarchicalBoruvka {
 public:
  /// The hierarchy must have been built on `g` (its construction cost is
  /// charged separately by Hierarchy::build).
  HierarchicalBoruvka(const Hierarchy& h, const Weights& w)
      : h_(&h), w_(&w) {}

  MstStats run(RoundLedger& ledger, const MstParams& params = {}) const;

 private:
  const Hierarchy* h_;
  const Weights* w_;
};

}  // namespace amix
