#include "mst/verify.hpp"

#include <algorithm>

namespace amix {

bool is_exact_mst(const Graph& g, const Weights& w,
                  const std::vector<EdgeId>& edges) {
  std::vector<EdgeId> got = edges;
  std::sort(got.begin(), got.end());
  return got == kruskal_mst(g, w);
}

bool is_spanning_tree(const Graph& g, const std::vector<EdgeId>& edges) {
  if (g.num_nodes() == 0) return edges.empty();
  if (edges.size() + 1 != g.num_nodes()) return false;
  UnionFind uf(g.num_nodes());
  for (const EdgeId e : edges) {
    if (e >= g.num_edges()) return false;
    if (!uf.unite(g.edge_u(e), g.edge_v(e))) return false;  // cycle
  }
  return uf.num_sets() == 1;
}

}  // namespace amix
