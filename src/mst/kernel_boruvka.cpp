#include "mst/kernel_boruvka.hpp"

#include <algorithm>
#include <limits>

#include "congest/network.hpp"
#include "mst/verify.hpp"
#include "util/rng.hpp"

namespace amix {
namespace {

using congest::Inbox;
using congest::Message;
using congest::Outbox;
using congest::SyncNetwork;

constexpr std::uint64_t kNone = std::numeric_limits<std::uint64_t>::max();

/// Candidate = (weight, target-is-head bit) packed into one word + edge id.
struct Candidate {
  Weight weight = std::numeric_limits<Weight>::max();
  EdgeId edge = kInvalidEdge;
  bool to_head = false;

  bool better_than(const Candidate& o) const {
    if (edge == kInvalidEdge) return false;
    if (o.edge == kInvalidEdge) return true;
    return weight != o.weight ? weight < o.weight : edge < o.edge;
  }
  Message encode() const {
    return Message{(weight << 1) | (to_head ? 1u : 0u), edge};
  }
  static Candidate decode(const Message& m) {
    if (m.b == kInvalidEdge && m.a == kNone) return {};
    return Candidate{m.a >> 1, static_cast<EdgeId>(m.b), (m.a & 1) != 0};
  }
  static Message encode_none() { return Message{kNone, kInvalidEdge}; }
};

/// Per-node protocol state.
struct NodeState {
  NodeId frag = kInvalidNode;
  EdgeId parent_edge = kInvalidEdge;      // toward the fragment root
  std::vector<EdgeId> tree_edges;         // incident F-edges
  std::vector<NodeId> nbr_frag;           // per port, from phase A
  // Phase scratch:
  std::uint32_t pending = 0;
  Candidate best;
  bool sent = false;
  EdgeId chosen = kInvalidEdge;           // this iteration's fragment choice
  bool flipping = false;
  NodeId new_frag = kInvalidNode;
};

bool coin_is_head(NodeId frag, std::uint32_t iter, std::uint64_t seed) {
  return (splitmix64(seed ^ (static_cast<std::uint64_t>(frag) << 20) ^ iter) &
          1u) != 0;
}

}  // namespace

KernelMstStats kernel_boruvka(const Graph& g, const Weights& w,
                              RoundLedger& ledger, std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK(n >= 1);
  KernelMstStats out;
  if (n <= 1) return out;
  const std::uint64_t rounds_at_entry = ledger.total();

  SyncNetwork net(g, ledger);
  std::vector<NodeState> st(n);
  for (NodeId v = 0; v < n; ++v) {
    st[v].frag = v;
    st[v].nbr_frag.assign(g.degree(v), kInvalidNode);
  }
  const std::uint32_t round_cap = 8 * n + 64;

  std::uint32_t frag_count = n;
  const std::uint32_t max_iterations = 64 * 32;  // generous Las Vegas cap

  while (frag_count > 1) {
    AMIX_CHECK_MSG(out.iterations < max_iterations,
                   "kernel_boruvka did not converge");
    const std::uint32_t iter = out.iterations++;

    // ---- Phase A: exchange fragment ids (exactly one round). ----
    // Keyed off the network's round counter, NOT off which node runs
    // last: handler invocation order within a round is unspecified (and
    // adversarially permuted under the sim harness's order fault).
    const std::uint64_t send_round = net.rounds_executed();
    net.run_rounds(
        [&](NodeId v, const Inbox& in, Outbox& outb) {
          if (net.rounds_executed() == send_round) {
            for (std::uint32_t p = 0; p < outb.num_ports(); ++p) {
              outb.send(p, Message{st[v].frag, 0});
            }
          } else {
            for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
              AMIX_CHECK(in.at(p).has_value());
              st[v].nbr_frag[p] = static_cast<NodeId>(in.at(p)->a);
            }
          }
        },
        2);

    // ---- Phase B: convergecast the minimum outgoing candidate. ----
    for (NodeId v = 0; v < n; ++v) {
      NodeState& s = st[v];
      s.best = Candidate{};
      for (std::uint32_t p = 0; p < g.degree(v); ++p) {
        if (s.nbr_frag[p] == s.frag) continue;
        const EdgeId e = g.edge_at(v, p);
        const Candidate cand{w[e], e,
                             coin_is_head(s.nbr_frag[p], iter, seed)};
        if (cand.better_than(s.best)) s.best = cand;
      }
      s.pending = static_cast<std::uint32_t>(s.tree_edges.size()) -
                  (s.parent_edge != kInvalidEdge ? 1 : 0);
      s.sent = false;
      s.chosen = kInvalidEdge;
      s.flipping = false;
      s.new_frag = kInvalidNode;
    }
    net.run_until_quiet(
        [&](NodeId v, const Inbox& in, Outbox& outb) {
          NodeState& s = st[v];
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            if (!in.at(p).has_value()) continue;
            const Candidate cand = Candidate::decode(*in.at(p));
            if (cand.better_than(s.best)) s.best = cand;
            AMIX_CHECK(s.pending > 0);
            --s.pending;
          }
          if (!s.sent && s.pending == 0 && s.parent_edge != kInvalidEdge) {
            s.sent = true;
            outb.send(g.port_of(v, s.parent_edge),
                      s.best.edge == kInvalidEdge ? Candidate::encode_none()
                                                  : s.best.encode());
          }
        },
        round_cap);

    // ---- Phase C: roots decide; broadcast the chosen edge down. ----
    for (NodeId v = 0; v < n; ++v) {
      NodeState& s = st[v];
      if (s.parent_edge != kInvalidEdge) continue;  // not a root
      const bool is_tail = !coin_is_head(s.frag, iter, seed);
      if (is_tail && s.best.edge != kInvalidEdge && s.best.to_head) {
        s.chosen = s.best.edge;
      }
      s.sent = false;
    }
    net.run_until_quiet(
        [&](NodeId v, const Inbox& in, Outbox& outb) {
          NodeState& s = st[v];
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            if (in.at(p).has_value()) {
              s.chosen = static_cast<EdgeId>(in.at(p)->a);
              s.sent = false;
            }
          }
          const bool is_root_turn =
              s.parent_edge == kInvalidEdge || s.chosen != kInvalidEdge;
          if (is_root_turn && !s.sent) {
            s.sent = true;
            if (s.chosen == kInvalidEdge) return;  // no merge this round
            for (const EdgeId te : s.tree_edges) {
              if (te != s.parent_edge) {
                outb.send(g.port_of(v, te), Message{s.chosen, 0});
              }
            }
          }
        },
        round_cap);

    // ---- Phase D: the chosen edge's owner adopts + re-roots its tree,
    //      and announces the merge across the chosen edge. The flip
    //      message climbs the old parent path, reversing orientation. ----
    for (NodeId v = 0; v < n; ++v) {
      NodeState& s = st[v];
      s.flipping =
          s.chosen != kInvalidEdge &&
          (g.edge_u(s.chosen) == v || g.edge_v(s.chosen) == v) &&
          st[g.other_endpoint(s.chosen, v)].frag != s.frag;
      s.sent = false;
    }
    net.run_until_quiet(
        [&](NodeId v, const Inbox& in, Outbox& outb) {
          NodeState& s = st[v];
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            if (!in.at(p).has_value()) continue;
            const Message m = *in.at(p);
            const EdgeId e = g.edge_at(v, p);
            if (m.a == 1) {
              // "adopt": the head-side endpoint records the new tree edge.
              s.tree_edges.push_back(e);
            } else {
              // "flip": new parent = the child that sent this.
              const EdgeId old_parent = s.parent_edge;
              s.parent_edge = e;
              if (old_parent != kInvalidEdge) {
                outb.send(g.port_of(v, old_parent), Message{2, 0});
              }
            }
          }
          if (s.flipping && !s.sent) {
            s.sent = true;
            const EdgeId old_parent = s.parent_edge;
            // Adopt the merge edge as the new parent (toward the head).
            s.tree_edges.push_back(s.chosen);
            s.parent_edge = s.chosen;
            outb.send(g.port_of(v, s.chosen), Message{1, 0});  // adopt
            if (old_parent != kInvalidEdge) {
              outb.send(g.port_of(v, old_parent), Message{2, 0});  // flip
            }
          }
        },
        round_cap);

    // ---- Phase E: relabel the merged tails — the owner knows the head's
    //      fragment id from phase A and floods it down the re-rooted tree.
    for (NodeId v = 0; v < n; ++v) {
      NodeState& s = st[v];
      if (s.flipping) {
        const std::uint32_t p = g.port_of(v, s.chosen);
        s.new_frag = s.nbr_frag[p];
        out.edges.push_back(s.chosen);
      }
      s.sent = false;
    }
    net.run_until_quiet(
        [&](NodeId v, const Inbox& in, Outbox& outb) {
          NodeState& s = st[v];
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            if (in.at(p).has_value()) {
              s.new_frag = static_cast<NodeId>(in.at(p)->a);
            }
          }
          if (s.new_frag != kInvalidNode && !s.sent) {
            s.sent = true;
            s.frag = s.new_frag;
            for (const EdgeId te : s.tree_edges) {
              if (te != s.parent_edge) {
                outb.send(g.port_of(v, te), Message{s.new_frag, 0});
              }
            }
          }
        },
        round_cap);

    // Count fragments (driver-side bookkeeping only).
    std::vector<bool> seen(n, false);
    frag_count = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (!seen[st[v].frag]) {
        seen[st[v].frag] = true;
        ++frag_count;
      }
    }
  }

  std::sort(out.edges.begin(), out.edges.end());
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end()),
                  out.edges.end());
  AMIX_CHECK_MSG(is_spanning_tree(g, out.edges),
                 "kernel_boruvka produced a non-tree");
  out.rounds = ledger.total() - rounds_at_entry;
  return out;
}

}  // namespace amix
