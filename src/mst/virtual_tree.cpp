#include "mst/virtual_tree.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace amix {

VirtualTreeForest::VirtualTreeForest(const Graph& g)
    : g_(&g),
      parent_(g.num_nodes(), kInvalidNode),
      depth_(g.num_nodes(), 0),
      indeg_(g.num_nodes(), 0),
      comp_(g.num_nodes()),
      num_components_(g.num_nodes()) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) comp_[v] = v;
}

std::uint32_t VirtualTreeForest::merge_star(
    NodeId head_root, std::span<const Attachment> attachments) {
  if (attachments.empty()) return 0;

  // Attach each tail root below its head-side endpoint.
  std::vector<NodeId> creation_points;
  for (const Attachment& a : attachments) {
    AMIX_CHECK(comp_[a.head_endpoint] == head_root);
    AMIX_CHECK(comp_[a.tail_root] != head_root);
    AMIX_CHECK(parent_[a.tail_root] == kInvalidNode);
    parent_[a.tail_root] = a.head_endpoint;
    ++indeg_[a.head_endpoint];
    creation_points.push_back(a.head_endpoint);
    --num_components_;
  }
  std::sort(creation_points.begin(), creation_points.end());
  creation_points.erase(
      std::unique(creation_points.begin(), creation_points.end()),
      creation_points.end());

  // Token balancing (Lemma 4.1 proof). Tokens live on nodes of the *old*
  // head tree; levels are the depths recorded before this merge batch
  // touched the head tree (attachments hang below, never above).
  struct Token {
    NodeId creation;
    NodeId at;
    NodeId via;  // child through which the token arrived at `at`
  };
  // level -> tokens at that level (keyed by depth of `at`).
  std::map<std::uint32_t, std::vector<Token>, std::greater<>> by_level;
  for (const NodeId w : creation_points) {
    by_level[depth_[w]].push_back(Token{w, w, w});
  }

  std::uint32_t steps = 0;
  while (!by_level.empty()) {
    const auto it = by_level.begin();
    const std::uint32_t level = it->first;
    std::vector<Token> toks = std::move(it->second);
    by_level.erase(it);

    // Merge co-located tokens first: every merge re-parents each token's
    // creation point below its via-child (a strict original ancestor), and
    // replaces the group by one fresh token.
    std::unordered_map<NodeId, std::vector<std::uint32_t>> at_node;
    for (std::uint32_t i = 0; i < toks.size(); ++i) {
      at_node[toks[i].at].push_back(i);
    }
    std::vector<Token> survivors;
    for (auto& [node, idxs] : at_node) {
      if (idxs.size() == 1) {
        survivors.push_back(toks[idxs[0]]);
        continue;
      }
      for (const std::uint32_t i : idxs) {
        const Token& t = toks[i];
        if (t.creation == t.via) continue;  // already a child of the meeting path
        // Re-parent the creation point below the via-child (shortcut).
        AMIX_CHECK(parent_[t.creation] != kInvalidNode);
        --indeg_[parent_[t.creation]];
        parent_[t.creation] = t.via;
        ++indeg_[t.via];
      }
      survivors.push_back(Token{node, node, node});
    }

    // Climb one level (tokens at the root stop).
    bool moved = false;
    for (Token& t : survivors) {
      const NodeId p = parent_[t.at];
      if (p == kInvalidNode) continue;  // reached the head root
      t.via = t.at;
      t.at = p;
      moved = true;
      AMIX_CHECK(depth_[p] < level);
      by_level[depth_[p]].push_back(t);
    }
    if (moved) ++steps;
  }
  return steps;
}

void VirtualTreeForest::refresh() {
  const NodeId n = g_->num_nodes();
  // Children lists, then BFS from each root to set depth and comp.
  std::vector<std::vector<NodeId>> children(n);
  std::vector<NodeId> roots;
  for (NodeId v = 0; v < n; ++v) {
    if (parent_[v] == kInvalidNode) {
      roots.push_back(v);
    } else {
      children[parent_[v]].push_back(v);
    }
  }
  AMIX_CHECK(roots.size() == num_components_);
  max_depth_ = 0;
  std::vector<NodeId> stack;
  for (const NodeId r : roots) {
    depth_[r] = 0;
    comp_[r] = r;
    stack.push_back(r);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId c : children[v]) {
        depth_[c] = depth_[v] + 1;
        comp_[c] = r;
        max_depth_ = std::max(max_depth_, depth_[c]);
        stack.push_back(c);
      }
    }
  }
}

}  // namespace amix
