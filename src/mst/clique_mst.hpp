#pragma once

// MST via clique emulation — the payoff of Theorem 1.3.
//
// The point of emulating the congested clique (Section 1, "clique
// emulation problem") is to run congested-clique algorithms on general
// graphs. This module does exactly that for MST: a clique-model Boruvka
// where, per iteration, every node announces its component's best outgoing
// edge to *everyone* (one all-to-all = one emulated clique round), after
// which every node merges components locally with zero further
// communication. O(log n) emulated clique rounds total — the textbook
// clique algorithm, priced through the Theorem-1.3 emulation.

#include <cstdint>
#include <vector>

#include "congest/round_ledger.hpp"
#include "graph/weighted_graph.hpp"
#include "hierarchy/hierarchy.hpp"

namespace amix {

struct CliqueMstStats {
  std::vector<EdgeId> edges;
  std::uint64_t rounds = 0;
  std::uint32_t clique_rounds = 0;  // emulated all-to-all exchanges
};

/// Requires a built hierarchy on the weighted graph. Charges one clique
/// emulation (K-phase routing of the all-to-all instance) per Boruvka
/// iteration. Verifies nothing itself; callers check against Kruskal.
CliqueMstStats clique_mst(const Hierarchy& h, const Weights& w,
                          RoundLedger& ledger, std::uint64_t seed = 1);

}  // namespace amix
