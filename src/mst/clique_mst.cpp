#include "mst/clique_mst.hpp"

#include <algorithm>
#include <limits>

#include "graph/exact_mst.hpp"
#include "mst/verify.hpp"
#include "routing/clique_emulation.hpp"

namespace amix {

CliqueMstStats clique_mst(const Hierarchy& h, const Weights& w,
                          RoundLedger& ledger, std::uint64_t seed) {
  const Graph& g = h.graph();
  const NodeId n = g.num_nodes();
  AMIX_CHECK(n >= 1);
  CliqueMstStats out;
  if (n <= 1) return out;
  const std::uint64_t rounds_at_entry = ledger.total();

  Rng rng(seed);
  const CliqueEmulator emulator(h);

  // Component tracking mirrors what EVERY node computes locally after each
  // all-to-all: since all candidates are globally known, the merge step is
  // deterministic and communication-free.
  UnionFind uf(n);
  constexpr std::pair<Weight, EdgeId> kNoEdge{
      std::numeric_limits<Weight>::max(), kInvalidEdge};

  while (uf.num_sets() > 1) {
    AMIX_CHECK_MSG(out.clique_rounds < 4 * 32, "clique_mst did not converge");
    // One emulated clique round: every node broadcasts its local best
    // outgoing edge per component (fits the all-to-all message budget).
    emulator.emulate_round(ledger, rng, 0.0);
    ++out.clique_rounds;

    // Globally known component minima -> deterministic local merging
    // (classic full Boruvka; chain merges are fine, all decisions shared).
    std::vector<std::pair<Weight, EdgeId>> best(n, kNoEdge);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const NodeId cu = uf.find(g.edge_u(e));
      const NodeId cv = uf.find(g.edge_v(e));
      if (cu == cv) continue;
      best[cu] = std::min(best[cu], w.key(e));
      best[cv] = std::min(best[cv], w.key(e));
    }
    for (NodeId c = 0; c < n; ++c) {
      const EdgeId e = best[c].second;
      if (e == kInvalidEdge) continue;
      // Every per-component minimum is an MST edge (distinct weights);
      // the cycle check only filters the doubly-chosen pairs.
      if (uf.unite(g.edge_u(e), g.edge_v(e))) out.edges.push_back(e);
    }
  }

  std::sort(out.edges.begin(), out.edges.end());
  AMIX_CHECK(is_spanning_tree(g, out.edges));
  out.rounds = ledger.total() - rounds_at_entry;
  return out;
}

}  // namespace amix
