#include "mst/baseline_mst.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "congest/primitives.hpp"
#include "graph/exact_mst.hpp"
#include "graph/traversal.hpp"
#include "mst/verify.hpp"

namespace amix {
namespace {

constexpr std::pair<Weight, EdgeId> kNoEdge{
    std::numeric_limits<Weight>::max(), kInvalidEdge};

/// Fragment bookkeeping shared by both baselines: union-find components,
/// the forest adjacency (chosen MST edges), and measured diameters.
class Fragments {
 public:
  explicit Fragments(const Graph& g)
      : g_(&g), uf_(g.num_nodes()), fadj_(g.num_nodes()) {}

  NodeId comp(NodeId v) { return uf_.find(v); }
  std::uint32_t num_components() const { return uf_.num_sets(); }
  std::uint32_t size_of(NodeId v) { return uf_.size_of(v); }

  void add_edge(EdgeId e) {
    const NodeId u = g_->edge_u(e);
    const NodeId v = g_->edge_v(e);
    AMIX_CHECK(uf_.unite(u, v));
    fadj_[u].push_back(v);
    fadj_[v].push_back(u);
    edges_.push_back(e);
  }

  const std::vector<EdgeId>& edges() const { return edges_; }

  /// Exact diameter (in F-edges) of v's fragment: double BFS on the tree.
  std::uint32_t fragment_diameter(NodeId v) const {
    const auto [far1, d1] = tree_bfs(v);
    (void)d1;
    return tree_bfs(far1).second;
  }

  /// Max fragment diameter over all fragments (each computed once).
  std::uint32_t max_diameter() {
    std::uint32_t best = 0;
    std::vector<bool> seen(g_->num_nodes(), false);
    for (NodeId v = 0; v < g_->num_nodes(); ++v) {
      const NodeId c = comp(v);
      if (seen[c]) continue;
      seen[c] = true;
      best = std::max(best, fragment_diameter(c));
    }
    return best;
  }

 private:
  std::pair<NodeId, std::uint32_t> tree_bfs(NodeId src) const {
    std::queue<std::pair<NodeId, NodeId>> q;  // node, from
    q.push({src, kInvalidNode});
    std::vector<std::uint32_t> dist(g_->num_nodes(), 0);
    NodeId far = src;
    while (!q.empty()) {
      const auto [v, from] = q.front();
      q.pop();
      if (dist[v] > dist[far]) far = v;
      for (const NodeId w : fadj_[v]) {
        if (w == from) continue;
        dist[w] = dist[v] + 1;
        q.push({w, v});
      }
    }
    return {far, dist[far]};
  }

  const Graph* g_;
  UnionFind uf_;
  std::vector<std::vector<NodeId>> fadj_;
  std::vector<EdgeId> edges_;
};

/// Minimum outgoing edge per fragment (classic Boruvka step, computed
/// centrally; the *rounds* are charged by the callers).
std::vector<std::pair<NodeId, EdgeId>> min_outgoing(const Graph& g,
                                                    const Weights& w,
                                                    Fragments& frags) {
  std::vector<std::pair<Weight, EdgeId>> best(g.num_nodes(), kNoEdge);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId cu = frags.comp(g.edge_u(e));
    const NodeId cv = frags.comp(g.edge_v(e));
    if (cu == cv) continue;
    best[cu] = std::min(best[cu], w.key(e));
    best[cv] = std::min(best[cv], w.key(e));
  }
  std::vector<std::pair<NodeId, EdgeId>> out;
  for (NodeId c = 0; c < g.num_nodes(); ++c) {
    if (frags.comp(c) == c && best[c].second != kInvalidEdge) {
      out.emplace_back(c, best[c].second);
    }
  }
  return out;
}

}  // namespace

BaselineMstStats flood_boruvka(const Graph& g, const Weights& w,
                               RoundLedger& ledger) {
  AMIX_CHECK(g.num_nodes() >= 1);
  const std::uint64_t rounds_at_entry = ledger.total();
  BaselineMstStats out;
  Fragments frags(g);

  while (frags.num_components() > 1) {
    ++out.iterations;
    // Neighbors exchange fragment ids (1 round), then convergecast +
    // broadcast over every fragment tree: 2 * diameter + 2 rounds.
    const std::uint32_t diam = frags.max_diameter();
    out.max_fragment_diameter = std::max(out.max_fragment_diameter, diam);
    ledger.charge(1 + 2ULL * diam + 2);

    const auto chosen = min_outgoing(g, w, frags);
    AMIX_CHECK(!chosen.empty());
    for (const auto& [c, e] : chosen) {
      if (frags.comp(g.edge_u(e)) != frags.comp(g.edge_v(e))) {
        frags.add_edge(e);
        out.edges.push_back(e);
      }
    }
  }

  std::sort(out.edges.begin(), out.edges.end());
  AMIX_CHECK(is_spanning_tree(g, out.edges));
  out.rounds = ledger.total() - rounds_at_entry;
  return out;
}

BaselineMstStats pipelined_boruvka(const Graph& g, const Weights& w,
                                   RoundLedger& ledger,
                                   std::uint32_t size_cap) {
  AMIX_CHECK(g.num_nodes() >= 1);
  const std::uint64_t rounds_at_entry = ledger.total();
  if (size_cap == 0) {
    size_cap = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(g.num_nodes()))));
  }
  BaselineMstStats out;
  Fragments frags(g);

  // Phase 1 (controlled growth): only fragments below the size cap
  // propose; cost per iteration is the diameter of the proposing
  // fragments (all small), Theta(sqrt n) in total.
  while (frags.num_components() > 1) {
    // Which fragments still propose?
    bool any_small = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (frags.comp(v) == v && frags.size_of(v) < size_cap) {
        any_small = true;
        break;
      }
    }
    if (!any_small) break;
    ++out.iterations;
    ++out.phase1_iterations;

    std::uint32_t cast_diam = 0;
    std::vector<bool> seen(g.num_nodes(), false);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const NodeId c = frags.comp(v);
      if (seen[c] || frags.size_of(c) >= size_cap) continue;
      seen[c] = true;
      cast_diam = std::max(cast_diam, frags.fragment_diameter(c));
    }
    out.max_fragment_diameter =
        std::max(out.max_fragment_diameter, cast_diam);
    ledger.charge(1 + 2ULL * cast_diam + 2);

    const auto chosen = min_outgoing(g, w, frags);
    for (const auto& [c, e] : chosen) {
      if (frags.size_of(c) >= size_cap) continue;  // big fragments wait
      if (frags.comp(g.edge_u(e)) != frags.comp(g.edge_v(e))) {
        frags.add_edge(e);
        out.edges.push_back(e);
      }
    }
  }

  // Phase 2: aggregate fragment candidates over a global BFS tree with
  // pipelining. The upcast is run for real on the kernel
  // (pipelined_convergecast, ~height + #fragments rounds); the matching
  // downcast is charged symmetrically.
  const BfsTree tree = bfs_tree(g, 0);
  ledger.charge(tree.height + 1);  // building the tree by flooding
  while (frags.num_components() > 1) {
    ++out.iterations;
    ++out.phase2_iterations;
    ledger.charge(1);  // neighbors exchange fragment ids

    // Every node contributes (fragment id -> its best outgoing edge key);
    // the pipeline combines by min. Values pack (weight, edge) so the
    // root's map is exactly the per-fragment Boruvka choice.
    std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> items(
        g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      std::pair<Weight, EdgeId> local = kNoEdge;
      for (const Arc& a : g.arcs(v)) {
        if (frags.comp(v) != frags.comp(a.to)) {
          local = std::min(local, w.key(a.edge));
        }
      }
      if (local.second != kInvalidEdge) {
        items[v].push_back(
            {frags.comp(v),
             local.first * (g.num_edges() + 1ULL) + local.second});
      }
    }
    const std::uint64_t before = ledger.total();
    const auto combined =
        congest::pipelined_convergecast(g, tree, items, ledger);
    ledger.charge(ledger.total() - before);  // symmetric downcast

    AMIX_CHECK(!combined.empty());
    for (const auto& [frag, packed] : combined) {
      (void)frag;
      const EdgeId e =
          static_cast<EdgeId>(packed % (g.num_edges() + 1ULL));
      if (frags.comp(g.edge_u(e)) != frags.comp(g.edge_v(e))) {
        frags.add_edge(e);
        out.edges.push_back(e);
      }
    }
  }

  std::sort(out.edges.begin(), out.edges.end());
  AMIX_CHECK(is_spanning_tree(g, out.edges));
  out.rounds = ledger.total() - rounds_at_entry;
  return out;
}

}  // namespace amix
