#pragma once

// MST verification helpers: with distinct weights the MST is unique, so a
// distributed run is correct iff its edge set equals Kruskal's.

#include <cstdint>
#include <vector>

#include "graph/exact_mst.hpp"

namespace amix {

/// True iff `edges` (any order) is exactly the unique MST of (g, w).
bool is_exact_mst(const Graph& g, const Weights& w,
                  const std::vector<EdgeId>& edges);

/// True iff `edges` forms a spanning tree of g (n-1 edges, connected,
/// acyclic) — a weaker structural check used while debugging.
bool is_spanning_tree(const Graph& g, const std::vector<EdgeId>& edges);

}  // namespace amix
