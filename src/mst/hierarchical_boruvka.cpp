#include "mst/hierarchical_boruvka.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "mst/virtual_tree.hpp"
#include "mst/verify.hpp"
#include "obs/trace.hpp"

namespace amix {

MstStats HierarchicalBoruvka::run(RoundLedger& ledger,
                                  const MstParams& params) const {
  const Graph& g = h_->graph();
  const Weights& w = *w_;
  const NodeId n = g.num_nodes();
  AMIX_CHECK(n >= 1);

  MstStats out;
  if (n == 1) return out;
  const obs::Span run_span(ledger, "mst/boruvka");
  const std::uint64_t rounds_at_entry = ledger.total();

  Rng rng(params.seed);
  HierarchicalRouter router(*h_);
  VirtualTreeForest forest(g);

  const std::uint32_t max_iterations =
      params.max_iterations != 0
          ? params.max_iterations
          : 40 * static_cast<std::uint32_t>(
                     std::ceil(std::log2(static_cast<double>(n) + 1)));

  std::uint64_t seq = 1;
  constexpr std::pair<Weight, EdgeId> kNoEdge{
      std::numeric_limits<Weight>::max(), kInvalidEdge};

  while (forest.num_components() > 1) {
    AMIX_CHECK_MSG(out.iterations < max_iterations,
                   "Boruvka did not converge (coin flips too unlucky?)");
    ++out.iterations;
    const obs::Span phase_span(
        ledger, obs::numbered("boruvka/phase-", out.iterations));

    // Coins: the component root flips; the value rides along with the
    // component id in the dissemination below.
    std::unordered_map<NodeId, bool> head;
    for (NodeId v = 0; v < n; ++v) {
      if (forest.is_root(v)) head[v] = rng.next_bool();
    }
    // Neighbors exchange (component id, coin): one kernel round.
    ledger.charge(1);

    // Local candidates: every tail component computes its minimum-weight
    // outgoing edge (over ALL outgoing edges — the cut property makes
    // exactly that edge safe); the merge below is applied only when the
    // chosen edge happens to lead into a head component.
    std::vector<std::pair<Weight, EdgeId>> best_at_root(n, kNoEdge);
    for (NodeId v = 0; v < n; ++v) {
      const NodeId c = forest.comp(v);
      if (head[c]) continue;
      std::pair<Weight, EdgeId> local = kNoEdge;
      for (const Arc& a : g.arcs(v)) {
        if (forest.comp(a.to) == c) continue;
        local = std::min(local, w.key(a.edge));
      }
      best_at_root[c] = std::min(best_at_root[c], local);
    }

    // Up/downcast cost: one routing instance (child -> parent over every
    // virtual tree) measured for real, then amortized over the
    // level-synchronous steps (the request multiset is identical each
    // step; exact mode re-measures every step).
    const std::uint32_t depth = forest.max_depth();
    std::uint64_t instance_cost = 0;
    if (depth > 0) {
      const obs::Span cast_span(ledger, "boruvka/upcast+downcast");
      std::vector<RouteRequest> reqs;
      reqs.reserve(n);
      for (NodeId v = 0; v < n; ++v) {
        if (!forest.is_root(v)) {
          reqs.push_back(RouteRequest{v, addr_of(g, forest.parent(v)), seq++});
        }
      }
      const auto charge_instance = [&]() {
        const RouteStats rs = router.route_in_phases(reqs, 0, ledger, rng);
        ++out.routing_instances;
        out.routed_packets += rs.packets;
        return rs.total_rounds;
      };
      instance_cost = charge_instance();
      const std::uint64_t casts = 2ULL * depth;  // upcast + downcast steps
      if (params.exact_charging) {
        for (std::uint64_t s = 1; s < casts; ++s) charge_instance();
      } else {
        ledger.charge((casts - 1) * instance_cost);
      }
    }

    // The decided cross edges are announced over the edge itself.
    ledger.charge(1);

    // Star merges grouped by head component.
    std::unordered_map<NodeId, std::vector<VirtualTreeForest::Attachment>>
        merges;
    for (NodeId r = 0; r < n; ++r) {
      const EdgeId e = best_at_root[r].second;
      if (e == kInvalidEdge) continue;
      const NodeId u = g.edge_u(e);
      const NodeId v = g.edge_v(e);
      const NodeId head_ep = forest.comp(u) == r ? v : u;
      if (!head[forest.comp(head_ep)]) continue;  // tail -> tail: wait
      merges[forest.comp(head_ep)].push_back(
          VirtualTreeForest::Attachment{r, head_ep});
      out.edges.push_back(e);
    }

    std::uint32_t balance_steps = 0;
    for (auto& [head_root, atts] : merges) {
      balance_steps += forest.merge_star(head_root, atts);
    }
    forest.refresh();

    // Balancing tokens + new-component-id relabel travel over tree edges;
    // both are (sub)instances of the measured upcast shape.
    const obs::Span balance_span(ledger, "boruvka/balance+relabel");
    if (instance_cost > 0 || forest.max_depth() > 0) {
      const std::uint64_t per_step =
          instance_cost > 0 ? instance_cost : 1;
      ledger.charge(static_cast<std::uint64_t>(balance_steps) * per_step);
      ledger.charge(static_cast<std::uint64_t>(forest.max_depth()) * per_step);
    }

    out.max_tree_depth = std::max(out.max_tree_depth, forest.max_depth());
    for (NodeId v = 0; v < n; ++v) {
      out.max_tree_indegree = std::max(out.max_tree_indegree,
                                       forest.indegree(v));
      out.max_indegree_over_degree =
          std::max(out.max_indegree_over_degree,
                   static_cast<double>(forest.indegree(v)) /
                       static_cast<double>(g.degree(v)));
    }
  }

  AMIX_CHECK(out.edges.size() + 1 == n);
  AMIX_CHECK_MSG(is_spanning_tree(g, out.edges),
                 "hierarchical Boruvka produced a non-tree");
  std::sort(out.edges.begin(), out.edges.end());
  out.rounds = ledger.total() - rounds_at_entry;
  if (obs::recorder() != nullptr) {
    obs::metric_gauge_set("mst/iterations", out.iterations);
    obs::metric_gauge_max("mst/max_tree_depth", out.max_tree_depth);
    obs::metric_gauge_max("mst/max_tree_indegree", out.max_tree_indegree);
    obs::metric_counter_add("mst/routing_instances", out.routing_instances);
    obs::metric_counter_add("mst/routed_packets", out.routed_packets);
  }
  return out;
}

}  // namespace amix
