#pragma once

// Virtual trees (Lemma 4.1): one shallow tree per Boruvka component,
// used to upcast/downcast min-outgoing-edge candidates via the
// permutation router. The forest maintains, across star merges, the
// lemma's three properties: depth O(log^2 n), per-node virtual in-degree
// d_G(v) * O(log n), and known parents.
//
// merge_star attaches every tail component's root below the head-side
// endpoint of its chosen MST edge, then runs the token balancing process
// of Lemma 4.1's proof: tokens start at the attachment points, climb the
// head tree level-synchronously, and whenever two or more meet, their
// creation points are re-parented below the child through which they
// arrived (a shortcut to an original ancestor — provably acyclic). The
// number of climb steps is returned so the caller can charge one routing
// instance per step.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace amix {

class VirtualTreeForest {
 public:
  explicit VirtualTreeForest(const Graph& g);

  NodeId parent(NodeId v) const { return parent_[v]; }
  bool is_root(NodeId v) const { return parent_[v] == kInvalidNode; }

  /// Component representative (the tree root). O(1): cached per epoch.
  NodeId comp(NodeId v) const { return comp_[v]; }

  std::uint32_t depth(NodeId v) const { return depth_[v]; }
  std::uint32_t max_depth() const { return max_depth_; }
  std::uint32_t indegree(NodeId v) const { return indeg_[v]; }
  std::uint32_t max_children(NodeId v) const { return indeg_[v]; }
  NodeId num_components() const { return num_components_; }

  struct Attachment {
    NodeId tail_root;     // root of the tail component's tree
    NodeId head_endpoint; // v_i: the head-side endpoint of the merge edge
  };

  /// Merge tail components into the head component (star merge). All
  /// attachments must reference the same head component. Returns the
  /// number of level-synchronous balancing steps performed (for round
  /// charging). Caller must call refresh() after all merges of the
  /// iteration.
  std::uint32_t merge_star(NodeId head_root,
                           std::span<const Attachment> attachments);

  /// Recompute component labels and depths after a batch of merges.
  void refresh();

 private:
  const Graph* g_;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> indeg_;
  std::vector<NodeId> comp_;
  std::uint32_t max_depth_ = 0;
  NodeId num_components_ = 0;
};

}  // namespace amix
