#pragma once

// Immutable undirected graph in adjacency-array (CSR) form.
//
// This is the "base network" G = (V, E) of the CONGEST model: nodes are
// 0..n-1, edges have stable ids 0..m-1, and every incident (node, port)
// slot maps to one directed arc. Ports matter: the paper's virtual nodes
// (Section 3.1.1) are exactly the (node, port) slots, and the CONGEST
// capacity constraint is "one O(log n)-bit message per edge direction per
// round", i.e. per arc.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace amix {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// One directed incidence slot: the neighbor reached and the undirected
/// edge id used.
struct Arc {
  NodeId to;
  EdgeId edge;
};

/// One edge mutation: insert (or delete) the undirected edge {u, v}.
/// Inapplicable ops — self-loops, endpoints out of range, inserting a
/// present edge, deleting an absent one — are no-ops, so delta streams
/// from churn generators and fuzzers apply without pre-validation.
struct EdgeDelta {
  NodeId u = 0;
  NodeId v = 0;
  bool insert = true;
};

/// An ordered batch of edge mutations, applied left to right by
/// Graph::apply_delta (so "delete then re-insert" moves an edge to the
/// end of the edge list, while "insert then delete" is a net no-op).
using GraphDelta = std::vector<EdgeDelta>;

class Graph {
 public:
  Graph() = default;

  /// Build from an undirected edge list. Self-loops and parallel edges are
  /// rejected (the algorithms in this library assume a simple base graph;
  /// multigraph behaviour, where needed, is handled algorithmically).
  static Graph from_edges(NodeId n,
                          const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Streaming build path for huge instances: takes ownership of the edge
  /// list (which becomes the endpoint array in place — no copy) and
  /// counting-sorts it straight into the flat CSR arrays, exactly like
  /// from_edges but WITHOUT the per-edge hash-set duplicate probe — the
  /// dominant allocation and the dominant cache-miss source at 10^7+
  /// edges. The caller warrants the list is simple (no self-loops, no
  /// parallel edges); range and self-loop violations still abort, and the
  /// skip-sampling generators satisfy the no-duplicate contract by
  /// construction (they enumerate strictly increasing pair indices).
  /// Port numbering is identical to from_edges on the same list
  /// (tests/test_generators_scale.cpp pins element-wise identity).
  static Graph from_edge_stream(NodeId n,
                                std::vector<std::pair<NodeId, NodeId>>&& edges);

  NodeId num_nodes() const { return n_; }
  EdgeId num_edges() const { return m_; }

  std::uint32_t degree(NodeId v) const {
    AMIX_DCHECK(v < n_);
    return offsets_[v + 1] - offsets_[v];
  }

  std::uint32_t max_degree() const { return max_degree_; }

  /// All incidence slots of v; `arcs(v)[p]` is v's port p.
  std::span<const Arc> arcs(NodeId v) const {
    AMIX_DCHECK(v < n_);
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  NodeId neighbor(NodeId v, std::uint32_t port) const {
    AMIX_DCHECK(port < degree(v));
    return adj_[offsets_[v] + port].to;
  }

  EdgeId edge_at(NodeId v, std::uint32_t port) const {
    AMIX_DCHECK(port < degree(v));
    return adj_[offsets_[v] + port].edge;
  }

  /// Endpoints of edge e, with u() < v().
  NodeId edge_u(EdgeId e) const {
    AMIX_DCHECK(e < m_);
    return edge_endpoints_[e].first;
  }
  NodeId edge_v(EdgeId e) const {
    AMIX_DCHECK(e < m_);
    return edge_endpoints_[e].second;
  }

  /// The endpoint of e that is not `from`.
  NodeId other_endpoint(EdgeId e, NodeId from) const {
    const auto [a, b] = edge_endpoints_[e];
    AMIX_DCHECK(from == a || from == b);
    return from == a ? b : a;
  }

  /// Port index of edge e at node v (the inverse of edge_at). O(1).
  std::uint32_t port_of(NodeId v, EdgeId e) const {
    const auto [a, b] = edge_endpoints_[e];
    AMIX_DCHECK(v == a || v == b);
    return v == a ? edge_ports_[e].first : edge_ports_[e].second;
  }

  /// True if {u, v} is an edge. O(min degree) — fine for tests/oracles.
  bool has_edge(NodeId u, NodeId v) const;

  /// The edge list (normalized u < v, in edge-id order). Ports are
  /// assigned in edge-list order, so this IS the port assignment: node
  /// v's port p belongs to the (p+1)-th edge of this list incident to v.
  const std::vector<std::pair<NodeId, NodeId>>& edges() const {
    return edge_endpoints_;
  }

  /// A new graph (same node count) with `delta` applied in order.
  /// Surviving edges keep their relative edge-list position, and since
  /// ports follow edge-list order, every surviving (node, port) slot
  /// keeps its relative port order at its endpoint; inserted edges take
  /// the highest ports of their endpoints. This key stability is what
  /// makes the hierarchy's delta repair local (see src/hierarchy/).
  Graph apply_delta(const GraphDelta& delta) const;

  /// Sum of degrees = 2m; the number of virtual nodes of Section 3.1.1.
  std::uint64_t num_arcs() const { return 2ULL * m_; }

  /// Heap bytes held by the CSR arrays (capacity, not size — what the
  /// process actually pays). Feeds the bytes-per-edge counters of the
  /// scale benches and the DESIGN.md Section 13 memory budget.
  std::uint64_t memory_bytes() const {
    return offsets_.capacity() * sizeof(std::uint32_t) +
           adj_.capacity() * sizeof(Arc) +
           edge_endpoints_.capacity() * sizeof(edge_endpoints_[0]) +
           edge_ports_.capacity() * sizeof(edge_ports_[0]);
  }

 private:
  /// Counting-sort edge_endpoints_ (already normalized u < v, n_/m_ set)
  /// into offsets_/adj_/edge_ports_; the shared tail of both build paths.
  void build_csr_from_endpoints();

  NodeId n_ = 0;
  EdgeId m_ = 0;
  std::uint32_t max_degree_ = 0;
  std::vector<std::uint32_t> offsets_;  // size n_+1
  std::vector<Arc> adj_;                // size 2m_
  std::vector<std::pair<NodeId, NodeId>> edge_endpoints_;        // size m_
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_ports_;  // size m_
};

/// The delta transforming `from`'s edge set into `to`'s: deletions (in
/// `from` edge-id order) followed by insertions (in `to` edge-id order).
/// Requires equal node counts. Inverse of Graph::apply_delta up to edge
/// order of the insertions.
GraphDelta delta_between(const Graph& from, const Graph& to);

}  // namespace amix
