#pragma once

// Graph generators for the experiment suite.
//
// Families are chosen to span the mixing-time spectrum the paper cares
// about: expanders and G(n,p) above the connectivity threshold (tau_mix
// polylog — where Theorem 1.1 beats O~(D + sqrt(n))), tori and hypercubes
// (intermediate), and rings / barbells (tau_mix = Theta(n^2) — where the
// classic algorithms win). All generators are deterministic given the Rng.

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace amix::gen {

/// Edge-sampling strategy for the Bernoulli-family generators (G(n,p),
/// SBM). kSkip draws a geometric gap per SELECTED edge — O(nnz) work and
/// rng draws, the only mode that scales to 10^7-node instances (STAG's
/// "approximate sampling" technique; here the skip walk is distribution-
/// exact, the approximation budget is spent nowhere). kExact flips one
/// Bernoulli coin per node pair — O(n^2) — and exists as the reference
/// the distribution-agreement tests hold kSkip against on small n.
enum class SampleMode {
  kSkip,
  kExact,
};

/// Erdos-Renyi G(n, p). Not guaranteed connected; use
/// `connected_gnp` for a connected sample.
Graph gnp(NodeId n, double p, Rng& rng, SampleMode mode = SampleMode::kSkip);

/// G(n, p) resampled until connected (p should be above the ~ln n / n
/// threshold or this will loop for a long time; checked with a cap).
/// Rejection runs on the flat edge sample via union-find — a failed
/// attempt never pays the CSR build or a BFS, and the scratch arrays are
/// reused across attempts.
Graph connected_gnp(NodeId n, double p, Rng& rng, int max_attempts = 64);

/// Stochastic block model: `k` near-equal blocks (the first n % k blocks
/// get the extra node), edge probability `p_in` within a block and
/// `p_out` across. Block membership is by node-id range — see
/// `sbm_block_starts`. kSkip samples each of the O(k^2) block pairs with
/// geometric jumps, so the cost is O(k^2 + nnz) regardless of n.
Graph sbm(NodeId n, std::uint32_t k, double p_in, double p_out, Rng& rng,
          SampleMode mode = SampleMode::kSkip);

/// Block boundaries of `sbm(n, k, ...)`: k+1 entries; block b is the
/// node-id range [starts[b], starts[b+1]).
std::vector<NodeId> sbm_block_starts(NodeId n, std::uint32_t k);

/// Random d-regular graph via the configuration model with rejection and
/// local repair (switches) of self-loops / parallel edges. Requires
/// n*d even, d < n. Connected w.h.p. for d >= 3; resamples until connected.
Graph random_regular(NodeId n, std::uint32_t d, Rng& rng);

/// Union of `d` random perfect matchings on an even number of nodes:
/// a classic explicit-ish expander family with max degree exactly d
/// (parallel edges between matchings are repaired by re-switching).
Graph matching_expander(NodeId n, std::uint32_t d, Rng& rng);

/// Cycle on n nodes (tau_mix = Theta(n^2); D = n/2).
Graph ring(NodeId n);

/// Path on n nodes.
Graph path(NodeId n);

/// Complete graph K_n (the congested clique).
Graph complete(NodeId n);

/// Star with one hub and n-1 leaves.
Graph star(NodeId n);

/// 2D torus of side `side` (n = side^2, 4-regular, tau_mix = Theta(n)).
Graph torus2d(NodeId side);

/// 2D grid (no wraparound).
Graph grid2d(NodeId rows, NodeId cols);

/// Hypercube on 2^dim nodes (degree dim, tau_mix = Theta(dim log dim)).
Graph hypercube(std::uint32_t dim);

/// Two complete graphs of size n/2 joined by a single edge — the classic
/// bad-mixing instance (tau_mix = Theta(n^2)).
Graph barbell(NodeId n);

/// Watts-Strogatz small-world: ring lattice with k nearest neighbors per
/// side, each edge rewired with probability beta (simple-graph repaired).
Graph watts_strogatz(NodeId n, std::uint32_t k, double beta, Rng& rng);

/// Barabasi-Albert preferential attachment, `attach` edges per new node.
Graph barabasi_albert(NodeId n, std::uint32_t attach, Rng& rng);

/// Churn step for overlay experiments: `swaps` random double-edge swaps
/// ((a,b),(c,d) -> (a,d),(c,b)), preserving every node's degree. Swaps
/// that would create self-loops or parallel edges are skipped; the result
/// is resampled until connected (when the input was). Models P2P topology
/// drift without changing the degree sequence.
Graph degree_preserving_rewire(const Graph& g, std::uint32_t swaps, Rng& rng);

/// The Peleg-Rubinovich / Das Sarma et al. style lower-bound skeleton:
/// `paths` long parallel paths of length `plen` glued to a shallow
/// complete binary tree spine — diameter O(log n) but MST needs
/// ~sqrt(n) rounds; also mixes slowly. Used by E3.
Graph lowerbound_skeleton(std::uint32_t paths, std::uint32_t plen);

}  // namespace amix::gen
