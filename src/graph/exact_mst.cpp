#include "graph/exact_mst.hpp"

#include <algorithm>
#include <queue>

namespace amix {

UnionFind::UnionFind(std::uint32_t n)
    : parent_(n), size_(n, 1), sets_(n) {
  for (std::uint32_t i = 0; i < n; ++i) parent_[i] = i;
}

std::uint32_t UnionFind::find(std::uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --sets_;
  return true;
}

std::vector<EdgeId> kruskal_msf(const Graph& g, const Weights& w) {
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(),
            [&w](EdgeId a, EdgeId b) { return w.less(a, b); });
  UnionFind uf(g.num_nodes());
  std::vector<EdgeId> out;
  out.reserve(g.num_nodes() > 0 ? g.num_nodes() - 1 : 0);
  for (const EdgeId e : order) {
    if (uf.unite(g.edge_u(e), g.edge_v(e))) out.push_back(e);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EdgeId> kruskal_mst(const Graph& g, const Weights& w) {
  auto out = kruskal_msf(g, w);
  AMIX_CHECK_MSG(out.size() + 1 == g.num_nodes(),
                 "kruskal_mst requires a connected graph");
  return out;
}

std::vector<EdgeId> prim_mst(const Graph& g, const Weights& w) {
  AMIX_CHECK(g.num_nodes() >= 1);
  using Item = std::pair<std::pair<Weight, EdgeId>, NodeId>;  // key, node
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  std::vector<bool> in_tree(g.num_nodes(), false);
  std::vector<EdgeId> out;
  in_tree[0] = true;
  for (const Arc& a : g.arcs(0)) pq.push({w.key(a.edge), a.to});
  while (!pq.empty()) {
    const auto [key, v] = pq.top();
    pq.pop();
    if (in_tree[v]) continue;
    in_tree[v] = true;
    out.push_back(key.second);
    for (const Arc& a : g.arcs(v)) {
      if (!in_tree[a.to]) pq.push({w.key(a.edge), a.to});
    }
  }
  AMIX_CHECK_MSG(out.size() + 1 == g.num_nodes(),
                 "prim_mst requires a connected graph");
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace amix
