#pragma once

// Exact global minimum cut (Stoer-Wagner) — the verification oracle for
// the approximate distributed min-cut of Section 4 / src/mincut.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace amix {

/// Exact unweighted global min cut value. O(n^3); use on n <~ 1000.
/// Requires a connected graph with >= 2 nodes.
std::uint64_t stoer_wagner_mincut(const Graph& g);

/// Weighted variant (per-edge capacities).
std::uint64_t stoer_wagner_mincut(const Graph& g,
                                  const std::vector<std::uint64_t>& cap);

/// Cut value of a given side-set indicator (number of crossing edges).
std::uint64_t cut_value(const Graph& g, const std::vector<bool>& in_s);

}  // namespace amix
