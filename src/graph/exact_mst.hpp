#pragma once

// Centralized MST oracles (Kruskal and Prim) and a union-find.
//
// These are *verification* tools: distinct weights make the MST unique, so
// any distributed run can be checked edge-for-edge against Kruskal.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace amix {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::uint32_t n);

  std::uint32_t find(std::uint32_t x);
  /// Returns false if already in the same set.
  bool unite(std::uint32_t a, std::uint32_t b);
  std::uint32_t num_sets() const { return sets_; }
  std::uint32_t size_of(std::uint32_t x) { return size_[find(x)]; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::uint32_t sets_;
};

/// Kruskal. Returns MST edge ids sorted ascending; requires connectivity.
std::vector<EdgeId> kruskal_mst(const Graph& g, const Weights& w);

/// Prim (binary-heap). Same output as Kruskal given distinct weights.
std::vector<EdgeId> prim_mst(const Graph& g, const Weights& w);

/// Minimum spanning forest (allows disconnected graphs).
std::vector<EdgeId> kruskal_msf(const Graph& g, const Weights& w);

}  // namespace amix
