#pragma once

// Edge weights for MST / min-cut experiments.
//
// The paper (like most of the distributed MST literature) assumes distinct
// edge weights, which makes the MST unique and lets Kruskal serve as a
// complete verification oracle. `distinct_random_weights` guarantees
// distinctness by construction; `Weights::mst_key` additionally tie-breaks
// by edge id so even adversarial inputs have a unique MST.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace amix {

using Weight = std::uint64_t;

class Weights {
 public:
  Weights() = default;
  Weights(const Graph& g, std::vector<Weight> w) : w_(std::move(w)) {
    AMIX_CHECK(w_.size() == g.num_edges());
  }

  Weight operator[](EdgeId e) const {
    AMIX_DCHECK(e < w_.size());
    return w_[e];
  }

  std::size_t size() const { return w_.size(); }

  /// Total ordering on edges: by weight, ties by edge id. The MST w.r.t.
  /// this ordering is unique.
  bool less(EdgeId a, EdgeId b) const {
    return w_[a] != w_[b] ? w_[a] < w_[b] : a < b;
  }

  /// 96-bit comparable key packed as (weight, edge id) — what the CONGEST
  /// messages carry (fits in O(log n) bits).
  std::pair<Weight, EdgeId> key(EdgeId e) const { return {w_[e], e}; }

  std::uint64_t total(const std::vector<EdgeId>& edges) const {
    std::uint64_t s = 0;
    for (const EdgeId e : edges) s += w_[e];
    return s;
  }

 private:
  std::vector<Weight> w_;
};

/// Uniformly random distinct weights (random permutation of 1..m scaled).
Weights distinct_random_weights(const Graph& g, Rng& rng);

/// Weights correlated with an embedding (Euclidean-ish), still distinct;
/// exercises non-uniform weight distributions in tests.
Weights clustered_weights(const Graph& g, Rng& rng, std::uint32_t clusters);

}  // namespace amix
