#pragma once

// Graph and weight serialization: a simple, diff-friendly text format so
// experiments can be pinned to on-disk instances and exchanged.
//
//   # comments and blank lines are ignored
//   graph <n> <m>
//   e <u> <v> [w]        (m lines; weights optional but all-or-none)
//
// All writers emit edges in edge-id order, so write/read round-trips
// preserve edge ids (and therefore Weights indices).

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.hpp"
#include "graph/weighted_graph.hpp"

namespace amix {

struct GraphFile {
  Graph graph;
  std::optional<Weights> weights;
};

/// Serialize (optionally with weights) to the text format above.
void write_graph(std::ostream& os, const Graph& g,
                 const Weights* w = nullptr);

/// Parse the text format; throws via AMIX_CHECK on malformed input.
GraphFile read_graph(std::istream& is);

/// File-path convenience wrappers.
void save_graph(const std::string& path, const Graph& g,
                const Weights* w = nullptr);
GraphFile load_graph(const std::string& path);

}  // namespace amix
