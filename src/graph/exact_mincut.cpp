#include "graph/exact_mincut.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace amix {

std::uint64_t cut_value(const Graph& g, const std::vector<bool>& in_s) {
  AMIX_CHECK(in_s.size() == g.num_nodes());
  std::uint64_t cut = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_s[g.edge_u(e)] != in_s[g.edge_v(e)]) ++cut;
  }
  return cut;
}

std::uint64_t stoer_wagner_mincut(const Graph& g,
                                  const std::vector<std::uint64_t>& cap) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK(n >= 2);
  AMIX_CHECK(cap.size() == g.num_edges());
  // Dense adjacency matrix of capacities; merged nodes accumulate.
  std::vector<std::vector<std::uint64_t>> w(n,
                                            std::vector<std::uint64_t>(n, 0));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    w[g.edge_u(e)][g.edge_v(e)] += cap[e];
    w[g.edge_v(e)][g.edge_u(e)] += cap[e];
  }
  std::vector<NodeId> active(n);
  for (NodeId v = 0; v < n; ++v) active[v] = v;

  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  while (active.size() > 1) {
    // Maximum-adjacency (minimum cut phase) ordering.
    std::vector<std::uint64_t> conn(active.size(), 0);
    std::vector<bool> added(active.size(), false);
    NodeId prev_idx = 0, last_idx = 0;
    for (std::size_t step = 0; step < active.size(); ++step) {
      std::size_t pick = active.size();
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!added[i] && (pick == active.size() || conn[i] > conn[pick])) {
          pick = i;
        }
      }
      added[pick] = true;
      prev_idx = last_idx;
      last_idx = static_cast<NodeId>(pick);
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!added[i]) conn[i] += w[active[pick]][active[i]];
      }
    }
    best = std::min(best, conn[last_idx]);
    // Merge last into prev.
    const NodeId s = active[prev_idx];
    const NodeId t = active[last_idx];
    for (const NodeId v : active) {
      if (v == s || v == t) continue;
      w[s][v] += w[t][v];
      w[v][s] = w[s][v];
    }
    active.erase(active.begin() + last_idx);
  }
  return best;
}

std::uint64_t stoer_wagner_mincut(const Graph& g) {
  return stoer_wagner_mincut(
      g, std::vector<std::uint64_t>(g.num_edges(), 1));
}

}  // namespace amix
