#pragma once

// Spectral / random-walk analysis toolkit.
//
// Implements the quantities the paper parameterizes by:
//   * tau_mix(G)      — Definition 2.1, for the lazy random walk;
//   * tau_mix_bar(G)  — mixing of the 2Delta-regular walk (Definition 2.2);
//   * h(G)            — edge expansion (estimated by Fiedler sweep cuts,
//                       exact by brute force on tiny graphs);
//   * the Cheeger-style bound of Lemma 2.3.
//
// Distribution evolution is exact (dense vector times sparse matrix), so
// measured mixing times are true values per the paper's definition, not
// Monte-Carlo estimates.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace amix {

enum class WalkKind {
  kLazy,           // stay w.p. 1/2, else uniform incident edge
  kRegular2Delta,  // stay w.p. 1 - d(v)/(2*Delta), else each edge w.p. 1/(2*Delta)
};

/// Stationary distribution: d(v)/2m for lazy, 1/n for 2Delta-regular.
std::vector<double> stationary(const Graph& g, WalkKind kind);

/// One exact step of the walk on a distribution (out may alias nothing).
void step_distribution(const Graph& g, WalkKind kind,
                       const std::vector<double>& in,
                       std::vector<double>& out);

/// Smallest t such that the walk started at `src` satisfies the paper's
/// Definition 2.1 criterion |P^t(u) - pi(u)| <= pi(u)/n for all u.
/// Returns max_t+1 if not mixed within max_t steps.
std::uint32_t mixing_time_from_start(const Graph& g, WalkKind kind,
                                     NodeId src, std::uint32_t max_t);

/// Definition 2.1 tau_mix: max over all starts. O(n * m * tau) — exact but
/// only for small graphs (tests, calibration).
std::uint32_t mixing_time_exact(const Graph& g, WalkKind kind,
                                std::uint32_t max_t);

/// Max over `samples` random starts plus the extremal-degree nodes.
/// A tight lower bound on tau_mix in practice (and exact on
/// vertex-transitive graphs); this is what the benches report.
std::uint32_t mixing_time_sampled(const Graph& g, WalkKind kind,
                                  std::uint32_t samples, Rng& rng,
                                  std::uint32_t max_t);

/// Estimate of the second-largest eigenvalue modulus of the walk matrix by
/// power iteration with deflation against the stationary direction.
double second_eigenvalue(const Graph& g, WalkKind kind,
                         std::uint32_t iterations = 300);

/// Spectral upper bound on tau_mix: ln(n^2) / (1 - lambda_2)-style.
std::uint32_t mixing_time_spectral_bound(const Graph& g, WalkKind kind);

/// Lemma 2.3 bound: 8 * (Delta / h)^2 * ln n on the 2Delta-regular walk.
double lemma23_bound(const Graph& g, double edge_expansion);

/// Edge expansion h(G) by exhaustive search — n <= 24 only.
double edge_expansion_bruteforce(const Graph& g);

/// Upper bound on h(G) from sweep cuts over the Fiedler ordering
/// (plus degree-based trivial bounds). Close to exact on the bench
/// families; always a valid upper bound.
double edge_expansion_sweep(const Graph& g, std::uint32_t iterations = 400);

/// Conductance phi(G) upper bound via the same sweep.
double conductance_sweep(const Graph& g, std::uint32_t iterations = 400);

}  // namespace amix
