#pragma once

// BFS-based utilities: distances, connectivity, components, diameter,
// and BFS trees (the broadcast/convergecast backbone of the CONGEST
// primitives and the pipelined MST baseline).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace amix {

inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// Hop distances from src (kUnreachable where disconnected).
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src);

bool is_connected(const Graph& g);

/// Connected-component labels in [0, count).
std::vector<NodeId> component_ids(const Graph& g, NodeId* count = nullptr);

/// max_v dist(src, v); requires connected graph.
std::uint32_t eccentricity(const Graph& g, NodeId src);

/// Exact diameter via all-pairs BFS — O(nm), for tests / small graphs.
std::uint32_t diameter_exact(const Graph& g);

/// Double-sweep lower bound on the diameter (exact on trees); the value
/// the CONGEST algorithms use when they need "some D estimate".
std::uint32_t diameter_double_sweep(const Graph& g, NodeId start = 0);

struct BfsTree {
  NodeId root = kInvalidNode;
  std::vector<NodeId> parent;          // parent[root] == kInvalidNode
  std::vector<EdgeId> parent_edge;     // edge to parent
  std::vector<std::uint32_t> depth;    // depth[root] == 0
  std::uint32_t height = 0;            // max depth
};

/// BFS tree rooted at `root`; requires connected graph.
BfsTree bfs_tree(const Graph& g, NodeId root);

}  // namespace amix
