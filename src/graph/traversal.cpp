#include "graph/traversal.hpp"

#include <algorithm>
#include <queue>

namespace amix {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src) {
  AMIX_CHECK(src < g.num_nodes());
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier{src};
  dist[src] = 0;
  std::uint32_t d = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (const NodeId v : frontier) {
      for (const Arc& a : g.arcs(v)) {
        if (dist[a.to] == kUnreachable) {
          dist[a.to] = d;
          next.push_back(a.to);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::vector<NodeId> component_ids(const Graph& g, NodeId* count) {
  std::vector<NodeId> comp(g.num_nodes(), kInvalidNode);
  NodeId next_id = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (comp[s] != kInvalidNode) continue;
    comp[s] = next_id;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const Arc& a : g.arcs(v)) {
        if (comp[a.to] == kInvalidNode) {
          comp[a.to] = next_id;
          stack.push_back(a.to);
        }
      }
    }
    ++next_id;
  }
  if (count != nullptr) *count = next_id;
  return comp;
}

std::uint32_t eccentricity(const Graph& g, NodeId src) {
  const auto dist = bfs_distances(g, src);
  std::uint32_t ecc = 0;
  for (const std::uint32_t d : dist) {
    AMIX_CHECK_MSG(d != kUnreachable, "eccentricity requires connectivity");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter_exact(const Graph& g) {
  std::uint32_t diam = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    diam = std::max(diam, eccentricity(g, v));
  }
  return diam;
}

std::uint32_t diameter_double_sweep(const Graph& g, NodeId start) {
  AMIX_CHECK(g.num_nodes() > 0);
  auto dist = bfs_distances(g, start);
  NodeId far = start;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    AMIX_CHECK(dist[v] != kUnreachable);
    if (dist[v] > dist[far]) far = v;
  }
  return eccentricity(g, far);
}

BfsTree bfs_tree(const Graph& g, NodeId root) {
  AMIX_CHECK(root < g.num_nodes());
  BfsTree t;
  t.root = root;
  t.parent.assign(g.num_nodes(), kInvalidNode);
  t.parent_edge.assign(g.num_nodes(), kInvalidEdge);
  t.depth.assign(g.num_nodes(), kUnreachable);
  t.depth[root] = 0;
  std::queue<NodeId> q;
  q.push(root);
  NodeId visited = 0;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    ++visited;
    t.height = std::max(t.height, t.depth[v]);
    for (const Arc& a : g.arcs(v)) {
      if (t.depth[a.to] == kUnreachable) {
        t.depth[a.to] = t.depth[v] + 1;
        t.parent[a.to] = v;
        t.parent_edge[a.to] = a.edge;
        q.push(a.to);
      }
    }
  }
  AMIX_CHECK_MSG(visited == g.num_nodes(), "bfs_tree requires connectivity");
  return t;
}

}  // namespace amix
