#include "graph/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace amix {

std::vector<double> stationary(const Graph& g, WalkKind kind) {
  const NodeId n = g.num_nodes();
  std::vector<double> pi(n);
  if (kind == WalkKind::kLazy) {
    const double denom = 2.0 * static_cast<double>(g.num_edges());
    for (NodeId v = 0; v < n; ++v) {
      pi[v] = static_cast<double>(g.degree(v)) / denom;
    }
  } else {
    std::fill(pi.begin(), pi.end(), 1.0 / static_cast<double>(n));
  }
  return pi;
}

namespace {

/// step_distribution with the 2Delta normalizer precomputed: multi-step
/// probes hoist it out of their evolution loops (the lazy kernel never
/// needs it; pass 0).
void step_distribution_impl(const Graph& g, WalkKind kind, double inv2delta,
                            const std::vector<double>& in,
                            std::vector<double>& out) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK(in.size() == n);
  out.assign(n, 0.0);
  if (kind == WalkKind::kLazy) {
    for (NodeId v = 0; v < n; ++v) {
      const double mass = in[v];
      if (mass == 0.0) continue;
      out[v] += 0.5 * mass;
      const double share = 0.5 * mass / static_cast<double>(g.degree(v));
      for (const Arc& a : g.arcs(v)) out[a.to] += share;
    }
  } else {
    for (NodeId v = 0; v < n; ++v) {
      const double mass = in[v];
      if (mass == 0.0) continue;
      const double move = mass * inv2delta;
      out[v] += mass - move * static_cast<double>(g.degree(v));
      for (const Arc& a : g.arcs(v)) out[a.to] += move;
    }
  }
}

double regular_inv2delta(const Graph& g) {
  return 1.0 / (2.0 * static_cast<double>(g.max_degree()));
}

bool mixed(const std::vector<double>& p, const std::vector<double>& pi,
           double inv_n) {
  for (std::size_t v = 0; v < p.size(); ++v) {
    if (std::abs(p[v] - pi[v]) > pi[v] * inv_n) return false;
  }
  return true;
}

/// Mixing time from one start with the stationary distribution and the
/// p/q work vectors supplied by the caller — multi-source probes compute
/// pi once and reuse the buffers across every source.
std::uint32_t mixing_time_with(const Graph& g, WalkKind kind, NodeId src,
                               std::uint32_t max_t,
                               const std::vector<double>& pi, double inv2delta,
                               std::vector<double>& p, std::vector<double>& q) {
  const NodeId n = g.num_nodes();
  const double inv_n = 1.0 / static_cast<double>(n);
  p.assign(n, 0.0);
  p[src] = 1.0;
  for (std::uint32_t t = 0; t <= max_t; ++t) {
    if (mixed(p, pi, inv_n)) return t;
    step_distribution_impl(g, kind, inv2delta, p, q);
    p.swap(q);
  }
  return max_t + 1;
}

}  // namespace

void step_distribution(const Graph& g, WalkKind kind,
                       const std::vector<double>& in,
                       std::vector<double>& out) {
  step_distribution_impl(
      g, kind, kind == WalkKind::kLazy ? 0.0 : regular_inv2delta(g), in, out);
}

std::uint32_t mixing_time_from_start(const Graph& g, WalkKind kind,
                                     NodeId src, std::uint32_t max_t) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK(src < n);
  const auto pi = stationary(g, kind);
  std::vector<double> p(n), q(n);
  return mixing_time_with(g, kind, src, max_t, pi, regular_inv2delta(g), p, q);
}

std::uint32_t mixing_time_exact(const Graph& g, WalkKind kind,
                                std::uint32_t max_t) {
  const NodeId n = g.num_nodes();
  const auto pi = stationary(g, kind);
  const double inv2delta = regular_inv2delta(g);
  std::vector<double> p(n), q(n);
  std::uint32_t worst = 0;
  for (NodeId v = 0; v < n; ++v) {
    worst = std::max(worst,
                     mixing_time_with(g, kind, v, max_t, pi, inv2delta, p, q));
  }
  return worst;
}

std::uint32_t mixing_time_sampled(const Graph& g, WalkKind kind,
                                  std::uint32_t samples, Rng& rng,
                                  std::uint32_t max_t) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK(n >= 1);
  // Always probe the extremal-degree nodes: they are the slowest starts on
  // the irregular families.
  NodeId min_deg_node = 0, max_deg_node = 0;
  for (NodeId v = 1; v < n; ++v) {
    if (g.degree(v) < g.degree(min_deg_node)) min_deg_node = v;
    if (g.degree(v) > g.degree(max_deg_node)) max_deg_node = v;
  }
  std::vector<NodeId> starts{min_deg_node, max_deg_node};
  for (std::uint32_t i = 0; i < samples; ++i) {
    starts.push_back(static_cast<NodeId>(rng.next_below(n)));
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
  const auto pi = stationary(g, kind);
  const double inv2delta = regular_inv2delta(g);
  std::vector<double> p(n), q(n);
  std::uint32_t worst = 0;
  for (const NodeId v : starts) {
    worst = std::max(worst,
                     mixing_time_with(g, kind, v, max_t, pi, inv2delta, p, q));
  }
  return worst;
}

double second_eigenvalue(const Graph& g, WalkKind kind,
                         std::uint32_t iterations) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK(n >= 2);
  const auto pi = stationary(g, kind);
  // The walk matrix P is reversible w.r.t. pi; power-iterate on a vector
  // deflated against the principal left/right pair. We track x with
  // <x, pi-weighted 1> = 0 in the pi inner product, i.e. sum_v pi_v x_v = 0,
  // applying P^T in the pi-weighted sense: here we evolve a *function*
  // h' = P h (right action), for which the principal eigenfunction is the
  // constant; deflation subtracts the pi-weighted mean.
  std::vector<double> x(n), y(n);
  Rng rng(0xabcdef12345ULL);
  for (auto& v : x) v = rng.next_double() - 0.5;
  auto deflate = [&](std::vector<double>& h) {
    double mean = 0.0;
    for (NodeId v = 0; v < n; ++v) mean += pi[v] * h[v];
    for (auto& t : h) t -= mean;
  };
  auto norm = [&](const std::vector<double>& h) {
    double s = 0.0;
    for (NodeId v = 0; v < n; ++v) s += pi[v] * h[v] * h[v];
    return std::sqrt(s);
  };
  // Apply the right action h' (v) = sum_u P(v,u) h(u): for the lazy walk,
  // h'(v) = h(v)/2 + (1/2d(v)) sum_{u ~ v} h(u); for 2Delta-regular,
  // h'(v) = (1 - d(v)/2Delta) h(v) + (1/2Delta) sum_{u ~ v} h(u).
  auto apply = [&](const std::vector<double>& h, std::vector<double>& out) {
    if (kind == WalkKind::kLazy) {
      for (NodeId v = 0; v < n; ++v) {
        double s = 0.0;
        for (const Arc& a : g.arcs(v)) s += h[a.to];
        out[v] = 0.5 * h[v] + 0.5 * s / static_cast<double>(g.degree(v));
      }
    } else {
      const double inv2delta =
          1.0 / (2.0 * static_cast<double>(g.max_degree()));
      for (NodeId v = 0; v < n; ++v) {
        double s = 0.0;
        for (const Arc& a : g.arcs(v)) s += h[a.to];
        out[v] = (1.0 - static_cast<double>(g.degree(v)) * inv2delta) * h[v] +
                 inv2delta * s;
      }
    }
  };
  deflate(x);
  double nx = norm(x);
  AMIX_CHECK(nx > 0);
  for (auto& t : x) t /= nx;
  double lambda = 0.0;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    apply(x, y);
    deflate(y);
    const double ny = norm(y);
    if (ny <= 1e-300) return 0.0;
    lambda = ny;  // Rayleigh-style estimate since ||x||_pi = 1
    for (NodeId v = 0; v < n; ++v) x[v] = y[v] / ny;
  }
  return lambda;
}

std::uint32_t mixing_time_spectral_bound(const Graph& g, WalkKind kind) {
  const double lambda = second_eigenvalue(g, kind);
  const double gap = 1.0 - lambda;
  AMIX_CHECK(gap > 0);
  const double n = static_cast<double>(g.num_nodes());
  // |P^t(u) - pi(u)| <= lambda^t / min_pi; need <= pi(u)/n, so
  // t >= ln(n / (pi_min^2)) / ln(1/lambda)-ish. Use the standard safe form.
  const auto pi = stationary(g, kind);
  const double pi_min = *std::min_element(pi.begin(), pi.end());
  const double t = std::log(n / (pi_min * pi_min)) / gap;
  return static_cast<std::uint32_t>(std::ceil(t));
}

double lemma23_bound(const Graph& g, double edge_expansion) {
  AMIX_CHECK(edge_expansion > 0);
  const double delta = static_cast<double>(g.max_degree());
  const double n = static_cast<double>(g.num_nodes());
  return 8.0 * (delta / edge_expansion) * (delta / edge_expansion) *
         std::log(n);
}

double edge_expansion_bruteforce(const Graph& g) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK_MSG(n <= 24, "bruteforce edge expansion limited to n <= 24");
  AMIX_CHECK(n >= 2);
  double best = std::numeric_limits<double>::infinity();
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 1; mask < limit - 1; ++mask) {
    const int size = __builtin_popcount(mask);
    if (size > static_cast<int>(n) / 2) continue;
    std::uint64_t cut = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const bool a = (mask >> g.edge_u(e)) & 1u;
      const bool b = (mask >> g.edge_v(e)) & 1u;
      if (a != b) ++cut;
    }
    best = std::min(best, static_cast<double>(cut) / size);
  }
  return best;
}

namespace {

/// Fiedler-style ordering: second eigenvector of the lazy walk's right
/// action, computed by deflated power iteration on (I+P)/2 to avoid
/// oscillation.
std::vector<double> fiedler_like_vector(const Graph& g,
                                        std::uint32_t iterations) {
  const NodeId n = g.num_nodes();
  const auto pi = stationary(g, WalkKind::kLazy);
  std::vector<double> x(n), y(n);
  Rng rng(0x5eedf1ed1e5ULL);
  for (auto& v : x) v = rng.next_double() - 0.5;
  auto deflate = [&](std::vector<double>& h) {
    double mean = 0.0;
    for (NodeId v = 0; v < n; ++v) mean += pi[v] * h[v];
    for (auto& t : h) t -= mean;
  };
  for (std::uint32_t it = 0; it < iterations; ++it) {
    for (NodeId v = 0; v < n; ++v) {
      double s = 0.0;
      for (const Arc& a : g.arcs(v)) s += x[a.to];
      y[v] = 0.5 * x[v] + 0.5 * s / static_cast<double>(g.degree(v));
    }
    deflate(y);
    double nrm = 0.0;
    for (const double t : y) nrm += t * t;
    nrm = std::sqrt(nrm);
    if (nrm <= 1e-300) break;
    for (NodeId v = 0; v < n; ++v) x[v] = y[v] / nrm;
  }
  return x;
}

}  // namespace

double edge_expansion_sweep(const Graph& g, std::uint32_t iterations) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK(n >= 2);
  const auto f = fiedler_like_vector(g, iterations);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&f](NodeId a, NodeId b) { return f[a] < f[b]; });
  // Sweep: S = first k nodes in Fiedler order; maintain crossing count.
  std::vector<bool> in_s(n, false);
  std::uint64_t cut = 0;
  double best = std::numeric_limits<double>::infinity();
  for (NodeId k = 0; k + 1 < n; ++k) {
    const NodeId v = order[k];
    for (const Arc& a : g.arcs(v)) {
      cut += in_s[a.to] ? static_cast<std::uint64_t>(-1) : 1;
    }
    in_s[v] = true;
    const std::uint32_t size = std::min<std::uint32_t>(k + 1, n - (k + 1));
    best = std::min(best, static_cast<double>(cut) / size);
  }
  // The singleton min-degree cut is always available.
  std::uint32_t min_deg = g.degree(0);
  for (NodeId v = 1; v < n; ++v) min_deg = std::min(min_deg, g.degree(v));
  return std::min(best, static_cast<double>(min_deg));
}

double conductance_sweep(const Graph& g, std::uint32_t iterations) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK(n >= 2);
  const auto f = fiedler_like_vector(g, iterations);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&f](NodeId a, NodeId b) { return f[a] < f[b]; });
  std::vector<bool> in_s(n, false);
  std::uint64_t cut = 0, vol = 0;
  const std::uint64_t total_vol = g.num_arcs();
  double best = std::numeric_limits<double>::infinity();
  for (NodeId k = 0; k + 1 < n; ++k) {
    const NodeId v = order[k];
    for (const Arc& a : g.arcs(v)) {
      cut += in_s[a.to] ? static_cast<std::uint64_t>(-1) : 1;
    }
    in_s[v] = true;
    vol += g.degree(v);
    const std::uint64_t small_vol = std::min(vol, total_vol - vol);
    if (small_vol > 0) {
      best = std::min(best, static_cast<double>(cut) /
                                static_cast<double>(small_vol));
    }
  }
  return best;
}

}  // namespace amix
