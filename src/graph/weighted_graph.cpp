#include "graph/weighted_graph.hpp"

namespace amix {

Weights distinct_random_weights(const Graph& g, Rng& rng) {
  std::vector<Weight> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) w[e] = e + 1;
  shuffle(w, rng);
  // Spread the values out so sums are informative but still < 2^53 total.
  for (auto& x : w) x *= 17;
  return Weights(g, std::move(w));
}

Weights clustered_weights(const Graph& g, Rng& rng, std::uint32_t clusters) {
  AMIX_CHECK(clusters >= 1);
  // Assign each node a random cluster; intra-cluster edges are cheap,
  // inter-cluster edges expensive. Distinctness via unique low-order bits.
  std::vector<std::uint32_t> cluster(g.num_nodes());
  for (auto& c : cluster) {
    c = static_cast<std::uint32_t>(rng.next_below(clusters));
  }
  std::vector<Weight> base(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const bool cross = cluster[g.edge_u(e)] != cluster[g.edge_v(e)];
    base[e] = cross ? 1'000'000 : 1'000;
  }
  std::vector<Weight> tiebreak(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) tiebreak[e] = e;
  shuffle(tiebreak, rng);
  std::vector<Weight> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    w[e] = base[e] * g.num_edges() + tiebreak[e];
  }
  return Weights(g, std::move(w));
}

}  // namespace amix
