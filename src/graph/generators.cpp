#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "graph/traversal.hpp"

namespace amix::gen {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

std::uint64_t edge_key(NodeId a, NodeId b) {
  const NodeId u = std::min(a, b);
  const NodeId v = std::max(a, b);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Try to turn a multigraph edge multiset into a simple graph by random
/// "switch" moves (swap partners of two edges). Returns true on success.
bool repair_to_simple(EdgeList& edges, Rng& rng, int max_passes = 200) {
  for (int pass = 0; pass < max_passes; ++pass) {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(edges.size() * 2);
    std::vector<std::size_t> bad;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const auto [a, b] = edges[i];
      if (a == b || !seen.insert(edge_key(a, b)).second) bad.push_back(i);
    }
    if (bad.empty()) return true;
    for (const std::size_t i : bad) {
      // Swap one endpoint of edges[i] with a random other edge.
      const std::size_t j = rng.next_below(edges.size());
      if (i == j) continue;
      std::swap(edges[i].second, edges[j].second);
    }
  }
  return false;
}

/// Geometric skip walk over `total` Bernoulli(p) trials, 0 < p < 1:
/// calls emit(idx) for each selected index, strictly increasing. One
/// rng.next_double() per SELECTED index — O(nnz), not O(total).
template <typename Emit>
void skip_sample(std::uint64_t total, double p, Rng& rng, Emit&& emit) {
  const double log1mp = std::log1p(-p);
  std::uint64_t idx = 0;
  while (true) {
    const double r = rng.next_double();  // uniform [0, 1)
    // Geometric gap: #trials skipped before the next hit = floor(ln(1-r)/ln(1-p)).
    const double skip = std::floor(std::log1p(-r) / log1mp);
    idx += static_cast<std::uint64_t>(std::max(0.0, skip)) + 1;
    if (idx > total) break;
    emit(idx - 1);
  }
}

/// Decode pair index k of the upper triangle over `n` nodes into (u, v),
/// u < v: row-major over rows u with lengths n-1-u.
std::pair<std::uint64_t, std::uint64_t> decode_tri_pair(std::uint64_t n,
                                                        std::uint64_t k) {
  // Solve for u: k - u*n + u*(u+1)/2 in [0, n-1-u).
  const double nn = static_cast<double>(n);
  auto u = static_cast<std::uint64_t>(
      std::floor(nn - 0.5 - std::sqrt((nn - 0.5) * (nn - 0.5) -
                                      2.0 * static_cast<double>(k))));
  // Guard against floating-point boundary error.
  auto row_start = [&](std::uint64_t uu) { return uu * n - uu * (uu + 1) / 2; };
  while (u > 0 && row_start(u) > k) --u;
  while (row_start(u + 1) <= k) ++u;
  return {u, u + 1 + (k - row_start(u))};
}

/// Append one G(n, p) sample to `edges` (shared by gnp / connected_gnp so
/// the rejection loop can reuse one buffer). Draw-for-draw identical to
/// the historical gnp sampler: one next_double per selected edge (kSkip)
/// or one next_bool per pair in (u, v) row-major order (kExact).
void sample_gnp_edges(NodeId n, double p, Rng& rng, SampleMode mode,
                      EdgeList& edges) {
  AMIX_CHECK(p >= 0.0 && p <= 1.0);
  if (p <= 0.0 || n < 2) return;
  if (mode == SampleMode::kExact && p < 1.0) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (rng.next_bool(p)) edges.emplace_back(u, v);
      }
    }
    return;
  }
  if (p >= 1.0) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
    }
    return;
  }
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  skip_sample(total, p, rng, [&](std::uint64_t k) {
    const auto [u, v] = decode_tri_pair(n, k);
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  });
}

/// Union-find connectivity of an edge list over n nodes — O(m alpha) on
/// the flat sample, no CSR build, no BFS queue. `parent` is caller-owned
/// scratch so the rejection loops allocate nothing per attempt.
bool edge_list_connected(NodeId n, const EdgeList& edges,
                         std::vector<NodeId>& parent) {
  if (n <= 1) return true;
  parent.resize(n);
  for (NodeId v = 0; v < n; ++v) parent[v] = v;
  auto find = [&](NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];  // path halving
      v = parent[v];
    }
    return v;
  };
  NodeId components = n;
  for (const auto& [a, b] : edges) {
    const NodeId ra = find(a);
    const NodeId rb = find(b);
    if (ra != rb) {
      parent[ra] = rb;
      --components;
    }
  }
  return components == 1;
}

}  // namespace

Graph gnp(NodeId n, double p, Rng& rng, SampleMode mode) {
  EdgeList edges;
  sample_gnp_edges(n, p, rng, mode, edges);
  return Graph::from_edge_stream(n, std::move(edges));
}

Graph connected_gnp(NodeId n, double p, Rng& rng, int max_attempts) {
  EdgeList edges;
  std::vector<NodeId> uf_scratch;
  for (int i = 0; i < max_attempts; ++i) {
    edges.clear();
    sample_gnp_edges(n, p, rng, SampleMode::kSkip, edges);
    if (edge_list_connected(n, edges, uf_scratch)) {
      return Graph::from_edge_stream(n, std::move(edges));
    }
  }
  AMIX_CHECK_MSG(false, "connected_gnp: exceeded attempts (p too small?)");
  return {};
}

std::vector<NodeId> sbm_block_starts(NodeId n, std::uint32_t k) {
  AMIX_CHECK(k >= 1 && k <= n);
  std::vector<NodeId> starts(k + 1, 0);
  const NodeId base = n / k;
  const NodeId extra = n % k;
  for (std::uint32_t b = 0; b < k; ++b) {
    starts[b + 1] = starts[b] + base + (b < extra ? 1 : 0);
  }
  return starts;
}

Graph sbm(NodeId n, std::uint32_t k, double p_in, double p_out, Rng& rng,
          SampleMode mode) {
  AMIX_CHECK(p_in >= 0.0 && p_in <= 1.0 && p_out >= 0.0 && p_out <= 1.0);
  const std::vector<NodeId> starts = sbm_block_starts(n, k);
  EdgeList edges;
  // Expected edge count, reserved up front so the emit path never
  // reallocates mid-block: sum over block pairs of pairs * prob.
  double expected = 0.0;
  for (std::uint32_t a = 0; a < k; ++a) {
    const double sa = starts[a + 1] - starts[a];
    expected += p_in * sa * (sa - 1.0) / 2.0;
    for (std::uint32_t b = a + 1; b < k; ++b) {
      expected += p_out * sa * static_cast<double>(starts[b + 1] - starts[b]);
    }
  }
  edges.reserve(static_cast<std::size_t>(expected * 1.05) + 64);

  // Block-pair sweep, fixed (a, a), (a, a+1), ..., (a, k-1) order so a
  // seed replays to the same graph in either mode. Within-block pairs use
  // the triangular decode; cross-block pairs decode row-major over the
  // s_a x s_b grid.
  for (std::uint32_t a = 0; a < k; ++a) {
    const NodeId base_a = starts[a];
    const std::uint64_t sa = starts[a + 1] - starts[a];
    if (sa >= 2 && p_in > 0.0) {
      const std::uint64_t total = sa * (sa - 1) / 2;
      if (mode == SampleMode::kExact && p_in < 1.0) {
        for (std::uint64_t u = 0; u < sa; ++u) {
          for (std::uint64_t v = u + 1; v < sa; ++v) {
            if (rng.next_bool(p_in)) {
              edges.emplace_back(base_a + u, base_a + v);
            }
          }
        }
      } else if (p_in >= 1.0) {
        for (std::uint64_t u = 0; u < sa; ++u) {
          for (std::uint64_t v = u + 1; v < sa; ++v) {
            edges.emplace_back(base_a + u, base_a + v);
          }
        }
      } else {
        skip_sample(total, p_in, rng, [&](std::uint64_t idx) {
          const auto [u, v] = decode_tri_pair(sa, idx);
          edges.emplace_back(static_cast<NodeId>(base_a + u),
                             static_cast<NodeId>(base_a + v));
        });
      }
    }
    for (std::uint32_t b = a + 1; b < k; ++b) {
      if (p_out <= 0.0) continue;
      const NodeId base_b = starts[b];
      const std::uint64_t sb = starts[b + 1] - starts[b];
      if (sb == 0 || sa == 0) continue;
      if (mode == SampleMode::kExact && p_out < 1.0) {
        for (std::uint64_t u = 0; u < sa; ++u) {
          for (std::uint64_t v = 0; v < sb; ++v) {
            if (rng.next_bool(p_out)) {
              edges.emplace_back(base_a + u, base_b + v);
            }
          }
        }
      } else if (p_out >= 1.0) {
        for (std::uint64_t u = 0; u < sa; ++u) {
          for (std::uint64_t v = 0; v < sb; ++v) {
            edges.emplace_back(base_a + u, base_b + v);
          }
        }
      } else {
        skip_sample(sa * sb, p_out, rng, [&](std::uint64_t idx) {
          edges.emplace_back(static_cast<NodeId>(base_a + idx / sb),
                             static_cast<NodeId>(base_b + idx % sb));
        });
      }
    }
  }
  return Graph::from_edge_stream(n, std::move(edges));
}

Graph random_regular(NodeId n, std::uint32_t d, Rng& rng) {
  AMIX_CHECK(d < n);
  AMIX_CHECK_MSG((static_cast<std::uint64_t>(n) * d) % 2 == 0,
                 "n*d must be even");
  for (int attempt = 0; attempt < 64; ++attempt) {
    // Configuration model: shuffle stubs, pair consecutive.
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    shuffle(stubs, rng);
    EdgeList edges;
    edges.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      edges.emplace_back(stubs[i], stubs[i + 1]);
    }
    if (!repair_to_simple(edges, rng)) continue;
    Graph g = Graph::from_edges(n, edges);
    if (d >= 2 && !is_connected(g)) continue;
    return g;
  }
  AMIX_CHECK_MSG(false, "random_regular: exceeded attempts");
  return {};
}

Graph matching_expander(NodeId n, std::uint32_t d, Rng& rng) {
  AMIX_CHECK_MSG(n % 2 == 0, "matching_expander needs even n");
  AMIX_CHECK(d >= 1 && d < n);
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::unordered_set<std::uint64_t> seen;
    EdgeList edges;
    bool ok = true;
    for (std::uint32_t matching = 0; matching < d && ok; ++matching) {
      bool placed = false;
      for (int retry = 0; retry < 64 && !placed; ++retry) {
        std::vector<NodeId> perm(n);
        for (NodeId v = 0; v < n; ++v) perm[v] = v;
        shuffle(perm, rng);
        std::vector<std::pair<NodeId, NodeId>> medges;
        bool clash = false;
        for (NodeId i = 0; i < n; i += 2) {
          if (seen.count(edge_key(perm[i], perm[i + 1])) != 0) {
            clash = true;
            break;
          }
          medges.emplace_back(perm[i], perm[i + 1]);
        }
        if (clash) continue;
        for (const auto& e : medges) {
          seen.insert(edge_key(e.first, e.second));
          edges.push_back(e);
        }
        placed = true;
      }
      ok = placed;
    }
    if (!ok) continue;
    Graph g = Graph::from_edges(n, edges);
    if (d >= 2 && !is_connected(g)) continue;
    if (d == 1) return g;  // a single matching is never connected for n > 2
    return g;
  }
  AMIX_CHECK_MSG(false, "matching_expander: exceeded attempts");
  return {};
}

Graph ring(NodeId n) {
  AMIX_CHECK(n >= 3);
  EdgeList edges;
  edges.reserve(n);
  for (NodeId v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return Graph::from_edges(n, edges);
}

Graph path(NodeId n) {
  AMIX_CHECK(n >= 1);
  EdgeList edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::from_edges(n, edges);
}

Graph complete(NodeId n) {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

Graph star(NodeId n) {
  AMIX_CHECK(n >= 2);
  EdgeList edges;
  for (NodeId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph::from_edges(n, edges);
}

Graph torus2d(NodeId side) {
  AMIX_CHECK(side >= 3);
  const NodeId n = side * side;
  auto id = [side](NodeId r, NodeId c) { return r * side + c; };
  EdgeList edges;
  for (NodeId r = 0; r < side; ++r) {
    for (NodeId c = 0; c < side; ++c) {
      edges.emplace_back(id(r, c), id(r, (c + 1) % side));
      edges.emplace_back(id(r, c), id((r + 1) % side, c));
    }
  }
  return Graph::from_edges(n, edges);
}

Graph grid2d(NodeId rows, NodeId cols) {
  AMIX_CHECK(rows >= 1 && cols >= 1);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  EdgeList edges;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph hypercube(std::uint32_t dim) {
  AMIX_CHECK(dim >= 1 && dim < 31);
  const NodeId n = NodeId{1} << dim;
  EdgeList edges;
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t b = 0; b < dim; ++b) {
      const NodeId w = v ^ (NodeId{1} << b);
      if (v < w) edges.emplace_back(v, w);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph barbell(NodeId n) {
  AMIX_CHECK(n >= 6);
  const NodeId half = n / 2;
  EdgeList edges;
  for (NodeId u = 0; u < half; ++u) {
    for (NodeId v = u + 1; v < half; ++v) edges.emplace_back(u, v);
  }
  for (NodeId u = half; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  edges.emplace_back(half - 1, half);
  return Graph::from_edges(n, edges);
}

Graph watts_strogatz(NodeId n, std::uint32_t k, double beta, Rng& rng) {
  AMIX_CHECK(k >= 1 && 2 * k < n);
  std::set<std::uint64_t> seen;
  EdgeList edges;
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= k; ++j) {
      NodeId w = (v + j) % n;
      if (rng.next_bool(beta)) {
        // Rewire to a uniform non-neighbor.
        for (int retry = 0; retry < 64; ++retry) {
          const auto cand = static_cast<NodeId>(rng.next_below(n));
          if (cand != v && seen.count(edge_key(v, cand)) == 0) {
            w = cand;
            break;
          }
        }
      }
      if (seen.insert(edge_key(v, w)).second) edges.emplace_back(v, w);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph barabasi_albert(NodeId n, std::uint32_t attach, Rng& rng) {
  AMIX_CHECK(attach >= 1 && n > attach);
  EdgeList edges;
  std::vector<NodeId> targets;  // degree-weighted pool
  // Seed: star on attach+1 nodes.
  for (NodeId v = 1; v <= attach; ++v) {
    edges.emplace_back(0, v);
    targets.push_back(0);
    targets.push_back(v);
  }
  std::unordered_set<NodeId> chosen;
  for (NodeId v = attach + 1; v < n; ++v) {
    chosen.clear();
    while (chosen.size() < attach) {
      chosen.insert(targets[rng.next_below(targets.size())]);
    }
    for (const NodeId w : chosen) {
      edges.emplace_back(v, w);
      targets.push_back(v);
      targets.push_back(w);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph degree_preserving_rewire(const Graph& g, std::uint32_t swaps,
                               Rng& rng) {
  const bool was_connected = is_connected(g);
  for (int attempt = 0; attempt < 32; ++attempt) {
    EdgeList edges;
    edges.reserve(g.num_edges());
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(g.num_edges() * 2);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      edges.emplace_back(g.edge_u(e), g.edge_v(e));
      seen.insert(edge_key(g.edge_u(e), g.edge_v(e)));
    }
    std::uint32_t done = 0;
    for (std::uint32_t tries = 0; done < swaps && tries < 20 * swaps + 100;
         ++tries) {
      const std::size_t i = rng.next_below(edges.size());
      const std::size_t j = rng.next_below(edges.size());
      if (i == j) continue;
      auto [a, b] = edges[i];
      auto [c, d] = edges[j];
      if (rng.next_bool()) std::swap(c, d);
      // Proposed: (a,d) and (c,b).
      if (a == d || c == b) continue;
      if (seen.count(edge_key(a, d)) != 0 || seen.count(edge_key(c, b)) != 0) {
        continue;
      }
      seen.erase(edge_key(a, b));
      seen.erase(edge_key(c, d));
      seen.insert(edge_key(a, d));
      seen.insert(edge_key(c, b));
      edges[i] = {a, d};
      edges[j] = {c, b};
      ++done;
    }
    Graph out = Graph::from_edges(g.num_nodes(), edges);
    if (!was_connected || is_connected(out)) return out;
  }
  AMIX_CHECK_MSG(false, "degree_preserving_rewire: could not stay connected");
  return {};
}

Graph lowerbound_skeleton(std::uint32_t paths, std::uint32_t plen) {
  AMIX_CHECK(paths >= 1 && plen >= 2);
  // Node layout: paths*plen path nodes, then the binary tree over columns.
  auto pnode = [plen](std::uint32_t i, std::uint32_t j) {
    return static_cast<NodeId>(i * plen + j);
  };
  const NodeId tree_base = paths * plen;
  // Balanced binary tree with plen leaves: heap-indexed, nodes 1..2*plen-1.
  const NodeId tree_nodes = 2 * plen - 1;
  EdgeList edges;
  for (std::uint32_t i = 0; i < paths; ++i) {
    for (std::uint32_t j = 0; j + 1 < plen; ++j) {
      edges.emplace_back(pnode(i, j), pnode(i, j + 1));
    }
  }
  auto tnode = [tree_base](std::uint32_t heap) {
    return static_cast<NodeId>(tree_base + heap - 1);  // heap index from 1
  };
  for (std::uint32_t h = 2; h <= tree_nodes; ++h) {
    edges.emplace_back(tnode(h), tnode(h / 2));
  }
  // Leaves are heap indices plen..2*plen-1; leaf j attaches to column j of
  // every path.
  for (std::uint32_t j = 0; j < plen; ++j) {
    for (std::uint32_t i = 0; i < paths; ++i) {
      edges.emplace_back(tnode(plen + j), pnode(i, j));
    }
  }
  return Graph::from_edges(tree_base + tree_nodes, edges);
}

}  // namespace amix::gen
