#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace amix {

void write_graph(std::ostream& os, const Graph& g, const Weights* w) {
  os << "graph " << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    os << "e " << g.edge_u(e) << ' ' << g.edge_v(e);
    if (w != nullptr) os << ' ' << (*w)[e];
    os << '\n';
  }
}

GraphFile read_graph(std::istream& is) {
  std::string line;
  NodeId n = 0;
  EdgeId m = 0;
  bool header_seen = false;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<Weight> weights;
  bool weights_seen = false;

  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (tag == "graph") {
      AMIX_CHECK_MSG(!header_seen, "duplicate graph header");
      AMIX_CHECK_MSG(static_cast<bool>(ss >> n >> m), "bad graph header");
      header_seen = true;
      edges.reserve(m);
    } else if (tag == "e") {
      AMIX_CHECK_MSG(header_seen, "edge before graph header");
      NodeId u = 0, v = 0;
      AMIX_CHECK_MSG(static_cast<bool>(ss >> u >> v), "bad edge line");
      edges.emplace_back(u, v);
      Weight w = 0;
      if (ss >> w) {
        AMIX_CHECK_MSG(weights.size() == edges.size() - 1,
                       "weights must be all-or-none");
        weights.push_back(w);
        weights_seen = true;
      } else {
        AMIX_CHECK_MSG(!weights_seen, "weights must be all-or-none");
      }
    } else {
      AMIX_CHECK_MSG(false, "unknown line tag in graph file");
    }
  }
  AMIX_CHECK_MSG(header_seen, "missing graph header");
  AMIX_CHECK_MSG(edges.size() == m, "edge count mismatch");

  GraphFile out;
  out.graph = Graph::from_edges(n, edges);
  if (weights_seen) {
    out.weights = Weights(out.graph, std::move(weights));
  }
  return out;
}

void save_graph(const std::string& path, const Graph& g, const Weights* w) {
  std::ofstream os(path);
  AMIX_CHECK_MSG(os.good(), "cannot open file for writing");
  write_graph(os, g, w);
  AMIX_CHECK_MSG(os.good(), "write failed");
}

GraphFile load_graph(const std::string& path) {
  std::ifstream is(path);
  AMIX_CHECK_MSG(is.good(), "cannot open file for reading");
  return read_graph(is);
}

}  // namespace amix
