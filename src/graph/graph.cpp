#include "graph/graph.hpp"

#include <algorithm>
#include <unordered_set>

namespace amix {

Graph Graph::from_edges(NodeId n,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  Graph g;
  g.n_ = n;
  g.m_ = static_cast<EdgeId>(edges.size());
  g.offsets_.assign(n + 1, 0);
  g.edge_endpoints_.reserve(edges.size());

  // Validate and normalize endpoints; count degrees.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges.size() * 2);
  for (const auto& [a, b] : edges) {
    AMIX_CHECK_MSG(a < n && b < n, "edge endpoint out of range");
    AMIX_CHECK_MSG(a != b, "self-loops not supported in the base graph");
    const NodeId u = std::min(a, b);
    const NodeId v = std::max(a, b);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    AMIX_CHECK_MSG(seen.insert(key).second, "parallel edge in edge list");
    g.edge_endpoints_.emplace_back(u, v);
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (NodeId v = 0; v < n; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
    g.max_degree_ = std::max(g.max_degree_, g.offsets_[v + 1] - g.offsets_[v]);
  }

  g.adj_.resize(2ULL * g.m_);
  g.edge_ports_.resize(g.m_);
  std::vector<std::uint32_t> fill(n, 0);
  for (EdgeId e = 0; e < g.m_; ++e) {
    const auto [u, v] = g.edge_endpoints_[e];
    const std::uint32_t pu = fill[u]++;
    const std::uint32_t pv = fill[v]++;
    g.adj_[g.offsets_[u] + pu] = Arc{v, e};
    g.adj_[g.offsets_[v] + pv] = Arc{u, e};
    g.edge_ports_[e] = {pu, pv};
  }
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_ || u == v) return false;
  const NodeId probe = degree(u) <= degree(v) ? u : v;
  const NodeId target = probe == u ? v : u;
  for (const Arc& a : arcs(probe)) {
    if (a.to == target) return true;
  }
  return false;
}

}  // namespace amix
