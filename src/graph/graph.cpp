#include "graph/graph.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace amix {
namespace {

std::uint64_t norm_key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
}

}  // namespace

void Graph::build_csr_from_endpoints() {
  const NodeId n = n_;
  offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edge_endpoints_) {
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  max_degree_ = 0;
  for (NodeId v = 0; v < n; ++v) {
    offsets_[v + 1] += offsets_[v];
    max_degree_ = std::max(max_degree_, offsets_[v + 1] - offsets_[v]);
  }

  adj_.resize(2ULL * m_);
  edge_ports_.resize(m_);
  std::vector<std::uint32_t> fill(n, 0);
  for (EdgeId e = 0; e < m_; ++e) {
    const auto [u, v] = edge_endpoints_[e];
    const std::uint32_t pu = fill[u]++;
    const std::uint32_t pv = fill[v]++;
    adj_[offsets_[u] + pu] = Arc{v, e};
    adj_[offsets_[v] + pv] = Arc{u, e};
    edge_ports_[e] = {pu, pv};
  }
}

Graph Graph::from_edges(NodeId n,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  Graph g;
  g.n_ = n;
  g.m_ = static_cast<EdgeId>(edges.size());
  g.edge_endpoints_.reserve(edges.size());

  // Validate and normalize endpoints.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges.size() * 2);
  for (const auto& [a, b] : edges) {
    AMIX_CHECK_MSG(a < n && b < n, "edge endpoint out of range");
    AMIX_CHECK_MSG(a != b, "self-loops not supported in the base graph");
    const NodeId u = std::min(a, b);
    const NodeId v = std::max(a, b);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    AMIX_CHECK_MSG(seen.insert(key).second, "parallel edge in edge list");
    g.edge_endpoints_.emplace_back(u, v);
  }
  g.build_csr_from_endpoints();
  return g;
}

Graph Graph::from_edge_stream(NodeId n,
                              std::vector<std::pair<NodeId, NodeId>>&& edges) {
  Graph g;
  g.n_ = n;
  g.m_ = static_cast<EdgeId>(edges.size());
  // Normalize in place and adopt the list as the endpoint array — the
  // only per-edge state beyond the CSR arrays themselves. No hash-set
  // duplicate probe (the caller's contract); range/self-loop violations
  // still abort.
  for (auto& [a, b] : edges) {
    AMIX_CHECK_MSG(a < n && b < n, "edge endpoint out of range");
    AMIX_CHECK_MSG(a != b, "self-loops not supported in the base graph");
    if (a > b) std::swap(a, b);
  }
  g.edge_endpoints_ = std::move(edges);
  g.build_csr_from_endpoints();
  return g;
}

Graph Graph::apply_delta(const GraphDelta& delta) const {
  std::vector<std::pair<NodeId, NodeId>> edges = edge_endpoints_;
  std::vector<char> alive(edges.size(), 1);
  std::unordered_map<std::uint64_t, std::size_t> index;  // key -> position
  index.reserve(2 * edges.size() + delta.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    index.emplace(norm_key(edges[i].first, edges[i].second), i);
  }
  for (const EdgeDelta& op : delta) {
    if (op.u >= n_ || op.v >= n_ || op.u == op.v) continue;
    const std::uint64_t key = norm_key(op.u, op.v);
    const auto it = index.find(key);
    if (op.insert) {
      if (it != index.end()) continue;
      index.emplace(key, edges.size());
      edges.emplace_back(std::min(op.u, op.v), std::max(op.u, op.v));
      alive.push_back(1);
    } else {
      if (it == index.end()) continue;
      alive[it->second] = 0;
      index.erase(it);
    }
  }
  std::vector<std::pair<NodeId, NodeId>> kept;
  kept.reserve(index.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (alive[i]) kept.push_back(edges[i]);
  }
  return from_edges(n_, kept);
}

GraphDelta delta_between(const Graph& from, const Graph& to) {
  AMIX_CHECK(from.num_nodes() == to.num_nodes());
  std::unordered_set<std::uint64_t> in_to;
  in_to.reserve(2 * to.num_edges());
  for (const auto& [u, v] : to.edges()) in_to.insert(norm_key(u, v));
  std::unordered_set<std::uint64_t> in_from;
  in_from.reserve(2 * from.num_edges());
  GraphDelta delta;
  for (const auto& [u, v] : from.edges()) {
    in_from.insert(norm_key(u, v));
    if (!in_to.contains(norm_key(u, v))) {
      delta.push_back(EdgeDelta{u, v, /*insert=*/false});
    }
  }
  for (const auto& [u, v] : to.edges()) {
    if (!in_from.contains(norm_key(u, v))) {
      delta.push_back(EdgeDelta{u, v, /*insert=*/true});
    }
  }
  return delta;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_ || u == v) return false;
  const NodeId probe = degree(u) <= degree(v) ? u : v;
  const NodeId target = probe == u ? v : u;
  for (const Arc& a : arcs(probe)) {
    if (a.to == target) return true;
  }
  return false;
}

}  // namespace amix
