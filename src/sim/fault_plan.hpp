#pragma once

// Fault plans: pluggable adversaries for the simulation harness.
//
// A FaultPlan decides, deterministically given its seed, what goes wrong
// during a run. Faults act at three layers:
//
//   * token layer   — a token crossing an arc costs extra slots on that
//                     arc (drop-with-retransmit, duplication). The token
//                     still arrives; correctness is preserved by
//                     construction and only the schedule cost grows, so
//                     Las-Vegas algorithms must stay exactly correct.
//   * kernel layer  — a SyncNetwork message is dropped outright, or the
//                     per-round handler invocation order is permuted
//                     adversarially. Dropped kernel messages CAN change
//                     behaviour: protocols are certified either
//                     drop-tolerant (still correct) or fail-loud (a guard
//                     fires / the test observes non-delivery) — never
//                     silently wrong.
//   * scenario layer — between harness epochs the base graph churns
//                     (degree-preserving rewires), and the algorithm must
//                     hold on the rewired topology.
//
// Determinism contract: the harness calls reset(run_seed) before every
// (re)play; a plan must derive all of its randomness from its own seed
// and that run seed, so identical seeds replay identical fault patterns.
// Plans draw from their OWN Rng stream — they never consume algorithm
// randomness, which is what makes "same seed, faults on vs. off" runs
// token-for-token comparable.

#include <cstdint>
#include <string_view>

#include "congest/instrument.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace amix::sim {

class FaultPlan {
 public:
  virtual ~FaultPlan() = default;

  /// Re-arm the plan for a (re)play of a run with the given seed. All
  /// subsequent fault decisions must be a pure function of the plan's
  /// construction parameters and this seed.
  virtual void reset(std::uint64_t /*run_seed*/) {}

  /// Token layer: extra slots consumed by one token crossing `arc`.
  virtual std::uint32_t extra_arc_slots(const CommGraph& /*g*/,
                                        std::uint64_t /*arc*/) {
    return 0;
  }

  /// Kernel layer: deliver this message? (false = drop; round still paid)
  virtual bool deliver(NodeId /*from*/, NodeId /*to*/,
                       std::uint64_t /*round*/) {
    return true;
  }

  /// Kernel layer: permute the handler invocation order in place.
  virtual void permute_order(std::uint64_t /*round*/,
                             std::span<NodeId> /*order*/) {}

  /// Scenario layer: degree-preserving edge swaps to apply to `g` before
  /// epoch `epoch` (epoch 0 runs on the pristine graph).
  virtual std::uint32_t churn_swaps(std::uint32_t /*epoch*/,
                                    const Graph& /*g*/) const {
    return 0;
  }

  virtual std::string_view name() const = 0;
};

/// The trivial plan: nothing goes wrong (baseline for cost comparisons).
class NoFaults final : public FaultPlan {
 public:
  std::string_view name() const override { return "none"; }
};

/// Every token crossing is independently lost with probability p and
/// retransmitted until it gets through (geometric extra slots, capped);
/// optionally also drops kernel messages with the same probability
/// (kernel drops are NOT retransmitted — the kernel has no link layer).
class MessageDropPlan final : public FaultPlan {
 public:
  explicit MessageDropPlan(double p, std::uint64_t seed = 0xd0d0fau,
                           bool drop_tokens = true, bool drop_kernel = false,
                           std::uint32_t max_retransmits = 64);

  void reset(std::uint64_t run_seed) override;
  std::uint32_t extra_arc_slots(const CommGraph& g,
                                std::uint64_t arc) override;
  bool deliver(NodeId from, NodeId to, std::uint64_t round) override;
  std::string_view name() const override { return "drop"; }

  std::uint64_t tokens_retransmitted() const { return retransmits_; }
  std::uint64_t kernel_dropped() const { return kernel_dropped_; }

 private:
  double p_;
  std::uint64_t seed_;
  bool drop_tokens_;
  bool drop_kernel_;
  std::uint32_t max_retransmits_;
  Rng rng_;
  std::uint64_t retransmits_ = 0;
  std::uint64_t kernel_dropped_ = 0;
};

/// Every token crossing is independently duplicated with probability p:
/// the copy consumes one extra slot on the arc and is discarded at the
/// receiver (classic at-least-once delivery).
class DuplicationPlan final : public FaultPlan {
 public:
  explicit DuplicationPlan(double p, std::uint64_t seed = 0xd4b1ca7eu);

  void reset(std::uint64_t run_seed) override;
  std::uint32_t extra_arc_slots(const CommGraph& g,
                                std::uint64_t arc) override;
  std::string_view name() const override { return "duplicate"; }

  std::uint64_t duplicates() const { return duplicates_; }

 private:
  double p_;
  std::uint64_t seed_;
  Rng rng_;
  std::uint64_t duplicates_ = 0;
};

/// Permutes the SyncNetwork handler invocation order with a fresh seeded
/// shuffle every round. Any observable difference vs. the natural order
/// convicts the algorithm of cross-node state sharing within a round.
class AdversarialOrderPlan final : public FaultPlan {
 public:
  explicit AdversarialOrderPlan(std::uint64_t seed = 0xbadc0ffeeu);

  void reset(std::uint64_t run_seed) override;
  void permute_order(std::uint64_t round, std::span<NodeId> order) override;
  std::string_view name() const override { return "adversarial-order"; }

 private:
  std::uint64_t seed_;
  Rng rng_;
};

/// Scenario-layer churn: before every epoch after the first, rewire
/// `fraction` of the edges with degree-preserving double-edge swaps.
class ChurnPlan final : public FaultPlan {
 public:
  explicit ChurnPlan(double fraction = 0.125) : fraction_(fraction) {}

  std::uint32_t churn_swaps(std::uint32_t epoch,
                            const Graph& g) const override;
  std::string_view name() const override { return "churn"; }

 private:
  double fraction_;
};

/// Applies several plans at once (extra slots add; a delivery survives
/// only if every plan lets it through; order permutations compose).
class CompositeFaultPlan final : public FaultPlan {
 public:
  explicit CompositeFaultPlan(std::vector<FaultPlan*> plans)
      : plans_(std::move(plans)) {}

  void reset(std::uint64_t run_seed) override;
  std::uint32_t extra_arc_slots(const CommGraph& g,
                                std::uint64_t arc) override;
  bool deliver(NodeId from, NodeId to, std::uint64_t round) override;
  void permute_order(std::uint64_t round, std::span<NodeId> order) override;
  std::uint32_t churn_swaps(std::uint32_t epoch,
                            const Graph& g) const override;
  std::string_view name() const override { return "composite"; }

 private:
  std::vector<FaultPlan*> plans_;  // not owned
};

}  // namespace amix::sim
