#include "sim/conformance.hpp"

#include <sstream>

namespace amix::sim {

void ConformanceAuditor::record_move(const CommGraph& g, std::uint64_t arc,
                                     std::uint32_t slots) {
  PerGraph& s = state_[&g];
  if (s.raw.size() < g.num_arcs()) {
    s.raw.resize(g.num_arcs(), 0);
    s.slotted.resize(g.num_arcs(), 0);
  }
  if (s.raw[arc] == 0 && s.slotted[arc] == 0) s.touched.push_back(arc);
  s.raw[arc] += 1;
  s.slotted[arc] += slots;
  s.raw_max = std::max(s.raw_max, s.raw[arc]);
  s.slotted_max = std::max(s.slotted_max, s.slotted[arc]);
  ++report_.moves;
  report_.fault_slots += slots - 1;
}

void ConformanceAuditor::flag(std::uint64_t AuditReport::* counter,
                              const CommGraph& g, std::uint32_t charged,
                              const PerGraph& s, const char* kind) {
  ++(report_.*counter);
  if (report_.first_violation.empty()) {
    std::ostringstream os;
    os << kind << " at audited step " << report_.steps << " on graph("
       << g.num_nodes() << " nodes, round_cost " << g.round_cost()
       << "): charged " << charged << " graph rounds, independent bounds ["
       << s.raw_max << ", " << s.slotted_max << "]";
    report_.first_violation = os.str();
  }
}

void ConformanceAuditor::record_commit(const CommGraph& g,
                                       std::uint32_t charged) {
  PerGraph& s = state_[&g];
  ++report_.steps;
  report_.recomputed_graph_rounds += s.raw_max;
  report_.charged_graph_rounds += charged;
  if (charged < s.raw_max) {
    flag(&AuditReport::under_charges, g, charged, s, "UNDER-charge");
  } else if (charged > s.slotted_max) {
    flag(&AuditReport::over_charges, g, charged, s, "OVER-charge");
  }
  for (const std::uint64_t arc : s.touched) {
    s.raw[arc] = 0;
    s.slotted[arc] = 0;
  }
  s.touched.clear();
  s.raw_max = 0;
  s.slotted_max = 0;
}

}  // namespace amix::sim
