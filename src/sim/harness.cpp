#include "sim/harness.hpp"

#include <optional>
#include <sstream>

#include "congest/instrument.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"

namespace amix::sim {
namespace {

/// Bridges the congest instrumentation seam to (fault plan, auditor):
/// faults decide the extra slots, the auditor sees every move with its
/// final slot count and every commit with its final charge.
class SimInstrument final : public congest::CongestInstrument {
 public:
  SimInstrument(FaultPlan* faults, ConformanceAuditor* auditor)
      : faults_(faults), auditor_(auditor) {}

  std::uint32_t on_token_move(const CommGraph& g, std::uint64_t arc) override {
    const std::uint32_t extra =
        faults_ != nullptr ? faults_->extra_arc_slots(g, arc) : 0;
    if (auditor_ != nullptr) auditor_->record_move(g, arc, 1 + extra);
    return extra;
  }

  void on_step_commit(const CommGraph& g, std::uint32_t charged) override {
    if (auditor_ != nullptr) auditor_->record_commit(g, charged);
  }

  bool on_kernel_deliver(NodeId from, NodeId to,
                         std::uint64_t round) override {
    return faults_ == nullptr || faults_->deliver(from, to, round);
  }

  void on_kernel_round_order(std::uint64_t round,
                             std::span<NodeId> order) override {
    if (faults_ != nullptr) faults_->permute_order(round, order);
  }

 private:
  FaultPlan* faults_;
  ConformanceAuditor* auditor_;
};

}  // namespace

RunRecord SimHarness::play_once(const EpochBody& body, const Graph* g0,
                                std::uint32_t epochs, bool primary) const {
  if (opt_.faults != nullptr) opt_.faults->reset(opt_.seed);
  ConformanceAuditor auditor;
  SimInstrument ins(opt_.faults, opt_.audit ? &auditor : nullptr);

  // Tracing records only the primary play: replays must compare equal to
  // it, and recording them too would double-count every span and metric.
  // The ObsInstrument chains in FRONT of the fault/audit instrument so
  // faults still decide retransmissions and the auditor still sees final
  // slot counts; the recorder just watches. Installing a ScopedRecorder
  // of nullptr during replays also shields them from any ambient recorder.
  obs::TraceRecorder* trace = primary ? opt_.trace : nullptr;
  if (trace != nullptr) trace->clear();
  std::optional<obs::ObsInstrument> obs_ins;
  if (trace != nullptr) obs_ins.emplace(*trace, &ins);
  congest::ScopedInstrument scope(
      obs_ins.has_value() ? static_cast<congest::CongestInstrument*>(&*obs_ins)
                          : &ins);
  obs::ScopedRecorder rec_scope(trace);

  SimRun run(opt_.seed);
  run.exec_ = opt_.exec;
  // Churn randomness is a private stream: the body's rng consumption is
  // identical whether or not the topology churns.
  Rng churn_rng(splitmix64(opt_.seed ^ 0xc0dec0dec0dec0deULL));
  Graph churned;
  const Graph* g = g0;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    run.epoch_ = e;
    if (opt_.faults != nullptr && g->num_nodes() > 0) {
      const std::uint32_t swaps = opt_.faults->churn_swaps(e, *g);
      if (swaps > 0) {
        churned = gen::degree_preserving_rewire(*g, swaps, churn_rng);
        g = &churned;
      }
    }
    body(run, *g);
  }

  RunRecord rec;
  rec.seed = opt_.seed;
  rec.ledger_total = run.ledger_.total();
  rec.phase_totals = run.ledger_.phase_map();
  rec.output_digest = run.digest_.value();
  rec.audit = auditor.report();
  return rec;
}

HarnessResult SimHarness::run(const Body& body) const {
  return run_epochs(Graph{}, 1,
                    [&body](SimRun& run, const Graph&) { body(run); });
}

HarnessResult SimHarness::run_epochs(const Graph& g0, std::uint32_t epochs,
                                     const EpochBody& body) const {
  HarnessResult result;
  result.record = play_once(body, &g0, epochs, /*primary=*/true);
  for (std::uint32_t r = 0; r < opt_.replays; ++r) {
    const RunRecord replay = play_once(body, &g0, epochs, /*primary=*/false);
    const std::string diff = diff_records(result.record, replay);
    if (!diff.empty()) {
      result.deterministic = false;
      std::ostringstream os;
      os << "replay " << (r + 1) << " of seed " << opt_.seed
         << " diverged from the primary run:\n"
         << diff;
      result.mismatch_report = os.str();
      break;
    }
  }
  return result;
}

std::string diff_records(const RunRecord& a, const RunRecord& b) {
  std::ostringstream os;
  if (a.ledger_total != b.ledger_total) {
    os << "  ledger total: " << a.ledger_total << " vs " << b.ledger_total
       << "\n";
  }
  if (a.phase_totals != b.phase_totals) {
    os << "  phase breakdown differs:\n";
    const std::size_t n = std::max(a.phase_totals.size(),
                                   b.phase_totals.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::string pa = i < a.phase_totals.size()
                                 ? a.phase_totals[i].first + "=" +
                                       std::to_string(a.phase_totals[i].second)
                                 : "<absent>";
      const std::string pb = i < b.phase_totals.size()
                                 ? b.phase_totals[i].first + "=" +
                                       std::to_string(b.phase_totals[i].second)
                                 : "<absent>";
      if (pa != pb) os << "    [" << i << "] " << pa << " vs " << pb << "\n";
    }
  }
  if (a.output_digest != b.output_digest) {
    os << "  output digest: " << a.output_digest << " vs " << b.output_digest
       << "\n";
  }
  if (a.audit.charged_graph_rounds != b.audit.charged_graph_rounds ||
      a.audit.recomputed_graph_rounds != b.audit.recomputed_graph_rounds ||
      a.audit.steps != b.audit.steps || a.audit.moves != b.audit.moves) {
    os << "  audit trail: steps " << a.audit.steps << "/" << b.audit.steps
       << ", moves " << a.audit.moves << "/" << b.audit.moves << ", charged "
       << a.audit.charged_graph_rounds << "/" << b.audit.charged_graph_rounds
       << ", recomputed " << a.audit.recomputed_graph_rounds << "/"
       << b.audit.recomputed_graph_rounds << "\n";
  }
  return os.str();
}

}  // namespace amix::sim
