#pragma once

// CONGEST conformance auditing: trust, but recompute.
//
// Every round this library reports ultimately flows through
// TokenTransport::commit_step, which charges the max per-arc load of the
// step. The auditor recomputes that quantity independently — its own
// per-arc tallies, its own touched lists, fed move-by-move through the
// instrumentation seam — and cross-checks every commit:
//
//   * UNDER-charge (charged < max raw crossings on any arc): the ledger
//     claims fewer rounds than any CONGEST schedule could realize. This
//     is a soundness bug; it must never happen.
//   * OVER-charge (charged > max slotted load, i.e. crossings plus fault
//     slots): the schedule's slack is exactly the fault-injected slots,
//     so anything beyond it means rounds are being wasted or
//     double-counted. In a fault-free run slotted == raw and the check
//     degenerates to exact equality with the transport's optimal charge.
//
// Violations are recorded, not aborted on, so tests can verify the
// auditor itself catches deliberately corrupted charges.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "congest/comm_graph.hpp"

namespace amix::sim {

struct AuditReport {
  std::uint64_t steps = 0;          // commits audited
  std::uint64_t moves = 0;          // token crossings observed
  std::uint64_t under_charges = 0;  // soundness violations (must be 0)
  std::uint64_t over_charges = 0;   // waste beyond the fault slack
  std::uint64_t fault_slots = 0;    // extra slots injected by faults
  /// Sum over steps of the independently recomputed raw max load — the
  /// lower bound on graph rounds any schedule needs. Equals the
  /// transport's total_graph_rounds() in a fault-free conforming run.
  std::uint64_t recomputed_graph_rounds = 0;
  /// Sum of the actually charged graph rounds, as reported at commit.
  std::uint64_t charged_graph_rounds = 0;
  std::string first_violation;  // human-readable; empty when ok()

  bool ok() const { return under_charges == 0 && over_charges == 0; }
};

class ConformanceAuditor {
 public:
  /// Observe one token crossing `arc` of `g` consuming `slots` arc slots
  /// (1 clean + fault extras).
  void record_move(const CommGraph& g, std::uint64_t arc, std::uint32_t slots);

  /// Observe a step of `g` committing with `charged` graph rounds; checks
  /// the charge against the independently recomputed bounds and resets
  /// the per-step tallies for `g`.
  void record_commit(const CommGraph& g, std::uint32_t charged);

  void reset() { state_.clear(), report_ = AuditReport{}; }
  const AuditReport& report() const { return report_; }

 private:
  struct PerGraph {
    std::vector<std::uint32_t> raw;      // crossings per arc, this step
    std::vector<std::uint32_t> slotted;  // crossings + fault slots per arc
    std::vector<std::uint64_t> touched;
    std::uint32_t raw_max = 0;
    std::uint32_t slotted_max = 0;
  };

  void flag(std::uint64_t AuditReport::* counter, const CommGraph& g,
            std::uint32_t charged, const PerGraph& s, const char* kind);

  // Keyed by graph identity: each live TokenTransport binds one CommGraph,
  // and the library never interleaves two open steps on the same graph.
  std::unordered_map<const CommGraph*, PerGraph> state_;
  AuditReport report_;
};

}  // namespace amix::sim
