#pragma once

// Seeded random-graph corpus for property-based sweeps.
//
// One seed pins the entire corpus: every family is generated from a
// stream split off the corpus seed, so test sweeps are reproducible
// bit-for-bit and a failure report ("family X, corpus seed S") is enough
// to replay. Families span the mixing-time spectrum the paper cares
// about (expanders, G(n,p), tori, hypercubes, rings, barbells) at sizes
// small enough for CI but large enough to have nontrivial hierarchies.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace amix::sim {

struct Scenario {
  std::string name;    // family + size, e.g. "regular-64x6"
  Graph graph;
  std::uint64_t seed;  // per-scenario seed, derived from the corpus seed
};

/// The standard corpus: one connected instance per family. `scale` >= 1
/// multiplies node counts for heavier (bench-style) sweeps.
std::vector<Scenario> seeded_corpus(std::uint64_t corpus_seed,
                                    std::uint32_t scale = 1);

/// A digest of a graph's topology (node count + sorted edge list folded
/// through splitmix64) — used to assert corpus determinism.
std::uint64_t graph_digest(const Graph& g);

}  // namespace amix::sim
