#pragma once

// SimHarness: deterministic simulation runs with fault injection and
// conformance auditing.
//
// A harness run executes a user-supplied scenario body under a controlled
// environment: a seeded Rng, a fresh RoundLedger, an output digest sink,
// and (optionally) an installed fault plan plus a conformance auditor
// wired into the CONGEST substrates through the instrumentation seam.
//
// Determinism contract: the body must derive ALL of its randomness from
// SimRun::rng() (or from constants). The harness replays the body
// `replays` extra times with identical seeds and asserts the records are
// bit-identical — ledger total, per-phase breakdown, and output digest.
// On mismatch it produces a replay report that names the first diverging
// quantity, which is how hidden std::rand / unordered-container /
// address-dependent nondeterminism is caught in CI rather than in a
// flaky bench three months later.
//
// Churn: run_epochs drives the body once per epoch, rewiring the base
// graph between epochs as dictated by the fault plan (scenario-layer
// churn). The rewiring randomness comes from the harness seed, so
// churned runs replay too.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "congest/round_ledger.hpp"
#include "graph/graph.hpp"
#include "sim/conformance.hpp"
#include "sim/fault_plan.hpp"
#include "util/ordered_map.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace amix::obs {
class TraceRecorder;  // obs/trace.hpp; forward to keep sim headers light
}

namespace amix::sim {

/// Order-sensitive output digest (splitmix64 chaining).
class Digest {
 public:
  void fold(std::uint64_t word) { h_ = splitmix64(h_ ^ word); ++words_; }
  template <typename Range>
  void fold_range(const Range& r) {
    for (const auto& x : r) fold(static_cast<std::uint64_t>(x));
  }
  std::uint64_t value() const { return splitmix64(h_ ^ words_); }

 private:
  std::uint64_t h_ = 0x9e3779b97f4a7c15ULL;
  std::uint64_t words_ = 0;
};

/// Everything observable about one play of a scenario body.
struct RunRecord {
  std::uint64_t seed = 0;
  std::uint64_t ledger_total = 0;
  /// Per-phase charge breakdown, deterministic first-charge order (the
  /// same OrderedMap the ledger and obs::MetricsRegistry use).
  OrderedMap<std::uint64_t> phase_totals;
  std::uint64_t output_digest = 0;
  AuditReport audit;
};

/// The environment handed to a scenario body.
class SimRun {
 public:
  Rng& rng() { return rng_; }
  RoundLedger& ledger() { return ledger_; }
  std::uint32_t epoch() const { return epoch_; }

  /// The harness's execution policy: bodies pass this to SyncNetwork /
  /// ParallelWalkEngine so one HarnessOptions knob controls substrate
  /// parallelism. Certification demands bit-identical records at every
  /// thread count, so exec() must never influence anything else.
  const ExecPolicy& exec() const { return exec_; }

  /// Fold an output word (MST edge, delivered count, walk endpoint, ...)
  /// into the run's output digest. Two runs are "identical" only if they
  /// folded identical words in identical order.
  void fold(std::uint64_t word) { digest_.fold(word); }
  template <typename Range>
  void fold_range(const Range& r) {
    digest_.fold_range(r);
  }

 private:
  friend class SimHarness;
  explicit SimRun(std::uint64_t seed)
      : rng_(splitmix64(seed ^ 0x5bf03635ef8c1e9bULL)) {}

  Rng rng_;
  RoundLedger ledger_;
  Digest digest_;
  std::uint32_t epoch_ = 0;
  ExecPolicy exec_;
};

struct HarnessOptions {
  std::uint64_t seed = 1;
  FaultPlan* faults = nullptr;  // not owned; nullptr = fault-free
  bool audit = true;            // install the conformance auditor
  std::uint32_t replays = 1;    // extra identical-seed plays to compare
  ExecPolicy exec{};            // substrate threading for the body
  /// Trace/metrics sink for the PRIMARY play only (not owned; nullptr =
  /// no recording). Replays run untraced — they must compare equal to the
  /// primary, and recording twice would double every metric. The recorder
  /// is cleared before the primary play starts.
  obs::TraceRecorder* trace = nullptr;
};

struct HarnessResult {
  RunRecord record;              // from the primary play
  bool deterministic = true;     // all replays matched bit-for-bit
  std::string mismatch_report;   // replay diff; empty when deterministic

  /// The harness's overall verdict: replayable AND conformant.
  bool certified() const { return deterministic && record.audit.ok(); }
};

class SimHarness {
 public:
  explicit SimHarness(HarnessOptions opt) : opt_(std::move(opt)) {}

  using Body = std::function<void(SimRun&)>;
  HarnessResult run(const Body& body) const;

  /// Epoch driver: body(run, graph) once per epoch on a graph that churns
  /// between epochs per the fault plan. All epochs share one record.
  using EpochBody = std::function<void(SimRun&, const Graph&)>;
  HarnessResult run_epochs(const Graph& g0, std::uint32_t epochs,
                           const EpochBody& body) const;

 private:
  RunRecord play_once(const EpochBody& body, const Graph* g0,
                      std::uint32_t epochs, bool primary) const;

  HarnessOptions opt_;
};

/// Human-readable diff of two records of the same seed (first mismatching
/// quantity leads). Empty string when they match.
std::string diff_records(const RunRecord& a, const RunRecord& b);

}  // namespace amix::sim
