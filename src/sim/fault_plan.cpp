#include "sim/fault_plan.hpp"

#include <algorithm>

namespace amix::sim {

// ---- MessageDropPlan ----

MessageDropPlan::MessageDropPlan(double p, std::uint64_t seed,
                                 bool drop_tokens, bool drop_kernel,
                                 std::uint32_t max_retransmits)
    : p_(p),
      seed_(seed),
      drop_tokens_(drop_tokens),
      drop_kernel_(drop_kernel),
      max_retransmits_(max_retransmits),
      rng_(seed) {}

void MessageDropPlan::reset(std::uint64_t run_seed) {
  rng_.reseed(splitmix64(seed_ ^ splitmix64(run_seed)));
  retransmits_ = 0;
  kernel_dropped_ = 0;
}

std::uint32_t MessageDropPlan::extra_arc_slots(const CommGraph&,
                                               std::uint64_t) {
  if (!drop_tokens_) return 0;
  std::uint32_t extra = 0;
  while (extra < max_retransmits_ && rng_.next_bool(p_)) ++extra;
  retransmits_ += extra;
  return extra;
}

bool MessageDropPlan::deliver(NodeId, NodeId, std::uint64_t) {
  if (!drop_kernel_) return true;
  if (rng_.next_bool(p_)) {
    ++kernel_dropped_;
    return false;
  }
  return true;
}

// ---- DuplicationPlan ----

DuplicationPlan::DuplicationPlan(double p, std::uint64_t seed)
    : p_(p), seed_(seed), rng_(seed) {}

void DuplicationPlan::reset(std::uint64_t run_seed) {
  rng_.reseed(splitmix64(seed_ ^ splitmix64(run_seed)));
  duplicates_ = 0;
}

std::uint32_t DuplicationPlan::extra_arc_slots(const CommGraph&,
                                               std::uint64_t) {
  if (!rng_.next_bool(p_)) return 0;
  ++duplicates_;
  return 1;
}

// ---- AdversarialOrderPlan ----

AdversarialOrderPlan::AdversarialOrderPlan(std::uint64_t seed)
    : seed_(seed), rng_(seed) {}

void AdversarialOrderPlan::reset(std::uint64_t run_seed) {
  rng_.reseed(splitmix64(seed_ ^ splitmix64(run_seed)));
}

void AdversarialOrderPlan::permute_order(std::uint64_t,
                                         std::span<NodeId> order) {
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = rng_.next_below(i);
    std::swap(order[i - 1], order[j]);
  }
}

// ---- ChurnPlan ----

std::uint32_t ChurnPlan::churn_swaps(std::uint32_t epoch,
                                     const Graph& g) const {
  if (epoch == 0) return 0;
  const double swaps = fraction_ * static_cast<double>(g.num_edges());
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(swaps));
}

// ---- CompositeFaultPlan ----

void CompositeFaultPlan::reset(std::uint64_t run_seed) {
  for (FaultPlan* p : plans_) p->reset(run_seed);
}

std::uint32_t CompositeFaultPlan::extra_arc_slots(const CommGraph& g,
                                                  std::uint64_t arc) {
  std::uint32_t extra = 0;
  for (FaultPlan* p : plans_) extra += p->extra_arc_slots(g, arc);
  return extra;
}

bool CompositeFaultPlan::deliver(NodeId from, NodeId to, std::uint64_t round) {
  bool ok = true;
  for (FaultPlan* p : plans_) ok = p->deliver(from, to, round) && ok;
  return ok;
}

void CompositeFaultPlan::permute_order(std::uint64_t round,
                                       std::span<NodeId> order) {
  for (FaultPlan* p : plans_) p->permute_order(round, order);
}

std::uint32_t CompositeFaultPlan::churn_swaps(std::uint32_t epoch,
                                              const Graph& g) const {
  std::uint32_t swaps = 0;
  for (const FaultPlan* p : plans_) swaps += p->churn_swaps(epoch, g);
  return swaps;
}

}  // namespace amix::sim
