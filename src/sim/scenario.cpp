#include "sim/scenario.hpp"

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace amix::sim {

std::vector<Scenario> seeded_corpus(std::uint64_t corpus_seed,
                                    std::uint32_t scale) {
  Rng root(corpus_seed);
  std::vector<Scenario> out;
  const auto add = [&](std::string name, auto make) {
    Rng rng = root.split();
    const std::uint64_t seed = splitmix64(corpus_seed ^ out.size());
    out.push_back(Scenario{std::move(name), make(rng), seed});
  };
  const std::uint32_t s = scale;
  add("regular-" + std::to_string(64 * s) + "x6",
      [&](Rng& rng) { return gen::random_regular(64 * s, 6, rng); });
  add("gnp-" + std::to_string(48 * s),
      [&](Rng& rng) { return gen::connected_gnp(48 * s, 0.14, rng); });
  add("torus-" + std::to_string(6 * s),
      [&](Rng&) { return gen::torus2d(6 * s); });
  add("hypercube-5", [&](Rng&) { return gen::hypercube(5); });
  add("ring-" + std::to_string(24 * s),
      [&](Rng&) { return gen::ring(24 * s); });
  add("barbell-" + std::to_string(16 * s),
      [&](Rng&) { return gen::barbell(16 * s); });
  return out;
}

std::uint64_t graph_digest(const Graph& g) {
  std::uint64_t h = splitmix64(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    h = splitmix64(h ^ (static_cast<std::uint64_t>(g.edge_u(e)) << 32 |
                        g.edge_v(e)));
  }
  return h;
}

}  // namespace amix::sim
