#pragma once

// Level-zero embedding (Section 3.1.1): an Erdos-Renyi-like overlay G_0 on
// the 2m virtual nodes, built from parallel lazy random walks of length
// tau_mix(G) on the base graph.
//
// Each virtual node starts `walk_slack * out_degree` walks; after tau_mix
// steps a walk's endpoint is (essentially) a uniform virtual node, because
// the lazy walk's stationary distribution is degree-proportional and the
// landing node assigns the token to a uniform port. The first `out_degree`
// endpoints become out-neighbors; reversing the walks informs both sides
// (charged as a second pass), and one more forward pass lets endpoints
// learn their in-edges (third pass) — exactly the paper's three traversals.
//
// round_cost of the resulting overlay = base rounds to re-run the selected
// walks in both directions, measured on a fresh same-shape batch (see
// DESIGN.md Section 5 on why a fresh batch is a faithful cost probe).

#include <cstdint>

#include "congest/comm_graph.hpp"
#include "congest/round_ledger.hpp"
#include "hierarchy/virtual_space.hpp"
#include "randwalk/walk_engine.hpp"

namespace amix {

struct G0Params {
  std::uint32_t out_degree = 0;   // 0 = auto: max(4, ceil(0.75 * log2 n))
  double walk_slack = 2.0;        // started walks = slack * out_degree
  std::uint32_t tau_mix = 0;      // 0 = measure (sampled, Definition 2.1)
  std::uint32_t tau_samples = 4;  // starts probed when measuring tau_mix
  std::uint32_t max_tau = 2'000'000;
  ExecPolicy exec;                // walk engines + assembly sweeps
};

struct G0Result {
  OverlayComm overlay;        // on [0, 2m) vids; round_cost set
  std::uint32_t tau_mix = 0;  // walk length used
  std::uint32_t out_degree = 0;
  WalkStats forward_stats;    // the full construction batch
};

/// Builds G_0 and charges the ledger for the three walk traversals.
G0Result build_g0(const VirtualNodeSpace& vs, const G0Params& params, Rng& rng,
                  RoundLedger& ledger);

}  // namespace amix
