#pragma once

// Recursive level construction (Section 3.1.2): given the level-(l-1)
// overlay, build the level-l overlay G_l — a disjoint union of random
// graphs, one per level-l part — by running 2Delta-regular random walks on
// the parent overlay and keeping the "successful" walks (those whose
// endpoint lies in the starter's own level-l part).
//
// Walks are issued in adaptive waves: each wave starts
// ~walk_slack * beta * missing walks per still-unsatisfied node (success
// probability per walk is ~1/beta); nodes stop once they have their target
// degree. The per-node target is capped at 2/3 of the part size so waves
// converge geometrically (no coupon-collector tail); at the last level,
// where parts have Theta(log n) nodes, this yields the paper's effectively
// complete leaf graphs (diameter 1-2) without a quadratic construction.
// Per-part connectivity is verified; the hierarchy retries with thicker
// overlays if it ever fails (Las Vegas).

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "congest/comm_graph.hpp"
#include "congest/round_ledger.hpp"
#include "hierarchy/partition.hpp"
#include "randwalk/walk_engine.hpp"

namespace amix {

struct LevelParams {
  std::uint32_t target_degree = 8;  // Theta(log n) random same-part neighbors
  double walk_slack = 1.5;
  std::uint32_t tau = 0;            // walk length on parent; 0 = measure
  std::uint32_t tau_samples = 4;
  std::uint32_t max_tau = 4000;
  std::uint32_t max_waves = 64;
  ExecPolicy exec;                  // walk engines + matching/assembly sweeps
};

/// Persistent build buffers, reused across waves AND levels (the caller
/// keeps one instance alive for the whole hierarchy build): the wave loop
/// repeatedly fills the same walk-start, candidate and dedup storage, so
/// the per-wave allocations collapse to size bumps on the largest wave.
struct LevelScratch {
  std::vector<std::uint32_t> starts;        // wave walk starts
  std::vector<std::uint32_t> probe_starts;  // cost-probe walk starts
  std::vector<std::uint32_t> missing;       // per-vid remaining targets
  std::vector<std::size_t> wave_offsets;    // per-vid start offsets + total
  std::vector<Vid> uf;                      // union-find parents
  std::vector<std::uint64_t> have;          // sorted undirected edge keys
  std::vector<std::uint64_t> have_next;     // merge target for `have`
  // Per-shard successful-walk candidates of one wave, each sorted by
  // (edge key, start vid); merged in key order across shards.
  std::vector<std::vector<std::pair<std::uint64_t, Vid>>> shard_cands;
  std::vector<std::pair<std::uint64_t, Vid>> cands;  // merged wave output
  std::vector<PartId> conn_parts;  // per order-position part ids
  std::vector<Vid> conn_reps;      // per order-position union-find reps
};

/// Per-part single-component check used by the level builder: `parts[i]`
/// is the part id of the i-th member in part-grouped order and `reps[i]`
/// its union-find representative; true iff no part has two distinct
/// representatives. Pairs are compared exactly — this replaces the old
/// `(part << 22) ^ rep` packed-key count, which aliased distinct
/// (part, rep) pairs once vids crossed 2^22 and could silently pass (or
/// fail) the connectivity gate at 10^7 scale. Requires `parts` grouped
/// (all equal part ids contiguous), which the partition's member order
/// provides by construction.
bool parts_singly_connected(std::span<const PartId> parts,
                            std::span<const Vid> reps);

struct LevelResult {
  OverlayComm overlay;               // on [0, 2m) vids; round_cost set
  std::uint32_t tau = 0;             // walk length used on the parent
  std::uint64_t emul_parent_rounds = 0;  // parent rounds per round of this
  std::uint32_t waves = 0;
  std::uint64_t walks_issued = 0;
  bool parts_connected = false;  // every part's overlay subgraph connected
};

/// Build the level-`level` overlay on top of `parent`. Charges the ledger
/// for every wave (forward + reverse). `level >= 1`. Pass a `scratch` to
/// share build buffers across levels; null uses call-local storage.
LevelResult build_level(const CommGraph& parent,
                        const HierarchicalPartition& part, std::uint32_t level,
                        const LevelParams& params, Rng& rng,
                        RoundLedger& ledger, LevelScratch* scratch = nullptr);

}  // namespace amix
