#pragma once

// Portals (Lemma 3.3). For sibling parts C_a, C_b at level l (children of
// the same level-(l-1) part), a packet leaving C_a for C_b is first routed
// to a *portal*: a node of C_a with a level-(l-1)-overlay edge into C_b.
// The portal of node u towards C_b is a uniformly random member of the
// candidate set S(C_a, C_b), chosen independently per node — realized here
// by deterministic hashed sampling from the exact candidate list (the same
// distribution Lemma 3.3's random walks converge to; see DESIGN.md §5).
// The construction cost charged follows the lemma: per level, a measured
// beta-walks-per-node batch on the level-l overlay, once per target part,
// forward and reverse.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "congest/comm_graph.hpp"
#include "congest/round_ledger.hpp"
#include "hierarchy/partition.hpp"
#include "randwalk/walk_engine.hpp"

namespace amix {

/// Restricts a PortalTable (re)build's charged work to the vids whose
/// portal slots a delta repair damaged. `affected[l]` (l in [1, depth];
/// index 0 unused) lists the vids at level l that must re-run their
/// Lemma 3.3 walk batches; candidate tables are still recomputed exactly
/// (an uncharged local scan, like the from-scratch build).
struct PortalRepairScope {
  std::vector<std::vector<Vid>> affected;  // size depth + 1, [0] unused
};

class PortalTable {
 public:
  /// `overlays[l]` is the level-l overlay (overlays[0] == G0), for l in
  /// [0, depth]. Builds candidate sets for every level and charges the
  /// ledger per Lemma 3.3 — for every node, or (when `repair` is given)
  /// only for the repair scope's affected vids per level. `exec` shards
  /// the candidate scan, batch assembly and walk engines; the table is
  /// bit-identical at any setting. `tau_override` pins the batch walk
  /// length (HierarchyParams::level_tau); 0 measures each overlay.
  /// `candidate_cap` (HierarchyParams::portal_candidate_cap) bounds each
  /// slot's stored candidate list by a deterministic hashed subsample;
  /// 0 keeps every candidate.
  PortalTable(const HierarchicalPartition& part,
              const std::vector<const OverlayComm*>& overlays, Rng& rng,
              RoundLedger& ledger, const PortalRepairScope* repair = nullptr,
              ExecPolicy exec = {}, std::uint32_t tau_override = 0,
              std::uint32_t candidate_cap = 0);

  /// True if some node of part_a (level `level`) has a parent-overlay edge
  /// into the sibling with child index `target_child`.
  bool has_candidates(std::uint32_t level, PartId part_a,
                      std::uint32_t target_child) const;

  /// The portal of `u` (a member of part_a at `level`) towards the sibling
  /// child `target_child`. Deterministic per (u, target): repeated packets
  /// from u to that sibling reuse the same portal, as in the paper.
  Vid portal_for(Vid u, std::uint32_t level, std::uint32_t target_child) const;

  /// The parent-overlay neighbor of `portal` inside the target sibling part
  /// (the other endpoint of the hop edge), plus the port to reach it.
  /// Requires that `portal` qualifies. Deterministic per portal/target.
  std::pair<Vid, std::uint32_t> hop_arc(Vid portal, std::uint32_t level,
                                        std::uint32_t target_child) const;

  /// Smallest candidate-set size over all sibling pairs that have any
  /// parent-overlay edge count demand; 0 if some sibling pair within a
  /// common parent has NO candidates (build must be retried).
  std::uint32_t min_candidates() const { return min_candidates_; }
  bool complete() const { return complete_; }

  /// Occupied (level, part, target-child) slots — the Lemma 3.3 table's
  /// row count, the obs dashboards' "portal/table_entries".
  std::size_t table_entries() const { return candidates_.size(); }

  /// Total candidate vids across all slots (table storage volume).
  std::size_t total_candidates() const {
    std::size_t n = 0;
    for (const auto& [key, vids] : candidates_) n += vids.size();
    return n;
  }

  /// Canonical fold of the whole candidate table (slots visited in sorted
  /// key order, so the map's bucket order never shows through): equal
  /// digests mean element-wise identical tables. The thread-invariance
  /// tests pin hierarchy builds with this.
  std::uint64_t digest() const;

 private:
  static std::uint64_t slot_key(std::uint32_t level, PartId part,
                                std::uint32_t child) {
    return ((part * 64 + child) << 5) | level;
  }

  const HierarchicalPartition* part_;
  std::vector<const OverlayComm*> overlays_;
  // (level, part_a, target_child) -> sorted candidate vids.
  std::unordered_map<std::uint64_t, std::vector<Vid>> candidates_;
  std::uint32_t min_candidates_ = 0;
  bool complete_ = true;
};

}  // namespace amix
