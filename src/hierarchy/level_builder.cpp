#include "hierarchy/level_builder.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "randwalk/mixing.hpp"

namespace amix {
namespace {

std::uint64_t edge_key(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

LevelResult build_level(const CommGraph& parent,
                        const HierarchicalPartition& part, std::uint32_t level,
                        const LevelParams& params, Rng& rng,
                        RoundLedger& ledger) {
  AMIX_CHECK(level >= 1 && level <= part.depth());
  const std::uint32_t nv = parent.num_nodes();
  AMIX_CHECK(nv == part.order().size());

  LevelResult res;

  if (params.tau != 0) {
    res.tau = params.tau;
  } else {
    Rng probe = rng.split();
    res.tau = comm_mixing_time_sampled(parent, WalkKind::kRegular2Delta,
                                       params.tau_samples, probe,
                                       params.max_tau);
    AMIX_CHECK_MSG(res.tau <= params.max_tau,
                   "parent overlay did not mix within max_tau");
    res.tau = std::max<std::uint32_t>(res.tau, 1);
  }

  const std::uint32_t beta = part.beta();

  // Per-vid targets: target_degree, capped at 2/3 of the co-member count
  // so the distinct-neighbor waves converge geometrically (each successful
  // walk still has >= 1/3 chance of hitting a new neighbor).
  std::vector<std::uint32_t> missing(nv);
  for (Vid v = 0; v < nv; ++v) {
    const std::uint32_t sz = part.part_size(level, part.part_of(v, level));
    const std::uint32_t cap =
        sz <= 1 ? 0 : std::max<std::uint32_t>(1, 2 * (sz - 1) / 3);
    missing[v] = std::min(params.target_degree, cap);
  }

  // Edges accumulate straight into CSR form: the builder records arcs in
  // arrival order, which is exactly the port numbering the old nested
  // vector construction produced, so arc indices (and all ledger charges
  // derived from them) are unchanged.
  CsrBuilder builder(nv);
  std::unordered_set<std::uint64_t> have;  // undirected edges present
  have.reserve(static_cast<std::size_t>(nv) * params.target_degree * 2);

  auto connect = [&](Vid a, Vid b) -> bool {
    if (!have.insert(edge_key(a, b)).second) return false;
    builder.add_edge(a, b);
    return true;
  };

  ParallelWalkEngine engine(parent, rng.split());
  std::vector<std::uint32_t> starts;

  for (res.waves = 0; res.waves < params.max_waves; ++res.waves) {
    starts.clear();
    for (Vid v = 0; v < nv; ++v) {
      if (missing[v] == 0) continue;
      const auto w = static_cast<std::uint32_t>(
          std::ceil(params.walk_slack * beta * missing[v]));
      for (std::uint32_t i = 0; i < w; ++i) starts.push_back(v);
    }
    if (starts.empty()) break;
    res.walks_issued += starts.size();

    WalkStats stats;
    const auto ends = engine.run(starts, WalkKind::kRegular2Delta, res.tau,
                                 ledger, &stats);
    ParallelWalkEngine::charge_rerun(stats, ledger);  // reverse traversal

    for (std::size_t i = 0; i < starts.size(); ++i) {
      const Vid s = starts[i];
      const Vid e = ends[i];
      if (missing[s] == 0 || e == s) continue;
      if (part.part_of(s, level) != part.part_of(e, level)) continue;
      if (connect(s, e)) {
        --missing[s];
        if (missing[e] > 0) --missing[e];  // the edge serves both endpoints
      }
    }
  }

  for (Vid v = 0; v < nv; ++v) {
    AMIX_CHECK_MSG(missing[v] == 0,
                   "level build did not converge; raise max_waves/walk_slack");
  }

  // Finalize the CSR overlay now; the connectivity check and the cost
  // probe below read its adjacency, and the measured round cost is set
  // afterwards.
  OverlayComm overlay = std::move(builder).finish(/*round_cost=*/1);

  // Per-part connectivity (the recursion walks within parts, so every
  // part's overlay must be one component). Verified, not assumed.
  {
    // Union-find over overlay edges.
    std::vector<Vid> uf(nv);
    for (Vid v = 0; v < nv; ++v) uf[v] = v;
    const auto find = [&uf](Vid x) {
      while (uf[x] != x) {
        uf[x] = uf[uf[x]];
        x = uf[x];
      }
      return x;
    };
    for (Vid v = 0; v < nv; ++v) {
      for (const Vid w : overlay.neighbors(v)) {
        const Vid a = find(v), b = find(w);
        if (a != b) uf[a] = b;
      }
    }
    // Each part must have exactly one representative.
    std::unordered_set<std::uint64_t> reps;
    res.parts_connected = true;
    for (Vid v = 0; v < nv; ++v) {
      const std::uint64_t key =
          (part.part_of(v, level) << 22) ^ find(v);
      reps.insert(key);
    }
    std::unordered_set<PartId> parts_seen;
    for (Vid v = 0; v < nv; ++v) parts_seen.insert(part.part_of(v, level));
    if (reps.size() != parts_seen.size()) res.parts_connected = false;
  }

  // Emulation-cost probe: one round of this overlay re-runs (forward and
  // backward) one walk per overlay edge-direction; probe with a fresh batch
  // of target_degree walks per vid on a scratch ledger.
  RoundLedger scratch;
  std::vector<std::uint32_t> probe_starts;
  for (Vid v = 0; v < nv; ++v) {
    for (const Vid w : overlay.neighbors(v)) {
      if (v < w) probe_starts.push_back(v);  // one walk per undirected edge
    }
  }
  WalkStats probe_stats;
  ParallelWalkEngine probe_engine(parent, rng.split());
  probe_engine.run(probe_starts, WalkKind::kRegular2Delta, res.tau, scratch,
                   &probe_stats);
  res.emul_parent_rounds =
      2 * std::max<std::uint64_t>(1, probe_stats.graph_rounds);

  overlay.set_round_cost(res.emul_parent_rounds * parent.round_cost());
  res.overlay = std::move(overlay);
  return res;
}

}  // namespace amix
