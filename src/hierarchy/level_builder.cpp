#include "hierarchy/level_builder.hpp"

#include <algorithm>
#include <cmath>

#include "randwalk/mixing.hpp"

namespace amix {
namespace {

std::uint64_t edge_key(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Bottom-up merge of the per-shard sorted candidate runs into one
/// sequence sorted by (edge key, start vid). Merging sorted runs is
/// order-canonical: the result depends only on the multiset of records,
/// never on how the wave's walks were cut into shards — which is what
/// keeps the wave outcome bit-identical at any thread count.
void merge_shard_runs(std::vector<std::vector<std::pair<std::uint64_t, Vid>>>&
                          runs,
                      std::uint32_t num_runs,
                      std::vector<std::pair<std::uint64_t, Vid>>& out) {
  out.clear();
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < num_runs; ++s) total += runs[s].size();
  out.reserve(total);
  std::vector<std::pair<std::size_t, std::size_t>> bounds;  // sorted runs
  for (std::uint32_t s = 0; s < num_runs; ++s) {
    bounds.emplace_back(out.size(), out.size() + runs[s].size());
    out.insert(out.end(), runs[s].begin(), runs[s].end());
  }
  while (bounds.size() > 1) {
    std::vector<std::pair<std::size_t, std::size_t>> next;
    for (std::size_t i = 0; i + 1 < bounds.size(); i += 2) {
      std::inplace_merge(out.begin() + bounds[i].first,
                         out.begin() + bounds[i].second,
                         out.begin() + bounds[i + 1].second);
      next.emplace_back(bounds[i].first, bounds[i + 1].second);
    }
    if (bounds.size() % 2 == 1) next.push_back(bounds.back());
    bounds = std::move(next);
  }
}

}  // namespace

bool parts_singly_connected(std::span<const PartId> parts,
                            std::span<const Vid> reps) {
  AMIX_CHECK(parts.size() == reps.size());
  for (std::size_t i = 1; i < parts.size(); ++i) {
    if (parts[i] == parts[i - 1] && reps[i] != reps[i - 1]) return false;
  }
  return true;
}

LevelResult build_level(const CommGraph& parent,
                        const HierarchicalPartition& part, std::uint32_t level,
                        const LevelParams& params, Rng& rng,
                        RoundLedger& ledger, LevelScratch* scratch) {
  AMIX_CHECK(level >= 1 && level <= part.depth());
  const std::uint32_t nv = parent.num_nodes();
  AMIX_CHECK(nv == part.order().size());

  LevelScratch local;
  LevelScratch& sc = scratch != nullptr ? *scratch : local;

  LevelResult res;

  if (params.tau != 0) {
    res.tau = params.tau;
  } else {
    Rng probe = rng.split();
    res.tau = comm_mixing_time_sampled(parent, WalkKind::kRegular2Delta,
                                       params.tau_samples, probe,
                                       params.max_tau);
    AMIX_CHECK_MSG(res.tau <= params.max_tau,
                   "parent overlay did not mix within max_tau");
    res.tau = std::max<std::uint32_t>(res.tau, 1);
  }

  const std::uint32_t beta = part.beta();

  // Per-vid targets: target_degree, capped at 2/3 of the co-member count
  // so the distinct-neighbor waves converge geometrically (each successful
  // walk still has >= 1/3 chance of hitting a new neighbor). Pure per-vid
  // lookups, so the fill shards freely.
  std::vector<std::uint32_t>& missing = sc.missing;
  missing.resize(nv);
  parallel_for_shards(
      params.exec, nv, [&](std::uint32_t, std::size_t lo, std::size_t hi) {
        for (std::size_t v = lo; v < hi; ++v) {
          const std::uint32_t sz =
              part.part_size(level, part.part_of(static_cast<Vid>(v), level));
          const std::uint32_t cap =
              sz <= 1 ? 0 : std::max<std::uint32_t>(1, 2 * (sz - 1) / 3);
          missing[v] = std::min(params.target_degree, cap);
        }
      });
  std::uint64_t sum_missing = 0;
  for (Vid v = 0; v < nv; ++v) sum_missing += missing[v];

  // Edges accumulate straight into CSR form in accepted order. Dedup is a
  // sorted flat key vector: every accepted edge decrements missing at its
  // start vid, so at most sum(missing) edges ever exist — that exact bound
  // sizes the storage (the old unordered_set reserved nv * target_degree
  // * 2 buckets regardless of the part-size caps).
  CsrBuilder builder(nv);
  std::vector<std::uint64_t>& have = sc.have;  // sorted undirected edge keys
  have.clear();
  have.reserve(sum_missing);
  std::vector<std::uint64_t>& have_next = sc.have_next;
  have_next.reserve(sum_missing);
  std::vector<std::uint64_t> added;  // this wave's accepted keys (sorted)

  ParallelWalkEngine engine(parent, rng.split(), params.exec);
  const std::uint32_t nshards = params.exec.shards();
  if (sc.shard_cands.size() < nshards) sc.shard_cands.resize(nshards);
  std::vector<std::uint32_t>& starts = sc.starts;
  std::vector<std::size_t>& offsets = sc.wave_offsets;

  for (res.waves = 0; res.waves < params.max_waves; ++res.waves) {
    // Wave starts: walk j of vid v occupies starts[offsets[v] + j]; the
    // offsets make the fill a pure function of vid, so it shards freely.
    offsets.resize(static_cast<std::size_t>(nv) + 1);
    offsets[0] = 0;
    for (Vid v = 0; v < nv; ++v) {
      const std::size_t w =
          missing[v] == 0
              ? 0
              : static_cast<std::size_t>(
                    std::ceil(params.walk_slack * beta * missing[v]));
      offsets[v + 1] = offsets[v] + w;
    }
    const std::size_t num_walks = offsets[nv];
    if (num_walks == 0) break;
    starts.resize(num_walks);
    parallel_for_shards(params.exec, nv,
                        [&](std::uint32_t, std::size_t lo, std::size_t hi) {
                          for (std::size_t v = lo; v < hi; ++v) {
                            std::fill(starts.begin() + offsets[v],
                                      starts.begin() + offsets[v + 1],
                                      static_cast<std::uint32_t>(v));
                          }
                        });
    res.walks_issued += num_walks;

    WalkStats stats;
    const auto ends = engine.run(starts, WalkKind::kRegular2Delta, res.tau,
                                 ledger, &stats);
    ParallelWalkEngine::charge_rerun(stats, ledger);  // reverse traversal

    // Endpoint matching, phase 1 (parallel): filter the wave down to its
    // successful walks — endpoint distinct from the start and inside the
    // start's own part — as per-shard (edge key, start) records, each
    // shard sorted by (key, start).
    parallel_for_shards(
        params.exec, num_walks,
        [&](std::uint32_t s, std::size_t lo, std::size_t hi) {
          auto& out = sc.shard_cands[s];
          out.clear();
          for (std::size_t i = lo; i < hi; ++i) {
            const Vid st = starts[i];
            const Vid e = ends[i];
            if (e == st) continue;
            if (part.part_of(st, level) != part.part_of(e, level)) continue;
            out.emplace_back(edge_key(st, e), st);
          }
          std::sort(out.begin(), out.end());
        });
    merge_shard_runs(sc.shard_cands, nshards, sc.cands);

    // Phase 2 (serial, order-canonical): walk the merged candidates in
    // (key, start) order against the sorted `have` keys. For each new key
    // the first start vid that still misses neighbors claims the edge;
    // keys whose every start is already satisfied stay unclaimed (a later
    // wave may still add them), exactly as in the per-walk loop this
    // replaces.
    added.clear();
    std::size_t hp = 0;  // cursor into `have` (both sides key-sorted)
    for (std::size_t i = 0; i < sc.cands.size();) {
      const std::uint64_t key = sc.cands[i].first;
      std::size_t j = i;
      while (j < sc.cands.size() && sc.cands[j].first == key) ++j;
      while (hp < have.size() && have[hp] < key) ++hp;
      if (hp < have.size() && have[hp] == key) {
        i = j;
        continue;  // edge already present from an earlier wave
      }
      for (std::size_t k = i; k < j; ++k) {
        const Vid s = sc.cands[k].second;
        if (missing[s] == 0) continue;
        const Vid a = static_cast<Vid>(key >> 32);
        const Vid b = static_cast<Vid>(key & 0xffffffffu);
        const Vid e = s == a ? b : a;
        builder.add_edge(s, e);
        added.push_back(key);
        --missing[s];
        if (missing[e] > 0) --missing[e];  // the edge serves both endpoints
        break;
      }
      i = j;
    }
    if (!added.empty()) {
      have_next.clear();
      std::merge(have.begin(), have.end(), added.begin(), added.end(),
                 std::back_inserter(have_next));
      std::swap(have, have_next);
    }
  }

  for (Vid v = 0; v < nv; ++v) {
    AMIX_CHECK_MSG(missing[v] == 0,
                   "level build did not converge; raise max_waves/walk_slack");
  }

  // Finalize the CSR overlay now; the connectivity check and the cost
  // probe below read its adjacency, and the measured round cost is set
  // afterwards.
  OverlayComm overlay = std::move(builder).finish(/*round_cost=*/1);

  // Per-part connectivity (the recursion walks within parts, so every
  // part's overlay must be one component). Verified, not assumed: a
  // path-halving array union-find over the overlay arcs, then a per-part
  // single-representative scan over the partition's member order (which
  // groups every part contiguously).
  {
    std::vector<Vid>& uf = sc.uf;
    uf.resize(nv);
    for (Vid v = 0; v < nv; ++v) uf[v] = v;
    const auto find = [&uf](Vid x) {
      while (uf[x] != x) {
        uf[x] = uf[uf[x]];
        x = uf[x];
      }
      return x;
    };
    for (Vid v = 0; v < nv; ++v) {
      for (const Vid w : overlay.neighbors(v)) {
        const Vid a = find(v), b = find(w);
        if (a != b) uf[a] = b;
      }
    }
    sc.conn_parts.resize(nv);
    sc.conn_reps.resize(nv);
    const std::vector<Vid>& order = part.order();
    for (std::size_t idx = 0; idx < nv; ++idx) {
      sc.conn_parts[idx] = part.part_of(order[idx], level);
      sc.conn_reps[idx] = find(order[idx]);
    }
    res.parts_connected = parts_singly_connected(sc.conn_parts, sc.conn_reps);
  }

  // Emulation-cost probe: one round of this overlay re-runs (forward and
  // backward) one walk per overlay edge-direction; probe with a fresh batch
  // of target_degree walks per vid on a scratch ledger.
  RoundLedger scratch_ledger;
  std::vector<std::uint32_t>& probe_starts = sc.probe_starts;
  probe_starts.clear();
  for (Vid v = 0; v < nv; ++v) {
    for (const Vid w : overlay.neighbors(v)) {
      if (v < w) probe_starts.push_back(v);  // one walk per undirected edge
    }
  }
  WalkStats probe_stats;
  ParallelWalkEngine probe_engine(parent, rng.split(), params.exec);
  probe_engine.run(probe_starts, WalkKind::kRegular2Delta, res.tau,
                   scratch_ledger, &probe_stats);
  res.emul_parent_rounds =
      2 * std::max<std::uint64_t>(1, probe_stats.graph_rounds);

  overlay.set_round_cost(res.emul_parent_rounds * parent.round_cost());
  res.overlay = std::move(overlay);
  return res;
}

}  // namespace amix
