#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "congest/primitives.hpp"
#include "graph/traversal.hpp"
#include "hierarchy/hierarchy.hpp"
#include "obs/trace.hpp"
#include "randwalk/walk_engine.hpp"

// Delta repair (the dynamic-graph path). A mutated graph keeps most of
// its (node, port) slots: Graph::apply_delta preserves the relative
// edge-list order of surviving edges, so a surviving slot keeps its key
// (owner, port) unless a deletion shifted later ports at its endpoint.
// Since the partition hashes keys with the already-broadcast seed, a
// key-stable slot keeps its exact leaf — so the damage of a small delta
// is local: the added/removed slots, the few survivors whose port
// shifted into a different leaf, and their incident overlay edges.
//
// The repair rebuilds exactly that damage, bottom-up, re-using the old
// structure everywhere else and re-charging ONLY the repaired work:
//   announce   one leader election + BFS broadcast of the changed edges
//   g0         fresh tau_mix walks only for slots missing G0 edges
//   levels     distinct-neighbor waves only for damaged/moved/new slots,
//              plus a connectivity re-check of the parts they live in
//   portals    Lemma 3.3 batches only for members of parts whose
//              candidate sets could have changed
// Round costs of untouched overlays are kept (their emulation schedules
// did not change); walk lengths reuse the measured tau of the build.
//
// Everything is staged on locals and committed at the end, so a fallback
// (returning applied == false) leaves the hierarchy untouched and valid
// for the old graph. Correctness is not argued, it is checked: the
// engine's equivalence oracle compares every repaired hierarchy against
// a fresh build on the mutated graph (see src/engine/equivalence_oracle).

namespace amix {
namespace {

constexpr std::uint64_t kRepairStream = 0x64656c74612d7270ULL;  // "delta-rp"
constexpr Vid kNoVid = static_cast<Vid>(-1);

std::uint64_t edge_key(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

RepairOutcome Hierarchy::apply_delta(const Graph& new_g, RoundLedger& ledger) {
  const obs::Span repair_span(ledger, "hierarchy/delta-repair");
  const std::uint64_t start_rounds = ledger.total();
  RepairOutcome out;
  const auto fallback = [&](const char* reason) {
    out.applied = false;
    out.reason = reason;
    out.repair_rounds = ledger.total() - start_rounds;
    return out;
  };

  // --- Gates that need no simulated work (local knowledge only). ---
  if (new_g.num_nodes() != g_->num_nodes()) return fallback("node-count-changed");
  if (new_g.num_nodes() < 2 || new_g.num_edges() == 0) {
    return fallback("degenerate-graph");
  }
  if (!is_connected(new_g)) return fallback("disconnected");

  const std::uint32_t depth = stats_.depth;
  AMIX_CHECK(stats_.level_taus.size() == depth);
  const HierarchyShape shape =
      derive_hierarchy_shape(new_g.num_nodes(), new_g.num_arcs(), params_);
  if (shape.beta != stats_.beta || shape.depth != depth) {
    return fallback("shape-changed");
  }

  // Re-key the partition against the mutated virtual-node space. Pure
  // local recompute (P2: labels are a function of key and the broadcast
  // seed), but the balance invariant must be re-verified.
  auto nvs = std::make_unique<VirtualNodeSpace>(new_g);
  const Vid new_nv = nvs->num_virtual();
  const Vid old_nv = vspace_->num_virtual();
  auto npart = std::make_unique<HierarchicalPartition>(
      partition_->rebound(*nvs, params_.exec));
  if (!npart->balanced(params_.balance_slack)) {
    return fallback("partition-imbalanced");
  }

  // --- Diff: match surviving slots between the graphs. ---
  std::unordered_map<std::uint64_t, EdgeId> old_edges;
  old_edges.reserve(2 * g_->num_edges());
  for (EdgeId e = 0; e < g_->num_edges(); ++e) {
    old_edges.emplace(edge_key(g_->edge_u(e), g_->edge_v(e)), e);
  }
  std::vector<Vid> old2new(old_nv, kNoVid);
  std::vector<Vid> new2old(new_nv, kNoVid);
  for (EdgeId e = 0; e < new_g.num_edges(); ++e) {
    const NodeId u = new_g.edge_u(e);
    const NodeId v = new_g.edge_v(e);
    const auto it = old_edges.find(edge_key(u, v));
    if (it == old_edges.end()) {
      ++out.delta.edges_added;
      continue;
    }
    const EdgeId eo = it->second;
    for (const NodeId x : {u, v}) {
      const Vid ov = vspace_->vid_of(x, g_->port_of(x, eo));
      const Vid nv2 = nvs->vid_of(x, new_g.port_of(x, e));
      old2new[ov] = nv2;
      new2old[nv2] = ov;
    }
    old_edges.erase(it);
  }
  out.delta.edges_removed = static_cast<std::uint32_t>(old_edges.size());
  out.delta.slots_added = 2 * out.delta.edges_added;
  out.delta.slots_removed = 2 * out.delta.edges_removed;

  std::vector<Vid> removed_old;
  removed_old.reserve(out.delta.slots_removed);
  for (Vid a = 0; a < old_nv; ++a) {
    if (old2new[a] == kNoVid) removed_old.push_back(a);
  }

  // Leaf-divergence level of each surviving slot: the shallowest level
  // where its old and new labels differ (divergence is monotone — once
  // prefixes split they stay split). depth + 1 == never moved.
  std::vector<std::uint32_t> div_level(new_nv, depth + 1);
  for (Vid v = 0; v < new_nv; ++v) {
    if (new2old[v] == kNoVid) continue;
    const PartId lold = partition_->leaf(new2old[v]);
    const PartId lnew = npart->leaf(v);
    if (lold == lnew) continue;
    ++out.delta.slots_moved;
    std::uint32_t l = 1;
    while (npart->prefix(lold, l) == npart->prefix(lnew, l)) ++l;
    div_level[v] = l;
  }

  // Width gate: patching more than a quarter of the slots re-runs most
  // of the construction anyway — a rebuild is at least as cheap and
  // keeps the fresh-build distribution.
  const std::uint64_t damage = static_cast<std::uint64_t>(out.delta.slots_added) +
                               out.delta.slots_removed + out.delta.slots_moved;
  if (damage > std::max<std::uint64_t>(64, new_nv / 4)) {
    return fallback("damage-too-wide");
  }

  const std::uint32_t changed_edges =
      out.delta.edges_added + out.delta.edges_removed;

  // --- Announce: every node must learn the changed edges to re-derive
  // shared state (slot keys shift only at the mutated endpoints, but
  // remote nodes compute labels from keys, so the delta is broadcast).
  if (changed_edges > 0) {
    const obs::Span span(ledger, "hierarchy/delta-announce");
    PhaseScope scope(ledger, "delta/announce");
    congest::elect_leader_max_id(new_g, scope.ledger());
    const BfsTree tree = congest::distributed_bfs_tree(new_g, 0, scope.ledger());
    congest::broadcast_bits(tree, static_cast<std::uint64_t>(changed_edges) * 64,
                            128, scope.ledger());
  }

  // Repair randomness: keyed on (seed, repair index) so a repair is a
  // deterministic function of the build seed and the mutation history,
  // independent of how many draws the build consumed.
  Rng rng(keyed_u64(params_.seed, kRepairStream, stats_.repairs));

  std::vector<OverlayComm> nov;  // repaired overlays, bottom-up
  nov.reserve(depth + 1);
  // touched[l]: vids whose level-l overlay adjacency changed (feeds the
  // portal repair scope: level-(l+1) portals hop over overlay l).
  std::vector<std::unordered_set<Vid>> touched(depth + 1);

  // --- G0: keep surviving edges, top up slots that lost out-edges and
  // give brand-new slots a full complement, via fresh tau_mix walks. ---
  std::vector<std::pair<Vid, Vid>> g0_edges;
  std::vector<std::uint32_t> g0_deficit(new_nv, 0);
  for (Vid v = 0; v < new_nv; ++v) {
    if (new2old[v] == kNoVid) g0_deficit[v] = stats_.g0_out_degree;
  }
  for (Vid a = 0; a < old_nv; ++a) {
    for (const Vid b : overlays_[0].neighbors(a)) {
      if (a >= b) continue;
      const Vid na = old2new[a];
      const Vid nb = old2new[b];
      if (na != kNoVid && nb != kNoVid) {
        g0_edges.emplace_back(na, nb);
      } else if (na != kNoVid) {
        ++g0_deficit[na];
      } else if (nb != kNoVid) {
        ++g0_deficit[nb];
      }
    }
  }
  const char* g0_fail = nullptr;
  {
    const obs::Span span(ledger, "hierarchy/delta-g0");
    PhaseScope scope(ledger, "delta/g0");
    std::vector<std::uint32_t> starts;
    std::vector<Vid> start_vid;
    const double slack = std::max(2.0, params_.walk_slack);
    for (Vid v = 0; v < new_nv; ++v) {
      if (g0_deficit[v] == 0) continue;
      touched[0].insert(v);
      const auto w = std::max<std::uint32_t>(
          4, static_cast<std::uint32_t>(std::ceil(slack * g0_deficit[v])));
      for (std::uint32_t i = 0; i < w; ++i) {
        starts.push_back(nvs->owner(v));
        start_vid.push_back(v);
      }
    }
    if (!starts.empty()) {
      BaseComm base(new_g);
      ParallelWalkEngine engine(base, rng.split(), params_.exec);
      WalkStats wstats;
      const auto ends =
          engine.run(starts, WalkKind::kLazy, std::max(stats_.tau_mix, 1u),
                     scope.ledger(), &wstats);
      // Reverse + second forward traversal, as in the build.
      ParallelWalkEngine::charge_rerun(wstats, scope.ledger());
      ParallelWalkEngine::charge_rerun(wstats, scope.ledger());
      // Port draws are keyed on (key, vid, walk index), matching the
      // build's G0 selection scheme.
      const std::uint64_t select_key = rng();
      std::size_t i = 0;
      while (i < ends.size() && g0_fail == nullptr) {
        const Vid v = start_vid[i];
        const std::uint32_t need = g0_deficit[v];
        std::uint32_t taken = 0;
        std::size_t j = i;
        for (; j < ends.size() && start_vid[j] == v; ++j) {
          if (taken >= need) continue;
          const NodeId land = ends[j];
          const auto port = static_cast<std::uint32_t>(
              keyed_below(select_key, v, j - i, new_g.degree(land)));
          const Vid nbr = nvs->vid_of(land, port);
          if (nbr == v) continue;
          g0_edges.emplace_back(v, nbr);
          touched[0].insert(nbr);
          ++taken;
        }
        if (2 * taken < need) g0_fail = "g0-walks-failed";
        i = j;
      }
    }
  }
  if (g0_fail != nullptr) return fallback(g0_fail);
  {
    CsrBuilder builder(new_nv);
    for (const auto& [a, b] : g0_edges) builder.add_edge(a, b);
    // The emulation schedule of G0 is shaped by (nv, out_degree, tau),
    // none of which changed: keep the measured round cost.
    nov.push_back(std::move(builder).finish(overlays_[0].round_cost()));
  }

  // --- Levels 1..depth: drop edges touching removed/moved slots, refill
  // the damaged slots with waves on the repaired parent, re-verify the
  // connectivity of every part that lost or gained a member. ---
  const auto repair_level = [&](std::uint32_t level) -> const char* {
    const obs::Span span(ledger, obs::numbered("hierarchy/delta-level-", level));
    PhaseScope scope(ledger, "delta/levels");
    const OverlayComm& old_ov = overlays_[level];
    const OverlayComm& parent = nov[level - 1];
    const std::uint32_t tau = std::max<std::uint32_t>(stats_.level_taus[level - 1], 1);
    const std::uint32_t beta = npart->beta();
    const auto dropped_at = [&](Vid v) { return div_level[v] <= level; };

    std::vector<std::pair<Vid, Vid>> edges;  // surviving + repaired
    std::vector<std::uint32_t> kept_deg(new_nv, 0);
    std::unordered_set<std::uint64_t> have;
    std::unordered_set<Vid> wave;  // slots that need fresh walks
    for (Vid a = 0; a < old_nv; ++a) {
      for (const Vid b : old_ov.neighbors(a)) {
        if (a >= b) continue;
        const Vid na = old2new[a];
        const Vid nb = old2new[b];
        const bool da = na == kNoVid || dropped_at(na);
        const bool db = nb == kNoVid || dropped_at(nb);
        if (!da && !db) {
          // Neither endpoint moved at this level, so both kept their old
          // part label and the edge is still a same-part edge.
          edges.emplace_back(na, nb);
          have.insert(edge_key(na, nb));
          ++kept_deg[na];
          ++kept_deg[nb];
        } else {
          if (!da) wave.insert(na);  // survivor lost a neighbor
          if (!db) wave.insert(nb);
        }
      }
    }
    for (Vid v = 0; v < new_nv; ++v) {
      if (new2old[v] == kNoVid || dropped_at(v)) wave.insert(v);
    }

    // Demand under the NEW part sizes; same target/cap as the build.
    std::vector<std::uint32_t> missing(new_nv, 0);
    for (const Vid v : wave) {
      const std::uint32_t sz =
          npart->part_size(level, npart->part_of(v, level));
      const std::uint32_t cap =
          sz <= 1 ? 0 : std::max<std::uint32_t>(1, 2 * (sz - 1) / 3);
      const std::uint32_t target = std::min(stats_.level_degree, cap);
      missing[v] = target > kept_deg[v] ? target - kept_deg[v] : 0;
    }

    ParallelWalkEngine engine(parent, rng.split(), params_.exec);
    std::vector<std::uint32_t> starts;
    const auto run_wave = [&]() {
      if (starts.empty()) return false;
      WalkStats wstats;
      const auto ends = engine.run(starts, WalkKind::kRegular2Delta, tau,
                                   scope.ledger(), &wstats);
      ParallelWalkEngine::charge_rerun(wstats, scope.ledger());  // reverse
      for (std::size_t i = 0; i < starts.size(); ++i) {
        const Vid s = starts[i];
        const Vid e = ends[i];
        if (missing[s] == 0 || e == s) continue;
        if (npart->part_of(s, level) != npart->part_of(e, level)) continue;
        if (!have.insert(edge_key(s, e)).second) continue;
        edges.emplace_back(s, e);
        touched[level].insert(s);
        touched[level].insert(e);
        --missing[s];
        if (missing[e] > 0) --missing[e];
      }
      return true;
    };

    for (std::uint32_t w = 0; w < 64; ++w) {
      starts.clear();
      for (Vid v = 0; v < new_nv; ++v) {
        if (missing[v] == 0) continue;
        const auto wn = static_cast<std::uint32_t>(
            std::ceil(params_.walk_slack * beta * missing[v]));
        for (std::uint32_t i = 0; i < wn; ++i) starts.push_back(v);
      }
      if (!run_wave()) break;
    }
    for (Vid v = 0; v < new_nv; ++v) {
      if (missing[v] != 0) return "level-walks-did-not-converge";
    }

    // Parts whose connectivity the delta could have broken: those the
    // wave slots live in now, and those removed/moved slots left.
    std::vector<PartId> check;
    for (const Vid v : wave) check.push_back(npart->part_of(v, level));
    for (const Vid a : removed_old) check.push_back(partition_->part_of(a, level));
    for (Vid v = 0; v < new_nv; ++v) {
      if (new2old[v] != kNoVid && dropped_at(v)) {
        check.push_back(npart->prefix(partition_->leaf(new2old[v]), level));
      }
    }
    std::sort(check.begin(), check.end());
    check.erase(std::unique(check.begin(), check.end()), check.end());

    const auto bad_parts = [&]() {
      std::vector<Vid> uf(new_nv);
      for (Vid v = 0; v < new_nv; ++v) uf[v] = v;
      const auto find = [&uf](Vid x) {
        while (uf[x] != x) {
          uf[x] = uf[uf[x]];
          x = uf[x];
        }
        return x;
      };
      for (const auto& [a, b] : edges) {
        const Vid ra = find(a);
        const Vid rb = find(b);
        if (ra != rb) uf[ra] = rb;
      }
      std::vector<PartId> bad;
      const auto& order = npart->order();
      for (const PartId p : check) {
        const auto [lo, hi] = npart->range(level, p);
        if (hi - lo <= 1) continue;
        const Vid rep = find(order[lo]);
        for (std::uint32_t i = lo + 1; i < hi; ++i) {
          if (find(order[i]) != rep) {
            bad.push_back(p);
            break;
          }
        }
      }
      return bad;
    };

    std::vector<PartId> bad = bad_parts();
    for (std::uint32_t attempt = 0; !bad.empty() && attempt < 8; ++attempt) {
      // One extra distinct neighbor per member of each broken part.
      std::fill(missing.begin(), missing.end(), 0);
      const auto& order = npart->order();
      for (const PartId p : bad) {
        const auto [lo, hi] = npart->range(level, p);
        for (std::uint32_t i = lo; i < hi; ++i) missing[order[i]] = 1;
      }
      starts.clear();
      const auto wn = static_cast<std::uint32_t>(
          std::ceil(params_.walk_slack * beta));
      for (Vid v = 0; v < new_nv; ++v) {
        if (missing[v] == 0) continue;
        for (std::uint32_t i = 0; i < wn; ++i) starts.push_back(v);
      }
      run_wave();
      bad = bad_parts();
    }
    if (!bad.empty()) return "level-reconnect-failed";

    for (const Vid v : wave) touched[level].insert(v);
    CsrBuilder builder(new_nv);
    for (const auto& [a, b] : edges) builder.add_edge(a, b);
    // Parent round costs are unchanged, so the measured emulation cost
    // of this level still applies.
    nov.push_back(std::move(builder).finish(old_ov.round_cost()));
    return nullptr;
  };

  for (std::uint32_t level = 1; level <= depth; ++level) {
    const char* fail = repair_level(level);
    if (fail != nullptr) return fallback(fail);
  }

  // --- Portals: recompute candidate tables exactly (uncharged local
  // scan, as in the build), re-charge Lemma 3.3 batches only for members
  // of parts whose candidate sets could have changed. ---
  PortalRepairScope pscope;
  pscope.affected.assign(depth + 1, {});
  for (std::uint32_t level = 1; level <= depth; ++level) {
    std::unordered_set<PartId> parts;
    for (const Vid v : touched[level - 1]) {
      parts.insert(npart->part_of(v, level));
    }
    for (Vid v = 0; v < new_nv; ++v) {
      if (new2old[v] == kNoVid) {
        parts.insert(npart->part_of(v, level));
      } else if (div_level[v] <= level) {
        parts.insert(npart->part_of(v, level));
        parts.insert(npart->prefix(partition_->leaf(new2old[v]), level));
      }
    }
    for (const Vid a : removed_old) {
      parts.insert(partition_->part_of(a, level));
    }
    auto& aff = pscope.affected[level];
    const auto& order = npart->order();
    for (const PartId p : parts) {
      const auto [lo, hi] = npart->range(level, p);
      for (std::uint32_t i = lo; i < hi; ++i) aff.push_back(order[i]);
    }
    std::sort(aff.begin(), aff.end());
    aff.erase(std::unique(aff.begin(), aff.end()), aff.end());
  }
  std::unique_ptr<PortalTable> nportals;
  {
    const obs::Span span(ledger, "hierarchy/delta-portals");
    PhaseScope scope(ledger, "delta/portals");
    std::vector<const OverlayComm*> ptrs;
    for (const auto& ov : nov) ptrs.push_back(&ov);
    nportals = std::make_unique<PortalTable>(*npart, ptrs, rng, scope.ledger(),
                                             &pscope, params_.exec,
                                             params_.level_tau,
                                             params_.portal_candidate_cap);
  }
  if (!nportals->complete()) return fallback("portals-incomplete");

  // --- Commit. Vector moves keep element addresses stable, so the
  // portal table's overlay pointers stay valid. ---
  g_ = &new_g;
  vspace_ = std::move(nvs);
  partition_ = std::move(npart);
  overlays_ = std::move(nov);
  portals_ = std::move(nportals);
  ++stats_.repairs;
  stats_.g0_round_cost = overlays_[0].round_cost();
  stats_.deepest_round_cost = overlays_.back().round_cost();
  out.applied = true;
  out.repair_rounds = ledger.total() - start_rounds;
  stats_.repair_rounds += out.repair_rounds;

  if (obs::recorder() != nullptr) {
    obs::metric_gauge_set("hierarchy/repairs", stats_.repairs);
    obs::metric_gauge_set("hierarchy/repair/slots_added", out.delta.slots_added);
    obs::metric_gauge_set("hierarchy/repair/slots_removed",
                          out.delta.slots_removed);
    obs::metric_gauge_set("hierarchy/repair/slots_moved", out.delta.slots_moved);
    obs::metric_gauge_set("hierarchy/repair/rounds", out.repair_rounds);
  }
  return out;
}

}  // namespace amix
