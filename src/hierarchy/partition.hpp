#pragma once

// Pseudo-random hierarchical partition (Section 3.1.2).
//
// A Theta(log n)-wise independent hash maps every virtual node key to a
// leaf of the beta-ary partition tree of depth k; the level-l label of a
// virtual node is the length-l prefix of its leaf index written in base
// beta. Property (P1): all parts at every level have near-equal size,
// checked at construction (Las Vegas: the builder resamples the hash seed
// if the check fails, charging a re-broadcast). Property (P2): any node
// can compute any other virtual node's labels from its key alone — which
// is how packet sources learn their destination's position in the tree.

#include <cstdint>
#include <vector>

#include "hierarchy/virtual_space.hpp"
#include "util/kwise_hash.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace amix {

/// Part id at a level: the label prefix interpreted as an integer in
/// [0, beta^level).
using PartId = std::uint64_t;

class HierarchicalPartition {
 public:
  /// depth >= 1, beta >= 2. `hash` must already be sampled (its seed is the
  /// broadcast shared randomness). `exec` shards the per-vid leaf hashing
  /// (the construction's dominant cost — Theta(w) multiply-adds per vid);
  /// the member order is then a counting sort by (leaf, vid), so the
  /// partition is bit-identical at any shard count.
  HierarchicalPartition(const VirtualNodeSpace& vs, KWiseHash hash,
                        std::uint32_t beta, std::uint32_t depth,
                        ExecPolicy exec = {});

  std::uint32_t beta() const { return beta_; }
  std::uint32_t depth() const { return depth_; }

  std::uint64_t num_leaves() const { return num_parts(depth_); }
  std::uint64_t num_parts(std::uint32_t level) const;  // beta^level

  /// Leaf index of a virtual node (precomputed).
  PartId leaf(Vid vid) const { return leaf_[vid]; }

  /// Part id of vid at `level` (0 = the single root part).
  PartId part_of(Vid vid, std::uint32_t level) const {
    return prefix(leaf_[vid], level);
  }

  /// Level-`level` digit (the paper's l_level in {0..beta-1}).
  std::uint32_t digit(Vid vid, std::uint32_t level) const;

  /// Labels from a key alone — what remote nodes compute (property P2).
  PartId leaf_of_key(std::uint64_t key) const;
  PartId part_of_key(std::uint64_t key, std::uint32_t level) const {
    return prefix(leaf_of_key(key), level);
  }

  PartId prefix(PartId leaf, std::uint32_t level) const {
    return leaf / pow_beta_[depth_ - level];
  }

  /// Parent part id of a level-`level` part (level >= 1).
  PartId parent_part(PartId part) const { return part / beta_; }
  /// Child index of a level-`level` part within its parent.
  std::uint32_t child_index(PartId part) const {
    return static_cast<std::uint32_t>(part % beta_);
  }

  /// Members of each part at `level`, as contiguous ranges over a vid
  /// ordering shared by all levels. `order()[range(part)]` are the members.
  const std::vector<Vid>& order() const { return order_; }
  std::pair<std::uint32_t, std::uint32_t> range(std::uint32_t level,
                                                PartId part) const;

  std::uint32_t part_size(std::uint32_t level, PartId part) const {
    const auto [lo, hi] = range(level, part);
    return hi - lo;
  }

  std::uint32_t min_leaf_size() const { return min_leaf_; }
  std::uint32_t max_leaf_size() const { return max_leaf_; }

  /// The same partition function (same hash seed, beta, depth) re-applied
  /// to a mutated virtual-node space: a pure local recompute — every node
  /// already holds the broadcast hash seed, so no new shared randomness is
  /// disseminated. Because keys are (owner, port) and the hash is fixed, a
  /// surviving slot whose port survives a delta keeps its exact leaf; this
  /// is what keeps delta repair local. The result must be re-checked with
  /// balanced() (the repair falls back to a rebuild when it fails).
  HierarchicalPartition rebound(const VirtualNodeSpace& vs,
                                ExecPolicy exec = {}) const {
    return HierarchicalPartition(vs, hash_, beta_, depth_, exec);
  }

  /// P1 check: every leaf size in [avg/slack, avg*slack] (and nonempty).
  bool balanced(double slack) const;

 private:
  const VirtualNodeSpace* vs_;
  KWiseHash hash_;
  std::uint32_t beta_;
  std::uint32_t depth_;
  std::vector<std::uint64_t> pow_beta_;  // beta^0 .. beta^depth
  std::vector<PartId> leaf_;             // per vid
  std::vector<Vid> order_;               // vids sorted by (leaf, vid)
  std::vector<std::uint32_t> leaf_start_;  // per leaf id: start in order_
  std::uint32_t min_leaf_ = 0;
  std::uint32_t max_leaf_ = 0;
};

}  // namespace amix
