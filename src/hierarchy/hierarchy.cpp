#include "hierarchy/hierarchy.hpp"

#include <algorithm>
#include <cmath>

#include "congest/primitives.hpp"
#include "graph/traversal.hpp"
#include "obs/trace.hpp"

namespace amix {

std::uint32_t default_beta(std::uint64_t n) {
  const double logn = std::max(2.0, std::log2(static_cast<double>(n)));
  const double loglogn = std::max(1.0, std::log2(logn));
  const auto exponent =
      static_cast<std::uint32_t>(std::ceil(std::sqrt(logn * loglogn)));
  const std::uint64_t beta = 1ULL << std::min<std::uint32_t>(exponent, 6);
  return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(beta, 4, 64));
}

HierarchyShape derive_hierarchy_shape(NodeId n, std::uint64_t nv,
                                      const HierarchyParams& params) {
  HierarchyShape shape;
  const double log2n = std::max(2.0, std::log2(static_cast<double>(n)));

  shape.leaf_target =
      params.leaf_target != 0
          ? params.leaf_target
          : std::max<std::uint32_t>(
                8, static_cast<std::uint32_t>(std::ceil(1.25 * log2n)));
  shape.level_degree =
      params.level_degree != 0
          ? params.level_degree
          : std::max<std::uint32_t>(
                4, static_cast<std::uint32_t>(std::ceil(0.6 * log2n)));
  shape.g0_degree =
      params.g0_out_degree != 0
          ? params.g0_out_degree
          : std::max<std::uint32_t>(
                4, static_cast<std::uint32_t>(std::ceil(0.75 * log2n)));

  // beta: the paper's 2^O(sqrt(log n log log n)), additionally clamped so
  // that every sibling-part pair keeps Theta(1) expected connecting edges
  // at every level (Lemma 3.4's capacity needs ~m log n / beta^2 > 0; with
  // our scaled constants the binding constraints are the G0 density at
  // level 1 and the leaf density at level `depth`).
  std::uint32_t beta = params.beta;
  if (beta == 0) {
    const std::uint32_t wanted = default_beta(n);
    beta = 4;
    const auto fits = [&](std::uint64_t b) {
      const bool c1 = nv * 2 * shape.g0_degree >=
                      12 * b * b;  // level-1 hop edges per sibling pair
      const bool c2 = static_cast<std::uint64_t>(shape.leaf_target) * 2 *
                          shape.level_degree >=
                      8 * b;  // leaf-level hop edges per sibling pair
      return c1 && c2;
    };
    while (2 * beta <= wanted && fits(2ULL * beta)) beta *= 2;
  }
  shape.beta = beta;

  // depth k: the deepest tree whose average leaf still holds >= leaf_target
  // virtual nodes (at least 1 level). Going one level further would leave
  // leaves below the Theta(log n) floor the recursion bottoms out on.
  std::uint32_t depth = 1;
  {
    double parts = static_cast<double>(beta) * beta;
    while (static_cast<double>(nv) / parts >= shape.leaf_target) {
      parts *= beta;
      ++depth;
    }
  }
  shape.depth = depth;

  shape.w_independence =
      static_cast<std::uint32_t>(std::max(8.0, std::ceil(2.0 * log2n)));
  return shape;
}

Hierarchy Hierarchy::build(const Graph& g, const HierarchyParams& params,
                           RoundLedger& ledger) {
  AMIX_CHECK(g.num_nodes() >= 2);
  // Spans bind the parent ledger: each closes AFTER the PhaseScope inside
  // it folds its sub-ledger, so span round deltas equal the phase costs.
  const obs::Span build_span(ledger, "hierarchy/build");
  const std::uint64_t start_rounds = ledger.total();

  Hierarchy h;
  h.g_ = &g;
  h.params_ = params;
  h.vspace_ = std::make_unique<VirtualNodeSpace>(g);
  const Vid nv = h.vspace_->num_virtual();
  const double log2n = std::max(2.0, std::log2(static_cast<double>(g.num_nodes())));

  const HierarchyShape shape = derive_hierarchy_shape(g.num_nodes(), nv, params);
  std::uint32_t level_degree = shape.level_degree;
  std::uint32_t g0_degree = shape.g0_degree;
  const std::uint32_t beta = shape.beta;
  const std::uint32_t depth = shape.depth;

  Rng rng(params.seed);

  // Shared randomness (Section 3.1.2): a leader is elected, samples the
  // Theta(log^2 n) hash-seed bits, and pipeline-broadcasts them over a BFS
  // tree. Charged once per (re)try on the kernel + pipeline formula.
  const auto charge_seed_dissemination = [&](std::uint32_t w_independence) {
    const obs::Span span(ledger, "hierarchy/leader+seed");
    PhaseScope scope(ledger, "leader+seed");
    congest::elect_leader_max_id(g, scope.ledger());
    const BfsTree tree =
        congest::distributed_bfs_tree(g, 0, scope.ledger());
    congest::broadcast_bits(tree, static_cast<std::uint64_t>(w_independence) * 61,
                            128, scope.ledger());
  };

  const std::uint32_t w_independence = shape.w_independence;

  // One set of level-build buffers for the whole build: every level (and
  // every Las Vegas retry) reuses the same walk-start, candidate and
  // dedup storage.
  LevelScratch level_scratch;

  for (std::uint32_t attempt = 0;; ++attempt) {
    AMIX_CHECK_MSG(attempt < params.max_retries,
                   "hierarchy build exceeded max_retries");
    h.stats_.retries = attempt;

    charge_seed_dissemination(w_independence);
    KWiseHash hash(w_independence, rng);
    h.partition_ = std::make_unique<HierarchicalPartition>(
        *h.vspace_, std::move(hash), beta, depth, params.exec);
    if (!h.partition_->balanced(params.balance_slack)) continue;  // resample

    // G0.
    h.overlays_.clear();
    {
      const obs::Span span(ledger, "hierarchy/g0-embed");
      PhaseScope scope(ledger, "g0-embed");
      G0Params g0p;
      g0p.out_degree = g0_degree;
      g0p.walk_slack = std::max(2.0, params.walk_slack);
      g0p.tau_mix = params.tau_mix != 0 ? params.tau_mix : h.stats_.tau_mix;
      g0p.exec = params.exec;
      G0Result g0 = build_g0(*h.vspace_, g0p, rng, scope.ledger());
      h.stats_.tau_mix = g0.tau_mix;  // reuse the measurement on retries
      h.stats_.g0_round_cost = g0.overlay.round_cost();
      h.overlays_.push_back(std::move(g0.overlay));
    }

    // Levels 1..depth.
    bool levels_ok = true;
    h.stats_.emul_parent_rounds.clear();
    h.stats_.level_taus.clear();
    for (std::uint32_t level = 1; level <= depth; ++level) {
      const obs::Span span(ledger, obs::numbered("hierarchy/level-", level));
      PhaseScope scope(ledger, "levels");
      LevelParams lp;
      lp.target_degree = level_degree;
      lp.walk_slack = params.walk_slack;
      lp.tau = params.level_tau;  // 0 = measure the parent overlay
      lp.exec = params.exec;
      LevelResult lr = build_level(h.overlays_[level - 1], *h.partition_,
                                   level, lp, rng, scope.ledger(),
                                   &level_scratch);
      if (!lr.parts_connected) {
        levels_ok = false;
        break;
      }
      h.stats_.emul_parent_rounds.push_back(lr.emul_parent_rounds);
      h.stats_.level_taus.push_back(lr.tau);
      h.overlays_.push_back(std::move(lr.overlay));
    }
    if (!levels_ok) {
      level_degree += (level_degree + 1) / 2;  // thicken and retry
      continue;
    }

    // Portals. The level scratch (walk starts/positions/candidates, sized
    // by nv x walks-per-wave) is dead from here on in this attempt, and at
    // 10^6+ nodes it is a few hundred MB sitting under the portal build's
    // own peak — release it rather than hold it for a rare retry, which
    // simply reallocates.
    level_scratch = LevelScratch{};
    {
      const obs::Span span(ledger, "hierarchy/portals");
      PhaseScope scope(ledger, "portals");
      std::vector<const OverlayComm*> ptrs;
      for (const auto& ov : h.overlays_) ptrs.push_back(&ov);
      h.portals_ = std::make_unique<PortalTable>(*h.partition_, ptrs, rng,
                                                 scope.ledger(),
                                                 /*repair=*/nullptr,
                                                 params.exec,
                                                 params.level_tau,
                                                 params.portal_candidate_cap);
    }
    if (!h.portals_->complete()) {
      // Some sibling pair has no connecting edge: thicken all overlays
      // (level 1 hops over G0, deeper levels over the level overlays).
      level_degree += (level_degree + 1) / 2;
      g0_degree += (g0_degree + 1) / 2;
      continue;
    }
    break;
  }

  h.stats_.depth = depth;
  h.stats_.beta = beta;
  h.stats_.g0_out_degree = g0_degree;   // post-thickening, for delta repair
  h.stats_.level_degree = level_degree;
  h.stats_.deepest_round_cost = h.overlays_.back().round_cost();
  h.stats_.build_rounds = ledger.total() - start_rounds;

  if (obs::recorder() != nullptr) {
    obs::metric_gauge_set("hierarchy/depth", depth);
    obs::metric_gauge_set("hierarchy/beta", beta);
    obs::metric_gauge_set("hierarchy/retries", h.stats_.retries);
    obs::metric_gauge_set("hierarchy/tau_mix", h.stats_.tau_mix);
    obs::metric_gauge_set("portal/table_entries", h.portals_->table_entries());
    obs::metric_gauge_set("portal/total_candidates",
                          h.portals_->total_candidates());
    obs::metric_gauge_set("portal/min_candidates",
                          h.portals_->min_candidates());
    // Lemma 3.1/3.2: each level's emulation overhead (parent-graph rounds
    // per simulated overlay round) vs the log2(n)^2 envelope.
    const auto log2n_u =
        static_cast<std::uint64_t>(std::llround(std::ceil(log2n)));
    const std::uint64_t envelope = log2n_u * log2n_u;
    for (std::size_t l = 0; l < h.stats_.emul_parent_rounds.size(); ++l) {
      const std::uint64_t emul = h.stats_.emul_parent_rounds[l];
      obs::metric_gauge_set(
          obs::numbered("hierarchy/emul_parent_rounds/level-", l + 1), emul);
      obs::metric_gauge_max("lemma3x/emul_over_log2sq_x1000",
                            obs::ratio_x1000(emul, envelope));
    }
  }
  return h;
}

}  // namespace amix
