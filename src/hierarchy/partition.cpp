#include "hierarchy/partition.hpp"

#include <algorithm>

namespace amix {

HierarchicalPartition::HierarchicalPartition(const VirtualNodeSpace& vs,
                                             KWiseHash hash,
                                             std::uint32_t beta,
                                             std::uint32_t depth,
                                             ExecPolicy exec)
    : vs_(&vs), hash_(std::move(hash)), beta_(beta), depth_(depth) {
  AMIX_CHECK(beta >= 2);
  AMIX_CHECK(depth >= 1);
  pow_beta_.resize(depth + 1);
  pow_beta_[0] = 1;
  for (std::uint32_t i = 1; i <= depth; ++i) {
    pow_beta_[i] = pow_beta_[i - 1] * beta;
    AMIX_CHECK_MSG(pow_beta_[i] < (1ULL << 40), "partition tree too large");
  }

  // Leaf hashing is the construction's hot loop (Theta(w) multiply-adds
  // per vid) and a pure function of the vid's key, so it shards freely.
  const Vid n = vs.num_virtual();
  leaf_.resize(n);
  parallel_for_shards(exec, n,
                      [&](std::uint32_t, std::size_t lo, std::size_t hi) {
                        for (std::size_t vid = lo; vid < hi; ++vid) {
                          leaf_[vid] =
                              leaf_of_key(vs.key(static_cast<Vid>(vid)));
                        }
                      });

  // Member order: counting sort by (leaf, vid). Placement in ascending
  // vid order is stable, so order_ matches a comparison sort by
  // (leaf, vid) exactly — at a linear cost instead of n log n.
  const std::uint64_t leaves = pow_beta_[depth];
  leaf_start_.assign(leaves + 1, 0);
  for (Vid vid = 0; vid < n; ++vid) {
    ++leaf_start_[static_cast<std::size_t>(leaf_[vid]) + 1];
  }
  for (std::uint64_t l = 0; l < leaves; ++l) {
    leaf_start_[l + 1] += leaf_start_[l];
  }
  order_.resize(n);
  {
    std::vector<std::uint32_t> cursor(leaf_start_.begin(),
                                      leaf_start_.end() - 1);
    for (Vid vid = 0; vid < n; ++vid) {
      order_[cursor[static_cast<std::size_t>(leaf_[vid])]++] = vid;
    }
  }

  min_leaf_ = n;
  max_leaf_ = 0;
  for (std::uint64_t l = 0; l < leaves; ++l) {
    const std::uint32_t sz = leaf_start_[l + 1] - leaf_start_[l];
    min_leaf_ = std::min(min_leaf_, sz);
    max_leaf_ = std::max(max_leaf_, sz);
  }
}

std::uint64_t HierarchicalPartition::num_parts(std::uint32_t level) const {
  AMIX_CHECK(level <= depth_);
  return pow_beta_[level];
}

std::uint32_t HierarchicalPartition::digit(Vid vid,
                                           std::uint32_t level) const {
  AMIX_CHECK(level >= 1 && level <= depth_);
  return static_cast<std::uint32_t>(
      (leaf_[vid] / pow_beta_[depth_ - level]) % beta_);
}

PartId HierarchicalPartition::leaf_of_key(std::uint64_t key) const {
  return hash_(key) % pow_beta_[depth_];
}

std::pair<std::uint32_t, std::uint32_t> HierarchicalPartition::range(
    std::uint32_t level, PartId part) const {
  AMIX_CHECK(level <= depth_);
  AMIX_CHECK(part < num_parts(level));
  const std::uint64_t first_leaf = part * pow_beta_[depth_ - level];
  const std::uint64_t last_leaf = first_leaf + pow_beta_[depth_ - level];
  return {leaf_start_[first_leaf], leaf_start_[last_leaf]};
}

bool HierarchicalPartition::balanced(double slack) const {
  AMIX_CHECK(slack >= 1.0);
  const double avg = static_cast<double>(vs_->num_virtual()) /
                     static_cast<double>(pow_beta_[depth_]);
  if (avg < 4.0) {
    // Degenerate instances (fewer virtual nodes than ~4 per leaf): empty
    // leaves are unavoidable and harmless — empty parts never hold packets
    // and the portal/level machinery skips them. Only cap the maximum.
    return static_cast<double>(max_leaf_) <= avg * slack + 4.0;
  }
  if (min_leaf_ == 0) return false;
  return static_cast<double>(max_leaf_) <= avg * slack &&
         static_cast<double>(min_leaf_) >= avg / slack;
}

}  // namespace amix
