#pragma once

// Virtual node space (Section 3.1.1): every node v of the base graph
// simulates d_G(v) virtual nodes — one per incident edge port — for a total
// of 2m. Virtual node ids are dense in [0, 2m); the key() of a virtual node
// is the pair (owner id, port) packed into 64 bits, which is what the
// partition hash is applied to and what sources can compute from a
// destination's RoutingAddr (id + degree).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace amix {

using Vid = std::uint32_t;

class VirtualNodeSpace {
 public:
  explicit VirtualNodeSpace(const Graph& g) : g_(&g) {
    offsets_.resize(g.num_nodes() + 1, 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      offsets_[v + 1] = offsets_[v] + g.degree(v);
    }
    owner_.resize(offsets_.back());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (std::uint32_t p = 0; p < g.degree(v); ++p) {
        owner_[offsets_[v] + p] = v;
      }
    }
  }

  Vid num_virtual() const { return static_cast<Vid>(owner_.size()); }

  NodeId owner(Vid vid) const {
    AMIX_DCHECK(vid < owner_.size());
    return owner_[vid];
  }

  std::uint32_t port(Vid vid) const { return vid - offsets_[owner_[vid]]; }

  Vid vid_of(NodeId v, std::uint32_t p) const {
    AMIX_DCHECK(p < g_->degree(v));
    return offsets_[v] + p;
  }

  /// The hash key of a virtual node: computable by anyone who knows the
  /// owner's id and degree (RoutingAddr).
  std::uint64_t key(Vid vid) const { return key_of(owner(vid), port(vid)); }

  static std::uint64_t key_of(NodeId node, std::uint32_t port) {
    return (static_cast<std::uint64_t>(node) << 32) | port;
  }

  const Graph& graph() const { return *g_; }

 private:
  const Graph* g_;
  std::vector<Vid> offsets_;
  std::vector<NodeId> owner_;
};

}  // namespace amix
