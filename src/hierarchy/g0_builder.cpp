#include "hierarchy/g0_builder.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/spectral.hpp"

namespace amix {

G0Result build_g0(const VirtualNodeSpace& vs, const G0Params& params,
                  Rng& rng, RoundLedger& ledger) {
  const Graph& g = vs.graph();
  const Vid nv = vs.num_virtual();
  AMIX_CHECK(nv >= 2);
  BaseComm base(g);

  G0Result res;
  res.out_degree =
      params.out_degree != 0
          ? params.out_degree
          : std::max<std::uint32_t>(
                4, static_cast<std::uint32_t>(std::ceil(
                       0.75 * std::log2(static_cast<double>(g.num_nodes())))));

  if (params.tau_mix != 0) {
    res.tau_mix = params.tau_mix;
  } else {
    Rng probe = rng.split();
    res.tau_mix = mixing_time_sampled(g, WalkKind::kLazy, params.tau_samples,
                                      probe, params.max_tau);
    AMIX_CHECK_MSG(res.tau_mix <= params.max_tau,
                   "base graph did not mix within max_tau");
  }

  const auto walks_per_vid = static_cast<std::uint32_t>(
      std::ceil(params.walk_slack * res.out_degree));

  // Walks start at the owner node of each virtual node (tokens live on the
  // base graph); walk i of vid v occupies starts[v * walks_per_vid + i].
  // The fill is a pure function of vid, so it shards freely.
  std::vector<std::uint32_t> starts(static_cast<std::size_t>(nv) *
                                    walks_per_vid);
  parallel_for_shards(params.exec, nv,
                      [&](std::uint32_t, std::size_t lo, std::size_t hi) {
                        for (std::size_t vid = lo; vid < hi; ++vid) {
                          const NodeId owner = vs.owner(static_cast<Vid>(vid));
                          const std::size_t base_i = vid * walks_per_vid;
                          for (std::uint32_t i = 0; i < walks_per_vid; ++i) {
                            starts[base_i + i] = owner;
                          }
                        }
                      });

  ParallelWalkEngine engine(base, rng.split(), params.exec);
  const auto ends = engine.run(starts, WalkKind::kLazy, res.tau_mix, ledger,
                               &res.forward_stats);
  // Reverse traversal (neighbors learn the walk sources) + second forward
  // traversal (in-edges become known): same schedule cost each.
  ParallelWalkEngine::charge_rerun(res.forward_stats, ledger);
  ParallelWalkEngine::charge_rerun(res.forward_stats, ledger);

  // Out-neighbor selection: the endpoint node assigns each token to a
  // uniform port, making endpoints ~uniform over virtual nodes. Take the
  // first out_degree endpoints distinct from self (multi-edges allowed, as
  // in a directed-pick Erdos-Renyi overlay). The port draw is keyed on
  // (select_key, vid, i) — a pure function of the walk's identity, never
  // of how many draws other vids made — so the selection shards over
  // contiguous vid ranges and the per-shard picks concatenate in shard
  // order into exactly the serial arrival order. Arcs then accumulate
  // straight into CSR form; per-vid arrival order is the port numbering.
  const std::uint64_t select_key = rng();
  const std::uint32_t nshards = params.exec.shards();
  std::vector<std::vector<std::pair<Vid, Vid>>> picked(nshards);
  std::vector<Vid> first_starved(nshards, nv);  // per shard: first bad vid
  parallel_for_shards(
      params.exec, nv, [&](std::uint32_t s, std::size_t lo, std::size_t hi) {
        auto& out = picked[s];
        out.reserve((hi - lo) * res.out_degree);
        for (std::size_t v = lo; v < hi; ++v) {
          const Vid vid = static_cast<Vid>(v);
          std::uint32_t taken = 0;
          for (std::uint32_t i = 0;
               i < walks_per_vid && taken < res.out_degree; ++i) {
            const NodeId land = ends[v * walks_per_vid + i];
            const std::uint32_t port = static_cast<std::uint32_t>(
                keyed_below(select_key, vid, i, g.degree(land)));
            const Vid nbr = vs.vid_of(land, port);
            if (nbr == vid) continue;
            out.emplace_back(vid, nbr);
            ++taken;
          }
          if (taken < res.out_degree / 2 && first_starved[s] == nv) {
            first_starved[s] = vid;
          }
        }
      });
  for (std::uint32_t s = 0; s < nshards; ++s) {
    AMIX_CHECK_MSG(first_starved[s] == nv,
                   "G0: too many self-landings; increase walk_slack");
  }
  CsrBuilder builder(nv);
  for (std::uint32_t s = 0; s < nshards; ++s) {
    for (const auto& [vid, nbr] : picked[s]) {
      builder.add_edge(vid, nbr);  // edge becomes undirected
    }
  }

  // Emulation-cost probe: a fresh batch shaped like the selected walks
  // (out_degree per vid, same length) measured on a scratch ledger; one
  // G0 round re-runs those walks forward and backward. The probe batch is
  // never larger than the selection batch (out_degree <= walks_per_vid),
  // so it refills the `starts` buffer in place — at 10^7 virtual nodes
  // that second nv * walks-sized allocation was the G0 build's largest.
  RoundLedger scratch;
  starts.resize(static_cast<std::size_t>(nv) * res.out_degree);
  parallel_for_shards(params.exec, nv,
                      [&](std::uint32_t, std::size_t lo, std::size_t hi) {
                        for (std::size_t vid = lo; vid < hi; ++vid) {
                          const NodeId owner = vs.owner(static_cast<Vid>(vid));
                          const std::size_t base_i = vid * res.out_degree;
                          for (std::uint32_t i = 0; i < res.out_degree; ++i) {
                            starts[base_i + i] = owner;
                          }
                        }
                      });
  WalkStats probe_stats;
  ParallelWalkEngine probe_engine(base, rng.split(), params.exec);
  probe_engine.run(starts, WalkKind::kLazy, res.tau_mix, scratch,
                   &probe_stats);
  const std::uint64_t round_cost = 2 * std::max<std::uint64_t>(
                                           1, probe_stats.graph_rounds);

  res.overlay = std::move(builder).finish(round_cost);
  return res;
}

}  // namespace amix
