#include "hierarchy/portals.hpp"

#include <algorithm>
#include <limits>

#include "randwalk/mixing.hpp"

namespace amix {

PortalTable::PortalTable(const HierarchicalPartition& part,
                         const std::vector<const OverlayComm*>& overlays,
                         Rng& rng, RoundLedger& ledger,
                         const PortalRepairScope* repair, ExecPolicy exec,
                         std::uint32_t tau_override,
                         std::uint32_t candidate_cap)
    : part_(&part), overlays_(overlays) {
  AMIX_CHECK(overlays_.size() == part.depth() + 1);
  AMIX_CHECK(repair == nullptr || repair->affected.size() == part.depth() + 1);
  AMIX_CHECK_MSG(part.beta() <= 64, "portal table assumes beta <= 64");
  const std::uint32_t nv = overlays_[0]->num_nodes();
  const std::uint32_t nshards = exec.shards();

  // Candidate sets from the parent-overlay adjacency. The per-vid scan is
  // pure (partition lookups + CSR reads), so each level shards over
  // contiguous vid ranges into per-shard (slot key, u) records, appended
  // in shard order into one flat vector; one sort by (key, u) + unique
  // per level then replaces the old per-slot sort passes. The sorted
  // order is a pure function of the record multiset, so the table is
  // independent of the shard count — and because every slot key carries
  // its level, grouping level by level (reusing one buffer) builds the
  // same table as the old whole-build accumulation while keeping the
  // transient footprint at max-per-level instead of the sum over levels
  // (the difference is ~depth x nv x degree records at 10^6+ nodes).
  std::vector<std::pair<std::uint64_t, Vid>> pairs;
  std::vector<std::vector<std::pair<std::uint64_t, Vid>>> shard_pairs(nshards);
  std::vector<std::pair<std::uint64_t, Vid>> ranked;  // cap selection scratch
  for (std::uint32_t level = 1; level <= part.depth(); ++level) {
    const OverlayComm& hop_graph = *overlays_[level - 1];
    parallel_for_shards(
        exec, nv, [&](std::uint32_t s, std::size_t lo, std::size_t hi) {
          auto& out = shard_pairs[s];
          out.clear();
          for (std::size_t v = lo; v < hi; ++v) {
            const Vid u = static_cast<Vid>(v);
            const PartId pu = part.part_of(u, level);
            const PartId parent_u =
                level == 1 ? 0 : part.part_of(u, level - 1);
            for (const Vid w : hop_graph.neighbors(u)) {
              const PartId pw = part.part_of(w, level);
              if (pw == pu) continue;
              const PartId parent_w =
                  level == 1 ? 0 : part.part_of(w, level - 1);
              if (parent_w != parent_u) continue;
              out.emplace_back(slot_key(level, pu, part.child_index(pw)), u);
            }
          }
        });
    pairs.clear();
    for (std::uint32_t s = 0; s < nshards; ++s) {
      pairs.insert(pairs.end(), shard_pairs[s].begin(), shard_pairs[s].end());
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    for (std::size_t i = 0; i < pairs.size();) {
      std::size_t j = i;
      while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
      const std::uint64_t key = pairs[i].first;
      std::vector<Vid>& vec = candidates_[key];
      if (candidate_cap != 0 && j - i > candidate_cap) {
        // Hashed subsample: keep the `cap` candidates with the smallest
        // keyed hash — a deterministic pseudo-random subset, independent
        // of vid magnitude (a plain prefix would bias toward low vids).
        // The kept vids are stored sorted, like an uncapped slot.
        ranked.clear();
        ranked.reserve(j - i);
        for (std::size_t k = i; k < j; ++k) {
          ranked.emplace_back(keyed_u64(key, 0x706f7274616cULL,
                                        pairs[k].second),
                              pairs[k].second);
        }
        std::nth_element(ranked.begin(), ranked.begin() + candidate_cap,
                         ranked.end());
        ranked.resize(candidate_cap);
        vec.reserve(candidate_cap);
        for (const auto& [h, u] : ranked) vec.push_back(u);
        std::sort(vec.begin(), vec.end());
      } else {
        vec.reserve(j - i);
        for (std::size_t k = i; k < j; ++k) vec.push_back(pairs[k].second);
      }
      i = j;
    }
  }

  // Completeness + min size over all ordered sibling pairs.
  min_candidates_ = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t level = 1; level <= part.depth(); ++level) {
    for (PartId a = 0; a < part.num_parts(level); ++a) {
      if (part.part_size(level, a) == 0) continue;
      const PartId parent = a / part.beta();
      for (std::uint32_t c = 0; c < part.beta(); ++c) {
        const PartId b = parent * part.beta() + c;
        if (b == a) continue;
        if (part.part_size(level, b) == 0) continue;
        const auto it = candidates_.find(slot_key(level, a, c));
        const std::uint32_t sz =
            it == candidates_.end()
                ? 0
                : static_cast<std::uint32_t>(it->second.size());
        min_candidates_ = std::min(min_candidates_, sz);
        if (sz == 0) complete_ = false;
      }
    }
  }
  if (min_candidates_ == std::numeric_limits<std::uint32_t>::max()) {
    min_candidates_ = 0;
  }

  // Lemma 3.3 construction charge: per level, a beta-walks-per-node batch
  // on the level-l overlay, once per target sibling, forward and reverse.
  // Under a repair scope only the affected vids re-run their batches —
  // everyone else's portals (candidate hashes over unchanged candidate
  // sets) are untouched, so no simulated work happens for them.
  std::vector<std::uint32_t> starts;
  std::vector<std::size_t> offsets;
  for (std::uint32_t level = 1; level <= part.depth(); ++level) {
    const OverlayComm& ov = *overlays_[level];
    if (ov.num_arcs() == 0) continue;  // degenerate: all parts singletons
    if (repair != nullptr && repair->affected[level].empty()) continue;
    std::uint32_t tau = tau_override;
    if (tau == 0) {
      Rng probe = rng.split();
      tau = std::min<std::uint32_t>(
          comm_mixing_time_sampled(ov, WalkKind::kRegular2Delta, 2, probe,
                                   400),
          400);
    }
    if (repair == nullptr) {
      // Full-build batch: beta walkers per nonzero-degree vid, assembled
      // in parallel via per-vid offsets (a pure function of the overlay
      // degrees). The buffers persist across levels.
      offsets.resize(static_cast<std::size_t>(nv) + 1);
      offsets[0] = 0;
      for (Vid v = 0; v < nv; ++v) {
        offsets[v + 1] = offsets[v] + (ov.degree(v) == 0 ? 0 : part.beta());
      }
      starts.resize(offsets[nv]);
      parallel_for_shards(exec, nv,
                          [&](std::uint32_t, std::size_t lo, std::size_t hi) {
                            for (std::size_t v = lo; v < hi; ++v) {
                              std::fill(starts.begin() + offsets[v],
                                        starts.begin() + offsets[v + 1],
                                        static_cast<std::uint32_t>(v));
                            }
                          });
    } else {
      starts.clear();
      starts.reserve(repair->affected[level].size() * part.beta());
      for (const Vid v : repair->affected[level]) {
        if (ov.degree(v) == 0) continue;
        for (std::uint32_t i = 0; i < part.beta(); ++i) starts.push_back(v);
      }
    }
    if (starts.empty()) continue;
    RoundLedger scratch;
    WalkStats stats;
    ParallelWalkEngine engine(ov, rng.split(), exec);
    engine.run(starts, WalkKind::kRegular2Delta, std::max(tau, 1u), scratch,
               &stats);
    if (repair == nullptr) {
      // One batch per target part, each run forward and reverse. The full
      // build saturates the overlay (beta walkers per node), so the beta
      // per-target batches serialize.
      ledger.charge(2ULL * stats.base_rounds * part.beta());
    } else {
      // A repair batch is sparse: `starts` already carries the beta
      // per-target walkers of the few affected vids, and their merged
      // congestion stays below one full-density build batch, so all beta
      // targets share a single tau-step run — forward and reverse.
      ledger.charge(2ULL * stats.base_rounds);
    }
  }
}

std::uint64_t PortalTable::digest() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(candidates_.size());
  for (const auto& [key, vids] : candidates_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::uint64_t h = splitmix64(0x706f7274616c7364ULL ^ keys.size());
  for (const std::uint64_t key : keys) {
    h = splitmix64(h ^ key);
    for (const Vid v : candidates_.at(key)) h = splitmix64(h ^ v);
  }
  return h;
}

bool PortalTable::has_candidates(std::uint32_t level, PartId part_a,
                                 std::uint32_t target_child) const {
  const auto it = candidates_.find(slot_key(level, part_a, target_child));
  return it != candidates_.end() && !it->second.empty();
}

Vid PortalTable::portal_for(Vid u, std::uint32_t level,
                            std::uint32_t target_child) const {
  const PartId pa = part_->part_of(u, level);
  const auto it = candidates_.find(slot_key(level, pa, target_child));
  AMIX_CHECK_MSG(it != candidates_.end() && !it->second.empty(),
                 "no portal candidates for this sibling pair");
  const std::uint64_t h = splitmix64(
      (static_cast<std::uint64_t>(u) << 24) ^ (level << 8) ^ target_child);
  return it->second[h % it->second.size()];
}

std::pair<Vid, std::uint32_t> PortalTable::hop_arc(
    Vid portal, std::uint32_t level, std::uint32_t target_child) const {
  const OverlayComm& hop_graph = *overlays_[level - 1];
  const PartId parent =
      level == 1 ? 0 : part_->part_of(portal, level - 1);
  // Collect qualifying arcs (neighbors inside the target sibling part).
  std::vector<std::uint32_t> ports;
  const auto nbrs = hop_graph.neighbors(portal);
  for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
    const Vid w = nbrs[p];
    if (part_->part_of(w, level) ==
            parent * part_->beta() + target_child &&
        (level == 1 || part_->part_of(w, level - 1) == parent)) {
      ports.push_back(p);
    }
  }
  AMIX_CHECK_MSG(!ports.empty(), "hop_arc: portal does not qualify");
  const std::uint64_t h = splitmix64(
      (static_cast<std::uint64_t>(portal) << 24) ^ (level << 8) ^
      target_child ^ 0x9e3779b9ULL);
  const std::uint32_t p = ports[h % ports.size()];
  return {nbrs[p], p};
}

}  // namespace amix
