#include "hierarchy/portals.hpp"

#include <algorithm>
#include <limits>

#include "randwalk/mixing.hpp"

namespace amix {

PortalTable::PortalTable(const HierarchicalPartition& part,
                         const std::vector<const OverlayComm*>& overlays,
                         Rng& rng, RoundLedger& ledger,
                         const PortalRepairScope* repair)
    : part_(&part), overlays_(overlays) {
  AMIX_CHECK(overlays_.size() == part.depth() + 1);
  AMIX_CHECK(repair == nullptr || repair->affected.size() == part.depth() + 1);
  AMIX_CHECK_MSG(part.beta() <= 64, "portal table assumes beta <= 64");
  const std::uint32_t nv = overlays_[0]->num_nodes();

  // Candidate sets from the parent-overlay adjacency.
  for (std::uint32_t level = 1; level <= part.depth(); ++level) {
    const OverlayComm& hop_graph = *overlays_[level - 1];
    for (Vid u = 0; u < nv; ++u) {
      const PartId pu = part.part_of(u, level);
      const PartId parent_u = level == 1 ? 0 : part.part_of(u, level - 1);
      for (const Vid w : hop_graph.neighbors(u)) {
        const PartId pw = part.part_of(w, level);
        if (pw == pu) continue;
        const PartId parent_w = level == 1 ? 0 : part.part_of(w, level - 1);
        if (parent_w != parent_u) continue;
        candidates_[slot_key(level, pu, part.child_index(pw))].push_back(u);
      }
    }
  }
  for (auto& [key, vec] : candidates_) {
    std::sort(vec.begin(), vec.end());
    vec.erase(std::unique(vec.begin(), vec.end()), vec.end());
  }

  // Completeness + min size over all ordered sibling pairs.
  min_candidates_ = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t level = 1; level <= part.depth(); ++level) {
    for (PartId a = 0; a < part.num_parts(level); ++a) {
      if (part.part_size(level, a) == 0) continue;
      const PartId parent = a / part.beta();
      for (std::uint32_t c = 0; c < part.beta(); ++c) {
        const PartId b = parent * part.beta() + c;
        if (b == a) continue;
        if (part.part_size(level, b) == 0) continue;
        const auto it = candidates_.find(slot_key(level, a, c));
        const std::uint32_t sz =
            it == candidates_.end()
                ? 0
                : static_cast<std::uint32_t>(it->second.size());
        min_candidates_ = std::min(min_candidates_, sz);
        if (sz == 0) complete_ = false;
      }
    }
  }
  if (min_candidates_ == std::numeric_limits<std::uint32_t>::max()) {
    min_candidates_ = 0;
  }

  // Lemma 3.3 construction charge: per level, a beta-walks-per-node batch
  // on the level-l overlay, once per target sibling, forward and reverse.
  // Under a repair scope only the affected vids re-run their batches —
  // everyone else's portals (candidate hashes over unchanged candidate
  // sets) are untouched, so no simulated work happens for them.
  for (std::uint32_t level = 1; level <= part.depth(); ++level) {
    const OverlayComm& ov = *overlays_[level];
    if (ov.num_arcs() == 0) continue;  // degenerate: all parts singletons
    if (repair != nullptr && repair->affected[level].empty()) continue;
    Rng probe = rng.split();
    const std::uint32_t tau = std::min<std::uint32_t>(
        comm_mixing_time_sampled(ov, WalkKind::kRegular2Delta, 2, probe, 400),
        400);
    std::vector<std::uint32_t> starts;
    if (repair == nullptr) {
      starts.reserve(static_cast<std::size_t>(nv) * part.beta());
      for (Vid v = 0; v < nv; ++v) {
        if (ov.degree(v) == 0) continue;
        for (std::uint32_t i = 0; i < part.beta(); ++i) starts.push_back(v);
      }
    } else {
      starts.reserve(repair->affected[level].size() * part.beta());
      for (const Vid v : repair->affected[level]) {
        if (ov.degree(v) == 0) continue;
        for (std::uint32_t i = 0; i < part.beta(); ++i) starts.push_back(v);
      }
    }
    if (starts.empty()) continue;
    RoundLedger scratch;
    WalkStats stats;
    ParallelWalkEngine engine(ov, rng.split());
    engine.run(starts, WalkKind::kRegular2Delta, std::max(tau, 1u), scratch,
               &stats);
    if (repair == nullptr) {
      // One batch per target part, each run forward and reverse. The full
      // build saturates the overlay (beta walkers per node), so the beta
      // per-target batches serialize.
      ledger.charge(2ULL * stats.base_rounds * part.beta());
    } else {
      // A repair batch is sparse: `starts` already carries the beta
      // per-target walkers of the few affected vids, and their merged
      // congestion stays below one full-density build batch, so all beta
      // targets share a single tau-step run — forward and reverse.
      ledger.charge(2ULL * stats.base_rounds);
    }
  }
}

bool PortalTable::has_candidates(std::uint32_t level, PartId part_a,
                                 std::uint32_t target_child) const {
  const auto it = candidates_.find(slot_key(level, part_a, target_child));
  return it != candidates_.end() && !it->second.empty();
}

Vid PortalTable::portal_for(Vid u, std::uint32_t level,
                            std::uint32_t target_child) const {
  const PartId pa = part_->part_of(u, level);
  const auto it = candidates_.find(slot_key(level, pa, target_child));
  AMIX_CHECK_MSG(it != candidates_.end() && !it->second.empty(),
                 "no portal candidates for this sibling pair");
  const std::uint64_t h = splitmix64(
      (static_cast<std::uint64_t>(u) << 24) ^ (level << 8) ^ target_child);
  return it->second[h % it->second.size()];
}

std::pair<Vid, std::uint32_t> PortalTable::hop_arc(
    Vid portal, std::uint32_t level, std::uint32_t target_child) const {
  const OverlayComm& hop_graph = *overlays_[level - 1];
  const PartId parent =
      level == 1 ? 0 : part_->part_of(portal, level - 1);
  // Collect qualifying arcs (neighbors inside the target sibling part).
  std::vector<std::uint32_t> ports;
  const auto nbrs = hop_graph.neighbors(portal);
  for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
    const Vid w = nbrs[p];
    if (part_->part_of(w, level) ==
            parent * part_->beta() + target_child &&
        (level == 1 || part_->part_of(w, level - 1) == parent)) {
      ports.push_back(p);
    }
  }
  AMIX_CHECK_MSG(!ports.empty(), "hop_arc: portal does not qualify");
  const std::uint64_t h = splitmix64(
      (static_cast<std::uint64_t>(portal) << 24) ^ (level << 8) ^
      target_child ^ 0x9e3779b9ULL);
  const std::uint32_t p = ports[h % ports.size()];
  return {nbrs[p], p};
}

}  // namespace amix
