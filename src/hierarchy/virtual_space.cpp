#include "hierarchy/virtual_space.hpp"

// Header-only; anchor translation unit.
