#pragma once

// The full hierarchical routing structure of Section 3.1: G0 + the
// recursive levels + the pseudo-random partition + the portal tables,
// built bottom-up with every stage's cost charged to the ledger.
//
// Defaults follow the paper with scaled constants (DESIGN.md Section 4):
//   beta  = 2^ceil(sqrt(log2 n * log2 log2 n))  (clamped to [4, 64])
//   depth = ceil(log_beta(2m / leaf_target))
//   per-level degree, G0 degree ~ Theta(log n) with small multipliers.
//
// The build is Las Vegas: the partition balance (P1) and portal
// completeness checks are verified, and the build retries with a fresh
// hash seed / +50% degrees when they fail, counting retries.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "congest/round_ledger.hpp"
#include "hierarchy/g0_builder.hpp"
#include "hierarchy/level_builder.hpp"
#include "hierarchy/partition.hpp"
#include "hierarchy/portals.hpp"
#include "hierarchy/virtual_space.hpp"
#include "util/thread_pool.hpp"

namespace amix {

struct HierarchyParams {
  std::uint32_t beta = 0;         // 0 = auto (the paper's 2^~sqrt(log log log))
  std::uint32_t leaf_target = 0;  // 0 = auto: max(8, ceil(1.25 * log2 n))
  std::uint32_t g0_out_degree = 0;     // 0 = auto
  std::uint32_t level_degree = 0;      // 0 = auto: max(4, ceil(0.6 * log2 n))
  double walk_slack = 1.5;
  double balance_slack = 6.0;     // P1 check tolerance on leaf sizes
  std::uint32_t tau_mix = 0;      // 0 = measure on the base graph
  /// Walk length for the level waves and the Lemma 3.3 portal batches.
  /// 0 (default) measures the mixing time of each parent overlay, the
  /// paper-faithful setting. A nonzero pin skips those measurements and
  /// walks exactly this many steps — the scale-bench profile (DESIGN.md
  /// §15.4): endpoint distributions get less uniform, but every
  /// correctness gate (balance, per-part connectivity, portal
  /// completeness, MST verification) still applies. Changes the built
  /// hierarchy, so it IS folded into engine::params_fingerprint.
  std::uint32_t level_tau = 0;
  /// Cap on each portal slot's stored candidate list. 0 (default) keeps
  /// the exact candidate set. A nonzero cap keeps a deterministic hashed
  /// subsample per slot — the portal table is the asymptotically largest
  /// structure of the build (O(nv * degree * depth) vids), and Lemma
  /// 3.3's load-balance argument only needs Omega(log n) independent
  /// candidates per slot, so the scale profile (DESIGN.md §15.4) caps at
  /// 64. Changes portal_for's choices, so it IS folded into
  /// engine::params_fingerprint.
  std::uint32_t portal_candidate_cap = 0;
  std::uint32_t max_retries = 6;
  std::uint64_t seed = 0x517cc1b727220a95ULL;
  /// Shard policy for the build's walk engines, partition hashing and
  /// overlay/portal assembly sweeps. Builds are bit-identical at any
  /// setting (keyed draws + order-fixed merges), so this field is
  /// deliberately EXCLUDED from engine::params_fingerprint — cache keys
  /// must not depend on thread count.
  ExecPolicy exec;
};

/// The paper's beta: 2^O(sqrt(log n log log n)), concretely
/// 2^ceil(sqrt(log2 n * log2 log2 n)) clamped to [4, 64] for simulation.
std::uint32_t default_beta(std::uint64_t n);

/// Everything Hierarchy::build derives from (n, nv = 2m) before its Las
/// Vegas loop can thicken degrees. Exposed so the delta-repair path can
/// detect when a mutation changes the tree shape: a different beta or
/// depth means the partition tree itself changed, which repair cannot
/// patch — that is a rebuild, not a repair.
struct HierarchyShape {
  std::uint32_t leaf_target = 0;
  std::uint32_t level_degree = 0;  // initial, before retry thickening
  std::uint32_t g0_degree = 0;     // initial, before retry thickening
  std::uint32_t beta = 0;
  std::uint32_t depth = 0;
  std::uint32_t w_independence = 0;
};

HierarchyShape derive_hierarchy_shape(NodeId n, std::uint64_t nv,
                                      const HierarchyParams& params);

struct HierarchyStats {
  std::uint32_t retries = 0;
  std::uint32_t tau_mix = 0;      // base-graph mixing time used
  std::uint32_t depth = 0;
  std::uint32_t beta = 0;
  std::uint64_t build_rounds = 0;  // total charged construction rounds
  std::vector<std::uint64_t> emul_parent_rounds;  // per level 1..depth
  std::uint64_t g0_round_cost = 0;
  std::uint64_t deepest_round_cost = 0;
  // Repair context (recorded by build, consumed by apply_delta):
  std::uint32_t g0_out_degree = 0;  // final (post-thickening) G0 out-degree
  std::uint32_t level_degree = 0;   // final per-level target degree
  std::vector<std::uint32_t> level_taus;  // walk length per level 1..depth
  // Repair history:
  std::uint32_t repairs = 0;        // delta repairs applied in place
  std::uint64_t repair_rounds = 0;  // total charged repair rounds
};

/// Slot-level summary of a topology mutation, as the hierarchy sees it:
/// each changed edge adds/removes one (node, port) virtual-node slot per
/// endpoint, and surviving slots whose port shifted may land in a
/// different leaf ("moved").
struct HierarchyDelta {
  std::uint32_t edges_removed = 0;
  std::uint32_t edges_added = 0;
  std::uint32_t slots_removed = 0;
  std::uint32_t slots_added = 0;
  std::uint32_t slots_moved = 0;  // surviving slots whose leaf changed
};

/// Result of Hierarchy::apply_delta. When `applied` is false the
/// hierarchy is untouched (still valid for the OLD graph) and `reason`
/// names the gate that failed; rounds charged before the repair aborted
/// stand — the simulated network did that work before giving up.
struct RepairOutcome {
  bool applied = false;
  const char* reason = "";
  HierarchyDelta delta;
  std::uint64_t repair_rounds = 0;  // charged to the ledger by this call
};

class Hierarchy {
 public:
  /// Build everything; charges construction rounds (tagged by phase:
  /// "leader+seed", "g0-embed", "levels", "portals") to `ledger`.
  static Hierarchy build(const Graph& g, const HierarchyParams& params,
                         RoundLedger& ledger);

  const Graph& graph() const { return *g_; }
  const VirtualNodeSpace& vspace() const { return *vspace_; }
  const HierarchicalPartition& partition() const { return *partition_; }
  const PortalTable& portals() const { return *portals_; }

  std::uint32_t depth() const { return partition_->depth(); }
  std::uint32_t beta() const { return partition_->beta(); }

  /// Level-l overlay, l in [0, depth]; overlay(0) is G0.
  const OverlayComm& overlay(std::uint32_t level) const {
    AMIX_CHECK(level < overlays_.size());
    return overlays_[level];
  }

  const HierarchyStats& stats() const { return stats_; }

  /// Incrementally repair this hierarchy so it describes `new_g` (the old
  /// graph with an edge delta applied), rebuilding only affected G0 slots,
  /// overlay subtrees and portal slots, and charging only the repaired
  /// rounds to `ledger` (phases "delta/announce", "delta/g0",
  /// "delta/levels", "delta/portals"). `new_g` must outlive the hierarchy.
  ///
  /// Falls back (returns applied == false, hierarchy untouched and still
  /// valid for the OLD graph) when the mutation is not locally repairable:
  /// node-count change, disconnection, a beta/depth shape change, a
  /// partition imbalance after re-keying, or damage too wide to be worth
  /// patching. Callers then rebuild from scratch.
  RepairOutcome apply_delta(const Graph& new_g, RoundLedger& ledger);

 private:
  Hierarchy() = default;

  const Graph* g_ = nullptr;
  std::unique_ptr<VirtualNodeSpace> vspace_;
  std::unique_ptr<HierarchicalPartition> partition_;
  std::vector<OverlayComm> overlays_;
  std::unique_ptr<PortalTable> portals_;
  HierarchyStats stats_;
  HierarchyParams params_;  // as passed to build (for repair + oracle)
};

}  // namespace amix
