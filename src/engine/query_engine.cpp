#include "engine/query_engine.hpp"

#include <utility>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace amix {

std::uint32_t QueryEngine::submit(QuerySpec spec) {
  pending_.push_back(std::move(spec));
  return static_cast<std::uint32_t>(pending_.size() - 1);
}

engine::HierarchyCache::PatchResult QueryEngine::apply_delta(
    const Graph& new_g, const GraphDelta* delta) {
  std::optional<std::uint64_t> hint;
  if (delta != nullptr) {
    hint = engine::fingerprint_after_delta(engine::graph_fingerprint(*graph_),
                                           *graph_, *delta);
  }
  const auto res = cache_.apply_delta(*graph_, new_g, hint);
  graph_ = &new_g;
  return res;
}

engine::QueryExecution QueryEngine::run_one(
    const engine::CacheEntry& entry, const QuerySpec& spec,
    std::uint32_t index, congest::CongestInstrument* ambient) const {
  const engine::QueryFaults faults{&opt_.fault_factory, opt_.fault_seed};
  return engine::execute_query(entry.graph(), entry.hierarchy(), spec, index,
                               ambient, opt_.fault_factory ? &faults : nullptr);
}

BatchReport QueryEngine::run() {
  BatchReport out;
  RoundLedger bledger;
  obs::Span epoch_span(bledger, obs::numbered("engine/epoch-", epoch_));

  const auto lk = cache_.get_or_build(*graph_, opt_.hierarchy);
  const engine::CacheEntry& entry = *lk.entry;
  out.cache_hits = lk.built ? 0 : 1;
  out.cache_misses = lk.built ? 1 : 0;
  if (lk.built && entry.build_rounds() > 0) {
    bledger.charge("hierarchy-build", entry.build_rounds());
    out.hierarchy_build_rounds = entry.build_rounds();
  }

  const std::size_t n = pending_.size();
  std::vector<engine::QueryExecution> execs(n);
  congest::CongestInstrument* ambient = congest::instrument();
  // Ambient instruments and recorders are stateful and thread-local:
  // capture serially on this thread so they observe every event, in a
  // deterministic order. Otherwise queries fan out over the pool; each
  // lands in execs[] by submission index, so the merge is ordered and the
  // result is identical at any thread count.
  if (ambient != nullptr || obs::recorder() != nullptr ||
      !opt_.exec.parallel()) {
    for (std::size_t i = 0; i < n; ++i) {
      execs[i] = run_one(entry, pending_[i],
                         static_cast<std::uint32_t>(i), ambient);
    }
  } else {
    parallel_for_shards(opt_.exec, n,
                        [&](std::uint32_t, std::size_t begin,
                            std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                            execs[i] = run_one(
                                entry, pending_[i],
                                static_cast<std::uint32_t>(i), nullptr);
                          }
                        });
  }

  engine::fold_batch(std::move(execs), out);
  if (out.multiplexed_transport_rounds > 0) {
    bledger.charge("engine/transport", out.multiplexed_transport_rounds);
  }
  if (out.serialized_rounds > 0) {
    bledger.charge("engine/serialized", out.serialized_rounds);
  }

  out.engine_rounds = bledger.total();
  out.standalone_total_rounds =
      out.standalone_query_rounds + n * entry.build_rounds();
  AMIX_CHECK(out.engine_rounds == out.hierarchy_build_rounds +
                                      out.multiplexed_transport_rounds +
                                      out.serialized_rounds);

  pending_.clear();
  ++epoch_;
  return out;
}

}  // namespace amix
