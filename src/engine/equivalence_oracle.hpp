#pragma once

// Full-rebuild equivalence oracle: the correctness backbone of delta
// repair. A repaired hierarchy is a different object from the one a
// fresh Hierarchy::build would produce (different randomness, different
// overlay edges), so "repair is correct" cannot mean bit-identity. What
// it must mean — and what this oracle enforces — is that the repaired
// structure is *answer-equivalent*: every query a caller can ask gives
// the same answer as on a hierarchy built from scratch on the mutated
// graph, and both stay inside the paper's bound envelopes.
//
// Checked per probe (both hierarchies, under their own trace recorders):
//   * MST: the edge set element-wise equals the fresh build's AND passes
//     the exact Kruskal verifier (distinct weights => unique MST, so
//     element-wise equality is the strongest possible check);
//   * routing: a full permutation instance delivers every packet;
//   * portals: completeness (every sibling pair reachable);
//   * partition: P1 balance on the mutated virtual-node space;
//   * observability: zero BoundChecker violations on either side.
//
// HierarchyCache runs this (sampled) behind AMIX_CHECK after repairs;
// tests/test_incremental_hierarchy.cpp sweeps it across a churn corpus.

#include <cstdint>
#include <string>

#include "hierarchy/hierarchy.hpp"

namespace amix::engine {

struct EquivalenceReport {
  bool ok = false;
  std::string detail;  // empty when ok; first failed check otherwise
  std::uint64_t mst_weight_repaired = 0;
  std::uint64_t mst_weight_rebuilt = 0;
  std::uint64_t rebuild_rounds = 0;  // what the fresh build charged
  std::uint64_t bound_violations = 0;  // both sides combined
};

/// Build a fresh hierarchy on `repaired.graph()` with `params` and probe
/// both for answer equivalence. `probe_seed` keys the probe workload
/// (weights, routing instance, query seeds); the same seed reproduces
/// the same probe exactly.
EquivalenceReport check_full_rebuild_equivalence(const Hierarchy& repaired,
                                                 const HierarchyParams& params,
                                                 std::uint64_t probe_seed);

}  // namespace amix::engine
