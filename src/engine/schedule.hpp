#pragma once

// Token-schedule capture and round-multiplexed merging.
//
// The engine executes every query through the unmodified algorithm
// classes; a ScheduleProbe sits on the congest instrumentation seam and
// records the query's transport schedule — one StepRecord per committed
// TokenTransport step, holding the per-arc slot loads of that step and
// the graph it ran on. The query itself is charged exactly as standalone
// (its own RoundLedger sees every commit unchanged); the probe only
// *observes*.
//
// multiplex() then merges the captured schedules the way a CONGEST
// network would actually carry them: queries are independent, so one
// round of a shared communication graph can carry traffic from several
// queries at once, up to the per-arc capacity of one message per arc per
// round. Steps are co-scheduled head-of-line across queries when they run
// on the SAME shared graph (the base network or a shared hierarchy
// overlay); the merged step needs max over arcs of the SUMMED loads
// rounds — at least any member's standalone cost, at most the sum. Steps
// on private graphs (anything the resolver cannot identify as shared)
// never share capacity and are serialized, which can only over-charge the
// batch, never under-charge it. See DESIGN.md §11.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "congest/comm_graph.hpp"
#include "congest/instrument.hpp"
#include "hierarchy/hierarchy.hpp"

namespace amix::engine {

/// Graph key of steps that cannot share rounds with other queries.
inline constexpr std::uint32_t kUnsharedKey = 0xffffffffu;

/// One committed TokenTransport step of one query.
struct StepRecord {
  std::uint32_t graph_key = kUnsharedKey;  // shared-graph id, or kUnsharedKey
  std::uint32_t cost = 0;                  // graph rounds charged (max load)
  std::uint64_t round_cost = 1;            // base rounds per graph round
  /// Per-arc slot loads of the step (token + fault slots), sorted by arc
  /// index — deterministic regardless of move order.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> arc_loads;
};

/// A query's full transport schedule, in commit order.
struct QuerySchedule {
  std::vector<StepRecord> steps;
  /// Sum over steps of cost * round_cost — the base rounds the query's
  /// transports charged its ledger (its non-transport charges are the
  /// remainder of the ledger total).
  std::uint64_t transport_base_rounds = 0;
  /// Total arc slots consumed (token moves + fault slots).
  std::uint64_t token_slots = 0;
};

/// Maps CommGraphs to stable shared-graph keys. The base network and the
/// shared hierarchy's overlays are the graphs every query communicates
/// on; anything else (per-query scratch graphs) stays private.
class GraphKeyResolver {
 public:
  GraphKeyResolver(const Graph* base, const Hierarchy* h)
      : base_(base), h_(h) {}

  /// 0 for the base network, 1 + level for hierarchy overlays,
  /// kUnsharedKey otherwise.
  std::uint32_t resolve(const CommGraph& g) const {
    if (const auto* bc = dynamic_cast<const BaseComm*>(&g);
        bc != nullptr && &bc->graph() == base_) {
      return 0;
    }
    if (h_ != nullptr) {
      for (std::uint32_t l = 0; l <= h_->depth(); ++l) {
        if (&g == &h_->overlay(l)) return 1 + l;
      }
    }
    return kUnsharedKey;
  }

 private:
  const Graph* base_;
  const Hierarchy* h_;
};

/// CongestInstrument that records a query's StepRecords while forwarding
/// every callback to an optional inner instrument (per-query fault plans,
/// the harness's audit/trace chain). Loads include fault-injected slots,
/// matching what TokenTransport charges.
class ScheduleProbe final : public congest::CongestInstrument {
 public:
  ScheduleProbe(const GraphKeyResolver& resolver,
                congest::CongestInstrument* inner, QuerySchedule& out)
      : resolver_(resolver), inner_(inner), out_(out) {}

  std::uint32_t on_token_move(const CommGraph& g, std::uint64_t arc) override;
  void on_step_commit(const CommGraph& g, std::uint32_t charged) override;
  bool on_kernel_deliver(NodeId from, NodeId to,
                         std::uint64_t round) override;
  void on_kernel_round_order(std::uint64_t round,
                             std::span<NodeId> order) override;

 private:
  const GraphKeyResolver& resolver_;
  congest::CongestInstrument* inner_;
  QuerySchedule& out_;
  // Per-graph in-flight tallies of the current (uncommitted) step. Keyed
  // by graph identity, like the conformance auditor: each live transport
  // binds one CommGraph and steps on one graph never interleave.
  std::unordered_map<const CommGraph*,
                     std::unordered_map<std::uint64_t, std::uint32_t>>
      pending_;
};

struct MultiplexStats {
  /// Base rounds of the merged schedule (what the engine charges for all
  /// transport traffic of the batch).
  std::uint64_t rounds = 0;
  /// Sum of the queries' standalone transport rounds (>= rounds, always).
  std::uint64_t standalone_rounds = 0;
  std::uint64_t groups = 0;         // co-scheduled slots emitted
  std::uint64_t shared_groups = 0;  // slots that carried >= 2 queries
  std::uint64_t steps = 0;          // total StepRecords consumed
};

/// Deterministic head-of-line merge of the queries' schedules (see the
/// header comment). Queries are scanned in index order, so the merge is a
/// pure function of the schedules — independent of capture threading.
MultiplexStats multiplex(std::span<const QuerySchedule> schedules);

}  // namespace amix::engine
