#pragma once

// Session: the one-object entry point over the public API.
//
//   auto session = amix::Session::open(g);
//   QueryReport mst = session.mst(weights);
//   QueryReport routed = session.route(permutation_instance(g, rng));
//   QueryReport clique = session.clique_round();
//
// A Session owns everything the explicit layer makes the caller thread
// through by hand — the graph (a private copy, so the caller's graph may
// go away), the hierarchy cache, the session RNG root and the running
// RoundLedger — and exposes each theorem as a single call returning a
// unified QueryReport. The first call pays the hierarchy build; later
// calls hit the cache. batch() submits several specs at once and gets the
// full round-multiplexing discount.
//
// Seeding is documented and pinned by test: call number k (0-based)
// executes its spec with seed call_seed(options.seed, k), so a Session
// run is reproducible from its options alone, and any single call can be
// replayed on the explicit low-level layer (HierarchicalBoruvka /
// HierarchicalRouter / CliqueEmulator + query_seed) with bit-identical
// results and charges. The explicit classes remain the documented
// low-level API; Session is sugar plus caching, not a new code path.

#include <cstdint>
#include <vector>

#include "engine/query_engine.hpp"

namespace amix {

struct SessionOptions {
  /// Root of every per-call seed (see Session::call_seed).
  std::uint64_t seed = 1;
  HierarchyParams hierarchy;
  ExecPolicy exec;
};

class Session {
 public:
  static Session open(const Graph& g, SessionOptions options = {}) {
    return Session(g, std::move(options));
  }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The spec seed of call number `call_index` under session seed root
  /// `session_seed`. Public so tests and the low-level layer can replay
  /// any session call exactly.
  static std::uint64_t call_seed(std::uint64_t session_seed,
                                 std::uint64_t call_index) {
    return keyed_u64(session_seed, 0x73657373696f6e2dULL, call_index);
  }

  QueryReport mst(const Weights& w, MstParams params = {});
  QueryReport route(std::vector<RouteRequest> requests,
                    std::uint32_t phases = 1);
  QueryReport clique_round(double edge_expansion = 0.0);
  QueryReport walks(std::vector<std::uint32_t> starts, WalkKind kind,
                    std::uint32_t steps);
  QueryReport matching(std::uint32_t max_phases = 0);
  QueryReport mincut(std::uint32_t trees = 0, bool two_respecting = true);
  QueryReport sssp(const Weights& w, NodeId source,
                   std::uint32_t max_hops = 0);

  /// Run several specs as one multiplexed batch. Specs keep their own
  /// seeds (they are explicit, unlike the per-call sugar above), so a
  /// batch is comparable to the same specs on a bare QueryEngine.
  BatchReport batch(std::vector<QuerySpec> specs);

  /// What one topology mutation did to the session's cached state.
  struct MutationReport {
    std::size_t entries_patched = 0;  // hierarchies repaired in place
    std::size_t entries_dropped = 0;  // fell back; rebuild on next query
    std::size_t oracle_checks = 0;    // sampled equivalence probes run
    std::uint64_t repair_rounds = 0;  // charged as "hierarchy-repair"
  };

  /// Apply an edge delta to the session graph and repair the cached
  /// hierarchies in place (Hierarchy::apply_delta through the cache), so
  /// subsequent queries reuse patched entries instead of rebuilding.
  /// Counts as one session call; repair rounds land in ledger() under
  /// "hierarchy-repair".
  MutationReport mutate(const GraphDelta& delta);

  const Graph& graph() const { return graph_; }
  /// Every base round this session has been charged, by phase
  /// ("hierarchy-build" once per cache miss, "queries" for everything
  /// else) — what a single CONGEST network executing the session's call
  /// stream would spend.
  const RoundLedger& ledger() const { return ledger_; }
  QueryEngine& engine() { return engine_; }
  std::uint64_t calls() const { return calls_; }

 private:
  static EngineOptions engine_options(const SessionOptions& o) {
    EngineOptions e;
    e.hierarchy = o.hierarchy;
    e.exec = o.exec;
    // The session's exec also drives hierarchy builds (cache misses and
    // repairs) unless the caller pinned one explicitly on the params.
    if (!e.hierarchy.exec.parallel()) e.hierarchy.exec = o.exec;
    return e;
  }

  Session(const Graph& g, SessionOptions options)
      : options_(std::move(options)),
        graph_(g),
        engine_(graph_, engine_options(options_)) {}

  QueryReport run_call(QuerySpec spec);
  void absorb(const BatchReport& b);

  SessionOptions options_;
  Graph graph_;  // declared before engine_: the engine points at it
  QueryEngine engine_;
  RoundLedger ledger_;
  std::uint64_t calls_ = 0;
};

}  // namespace amix
