#include "engine/equivalence_oracle.hpp"

#include <algorithm>
#include <vector>

#include "graph/weighted_graph.hpp"
#include "mst/hierarchical_boruvka.hpp"
#include "mst/verify.hpp"
#include "obs/bound_checker.hpp"
#include "obs/trace.hpp"
#include "routing/hierarchical_router.hpp"
#include "routing/request.hpp"
#include "util/rng.hpp"

namespace amix::engine {
namespace {

struct ProbeResult {
  std::vector<EdgeId> mst_edges;  // sorted
  std::uint64_t mst_weight = 0;
  bool mst_exact = false;
  std::uint32_t packets = 0;
  std::uint32_t delivered = 0;
  bool portals_complete = false;
  bool balanced = false;
  std::uint64_t bound_violations = 0;
};

ProbeResult probe(const Hierarchy& h, const HierarchyParams& params,
                  const Weights& w,
                  const std::vector<RouteRequest>& reqs,
                  std::uint64_t probe_seed) {
  ProbeResult r;
  obs::TraceRecorder rec;
  {
    const obs::ScopedRecorder scope(&rec);
    RoundLedger ledger;

    MstParams mp;
    mp.seed = keyed_u64(probe_seed, 0x6d73742d70726f62ULL, 0);
    const HierarchicalBoruvka algo(h, w);
    MstStats mst = algo.run(ledger, mp);
    r.mst_edges = std::move(mst.edges);
    std::sort(r.mst_edges.begin(), r.mst_edges.end());
    r.mst_weight = w.total(r.mst_edges);
    r.mst_exact = is_exact_mst(h.graph(), w, r.mst_edges);

    const HierarchicalRouter router(h);
    Rng rng(keyed_u64(probe_seed, 0x726f7574652d7072ULL, 0));
    const RouteStats route = router.route_in_phases(reqs, 1, ledger, rng);
    r.packets = route.packets;
    r.delivered = route.delivered;
  }
  r.portals_complete = h.portals().complete();
  r.balanced = h.partition().balanced(params.balance_slack > 0
                                          ? params.balance_slack
                                          : HierarchyParams{}.balance_slack);
  r.bound_violations =
      obs::BoundChecker().check(rec.metrics()).violations();
  return r;
}

}  // namespace

EquivalenceReport check_full_rebuild_equivalence(const Hierarchy& repaired,
                                                 const HierarchyParams& params,
                                                 std::uint64_t probe_seed) {
  EquivalenceReport rep;
  const Graph& g = repaired.graph();

  RoundLedger build_ledger;
  const Hierarchy fresh = Hierarchy::build(g, params, build_ledger);
  rep.rebuild_rounds = build_ledger.total();

  const auto fail = [&rep](std::string detail) {
    rep.ok = false;
    rep.detail = std::move(detail);
    return rep;
  };

  if (fresh.depth() != repaired.depth() || fresh.beta() != repaired.beta()) {
    return fail("shape: repaired depth/beta differ from a fresh build");
  }

  // One shared probe workload: same weights and same routing instance on
  // both sides, keyed entirely by probe_seed.
  Rng wrng(keyed_u64(probe_seed, 0x77656967687473ULL, 0));
  const Weights w = distinct_random_weights(g, wrng);
  Rng irng(keyed_u64(probe_seed, 0x7065726d2d696e73ULL, 0));
  const std::vector<RouteRequest> reqs = permutation_instance(g, irng);

  const ProbeResult a = probe(repaired, params, w, reqs, probe_seed);
  const ProbeResult b = probe(fresh, params, w, reqs, probe_seed);
  rep.mst_weight_repaired = a.mst_weight;
  rep.mst_weight_rebuilt = b.mst_weight;
  rep.bound_violations = a.bound_violations + b.bound_violations;

  if (!a.portals_complete) return fail("portals: repaired table incomplete");
  if (!b.portals_complete) return fail("portals: rebuilt table incomplete");
  if (!a.balanced) return fail("partition: repaired partition unbalanced");
  if (!a.mst_exact) return fail("mst: repaired answer fails Kruskal oracle");
  if (!b.mst_exact) return fail("mst: rebuilt answer fails Kruskal oracle");
  if (a.mst_edges != b.mst_edges) {
    return fail("mst: repaired edge set differs from fresh rebuild");
  }
  if (a.mst_weight != b.mst_weight) {
    return fail("mst: weights differ");  // unreachable given edge equality
  }
  if (a.packets != b.packets || a.delivered != a.packets ||
      b.delivered != b.packets) {
    return fail("route: delivery differs from fresh rebuild");
  }
  if (a.bound_violations != 0 || b.bound_violations != 0) {
    return fail("bounds: BoundChecker violations after repair");
  }
  rep.ok = true;
  return rep;
}

}  // namespace amix::engine
