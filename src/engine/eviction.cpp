#include "engine/eviction.hpp"

#include "util/check.hpp"

namespace amix::engine {
namespace {

// Idle age of a candidate at clock `now`, saturating at 1 so a candidate
// stamped "now" (or carrying a stale future tick) still has a defined,
// maximal score rather than a divide-by-zero.
std::uint64_t age(const EvictionCandidate& c, std::uint64_t now) {
  return now > c.last_use ? now - c.last_use + 1 : 1;
}

}  // namespace

bool better_victim(const EvictionCandidate& a, const EvictionCandidate& b,
                   std::uint64_t now) {
  // score(a) < score(b)
  //   <=> (cost_a + 1) / age_a < (cost_b + 1) / age_b
  //   <=> (cost_a + 1) * age_b < (cost_b + 1) * age_a
  // in exact 128-bit arithmetic (cost and age are both u64).
  const unsigned __int128 lhs =
      static_cast<unsigned __int128>(a.cost_rounds + 1) * age(b, now);
  const unsigned __int128 rhs =
      static_cast<unsigned __int128>(b.cost_rounds + 1) * age(a, now);
  if (lhs != rhs) return lhs < rhs;
  if (a.last_use != b.last_use) return a.last_use < b.last_use;
  if (a.graph_fp != b.graph_fp) return a.graph_fp < b.graph_fp;
  return a.params_fp < b.params_fp;
}

std::optional<std::size_t> pick_victim(
    std::span<const EvictionCandidate> candidates, std::uint64_t now) {
  if (candidates.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (better_victim(candidates[i], candidates[best], now)) best = i;
  }
  return best;
}

}  // namespace amix::engine
