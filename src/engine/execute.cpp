#include "engine/execute.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <utility>

#include "congest/comm_graph.hpp"
#include "engine/ops.hpp"
#include "obs/trace.hpp"
#include "sim/harness.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace amix::engine {
namespace {

// Chains a per-query fault plan in front of the ambient instrument. The
// plan's extra slots are invisible to an ambient auditor (it has no hook
// for third-party slots), which is why fault injection must not be
// combined with an auditing/fault-injecting ambient chain — see
// query_engine.hpp.
class FaultChain final : public congest::CongestInstrument {
 public:
  FaultChain(sim::FaultPlan* plan, congest::CongestInstrument* next)
      : plan_(plan), next_(next) {}

  std::uint32_t on_token_move(const CommGraph& g, std::uint64_t arc) override {
    std::uint32_t extra = plan_->extra_arc_slots(g, arc);
    if (next_ != nullptr) extra += next_->on_token_move(g, arc);
    return extra;
  }
  void on_step_commit(const CommGraph& g, std::uint32_t charged) override {
    if (next_ != nullptr) next_->on_step_commit(g, charged);
  }
  bool on_kernel_deliver(NodeId from, NodeId to,
                         std::uint64_t round) override {
    const bool keep = plan_->deliver(from, to, round);
    return (next_ == nullptr || next_->on_kernel_deliver(from, to, round)) &&
           keep;
  }
  void on_kernel_round_order(std::uint64_t round,
                             std::span<NodeId> order) override {
    plan_->permute_order(round, order);
    if (next_ != nullptr) next_->on_kernel_round_order(round, order);
  }

 private:
  sim::FaultPlan* plan_;
  congest::CongestInstrument* next_;
};

}  // namespace

QueryExecution execute_query(const Graph& g, const Hierarchy& h,
                             const QuerySpec& spec, std::uint32_t index,
                             congest::CongestInstrument* ambient,
                             const QueryFaults* faults) {
  QueryExecution ex;
  QueryReport& rep = ex.report;
  rep.kind = query_kind(spec);
  rep.seed = spec.seed;
  rep.label = spec.label.empty()
                  ? std::string(query_kind_name(rep.kind)) + '-' +
                        std::to_string(index)
                  : spec.label;

  // Per-query fault plan (private instance, private stream) chained in
  // front of whatever is ambient.
  std::unique_ptr<sim::FaultPlan> plan;
  std::optional<FaultChain> chain;
  congest::CongestInstrument* inner = ambient;
  if (faults != nullptr && faults->factory != nullptr && *faults->factory) {
    plan = (*faults->factory)();
    plan->reset(keyed_u64(faults->seed, spec.seed, 0));
    chain.emplace(plan.get(), ambient);
    inner = &*chain;
  }

  GraphKeyResolver resolver(&g, &h);
  ScheduleProbe probe(resolver, inner, ex.schedule);
  congest::ScopedInstrument scope(&probe);

  RoundLedger ledger;
  obs::Span span(ledger, obs::numbered("engine/query-", index));
  sim::Digest digest;
  const std::uint64_t qseed = query_seed(spec);
  const auto t0 = std::chrono::steady_clock::now();

  // One dispatch for every kind: the registry row runs the query under
  // its per-kind span, so a new OpRow is automatically executable here.
  const OpRow& row = op_row(rep.kind);
  {
    obs::Span kind_span(ledger, row.span_name);
    OpExecContext ctx{g, h, spec, qseed, ledger, digest, rep};
    row.execute(ctx);
  }

  rep.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  rep.rounds = ledger.total();
  rep.phases = ledger.phases();
  rep.transport_rounds = ex.schedule.transport_base_rounds;
  rep.token_moves = ex.schedule.token_slots;
  rep.output_digest = digest.value();
  return ex;
}

void fold_batch(std::vector<QueryExecution> execs, BatchReport& out) {
  std::vector<QuerySchedule> schedules;
  schedules.reserve(execs.size());
  for (QueryExecution& ex : execs) {
    out.standalone_query_rounds += ex.report.rounds;
    out.standalone_transport_rounds += ex.schedule.transport_base_rounds;
    schedules.push_back(std::move(ex.schedule));
  }

  const MultiplexStats mx = multiplex(schedules);
  out.multiplexed_transport_rounds = mx.rounds;
  out.serialized_rounds =
      out.standalone_query_rounds - out.standalone_transport_rounds;
  out.merged_groups = mx.groups;
  out.merged_shared_groups = mx.shared_groups;
  out.merged_steps = mx.steps;

  out.queries.reserve(execs.size());
  for (QueryExecution& ex : execs) out.queries.push_back(std::move(ex.report));
}

}  // namespace amix::engine
