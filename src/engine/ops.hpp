#pragma once

// The op-registration table: one row per query kind.
//
// Before this table existed, adding a query kind meant editing four
// hand-maintained switch statements (kind name, seed stream, execute
// dispatch, report serialization) plus the mix grammar's op words and
// their parse-time resource ceilings — five chances to silently miss
// one. Now a kind is one OpRow: its wire word and seed stream (the
// compile-time columns live in kQueryKindInfo, engine/query.hpp), its
// mix-grammar parse rule and size bounds, its executor, and its
// report-JSON serializer. engine/execute.cpp, engine/report.cpp,
// server/mix.cpp and amixctl all dispatch through the table, so they
// are exhaustive by construction; static_asserts in engine/ops.cpp pin
// every row to its QueryKind slot.
//
// Consumers:
//   execute_query      -> row.execute (under row.span_name)
//   QueryReport::to_json -> row.stats_json
//   server::parse_mix_line -> find_op + row.parse (unknown word = the
//                             typed unsupported-op error, not a generic
//                             parse failure)
//   amixctl ops        -> name/wire_syntax/bounds/sample_line

#include <array>
#include <cstdint>
#include <iosfwd>
#include <sstream>
#include <string_view>

#include "congest/round_ledger.hpp"
#include "engine/query.hpp"
#include "engine/report.hpp"
#include "hierarchy/hierarchy.hpp"
#include "sim/harness.hpp"

namespace amix::engine {

// Grammar-level hard ceilings on wire-controlled sizes, one per bounded
// op argument. These are part of the grammar, NOT server configuration —
// every parser (amixctl workload, the daemon, the client's serial-replay
// verifier) must agree on what is well-formed, and a daemon must never
// let a one-line request buy unbounded memory or CPU. (Arguments bounded
// by the graph itself — walk counts, SSSP sources — need no constant.)
inline constexpr std::uint32_t kMaxWalkSteps = 4096;
inline constexpr std::uint32_t kMaxRoutePhases = 4096;
inline constexpr std::uint32_t kMaxMatchingPhases = 4096;
inline constexpr std::uint32_t kMaxMincutTrees = 256;
inline constexpr std::uint32_t kMaxSsspHops = 4096;

/// What an executor sees: the shared graph + hierarchy, the spec and its
/// derived seed, and the query-private ledger/digest/report to fill. The
/// executor must set rep.ok and its kind-specific stats optional, and
/// fold the query's output into the digest.
struct OpExecContext {
  const Graph& g;
  const Hierarchy& h;
  const QuerySpec& spec;
  std::uint64_t qseed;
  RoundLedger& ledger;
  sim::Digest& digest;
  QueryReport& rep;
};

/// What a parse rule sees: the target graph (and its optional weights),
/// the rest of the mix line as a token stream, and the spec-seeded RNG
/// every piece of instance randomness must come from. On success the
/// rule fills spec.op and spec.label; on failure it fills err.
struct OpParseContext {
  const Graph& g;
  const Weights* weights;  // null: ops draw their own from rng
  std::istringstream& args;
  Rng& rng;
  std::uint64_t lineno;
  QuerySpec& spec;
  std::string& err;
};

struct OpRow {
  QueryKind kind;
  const char* name;           // == kQueryKindInfo[kind].name
  std::uint64_t seed_stream;  // == kQueryKindInfo[kind].seed_stream
  const char* span_name;      // per-kind obs span opened around execute
  const char* wire_syntax;    // mix-grammar line shape, for `amixctl ops`
  const char* bounds;         // human-readable size ceilings
  const char* sample_line;    // parseable example; tests round-trip it
  bool (*parse)(OpParseContext&);
  void (*execute)(OpExecContext&);
  /// Emits the kind-specific ",\"<kind>\":{...}" block (nothing when the
  /// report's stats optional is not engaged).
  void (*stats_json)(std::ostream&, const QueryReport&);
};

/// The registry, indexed by QueryKind. Iterate it to enumerate every
/// registered kind — tests and `amixctl ops` do, so a kind missing from
/// the table cannot pass the completeness round-trip.
const std::array<OpRow, kNumQueryKinds>& op_table();

inline const OpRow& op_row(QueryKind k) {
  return op_table()[static_cast<std::size_t>(k)];
}

/// Lookup by wire op word; nullptr means unsupported-op.
const OpRow* find_op(std::string_view word);

}  // namespace amix::engine
