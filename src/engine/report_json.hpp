#pragma once

// Shared field emitters for the deterministic report JSON — used by
// QueryReport/BatchReport::to_json (engine/report.cpp) and by the
// per-kind stats serializers in the op table (engine/ops.cpp). Integers
// only: doubles are scaled to x1000 ints, matching the obs metrics
// convention, so serialized reports stay byte-stable and float-free.

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace amix::engine::json {

inline std::uint64_t x1000(double v) {
  if (!(v > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(v * 1000.0));
}

inline void emit_str(std::ostream& os, std::string_view key,
                     std::string_view val, bool& first) {
  if (!first) os << ',';
  first = false;
  os << '"' << key << "\":\"";
  obs::write_json_escaped(os, val);
  os << '"';
}

inline void emit_u64(std::ostream& os, std::string_view key,
                     std::uint64_t val, bool& first) {
  if (!first) os << ',';
  first = false;
  os << '"' << key << "\":" << val;
}

inline void emit_bool(std::ostream& os, std::string_view key, bool val,
                      bool& first) {
  if (!first) os << ',';
  first = false;
  os << '"' << key << "\":" << (val ? "true" : "false");
}

inline void emit_u64_array(std::ostream& os, std::string_view key,
                           const std::vector<std::uint64_t>& vals,
                           bool& first) {
  if (!first) os << ',';
  first = false;
  os << '"' << key << "\":[";
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (i != 0) os << ',';
    os << vals[i];
  }
  os << ']';
}

}  // namespace amix::engine::json
