#pragma once

// engine::execute_query — the ONE per-spec execution path.
//
// QueryEngine::run() and the amixd server workers both execute specs
// through this free function, so "a server response is byte-identical to
// a serial replay" is a structural property, not a parallel
// implementation kept in sync by tests: there is only one implementation.
//
// execute_query runs a spec through the unmodified algorithm stack
// against a prebuilt hierarchy, charging the spec's own RoundLedger and
// capturing its transport schedule via a ScheduleProbe (see
// schedule.hpp). All randomness derives from query_seed(spec), so the
// result is a pure function of (graph, hierarchy, spec, index) — never of
// the calling thread, the batch composition, or wall time (wall_ns is the
// one nondeterministic report field, and JSON export omits it by
// default).
//
// fold_batch is the deterministic merge half: it moves a batch's
// executions into a BatchReport, multiplexing the captured schedules
// (head-of-line, shared-graph co-scheduling) exactly as
// DESIGN.md §11 specifies. Cache/build accounting fields are left to the
// caller — QueryEngine charges its epoch ledger, the server charges the
// tenant ledger.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "congest/instrument.hpp"
#include "engine/query.hpp"
#include "engine/report.hpp"
#include "engine/schedule.hpp"
#include "sim/fault_plan.hpp"

namespace amix::engine {

/// One executed spec: its standalone-equivalent report plus the captured
/// transport schedule the multiplexer merges.
struct QueryExecution {
  QueryReport report;
  QuerySchedule schedule;
};

/// Per-query fault injection (see EngineOptions::fault_factory): each
/// query gets a PRIVATE plan instance, reset from (seed, spec.seed).
struct QueryFaults {
  const std::function<std::unique_ptr<sim::FaultPlan>()>* factory = nullptr;
  std::uint64_t seed = 0;
};

/// Execute `spec` against the prebuilt hierarchy `h` on `g` (the graph
/// `h` was built against). `index` names the execution inside its batch
/// (default labels, span names). `ambient` is chained behind the
/// schedule probe so harness faults / audits / tracing observe every
/// event exactly as in un-engined code; pass the current thread's
/// congest::instrument() or nullptr.
QueryExecution execute_query(const Graph& g, const Hierarchy& h,
                             const QuerySpec& spec, std::uint32_t index,
                             congest::CongestInstrument* ambient,
                             const QueryFaults* faults = nullptr);

/// Move `execs` into `out.queries` (in order) and fill every field the
/// executions determine: standalone sums, the multiplexed transport
/// rounds, serialized rounds, and the merge-shape counters. The caller
/// owns the cache fields (hits/misses, hierarchy_build_rounds,
/// engine_rounds, standalone_total_rounds).
void fold_batch(std::vector<QueryExecution> execs, BatchReport& out);

}  // namespace amix::engine
