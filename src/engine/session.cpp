#include "engine/session.hpp"

#include <utility>

#include "util/check.hpp"

namespace amix {

QueryReport Session::run_call(QuerySpec spec) {
  spec.seed = call_seed(options_.seed, calls_);
  ++calls_;
  engine_.submit(std::move(spec));
  BatchReport b = engine_.run();
  absorb(b);
  AMIX_CHECK(b.queries.size() == 1);
  return std::move(b.queries.front());
}

void Session::absorb(const BatchReport& b) {
  if (b.hierarchy_build_rounds > 0) {
    ledger_.charge("hierarchy-build", b.hierarchy_build_rounds);
  }
  const std::uint64_t query_rounds =
      b.engine_rounds - b.hierarchy_build_rounds;
  if (query_rounds > 0) ledger_.charge("queries", query_rounds);
}

QueryReport Session::mst(const Weights& w, MstParams params) {
  QuerySpec spec;
  spec.op = MstQuery{w, params};
  return run_call(std::move(spec));
}

QueryReport Session::route(std::vector<RouteRequest> requests,
                           std::uint32_t phases) {
  QuerySpec spec;
  spec.op = RouteQuery{std::move(requests), phases};
  return run_call(std::move(spec));
}

QueryReport Session::clique_round(double edge_expansion) {
  QuerySpec spec;
  spec.op = CliqueQuery{edge_expansion};
  return run_call(std::move(spec));
}

QueryReport Session::walks(std::vector<std::uint32_t> starts, WalkKind kind,
                           std::uint32_t steps) {
  QuerySpec spec;
  spec.op = WalkQuery{std::move(starts), kind, steps};
  return run_call(std::move(spec));
}

QueryReport Session::matching(std::uint32_t max_phases) {
  QuerySpec spec;
  spec.op = MatchingQuery{max_phases};
  return run_call(std::move(spec));
}

QueryReport Session::mincut(std::uint32_t trees, bool two_respecting) {
  QuerySpec spec;
  spec.op = MinCutQuery{trees, two_respecting};
  return run_call(std::move(spec));
}

QueryReport Session::sssp(const Weights& w, NodeId source,
                          std::uint32_t max_hops) {
  QuerySpec spec;
  spec.op = SsspQuery{w, source, max_hops};
  return run_call(std::move(spec));
}

BatchReport Session::batch(std::vector<QuerySpec> specs) {
  ++calls_;  // a batch is one session call; its specs keep their own seeds
  for (QuerySpec& spec : specs) engine_.submit(std::move(spec));
  BatchReport b = engine_.run();
  absorb(b);
  return b;
}

Session::MutationReport Session::mutate(const GraphDelta& delta) {
  ++calls_;  // mutations are session calls: replays must count them too
  Graph next = graph_.apply_delta(delta);
  // Patch the cache first (entries own their graph copies and repair
  // against them), then swap the session graph and re-point the engine
  // at its new address.
  const auto patch = engine_.apply_delta(next, &delta);
  graph_ = std::move(next);
  engine_.rebind(graph_);
  if (patch.repair_rounds > 0) {
    ledger_.charge("hierarchy-repair", patch.repair_rounds);
  }
  return MutationReport{patch.patched, patch.dropped, patch.oracle_checks,
                        patch.repair_rounds};
}

}  // namespace amix
