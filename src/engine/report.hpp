#pragma once

// Unified query reports.
//
// MstStats / RouteStats / CliqueEmulationStats / WalkStats each grew
// their own fields and every consumer (amixctl, benches, tests) used to
// hand-format them. QueryReport is the common envelope: the fields every
// query has (charged rounds split by ledger phase, token volume, a
// deterministic output digest, wall time) plus the kind-specific stats
// carried along for callers that want the details. to_json() emits a
// fixed field order with integers only (doubles are scaled to x1000
// ints, matching the obs metrics convention), so serialized reports are
// byte-stable across runs and platforms; wall_ns is opt-in because it is
// the one nondeterministic field.

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "engine/query.hpp"
#include "matching/parallel_matching.hpp"
#include "mincut/tree_packing.hpp"
#include "randwalk/walk_engine.hpp"
#include "routing/clique_emulation.hpp"
#include "routing/hierarchical_router.hpp"
#include "sssp/bellman_ford.hpp"

namespace amix {

struct QueryReport {
  std::string label;
  QueryKind kind = QueryKind::kMst;
  std::uint64_t seed = 0;  // spec seed (query_seed derives from it)
  bool ok = false;

  // Common cost fields, identical in meaning across kinds.
  std::uint64_t rounds = 0;  // total charged to the query's ledger
  std::vector<std::pair<std::string, std::uint64_t>> phases;  // by phase
  std::uint64_t transport_rounds = 0;  // token-transport share of rounds
  std::uint64_t token_moves = 0;       // arc slots consumed (incl. faults)
  /// Order-insensitive digest of the query's output (MST edge set, route
  /// deliveries, clique totals, walk endpoints) — what the determinism
  /// tests compare.
  std::uint64_t output_digest = 0;
  std::uint64_t wall_ns = 0;

  // Kind-specific stats; exactly one is engaged. Serialized by the op
  // table's per-kind writer (engine/ops.cpp), not by hand-maintained
  // switch blocks here.
  std::optional<MstStats> mst;
  std::optional<RouteStats> route;
  std::optional<CliqueEmulationStats> clique;
  std::optional<WalkStats> walks;
  std::optional<MatchingStats> matching;
  std::optional<MincutStats> mincut;
  std::optional<SsspStats> sssp;

  /// Deterministic JSON (fixed field order, integers only) unless
  /// `include_wall` pulls in wall_ns.
  void to_json(std::ostream& os, bool include_wall = false) const;
};

/// What one QueryEngine::run() charged, and how it relates to running the
/// same queries standalone.
struct BatchReport {
  std::vector<QueryReport> queries;

  /// Total base rounds the engine charged for the batch:
  ///   hierarchy_build + multiplexed_transport + serialized.
  std::uint64_t engine_rounds = 0;
  std::uint64_t hierarchy_build_rounds = 0;     // cache misses only
  std::uint64_t multiplexed_transport_rounds = 0;
  std::uint64_t serialized_rounds = 0;          // non-transport charges

  /// Standalone costs for comparison: sums of the queries' own ledgers
  /// (identical to running each spec alone) and of per-query builds.
  std::uint64_t standalone_transport_rounds = 0;
  std::uint64_t standalone_query_rounds = 0;
  std::uint64_t standalone_total_rounds = 0;  // queries + a build each

  // Multiplexer shape.
  std::uint64_t merged_groups = 0;
  std::uint64_t merged_shared_groups = 0;
  std::uint64_t merged_steps = 0;

  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  bool all_ok() const {
    for (const QueryReport& q : queries) {
      if (!q.ok) return false;
    }
    return !queries.empty();
  }

  void to_json(std::ostream& os, bool include_wall = false) const;
};

}  // namespace amix
