#include "engine/report.hpp"

#include <cmath>

#include "obs/metrics.hpp"

namespace amix {
namespace {

// Scale a nonnegative double to an integer x1000, the same convention the
// obs metrics use to keep JSON float-free.
std::uint64_t x1000(double v) {
  if (!(v > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(v * 1000.0));
}

void emit_str(std::ostream& os, std::string_view key, std::string_view val,
              bool& first) {
  if (!first) os << ',';
  first = false;
  os << '"' << key << "\":\"";
  obs::write_json_escaped(os, val);
  os << '"';
}

void emit_u64(std::ostream& os, std::string_view key, std::uint64_t val,
              bool& first) {
  if (!first) os << ',';
  first = false;
  os << '"' << key << "\":" << val;
}

void emit_bool(std::ostream& os, std::string_view key, bool val,
               bool& first) {
  if (!first) os << ',';
  first = false;
  os << '"' << key << "\":" << (val ? "true" : "false");
}

void emit_u64_array(std::ostream& os, std::string_view key,
                    const std::vector<std::uint64_t>& vals, bool& first) {
  if (!first) os << ',';
  first = false;
  os << '"' << key << "\":[";
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (i != 0) os << ',';
    os << vals[i];
  }
  os << ']';
}

void emit_phases(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::uint64_t>>& phases,
    bool& first) {
  if (!first) os << ',';
  first = false;
  os << "\"phases\":{";
  bool inner_first = true;
  for (const auto& [name, rounds] : phases) {
    if (!inner_first) os << ',';
    inner_first = false;
    os << '"';
    obs::write_json_escaped(os, name);
    os << "\":" << rounds;
  }
  os << '}';
}

}  // namespace

void QueryReport::to_json(std::ostream& os, bool include_wall) const {
  os << '{';
  bool first = true;
  emit_str(os, "label", label, first);
  emit_str(os, "kind", query_kind_name(kind), first);
  emit_u64(os, "seed", seed, first);
  emit_bool(os, "ok", ok, first);
  emit_u64(os, "rounds", rounds, first);
  emit_u64(os, "transport_rounds", transport_rounds, first);
  emit_u64(os, "token_moves", token_moves, first);
  emit_u64(os, "output_digest", output_digest, first);
  emit_phases(os, phases, first);
  if (include_wall) emit_u64(os, "wall_ns", wall_ns, first);
  if (mst.has_value()) {
    os << ",\"mst\":{";
    bool f = true;
    emit_u64(os, "edges", mst->edges.size(), f);
    emit_u64(os, "iterations", mst->iterations, f);
    emit_u64(os, "routing_instances", mst->routing_instances, f);
    emit_u64(os, "routed_packets", mst->routed_packets, f);
    emit_u64(os, "max_tree_depth", mst->max_tree_depth, f);
    emit_u64(os, "max_tree_indegree", mst->max_tree_indegree, f);
    emit_u64(os, "max_indegree_over_degree_x1000",
             x1000(mst->max_indegree_over_degree), f);
    os << '}';
  }
  if (route.has_value()) {
    os << ",\"route\":{";
    bool f = true;
    emit_u64(os, "prep_rounds", route->prep_rounds, f);
    emit_u64(os, "hop_rounds", route->hop_rounds, f);
    emit_u64(os, "leaf_rounds", route->leaf_rounds, f);
    emit_u64(os, "packets", route->packets, f);
    emit_u64(os, "delivered", route->delivered, f);
    emit_u64(os, "max_vid_load", route->max_vid_load, f);
    emit_u64(os, "leaf_phases", route->leaf_phases, f);
    emit_u64(os, "route_phases", route->phases, f);
    emit_u64_array(os, "hop_rounds_by_level", route->hop_rounds_by_level, f);
    emit_u64_array(os, "cross_packets_by_level",
                   route->cross_packets_by_level, f);
    os << '}';
  }
  if (clique.has_value()) {
    os << ",\"clique\":{";
    bool f = true;
    emit_u64(os, "clique_phases", clique->phases, f);
    emit_u64(os, "messages", clique->messages, f);
    emit_u64(os, "lower_bound_x1000", x1000(clique->lower_bound), f);
    os << '}';
  }
  if (walks.has_value()) {
    os << ",\"walks\":{";
    bool f = true;
    emit_u64(os, "graph_rounds", walks->graph_rounds, f);
    emit_u64(os, "base_rounds", walks->base_rounds, f);
    emit_u64(os, "max_node_load", walks->max_node_load, f);
    emit_u64(os, "max_transport_residency", walks->max_transport_residency,
             f);
    emit_u64(os, "total_moves", walks->total_moves, f);
    emit_u64(os, "steps", walks->steps, f);
    os << '}';
  }
  os << '}';
}

void BatchReport::to_json(std::ostream& os, bool include_wall) const {
  os << "{\"queries\":[";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i != 0) os << ',';
    queries[i].to_json(os, include_wall);
  }
  os << ']';
  bool first = false;
  emit_u64(os, "engine_rounds", engine_rounds, first);
  emit_u64(os, "hierarchy_build_rounds", hierarchy_build_rounds, first);
  emit_u64(os, "multiplexed_transport_rounds", multiplexed_transport_rounds,
           first);
  emit_u64(os, "serialized_rounds", serialized_rounds, first);
  emit_u64(os, "standalone_transport_rounds", standalone_transport_rounds,
           first);
  emit_u64(os, "standalone_query_rounds", standalone_query_rounds, first);
  emit_u64(os, "standalone_total_rounds", standalone_total_rounds, first);
  emit_u64(os, "merged_groups", merged_groups, first);
  emit_u64(os, "merged_shared_groups", merged_shared_groups, first);
  emit_u64(os, "merged_steps", merged_steps, first);
  emit_u64(os, "cache_hits", cache_hits, first);
  emit_u64(os, "cache_misses", cache_misses, first);
  emit_u64(os, "saved_rounds",
           standalone_total_rounds > engine_rounds
               ? standalone_total_rounds - engine_rounds
               : 0,
           first);
  os << '}';
}

}  // namespace amix
