#include "engine/report.hpp"

#include "engine/ops.hpp"
#include "engine/report_json.hpp"
#include "obs/metrics.hpp"

namespace amix {
namespace {

using engine::json::emit_bool;
using engine::json::emit_str;
using engine::json::emit_u64;

void emit_phases(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::uint64_t>>& phases,
    bool& first) {
  if (!first) os << ',';
  first = false;
  os << "\"phases\":{";
  bool inner_first = true;
  for (const auto& [name, rounds] : phases) {
    if (!inner_first) os << ',';
    inner_first = false;
    os << '"';
    obs::write_json_escaped(os, name);
    os << "\":" << rounds;
  }
  os << '}';
}

}  // namespace

void QueryReport::to_json(std::ostream& os, bool include_wall) const {
  os << '{';
  bool first = true;
  emit_str(os, "label", label, first);
  emit_str(os, "kind", query_kind_name(kind), first);
  emit_u64(os, "seed", seed, first);
  emit_bool(os, "ok", ok, first);
  emit_u64(os, "rounds", rounds, first);
  emit_u64(os, "transport_rounds", transport_rounds, first);
  emit_u64(os, "token_moves", token_moves, first);
  emit_u64(os, "output_digest", output_digest, first);
  emit_phases(os, phases, first);
  if (include_wall) emit_u64(os, "wall_ns", wall_ns, first);
  // The kind-specific stats block comes from the op table — to_json stays
  // exhaustive over kinds without a hand-maintained if-chain here.
  engine::op_row(kind).stats_json(os, *this);
  os << '}';
}

void BatchReport::to_json(std::ostream& os, bool include_wall) const {
  os << "{\"queries\":[";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i != 0) os << ',';
    queries[i].to_json(os, include_wall);
  }
  os << ']';
  bool first = false;
  emit_u64(os, "engine_rounds", engine_rounds, first);
  emit_u64(os, "hierarchy_build_rounds", hierarchy_build_rounds, first);
  emit_u64(os, "multiplexed_transport_rounds", multiplexed_transport_rounds,
           first);
  emit_u64(os, "serialized_rounds", serialized_rounds, first);
  emit_u64(os, "standalone_transport_rounds", standalone_transport_rounds,
           first);
  emit_u64(os, "standalone_query_rounds", standalone_query_rounds, first);
  emit_u64(os, "standalone_total_rounds", standalone_total_rounds, first);
  emit_u64(os, "merged_groups", merged_groups, first);
  emit_u64(os, "merged_shared_groups", merged_shared_groups, first);
  emit_u64(os, "merged_steps", merged_steps, first);
  emit_u64(os, "cache_hits", cache_hits, first);
  emit_u64(os, "cache_misses", cache_misses, first);
  emit_u64(os, "saved_rounds",
           standalone_total_rounds > engine_rounds
               ? standalone_total_rounds - engine_rounds
               : 0,
           first);
  os << '}';
}

}  // namespace amix
