#pragma once

// QueryEngine: heterogeneous queries against one shared graph, executed
// over a cached hierarchy with round-multiplexed batched transport.
//
// Usage:
//   QueryEngine eng(g);
//   eng.submit({.op = MstQuery{w}, .seed = 1});
//   eng.submit({.op = RouteQuery{reqs}, .seed = 2});
//   BatchReport b = eng.run();
//
// Cost model (DESIGN.md §11). Each submitted query is executed through
// the unmodified algorithm stack against the batch's shared hierarchy,
// charging its OWN RoundLedger — so every per-query report is
// bit-identical to a standalone run of the same spec over a prebuilt
// hierarchy (the equivalence the tests pin). A ScheduleProbe records each
// query's transport schedule, and the batch is charged:
//
//   engine_rounds = hierarchy_build   (cache misses only, amortized)
//                 + multiplex(schedules).rounds   (shared-graph traffic
//                   co-scheduled up to per-arc capacity)
//                 + serialized_rounds (each query's non-transport charges;
//                   kernel work is not multiplexed)
//
// which is never more than running the queries back to back, and strictly
// less whenever queries share transport steps or a hierarchy build.
//
// Determinism: queries draw all randomness from query_seed(spec), so
// results are independent of batch composition and threading. run()
// executes queries on opt.exec's pool with a deterministic ordered merge;
// reports are byte-identical at any thread count. If an ambient congest
// instrument or trace recorder is installed (SimHarness faults/audit, obs
// tracing), run() drops to serial capture on the calling thread and
// chains the ambient instrument behind each query's probe, so fault
// plans, the conformance auditor and the tracer observe every event
// exactly as in un-engined code.
//
// Fault injection: EngineOptions::fault_factory gives each query a
// PRIVATE plan instance, reset from (fault_seed, spec.seed) — stateful
// plans stay standalone-comparable because no query consumes another's
// fault stream. Do not combine fault_factory with ambient harness faults;
// both would charge extra slots for the same crossings.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/execute.hpp"
#include "engine/hierarchy_cache.hpp"
#include "engine/query.hpp"
#include "engine/report.hpp"
#include "engine/schedule.hpp"
#include "sim/fault_plan.hpp"
#include "util/thread_pool.hpp"

namespace amix {

struct EngineOptions {
  HierarchyParams hierarchy;
  /// Thread pool for query capture. Ignored (serial capture) while an
  /// ambient instrument or trace recorder is installed.
  ExecPolicy exec;
  /// Per-query fault plans: called once per query per run(). Null = no
  /// engine-injected faults.
  std::function<std::unique_ptr<sim::FaultPlan>()> fault_factory;
  /// Root of the per-query fault streams (folded with each spec's seed).
  std::uint64_t fault_seed = 0x656e672d6661756cULL;
};

class QueryEngine {
 public:
  explicit QueryEngine(const Graph& g, EngineOptions opt = {})
      : graph_(&g), opt_(std::move(opt)) {}
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Enqueue a query for the next run(); returns its batch index.
  std::uint32_t submit(QuerySpec spec);

  /// Execute every pending query; clears the queue. Reports come back in
  /// submission order regardless of execution threading.
  BatchReport run();

  /// Point the engine at (possibly churned) topology. The cache is
  /// content-keyed, so a structurally identical graph still hits; a
  /// changed topology misses and rebuilds. Old entries are kept until
  /// invalidated — call cache().invalidate(old) to reclaim them.
  void rebind(const Graph& g) { graph_ = &g; }

  /// Churn path: patch every cache entry of the CURRENT graph's topology
  /// in place so it describes `new_g` (see HierarchyCache::apply_delta),
  /// then rebind to `new_g`. Pass the delta that produced `new_g` to let
  /// the cache re-key via an incremental fingerprint where possible.
  /// `new_g` must outlive the engine (or the next rebind).
  engine::HierarchyCache::PatchResult apply_delta(
      const Graph& new_g, const GraphDelta* delta = nullptr);

  const Graph& graph() const { return *graph_; }
  engine::HierarchyCache& cache() { return cache_; }
  const engine::HierarchyCache& cache() const { return cache_; }
  std::uint32_t epochs_run() const { return epoch_; }
  std::size_t pending() const { return pending_.size(); }

 private:
  /// Thin wrapper over engine::execute_query (the shared per-spec path)
  /// that plugs in this engine's fault configuration.
  engine::QueryExecution run_one(const engine::CacheEntry& entry,
                                 const QuerySpec& spec, std::uint32_t index,
                                 congest::CongestInstrument* ambient) const;

  const Graph* graph_;
  EngineOptions opt_;
  engine::HierarchyCache cache_;
  std::vector<QuerySpec> pending_;
  std::uint32_t epoch_ = 0;
};

}  // namespace amix
