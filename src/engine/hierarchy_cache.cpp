#include "engine/hierarchy_cache.hpp"

#include "congest/round_ledger.hpp"
#include "util/rng.hpp"

namespace amix::engine {

std::uint64_t graph_fingerprint(const Graph& g) {
  std::uint64_t h = splitmix64(0x67726170682d6670ULL ^ g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    h = splitmix64(h ^ (static_cast<std::uint64_t>(g.edge_u(e)) << 32 |
                        g.edge_v(e)));
  }
  return h;
}

std::uint64_t params_fingerprint(const HierarchyParams& p) {
  std::uint64_t h = splitmix64(0x706172616d732d66ULL);
  const auto fold = [&h](std::uint64_t word) { h = splitmix64(h ^ word); };
  fold(p.beta);
  fold(p.leaf_target);
  fold(p.g0_out_degree);
  fold(p.level_degree);
  // The two slack knobs are exact binary64 values set from code, not
  // parsed text: hashing their bit patterns is deterministic.
  std::uint64_t bits;
  static_assert(sizeof(p.walk_slack) == sizeof(bits));
  __builtin_memcpy(&bits, &p.walk_slack, sizeof(bits));
  fold(bits);
  __builtin_memcpy(&bits, &p.balance_slack, sizeof(bits));
  fold(bits);
  fold(p.tau_mix);
  fold(p.max_retries);
  fold(p.seed);
  return h;
}

HierarchyCache::Lookup HierarchyCache::get_or_build(
    const Graph& g, const HierarchyParams& params) {
  const Key key{graph_fingerprint(g), params_fingerprint(params)};
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++hits_;
    return Lookup{it->second.get(), false};
  }
  ++misses_;
  auto entry = std::make_unique<CacheEntry>();
  entry->graph_ = g;  // the entry owns its graph: no lifetime coupling
  entry->graph_fp_ = key.first;
  entry->params_fp_ = key.second;
  RoundLedger build_ledger;
  entry->hierarchy_.emplace(
      Hierarchy::build(entry->graph_, params, build_ledger));
  entry->build_rounds_ = build_ledger.total();
  entry->build_phases_ = build_ledger.phases();
  const CacheEntry* raw = entry.get();
  entries_.emplace(key, std::move(entry));
  return Lookup{raw, true};
}

const CacheEntry* HierarchyCache::find(const Graph& g,
                                       const HierarchyParams& params) const {
  const Key key{graph_fingerprint(g), params_fingerprint(params)};
  const auto it = entries_.find(key);
  return it != entries_.end() ? it->second.get() : nullptr;
}

std::size_t HierarchyCache::invalidate(const Graph& g) {
  const std::uint64_t fp = graph_fingerprint(g);
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.first == fp) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace amix::engine
