#include "engine/hierarchy_cache.hpp"

#include <unordered_set>

#include "congest/round_ledger.hpp"
#include "engine/equivalence_oracle.hpp"
#include "util/rng.hpp"

namespace amix::engine {

std::uint64_t graph_fingerprint(const Graph& g) {
  std::uint64_t h = splitmix64(0x67726170682d6670ULL ^ g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    h = splitmix64(h ^ (static_cast<std::uint64_t>(g.edge_u(e)) << 32 |
                        g.edge_v(e)));
  }
  return h;
}

std::uint64_t params_fingerprint(const HierarchyParams& p) {
  // p.exec is deliberately NOT folded: builds are bit-identical at any
  // thread count, so a cache keyed on exec would split identical
  // hierarchies across entries.
  std::uint64_t h = splitmix64(0x706172616d732d66ULL);
  const auto fold = [&h](std::uint64_t word) { h = splitmix64(h ^ word); };
  fold(p.beta);
  fold(p.leaf_target);
  fold(p.g0_out_degree);
  fold(p.level_degree);
  // The two slack knobs are exact binary64 values set from code, not
  // parsed text: hashing their bit patterns is deterministic.
  std::uint64_t bits;
  static_assert(sizeof(p.walk_slack) == sizeof(bits));
  __builtin_memcpy(&bits, &p.walk_slack, sizeof(bits));
  fold(bits);
  __builtin_memcpy(&bits, &p.balance_slack, sizeof(bits));
  fold(bits);
  fold(p.tau_mix);
  fold(p.level_tau);
  fold(p.portal_candidate_cap);
  fold(p.max_retries);
  fold(p.seed);
  return h;
}

std::optional<std::uint64_t> fingerprint_after_delta(std::uint64_t old_fp,
                                                     const Graph& old_g,
                                                     const GraphDelta& delta) {
  std::uint64_t h = old_fp;
  std::unordered_set<std::uint64_t> added;  // keys appended by this delta
  for (const EdgeDelta& op : delta) {
    if (op.u >= old_g.num_nodes() || op.v >= old_g.num_nodes() ||
        op.u == op.v) {
      continue;  // Graph::apply_delta skips these too
    }
    const NodeId u = std::min(op.u, op.v);
    const NodeId v = std::max(op.u, op.v);
    const std::uint64_t key = static_cast<std::uint64_t>(u) << 32 | v;
    const bool present = old_g.has_edge(u, v) || added.contains(key);
    if (!op.insert) {
      if (present) return std::nullopt;  // effective delete: edges reorder
      continue;                          // deleting an absent edge: no-op
    }
    if (present) continue;  // duplicate insert: no-op
    added.insert(key);
    h = splitmix64(h ^ key);  // appended at the end of the edge list
  }
  return h;
}

std::unique_ptr<CacheEntry> CacheEntry::build(const Graph& g,
                                              const HierarchyParams& params,
                                              std::uint64_t graph_fp,
                                              std::uint64_t params_fp) {
  std::unique_ptr<CacheEntry> entry(new CacheEntry());
  entry->graph_ = std::make_unique<Graph>(g);  // the entry owns its graph
  entry->graph_fp_ = graph_fp;
  entry->params_fp_ = params_fp;
  entry->params_ = params;
  RoundLedger build_ledger;
  entry->hierarchy_.emplace(
      Hierarchy::build(*entry->graph_, params, build_ledger));
  entry->build_rounds_ = build_ledger.total();
  entry->build_phases_ = build_ledger.phases();
  return entry;
}

CacheEntry::RepairResult CacheEntry::repair_to(const Graph& new_g,
                                               std::uint64_t new_fp,
                                               std::uint32_t verify_every) {
  RepairResult res;
  // Repair against the entry's own copy of the mutated graph; the old
  // copy stays alive (and the hierarchy valid) until the repair commits.
  auto ng = std::make_unique<Graph>(new_g);
  RoundLedger repair_ledger;
  res.outcome = hierarchy_->apply_delta(*ng, repair_ledger);
  if (!res.outcome.applied) {
    // Unrepairable: the attempt's charges stand, the entry still
    // describes its old graph.
    repair_rounds_ += res.outcome.repair_rounds;
    return res;
  }

  graph_ = std::move(ng);
  graph_fp_ = new_fp;
  ++repairs_;
  repair_rounds_ += res.outcome.repair_rounds;

  // Sampled full-rebuild equivalence oracle: the first repair of every
  // verify_every window is probed against a fresh build. verify_every
  // defaults to 0 (off) in NDEBUG builds.
  if (verify_every != 0 && repairs_ % verify_every == 1 % verify_every) {
    res.oracle_checked = true;
    const std::uint64_t probe_seed =
        keyed_u64(params_.seed, 0x6f7261636c65ULL, repairs_);
    const EquivalenceReport eq =
        check_full_rebuild_equivalence(*hierarchy_, params_, probe_seed);
    AMIX_CHECK_MSG(eq.ok, eq.detail.c_str());
  }
  return res;
}

HierarchyCache::Lookup HierarchyCache::get_or_build(
    const Graph& g, const HierarchyParams& params) {
  const Key key{graph_fingerprint(g), params_fingerprint(params)};
  ++tick_;
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++hits_;
    it->second->touch(tick_);
    return Lookup{it->second.get(), false};
  }
  ++misses_;
  auto entry = CacheEntry::build(g, params, key.first, key.second);
  entry->touch(tick_);
  record_cost(*entry);
  const CacheEntry* raw = entry.get();
  entries_.emplace(key, std::move(entry));
  evict_over_capacity(key);
  return Lookup{raw, true};
}

void HierarchyCache::set_capacity(std::size_t max_entries) {
  capacity_ = max_entries;
  // Shrinking below the current size evicts immediately; the synthetic
  // "protect" key matches no entry.
  evict_over_capacity(Key{0, 0});
}

void HierarchyCache::evict_over_capacity(const Key& protect) {
  if (capacity_ == 0) return;
  while (entries_.size() > capacity_) {
    std::vector<EvictionCandidate> candidates;
    candidates.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      if (key == protect) continue;  // never evict the entry being returned
      candidates.push_back(EvictionCandidate{key.first, key.second,
                                             entry->cost_rounds(),
                                             entry->last_use()});
    }
    const auto victim = pick_victim(candidates, tick_);
    if (!victim) return;  // only the protected entry remains
    const Key vkey{candidates[*victim].graph_fp, candidates[*victim].params_fp};
    const auto it = entries_.find(vkey);
    AMIX_CHECK(it != entries_.end());
    record_cost(*it->second);  // the build cost outlives the entry
    entries_.erase(it);
    ++evictions_;
  }
}

const CacheEntry* HierarchyCache::find(const Graph& g,
                                       const HierarchyParams& params) const {
  const Key key{graph_fingerprint(g), params_fingerprint(params)};
  const auto it = entries_.find(key);
  return it != entries_.end() ? it->second.get() : nullptr;
}

HierarchyCache::PatchResult HierarchyCache::apply_delta(
    const Graph& old_g, const Graph& new_g,
    std::optional<std::uint64_t> new_fp_hint) {
  PatchResult res;
  const std::uint64_t old_fp = graph_fingerprint(old_g);
  const std::uint64_t new_fp =
      new_fp_hint ? *new_fp_hint : graph_fingerprint(new_g);
  if (old_fp == new_fp) return res;  // structurally identical: nothing to do

  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.first != old_fp) {
      ++it;
      continue;
    }
    const auto next = std::next(it);  // compute before extract invalidates it
    auto node = entries_.extract(it);
    CacheEntry& entry = *node.mapped();

    const CacheEntry::RepairResult rr =
        entry.repair_to(new_g, new_fp, verify_every_);
    res.repair_rounds += rr.outcome.repair_rounds;
    if (rr.oracle_checked) ++res.oracle_checks;

    if (!rr.outcome.applied) {
      // Unrepairable: record what the entry cost, then let it go — the
      // next lookup on the new topology rebuilds from scratch.
      res.last_fallback = rr.outcome.reason;
      ++res.dropped;
      record_cost(entry);
      it = next;
      continue;
    }
    record_cost(entry);

    node.key().first = new_fp;
    // A patched duplicate (another old-topology entry already re-keyed to
    // the same target, params equal) would collide; keep the incumbent.
    const auto ins = entries_.insert(std::move(node));
    if (ins.inserted) {
      ++res.patched;
    } else {
      ++res.dropped;
    }
    it = next;
  }
  return res;
}

std::size_t HierarchyCache::invalidate(const Graph& g) {
  const std::uint64_t fp = graph_fingerprint(g);
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.first == fp) {
      record_cost(*it->second);  // the build cost outlives the entry
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void HierarchyCache::invalidate_all() {
  for (const auto& [key, entry] : entries_) record_cost(*entry);
  entries_.clear();
}

std::optional<std::uint64_t> HierarchyCache::recorded_build_rounds(
    std::uint64_t graph_fp, std::uint64_t params_fp) const {
  for (const CostRecord& r : history_) {
    if (r.graph_fp == graph_fp && r.params_fp == params_fp) {
      return r.build_rounds;
    }
  }
  return std::nullopt;
}

void HierarchyCache::record_cost(const CacheEntry& e) {
  for (CostRecord& r : history_) {
    if (r.graph_fp == e.graph_fp_ && r.params_fp == e.params_fp_) {
      r.build_rounds = e.build_rounds_;
      r.repairs = e.repairs_;
      r.repair_rounds = e.repair_rounds_;
      return;
    }
  }
  history_.push_back(CostRecord{e.graph_fp_, e.params_fp_, e.build_rounds_,
                                e.repairs_, e.repair_rounds_});
}

}  // namespace amix::engine
