#include "engine/ops.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <string>
#include <utility>

#include "congest/comm_graph.hpp"
#include "engine/report_json.hpp"
#include "matching/parallel_matching.hpp"
#include "mincut/tree_packing.hpp"
#include "randwalk/walk_engine.hpp"
#include "routing/clique_emulation.hpp"
#include "routing/hierarchical_router.hpp"
#include "routing/request.hpp"
#include "sssp/bellman_ford.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace amix::engine {
namespace {

using json::emit_bool;
using json::emit_u64;
using json::emit_u64_array;
using json::x1000;

/// Read the next whitespace-separated token as a decimal u32. An absent
/// token leaves *out at its default and succeeds; a present token that
/// is not a full decimal u32 (junk, sign, overflow) fails — a daemon
/// must reject it, not silently zero it the way stream extraction does.
bool next_u32(std::istringstream& ls, std::uint32_t* out) {
  std::string tok;
  if (!(ls >> tok)) return true;
  const char* const end = tok.data() + tok.size();
  const auto [p, ec] = std::from_chars(tok.data(), end, *out);
  return ec == std::errc() && p == end;
}

std::string at_line(const char* kind, std::uint64_t lineno) {
  return std::string(kind) + '@' + std::to_string(lineno);
}

// ---- mst ----------------------------------------------------------------

bool parse_mst(OpParseContext& c) {
  c.spec.op = MstQuery{
      c.weights != nullptr ? *c.weights : distinct_random_weights(c.g, c.rng),
      MstParams{}};
  c.spec.label = at_line("mst", c.lineno);
  return true;
}

void exec_mst(OpExecContext& c) {
  const auto& q = std::get<MstQuery>(c.spec.op);
  MstParams params = q.params;
  params.seed = c.qseed;
  HierarchicalBoruvka algo(c.h, q.weights);
  MstStats s = algo.run(c.ledger, params);
  std::vector<EdgeId> edges = s.edges;
  std::sort(edges.begin(), edges.end());
  c.digest.fold_range(edges);
  c.rep.ok = c.g.num_nodes() == 0 || s.edges.size() + 1 == c.g.num_nodes();
  c.rep.mst = std::move(s);
}

void json_mst(std::ostream& os, const QueryReport& rep) {
  if (!rep.mst.has_value()) return;
  const MstStats& s = *rep.mst;
  os << ",\"mst\":{";
  bool f = true;
  emit_u64(os, "edges", s.edges.size(), f);
  emit_u64(os, "iterations", s.iterations, f);
  emit_u64(os, "routing_instances", s.routing_instances, f);
  emit_u64(os, "routed_packets", s.routed_packets, f);
  emit_u64(os, "max_tree_depth", s.max_tree_depth, f);
  emit_u64(os, "max_tree_indegree", s.max_tree_indegree, f);
  emit_u64(os, "max_indegree_over_degree_x1000",
           x1000(s.max_indegree_over_degree), f);
  os << '}';
}

// ---- route --------------------------------------------------------------

bool parse_route(OpParseContext& c) {
  std::string inst = "perm";
  c.args >> inst;
  std::uint32_t phases = 1;
  if (!next_u32(c.args, &phases)) {
    c.err = "route phases must be a decimal u32";
    return false;
  }
  if (phases > kMaxRoutePhases) {
    c.err = "route phases " + std::to_string(phases) + " exceeds max " +
            std::to_string(kMaxRoutePhases);
    return false;
  }
  std::vector<RouteRequest> reqs;
  if (inst == "perm") {
    reqs = permutation_instance(c.g, c.rng);
  } else if (inst == "demand") {
    reqs = degree_demand_instance(c.g, c.rng);
  } else if (inst == "a2a") {
    reqs = all_to_all_instance(c.g);
  } else {
    c.err = "unknown route instance '" + inst + "'";
    return false;
  }
  c.spec.op = RouteQuery{std::move(reqs), phases};
  c.spec.label = at_line(("route-" + inst).c_str(), c.lineno);
  return true;
}

void exec_route(OpExecContext& c) {
  const auto& q = std::get<RouteQuery>(c.spec.op);
  HierarchicalRouter router(c.h);
  Rng rng(c.qseed);
  RouteStats s = router.route_in_phases(q.requests, q.phases, c.ledger, rng);
  c.digest.fold(s.packets);
  c.digest.fold(s.delivered);
  c.digest.fold(s.max_vid_load);
  c.rep.ok = s.delivered == s.packets;
  c.rep.route = std::move(s);
}

void json_route(std::ostream& os, const QueryReport& rep) {
  if (!rep.route.has_value()) return;
  const RouteStats& s = *rep.route;
  os << ",\"route\":{";
  bool f = true;
  emit_u64(os, "prep_rounds", s.prep_rounds, f);
  emit_u64(os, "hop_rounds", s.hop_rounds, f);
  emit_u64(os, "leaf_rounds", s.leaf_rounds, f);
  emit_u64(os, "packets", s.packets, f);
  emit_u64(os, "delivered", s.delivered, f);
  emit_u64(os, "max_vid_load", s.max_vid_load, f);
  emit_u64(os, "leaf_phases", s.leaf_phases, f);
  emit_u64(os, "route_phases", s.phases, f);
  emit_u64_array(os, "hop_rounds_by_level", s.hop_rounds_by_level, f);
  emit_u64_array(os, "cross_packets_by_level", s.cross_packets_by_level, f);
  os << '}';
}

// ---- clique -------------------------------------------------------------

bool parse_clique(OpParseContext& c) {
  c.spec.op = CliqueQuery{};
  c.spec.label = at_line("clique", c.lineno);
  return true;
}

void exec_clique(OpExecContext& c) {
  const auto& q = std::get<CliqueQuery>(c.spec.op);
  CliqueEmulator emu(c.h);
  Rng rng(c.qseed);
  CliqueEmulationStats s = emu.emulate_round(c.ledger, rng, q.edge_expansion);
  c.digest.fold(s.messages);
  c.digest.fold(s.phases);
  c.rep.ok = c.g.num_nodes() <= 1 || s.messages > 0;
  c.rep.clique = s;
}

void json_clique(std::ostream& os, const QueryReport& rep) {
  if (!rep.clique.has_value()) return;
  os << ",\"clique\":{";
  bool f = true;
  emit_u64(os, "clique_phases", rep.clique->phases, f);
  emit_u64(os, "messages", rep.clique->messages, f);
  emit_u64(os, "lower_bound_x1000", x1000(rep.clique->lower_bound), f);
  os << '}';
}

// ---- walks --------------------------------------------------------------

bool parse_walks(OpParseContext& c) {
  std::uint32_t count = c.g.num_nodes();
  std::uint32_t steps = 8;
  if (!next_u32(c.args, &count) || !next_u32(c.args, &steps)) {
    c.err = "walks count/steps must be decimal u32";
    return false;
  }
  if (count > c.g.num_nodes()) {
    c.err = "walks count " + std::to_string(count) + " exceeds graph nodes " +
            std::to_string(c.g.num_nodes());
    return false;
  }
  if (steps > kMaxWalkSteps) {
    c.err = "walks steps " + std::to_string(steps) + " exceeds max " +
            std::to_string(kMaxWalkSteps);
    return false;
  }
  std::vector<std::uint32_t> starts(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    starts[i] = static_cast<NodeId>(c.rng.next_below(c.g.num_nodes()));
  }
  c.spec.op = WalkQuery{std::move(starts), WalkKind::kLazy, steps};
  c.spec.label = at_line("walks", c.lineno);
  return true;
}

void exec_walks(OpExecContext& c) {
  const auto& q = std::get<WalkQuery>(c.spec.op);
  BaseComm base(c.g);
  ParallelWalkEngine walker(base, Rng(c.qseed));
  WalkStats s;
  const std::vector<std::uint32_t> ends =
      walker.run(q.starts, q.kind, q.steps, c.ledger, &s);
  c.digest.fold_range(ends);
  c.rep.ok = ends.size() == q.starts.size();
  c.rep.walks = s;
}

void json_walks(std::ostream& os, const QueryReport& rep) {
  if (!rep.walks.has_value()) return;
  const WalkStats& s = *rep.walks;
  os << ",\"walks\":{";
  bool f = true;
  emit_u64(os, "graph_rounds", s.graph_rounds, f);
  emit_u64(os, "base_rounds", s.base_rounds, f);
  emit_u64(os, "max_node_load", s.max_node_load, f);
  emit_u64(os, "max_transport_residency", s.max_transport_residency, f);
  emit_u64(os, "total_moves", s.total_moves, f);
  emit_u64(os, "steps", s.steps, f);
  os << '}';
}

// ---- matching -----------------------------------------------------------

bool parse_matching(OpParseContext& c) {
  std::uint32_t phases = 0;
  if (!next_u32(c.args, &phases)) {
    c.err = "matching phases must be a decimal u32";
    return false;
  }
  if (phases > kMaxMatchingPhases) {
    c.err = "matching phases " + std::to_string(phases) + " exceeds max " +
            std::to_string(kMaxMatchingPhases);
    return false;
  }
  c.spec.op = MatchingQuery{phases};
  c.spec.label = at_line("matching", c.lineno);
  return true;
}

void exec_matching(OpExecContext& c) {
  const auto& q = std::get<MatchingQuery>(c.spec.op);
  MatchingStats s =
      distributed_greedy_matching(c.g, c.qseed, c.ledger, q.max_phases);
  c.digest.fold_range(s.edges);
  c.digest.fold(s.phases);
  c.rep.ok = s.consistent && s.maximal;
  c.rep.matching = std::move(s);
}

void json_matching(std::ostream& os, const QueryReport& rep) {
  if (!rep.matching.has_value()) return;
  const MatchingStats& s = *rep.matching;
  os << ",\"matching\":{";
  bool f = true;
  emit_u64(os, "matched_edges", s.edges.size(), f);
  emit_u64(os, "matching_phases", s.phases, f);
  emit_u64(os, "proposals", s.proposals, f);
  emit_u64(os, "kernel_rounds", s.kernel_rounds, f);
  emit_bool(os, "maximal", s.maximal, f);
  emit_bool(os, "consistent", s.consistent, f);
  os << '}';
}

// ---- mincut -------------------------------------------------------------

bool parse_mincut(OpParseContext& c) {
  std::uint32_t trees = 0;
  if (!next_u32(c.args, &trees)) {
    c.err = "mincut trees must be a decimal u32";
    return false;
  }
  if (trees > kMaxMincutTrees) {
    c.err = "mincut trees " + std::to_string(trees) + " exceeds max " +
            std::to_string(kMaxMincutTrees);
    return false;
  }
  c.spec.op = MinCutQuery{trees, true};
  c.spec.label = at_line("mincut", c.lineno);
  return true;
}

void exec_mincut(OpExecContext& c) {
  const auto& q = std::get<MinCutQuery>(c.spec.op);
  Rng rng(c.qseed);
  MincutStats s = distributed_mincut_tree_packing(c.h, rng, c.ledger, q.trees,
                                                  q.two_respecting);
  c.digest.fold(s.cut_value);
  c.digest.fold(s.trees);
  // A packed-tree cut can never beat the best singleton cut's bound, and
  // a connected graph's cut is positive; anything else is a broken run.
  c.rep.ok = s.trees > 0 && s.cut_value > 0 && s.cut_value <= s.min_degree;
  c.rep.mincut = s;
}

void json_mincut(std::ostream& os, const QueryReport& rep) {
  if (!rep.mincut.has_value()) return;
  const MincutStats& s = *rep.mincut;
  os << ",\"mincut\":{";
  bool f = true;
  emit_u64(os, "cut_value", s.cut_value, f);
  emit_u64(os, "trees", s.trees, f);
  emit_u64(os, "pack_rounds", s.pack_rounds, f);
  emit_u64(os, "eval_rounds", s.eval_rounds, f);
  emit_u64(os, "max_tree_rounds", s.max_tree_rounds, f);
  emit_u64(os, "best_one_respecting", s.best_one_respecting, f);
  emit_u64(os, "best_two_respecting", s.best_two_respecting, f);
  emit_u64(os, "min_degree", s.min_degree, f);
  os << '}';
}

// ---- sssp ---------------------------------------------------------------

bool parse_sssp(OpParseContext& c) {
  std::uint32_t source = 0;
  std::uint32_t hops = 0;
  if (!next_u32(c.args, &source) || !next_u32(c.args, &hops)) {
    c.err = "sssp source/hops must be decimal u32";
    return false;
  }
  if (source >= c.g.num_nodes()) {
    c.err = "sssp source " + std::to_string(source) +
            " exceeds graph nodes " + std::to_string(c.g.num_nodes());
    return false;
  }
  if (hops > kMaxSsspHops) {
    c.err = "sssp hops " + std::to_string(hops) + " exceeds max " +
            std::to_string(kMaxSsspHops);
    return false;
  }
  c.spec.op = SsspQuery{
      c.weights != nullptr ? *c.weights : distinct_random_weights(c.g, c.rng),
      source, hops};
  c.spec.label = at_line("sssp", c.lineno);
  return true;
}

void exec_sssp(OpExecContext& c) {
  const auto& q = std::get<SsspQuery>(c.spec.op);
  SsspStats s =
      distributed_sssp(c.g, q.weights, q.source, c.ledger, q.max_hops);
  c.digest.fold_range(s.dist);
  // Unbounded runs must certify exactness; hop-bounded runs soundness.
  c.rep.ok = s.sound && (q.max_hops != 0 || s.relaxed);
  c.rep.sssp = std::move(s);
}

void json_sssp(std::ostream& os, const QueryReport& rep) {
  if (!rep.sssp.has_value()) return;
  const SsspStats& s = *rep.sssp;
  os << ",\"sssp\":{";
  bool f = true;
  emit_u64(os, "source", s.source, f);
  emit_u64(os, "max_hops", s.max_hops, f);
  emit_u64(os, "reached", s.reached, f);
  emit_u64(os, "max_dist", s.max_dist, f);
  emit_u64(os, "dist_sum", s.dist_sum, f);
  emit_u64(os, "relaxations", s.relaxations, f);
  emit_u64(os, "kernel_rounds", s.kernel_rounds, f);
  emit_bool(os, "sound", s.sound, f);
  emit_bool(os, "relaxed", s.relaxed, f);
  os << '}';
}

// ---- the registry -------------------------------------------------------

constexpr std::size_t idx(QueryKind k) { return static_cast<std::size_t>(k); }

constexpr OpRow make_row(QueryKind kind, const char* span_name,
                         const char* wire_syntax, const char* bounds,
                         const char* sample_line, bool (*parse)(OpParseContext&),
                         void (*execute)(OpExecContext&),
                         void (*stats_json)(std::ostream&,
                                            const QueryReport&)) {
  return OpRow{kind,
               kQueryKindInfo[idx(kind)].name,
               kQueryKindInfo[idx(kind)].seed_stream,
               span_name,
               wire_syntax,
               bounds,
               sample_line,
               parse,
               execute,
               stats_json};
}

const std::array<OpRow, kNumQueryKinds> kOpTable{{
    make_row(QueryKind::kMst, "op/mst", "mst", "-", "mst", parse_mst,
             exec_mst, json_mst),
    make_row(QueryKind::kRoute, "op/route", "route perm|demand|a2a [phases]",
             "phases<=4096", "route perm 1", parse_route, exec_route,
             json_route),
    make_row(QueryKind::kClique, "op/clique", "clique", "-", "clique",
             parse_clique, exec_clique, json_clique),
    make_row(QueryKind::kWalks, "op/walks", "walks [count] [steps]",
             "count<=n steps<=4096", "walks 16 6", parse_walks, exec_walks,
             json_walks),
    make_row(QueryKind::kMatching, "op/matching", "matching [phases]",
             "phases<=4096 (0=auto)", "matching", parse_matching,
             exec_matching, json_matching),
    make_row(QueryKind::kMinCut, "op/mincut", "mincut [trees]",
             "trees<=256 (0=auto)", "mincut 4", parse_mincut, exec_mincut,
             json_mincut),
    make_row(QueryKind::kSssp, "op/sssp", "sssp [source] [hops]",
             "source<n hops<=4096 (0=exact)", "sssp 0 0", parse_sssp,
             exec_sssp, json_sssp),
}};

}  // namespace

const std::array<OpRow, kNumQueryKinds>& op_table() {
  // Every row sits in its own kind's slot; a misordered table is caught
  // here, at the single point the registry is served from.
  for (std::size_t i = 0; i < kOpTable.size(); ++i) {
    AMIX_DCHECK(idx(kOpTable[i].kind) == i);
  }
  return kOpTable;
}

const OpRow* find_op(std::string_view word) {
  for (const OpRow& row : op_table()) {
    if (word == row.name) return &row;
  }
  return nullptr;
}

}  // namespace amix::engine
