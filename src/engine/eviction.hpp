#pragma once

// Cost-aware LRU eviction: the ONE victim-selection implementation shared
// by the in-process HierarchyCache and the amixd server's
// SharedHierarchyCache (ROADMAP item 1).
//
// A hierarchy is the worked example of a cache entry whose entries have
// wildly different replacement costs: rebuilding a big entry charges
// 2^O(sqrt(log n log log n)) rounds, rebuilding a small one is almost
// free. Plain LRU would evict by recency alone and happily drop the
// expensive entry to keep three cheap hot ones. The policy here ranks
// candidates by *rebuild cost per idle tick*:
//
//     score(c) = (cost_rounds + 1) / (now - last_use + 1)
//
// and evicts the minimum — the entry that is cheapest to bring back
// relative to how long it has sat unused. Cost comes from the per-key
// CostRecord history (build + repair rounds), which survives drops and
// failed patches, so even an entry that was evicted and rebuilt keeps an
// honest price tag. Recency comes from a logical tick the caches stamp on
// every hit/insert.
//
// Scores are compared by exact 128-bit cross-multiplication — no floats,
// so victim choice is deterministic across platforms, and ties break
// first to the older entry, then to the smaller key.

#include <cstdint>
#include <optional>
#include <span>

namespace amix::engine {

/// One eviction candidate: a cache key with its recorded rebuild cost and
/// the logical tick of its last use.
struct EvictionCandidate {
  std::uint64_t graph_fp = 0;
  std::uint64_t params_fp = 0;
  std::uint64_t cost_rounds = 0;  // recorded build + repair rounds
  std::uint64_t last_use = 0;     // logical tick of last hit/insert
};

/// True when `a` is a strictly better victim than `b` at clock `now`:
/// lower cost-per-idle-tick score, ties broken by older last_use, then by
/// smaller (graph_fp, params_fp) key. A strict weak ordering, so victim
/// choice is a pure function of the candidate set and the clock.
bool better_victim(const EvictionCandidate& a, const EvictionCandidate& b,
                   std::uint64_t now);

/// Index of the candidate to evict at clock `now` (nullopt when empty).
std::optional<std::size_t> pick_victim(
    std::span<const EvictionCandidate> candidates, std::uint64_t now);

}  // namespace amix::engine
