#pragma once

// HierarchyCache: built hierarchies, keyed by (graph fingerprint,
// HierarchyParams fingerprint), shared across queries and batches.
//
// The hierarchy of Lemmas 3.1–3.3 is the expensive reusable substrate:
// every theorem runs on top of the same structure, so paying
// Hierarchy::build once per (graph, params) and amortizing it across a
// whole query stream is the engine's first-order saving. Entries are
// self-contained: each one keeps its OWN copy of the graph and builds the
// hierarchy against that copy, so a cached hierarchy never dangles when
// the caller's graph goes away or churns.
//
// Invalidation vs patching: lookups key on the graph's CONTENT (a
// fingerprint over the node count and edge list), so a churned topology
// naturally misses and rebuilds. Under edge churn that is all-or-nothing;
// apply_delta() instead repairs every entry of the old topology in place
// (Hierarchy::apply_delta) and RE-KEYS it to the mutated graph's
// fingerprint, so interleaved query batches keep hitting. Entries that
// cannot be repaired (see the fallback gates in src/hierarchy/delta.cpp)
// are dropped and rebuild lazily on the next lookup.
//
// Cost history: dropping an entry — explicitly, on a failed patch, or by
// eviction — never forgets what it cost to build. A CostRecord per
// (graph, params) key survives in cost_history(), which is what the
// repair-vs-rebuild decision and the cost-aware LRU below consult.
//
// Eviction: set_capacity(k) bounds the cache to k entries; overflow
// evicts by the shared cost-aware LRU policy (engine/eviction.hpp —
// lowest rebuild-cost-per-idle-tick goes first). The amixd server's
// SharedHierarchyCache keys, builds, repairs and evicts through the same
// CacheEntry::build / CacheEntry::repair_to / pick_victim primitives, so
// both caches have ONE implementation of every policy decision.
// See DESIGN.md §11, §12 and §14.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/eviction.hpp"
#include "hierarchy/hierarchy.hpp"

namespace amix::engine {

/// Fingerprint of a graph's topology: node count + edge list folded
/// through splitmix64. Content-keyed, so a structurally identical copy
/// hits the same cache entry.
std::uint64_t graph_fingerprint(const Graph& g);

/// Fingerprint of every field of HierarchyParams (two params structs
/// collide only if they would build identical hierarchies).
std::uint64_t params_fingerprint(const HierarchyParams& p);

/// Incremental fingerprint update: the fingerprint the graph would have
/// after `delta` is applied to `old_g`. The edge-list fold is order
/// sensitive and appends-only can extend it in O(|delta|); any effective
/// deletion reorders edge positions, so the answer is nullopt and the
/// caller must refingerprint the mutated graph in O(m). Inapplicable ops
/// (duplicate inserts, out-of-range, self-loops) are skipped exactly as
/// Graph::apply_delta skips them.
std::optional<std::uint64_t> fingerprint_after_delta(std::uint64_t old_fp,
                                                     const Graph& old_g,
                                                     const GraphDelta& delta);

/// One cached build: the graph copy, the hierarchy on it, and what the
/// build (and any subsequent repairs) charged — so batches can report
/// amortized construction cost without rebuilding.
class CacheEntry {
 public:
  /// Build a self-contained entry for (g, params): the entry copies `g`,
  /// builds the hierarchy against its own copy, and records the build
  /// ledger (rounds + phases). `graph_fp`/`params_fp` are the
  /// fingerprints the caller keys the entry under (passed in so callers
  /// that already know them skip the O(m) refingerprint).
  static std::unique_ptr<CacheEntry> build(const Graph& g,
                                           const HierarchyParams& params,
                                           std::uint64_t graph_fp,
                                           std::uint64_t params_fp);

  /// Repair this entry in place so it describes `new_g` (fingerprint
  /// `new_fp`): copies `new_g`, runs Hierarchy::apply_delta against the
  /// copy, and on success swaps the copy in and re-stamps graph_fp. On
  /// fallback the entry is untouched (still valid for its old graph) and
  /// the charged rounds are recorded. When `verify_every` != 0, the first
  /// repair of every verify_every window is probed against a fresh
  /// rebuild (AMIX_CHECK-fatal on divergence); a run probe is reported in
  /// the outcome's `oracle_checked`.
  struct RepairResult {
    RepairOutcome outcome;
    bool oracle_checked = false;
  };
  RepairResult repair_to(const Graph& new_g, std::uint64_t new_fp,
                         std::uint32_t verify_every);

  const Hierarchy& hierarchy() const { return *hierarchy_; }
  const Graph& graph() const { return *graph_; }
  std::uint64_t build_rounds() const { return build_rounds_; }
  const std::vector<std::pair<std::string, std::uint64_t>>& build_phases()
      const {
    return build_phases_;
  }
  std::uint64_t graph_fp() const { return graph_fp_; }
  std::uint64_t params_fp() const { return params_fp_; }
  const HierarchyParams& params() const { return params_; }
  std::uint32_t repairs() const { return repairs_; }
  std::uint64_t repair_rounds() const { return repair_rounds_; }

  /// Recency stamp for the cost-aware LRU (a logical tick, not wall
  /// time). Relaxed atomic so the server's lock-free readers may stamp
  /// hits while an evicting writer reads — the stamp is a heuristic
  /// input, and no ordering is derived from it.
  void touch(std::uint64_t tick) {
    last_use_.store(tick, std::memory_order_relaxed);
  }
  std::uint64_t last_use() const {
    return last_use_.load(std::memory_order_relaxed);
  }
  /// The entry's rebuild price as the eviction policy sees it.
  std::uint64_t cost_rounds() const { return build_rounds_ + repair_rounds_; }

 private:
  friend class HierarchyCache;
  CacheEntry() = default;

  // The graph lives behind a stable address: the hierarchy points at it,
  // and a patch must keep the OLD graph alive while the repair runs
  // against the new one, then swap.
  std::unique_ptr<Graph> graph_;
  std::optional<Hierarchy> hierarchy_;
  std::uint64_t build_rounds_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> build_phases_;
  std::uint64_t graph_fp_ = 0;
  std::uint64_t params_fp_ = 0;
  HierarchyParams params_;
  std::uint32_t repairs_ = 0;
  std::uint64_t repair_rounds_ = 0;
  std::atomic<std::uint64_t> last_use_{0};
};

/// What building (and repairing) one (graph, params) key cost. Kept even
/// after the entry itself is dropped.
struct CostRecord {
  std::uint64_t graph_fp = 0;
  std::uint64_t params_fp = 0;
  std::uint64_t build_rounds = 0;
  std::uint32_t repairs = 0;
  std::uint64_t repair_rounds = 0;
};

class HierarchyCache {
 public:
  struct Lookup {
    const CacheEntry* entry = nullptr;
    bool built = false;  // true when this call paid for the build
  };

  /// Result of patching the cache across one topology mutation.
  struct PatchResult {
    std::size_t patched = 0;  // entries repaired + re-keyed in place
    std::size_t dropped = 0;  // entries that fell back (rebuild on demand)
    std::uint64_t repair_rounds = 0;  // total charged by the repairs
    std::size_t oracle_checks = 0;    // sampled equivalence probes run
    const char* last_fallback = "";   // reason of the last drop, if any
  };

  /// The cached hierarchy for (g, params), building (and charging the
  /// entry's recorded ledger) on first use.
  Lookup get_or_build(const Graph& g, const HierarchyParams& params);

  /// Lookup without building; nullptr when absent.
  const CacheEntry* find(const Graph& g, const HierarchyParams& params) const;

  /// Repair every entry keyed to `old_g`'s topology so it describes
  /// `new_g`, re-keying it under the new fingerprint (pass `new_fp_hint`
  /// from fingerprint_after_delta to skip the O(m) refingerprint).
  /// Entries whose repair falls back are dropped (their cost is recorded)
  /// and rebuild lazily. Repairs are sampled-verified against a fresh
  /// rebuild under AMIX_CHECK every `verify_every()` repairs.
  PatchResult apply_delta(const Graph& old_g, const Graph& new_g,
                          std::optional<std::uint64_t> new_fp_hint = {});

  /// Drop every entry built for a graph with this topology (any params),
  /// keeping their cost records. Returns the number of entries dropped.
  std::size_t invalidate(const Graph& g);
  void invalidate_all();

  /// Build/repair costs of every key ever completed, including dropped
  /// entries (newest last; one record per key, updated in place).
  const std::vector<CostRecord>& cost_history() const { return history_; }
  /// Recorded build cost for a key, live or dropped; nullopt if never
  /// built.
  std::optional<std::uint64_t> recorded_build_rounds(
      std::uint64_t graph_fp, std::uint64_t params_fp) const;

  /// Oracle sampling period: 0 disables, 1 verifies every repair, k
  /// verifies the first of every k repairs per entry. Defaults to 16 in
  /// debug builds and 0 (off) in NDEBUG builds.
  void set_verify_every(std::uint32_t n) { verify_every_ = n; }
  std::uint32_t verify_every() const { return verify_every_; }

  /// Bound the cache to `max_entries` (0 = unbounded, the default). When
  /// an insert overflows the bound, the cost-aware LRU policy
  /// (engine/eviction.hpp) evicts lowest rebuild-cost-per-idle-tick
  /// first; the just-built entry is never the victim of its own insert.
  /// Evicted entries keep their cost records.
  void set_capacity(std::size_t max_entries);
  std::size_t capacity() const { return capacity_; }
  std::uint64_t evictions() const { return evictions_; }

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // (graph, params) fps

  void record_cost(const CacheEntry& e);
  void evict_over_capacity(const Key& protect);

  std::map<Key, std::unique_ptr<CacheEntry>> entries_;
  std::vector<CostRecord> history_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::size_t capacity_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t tick_ = 0;
#ifdef NDEBUG
  std::uint32_t verify_every_ = 0;
#else
  std::uint32_t verify_every_ = 16;
#endif
};

}  // namespace amix::engine
