#pragma once

// HierarchyCache: built hierarchies, keyed by (graph fingerprint,
// HierarchyParams fingerprint), shared across queries and batches.
//
// The hierarchy of Lemmas 3.1–3.3 is the expensive reusable substrate:
// every theorem runs on top of the same structure, so paying
// Hierarchy::build once per (graph, params) and amortizing it across a
// whole query stream is the engine's first-order saving. Entries are
// self-contained: each one keeps its OWN copy of the graph and builds the
// hierarchy against that copy, so a cached hierarchy never dangles when
// the caller's graph goes away or churns.
//
// Invalidation: lookups key on the graph's CONTENT (a fingerprint over
// the node count and edge list), so a churned topology naturally misses
// and rebuilds. Explicit invalidation (invalidate / invalidate_all) is
// for reclaiming memory and for forcing a rebuild of a graph that is
// about to be mutated in place. See DESIGN.md §11.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "hierarchy/hierarchy.hpp"

namespace amix::engine {

/// Fingerprint of a graph's topology: node count + edge list folded
/// through splitmix64. Content-keyed, so a structurally identical copy
/// hits the same cache entry.
std::uint64_t graph_fingerprint(const Graph& g);

/// Fingerprint of every field of HierarchyParams (two params structs
/// collide only if they would build identical hierarchies).
std::uint64_t params_fingerprint(const HierarchyParams& p);

/// One cached build: the graph copy, the hierarchy on it, and what the
/// build charged (so batches can report amortized construction cost
/// without rebuilding).
class CacheEntry {
 public:
  const Hierarchy& hierarchy() const { return *hierarchy_; }
  const Graph& graph() const { return graph_; }
  std::uint64_t build_rounds() const { return build_rounds_; }
  const std::vector<std::pair<std::string, std::uint64_t>>& build_phases()
      const {
    return build_phases_;
  }
  std::uint64_t graph_fp() const { return graph_fp_; }
  std::uint64_t params_fp() const { return params_fp_; }

 private:
  friend class HierarchyCache;
  Graph graph_;
  std::optional<Hierarchy> hierarchy_;
  std::uint64_t build_rounds_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> build_phases_;
  std::uint64_t graph_fp_ = 0;
  std::uint64_t params_fp_ = 0;
};

class HierarchyCache {
 public:
  struct Lookup {
    const CacheEntry* entry = nullptr;
    bool built = false;  // true when this call paid for the build
  };

  /// The cached hierarchy for (g, params), building (and charging the
  /// entry's recorded ledger) on first use.
  Lookup get_or_build(const Graph& g, const HierarchyParams& params);

  /// Lookup without building; nullptr when absent.
  const CacheEntry* find(const Graph& g, const HierarchyParams& params) const;

  /// Drop every entry built for a graph with this topology (any params).
  /// Returns the number of entries dropped.
  std::size_t invalidate(const Graph& g);
  void invalidate_all() { entries_.clear(); }

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // (graph, params) fps
  std::map<Key, std::unique_ptr<CacheEntry>> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace amix::engine
