#include "engine/schedule.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace amix::engine {

std::uint32_t ScheduleProbe::on_token_move(const CommGraph& g,
                                           std::uint64_t arc) {
  const std::uint32_t extra =
      inner_ != nullptr ? inner_->on_token_move(g, arc) : 0;
  pending_[&g][arc] += 1 + extra;
  out_.token_slots += 1 + extra;
  return extra;
}

void ScheduleProbe::on_step_commit(const CommGraph& g, std::uint32_t charged) {
  StepRecord step;
  step.graph_key = resolver_.resolve(g);
  step.cost = charged;
  step.round_cost = g.round_cost();
  if (const auto it = pending_.find(&g); it != pending_.end()) {
    step.arc_loads.assign(it->second.begin(), it->second.end());
    std::sort(step.arc_loads.begin(), step.arc_loads.end());
    it->second.clear();
  }
  out_.transport_base_rounds +=
      static_cast<std::uint64_t>(charged) * step.round_cost;
  out_.steps.push_back(std::move(step));
  if (inner_ != nullptr) inner_->on_step_commit(g, charged);
}

bool ScheduleProbe::on_kernel_deliver(NodeId from, NodeId to,
                                      std::uint64_t round) {
  return inner_ == nullptr || inner_->on_kernel_deliver(from, to, round);
}

void ScheduleProbe::on_kernel_round_order(std::uint64_t round,
                                          std::span<NodeId> order) {
  if (inner_ != nullptr) inner_->on_kernel_round_order(round, order);
}

MultiplexStats multiplex(std::span<const QuerySchedule> schedules) {
  MultiplexStats mx;
  std::vector<std::size_t> cursor(schedules.size(), 0);
  for (const QuerySchedule& q : schedules) {
    mx.standalone_rounds += q.transport_base_rounds;
    mx.steps += q.steps.size();
  }

  // Scratch for merging one group's arc loads; reused across groups.
  std::unordered_map<std::uint64_t, std::uint32_t> merged;
  std::vector<std::size_t> group;

  std::size_t remaining = mx.steps;
  while (remaining > 0) {
    // Leader: the lowest-indexed query with schedule left; its head step
    // fixes the group's graph.
    std::size_t lead = schedules.size();
    for (std::size_t q = 0; q < schedules.size(); ++q) {
      if (cursor[q] < schedules[q].steps.size()) {
        lead = q;
        break;
      }
    }
    AMIX_CHECK(lead < schedules.size());
    const StepRecord& head = schedules[lead].steps[cursor[lead]];
    const std::uint32_t key = head.graph_key;

    group.clear();
    group.push_back(lead);
    if (key != kUnsharedKey) {
      for (std::size_t q = lead + 1; q < schedules.size(); ++q) {
        if (cursor[q] < schedules[q].steps.size() &&
            schedules[q].steps[cursor[q]].graph_key == key) {
          group.push_back(q);
        }
      }
    }

    // Merged cost: per-arc loads add (the arcs are the same physical
    // links), so the group needs max-arc-of-sums rounds of that graph.
    // Never charge less than any member's standalone step cost.
    std::uint32_t cost = 0;
    std::uint64_t round_cost = head.round_cost;
    if (group.size() == 1) {
      cost = head.cost;
    } else {
      merged.clear();
      for (const std::size_t q : group) {
        const StepRecord& s = schedules[q].steps[cursor[q]];
        AMIX_DCHECK(s.round_cost == round_cost);
        cost = std::max(cost, s.cost);
        for (const auto& [arc, load] : s.arc_loads) merged[arc] += load;
      }
      for (const auto& [arc, load] : merged) cost = std::max(cost, load);
    }

    mx.rounds += static_cast<std::uint64_t>(cost) * round_cost;
    ++mx.groups;
    if (group.size() > 1) ++mx.shared_groups;
    for (const std::size_t q : group) ++cursor[q];
    remaining -= group.size();
  }
  AMIX_CHECK(mx.rounds <= mx.standalone_rounds);
  return mx;
}

}  // namespace amix::engine
