#pragma once

// Query specifications for the multi-query engine.
//
// A QuerySpec names one unit of work against a shared graph: an MST
// computation, a batch of permutation-routing requests, one emulated
// clique round, a parallel-walk job, or one of the Ghaffari–Li
// transformation ops (matching, min cut, SSSP). Every spec carries its
// own seed, and ALL of a query's randomness is a pure function of that
// seed (via query_seed below) — never of the submission order, the
// thread that executes it, or the other queries in the batch. That
// independence is what makes per-query round attribution under the
// multiplexer identical to a standalone run of the same spec, which
// tests/test_engine.cpp pins.
//
// Adding a kind: add the payload struct, one variant alternative, one
// QueryKind enumerator, and one kQueryKindInfo row — all in this file,
// in the same position — then one OpRow in engine/ops.cpp (parse rule,
// executor, report serializer). The static_asserts below and the op
// table's own assertions fail the build on any mismatch, so a new kind
// cannot be silently mislabeled or half-registered.

#include <array>
#include <cstdint>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "graph/spectral.hpp"  // WalkKind
#include "graph/weighted_graph.hpp"
#include "mst/hierarchical_boruvka.hpp"
#include "routing/request.hpp"
#include "util/rng.hpp"

namespace amix {

/// MST of the shared graph under `weights` (Theorem 1.1). The engine
/// overrides `params.seed` with the spec's derived seed.
struct MstQuery {
  Weights weights;
  MstParams params;
};

/// Permutation-routing batch (Theorem 1.2). `phases` as in
/// HierarchicalRouter::route_in_phases (0 = pick K automatically).
struct RouteQuery {
  std::vector<RouteRequest> requests;
  std::uint32_t phases = 1;
};

/// One emulated round of the congested clique (Theorem 1.3).
/// `edge_expansion` feeds the reported lower bound only (<= 0 skips it).
struct CliqueQuery {
  double edge_expansion = 0.0;
};

/// Parallel random walks from `starts` for `steps` steps on the base
/// graph (Lemma 2.5 accounting).
struct WalkQuery {
  std::vector<std::uint32_t> starts;
  WalkKind kind = WalkKind::kLazy;
  std::uint32_t steps = 0;
};

/// Maximal matching (a 1/2-approximation of maximum matching) by the
/// Israeli–Itai parallel proposal algorithm — the Ghaffari–Li
/// transformation catalogue's simplest entry. `max_phases` caps the
/// proposal phases (0 derives a generous O(log n) cap).
struct MatchingQuery {
  std::uint32_t max_phases = 0;
};

/// Approximate global min cut by greedy spanning-tree packing, every
/// packed tree a real distributed MST run on the shared hierarchy
/// (paper Section 4's closing claim; mincut/tree_packing.hpp).
struct MinCutQuery {
  std::uint32_t trees = 0;  // 0 = Theta(log n)
  bool two_respecting = true;
};

/// Single-source shortest paths by distributed Bellman–Ford.
/// `max_hops = 0` runs to the quiet-round exactness certificate; H > 0
/// stops after H relaxation iterations (the hop-bounded approximation).
struct SsspQuery {
  Weights weights;
  NodeId source = 0;
  std::uint32_t max_hops = 0;
};

enum class QueryKind : std::uint8_t {
  kMst,
  kRoute,
  kClique,
  kWalks,
  kMatching,
  kMinCut,
  kSssp,
};

struct QuerySpec {
  std::variant<MstQuery, RouteQuery, CliqueQuery, WalkQuery, MatchingQuery,
               MinCutQuery, SsspQuery>
      op;
  /// The query's randomness root. Two specs with equal ops and equal
  /// seeds produce bit-identical results and charges; give distinct
  /// seeds to queries meant to be sampled independently.
  std::uint64_t seed = 1;
  /// Optional display name; defaults to "<kind>-<submission index>".
  std::string label;
};

using QueryOpVariant = decltype(QuerySpec::op);

/// Number of registered kinds — the one count every per-kind table is
/// sized by, so a new variant alternative that misses a table is a
/// compile error, not a silent fallback.
inline constexpr std::size_t kNumQueryKinds =
    std::variant_size_v<QueryOpVariant>;

// The variant's alternative order IS the QueryKind numbering; query_kind
// below relies on it, so pin every correspondence at compile time.
static_assert(kNumQueryKinds ==
              static_cast<std::size_t>(QueryKind::kSssp) + 1);
#define AMIX_ASSERT_KIND_SLOT(kind, payload)                             \
  static_assert(                                                         \
      std::is_same_v<std::variant_alternative_t<                         \
                         static_cast<std::size_t>(QueryKind::kind),      \
                         QueryOpVariant>,                                \
                     payload>,                                           \
      "QuerySpec variant order must match QueryKind: " #kind)
AMIX_ASSERT_KIND_SLOT(kMst, MstQuery);
AMIX_ASSERT_KIND_SLOT(kRoute, RouteQuery);
AMIX_ASSERT_KIND_SLOT(kClique, CliqueQuery);
AMIX_ASSERT_KIND_SLOT(kWalks, WalkQuery);
AMIX_ASSERT_KIND_SLOT(kMatching, MatchingQuery);
AMIX_ASSERT_KIND_SLOT(kMinCut, MinCutQuery);
AMIX_ASSERT_KIND_SLOT(kSssp, SsspQuery);
#undef AMIX_ASSERT_KIND_SLOT

inline QueryKind query_kind(const QuerySpec& spec) {
  return static_cast<QueryKind>(spec.op.index());
}

/// The compile-time columns of the op table: wire/report name and seed
/// stream, one row per kind, indexed by QueryKind. The runtime columns
/// (parse rule, size bounds, executor, serializer) are engine/ops.cpp's
/// OpRow, which static_asserts against this array.
struct QueryKindInfo {
  const char* name;           // op word on the wire, kind tag in reports
  std::uint64_t seed_stream;  // per-kind stream constant (see query_seed)
};

inline constexpr std::array<QueryKindInfo, kNumQueryKinds> kQueryKindInfo{{
    {"mst", 0x6d73742d71756572ULL},
    {"route", 0x726f7574652d7175ULL},
    {"clique", 0x636c697175652d71ULL},
    {"walks", 0x77616c6b2d717565ULL},
    {"matching", 0x6d617463682d7175ULL},
    {"mincut", 0x6d696e6375742d71ULL},
    {"sssp", 0x737373702d717565ULL},
}};

/// Exhaustive by construction: indexes the per-kind table, no fallback
/// row to silently mislabel a new kind.
inline constexpr const char* query_kind_name(QueryKind k) {
  return kQueryKindInfo[static_cast<std::size_t>(k)].name;
}

/// Per-kind stream constant: a spec's effective seed is
/// splitmix64(spec.seed ^ stream), so the same numeric seed used for an
/// MST query and a route query still yields independent randomness.
inline constexpr std::uint64_t seed_stream(QueryKind k) {
  return kQueryKindInfo[static_cast<std::size_t>(k)].seed_stream;
}

/// The effective seed a spec's algorithm runs with. Documented (and
/// pinned by test) so a standalone run of the documented low-level API —
/// e.g. `Rng rng(query_seed(spec)); router.route_in_phases(...)` — is
/// bit-identical to the engine's execution of the same spec.
inline std::uint64_t query_seed(const QuerySpec& spec) {
  return splitmix64(spec.seed ^ seed_stream(query_kind(spec)));
}

}  // namespace amix
