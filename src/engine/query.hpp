#pragma once

// Query specifications for the multi-query engine.
//
// A QuerySpec names one unit of work against a shared graph: an MST
// computation, a batch of permutation-routing requests, one emulated
// clique round, or a parallel-walk job. Every spec carries its own seed,
// and ALL of a query's randomness is a pure function of that seed (via
// query_seed below) — never of the submission order, the thread that
// executes it, or the other queries in the batch. That independence is
// what makes per-query round attribution under the multiplexer identical
// to a standalone run of the same spec, which tests/test_engine.cpp pins.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "graph/spectral.hpp"  // WalkKind
#include "graph/weighted_graph.hpp"
#include "mst/hierarchical_boruvka.hpp"
#include "routing/request.hpp"
#include "util/rng.hpp"

namespace amix {

/// MST of the shared graph under `weights` (Theorem 1.1). The engine
/// overrides `params.seed` with the spec's derived seed.
struct MstQuery {
  Weights weights;
  MstParams params;
};

/// Permutation-routing batch (Theorem 1.2). `phases` as in
/// HierarchicalRouter::route_in_phases (0 = pick K automatically).
struct RouteQuery {
  std::vector<RouteRequest> requests;
  std::uint32_t phases = 1;
};

/// One emulated round of the congested clique (Theorem 1.3).
/// `edge_expansion` feeds the reported lower bound only (<= 0 skips it).
struct CliqueQuery {
  double edge_expansion = 0.0;
};

/// Parallel random walks from `starts` for `steps` steps on the base
/// graph (Lemma 2.5 accounting).
struct WalkQuery {
  std::vector<std::uint32_t> starts;
  WalkKind kind = WalkKind::kLazy;
  std::uint32_t steps = 0;
};

enum class QueryKind : std::uint8_t { kMst, kRoute, kClique, kWalks };

struct QuerySpec {
  std::variant<MstQuery, RouteQuery, CliqueQuery, WalkQuery> op;
  /// The query's randomness root. Two specs with equal ops and equal
  /// seeds produce bit-identical results and charges; give distinct
  /// seeds to queries meant to be sampled independently.
  std::uint64_t seed = 1;
  /// Optional display name; defaults to "<kind>-<submission index>".
  std::string label;
};

inline QueryKind query_kind(const QuerySpec& spec) {
  return static_cast<QueryKind>(spec.op.index());
}

inline const char* query_kind_name(QueryKind k) {
  switch (k) {
    case QueryKind::kMst: return "mst";
    case QueryKind::kRoute: return "route";
    case QueryKind::kClique: return "clique";
    case QueryKind::kWalks: return "walks";
  }
  return "?";
}

// Per-kind stream constants: a spec's effective seed is
// splitmix64(spec.seed ^ stream), so the same numeric seed used for an
// MST query and a route query still yields independent randomness.
inline constexpr std::uint64_t kMstSeedStream = 0x6d73742d71756572ULL;
inline constexpr std::uint64_t kRouteSeedStream = 0x726f7574652d7175ULL;
inline constexpr std::uint64_t kCliqueSeedStream = 0x636c697175652d71ULL;
inline constexpr std::uint64_t kWalkSeedStream = 0x77616c6b2d717565ULL;

inline constexpr std::uint64_t seed_stream(QueryKind k) {
  switch (k) {
    case QueryKind::kMst: return kMstSeedStream;
    case QueryKind::kRoute: return kRouteSeedStream;
    case QueryKind::kClique: return kCliqueSeedStream;
    case QueryKind::kWalks: return kWalkSeedStream;
  }
  return 0;
}

/// The effective seed a spec's algorithm runs with. Documented (and
/// pinned by test) so a standalone run of the documented low-level API —
/// e.g. `Rng rng(query_seed(spec)); router.route_in_phases(...)` — is
/// bit-identical to the engine's execution of the same spec.
inline std::uint64_t query_seed(const QuerySpec& spec) {
  return splitmix64(spec.seed ^ seed_stream(query_kind(spec)));
}

}  // namespace amix
