#include "obs/metrics.hpp"

#include <bit>

namespace amix::obs {

void Histogram::record(std::uint64_t v) {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
  const std::size_t b = v <= 1 ? 0 : static_cast<std::size_t>(
                                         63 - std::countl_zero(v));
  if (buckets.size() <= b) buckets.resize(b + 1, 0);
  ++buckets[b];
}

std::uint64_t MetricsRegistry::value_or(std::string_view name,
                                        std::uint64_t fallback) const {
  if (const std::uint64_t* g = gauges_.find(name)) return *g;
  if (const std::uint64_t* c = counters_.find(name)) return *c;
  return fallback;
}

bool MetricsRegistry::has(std::string_view name) const {
  return gauges_.contains(name) || counters_.contains(name);
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  hists_.clear();
}

void write_json_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Control characters never appear in metric/span names, but the
          // exporter must not emit invalid JSON if one sneaks in.
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

namespace {

void write_scalar_map(std::ostream& os, const OrderedMap<std::uint64_t>& m) {
  os << '{';
  bool first = true;
  for (const auto& [name, v] : m) {
    if (!first) os << ',';
    first = false;
    os << '"';
    write_json_escaped(os, name);
    os << "\":" << v;
  }
  os << '}';
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"counters\":";
  write_scalar_map(os, counters_);
  os << ",\"gauges\":";
  write_scalar_map(os, gauges_);
  os << ",\"histograms\":{";
  bool first = true;
  for (const auto& [name, h] : hists_) {
    if (!first) os << ',';
    first = false;
    os << '"';
    write_json_escaped(os, name);
    os << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"min\":" << h.min << ",\"max\":" << h.max << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b) os << ',';
      os << h.buckets[b];
    }
    os << "]}";
  }
  os << "}}";
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "kind,name,value\n";
  for (const auto& [name, v] : counters_) {
    os << "counter," << name << ',' << v << '\n';
  }
  for (const auto& [name, v] : gauges_) {
    os << "gauge," << name << ',' << v << '\n';
  }
  for (const auto& [name, h] : hists_) {
    os << "hist_count," << name << ',' << h.count << '\n';
    os << "hist_sum," << name << ',' << h.sum << '\n';
    os << "hist_min," << name << ',' << h.min << '\n';
    os << "hist_max," << name << ',' << h.max << '\n';
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << "hist_bucket_p" << b << ',' << name << ',' << h.buckets[b]
         << '\n';
    }
  }
}

std::uint64_t ratio_x1000(std::uint64_t observed, std::uint64_t envelope) {
  if (envelope == 0) return observed == 0 ? 0 : ~std::uint64_t{0};
  // 1000*observed cannot overflow for the magnitudes the simulator
  // produces (rounds and loads are far below 2^54), so plain integer
  // arithmetic with round-to-nearest is safe.
  return (observed * 1000 + envelope / 2) / envelope;
}

}  // namespace amix::obs
