#pragma once

// BoundChecker: compare observed metrics against the paper's asymptotic
// envelopes.
//
// Annotation sites publish "<lemma>/..._x1000" gauges holding
// 1000 * observed / envelope, where the envelope is the lemma's bound
// with constant 1 (e.g. Lemma 2.4's k·d(v) + log2 n, Lemma 3.1/3.2's
// log2(n)^2 per level). The checker multiplies each envelope by a
// configurable constant — asymptotic statements hide constants, so the
// reproduction pins them empirically (DESIGN.md §9 records the measured
// headroom) — and flags any ratio exceeding it. A violation means either
// the implementation regressed past its measured constants or a bound
// was mis-derived; both are worth failing a run over, and `amixctl
// trace` exits nonzero on them.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace amix::obs {

struct BoundConstants {
  /// Lemma 2.4: max walk tokens resident at a node vs k·d(v) + log2 n.
  /// Measured ≤ ~1.4x across the k-sweep (EXPERIMENTS.md E6); 4x leaves
  /// regression headroom without masking a real blow-up.
  std::uint64_t lemma24_c_x1000 = 4000;

  /// Lemma 3.1/3.2: per-level emulation overhead vs log2(n)^2. The
  /// measured constant is ~5x on expanders (README "honest caveat") but
  /// reaches ~18.8x on the corpus's worst mixer (barbell-16, where the
  /// log2(n)^2 envelope is tiny); 25x covers the measured worst case with
  /// headroom without masking an asymptotic blow-up.
  std::uint64_t lemma3x_c_x1000 = 25000;

  /// Ghaffari–Li matching transformation: Israeli–Itai proposal phases
  /// vs log2 n. The expected phase count is O(log n) with a small
  /// constant (each phase kills a constant fraction of match-eligible
  /// edges in expectation); 8x covers the corpus's measured worst case
  /// with headroom.
  std::uint64_t glmatch_c_x1000 = 8000;

  /// Ghaffari–Li min cut: total tree-packing rounds vs trees x the
  /// single most expensive packed-tree MST. Greedy packing reuses the
  /// shared hierarchy, so total work should stay within ~1x of the
  /// per-tree envelope times the pack size; 2x flags a pack whose later
  /// trees degrade.
  std::uint64_t glcut_c_x1000 = 2000;

  /// Ghaffari–Li SSSP: Bellman–Ford kernel rounds vs the source's
  /// unweighted eccentricity + 2 (the exactness certificate's quiet
  /// round included). Weighted relaxation can re-propagate along long
  /// hop paths, so allow up to 10x the hop radius before flagging.
  std::uint64_t glsssp_c_x1000 = 10000;
};

struct BoundEntry {
  std::string metric;           // the ratio gauge that was checked
  std::string lemma;            // "Lemma 2.4" / "Lemma 3.1/3.2"
  std::uint64_t observed_x1000; // 1000 * observed / unit-constant envelope
  std::uint64_t limit_x1000;    // the configured constant
  bool ok = true;
};

struct BoundReport {
  std::vector<BoundEntry> entries;

  bool ok() const {
    for (const BoundEntry& e : entries) {
      if (!e.ok) return false;
    }
    return true;
  }
  std::uint64_t violations() const {
    std::uint64_t n = 0;
    for (const BoundEntry& e : entries) n += !e.ok;
    return n;
  }

  /// One line per checked envelope; "(no checks applicable)" when the run
  /// published none of the ratio gauges.
  std::string summary() const;
};

class BoundChecker {
 public:
  explicit BoundChecker(BoundConstants c = {}) : c_(c) {}

  /// Evaluate every published ratio gauge against its envelope constant.
  /// Gauges a run never published (e.g. no walks -> no Lemma 2.4 data)
  /// are skipped, not failed.
  BoundReport check(const MetricsRegistry& m) const;

  const BoundConstants& constants() const { return c_; }

 private:
  BoundConstants c_;
};

}  // namespace amix::obs
