#pragma once

// MetricsRegistry: counters / gauges / histograms for a run, with
// deterministic JSON and CSV export.
//
// Everything is unsigned 64-bit. Ratios against analytic envelopes (the
// Lemma 2.4 / Lemma 3.1-3.2 dashboards) are stored as integers scaled by
// 1000 ("..._x1000") so exports never format floating point — float
// printing is the classic way byte-identical-across-machines dies.
// Iteration order is insertion order via OrderedMap, which together with
// the serial instrumented substrate paths makes exports a pure function
// of (scenario, seed), independent of ExecPolicy thread count.
//
// Histograms use log2 buckets: bucket b holds values v with
// floor(log2(v)) == b (value 0 goes to bucket 0 alongside 1). Exact
// count/sum/min/max ride along, so the buckets are a shape sketch and the
// moments are exact.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/ordered_map.hpp"

namespace amix::obs {

struct Histogram {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  // buckets[b] = #values in [2^b, 2^(b+1))

  void record(std::uint64_t v);
};

class MetricsRegistry {
 public:
  void counter_add(std::string_view name, std::uint64_t delta) {
    counters_.at_or_insert(name) += delta;
  }

  /// Keep the max of all observations (the common shape for "worst
  /// per-round congestion" style metrics).
  void gauge_max(std::string_view name, std::uint64_t v) {
    auto& g = gauges_.at_or_insert(name);
    if (v > g) g = v;
  }

  /// Overwrite (last observation wins).
  void gauge_set(std::string_view name, std::uint64_t v) {
    gauges_.at_or_insert(name) = v;
  }

  void hist_record(std::string_view name, std::uint64_t v) {
    hists_.at_or_insert(name).record(v);
  }

  /// Value of a counter/gauge, or `fallback` when never touched. Checks
  /// gauges first, then counters (names never collide in practice: the
  /// taxonomy in DESIGN.md §9 keeps the namespaces disjoint).
  std::uint64_t value_or(std::string_view name, std::uint64_t fallback) const;
  bool has(std::string_view name) const;

  const OrderedMap<std::uint64_t>& counters() const { return counters_; }
  const OrderedMap<std::uint64_t>& gauges() const { return gauges_; }
  const OrderedMap<Histogram>& histograms() const { return hists_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && hists_.empty();
  }
  void clear();

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — insertion
  /// order, no floats, no whitespace variation: byte-stable per run.
  void write_json(std::ostream& os) const;

  /// kind,name,value rows (histograms expand to count/sum/min/max/bucket
  /// rows), same ordering guarantees as the JSON.
  void write_csv(std::ostream& os) const;

 private:
  OrderedMap<std::uint64_t> counters_;
  OrderedMap<std::uint64_t> gauges_;
  OrderedMap<Histogram> hists_;
};

/// Scale a ratio observed/envelope into the x1000 integer form used by the
/// "..._x1000" gauges (rounded to nearest; envelope 0 saturates).
std::uint64_t ratio_x1000(std::uint64_t observed, std::uint64_t envelope);

/// JSON string escaping shared by the obs exporters.
void write_json_escaped(std::ostream& os, std::string_view s);

}  // namespace amix::obs
