#pragma once

// TraceRecorder: nestable RAII phase spans + run metrics, exportable as
// Chrome-trace JSON (chrome://tracing / Perfetto) and as a plain-text
// tree.
//
// The span taxonomy is named after the paper's phases and lemmas
// ("hierarchy/build", "boruvka/phase-3", "route/level-2", ...; full list
// in DESIGN.md §9). Each span captures, at open and close:
//
//   * the bound ledger's charged-round total  -> span round cost,
//   * the recorder's token/step counters      -> span traffic volume,
//   * a steady_clock stamp                    -> span wall time.
//
// Determinism: round and token numbers are products of the simulation and
// are bit-identical across ExecPolicy thread counts (installing the
// recorder's instrument switches the substrates to their serial
// log-and-replay paths, exactly like the fault/audit seam). Wall time is
// NOT deterministic, so exports omit it unless explicitly asked
// (ExportOptions::include_wall_time) — the default artifacts are byte
// -identical for a fixed seed at any thread count, which the test suite
// enforces.
//
// Cost when disabled: every annotation site does one thread-local load
// and one branch (the same budget as the congest::instrument() seam). No
// strings are materialized, no clocks are read, no allocation happens
// unless a recorder is installed.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "congest/instrument.hpp"
#include "congest/round_ledger.hpp"
#include "obs/metrics.hpp"

namespace amix::obs {

class TraceRecorder;

/// Currently installed recorder for this thread (nullptr when none).
/// Annotation sites must treat nullptr as "record nothing".
TraceRecorder* recorder();

/// RAII installation; restores the previous recorder so traced scopes
/// nest (a bench can trace a region inside an already-traced run).
class ScopedRecorder {
 public:
  explicit ScopedRecorder(TraceRecorder* rec);
  ~ScopedRecorder();
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  TraceRecorder* prev_;
};

struct SpanRecord {
  std::string name;
  std::int32_t parent = -1;  // index into spans(); -1 = root
  std::uint32_t depth = 0;
  std::uint64_t open_rounds = 0;   // bound ledger total at open
  std::uint64_t close_rounds = 0;  // ... and at close
  std::uint64_t token_moves = 0;   // recorder token counter delta
  std::uint64_t steps = 0;         // recorder commit counter delta
  std::uint64_t wall_ns = 0;
  bool closed = false;

  std::uint64_t rounds() const { return close_rounds - open_rounds; }
};

struct ExportOptions {
  /// Wall times are nondeterministic; keep them out of artifacts unless a
  /// human explicitly wants them (amixctl trace --wall).
  bool include_wall_time = false;
};

class TraceRecorder {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// True when every opened span has been closed — the invariant the
  /// faulted-run regression test checks (fault plans cost rounds but must
  /// never leak a span).
  bool all_closed() const { return open_depth_ == 0; }
  std::uint32_t open_depth() const { return open_depth_; }

  std::uint64_t token_moves() const { return tokens_; }
  std::uint64_t arc_slots() const { return slots_; }
  std::uint64_t step_commits() const { return commits_; }
  std::uint64_t kernel_messages() const { return kernel_msgs_; }
  std::uint64_t kernel_drops() const { return kernel_drops_; }

  /// Chrome-trace JSON: {"traceEvents":[...]} of "X" complete events, one
  /// per span, 1 charged round = 1 µs of trace time. Timestamps are
  /// assigned deterministically from the span tree (children laid out
  /// sequentially inside their parent), so the file is byte-stable and
  /// always passes Perfetto's nesting validation even when spans from
  /// several sub-ledgers share a trace.
  void write_chrome_trace(std::ostream& os, const ExportOptions& opt = {}) const;

  /// Indented text tree: one line per span with rounds / token volume
  /// (and wall time when opted in).
  void write_text_tree(std::ostream& os, const ExportOptions& opt = {}) const;

  void clear();

 private:
  friend class Span;
  friend class ObsInstrument;

  std::int32_t open_span(const RoundLedger& ledger, std::string_view name);
  void close_span(std::int32_t idx, const RoundLedger& ledger,
                  std::uint64_t wall_ns);

  std::vector<SpanRecord> spans_;
  std::int32_t current_ = -1;  // innermost open span
  std::uint32_t open_depth_ = 0;
  MetricsRegistry metrics_;

  // Raw hot-path tallies (bumped from ObsInstrument callbacks; plain
  // increments, no map lookups per token or per kernel message).
  std::uint64_t tokens_ = 0;
  std::uint64_t slots_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t kernel_msgs_ = 0;
  std::uint64_t kernel_drops_ = 0;
};

/// RAII phase span. Opens against the thread's recorder (no-op when none
/// is installed) and snapshots `ledger` — bind the ledger the surrounded
/// code charges, so close-open equals the phase's round cost.
class Span {
 public:
  Span(const RoundLedger& ledger, std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceRecorder* rec_;         // captured once; null = disabled span
  const RoundLedger* ledger_;
  std::int32_t idx_ = -1;
  std::uint64_t open_ns_ = 0;
};

/// "prefix<i>" for numbered spans ("boruvka/phase-3", "route/level-1") —
/// built only when a recorder is installed so disabled sites never
/// allocate. A Span given the resulting empty string is still a no-op.
inline std::string numbered(std::string_view prefix, std::uint64_t i) {
  if (recorder() == nullptr) return {};
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

// ---- Metric helpers for annotation sites ------------------------------
// Each is a thread-local load + branch when no recorder is installed, so
// call sites need no #ifdef-style guards.

inline void metric_counter_add(std::string_view name, std::uint64_t delta) {
  if (TraceRecorder* r = recorder()) r->metrics().counter_add(name, delta);
}
inline void metric_gauge_max(std::string_view name, std::uint64_t v) {
  if (TraceRecorder* r = recorder()) r->metrics().gauge_max(name, v);
}
inline void metric_gauge_set(std::string_view name, std::uint64_t v) {
  if (TraceRecorder* r = recorder()) r->metrics().gauge_set(name, v);
}
inline void metric_hist(std::string_view name, std::uint64_t v) {
  if (TraceRecorder* r = recorder()) r->metrics().hist_record(name, v);
}

/// CongestInstrument that feeds the recorder's counters and congestion
/// histogram from the token layer, optionally forwarding every callback
/// to an inner instrument (so tracing composes with fault plans and the
/// conformance auditor — the harness chains them).
///
/// Installing any instrument flips TokenTransport / SyncNetwork to their
/// serial replay paths; that, plus OrderedMap iteration order, is what
/// makes recorded traces thread-count invariant.
class ObsInstrument final : public congest::CongestInstrument {
 public:
  explicit ObsInstrument(TraceRecorder& rec,
                         congest::CongestInstrument* inner = nullptr)
      : rec_(rec), inner_(inner) {}

  std::uint32_t on_token_move(const CommGraph& g, std::uint64_t arc) override;
  void on_step_commit(const CommGraph& g, std::uint32_t charged) override;
  bool on_kernel_deliver(NodeId from, NodeId to,
                         std::uint64_t round) override;
  void on_kernel_round_order(std::uint64_t round,
                             std::span<NodeId> order) override;

 private:
  TraceRecorder& rec_;
  congest::CongestInstrument* inner_;
};

}  // namespace amix::obs
