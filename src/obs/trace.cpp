#include "obs/trace.hpp"

#include <chrono>

#include "congest/comm_graph.hpp"

namespace amix::obs {

namespace {

thread_local TraceRecorder* tls_recorder = nullptr;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceRecorder* recorder() { return tls_recorder; }

ScopedRecorder::ScopedRecorder(TraceRecorder* rec) : prev_(tls_recorder) {
  tls_recorder = rec;
}

ScopedRecorder::~ScopedRecorder() { tls_recorder = prev_; }

std::int32_t TraceRecorder::open_span(const RoundLedger& ledger,
                                      std::string_view name) {
  SpanRecord s;
  s.name = std::string(name);
  s.parent = current_;
  s.depth = open_depth_;
  s.open_rounds = ledger.total();
  s.token_moves = tokens_;
  s.steps = commits_;
  spans_.push_back(std::move(s));
  current_ = static_cast<std::int32_t>(spans_.size() - 1);
  ++open_depth_;
  return current_;
}

void TraceRecorder::close_span(std::int32_t idx, const RoundLedger& ledger,
                               std::uint64_t wall_ns) {
  SpanRecord& s = spans_[static_cast<std::size_t>(idx)];
  s.close_rounds = ledger.total();
  s.token_moves = tokens_ - s.token_moves;
  s.steps = commits_ - s.steps;
  s.wall_ns = wall_ns;
  s.closed = true;
  current_ = s.parent;
  --open_depth_;
}

void TraceRecorder::clear() {
  spans_.clear();
  current_ = -1;
  open_depth_ = 0;
  metrics_.clear();
  tokens_ = 0;
  slots_ = 0;
  commits_ = 0;
  kernel_msgs_ = 0;
  kernel_drops_ = 0;
}

Span::Span(const RoundLedger& ledger, std::string_view name)
    : rec_(tls_recorder), ledger_(&ledger) {
  if (rec_ == nullptr) return;
  idx_ = rec_->open_span(ledger, name);
  open_ns_ = now_ns();
}

Span::~Span() {
  if (rec_ == nullptr) return;
  rec_->close_span(idx_, *ledger_, now_ns() - open_ns_);
}

// ---- Export -----------------------------------------------------------

namespace {

// Chrome-trace timestamps must nest: a child event's [ts, ts+dur) interval
// has to sit inside its parent's. Span round counts alone cannot provide
// that when several spans bind different sub-ledgers (a PhaseScope's fold
// lands in the parent ledger only at scope exit, so a parent's own round
// delta can briefly lag the sum of its children). So the exporter derives
// a consistent timeline from the tree itself: every span's effective
// duration is max(own rounds, sum of children's effective durations), and
// children are laid out sequentially from the parent's start. The result
// is deterministic, properly nested, and monotone; exact measured rounds
// are still reported verbatim in args.rounds.
struct Timeline {
  std::vector<std::uint64_t> eff_dur;
  std::vector<std::uint64_t> ts;
};

Timeline build_timeline(const std::vector<SpanRecord>& spans) {
  const std::size_t n = spans.size();
  Timeline t;
  t.eff_dur.assign(n, 0);
  t.ts.assign(n, 0);
  std::vector<std::uint64_t> child_sum(n, 0);
  // Spans are recorded in open order, so children always follow their
  // parent: a reverse sweep is a post-order accumulation.
  for (std::size_t i = n; i-- > 0;) {
    std::uint64_t d = spans[i].rounds();
    if (child_sum[i] > d) d = child_sum[i];
    if (d == 0) d = 1;  // zero-width events are invisible in viewers
    t.eff_dur[i] = d;
    if (spans[i].parent >= 0) {
      child_sum[static_cast<std::size_t>(spans[i].parent)] += d;
    }
  }
  // Forward sweep assigns start times: roots run back to back; within a
  // parent, children start at the parent's cursor, in open order.
  std::vector<std::uint64_t> cursor(n, 0);
  std::uint64_t root_cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (spans[i].parent < 0) {
      t.ts[i] = root_cursor;
      root_cursor += t.eff_dur[i];
    } else {
      const auto p = static_cast<std::size_t>(spans[i].parent);
      t.ts[i] = t.ts[p] + cursor[p];
      cursor[p] += t.eff_dur[i];
    }
    cursor[i] = 0;
  }
  return t;
}

}  // namespace

void TraceRecorder::write_chrome_trace(std::ostream& os,
                                       const ExportOptions& opt) const {
  const Timeline t = build_timeline(spans_);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"amix (1 round = 1us)\"}}";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    os << ",{\"name\":\"";
    write_json_escaped(os, s.name);
    os << "\",\"cat\":\"amix\",\"ph\":\"X\",\"ts\":" << t.ts[i]
       << ",\"dur\":" << t.eff_dur[i] << ",\"pid\":0,\"tid\":0"
       << ",\"args\":{\"rounds\":" << s.rounds()
       << ",\"token_moves\":" << s.token_moves << ",\"steps\":" << s.steps;
    if (opt.include_wall_time) {
      os << ",\"wall_us\":" << s.wall_ns / 1000;
    }
    os << "}}";
  }
  os << "]}";
}

void TraceRecorder::write_text_tree(std::ostream& os,
                                    const ExportOptions& opt) const {
  for (const SpanRecord& s : spans_) {
    for (std::uint32_t d = 0; d < s.depth; ++d) os << "  ";
    os << s.name << "  rounds=" << s.rounds() << " tokens=" << s.token_moves
       << " steps=" << s.steps;
    if (opt.include_wall_time) os << " wall_us=" << s.wall_ns / 1000;
    if (!s.closed) os << "  [UNCLOSED]";
    os << '\n';
  }
}

// ---- ObsInstrument ----------------------------------------------------

std::uint32_t ObsInstrument::on_token_move(const CommGraph& g,
                                           std::uint64_t arc) {
  // The inner instrument (fault plan / auditor chain) decides on extra
  // slots; the recorder only observes. Count the extras too: they occupy
  // real arc capacity and the congestion dashboards should see them.
  const std::uint32_t extra = inner_ ? inner_->on_token_move(g, arc) : 0;
  ++rec_.tokens_;
  rec_.slots_ += 1 + extra;
  return extra;
}

void ObsInstrument::on_step_commit(const CommGraph& g, std::uint32_t charged) {
  if (inner_) inner_->on_step_commit(g, charged);
  ++rec_.commits_;
  if (charged > 0) {
    // `charged` is the step's max per-arc load = rounds of this graph.
    rec_.metrics_.hist_record("transport/step_max_load", charged);
    rec_.metrics_.gauge_max("transport/max_step_load", charged);
    rec_.metrics_.counter_add("transport/base_rounds",
                              static_cast<std::uint64_t>(charged) *
                                  g.round_cost());
  }
}

bool ObsInstrument::on_kernel_deliver(NodeId from, NodeId to,
                                      std::uint64_t round) {
  const bool deliver = inner_ ? inner_->on_kernel_deliver(from, to, round)
                              : true;
  ++rec_.kernel_msgs_;
  if (!deliver) ++rec_.kernel_drops_;
  return deliver;
}

void ObsInstrument::on_kernel_round_order(std::uint64_t round,
                                          std::span<NodeId> order) {
  if (inner_) inner_->on_kernel_round_order(round, order);
}

}  // namespace amix::obs
