#include "obs/bound_checker.hpp"

#include <sstream>

namespace amix::obs {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_x1000(std::uint64_t v) {
  std::ostringstream os;
  os << v / 1000 << '.' << static_cast<char>('0' + (v % 1000) / 100)
     << static_cast<char>('0' + (v % 100) / 10);
  return os.str();
}

}  // namespace

BoundReport BoundChecker::check(const MetricsRegistry& m) const {
  BoundReport report;
  // Every gauge under a lemma namespace is a x1000 ratio against that
  // lemma's unit-constant envelope; new per-level or per-run ratios added
  // at annotation sites get checked with no changes here.
  for (const auto& [name, value] : m.gauges()) {
    std::uint64_t limit = 0;
    std::string lemma;
    if (starts_with(name, "lemma24/")) {
      limit = c_.lemma24_c_x1000;
      lemma = "Lemma 2.4";
    } else if (starts_with(name, "lemma3x/")) {
      limit = c_.lemma3x_c_x1000;
      lemma = "Lemma 3.1/3.2";
    } else if (starts_with(name, "glmatch/")) {
      limit = c_.glmatch_c_x1000;
      lemma = "Ghaffari-Li matching";
    } else if (starts_with(name, "glcut/")) {
      limit = c_.glcut_c_x1000;
      lemma = "Ghaffari-Li min cut";
    } else if (starts_with(name, "glsssp/")) {
      limit = c_.glsssp_c_x1000;
      lemma = "Ghaffari-Li SSSP";
    } else {
      continue;
    }
    BoundEntry e;
    e.metric = name;
    e.lemma = std::move(lemma);
    e.observed_x1000 = value;
    e.limit_x1000 = limit;
    e.ok = value <= limit;
    report.entries.push_back(std::move(e));
  }
  return report;
}

std::string BoundReport::summary() const {
  if (entries.empty()) return "bound check: (no checks applicable)\n";
  std::ostringstream os;
  for (const BoundEntry& e : entries) {
    os << (e.ok ? "  ok " : "  VIOLATION ") << e.lemma << "  " << e.metric
       << "  observed/envelope=" << format_x1000(e.observed_x1000)
       << "x  limit=" << format_x1000(e.limit_x1000) << "x\n";
  }
  os << "bound check: " << entries.size() << " checked, " << violations()
     << " violation(s)\n";
  return os.str();
}

}  // namespace amix::obs
