#pragma once

// Routing requests and instance generators.
//
// A source addresses its destination by RoutingAddr = (id, degree): any
// CONGEST message that teaches a node an id can carry the degree in the
// same O(log n) bits, and the degree is what lets the source pick (and
// hash) a destination *virtual node* — see DESIGN.md Section 5.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace amix {

struct RoutingAddr {
  NodeId id = kInvalidNode;
  std::uint32_t degree = 0;
};

struct RouteRequest {
  NodeId src = kInvalidNode;
  RoutingAddr dst;
  std::uint64_t seq = 0;  // per-packet nonce (spreads destination ports)
};

inline RoutingAddr addr_of(const Graph& g, NodeId v) {
  return RoutingAddr{v, g.degree(v)};
}

/// One packet per node, destinations a uniform random permutation
/// (classic permutation routing; each node is source and destination of
/// exactly one packet).
std::vector<RouteRequest> permutation_instance(const Graph& g, Rng& rng);

/// The paper's Theorem 1.2 promise at full load: each node is the source
/// of exactly d_G(v) packets and the destination of exactly d_G(v) packets
/// (a random perfect matching between arc slots).
std::vector<RouteRequest> degree_demand_instance(const Graph& g, Rng& rng);

/// Skewed instance: `hotspots` random nodes receive `mult * d(v)` packets
/// each (sources uniform). Exercises the K-phase extension (footnote 3).
std::vector<RouteRequest> hotspot_instance(const Graph& g, Rng& rng,
                                           std::uint32_t hotspots,
                                           std::uint32_t mult);

/// All-to-all: each node one packet to every other node (clique emulation).
std::vector<RouteRequest> all_to_all_instance(const Graph& g);

/// Bit-reversal permutation (n must be a power of two): the classic
/// adversarial pattern for oblivious routers — every packet's destination
/// is maximally "far" in address space.
std::vector<RouteRequest> bit_reversal_instance(const Graph& g, Rng& rng);

/// Transpose permutation on the largest s*s prefix (node r*s+c -> c*s+r);
/// nodes outside the square send to themselves.
std::vector<RouteRequest> transpose_instance(const Graph& g, Rng& rng);

}  // namespace amix
