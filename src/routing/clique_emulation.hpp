#pragma once

// Clique emulation (Theorem 1.3): every node delivers one O(log n)-bit
// message to every other node, emulating one round of the congested clique
// on top of an arbitrary graph G.
//
// The PODC text states the bound and defers the specialized algorithm to
// the full version; following footnote 3 we emulate the clique with the
// hierarchical router run in K phases, K = max_v ceil((n-1)/d(v)) — on
// G(n,p) this is ~1/p phases, reproducing the corollary's O~(1/p) shape.
// The module also computes the Omega(n/h(G)) cut lower bound the theorem
// is measured against.

#include <cstdint>

#include "congest/round_ledger.hpp"
#include "routing/hierarchical_router.hpp"

namespace amix {

struct CliqueEmulationStats {
  std::uint64_t rounds = 0;
  std::uint32_t phases = 0;
  std::uint64_t messages = 0;
  double lower_bound = 0.0;  // n / h(G) (cut bound), using the h estimate
};

class CliqueEmulator {
 public:
  explicit CliqueEmulator(const Hierarchy& h) : router_(h), h_(&h) {}

  /// Emulates one clique round (all-to-all). `edge_expansion` is used only
  /// for the reported lower bound (pass an estimate; <= 0 skips it).
  CliqueEmulationStats emulate_round(RoundLedger& ledger, Rng& rng,
                                     double edge_expansion = 0.0) const;

 private:
  HierarchicalRouter router_;
  const Hierarchy* h_;
};

}  // namespace amix
