#include "routing/hierarchical_router.hpp"

#include <algorithm>
#include <optional>

#include "congest/token_transport.hpp"
#include "obs/trace.hpp"
#include "randwalk/walk_engine.hpp"

namespace amix {
namespace {

struct Packet {
  Vid cur;
  Vid dst;
};

/// A packet participating in one recursive call, with the target of that
/// call (final destination, or a portal on the way there).
struct Item {
  std::uint32_t pkt;
  Vid target;
};

class Recursion {
 public:
  Recursion(const Hierarchy& h, std::vector<Packet>& packets,
            RoundLedger& ledger, RouteStats& stats)
      : h_(h),
        packets_(packets),
        ledger_(ledger),
        stats_(stats),
        transports_(h.depth() + 1) {}

  void route_within(std::uint32_t level, std::vector<Item>& items) {
    if (items.empty()) return;
    if (level == h_.depth()) {
      leaf_deliver(items);
      return;
    }
    const obs::Span span(ledger_, obs::numbered("route/level-", level));
    const auto& part = h_.partition();
    const std::uint32_t child_level = level + 1;

    // Split into "stay" (target already in the packet's child part) and
    // "cross" (must reach a portal, hop, then recurse in the target child).
    std::vector<Item> phase1;
    phase1.reserve(items.size());
    std::vector<Item> cross;  // keeps the *real* target for phase 2
    for (const Item& it : items) {
      const Vid cur = packets_[it.pkt].cur;
      const PartId a = part.part_of(cur, child_level);
      const PartId b = part.part_of(it.target, child_level);
      if (a == b) {
        phase1.push_back(it);
      } else {
        const std::uint32_t target_child = part.child_index(b);
        const Vid portal =
            h_.portals().portal_for(cur, child_level, target_child);
        phase1.push_back(Item{it.pkt, portal});
        cross.push_back(it);
      }
    }

    route_within(child_level, phase1);

    if (!cross.empty()) {
      {
        // Hop every cross packet over one level-`level` overlay edge. The
        // span closes before the recursion so it holds only the hop cost.
        const obs::Span hop_span(ledger_,
                                 obs::numbered("route/hop/level-", level));
        TokenTransport& transport = transport_at(level);
        for (const Item& it : cross) {
          const Vid portal = packets_[it.pkt].cur;
          const std::uint32_t target_child =
              part.child_index(part.part_of(it.target, child_level));
          const auto [nbr, port] =
              h_.portals().hop_arc(portal, child_level, target_child);
          transport.move(portal, port);
          packets_[it.pkt].cur = nbr;
        }
        const std::uint64_t before = ledger_.total();
        transport.commit_step(ledger_);
        stats_.hop_rounds += ledger_.total() - before;
        if (stats_.hop_rounds_by_level.size() <= level) {
          stats_.hop_rounds_by_level.resize(level + 1, 0);
          stats_.cross_packets_by_level.resize(level + 1, 0);
        }
        stats_.hop_rounds_by_level[level] += ledger_.total() - before;
        stats_.cross_packets_by_level[level] += cross.size();
      }

      route_within(child_level, cross);
    }
  }

 private:
  void leaf_deliver(std::vector<Item>& items) {
    const obs::Span span(ledger_, "route/leaf-deliver");
    const OverlayComm& leaf = h_.overlay(h_.depth());
    // Hop loops run on the flat CSR view — no virtual dispatch per hop.
    const CommView lv = leaf.view();
    // The leaf overlay is a dense random graph per leaf part (diameter
    // 1-2): forward each packet along a BFS shortest path, one parallel
    // hop per committed step. The per-packet paths land in reused flat
    // buffers (`move_hops_` + offsets), and the BFS uses the epoch
    // arrays below — a route call's leaf phases are the router's wall
    // clock at scale, and a hash map + fresh vector per packet was most
    // of it.
    move_off_.assign(items.size() + 1, 0);
    move_hops_.clear();
    std::size_t max_len = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      Packet& p = packets_[items[i].pkt];
      if (p.cur != items[i].target) {
        const std::size_t before = move_hops_.size();
        leaf_path(lv, p.cur, items[i].target);
        max_len = std::max(max_len, move_hops_.size() - before);
      }
      move_off_[i + 1] = move_hops_.size();
    }
    TokenTransport& transport = transport_at(h_.depth());
    for (std::size_t step = 0; step < max_len; ++step) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (step >= move_off_[i + 1] - move_off_[i]) continue;
        const auto [v, port] = move_hops_[move_off_[i] + step];
        transport.move(v, port);
        packets_[items[i].pkt].cur = lv.neighbor(v, port);
      }
      const std::uint64_t before = ledger_.total();
      transport.commit_step(ledger_);
      stats_.leaf_rounds += ledger_.total() - before;
    }
    ++stats_.leaf_phases;
  }

  /// BFS shortest path within the (small, connected) leaf component,
  /// appended to `move_hops_` as (node, port at node) pairs. Visit order
  /// is identical to the original hash-map BFS (frontier in insertion
  /// order, neighbors in port order), so the chosen path — and with it
  /// every transport charge — is unchanged; the epoch-stamped flat
  /// arrays only replace the per-call hash map and its allocations.
  void leaf_path(const CommView& leaf, Vid from, Vid to) {
    if (via_epoch_.size() != leaf.num_nodes) {
      via_epoch_.assign(leaf.num_nodes, 0);
      via_prev_.resize(leaf.num_nodes);
      via_port_.resize(leaf.num_nodes);
      epoch_ = 0;
    }
    if (++epoch_ == 0) {  // u32 wrap: stamp everything stale again
      via_epoch_.assign(via_epoch_.size(), 0);
      epoch_ = 1;
    }
    const auto visit = [&](Vid w, Vid prev, std::uint32_t port) {
      via_epoch_[w] = epoch_;
      via_prev_[w] = prev;
      via_port_[w] = port;
    };
    frontier_.clear();
    next_.clear();
    frontier_.push_back(from);
    visit(from, from, UINT32_MAX);
    bool found = false;
    while (!frontier_.empty() && !found) {
      next_.clear();
      for (const Vid v : frontier_) {
        const auto nbrs = leaf.neighbors(v);
        for (std::uint32_t q = 0; q < nbrs.size(); ++q) {
          const Vid w = nbrs[q];
          if (via_epoch_[w] == epoch_) continue;
          visit(w, v, q);
          if (w == to) {
            found = true;
            break;
          }
          next_.push_back(w);
        }
        if (found) break;
      }
      frontier_.swap(next_);
    }
    AMIX_CHECK_MSG(found, "leaf part is not connected");
    const std::size_t first = move_hops_.size();
    for (Vid v = to; v != from;) {
      move_hops_.emplace_back(via_prev_[v], via_port_[v]);
      v = via_prev_[v];
    }
    std::reverse(move_hops_.begin() + first, move_hops_.end());
  }

  /// The level's transport, constructed on first use and reused by every
  /// recursion node of this routing instance. A TokenTransport's tallies
  /// are per-step (commit_step clears exactly what the step touched), so
  /// reuse charges bit-identically to a fresh transport — what it saves
  /// is the O(arcs) zero-fill the old per-recursion-node construction
  /// paid, which at 10^7 virtual nodes dominated the whole route call
  /// (2^depth leaf batches x ~1 GB of zeroed tallies each).
  TokenTransport& transport_at(std::uint32_t level) {
    if (!transports_[level]) transports_[level].emplace(h_.overlay(level));
    return *transports_[level];
  }

  const Hierarchy& h_;
  std::vector<Packet>& packets_;
  RoundLedger& ledger_;
  RouteStats& stats_;
  std::vector<std::optional<TokenTransport>> transports_;
  // leaf_deliver / leaf_path scratch, reused across the route call's leaf
  // phases: flat per-packet hop runs (CSR-style offsets into one pair
  // vector) and the epoch-stamped BFS visit marks (12 B per vid, lazily
  // sized on the first leaf phase).
  std::vector<std::pair<Vid, std::uint32_t>> move_hops_;
  std::vector<std::size_t> move_off_;
  std::vector<Vid> via_prev_, frontier_, next_;
  std::vector<std::uint32_t> via_port_, via_epoch_;
  std::uint32_t epoch_ = 0;
};

}  // namespace

RouteStats HierarchicalRouter::route(std::span<const RouteRequest> reqs,
                                     RoundLedger& ledger, Rng& rng) const {
  const Graph& g = h_->graph();
  const VirtualNodeSpace& vs = h_->vspace();
  RouteStats stats;
  stats.packets = static_cast<std::uint32_t>(reqs.size());
  const std::uint64_t rounds_at_entry = ledger.total();
  if (reqs.empty()) return stats;
  const obs::Span route_span(ledger, "route/run");

  // Destination virtual nodes: hashed port, computable from RoutingAddr.
  std::vector<Packet> packets(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const RoutingAddr& dst = reqs[i].dst;
    AMIX_CHECK_MSG(dst.degree == g.degree(dst.id),
                   "RoutingAddr degree mismatch");
    const std::uint32_t port = static_cast<std::uint32_t>(
        splitmix64(reqs[i].seq ^ (static_cast<std::uint64_t>(dst.id) << 20)) %
        dst.degree);
    packets[i].dst = vs.vid_of(dst.id, port);
  }

  // Preparation: scatter packets by lazy walks of length tau_mix on G.
  {
    const obs::Span prep_span(ledger, "route/prep-walks");
    std::vector<std::uint32_t> starts(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) starts[i] = reqs[i].src;
    BaseComm base(g);
    ParallelWalkEngine engine(base, rng.split());
    WalkStats wstats;
    const auto ends = engine.run(starts, WalkKind::kLazy,
                                 h_->stats().tau_mix, ledger, &wstats);
    stats.prep_rounds = wstats.base_rounds;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const NodeId u = ends[i];
      const std::uint32_t port =
          static_cast<std::uint32_t>(rng.next_below(g.degree(u)));
      packets[i].cur = vs.vid_of(u, port);
    }
  }

  // Lemma 3.4 precondition telemetry: packets per virtual node after prep.
  {
    std::vector<std::uint32_t> load(vs.num_virtual(), 0);
    for (const Packet& p : packets) {
      stats.max_vid_load = std::max(stats.max_vid_load, ++load[p.cur]);
    }
  }

  std::vector<Item> items;
  items.reserve(packets.size());
  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    items.push_back(Item{i, packets[i].dst});
  }
  Recursion rec(*h_, packets, ledger, stats);
  rec.route_within(0, items);

  for (std::size_t i = 0; i < packets.size(); ++i) {
    AMIX_CHECK_MSG(packets[i].cur == packets[i].dst, "packet not delivered");
    AMIX_CHECK(vs.owner(packets[i].cur) == reqs[i].dst.id);
    ++stats.delivered;
  }
  stats.total_rounds = ledger.total() - rounds_at_entry;
  if (obs::recorder() != nullptr) {
    obs::metric_counter_add("route/packets", stats.packets);
    obs::metric_counter_add("route/delivered", stats.delivered);
    obs::metric_gauge_max("route/max_vid_load", stats.max_vid_load);
  }
  return stats;
}

std::uint32_t HierarchicalRouter::auto_phase_count(
    std::span<const RouteRequest> reqs) const {
  const Graph& g = h_->graph();
  std::vector<std::uint32_t> out(g.num_nodes(), 0), in(g.num_nodes(), 0);
  for (const RouteRequest& r : reqs) {
    ++out[r.src];
    ++in[r.dst.id];
  }
  std::uint32_t k = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::uint32_t demand = std::max(out[v], in[v]);
    const std::uint32_t deg = std::max(1u, g.degree(v));
    k = std::max(k, (demand + deg - 1) / deg);
  }
  return k;
}

RouteStats HierarchicalRouter::route_in_phases(
    std::span<const RouteRequest> reqs, std::uint32_t phases,
    RoundLedger& ledger, Rng& rng) const {
  if (phases == 0) phases = auto_phase_count(reqs);
  if (phases <= 1) {
    RouteStats s = route(reqs, ledger, rng);
    s.phases = 1;
    return s;
  }
  std::vector<std::vector<RouteRequest>> buckets(phases);
  for (const RouteRequest& r : reqs) {
    buckets[rng.next_below(phases)].push_back(r);
  }
  RouteStats agg;
  agg.packets = static_cast<std::uint32_t>(reqs.size());
  agg.phases = phases;
  for (const auto& bucket : buckets) {
    if (bucket.empty()) continue;
    const RouteStats s = route(bucket, ledger, rng);
    agg.total_rounds += s.total_rounds;
    agg.prep_rounds += s.prep_rounds;
    agg.hop_rounds += s.hop_rounds;
    agg.leaf_rounds += s.leaf_rounds;
    agg.delivered += s.delivered;
    agg.leaf_phases += s.leaf_phases;
    agg.max_vid_load = std::max(agg.max_vid_load, s.max_vid_load);
  }
  return agg;
}

}  // namespace amix
