#include "routing/clique_emulation.hpp"

#include "obs/trace.hpp"

namespace amix {

CliqueEmulationStats CliqueEmulator::emulate_round(RoundLedger& ledger,
                                                   Rng& rng,
                                                   double edge_expansion) const {
  const obs::Span span(ledger, "clique/emulate-round");
  const Graph& g = h_->graph();
  CliqueEmulationStats stats;
  const auto reqs = all_to_all_instance(g);
  stats.messages = reqs.size();

  const RouteStats rs = router_.route_in_phases(reqs, 0, ledger, rng);
  AMIX_CHECK(rs.delivered == reqs.size());
  stats.rounds = rs.total_rounds;
  stats.phases = rs.phases;
  if (edge_expansion > 0.0) {
    stats.lower_bound =
        static_cast<double>(g.num_nodes()) / edge_expansion;
  }
  obs::metric_counter_add("clique/messages", stats.messages);
  obs::metric_counter_add("clique/phases", stats.phases);
  return stats;
}

}  // namespace amix
