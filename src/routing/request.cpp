#include "routing/request.hpp"

#include <numeric>

namespace amix {

std::vector<RouteRequest> permutation_instance(const Graph& g, Rng& rng) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  shuffle(perm, rng);
  std::vector<RouteRequest> reqs;
  reqs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    reqs.push_back(RouteRequest{v, addr_of(g, perm[v]), rng()});
  }
  return reqs;
}

std::vector<RouteRequest> degree_demand_instance(const Graph& g, Rng& rng) {
  // Sources: every arc slot (v repeated d(v) times); destinations: a random
  // permutation of the same multiset. Each node is source of exactly d(v)
  // and destination of exactly d(v) packets.
  std::vector<NodeId> slots;
  slots.reserve(g.num_arcs());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t i = 0; i < g.degree(v); ++i) slots.push_back(v);
  }
  std::vector<NodeId> dsts = slots;
  shuffle(dsts, rng);
  std::vector<RouteRequest> reqs;
  reqs.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    reqs.push_back(RouteRequest{slots[i], addr_of(g, dsts[i]), rng()});
  }
  return reqs;
}

std::vector<RouteRequest> hotspot_instance(const Graph& g, Rng& rng,
                                           std::uint32_t hotspots,
                                           std::uint32_t mult) {
  AMIX_CHECK(hotspots >= 1 && hotspots <= g.num_nodes());
  std::vector<RouteRequest> reqs;
  const auto hot = sample_distinct(g.num_nodes(), hotspots, rng);
  for (const NodeId h : hot) {
    const std::uint64_t count =
        static_cast<std::uint64_t>(mult) * g.degree(h);
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto src = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      reqs.push_back(RouteRequest{src, addr_of(g, h), rng()});
    }
  }
  return reqs;
}

std::vector<RouteRequest> all_to_all_instance(const Graph& g) {
  std::vector<RouteRequest> reqs;
  const NodeId n = g.num_nodes();
  reqs.reserve(static_cast<std::size_t>(n) * (n - 1));
  std::uint64_t seq = 0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      reqs.push_back(RouteRequest{s, addr_of(g, t), seq++});
    }
  }
  return reqs;
}

std::vector<RouteRequest> bit_reversal_instance(const Graph& g, Rng& rng) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK_MSG((n & (n - 1)) == 0 && n >= 2, "n must be a power of two");
  std::uint32_t bits = 0;
  while ((NodeId{1} << bits) < n) ++bits;
  std::vector<RouteRequest> reqs;
  reqs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    NodeId r = 0;
    for (std::uint32_t b = 0; b < bits; ++b) {
      r |= ((v >> b) & 1u) << (bits - 1 - b);
    }
    reqs.push_back(RouteRequest{v, addr_of(g, r), rng()});
  }
  return reqs;
}

std::vector<RouteRequest> transpose_instance(const Graph& g, Rng& rng) {
  const NodeId n = g.num_nodes();
  NodeId s = 1;
  while ((s + 1) * (s + 1) <= n) ++s;
  std::vector<RouteRequest> reqs;
  reqs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId dst = v < s * s ? (v % s) * s + (v / s) : v;
    reqs.push_back(RouteRequest{v, addr_of(g, dst), rng()});
  }
  return reqs;
}

}  // namespace amix
