#pragma once

// The permutation router of Theorem 1.2 / Section 3.2.
//
// Given a built Hierarchy, routes a batch of point-to-point requests:
//
//   1. Preparation: every packet takes a lazy random walk of length
//      tau_mix on the base graph, then is assigned to a uniform virtual
//      node of the landing node — packets end up ~uniform over G0.
//   2. Recursive descent, in lockstep across all parts of a level:
//      RouteWithin(l) routes packets whose current position and (current)
//      target share a level-l part. For l < depth it splits each packet by
//      the level-(l+1) parts of position and target: "stay" packets recurse
//      with their real target; "cross" packets recurse towards their
//      portal, hop over one level-l overlay edge into the target part
//      (charged through TokenTransport), and recurse again. At l == depth
//      delivery is direct on the complete leaf graphs.
//
// Every movement is charged through the hierarchy's measured emulation
// costs, so the reported rounds are end-to-end base-graph rounds.

#include <cstdint>
#include <vector>
#include <span>

#include "congest/round_ledger.hpp"
#include "hierarchy/hierarchy.hpp"
#include "routing/request.hpp"

namespace amix {

struct RouteStats {
  std::uint64_t total_rounds = 0;  // charged by this call
  std::uint64_t prep_rounds = 0;
  std::uint64_t hop_rounds = 0;
  std::uint64_t leaf_rounds = 0;
  std::uint32_t packets = 0;
  std::uint32_t delivered = 0;
  std::uint32_t max_vid_load = 0;   // packets per virtual node after prep
  std::uint32_t leaf_phases = 0;    // number of leaf-level delivery calls
  std::uint32_t phases = 1;         // K of the footnote-3 extension
  /// Diagnostics: hop rounds charged per hierarchy level (index = the
  /// level of the overlay the hop crossed; size = hierarchy depth).
  std::vector<std::uint64_t> hop_rounds_by_level;
  /// Diagnostics: packets that crossed between sibling parts, per level.
  std::vector<std::uint64_t> cross_packets_by_level;
};

class HierarchicalRouter {
 public:
  explicit HierarchicalRouter(const Hierarchy& h) : h_(&h) {}

  /// Route all requests; charges `ledger`; asserts full delivery.
  RouteStats route(std::span<const RouteRequest> reqs, RoundLedger& ledger,
                   Rng& rng) const;

  /// Footnote-3 extension: randomly split the requests into `phases`
  /// batches routed one after the other (for instances whose per-node load
  /// exceeds the d_G(v) promise). phases == 0 picks K automatically from
  /// the instance's max per-node load.
  RouteStats route_in_phases(std::span<const RouteRequest> reqs,
                             std::uint32_t phases, RoundLedger& ledger,
                             Rng& rng) const;

  /// The K that route_in_phases(., 0, .) would pick.
  std::uint32_t auto_phase_count(std::span<const RouteRequest> reqs) const;

 private:
  const Hierarchy* h_;
};

}  // namespace amix
