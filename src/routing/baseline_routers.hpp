#pragma once

// Baseline routers for the E1 comparison:
//
//  * ShortestPathRouter — the natural store-and-forward scheme: every
//    packet follows a BFS shortest path to its destination; per round each
//    edge direction forwards one queued packet (FIFO). Round count is the
//    genuine congested completion time (dilation + queueing).
//  * RandomWalkRouter — the strawman the paper's introduction dismisses:
//    each packet performs a lazy random walk until it happens to hit its
//    destination. Charged through TokenTransport like everything else.

#include <cstdint>
#include <span>

#include "congest/round_ledger.hpp"
#include "graph/graph.hpp"
#include "routing/request.hpp"
#include "util/rng.hpp"

namespace amix {

struct BaselineStats {
  std::uint64_t rounds = 0;
  std::uint32_t delivered = 0;
  std::uint32_t undelivered = 0;   // random-walk router may hit its cap
  std::uint64_t max_queue = 0;     // peak per-arc queue (shortest-path)
  std::uint64_t walk_steps = 0;    // total steps (random-walk)
};

class ShortestPathRouter {
 public:
  explicit ShortestPathRouter(const Graph& g) : g_(&g) {}

  /// Routes all packets; charges the measured store-and-forward rounds.
  BaselineStats route(std::span<const RouteRequest> reqs, RoundLedger& ledger,
                      std::uint64_t max_rounds = 0) const;

 private:
  const Graph* g_;
};

class RandomWalkRouter {
 public:
  explicit RandomWalkRouter(const Graph& g) : g_(&g) {}

  /// Each packet walks until it visits its destination node or the step cap
  /// (default 64 * n) is reached; undelivered packets are reported, not
  /// asserted — this baseline is *supposed* to be bad.
  BaselineStats route(std::span<const RouteRequest> reqs, RoundLedger& ledger,
                      Rng& rng, std::uint64_t max_steps = 0) const;

 private:
  const Graph* g_;
};

}  // namespace amix
