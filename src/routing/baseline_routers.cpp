#include "routing/baseline_routers.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "congest/comm_graph.hpp"
#include "congest/token_transport.hpp"
#include "graph/traversal.hpp"

namespace amix {

BaselineStats ShortestPathRouter::route(std::span<const RouteRequest> reqs,
                                        RoundLedger& ledger,
                                        std::uint64_t max_rounds) const {
  const Graph& g = *g_;
  BaselineStats stats;
  if (reqs.empty()) return stats;
  if (max_rounds == 0) {
    max_rounds = 64ULL * g.num_nodes() + 64ULL * reqs.size();
  }

  // Precompute each packet's path as a port sequence: group packets by
  // destination, one BFS per distinct destination.
  std::unordered_map<NodeId, std::vector<std::uint32_t>> by_dst;
  for (std::uint32_t i = 0; i < reqs.size(); ++i) {
    by_dst[reqs[i].dst.id].push_back(i);
  }
  std::vector<std::vector<std::uint32_t>> path(reqs.size());  // port list
  for (const auto& [dst, idxs] : by_dst) {
    const auto dist = bfs_distances(g, dst);
    for (const std::uint32_t i : idxs) {
      NodeId v = reqs[i].src;
      AMIX_CHECK_MSG(dist[v] != kUnreachable, "destination unreachable");
      while (v != dst) {
        // Greedy descent: first neighbor strictly closer to dst.
        const auto arcs = g.arcs(v);
        std::uint32_t chosen = UINT32_MAX;
        for (std::uint32_t p = 0; p < arcs.size(); ++p) {
          if (dist[arcs[p].to] + 1 == dist[v]) {
            chosen = p;
            break;
          }
        }
        AMIX_CHECK(chosen != UINT32_MAX);
        path[i].push_back(chosen);
        v = arcs[chosen].to;
      }
    }
  }

  // Store-and-forward simulation: per round, each directed arc transmits
  // the oldest queued packet.
  std::vector<std::uint32_t> offsets(g.num_nodes() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    offsets[v + 1] = offsets[v] + g.degree(v);
  }
  std::vector<std::deque<std::uint32_t>> queue(g.num_arcs());
  std::vector<NodeId> at(reqs.size());
  std::vector<std::uint32_t> hop(reqs.size(), 0);
  std::uint32_t remaining = 0;
  for (std::uint32_t i = 0; i < reqs.size(); ++i) {
    at[i] = reqs[i].src;
    if (path[i].empty()) {
      ++stats.delivered;  // src == dst
    } else {
      const std::uint64_t arc = offsets[at[i]] + path[i][0];
      queue[arc].push_back(i);
      stats.max_queue = std::max(stats.max_queue, queue[arc].size());
      ++remaining;
    }
  }

  std::vector<std::uint64_t> active;
  for (std::uint64_t a = 0; a < queue.size(); ++a) {
    if (!queue[a].empty()) active.push_back(a);
  }
  while (remaining > 0) {
    AMIX_CHECK_MSG(stats.rounds < max_rounds,
                   "shortest-path router exceeded round cap");
    ++stats.rounds;
    ledger.charge(1);
    std::vector<std::uint64_t> next_active;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> arrivals;
    for (const std::uint64_t a : active) {
      auto& q = queue[a];
      if (q.empty()) continue;
      const std::uint32_t i = q.front();
      q.pop_front();
      if (!q.empty()) next_active.push_back(a);
      // Deliver packet i across arc a.
      const NodeId v = at[i];
      const std::uint32_t port = static_cast<std::uint32_t>(a - offsets[v]);
      at[i] = g.neighbor(v, port);
      ++hop[i];
      if (hop[i] == path[i].size()) {
        ++stats.delivered;
        --remaining;
      } else {
        const std::uint64_t arc2 = offsets[at[i]] + path[i][hop[i]];
        arrivals.emplace_back(arc2, i);
      }
    }
    for (const auto& [arc2, i] : arrivals) {
      if (queue[arc2].empty()) next_active.push_back(arc2);
      queue[arc2].push_back(i);
      stats.max_queue = std::max(stats.max_queue, queue[arc2].size());
    }
    std::sort(next_active.begin(), next_active.end());
    next_active.erase(std::unique(next_active.begin(), next_active.end()),
                      next_active.end());
    active.swap(next_active);
  }
  return stats;
}

BaselineStats RandomWalkRouter::route(std::span<const RouteRequest> reqs,
                                      RoundLedger& ledger, Rng& rng,
                                      std::uint64_t max_steps) const {
  const Graph& g = *g_;
  BaselineStats stats;
  if (reqs.empty()) return stats;
  if (max_steps == 0) max_steps = 64ULL * g.num_nodes();

  BaseComm base(g);
  TokenTransport transport(base);
  std::vector<NodeId> at(reqs.size());
  std::vector<bool> done(reqs.size(), false);
  std::uint32_t remaining = 0;
  for (std::uint32_t i = 0; i < reqs.size(); ++i) {
    at[i] = reqs[i].src;
    if (at[i] == reqs[i].dst.id) {
      done[i] = true;
      ++stats.delivered;
    } else {
      ++remaining;
    }
  }

  for (std::uint64_t step = 0; step < max_steps && remaining > 0; ++step) {
    for (std::uint32_t i = 0; i < reqs.size(); ++i) {
      if (done[i]) continue;
      const NodeId v = at[i];
      const std::uint32_t deg = g.degree(v);
      const std::uint64_t r = rng.next_below(2ULL * deg);
      if (r < deg) {
        transport.move(v, static_cast<std::uint32_t>(r));
        at[i] = g.neighbor(v, static_cast<std::uint32_t>(r));
        ++stats.walk_steps;
        if (at[i] == reqs[i].dst.id) {
          done[i] = true;
          ++stats.delivered;
          --remaining;
        }
      }
    }
    const std::uint64_t before = ledger.total();
    transport.commit_step(ledger);
    stats.rounds += ledger.total() - before;
  }
  stats.undelivered = remaining;
  return stats;
}

}  // namespace amix
