#pragma once

// Approximate global min cut by greedy spanning-tree packing (Section 4's
// closing remark; the conference paper defers the details to its full
// version, which builds on the tree-packing machinery of [31],[32],[57]).
//
// We pack Theta(log n) spanning trees greedily against edge loads — each
// tree is an MST computation, i.e. exactly the primitive the paper's
// distributed framework provides — and evaluate, for every packed tree,
// the best cut that 1-respects it (shares exactly one tree edge),
// computed exactly via LCA counting. Tree packing guarantees the true min
// cut 1- or 2-respects a packed tree; with 1-respecting evaluation alone
// this is a provable <= 2x approximation and is typically exact on the
// bench families (E9 reports measured ratios against Stoer-Wagner).
//
// Rounds: each packed tree charges `per_tree_rounds` (measured by the
// caller from a real distributed MST run on the same graph), plus one
// aggregation cast per tree for the cut evaluation.

#include <cstdint>
#include <vector>

#include "congest/round_ledger.hpp"
#include "graph/graph.hpp"
#include "hierarchy/hierarchy.hpp"
#include "util/rng.hpp"

namespace amix {

struct MincutStats {
  std::uint64_t cut_value = 0;
  std::uint32_t trees = 0;
  std::uint64_t rounds = 0;
  EdgeId witness_tree_edge = kInvalidEdge;  // tree edge of the best cut
  // Cost split and per-evaluation detail (filled by the distributed
  // variant; the charged-envelope variant leaves the split at zero).
  std::uint64_t pack_rounds = 0;      // MST runs (the packing itself)
  std::uint64_t eval_rounds = 0;      // cut-evaluation casts
  std::uint64_t max_tree_rounds = 0;  // costliest single packed-tree MST
  std::uint64_t best_one_respecting = 0;
  std::uint64_t best_two_respecting = 0;  // 0 when the scan was skipped
  std::uint64_t min_degree = 0;           // the always-known singleton cut
};

/// `per_tree_rounds`: charged per packed tree (pass a measured distributed
/// MST cost; 0 charges only the evaluation casts). When `two_respecting`
/// is set (default: on for n <= 4096), each packed tree is also scanned
/// for its best 2-respecting cut, completing Karger's guarantee.
MincutStats approx_mincut_tree_packing(const Graph& g, Rng& rng,
                                       RoundLedger& ledger,
                                       std::uint64_t per_tree_rounds,
                                       std::uint32_t trees = 0,
                                       bool two_respecting = true);

/// Fully integrated variant: every packed tree is computed by the
/// *distributed* hierarchical Boruvka on the given hierarchy (edge loads
/// are local knowledge, so load-based weights are CONGEST-legal), with the
/// measured rounds of each run charged to the ledger. This is the paper's
/// Section-4 pipeline end to end: routing -> MST -> min cut.
MincutStats distributed_mincut_tree_packing(const Hierarchy& h, Rng& rng,
                                            RoundLedger& ledger,
                                            std::uint32_t trees = 0,
                                            bool two_respecting = true);

/// Exact minimum 1-respecting cut of a given spanning tree (helper,
/// exposed for tests): for every tree edge, the number of graph edges
/// crossing the split it induces; returns the minimum and its tree edge.
std::pair<std::uint64_t, EdgeId> min_one_respecting_cut(
    const Graph& g, const std::vector<EdgeId>& tree_edges);

/// Exact minimum 2-respecting cut: the best cut sharing exactly two edges
/// with the tree (Karger: together with 1-respecting, some packed tree
/// witnesses the true min cut w.h.p.). O(n^2) time and memory via ordered
/// endpoint-pair prefix sums over the BFS numbering; use for n <= ~4096.
std::uint64_t min_two_respecting_cut(const Graph& g,
                                     const std::vector<EdgeId>& tree_edges);

}  // namespace amix
