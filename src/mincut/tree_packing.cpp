#include "mincut/tree_packing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/exact_mst.hpp"
#include "graph/traversal.hpp"
#include "graph/weighted_graph.hpp"
#include "mst/hierarchical_boruvka.hpp"
#include "obs/trace.hpp"

namespace amix {
namespace {

/// Rooted view of a spanning tree with binary-lifting LCA.
class RootedTree {
 public:
  RootedTree(const Graph& g, const std::vector<EdgeId>& tree_edges) {
    const NodeId n = g.num_nodes();
    AMIX_CHECK(tree_edges.size() + 1 == n);
    adj_.assign(n, {});
    for (const EdgeId e : tree_edges) {
      adj_[g.edge_u(e)].push_back({g.edge_v(e), e});
      adj_[g.edge_v(e)].push_back({g.edge_u(e), e});
    }
    parent_.assign(n, kInvalidNode);
    parent_edge_.assign(n, kInvalidEdge);
    depth_.assign(n, 0);
    order_.reserve(n);
    order_.push_back(0);
    std::vector<bool> seen(n, false);
    seen[0] = true;
    for (std::size_t i = 0; i < order_.size(); ++i) {
      const NodeId v = order_[i];
      for (const auto& [w, e] : adj_[v]) {
        if (seen[w]) continue;
        seen[w] = true;
        parent_[w] = v;
        parent_edge_[w] = e;
        depth_[w] = depth_[v] + 1;
        order_.push_back(w);
      }
    }
    AMIX_CHECK_MSG(order_.size() == n, "tree_edges do not span the graph");

    levels_ = 1;
    while ((1u << levels_) < n) ++levels_;
    up_.assign(levels_, std::vector<NodeId>(n, 0));
    for (NodeId v = 0; v < n; ++v) {
      up_[0][v] = parent_[v] == kInvalidNode ? 0 : parent_[v];
    }
    for (std::uint32_t l = 1; l < levels_; ++l) {
      for (NodeId v = 0; v < n; ++v) up_[l][v] = up_[l - 1][up_[l - 1][v]];
    }
  }

  NodeId lca(NodeId a, NodeId b) const {
    if (depth_[a] < depth_[b]) std::swap(a, b);
    std::uint32_t diff = depth_[a] - depth_[b];
    for (std::uint32_t l = 0; diff != 0; ++l, diff >>= 1) {
      if (diff & 1u) a = up_[l][a];
    }
    if (a == b) return a;
    for (std::uint32_t l = levels_; l-- > 0;) {
      if (up_[l][a] != up_[l][b]) {
        a = up_[l][a];
        b = up_[l][b];
      }
    }
    return parent_[a];
  }

  const std::vector<NodeId>& bfs_order() const { return order_; }
  NodeId parent(NodeId v) const { return parent_[v]; }
  EdgeId parent_edge(NodeId v) const { return parent_edge_[v]; }

  /// DFS preorder numbering: subtree(v) = tin values [tin(v), tout(v)).
  void compute_dfs_intervals(std::vector<std::uint32_t>& tin,
                             std::vector<std::uint32_t>& tout) const {
    const auto n = static_cast<NodeId>(adj_.size());
    std::vector<std::vector<NodeId>> children(n);
    for (NodeId v = 0; v < n; ++v) {
      if (parent_[v] != kInvalidNode) children[parent_[v]].push_back(v);
    }
    tin.assign(n, 0);
    tout.assign(n, 0);
    std::uint32_t clock = 0;
    // Iterative DFS with explicit post-visit records.
    std::vector<std::pair<NodeId, bool>> stack{{0, false}};
    while (!stack.empty()) {
      const auto [v, post] = stack.back();
      stack.pop_back();
      if (post) {
        tout[v] = clock;
        continue;
      }
      tin[v] = clock++;
      stack.push_back({v, true});
      for (const NodeId c : children[v]) stack.push_back({c, false});
    }
  }

 private:
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj_;
  std::vector<NodeId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::uint32_t> depth_;
  std::vector<NodeId> order_;  // BFS order from root 0
  std::uint32_t levels_ = 0;
  std::vector<std::vector<NodeId>> up_;
};

}  // namespace

std::pair<std::uint64_t, EdgeId> min_one_respecting_cut(
    const Graph& g, const std::vector<EdgeId>& tree_edges) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK(n >= 2);
  RootedTree tree(g, tree_edges);

  // cut(subtree(v)) = sum of degrees in subtree(v) - 2 * (#edges fully
  // inside subtree(v)); an edge lies inside subtree(v) iff its LCA does.
  std::vector<std::uint64_t> deg_sum(n), lca_cnt(n, 0);
  for (NodeId v = 0; v < n; ++v) deg_sum[v] = g.degree(v);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ++lca_cnt[tree.lca(g.edge_u(e), g.edge_v(e))];
  }
  // Subtree sums by reverse BFS order.
  const auto& order = tree.bfs_order();
  for (std::size_t i = order.size(); i-- > 1;) {
    const NodeId v = order[i];
    deg_sum[tree.parent(v)] += deg_sum[v];
    lca_cnt[tree.parent(v)] += lca_cnt[v];
  }

  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  EdgeId best_edge = kInvalidEdge;
  for (const NodeId v : order) {
    if (tree.parent(v) == kInvalidNode) continue;
    const std::uint64_t cut = deg_sum[v] - 2 * lca_cnt[v];
    if (cut < best) {
      best = cut;
      best_edge = tree.parent_edge(v);
    }
  }
  return {best, best_edge};
}

std::uint64_t min_two_respecting_cut(const Graph& g,
                                     const std::vector<EdgeId>& tree_edges) {
  const NodeId n = g.num_nodes();
  AMIX_CHECK(n >= 3);
  AMIX_CHECK_MSG(n <= 4096, "2-respecting scan is O(n^2); n too large");
  RootedTree tree(g, tree_edges);
  std::vector<std::uint32_t> tin, tout;
  tree.compute_dfs_intervals(tin, tout);

  // T[i][j] (after prefix summation) = #ordered edge-endpoint pairs (a,b)
  // with tin(a) < i, tin(b) < j. Queries over DFS intervals then give
  // ordered pair counts between any two subtree node sets in O(1).
  const std::size_t dim = static_cast<std::size_t>(n) + 1;
  std::vector<std::uint32_t> grid(dim * dim, 0);
  auto at = [&](std::size_t i, std::size_t j) -> std::uint32_t& {
    return grid[i * dim + j];
  };
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const std::uint32_t a = tin[g.edge_u(e)];
    const std::uint32_t b = tin[g.edge_v(e)];
    ++at(a + 1, b + 1);
    ++at(b + 1, a + 1);
  }
  for (std::size_t i = 1; i < dim; ++i) {
    for (std::size_t j = 1; j < dim; ++j) {
      at(i, j) += at(i - 1, j) + at(i, j - 1) - at(i - 1, j - 1);
    }
  }
  // Ordered pairs with first endpoint tin in [alo,ahi), second in [blo,bhi).
  auto T = [&](std::uint32_t alo, std::uint32_t ahi, std::uint32_t blo,
               std::uint32_t bhi) -> std::int64_t {
    return static_cast<std::int64_t>(at(ahi, bhi)) - at(alo, bhi) -
           at(ahi, blo) + at(alo, blo);
  };

  // Non-root nodes sorted by tin; their parent edges are the tree edges.
  std::vector<NodeId> nodes;
  nodes.reserve(n - 1);
  for (NodeId v = 0; v < n; ++v) {
    if (tree.parent(v) != kInvalidNode) nodes.push_back(v);
  }
  std::sort(nodes.begin(), nodes.end(),
            [&tin](NodeId a, NodeId b) { return tin[a] < tin[b]; });

  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId v1 = nodes[i];
    const std::uint32_t a_lo = tin[v1], a_hi = tout[v1];
    const std::int64_t cA = T(a_lo, a_hi, 0, n) - T(a_lo, a_hi, a_lo, a_hi);
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const NodeId v2 = nodes[j];
      const std::uint32_t b_lo = tin[v2], b_hi = tout[v2];
      std::int64_t cut;
      if (b_hi <= a_hi) {
        // Nested: subtree(v2) inside subtree(v1); side = A \ B.
        cut = (T(a_lo, a_hi, b_lo, b_hi) - T(b_lo, b_hi, b_lo, b_hi)) +
              (cA - (T(b_lo, b_hi, 0, n) - T(b_lo, b_hi, a_lo, a_hi)));
      } else {
        // Disjoint subtrees; side = A u B (skip if that is everything).
        if ((a_hi - a_lo) + (b_hi - b_lo) == n) continue;
        const std::int64_t cB =
            T(b_lo, b_hi, 0, n) - T(b_lo, b_hi, b_lo, b_hi);
        cut = cA + cB - 2 * T(a_lo, a_hi, b_lo, b_hi);
      }
      AMIX_DCHECK(cut >= 0);
      best = std::min(best, static_cast<std::uint64_t>(cut));
    }
  }
  return best;
}

MincutStats approx_mincut_tree_packing(const Graph& g, Rng& rng,
                                       RoundLedger& ledger,
                                       std::uint64_t per_tree_rounds,
                                       std::uint32_t trees,
                                       bool two_respecting) {
  AMIX_CHECK(g.num_nodes() >= 2);
  const std::uint64_t rounds_at_entry = ledger.total();
  if (trees == 0) {
    trees = std::max<std::uint32_t>(
        4, 3 * static_cast<std::uint32_t>(std::ceil(
                   std::log2(static_cast<double>(g.num_nodes())))));
  }

  MincutStats out;
  out.trees = trees;
  out.cut_value = std::numeric_limits<std::uint64_t>::max();

  // Greedy packing against accumulated edge loads; random distinct
  // tie-breaking keeps the trees diverse.
  std::vector<std::uint64_t> load(g.num_edges(), 0);
  for (std::uint32_t t = 0; t < trees; ++t) {
    std::vector<Weight> wts(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      wts[e] = load[e] * (2ULL * g.num_edges()) + rng.next_below(g.num_edges());
    }
    const Weights w(g, std::move(wts));
    const auto tree = kruskal_mst(g, w);
    for (const EdgeId e : tree) ++load[e];

    ledger.charge(per_tree_rounds);  // one distributed MST run
    auto [cut, edge] = min_one_respecting_cut(g, tree);
    // Evaluating the 1-respecting cuts is one aggregation over the tree
    // (subtree sums), i.e. a convergecast of depth <= n: charged as one
    // cast over the tree height, conservatively log^2 n-ish via the
    // virtual-tree machinery; we charge the same measured MST-run cost
    // envelope when provided, else a single cast.
    ledger.charge(per_tree_rounds > 0 ? per_tree_rounds / 4 + 1 : 1);
    if (two_respecting && g.num_nodes() >= 3 && g.num_nodes() <= 4096) {
      const auto cut2 = min_two_respecting_cut(g, tree);
      if (cut2 < cut) {
        cut = cut2;
        edge = kInvalidEdge;  // witnessed by a pair, not a single edge
      }
      // Karger's 2-respecting machinery is another tree-aggregation
      // sweep distributively; charge the same evaluation envelope.
      ledger.charge(per_tree_rounds > 0 ? per_tree_rounds / 4 + 1 : 1);
    }
    if (cut < out.cut_value) {
      out.cut_value = cut;
      out.witness_tree_edge = edge;
    }
  }

  // The trivial singleton cuts are always known locally.
  std::uint32_t min_deg = g.degree(0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    min_deg = std::min(min_deg, g.degree(v));
  }
  if (min_deg < out.cut_value) {
    out.cut_value = min_deg;
    out.witness_tree_edge = kInvalidEdge;
  }

  out.rounds = ledger.total() - rounds_at_entry;
  return out;
}

MincutStats distributed_mincut_tree_packing(const Hierarchy& h, Rng& rng,
                                            RoundLedger& ledger,
                                            std::uint32_t trees,
                                            bool two_respecting) {
  const Graph& g = h.graph();
  AMIX_CHECK(g.num_nodes() >= 2);
  const std::uint64_t rounds_at_entry = ledger.total();
  if (trees == 0) {
    trees = std::max<std::uint32_t>(
        4, 2 * static_cast<std::uint32_t>(std::ceil(
                   std::log2(static_cast<double>(g.num_nodes())))));
  }

  MincutStats out;
  out.trees = trees;
  out.cut_value = std::numeric_limits<std::uint64_t>::max();
  out.best_one_respecting = std::numeric_limits<std::uint64_t>::max();
  out.best_two_respecting = std::numeric_limits<std::uint64_t>::max();

  std::vector<std::uint64_t> load(g.num_edges(), 0);
  std::vector<Weight> tiebreak(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) tiebreak[e] = e;

  const bool scan_two =
      two_respecting && g.num_nodes() >= 3 && g.num_nodes() <= 4096;
  for (std::uint32_t t = 0; t < trees; ++t) {
    // Load-based weights (distinct via a per-tree random tie-break); both
    // the load and the tie-break are locally computable at the endpoints.
    shuffle(tiebreak, rng);
    std::vector<Weight> wts(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      wts[e] = load[e] * (2ULL * g.num_edges()) + tiebreak[e];
    }
    const Weights w(g, std::move(wts));

    // The real distributed run, charged for real.
    MstStats mst;
    {
      const obs::Span span(ledger, obs::numbered("mincut/pack-tree-", t));
      MstParams mp;
      mp.seed = rng();
      mst = HierarchicalBoruvka(h, w).run(ledger, mp);
    }
    for (const EdgeId e : mst.edges) ++load[e];
    out.pack_rounds += mst.rounds;
    out.max_tree_rounds = std::max(out.max_tree_rounds, mst.rounds);

    const obs::Span eval_span(ledger, obs::numbered("mincut/eval-tree-", t));
    auto [cut, edge] = min_one_respecting_cut(g, mst.edges);
    out.best_one_respecting = std::min(out.best_one_respecting, cut);
    ledger.charge(mst.rounds / 4 + 1);  // evaluation cast envelope
    out.eval_rounds += mst.rounds / 4 + 1;
    if (scan_two) {
      const auto cut2 = min_two_respecting_cut(g, mst.edges);
      out.best_two_respecting = std::min(out.best_two_respecting, cut2);
      if (cut2 < cut) {
        cut = cut2;
        edge = kInvalidEdge;
      }
      ledger.charge(mst.rounds / 4 + 1);
      out.eval_rounds += mst.rounds / 4 + 1;
    }
    if (cut < out.cut_value) {
      out.cut_value = cut;
      out.witness_tree_edge = edge;
    }
  }

  std::uint32_t min_deg = g.degree(0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    min_deg = std::min(min_deg, g.degree(v));
  }
  out.min_degree = min_deg;
  if (min_deg < out.cut_value) {
    out.cut_value = min_deg;
    out.witness_tree_edge = kInvalidEdge;
  }
  if (!scan_two) out.best_two_respecting = 0;

  out.rounds = ledger.total() - rounds_at_entry;

  // Ghaffari–Li min-cut envelope: total rounds vs the packing's natural
  // budget (trees x the costliest per-tree MST, the unit the pipeline is
  // built from). The measured constant is ~1.5x (each tree adds at most
  // two quarter-cost evaluation casts on top of its MST).
  obs::metric_gauge_max(
      "glcut/rounds_over_pack_x1000",
      obs::ratio_x1000(out.rounds,
                       std::uint64_t{trees} *
                           std::max<std::uint64_t>(1, out.max_tree_rounds)));
  obs::metric_gauge_set("mincut/trees", trees);
  obs::metric_gauge_max("mincut/cut_value", out.cut_value);
  return out;
}

}  // namespace amix
